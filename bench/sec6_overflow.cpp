// Reproduces the Section 6 analysis: hardware message-queue occupancy and
// deadlock freedom.
//
//   * With MP-SERVER, a client/non-combiner queue holds at most one message
//     (its response), so the servicing thread never blocks on send.
//   * The servicing thread's queue holds at most one 3-word request per
//     application thread: 35 * 3 = 105 words, which fits the 118-word
//     buffer. The bench reports the observed peak occupancy.
//   * With more threads than the buffer can cover (oversubscription via the
//     4-way demux queues, Section 6), senders block on backpressure but the
//     system keeps making progress because every send is followed by a
//     blocking receive.
#include <cstdio>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "harness/report.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/mp_server.hpp"

using namespace hmps;
using rt::SimCtx;

namespace {

struct Outcome {
  std::uint64_t peak = 0;
  std::uint64_t blocks = 0;
  std::uint64_t ops = 0;
};

Outcome run(std::uint32_t app_threads, std::uint32_t buf_words,
            sim::Cycle horizon) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  p.udn_buf_words = buf_words;
  rt::SimExecutor ex(p, 7);
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  for (std::uint32_t i = 0; i < app_threads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (;;) {
        mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
        // No think time: worst-case pressure on the server queue.
      }
    });
  }
  ex.run_until(horizon);
  Outcome o;
  o.peak = ex.machine().udn().counters().peak_occupancy;
  o.blocks = ex.machine().udn().counters().sender_blocks;
  o.ops = mp.stats(0).served;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  const sim::Cycle horizon = args.window ? args.window : 300'000;

  harness::Table table({"app_threads", "buffer(words)", "peak occupancy",
                        "sender blocks", "ops served", "verdict"});
  struct Case {
    std::uint32_t threads, buf;
  };
  // 35 clients fit (105 <= 118); oversubscribed cases force backpressure.
  const Case cases[] = {{35, 118}, {35, 24}, {70, 118}, {105, 118}};
  for (const auto& cs : cases) {
    const Outcome o = run(cs.threads, cs.buf, horizon);
    const bool fits = o.peak <= cs.buf;
    const bool progressed = o.ops > 1000;
    table.add_row({std::to_string(cs.threads), std::to_string(cs.buf),
                   std::to_string(o.peak), std::to_string(o.blocks),
                   std::to_string(o.ops),
                   progressed ? (fits ? "no overflow, live"
                                      : "backpressure, live")
                              : "STALLED"});
    std::fprintf(stderr, "[sec6] threads=%u buf=%u done\n", cs.threads,
                 cs.buf);
  }
  table.print("Section 6: message-queue occupancy and deadlock freedom");
  if (!args.csv.empty()) table.write_csv(args.csv);
  return 0;
}

// Open-loop MS-queue service bench under bursty (MMPP) arrivals
// (docs/SERVICE.md): the queue farm absorbs Zipf-skewed enqueue/dequeue
// sessions whose offered load alternates between a quiet state and a burst
// state at `burst` times the quiet rate. Bursts are where open-loop and
// closed-loop measurements diverge hardest: a closed-loop driver slows down
// with the server, an MMPP keeps pushing, so p99/p999 sojourn reflects the
// backlog the burst leaves behind. Drop-oldest shedding keeps the pending
// queues bounded and biases completions toward fresh arrivals.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/service.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "service_queue", argc, argv);

  std::vector<double> loads{2, 4, 8, 16, 24};
  if (args.full) loads = {1, 2, 4, 8, 12, 16, 24, 32};
  if (args.quick) loads = {4, 16};

  std::vector<Approach> apps{Approach::kMpServer, Approach::kHybComb,
                             Approach::kShmServer, Approach::kCcSynch};
  if (args.quick) apps = {Approach::kMpServer, Approach::kHybComb};

  harness::ServiceCfg base;
  base.base.seed = args.seed;
  base.base.warmup = args.quick ? 20'000 : 60'000;
  base.base.window = args.window ? args.window : (args.quick ? 60'000 : 400'000);
  base.base.reps = args.reps ? args.reps : (args.quick ? 1 : 2);
  base.base.telemetry_window = args.telemetry_window;
  base.base.machine.model_link_contention |= args.noc;
  if (args.mesh_w && args.mesh_h) {
    base.base.machine.mesh_w = args.mesh_w;
    base.base.machine.mesh_h = args.mesh_h;
  }
  base.sessions = args.threads ? args.threads : 4;
  base.objects = 4;
  base.zipf_s = 0.9;
  base.queue_object = true;
  base.arrival = harness::ArrivalModel::kMmpp;
  base.burst = 8.0;
  base.shed = harness::ShedPolicy::kDropOldest;

  harness::RunPool pool(art, args.jobs);
  for (double load : loads) {
    for (Approach a : apps) {
      harness::ServiceCfg cfg = base;
      cfg.offered_mops = load;
      pool.submit(std::string(harness::approach_name(a)) + "/o" +
                      harness::fmt(load, 0),
                  [cfg, a](const harness::RunObs& obs) {
                    harness::ServiceCfg c = cfg;
                    c.base.obs = obs;
                    const auto r = harness::run_service(c, a);
                    std::fprintf(stderr, "[service_queue] %s done\n",
                                 obs.label);
                    return r;
                  });
    }
  }
  const auto& results = pool.drain();

  std::vector<std::string> cols{"offered"};
  for (Approach a : apps) {
    cols.push_back(std::string(harness::approach_name(a)) + " ach");
    cols.push_back(std::string(harness::approach_name(a)) + " p99");
    cols.push_back(std::string(harness::approach_name(a)) + " p999");
  }
  harness::Table table(cols);
  std::size_t idx = 0;
  for (double load : loads) {
    std::vector<std::string> row{harness::fmt(load, 0)};
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
      const auto& r = results[idx++];
      row.push_back(harness::fmt(r.mops));
      row.push_back(harness::fmt(r.lat_p99, 0));
      row.push_back(harness::fmt(r.lat_p999, 0));
    }
    table.add_row(row);
  }
  table.print("Open-loop MS-queue service under MMPP bursts (x" +
              harness::fmt(base.burst, 0) + "): achieved Mops/s and "
              "p99/p999 sojourn (cycles) vs offered load");
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

# Empty dependencies file for test_stress_engine.
# This may be replaced when dependencies are built.

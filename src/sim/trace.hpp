// Execution tracing: collects per-core timeline events from a simulation
// and writes them as Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file).
//
// Disabled by default: the hot-path cost is one branch. Event volume is
// bounded by `max_events` to keep traces loadable.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace hmps::sim {

class Tracer {
 public:
  /// Starts collecting up to `max_events` events.
  void enable(std::size_t max_events = 1'000'000) {
    enabled_ = true;
    max_ = max_events;
    events_.reserve(max_events < 65536 ? max_events : 65536);
  }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Records a duration event on a core's timeline. `name` must point to a
  /// string with static storage duration (no copies are taken).
  void event(Tid core, const char* name, Cycle start, Cycle dur) {
    if (!enabled_ || events_.size() >= max_) return;
    events_.push_back(Event{name, start, dur, core});
  }

  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Writes the Chrome trace-event JSON. Cycle timestamps are emitted as
  /// microseconds 1:1 (so "1 us" in the viewer = 1 simulated cycle).
  void write_chrome_json(const std::string& path) const {
    std::ofstream f(path);
    f << "[\n";
    bool first = true;
    for (const Event& e : events_) {
      if (!first) f << ",\n";
      first = false;
      f << R"({"name":")" << e.name << R"(","ph":"X","pid":0,"tid":)"
        << e.core << R"(,"ts":)" << e.start << R"(,"dur":)"
        << (e.dur == 0 ? 1 : e.dur) << "}";
    }
    f << "\n]\n";
  }

 private:
  struct Event {
    const char* name;
    Cycle start;
    Cycle dur;
    Tid core;
  };

  bool enabled_ = false;
  std::size_t max_ = 0;
  std::vector<Event> events_;
};

}  // namespace hmps::sim

file(REMOVE_RECURSE
  "libhmps_arch.a"
)

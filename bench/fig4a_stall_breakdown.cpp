// Reproduces Fig. 4a: stalled vs total CPU cycles per operation at the
// servicing thread, under maximum load (35 application threads).
//
// Following the paper's footnote 4, the combining algorithms run with a
// fixed combiner for the whole run (equivalent to MAX_OPS = infinity) so
// that one core's counters capture the servicing thread.
//
// The breakdown is a direct readout of the servicing core's CycleAccount
// (obs/cycle_account.hpp): every simulated cycle of the measurement windows
// is attributed to exactly one bucket, and the binary verifies the sum
// invariant before printing. The paper had to reconstruct this from two
// hardware counters; the simulator gives the full attribution.
//
// Expected shape: the message-passing approaches (mp-server, HybComb) show
// a virtually unstalled servicing thread; the shared-memory approaches
// (shm-server, CC-Synch) spend >50% of their cycles stalled on coherence.
#include <cstdio>
#include <cstdlib>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"
#include "obs/cycle_account.hpp"

using namespace hmps;
using harness::Approach;
using obs::CycleAccount;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig4a_stall_breakdown", argc, argv);

  harness::Table table({"approach", "compute", "coh-rd", "coh-wr", "atomic",
                        "udn-send", "udn-recv", "spin", "stalled(cyc/op)",
                        "total(cyc/op)", "stall_share"});
  const Approach order[] = {Approach::kMpServer, Approach::kHybComb,
                            Approach::kShmServer, Approach::kCcSynch};
  harness::RunPool pool(art, args.jobs);
  for (Approach a : order) {
    harness::RunCfg cfg;
    cfg.app_threads = args.threads ? args.threads : 35;
    cfg.seed = args.seed;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    cfg.telemetry_window = args.telemetry_window;
    cfg.machine.model_link_contention |= args.noc;
    cfg.fixed_combiner =
        (a == Approach::kHybComb || a == Approach::kCcSynch);
    pool.submit(harness::approach_name(a),
                [cfg, a](const harness::RunObs& obs) {
                  harness::RunCfg c = cfg;
                  c.obs = obs;
                  const auto r = harness::run_counter(c, a);
                  std::fprintf(stderr, "[fig4a] %s done\n", obs.label);
                  return r;
                });
  }
  const auto& results = pool.drain();

  for (std::size_t i = 0; i < 4; ++i) {
    const Approach a = order[i];
    const auto& r = results[i];
    const CycleAccount& acc = r.serv_account;
    // The account's defining invariant: the buckets partition the covered
    // cycle span. A violation means a charging site lost or double-counted
    // cycles — refuse to print numbers that no longer mean anything.
    if (acc.total() != acc.mark() - acc.origin()) {
      std::fprintf(stderr,
                   "[fig4a] FATAL: cycle-account invariant violated for %s: "
                   "buckets sum to %llu, covered span is %llu\n",
                   harness::approach_name(a),
                   static_cast<unsigned long long>(acc.total()),
                   static_cast<unsigned long long>(acc.mark() - acc.origin()));
      return 1;
    }
    const double ops = r.serv_ops > 0 ? r.serv_ops : 1;
    auto per_op = [&](CycleAccount::Bucket b) {
      return static_cast<double>(acc.bucket(b)) / ops;
    };
    const double total =
        static_cast<double>(acc.active()) / ops;  // exclude idle tail
    const double stalled = static_cast<double>(acc.stalled()) / ops;
    table.add_row({harness::approach_name(a),
                   harness::fmt(per_op(CycleAccount::kCompute), 1),
                   harness::fmt(per_op(CycleAccount::kCoherenceRead), 1),
                   harness::fmt(per_op(CycleAccount::kCoherenceWrite), 1),
                   harness::fmt(per_op(CycleAccount::kAtomic), 1),
                   harness::fmt(per_op(CycleAccount::kUdnSendBlock), 1),
                   harness::fmt(per_op(CycleAccount::kUdnRecvWait), 1),
                   harness::fmt(per_op(CycleAccount::kSpin), 1),
                   harness::fmt(stalled, 1), harness::fmt(total, 1),
                   harness::fmt(total > 0 ? stalled / total : 0, 2)});
  }
  table.print("Fig. 4a: CPU stalls at the servicing thread (max load)");
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

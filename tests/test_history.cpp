// Tests for the history recorder and the linearizability checkers — both
// on hand-crafted histories (known-good and known-bad) and on real
// histories produced by the universal constructions on the simulator.
#include <gtest/gtest.h>

#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "ds/queue.hpp"
#include "ds/stack.hpp"
#include "harness/history.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"
#include "sync/shm_server.hpp"

namespace hmps::harness {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

OpRecord op(std::uint32_t th, OpKind k, std::uint64_t arg, std::uint64_t ret,
            Cycle inv, Cycle resp) {
  return OpRecord{th, k, arg, ret, inv, resp};
}

// ---- hand-crafted histories ----

TEST(QueueFast, AcceptsSequentialFifo) {
  std::vector<OpRecord> h = {
      op(0, OpKind::kEnq, 1, 0, 0, 10),
      op(0, OpKind::kEnq, 2, 0, 20, 30),
      op(0, OpKind::kDeq, 0, 1, 40, 50),
      op(0, OpKind::kDeq, 0, 2, 60, 70),
  };
  EXPECT_TRUE(check_queue_fast(h).ok);
  EXPECT_TRUE(linearizable(h, queue_spec()).ok);
}

TEST(QueueFast, RejectsFifoInversion) {
  std::vector<OpRecord> h = {
      op(0, OpKind::kEnq, 1, 0, 0, 10),
      op(0, OpKind::kEnq, 2, 0, 20, 30),
      op(1, OpKind::kDeq, 0, 2, 40, 50),
      op(1, OpKind::kDeq, 0, 1, 60, 70),
  };
  EXPECT_FALSE(check_queue_fast(h).ok);
  EXPECT_FALSE(linearizable(h, queue_spec()).ok);
}

TEST(QueueFast, AcceptsConcurrentEnqueuesEitherOrder) {
  // Two overlapping enqueues may dequeue in either order.
  std::vector<OpRecord> h = {
      op(0, OpKind::kEnq, 1, 0, 0, 100),
      op(1, OpKind::kEnq, 2, 0, 50, 60),
      op(0, OpKind::kDeq, 0, 2, 200, 210),
      op(0, OpKind::kDeq, 0, 1, 220, 230),
  };
  EXPECT_TRUE(check_queue_fast(h).ok);
  EXPECT_TRUE(linearizable(h, queue_spec()).ok);
}

TEST(QueueFast, RejectsDequeueBeforeEnqueue) {
  std::vector<OpRecord> h = {
      op(0, OpKind::kDeq, 0, 9, 0, 5),
      op(1, OpKind::kEnq, 9, 0, 10, 20),
  };
  EXPECT_FALSE(check_queue_fast(h).ok);
  EXPECT_FALSE(linearizable(h, queue_spec()).ok);
}

TEST(QueueFast, RejectsDuplicateDequeue) {
  std::vector<OpRecord> h = {
      op(0, OpKind::kEnq, 9, 0, 0, 5),
      op(1, OpKind::kDeq, 0, 9, 10, 20),
      op(1, OpKind::kDeq, 0, 9, 30, 40),
  };
  EXPECT_FALSE(check_queue_fast(h).ok);
  EXPECT_FALSE(linearizable(h, queue_spec()).ok);
}

TEST(QueueComplete, EmptyDequeueRequiresEmptyPoint) {
  // deq->empty fully covered by an enqueued-but-undequeued interval is
  // still fine if the deq can linearize before the enq. Here the deq
  // overlaps the enq, so empty is legal.
  std::vector<OpRecord> h = {
      op(0, OpKind::kEnq, 1, 0, 10, 50),
      op(1, OpKind::kDeq, 0, kNothing, 0, 100),
  };
  EXPECT_TRUE(linearizable(h, queue_spec()).ok);
  // But if the enqueue completed before the deq began AND nothing dequeued
  // the value, empty is a violation.
  std::vector<OpRecord> bad = {
      op(0, OpKind::kEnq, 1, 0, 10, 20),
      op(1, OpKind::kDeq, 0, kNothing, 30, 40),
  };
  EXPECT_FALSE(linearizable(bad, queue_spec()).ok);
}

TEST(StackComplete, AcceptsLifoRejectsFifo) {
  std::vector<OpRecord> lifo = {
      op(0, OpKind::kPush, 1, 0, 0, 10),
      op(0, OpKind::kPush, 2, 0, 20, 30),
      op(0, OpKind::kPop, 0, 2, 40, 50),
      op(0, OpKind::kPop, 0, 1, 60, 70),
  };
  EXPECT_TRUE(linearizable(lifo, stack_spec()).ok);
  std::vector<OpRecord> fifo = {
      op(0, OpKind::kPush, 1, 0, 0, 10),
      op(0, OpKind::kPush, 2, 0, 20, 30),
      op(0, OpKind::kPop, 0, 1, 40, 50),
      op(0, OpKind::kPop, 0, 2, 60, 70),
  };
  EXPECT_FALSE(linearizable(fifo, stack_spec()).ok);
}

TEST(CounterFast, AcceptsExactRejectsLostUpdate) {
  std::vector<OpRecord> good = {
      op(0, OpKind::kInc, 0, 0, 0, 10),
      op(1, OpKind::kInc, 0, 1, 5, 15),
      op(0, OpKind::kInc, 0, 2, 20, 30),
  };
  EXPECT_TRUE(check_counter_fast(good).ok);
  EXPECT_TRUE(linearizable(good, counter_spec()).ok);
  std::vector<OpRecord> lost = {
      op(0, OpKind::kInc, 0, 0, 0, 10),
      op(1, OpKind::kInc, 0, 0, 5, 15),  // same pre-value twice
  };
  EXPECT_FALSE(check_counter_fast(lost).ok);
  EXPECT_FALSE(linearizable(lost, counter_spec()).ok);
}

TEST(CounterFast, RejectsNonMonotonicRealTime) {
  std::vector<OpRecord> h = {
      op(0, OpKind::kInc, 0, 1, 0, 10),
      op(1, OpKind::kInc, 0, 0, 20, 30),  // later op returned smaller value
  };
  EXPECT_FALSE(check_counter_fast(h).ok);
}

TEST(Complete, RefusesOversizedHistory) {
  std::vector<OpRecord> h(64, op(0, OpKind::kInc, 0, 0, 0, 1));
  EXPECT_FALSE(linearizable(h, counter_spec()).ok);
}

// ---- histories recorded from the real constructions ----

enum class Kind { kMp, kHyb, kShm, kCc };

template <class ApplyFn>
std::vector<OpRecord> record_queue_history(std::uint32_t nthreads,
                                           std::uint32_t ops_each,
                                           std::uint64_t seed, Kind kind) {
  SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  ds::SeqQueue q(4096);
  sync::MpServer<SimCtx> mp(0, &q);
  sync::HybComb<SimCtx> hyb(&q, 8);
  sync::ShmServer<SimCtx> shm(0, &q);
  sync::CcSynch<SimCtx> cc(&q, 8);
  HistoryRecorder rec;
  std::uint32_t done = 0;
  const bool server = (kind == Kind::kMp || kind == Kind::kShm);

  auto apply = [&](SimCtx& ctx, sync::CsFn<SimCtx> fn,
                   std::uint64_t arg) -> std::uint64_t {
    switch (kind) {
      case Kind::kMp: return mp.apply(ctx, fn, arg);
      case Kind::kHyb: return hyb.apply(ctx, fn, arg);
      case Kind::kShm: return shm.apply(ctx, fn, arg);
      case Kind::kCc: return cc.apply(ctx, fn, arg);
    }
    return 0;
  };

  if (server) {
    ex.add_thread([&](SimCtx& ctx) {
      if (kind == Kind::kMp) {
        mp.serve(ctx);
      } else {
        shm.serve(ctx);
      }
    });
  }
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < ops_each; ++k) {
        OpRecord r;
        r.thread = i;
        r.invoke = ctx.now();
        if (ctx.rand_below(2) == 0) {
          r.kind = OpKind::kEnq;
          r.arg = (static_cast<std::uint64_t>(i) << 32) | k;
          r.ret = apply(ctx, ds::q_enqueue<SimCtx>, r.arg);
        } else {
          r.kind = OpKind::kDeq;
          r.ret = apply(ctx, ds::q_dequeue<SimCtx>, 0);
          if (r.ret == ds::kQEmpty) r.ret = kNothing;
        }
        r.response = ctx.now();
        rec.record(r);
        ctx.compute(ctx.rand_below(40));
      }
      ++done;
      if (done == nthreads && server) {
        if (kind == Kind::kMp) {
          mp.request_stop(ctx);
        } else {
          shm.request_stop(ctx);
        }
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  return rec.ops();
}

class RecordedQueueHistories
    : public ::testing::TestWithParam<std::tuple<Kind, std::uint64_t>> {};

TEST_P(RecordedQueueHistories, FastChecksPass) {
  const auto [kind, seed] = GetParam();
  const auto h = record_queue_history<void>(8, 40, seed, kind);
  const auto r = check_queue_fast(h);
  EXPECT_TRUE(r.ok) << r.reason;
}

TEST_P(RecordedQueueHistories, SmallWindowsFullyLinearizable) {
  const auto [kind, seed] = GetParam();
  // Small concurrent run that the complete checker can handle.
  const auto h = record_queue_history<void>(4, 8, seed, kind);
  ASSERT_LE(h.size(), 63u);
  const auto r = linearizable(h, queue_spec());
  EXPECT_TRUE(r.ok) << r.reason;
}

std::string HistCaseName(
    const ::testing::TestParamInfo<std::tuple<Kind, std::uint64_t>>& info) {
  static const char* names[] = {"Mp", "Hyb", "Shm", "Cc"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Constructions, RecordedQueueHistories,
    ::testing::Combine(::testing::Values(Kind::kMp, Kind::kHyb, Kind::kShm,
                                         Kind::kCc),
                       ::testing::Values(1u, 33u, 77u)),
    HistCaseName);

// ---- recorded stack histories ----

std::vector<OpRecord> record_stack_history(std::uint32_t nthreads,
                                           std::uint32_t ops_each,
                                           std::uint64_t seed, Kind kind) {
  SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  ds::SeqStack st(4096);
  sync::MpServer<SimCtx> mp(0, &st);
  sync::HybComb<SimCtx> hyb(&st, 8);
  sync::ShmServer<SimCtx> shm(0, &st);
  sync::CcSynch<SimCtx> cc(&st, 8);
  HistoryRecorder rec;
  std::uint32_t done = 0;
  const bool server = (kind == Kind::kMp || kind == Kind::kShm);

  auto apply = [&](SimCtx& ctx, sync::CsFn<SimCtx> fn,
                   std::uint64_t arg) -> std::uint64_t {
    switch (kind) {
      case Kind::kMp: return mp.apply(ctx, fn, arg);
      case Kind::kHyb: return hyb.apply(ctx, fn, arg);
      case Kind::kShm: return shm.apply(ctx, fn, arg);
      case Kind::kCc: return cc.apply(ctx, fn, arg);
    }
    return 0;
  };

  if (server) {
    ex.add_thread([&](SimCtx& ctx) {
      if (kind == Kind::kMp) {
        mp.serve(ctx);
      } else {
        shm.serve(ctx);
      }
    });
  }
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < ops_each; ++k) {
        OpRecord r;
        r.thread = i;
        r.invoke = ctx.now();
        if (ctx.rand_below(2) == 0) {
          r.kind = OpKind::kPush;
          r.arg = (static_cast<std::uint64_t>(i) << 32) | k;
          r.ret = apply(ctx, ds::s_push<SimCtx>, r.arg);
        } else {
          r.kind = OpKind::kPop;
          r.ret = apply(ctx, ds::s_pop<SimCtx>, 0);
          if (r.ret == ds::kStackEmpty) r.ret = kNothing;
        }
        r.response = ctx.now();
        rec.record(r);
        ctx.compute(ctx.rand_below(40));
      }
      ++done;
      if (done == nthreads && server) {
        if (kind == Kind::kMp) {
          mp.request_stop(ctx);
        } else {
          shm.request_stop(ctx);
        }
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  return rec.ops();
}

class RecordedStackHistories
    : public ::testing::TestWithParam<std::tuple<Kind, std::uint64_t>> {};

TEST_P(RecordedStackHistories, SmallWindowsFullyLinearizable) {
  const auto [kind, seed] = GetParam();
  const auto h = record_stack_history(4, 8, seed, kind);
  ASSERT_LE(h.size(), 63u);
  const auto r = linearizable(h, stack_spec());
  EXPECT_TRUE(r.ok) << r.reason;
}

INSTANTIATE_TEST_SUITE_P(
    Constructions, RecordedStackHistories,
    ::testing::Combine(::testing::Values(Kind::kMp, Kind::kHyb, Kind::kShm,
                                         Kind::kCc),
                       ::testing::Values(2u, 44u, 88u)),
    HistCaseName);

}  // namespace
}  // namespace hmps::harness

// Time-resolved telemetry: a deterministic windowed sampler driven by the
// simulation's own event queue.
//
// Every run-level number the repo reports is a start/end delta; this layer
// cuts the same quantities into fixed-cadence windows so burst behavior
// (MMPP arrivals, combiner tenure churn, mesh hot spots) becomes visible
// over time. The tick is an ordinary scheduled event, so windows land at
// identical simulated times on every host — artifacts are byte-identical
// across --jobs 1 and --jobs N — and a run with telemetry off schedules no
// events at all, keeping golden traces bit-identical to pre-telemetry
// builds (the zero-observer-effect bar docs/OBSERVABILITY.md sets).
//
// Observer-effect discipline. A tick only *reads*: it snapshots each core's
// CycleAccount as-is (it deliberately does NOT settle accounts — settling
// moves watermarks, which would change how later charges clip and thereby
// the final attribution). Windows are therefore diffs of raw monotonic
// snapshots, and because start() baselines against the same snapshot the
// harness uses for its run-level delta and flush() closes at the same final
// snapshot, the per-bucket window sums telescope to exactly the run-level
// totals (tests/test_telemetry.cpp asserts this invariant). Bucket deltas
// are *signed*: CycleAccount::reclassify() can retroactively move cycles
// charged before a window boundary (the service harness's queue-delay
// carving), making a later window's delta negative for the source bucket —
// the signed series keeps the telescoping sum exact anyway.
//
// Per window the sampler captures:
//   * CycleAccount bucket deltas, aggregated over all cores (plus core 0
//     alone, the server/combiner core in every bench topology),
//   * NoC message and link_wait deltas, plus a per-link busy/wait grid
//     accumulated in arch::NocModel for the --heatmap renderer,
//   * instantaneous UDN rx-buffer occupancy (sum of per-core credits),
//   * registered gauges (sampled) and counters (delta'd) — server inflight
//     credits, combiner queue length, admission-queue depth, sheds,
//   * when the completion stream is on (harness::run_service): completions
//     per window and per-window sojourn p50/p99/max from a fresh
//     sim::Reservoir per window — SLO violations get a timestamp.
//
// Emission: to_json() renders the artifact's `telemetry` block
// (hmps-metrics-v2), and each tick writes Perfetto counter samples
// (ph "C") through the machine's tracer when tracing is enabled.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "obs/cycle_account.hpp"
#include "obs/json.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace hmps::obs {

class Telemetry {
 public:
  struct Config {
    sim::Cycle window = 0;  ///< sampling cadence in cycles; 0 disables
    std::size_t reservoir_cap = 4096;  ///< per-window sojourn reservoir
  };

  /// Reads one uint64 from live simulation state. Must be pure observation
  /// (no model calls) — it runs inside the tick event.
  using GaugeFn = std::function<std::uint64_t()>;

  /// Enabling (window > 0) switches on the NoC's per-link accumulators;
  /// everything else waits for start().
  Telemetry(arch::Machine& m, Config cfg);

  bool enabled() const { return cfg_.window > 0; }
  sim::Cycle window() const { return cfg_.window; }

  /// Registers an instantaneous gauge, sampled once per tick. Register
  /// before start(); names become counter tracks ("tel.gauge.<name>") and
  /// artifact keys, in registration order.
  void add_gauge(std::string name, GaugeFn fn);

  /// Registers a cumulative counter; each window reports its delta
  /// (track "tel.ctr.<name>").
  void add_counter(std::string name, GaugeFn fn);

  /// Opts into the completion stream: the harness will call
  /// record_completion() per finished operation, and every window reports
  /// throughput and sojourn percentiles (tracks "tel.throughput",
  /// "tel.sojourn.p99").
  void enable_completion_stream() { completion_stream_ = true; }

  /// One completed operation with the given sojourn (arrival to response).
  /// Call only between start() and flush().
  void record_completion(sim::Cycle sojourn);

  /// Baselines every sampled quantity at `t0` and arms ticks at t0 + k*W
  /// for every k with t0 + k*W < t_end; flush() closes the final (possibly
  /// partial) window. No-op when disabled.
  void start(sim::Cycle t0, sim::Cycle t_end);

  /// Closes the last window at `t_end` (idempotent). Call after the run's
  /// final account settle/finalize so the window sums telescope to the
  /// run-level totals.
  void flush(sim::Cycle t_end);

  /// The artifact's `telemetry` block. Call after flush().
  JsonValue to_json() const;

 private:
  struct Track {
    std::string name;
    GaugeFn fn;
    const char* track_name = nullptr;  ///< interned Perfetto track
    std::uint64_t prev = 0;            ///< counters only: last snapshot
  };

  struct Window {
    sim::Cycle end = 0;
    // Signed: the open-loop service harness retroactively reclassifies
    // already-charged cycles (queue-delay carving, docs/SERVICE.md), so a
    // bucket's delta across a window boundary can be negative. Signed
    // deltas keep the telescoping invariant exact: per-bucket sums over
    // all windows equal the run-level totals regardless of when the
    // reclassification lands.
    std::int64_t buckets[CycleAccount::kNumBuckets] = {};
    std::int64_t core0[CycleAccount::kNumBuckets] = {};
    std::uint64_t rx_words = 0;       ///< instantaneous at window end
    std::uint64_t noc_messages = 0;   ///< delta
    std::uint64_t noc_link_wait = 0;  ///< delta
    std::uint64_t noc_combines = 0;   ///< delta (in-network RMW merges)
    std::uint64_t completions = 0;
    std::uint64_t p50 = 0, p99 = 0, max = 0;
    std::vector<std::uint64_t> gauges;
    std::vector<std::uint64_t> counters;
  };

  void arm(sim::Cycle t);
  void close_window(sim::Cycle t);

  arch::Machine& m_;
  Config cfg_;
  bool completion_stream_ = false;
  bool started_ = false;
  bool flushed_ = false;
  sim::Cycle start_ = 0;
  sim::Cycle end_ = 0;
  sim::Cycle last_close_ = 0;

  std::vector<Track> gauges_;
  std::vector<Track> counters_;

  // Baselines advanced at every window close.
  std::vector<CycleAccount> prev_accounts_;
  std::uint64_t prev_noc_messages_ = 0;
  std::uint64_t prev_noc_link_wait_ = 0;
  std::uint64_t prev_noc_combines_ = 0;

  // Run-start per-link baselines for the heatmap grid (the NoC accumulates
  // since machine construction; the grid should cover the measured run).
  std::vector<sim::Cycle> base_link_busy_;
  std::vector<sim::Cycle> base_link_wait_;

  // Current window's completion stream.
  sim::Reservoir sojourn_{2};
  std::uint64_t win_completions_ = 0;
  std::uint64_t win_max_sojourn_ = 0;

  // Interned counter-track names, resolved once at start().
  const char* trk_bucket_[CycleAccount::kNumBuckets] = {};
  const char* trk_rx_words_ = nullptr;
  const char* trk_link_wait_ = nullptr;
  const char* trk_throughput_ = nullptr;
  const char* trk_p99_ = nullptr;

  std::vector<Window> windows_;
};

}  // namespace hmps::obs

// H-SYNCH (Fatourou & Kallimanis, PPoPP'12): hierarchical combining for
// clustered machines. Threads combine within their cluster exactly as in
// CC-SYNCH; a cluster's combiner then acquires a global lock before
// executing its cluster's request list, so request/response traffic stays
// cluster-local and only combiners cross clusters.
//
// On the simulated mesh a "cluster" is a mesh row (configurable), standing
// in for a NUMA node. Included as an extension baseline completing the
// combining-construction family.
#pragma once

#include <cstdint>
#include <memory>

#include "runtime/context.hpp"
#include "sync/cs.hpp"
#include "sync/locks.hpp"

namespace hmps::sync {

template <class Ctx>
class HSynch {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  /// `cluster_size`: threads per cluster (by thread id); defaults to a
  /// TILE-Gx mesh row.
  HSynch(void* obj, std::uint32_t max_ops = 200,
         std::uint32_t cluster_size = 6)
      : obj_(obj), max_ops_(max_ops), csize_(cluster_size ? cluster_size : 1),
        nclusters_((kMaxThreads + csize_ - 1) / csize_),
        pool_(new Node[kMaxThreads + nclusters_]),
        tails_(new PaddedWord[nclusters_]) {
    for (std::uint32_t cl = 0; cl < nclusters_; ++cl) {
      Node* dummy = &pool_[kMaxThreads + cl];
      dummy->wait.store(0, std::memory_order_relaxed);
      dummy->completed.store(0, std::memory_order_relaxed);
      dummy->next.store(0, std::memory_order_relaxed);
      tails_[cl].w.store(rt::to_word(dummy), std::memory_order_relaxed);
    }
    for (std::uint32_t t = 0; t < kMaxThreads; ++t) my_[t].node = &pool_[t];
  }

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "HSynch::apply");
    const std::uint32_t cl = tid / csize_;
    SyncStats& st = stats_[tid].s;
    Word* tail = &tails_[cl].w;

    Node* next_node = my_[tid].node;
    ctx.store(&next_node->next, std::uint64_t{0});
    ctx.store(&next_node->wait, std::uint64_t{1});
    ctx.store(&next_node->completed, std::uint64_t{0});

    explore_point(ctx, "hs.enqueue");
    Node* cur = rt::from_word<Node>(ctx.exchange(tail, rt::to_word(next_node)));
    ctx.store(&cur->fn, rt::to_word(fn));
    ctx.store(&cur->arg, arg);
    ctx.store(&cur->next, rt::to_word(next_node));
    my_[tid].node = cur;

    while (ctx.load(&cur->wait)) ctx.cpu_relax();
    ++st.ops;
    if (ctx.load(&cur->completed)) return ctx.load(&cur->ret);

    // Cluster combiner: serialize with the other clusters' combiners.
    ++st.tenures;
    explore_point(ctx, "hs.global_lock");
    global_.lock(ctx);
    Node* tmp = cur;
    std::uint32_t counter = 0;
    for (;;) {
      Node* next = rt::from_word<Node>(ctx.load(&tmp->next));
      if (next == nullptr || counter >= max_ops_) break;
      ++counter;
      ctx.prefetch(next);
      Fn f = rt::from_word<std::remove_pointer_t<Fn>>(ctx.load(&tmp->fn));
      ctx.store(&tmp->ret, f(ctx, obj_, ctx.load(&tmp->arg)));
      ctx.store(&tmp->completed, std::uint64_t{1});
      ctx.store(&tmp->wait, std::uint64_t{0});
      tmp = next;
      ++st.served;
    }
    global_.unlock(ctx);
    ctx.store(&tmp->wait, std::uint64_t{0});  // hand off within the cluster
    return ctx.load(&cur->ret);
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "HSynch::stats");
    return stats_[t].s;
  }

 private:
  struct alignas(rt::kCacheLine) Node {
    Word fn{0};
    Word arg{0};
    Word ret{0};
    Word wait{0};
    Word completed{0};
    Word next{0};
  };
  struct alignas(rt::kCacheLine) PaddedWord {
    Word w{0};
  };
  struct alignas(rt::kCacheLine) PerThread {
    Node* node = nullptr;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  void* obj_;
  std::uint32_t max_ops_;
  std::uint32_t csize_;
  std::uint32_t nclusters_;
  std::unique_ptr<Node[]> pool_;
  std::unique_ptr<PaddedWord[]> tails_;
  McsLock<Ctx> global_;
  PerThread my_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::sync

#include "harness/history.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace hmps::harness {

namespace {

std::string describe(const OpRecord& op) {
  static const char* names[] = {"enq", "deq", "push", "pop", "inc", "read"};
  return std::string(names[static_cast<int>(op.kind)]) + "(arg=" +
         std::to_string(op.arg) + ", ret=" + std::to_string(op.ret) +
         ", t" + std::to_string(op.thread) + ", [" +
         std::to_string(op.invoke) + "," + std::to_string(op.response) + "])";
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

SeqSpec queue_spec() {
  SeqSpec s;
  s.apply = [](std::vector<std::uint64_t>& state, const OpRecord& op) {
    if (op.kind == OpKind::kEnq) {
      state.push_back(op.arg);
      return std::uint64_t{0};
    }
    // dequeue
    if (state.empty()) return kNothing;
    const std::uint64_t v = state.front();
    state.erase(state.begin());
    return v;
  };
  return s;
}

SeqSpec stack_spec() {
  SeqSpec s;
  s.apply = [](std::vector<std::uint64_t>& state, const OpRecord& op) {
    if (op.kind == OpKind::kPush) {
      state.push_back(op.arg);
      return std::uint64_t{0};
    }
    if (state.empty()) return kNothing;
    const std::uint64_t v = state.back();
    state.pop_back();
    return v;
  };
  return s;
}

SeqSpec counter_spec() {
  SeqSpec s;
  s.apply = [](std::vector<std::uint64_t>& state, const OpRecord& op) {
    if (state.empty()) state.push_back(0);
    if (op.kind == OpKind::kRead) return state[0];
    return state[0]++;
  };
  return s;
}

CheckResult check_queue_fast(const std::vector<OpRecord>& history) {
  CheckResult r;
  std::unordered_map<std::uint64_t, const OpRecord*> enqs, deqs;
  for (const auto& op : history) {
    if (op.kind == OpKind::kEnq) {
      if (!enqs.emplace(op.arg, &op).second) {
        return {false, "duplicate enqueue of value " + std::to_string(op.arg) +
                           " (values must be unique for this checker)"};
      }
    } else if (op.kind == OpKind::kDeq && op.ret != kNothing) {
      if (!deqs.emplace(op.ret, &op).second) {
        return {false, "value dequeued twice: " + describe(op)};
      }
    }
  }
  for (const auto& [v, d] : deqs) {
    auto it = enqs.find(v);
    if (it == enqs.end()) {
      return {false, "dequeued a value never enqueued: " + describe(*d)};
    }
    if (d->response <= it->second->invoke) {
      return {false, "dequeue completed before its enqueue began: " +
                         describe(*d) + " vs " + describe(*it->second)};
    }
  }
  // Real-time FIFO: enq(a) wholly before enq(b) => deq(b) not wholly before
  // deq(a).
  std::vector<std::pair<const OpRecord*, const OpRecord*>> pairs;
  pairs.reserve(deqs.size());
  for (const auto& [v, d] : deqs) pairs.push_back({enqs.at(v), d});
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (std::size_t j = 0; j < pairs.size(); ++j) {
      if (i == j) continue;
      const auto& [ea, da] = pairs[i];
      const auto& [eb, db] = pairs[j];
      if (ea->response < eb->invoke && db->response < da->invoke) {
        return {false, "FIFO violation: " + describe(*ea) + " precedes " +
                           describe(*eb) + " but " + describe(*db) +
                           " precedes " + describe(*da)};
      }
    }
  }
  return r;
}

CheckResult check_stack_fast(const std::vector<OpRecord>& history) {
  std::unordered_map<std::uint64_t, const OpRecord*> pushes, pops;
  for (const auto& op : history) {
    if (op.kind == OpKind::kPush) {
      if (!pushes.emplace(op.arg, &op).second) {
        return {false, "duplicate push of value " + std::to_string(op.arg) +
                           " (values must be unique for this checker)"};
      }
    } else if (op.kind == OpKind::kPop && op.ret != kNothing) {
      if (!pops.emplace(op.ret, &op).second) {
        return {false, "value popped twice: " + describe(op)};
      }
    }
  }
  for (const auto& [v, p] : pops) {
    auto it = pushes.find(v);
    if (it == pushes.end()) {
      return {false, "popped a value never pushed: " + describe(*p)};
    }
    if (p->response <= it->second->invoke) {
      return {false, "pop completed before its push began: " + describe(*p) +
                         " vs " + describe(*it->second)};
    }
  }
  return {};
}

CheckResult check_counter_fast(const std::vector<OpRecord>& history) {
  std::vector<const OpRecord*> incs;
  for (const auto& op : history) {
    if (op.kind == OpKind::kInc) incs.push_back(&op);
  }
  if (incs.empty()) return {};
  std::vector<std::uint64_t> rets;
  rets.reserve(incs.size());
  for (auto* op : incs) rets.push_back(op->ret);
  std::sort(rets.begin(), rets.end());
  for (std::size_t i = 0; i + 1 < rets.size(); ++i) {
    if (rets[i] == rets[i + 1]) {
      return {false,
              "two increments returned the same value " +
                  std::to_string(rets[i]) + " (lost update)"};
    }
    if (rets[i] + 1 != rets[i + 1]) {
      return {false, "increment results not consecutive around " +
                         std::to_string(rets[i])};
    }
  }
  // Real-time monotonicity: an increment wholly before another must return
  // the smaller value.
  for (const auto* a : incs) {
    for (const auto* b : incs) {
      if (a->response < b->invoke && a->ret >= b->ret) {
        return {false, "non-monotonic increments: " + describe(*a) +
                           " wholly precedes " + describe(*b)};
      }
    }
  }
  return {};
}

CheckResult linearizable(const std::vector<OpRecord>& history,
                         const SeqSpec& spec, std::uint64_t max_nodes) {
  const std::size_t n = history.size();
  if (n == 0) return {};
  if (n > 63) {
    return {false, "history too large for the complete checker (max 63 ops)"};
  }

  // DFS over (linearized-mask, spec state); memoize failed configurations.
  std::unordered_set<std::uint64_t> failed;
  std::vector<std::uint64_t> state;
  std::vector<std::size_t> order;  // for error reporting
  std::uint64_t nodes = 0;
  bool exhausted = false;

  std::function<bool(std::uint64_t)> dfs = [&](std::uint64_t mask) -> bool {
    if (mask == (std::uint64_t{1} << n) - 1) return true;
    if (max_nodes > 0 && ++nodes > max_nodes) {
      exhausted = true;
      return false;
    }
    if (exhausted) return false;
    std::uint64_t key = mask;
    for (std::uint64_t v : state) key = mix(key, v);
    if (failed.count(key)) return false;

    // Minimal-response bound among unlinearized ops: an op may linearize
    // next only if no unlinearized op responded before it was invoked.
    Cycle min_resp = sim::kCycleMax;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask & (std::uint64_t{1} << i))) {
        min_resp = std::min(min_resp, history[i].response);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) continue;
      if (history[i].invoke > min_resp) continue;  // someone must go first
      std::vector<std::uint64_t> saved = state;
      const std::uint64_t expect = spec.apply(state, history[i]);
      if (expect == history[i].ret) {
        order.push_back(i);
        if (dfs(mask | (std::uint64_t{1} << i))) return true;
        order.pop_back();
      }
      state = std::move(saved);
    }
    failed.insert(key);
    return false;
  };

  if (dfs(0)) return {};
  if (exhausted) {
    CheckResult r;
    r.reason = "complete search exceeded " + std::to_string(max_nodes) +
               " nodes (inconclusive)";
    r.inconclusive = true;
    return r;
  }
  return {false, "no linearization exists for this history of " +
                     std::to_string(n) + " ops"};
}

}  // namespace hmps::harness

file(REMOVE_RECURSE
  "CMakeFiles/fig4b_combining_rate.dir/fig4b_combining_rate.cpp.o"
  "CMakeFiles/fig4b_combining_rate.dir/fig4b_combining_rate.cpp.o.d"
  "fig4b_combining_rate"
  "fig4b_combining_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_combining_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Tests for the observability layer: cycle accounting invariants, the JSON
// document model, the metrics registry, and the zero-observer-effect
// guarantee of the harness plumbing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "arch/params.hpp"
#include "arch/profiler.hpp"
#include "harness/workload.hpp"
#include "obs/cycle_account.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace hmps {
namespace {

using obs::CycleAccount;
using obs::JsonValue;
using Bucket = CycleAccount::Bucket;

TEST(CycleAccount, BucketsSumToElapsedAfterSettle) {
  CycleAccount a;
  a.reset(100);
  a.charge(Bucket::kCompute, 100, 150);        // contiguous
  a.charge(Bucket::kCoherenceRead, 180, 220);  // 30-cycle gap -> idle
  a.charge(Bucket::kAtomic, 200, 260);         // 20 cycles clipped
  a.settle(300);                               // 40-cycle tail -> idle
  EXPECT_EQ(a.bucket(Bucket::kCompute), 50u);
  EXPECT_EQ(a.bucket(Bucket::kCoherenceRead), 40u);
  EXPECT_EQ(a.bucket(Bucket::kAtomic), 40u);  // [220, 260) after clipping
  EXPECT_EQ(a.bucket(Bucket::kIdle), 30u + 40u);
  EXPECT_EQ(a.total(), 200u);
  EXPECT_EQ(a.total(), a.mark() - a.origin());
}

TEST(CycleAccount, FullyOverlappedChargeIsClippedToNothing) {
  CycleAccount a;
  a.reset(0);
  a.charge(Bucket::kCompute, 0, 100);
  a.charge(Bucket::kSpin, 20, 80);  // entirely inside accounted time
  EXPECT_EQ(a.bucket(Bucket::kSpin), 0u);
  EXPECT_EQ(a.total(), 100u);
}

TEST(CycleAccount, FinalizeCoversCoreThatNeverReceivedWork) {
  // Open-loop runs can end with the event queue drained before the
  // intended horizon, and some cores (sessions past the last arrival, or
  // cores no fiber was pinned to) never charge anything. finalize() must
  // close the books so the sum invariant holds for them too.
  CycleAccount idle_core;
  idle_core.reset(100);
  idle_core.finalize(5'000);  // mark never moved past the origin
  EXPECT_EQ(idle_core.bucket(Bucket::kIdle), 4'900u);
  EXPECT_EQ(idle_core.total(), 4'900u);
  EXPECT_EQ(idle_core.total(), idle_core.mark() - idle_core.origin());

  CycleAccount worked;
  worked.reset(100);
  worked.charge(Bucket::kCompute, 100, 150);
  worked.finalize(300);  // tail [150, 300) becomes idle, as with settle()
  EXPECT_EQ(worked.bucket(Bucket::kCompute), 50u);
  EXPECT_EQ(worked.bucket(Bucket::kIdle), 150u);
  EXPECT_EQ(worked.total(), 200u);

  // finalize() twice (or finalize after settle) must not double-fill.
  worked.finalize(300);
  EXPECT_EQ(worked.total(), 200u);
}

TEST(CycleAccount, ReclassifyMovesCyclesAndPreservesTotal) {
  CycleAccount a;
  a.reset(0);
  a.charge(Bucket::kUdnRecvWait, 0, 70);
  a.charge(Bucket::kCompute, 70, 100);
  // Carve 50 cycles of queueing delay out of the receive-wait bucket.
  EXPECT_EQ(a.reclassify(Bucket::kUdnRecvWait, Bucket::kSvcQueue, 50), 50u);
  EXPECT_EQ(a.bucket(Bucket::kUdnRecvWait), 20u);
  EXPECT_EQ(a.bucket(Bucket::kSvcQueue), 50u);
  EXPECT_EQ(a.total(), 100u);
  // Overdraw clamps to the bucket's balance, never going negative.
  EXPECT_EQ(a.reclassify(Bucket::kUdnRecvWait, Bucket::kSvcQueue, 1'000),
            20u);
  EXPECT_EQ(a.bucket(Bucket::kUdnRecvWait), 0u);
  EXPECT_EQ(a.bucket(Bucket::kSvcQueue), 70u);
  EXPECT_EQ(a.total(), 100u);
  EXPECT_EQ(a.total(), a.mark() - a.origin());
}

TEST(CycleAccount, DiffSinceIsBucketwiseWindow) {
  CycleAccount a;
  a.reset(0);
  a.charge(Bucket::kCompute, 0, 10);
  a.settle(10);
  const CycleAccount snap = a;
  a.charge(Bucket::kUdnRecvWait, 10, 35);
  a.settle(50);
  const CycleAccount d = a.diff_since(snap);
  EXPECT_EQ(d.bucket(Bucket::kCompute), 0u);
  EXPECT_EQ(d.bucket(Bucket::kUdnRecvWait), 25u);
  EXPECT_EQ(d.bucket(Bucket::kIdle), 15u);
  EXPECT_EQ(d.total(), 40u);
  EXPECT_EQ(d.total(), d.mark() - d.origin());
}

TEST(Json, RoundTripPreservesDocument) {
  JsonValue doc = JsonValue::object();
  doc["name"] = JsonValue("esc \"quote\" \\slash\\ \n\ttail");
  doc["big_uint"] = JsonValue(std::uint64_t{18446744073709551615ull});
  doc["big_int"] = JsonValue(std::int64_t{-9007199254740995ll});  // > 2^53
  doc["pi"] = JsonValue(3.140625);  // exactly representable
  doc["flag"] = JsonValue(true);
  JsonValue& arr = doc["arr"];
  arr.push_back(JsonValue(1u));
  arr.push_back(JsonValue());
  arr.push_back(JsonValue::object());

  const std::string text = doc.dump();
  JsonValue back;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(text, &back, &err)) << err;
  EXPECT_EQ(back.find("name")->as_string(), "esc \"quote\" \\slash\\ \n\ttail");
  EXPECT_EQ(back.find("big_uint")->as_uint(), 18446744073709551615ull);
  EXPECT_EQ(back.find("big_int")->as_int(), -9007199254740995ll);
  EXPECT_EQ(back.find("pi")->as_double(), 3.140625);
  EXPECT_TRUE(back.find("flag")->as_bool());
  EXPECT_EQ(back.find("arr")->size(), 3u);
  // Stable output: dumping the parsed document reproduces the text.
  EXPECT_EQ(back.dump(), text);
  // Compact form parses too.
  JsonValue compact;
  ASSERT_TRUE(JsonValue::parse(doc.dump(-1), &compact, &err)) << err;
  EXPECT_EQ(compact.dump(), text);
}

TEST(Json, ParserRejectsGarbage) {
  JsonValue v;
  EXPECT_FALSE(JsonValue::parse("{\"a\":}", &v));
  EXPECT_FALSE(JsonValue::parse("[1,2", &v));
  EXPECT_FALSE(JsonValue::parse("{} trailing", &v));
  EXPECT_FALSE(JsonValue::parse("\"unterminated", &v));
}

TEST(Json, ParserDecodesEveryEscape) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(R"("\" \\ \/ \b \f \n \r \t")", &v, &err))
      << err;
  EXPECT_EQ(v.as_string(), "\" \\ / \b \f \n \r \t");
  // \u escapes cover the 1-, 2- and 3-byte UTF-8 ranges (BMP only).
  ASSERT_TRUE(JsonValue::parse("\"\\u0041\\u00e9\\u20AC\"", &v, &err)) << err;
  EXPECT_EQ(v.as_string(), "A\xC3\xA9\xE2\x82\xAC");
  // Malformed escapes are errors, not silently dropped bytes.
  EXPECT_FALSE(JsonValue::parse(R"("\uZZZZ")", &v));
  EXPECT_FALSE(JsonValue::parse(R"("\u00")", &v));  // short
  EXPECT_FALSE(JsonValue::parse(R"("\q")", &v));    // unknown escape
  EXPECT_FALSE(JsonValue::parse("\"dangling\\", &v));
}

TEST(Json, Uint64BoundaryValuesRoundTrip) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::parse("18446744073709551615", &v, &err)) << err;
  EXPECT_EQ(v.as_uint(), 18446744073709551615ull);
  EXPECT_EQ(v.dump(-1), "18446744073709551615");
  ASSERT_TRUE(JsonValue::parse("-9223372036854775808", &v, &err)) << err;
  EXPECT_EQ(v.as_int(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(v.dump(-1), "-9223372036854775808");
  ASSERT_TRUE(JsonValue::parse("0", &v, &err)) << err;
  EXPECT_EQ(v.as_uint(), 0u);
}

TEST(Json, DeeplyNestedDocumentRoundTrips) {
  constexpr int kDepth = 200;
  std::string text;
  for (int i = 0; i < kDepth; ++i) text += "[";
  text += "7";
  for (int i = 0; i < kDepth; ++i) text += "]";
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(text, &v, &err)) << err;
  const JsonValue* p = &v;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_EQ(p->size(), 1u) << "level " << i;
    p = &p->items()[0];
  }
  EXPECT_EQ(p->as_uint(), 7u);
  // The writer's output (whatever its layout) must re-parse to a stable
  // fixed point at this depth.
  JsonValue again;
  ASSERT_TRUE(JsonValue::parse(v.dump(), &again, &err)) << err;
  EXPECT_EQ(again.dump(), v.dump());
}

TEST(Json, TruncatedInputsAreRejectedNotCrashed) {
  // Every prefix of a valid document must fail cleanly (the artifact
  // readers parse files that may have been cut off mid-write).
  const std::string full =
      R"({"a":[1,{"b":"x\n"},true],"c":null,"d":1.5e3})";
  JsonValue v;
  for (std::size_t n = 0; n < full.size(); ++n) {
    std::string err;
    EXPECT_FALSE(JsonValue::parse(full.substr(0, n), &v, &err))
        << "prefix length " << n;
    EXPECT_FALSE(err.empty()) << "prefix length " << n;
  }
  std::string err;
  EXPECT_TRUE(JsonValue::parse(full, &v, &err)) << err;
}

TEST(MetricsRegistry, StampedDocumentRoundTripsThroughDisk) {
  obs::MetricsRegistry reg;
  const char* argv[] = {const_cast<char*>("bench"),
                        const_cast<char*>("--json"),
                        const_cast<char*>("out.json")};
  reg.stamp("fig_test", 3, const_cast<char**>(argv));
  JsonValue& run = reg.add_run("mp-server/t4");
  run["config"]["app_threads"] = JsonValue(4u);

  const std::string path = "/tmp/hmps_metrics_test.json";
  ASSERT_TRUE(reg.write(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(ss.str(), &doc, &err)) << err;
  EXPECT_EQ(doc.find("schema")->as_string(), "hmps-metrics-v2");
  EXPECT_EQ(doc.find("bench")->as_string(), "fig_test");
  EXPECT_EQ(doc.find("argv")->size(), 3u);
  EXPECT_TRUE(doc.has("git"));
  EXPECT_TRUE(doc.has("build_flags"));
  ASSERT_EQ(doc.find("runs")->size(), 1u);
  const JsonValue& r0 = doc.find("runs")->items()[0];
  EXPECT_EQ(r0.find("label")->as_string(), "mp-server/t4");
  EXPECT_EQ(r0.find("config")->find("app_threads")->as_uint(), 4u);
  std::remove(path.c_str());
}

TEST(MetricsRegistry, CycleAccountJsonHasAllBucketsAndTotal) {
  CycleAccount a;
  a.reset(0);
  a.charge(Bucket::kCompute, 0, 7);
  a.settle(10);
  const JsonValue j = obs::MetricsRegistry::cycle_account_json(a);
  for (int b = 0; b < Bucket::kNumBuckets; ++b) {
    const char* name = CycleAccount::bucket_name(static_cast<Bucket>(b));
    ASSERT_TRUE(j.has(name)) << name;
  }
  EXPECT_EQ(j.find("compute")->as_uint(), 7u);
  EXPECT_EQ(j.find("idle")->as_uint(), 3u);
  EXPECT_EQ(j.find("total")->as_uint(), 10u);
}

TEST(Profiler, LabelHonorsConfiguredLineBytes) {
  arch::CoherenceProfiler p;
  EXPECT_EQ(p.line_bytes(), 64u);  // default matches the old behavior
  p.set_line_bytes(128);
  EXPECT_EQ(p.line_bytes(), 128u);
  p.set_line_bytes(0);  // ignored
  EXPECT_EQ(p.line_bytes(), 128u);
  // Two addresses 64 bytes apart share a 128-byte line: the second label
  // overwrites the first (before the fix they landed on distinct lines).
  p.label(reinterpret_cast<const void*>(0x1000), "first");
  p.label(reinterpret_cast<const void*>(0x1040), "second");
  p.on_read(0x1000 / 128, 10);
  const auto top = p.top_lines(4);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].label, "second");
}

// --- harness plumbing -----------------------------------------------------

harness::RunCfg small_cfg() {
  harness::RunCfg cfg;
  cfg.app_threads = 3;
  cfg.warmup = 20'000;
  cfg.window = 50'000;
  cfg.reps = 2;
  cfg.seed = 7;
  return cfg;
}

TEST(HarnessObs, CollectingArtifactsHasZeroObserverEffect) {
  const harness::RunResult plain =
      harness::run_counter(small_cfg(), harness::Approach::kMpServer);

  obs::MetricsRegistry reg;
  sim::Tracer sink;
  harness::RunCfg cfg = small_cfg();
  cfg.obs.metrics = &reg;
  cfg.obs.trace = &sink;
  cfg.obs.label = "mp-server";
  const harness::RunResult observed =
      harness::run_counter(cfg, harness::Approach::kMpServer);

  // Identical simulated outcome, bit for bit: observability never advances
  // simulated time or perturbs scheduling.
  EXPECT_EQ(plain.total_ops, observed.total_ops);
  EXPECT_EQ(plain.mops, observed.mops);
  EXPECT_EQ(plain.lat_mean, observed.lat_mean);
  EXPECT_EQ(plain.serv_stall_per_op, observed.serv_stall_per_op);
  EXPECT_GT(sink.size(), 0u);
  EXPECT_EQ(reg.root()["runs"].size(), 1u);
}

// A fiber charges its current operation before sleeping through it, so an
// account's mark can sit up to one operation past a window horizon. The
// windowed total therefore matches reps * window only up to one in-flight
// operation at each boundary; the unconditional invariant is that the
// buckets sum to exactly the cycle span the account covers (mark - origin).
constexpr sim::Cycle kBoundarySlop = 2'000;

void expect_covers_window(const CycleAccount& a, sim::Cycle window,
                          const char* what) {
  EXPECT_EQ(a.total(), a.mark() - a.origin()) << what;  // exact, always
  EXPECT_GE(a.total() + kBoundarySlop, window) << what;
  EXPECT_LE(a.total(), window + kBoundarySlop) << what;
}

TEST(HarnessObs, ServicingAccountSumsToMeasuredCycles) {
  harness::RunCfg cfg = small_cfg();
  const harness::RunResult r =
      harness::run_counter(cfg, harness::Approach::kMpServer);
  expect_covers_window(r.serv_account, cfg.reps * cfg.window, "mp-server");
  // A message-passing server core is busy receiving/serving, not
  // coherence-stalled: the account must show UDN waits, not idle guesswork.
  EXPECT_GT(r.serv_account.bucket(CycleAccount::kCompute), 0u);
  EXPECT_GT(r.serv_account.bucket(CycleAccount::kUdnRecvWait), 0u);
}

TEST(HarnessObs, AccountsCoverEveryCoreAndConstruction) {
  for (const auto a :
       {harness::Approach::kShmServer, harness::Approach::kCcSynch,
        harness::Approach::kHybComb}) {
    harness::RunCfg cfg = small_cfg();
    const harness::RunResult r = harness::run_counter(cfg, a);
    expect_covers_window(r.serv_account, cfg.reps * cfg.window,
                         harness::approach_name(a));
  }
}

TEST(HarnessObs, MetricsRunEntryIsComplete) {
  obs::MetricsRegistry reg;
  harness::RunCfg cfg = small_cfg();
  cfg.obs.metrics = &reg;
  cfg.obs.label = "hybcomb";
  (void)harness::run_counter(cfg, harness::Approach::kHybComb);
  ASSERT_EQ(reg.root()["runs"].size(), 1u);
  const JsonValue& run = reg.root()["runs"].items()[0];
  EXPECT_EQ(run.find("label")->as_string(), "hybcomb");
  ASSERT_TRUE(run.has("config"));
  ASSERT_TRUE(run.has("results"));
  ASSERT_TRUE(run.has("sync_stats"));
  ASSERT_TRUE(run.has("machine"));
  ASSERT_TRUE(run.has("cycle_accounts"));
  const JsonValue* accts = run.find("cycle_accounts");
  EXPECT_EQ(accts->size(), std::size_t{36});  // one per tilegx36 core
  const std::uint64_t window = cfg.reps * cfg.window;
  for (const JsonValue& a : accts->items()) {
    const std::uint64_t total = a.find("total")->as_uint();
    EXPECT_GE(total + kBoundarySlop, window);
    EXPECT_LE(total, window + kBoundarySlop);
  }
  EXPECT_EQ(run.find("config")->find("seed")->as_uint(), 7u);
  EXPECT_GT(run.find("results")->find("total_ops")->as_uint(), 0u);
}

}  // namespace
}  // namespace hmps

file(REMOVE_RECURSE
  "CMakeFiles/native_micro.dir/native_micro.cpp.o"
  "CMakeFiles/native_micro.dir/native_micro.cpp.o.d"
  "native_micro"
  "native_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig3a_counter_throughput.
# This may be replaced when dependencies are built.

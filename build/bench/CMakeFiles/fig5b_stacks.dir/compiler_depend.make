# Empty compiler generated dependencies file for fig5b_stacks.
# This may be replaced when dependencies are built.

// Common critical-section plumbing shared by all universal constructions.
//
// Every construction serves one concurrent object (the paper's footnote 2:
// the object a CS executes on is implicit). A critical section is a plain
// function taking the execution context, the object, and one 64-bit
// argument, returning one 64-bit result — which is exactly what fits the
// paper's 3-word request / 1-word response message format:
//     request  = { sender_id, fn, arg }
//     response = { retval }
//
// The fn word doubles as the paper's Section 5.2 "opcode" optimization:
// since it is a direct function pointer, the servicing thread's dispatch is
// a single indirect call (the inlining effect the paper exploits).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "runtime/context.hpp"

namespace hmps::sync {

using rt::Cycle;
using rt::Tid;
using rt::Word;

/// Critical-section body type for a given execution context.
template <class Ctx>
using CsFn = std::uint64_t (*)(Ctx&, void* obj, std::uint64_t arg);

/// fn == kStopWord in a request shuts a server loop down (never a valid
/// function pointer).
inline constexpr std::uint64_t kStopWord = 0;

/// Per-construction counters, exposed uniformly so the harness can report
/// the paper's Fig. 4b / Section 5.3 metrics.
struct SyncStats {
  std::uint64_t ops = 0;             ///< apply() calls completed
  std::uint64_t served = 0;          ///< CSes executed while servicing
  std::uint64_t tenures = 0;         ///< combining rounds (combiners only)
  std::uint64_t cas_attempts = 0;    ///< CAS executions (HybComb Fig. 5.3)
  std::uint64_t cas_failures = 0;
  // Section 6 robustness paths (docs/ROBUSTNESS.md):
  std::uint64_t throttle_waits = 0;  ///< waits for an in-flight credit
  std::uint64_t stall_timeouts = 0;  ///< combiner-stall timeouts observed

  void reset() { *this = SyncStats{}; }

  /// Field-wise accumulation (the harness sums per-thread slots).
  void add(const SyncStats& o) {
    ops += o.ops;
    served += o.served;
    tenures += o.tenures;
    cas_attempts += o.cas_attempts;
    cas_failures += o.cas_failures;
    throttle_waits += o.throttle_waits;
    stall_timeouts += o.stall_timeouts;
  }

  /// Average requests executed per combining round (Fig. 4b).
  double combining_rate() const {
    return tenures ? static_cast<double>(served) / static_cast<double>(tenures)
                   : 0.0;
  }
};

/// Exploration yield point at a named sync-layer boundary (`where` must
/// have static storage duration). Compiles to nothing for contexts without
/// schedule exploration (NativeCtx); for SimCtx it is one predicted branch
/// unless a sim::Perturber is installed, which may stall the thread here as
/// if it were descheduled — the targeted-preemption lever of the
/// src/check schedule-exploration harness (docs/TESTING.md).
template <class Ctx>
inline void explore_point(Ctx& ctx, const char* where) {
  if constexpr (requires { ctx.explore_point(where); }) {
    ctx.explore_point(where);
  }
}

/// Hard capacity check for the fixed per-thread pools every construction
/// keeps (nodes, channels, stats). A run configured with more threads than
/// kMaxThreads used to index silently past those arrays; now it dies with a
/// diagnosis instead of corrupting memory.
inline void check_tid(Tid tid, std::uint32_t capacity, const char* who) {
  if (tid >= capacity) [[unlikely]] {
    std::fprintf(stderr,
                 "hmps fatal: %s: thread id %u exceeds the construction's "
                 "fixed capacity of %u threads (kMaxThreads)\n",
                 who, static_cast<unsigned>(tid),
                 static_cast<unsigned>(capacity));
    std::abort();
  }
}

}  // namespace hmps::sync

// MetricsRegistry: one nested, machine-readable JSON document per bench
// invocation, stamped with everything needed to reproduce the run (seed,
// git describe, build flags, full parameter set) and holding one entry per
// benchmark run with engine counters, coherence/UDN/fault counters,
// per-core cycle accounts, sync stats, and results.
//
// The document is stable and diffable: object members are written in
// insertion order, integers round-trip exactly, and no wall-clock
// timestamps are embedded. Schema documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>

#include "obs/cycle_account.hpp"
#include "obs/json.hpp"

namespace hmps::arch {
class Machine;
struct MachineParams;
}  // namespace hmps::arch
namespace hmps::sync {
struct SyncStats;
}
namespace hmps::sim {
class Tracer;
}

namespace hmps::obs {

class MetricsRegistry {
 public:
  MetricsRegistry();

  /// Stamps the document root with reproducibility metadata: bench name,
  /// the exact argv, git describe, and build flags (injected at compile
  /// time). Call once, before any add_run().
  void stamp(const std::string& bench, int argc, char** argv);

  /// Appends an empty run entry (object with its "label" set) to "runs"
  /// and returns a reference for the caller to fill. References stay valid
  /// until the next add_run().
  JsonValue& add_run(const std::string& label);

  JsonValue& root() { return root_; }
  const JsonValue& root() const { return root_; }

  /// Writes the document to `path` (pretty-printed). Returns false on I/O
  /// failure.
  bool write(const std::string& path) const;

  // ---- snapshot helpers (pure functions of the source structs) ----

  /// Full MachineParams serialization, sufficient to reconstruct the
  /// machine preset from the artifact alone.
  static JsonValue params_json(const arch::MachineParams& p);

  /// Counter snapshot of a machine: engine counters, coherence counters,
  /// UDN counters, fault-injection counters, and (when a profiler is
  /// attached) the hottest coherence lines.
  static JsonValue machine_json(arch::Machine& m);

  static JsonValue sync_stats_json(const sync::SyncStats& s);

  /// One cycle account as {"compute": N, ..., "idle": N, "total": N}.
  static JsonValue cycle_account_json(const CycleAccount& a);

  /// Tracer health: recorded and dropped event counts.
  static JsonValue tracer_json(const sim::Tracer& t);

 private:
  JsonValue root_;
};

}  // namespace hmps::obs

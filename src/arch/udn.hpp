// Hardware message-passing model (Tilera User Dynamic Network).
//
// Each core owns a hardware message buffer of `udn_buf_words` 64-bit words,
// demultiplexed into `udn_queues` independent FIFO queues (Section 5.1 of
// the paper). send() is asynchronous: the sender pays only injection cost
// unless the destination buffer is out of space, in which case the message
// backs up into the network and the sender blocks (credit-based model of
// the paper's never-drop guarantee). receive() reads from the local buffer
// and blocks until enough words are present.
//
// send()/receive() must be called from inside scheduler fibers; delivery is
// an ordinary discrete event.
//
// Hot-path layout (docs/ENGINE.md): each queue is a fixed-capacity
// power-of-two ring of words sized from udn_buf_words, allocated once at
// construction. send() bulk-copies the payload into the destination ring
// immediately ("staging" — legal because the credit check has already
// reserved the space) and schedules a tiny delivery event that merely makes
// the words visible; receive() bulk-copies words out. No per-message heap
// allocation, no word-at-a-time deque churn. Staging order equals delivery
// order because ingress-port serialization makes delivery times per buffer
// non-decreasing in send order, with the queue's (time, seq) total order
// breaking ties the same way.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "arch/noc.hpp"
#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

using sim::Cycle;
using sim::Tid;

/// Fixed-capacity power-of-two ring of 64-bit words with a staging area:
/// stage() copies words in at the reserved tail, commit() makes them
/// visible, pop() copies them out. Indices are free-running; the mask wraps.
class WordRing {
 public:
  void init(std::size_t capacity_pow2) {
    assert(capacity_pow2 && (capacity_pow2 & (capacity_pow2 - 1)) == 0);
    slots_.assign(capacity_pow2, 0);
    mask_ = capacity_pow2 - 1;
    head_ = tail_ = staged_ = 0;
  }

  /// Words currently visible to receive().
  std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }
  bool empty() const { return tail_ == head_; }

  /// Copies `n` words into the ring at the staging tail. Caller guarantees
  /// capacity (the UDN credit check reserves it).
  void stage(const std::uint64_t* w, std::size_t n) {
    assert(staged_ - head_ + n <= slots_.size());
    const std::size_t pos = static_cast<std::size_t>(staged_) & mask_;
    const std::size_t first = n < slots_.size() - pos ? n : slots_.size() - pos;
    std::memcpy(slots_.data() + pos, w, first * sizeof(std::uint64_t));
    std::memcpy(slots_.data(), w + first, (n - first) * sizeof(std::uint64_t));
    staged_ += n;
  }

  /// Makes the next `n` staged words visible (delivery event).
  void commit(std::size_t n) {
    tail_ += n;
    assert(tail_ <= staged_);
  }

  /// Copies the `n` oldest visible words out of the ring.
  void pop(std::uint64_t* out, std::size_t n) {
    assert(n <= size());
    const std::size_t pos = static_cast<std::size_t>(head_) & mask_;
    const std::size_t first = n < slots_.size() - pos ? n : slots_.size() - pos;
    std::memcpy(out, slots_.data() + pos, first * sizeof(std::uint64_t));
    std::memcpy(out + first, slots_.data(), (n - first) * sizeof(std::uint64_t));
    head_ += n;
  }

 private:
  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::uint64_t head_ = 0;    ///< next word to pop
  std::uint64_t tail_ = 0;    ///< end of delivered (visible) words
  std::uint64_t staged_ = 0;  ///< end of staged (in-flight) words
};

class UdnModel {
 public:
  UdnModel(const MachineParams& p, const MeshTopology& topo,
           sim::Scheduler& sched);

  /// Sends `n` words to (dst core, dst queue). Blocks the calling fiber on
  /// backpressure; otherwise costs inject + per-word serialization.
  void send(Tid src, Tid dst, std::uint32_t queue, const std::uint64_t* words,
            std::size_t n);

  /// Receives exactly `n` words from the local queue, blocking as needed.
  void receive(Tid dst, std::uint32_t queue, std::uint64_t* out,
               std::size_t n);

  /// True iff the local queue currently holds no words.
  bool queue_empty(Tid core, std::uint32_t queue) const {
    return bufs_[core].queues[queue].empty();
  }

  std::size_t words_pending(Tid core, std::uint32_t queue) const {
    return bufs_[core].queues[queue].size();
  }

  /// Words currently holding credits in a core's hardware buffer (resident
  /// or in flight toward it) — the rx-queue-depth gauge obs::Telemetry
  /// samples per window.
  std::size_t buffer_occupancy(Tid core) const {
    return bufs_[core].reserved;
  }

  std::uint32_t n_queues() const { return static_cast<std::uint32_t>(nq_); }

  NocModel& noc() { return noc_; }

  /// Attaches a tracer (nullptr detaches; not owned). While the tracer is
  /// enabled, every message records a Perfetto flow-event pair: "s" on the
  /// sending core at send time, "f" on the destination core at delivery
  /// time, sharing a fresh flow id. Pure observation — no timing effect.
  void attach_tracer(sim::Tracer* t) { tracer_ = t; }

  /// Attaches the machine's fault injector (and forwards it to the NoC).
  /// When a plan with UDN pressure is active, sends see a shrunk credit
  /// window and deliveries may take extra latency; the injector's window
  /// transitions re-check senders blocked on credits.
  void attach_faults(sim::FaultInjector* f);

  /// Re-checks credit-blocked senders on every buffer against the current
  /// effective credit window (fault-injection hook: a closing pressure
  /// window restores capacity without any receive happening).
  void release_all_senders() {
    for (auto& b : bufs_) try_release_senders(b);
  }

  struct Counters {
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
    std::uint64_t sender_blocks = 0;  ///< sends that hit backpressure
    std::uint64_t peak_occupancy = 0; ///< max words resident in one buffer
  };
  const Counters& counters() const { return counters_; }
  /// Also resets the NoC's aggregate counters, so the post-warmup deltas
  /// the artifact reports cover the same interval for both models.
  void reset_counters() {
    counters_ = {};
    noc_.reset_counters();
  }

 private:
  struct Waiter {
    sim::Scheduler::FiberId fiber;
    std::size_t need;
  };

  /// FIFO of blocked fibers. An index-fronted vector rather than a deque:
  /// the vector's capacity is the pool, so steady-state block/wake cycles
  /// allocate nothing (a deque allocates/frees map nodes periodically even
  /// when its size just oscillates around zero).
  struct WaiterFifo {
    std::vector<Waiter> items;
    std::size_t head = 0;

    bool empty() const { return head == items.size(); }
    const Waiter& front() const { return items[head]; }
    void push_back(Waiter w) { items.push_back(w); }
    void pop_front() {
      if (++head == items.size()) {
        items.clear();
        head = 0;
      }
    }
  };

  struct Buffer {
    std::vector<WordRing> queues;
    std::size_t reserved = 0;  ///< words in flight or resident (credits)
    Cycle port_busy = 0;       ///< ingress port serialization
    std::vector<WaiterFifo> q_recv_waiters;  ///< blocked receivers
    WaiterFifo send_waiters;  ///< senders blocked on credits
  };

  void try_release_senders(Buffer& b);

  /// Credit capacity currently in force (the hardware buffer size, shrunk
  /// while a fault-injected pressure window is open).
  std::size_t effective_credits() const {
    return faults_ && faults_->active()
               ? faults_->credit_limit(p_.udn_buf_words)
               : p_.udn_buf_words;
  }

  const MachineParams& p_;
  const MeshTopology& topo_;
  NocModel noc_;
  sim::Scheduler& sched_;
  sim::FaultInjector* faults_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  std::size_t nq_;
  std::vector<Buffer> bufs_;
  Counters counters_;
};

}  // namespace hmps::arch

// Reproduces Fig. 5a: throughput of concurrent queues under balanced load.
//
//   X-1          one-lock MS-Queue implemented with approach X
//   mp-server-2  two-lock MS-Queue with two MP-SERVER instances (two
//                dedicated servers); the fenced CS bodies it needs on the
//                weakly-ordered TILE-Gx are what make it lose to one lock
//   LCRQ         Morrison & Afek's nonblocking queue (32-bit-value port)
//
// Expected shape: mp-server-1 and HybComb-1 lead (up to ~2x / ~1.5x over
// the best shared-memory variant); LCRQ and mp-server-2 level off sooner
// (controller-serialized atomics, resp. fence costs).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::QueueImpl;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig5a_queues", argc, argv);

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{1, 2, 4, 6, 8, 10, 12, 14, 16,
                                             18, 20, 22, 24, 26, 28, 30, 32,
                                             34}
                : std::vector<std::uint32_t>{1, 5, 10, 15, 20, 25, 30, 34};
  if (args.threads) threads = {args.threads};

  const QueueImpl order[] = {QueueImpl::kMp1,  QueueImpl::kHyb1,
                             QueueImpl::kShm1, QueueImpl::kCc1,
                             QueueImpl::kLcrq, QueueImpl::kMp2,
                             QueueImpl::kVl1};

  harness::RunPool pool(art, args.jobs);
  for (std::uint32_t t : threads) {
    harness::RunCfg cfg;
    cfg.app_threads = t;
    cfg.seed = args.seed;
    cfg.machine.noc_combining = args.noc_combining;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    for (QueueImpl q : order) {
      pool.submit(std::string(harness::queue_name(q)) + "/t" +
                      std::to_string(t),
                  [cfg, q](const harness::RunObs& obs) {
                    harness::RunCfg c = cfg;
                    c.obs = obs;
                    const auto r = harness::run_queue(c, q);
                    std::fprintf(stderr, "[fig5a] %s done\n", obs.label);
                    return r;
                  });
    }
  }
  const auto& results = pool.drain();

  harness::Table table({"clients", "mp-server-1", "HybComb-1", "shm-server-1",
                        "CC-Synch-1", "LCRQ", "mp-server-2", "vlink-1"});
  std::size_t idx = 0;
  for (std::uint32_t t : threads) {
    std::vector<std::string> row{std::to_string(t)};
    for (std::size_t q = 0; q < 7; ++q)
      row.push_back(harness::fmt(results[idx++].mops));
    table.add_row(row);
  }
  std::string title =
      "Fig. 5a: queue throughput (Mops/s) under balanced load";
  if (args.noc_combining) title += " [noc-combining on]";
  table.print(title);
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

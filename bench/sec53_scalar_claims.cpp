// Verifies the scalar claims of Section 5.3 (the paper's text):
//   * MP-SERVER peak throughput up to ~4.3x SHM-SERVER's,
//   * HYBCOMB up to ~2.5x CC-SYNCH at high concurrency,
//   * HYBCOMB executes <= 0.7 CAS per operation in multithreaded runs,
//     ~0.1 at high concurrency,
//   * fairness (max/min per-thread ops) <= ~1.2 for HYBCOMB and ~1.1 for
//     MP-SERVER (cores nearer to the server complete slightly more ops).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "sec53_scalar_claims", argc, argv);

  harness::Table table({"metric", "paper", "measured"});

  harness::RunCfg hi;
  hi.app_threads = args.threads ? args.threads : 35;
  hi.seed = args.seed;
  if (args.window) hi.window = args.window;
  if (args.reps) hi.reps = args.reps;

  hi.obs = art.next_run("mp-server/hi");
  const auto mp = harness::run_counter(hi, Approach::kMpServer);
  hi.obs = art.next_run("shm-server/hi");
  const auto shm = harness::run_counter(hi, Approach::kShmServer);
  hi.obs = art.next_run("HybComb/hi");
  const auto hyb = harness::run_counter(hi, Approach::kHybComb);
  hi.obs = art.next_run("CC-Synch/hi");
  const auto cc = harness::run_counter(hi, Approach::kCcSynch);

  table.add_row({"mp-server / shm-server peak throughput", "4.3x",
                 harness::fmt(mp.mops / shm.mops) + "x"});
  table.add_row({"HybComb / CC-Synch peak throughput", "~2.5x",
                 harness::fmt(hyb.mops / cc.mops) + "x"});
  table.add_row({"HybComb CAS/op, high concurrency", "~0.1",
                 harness::fmt(hyb.cas_per_op, 3)});

  // Worst-case CAS/op across moderate concurrency (paper: <= 0.7).
  double worst_cas = 0;
  double worst_fair_hyb = 0;
  for (std::uint32_t t : {2u, 5u, 8u, 12u, 20u, 28u, 35u}) {
    harness::RunCfg cfg = hi;
    cfg.app_threads = t;
    cfg.obs = art.next_run("HybComb/t" + std::to_string(t));
    const auto r = harness::run_counter(cfg, Approach::kHybComb);
    if (r.cas_per_op > worst_cas) worst_cas = r.cas_per_op;
    if (r.fairness > worst_fair_hyb) worst_fair_hyb = r.fairness;
    std::fprintf(stderr, "[sec53] hybcomb sweep t=%u done\n", t);
  }
  table.add_row({"HybComb CAS/op, worst over thread counts", "<= 0.7",
                 harness::fmt(worst_cas, 3)});
  table.add_row({"HybComb fairness ratio, worst", "<= ~1.2",
                 harness::fmt(worst_fair_hyb)});
  table.add_row({"mp-server fairness ratio (35 threads)", "~1.1",
                 harness::fmt(mp.fairness)});

  table.print("Section 5.3: scalar claims, paper vs measured");
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

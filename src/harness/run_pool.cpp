#include "harness/run_pool.hpp"

#include <cstdlib>
#include <utility>

namespace hmps::harness {

std::uint32_t resolve_jobs(std::uint32_t flag) {
  if (flag != 0) return flag;
  if (const char* env = std::getenv("HMPS_JOBS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  const std::uint32_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

TaskPool::TaskPool(std::uint32_t jobs) : jobs_(jobs > 0 ? jobs : 1) {
  if (jobs_ <= 1) return;
  threads_.reserve(jobs_);
  for (std::uint32_t i = 0; i < jobs_; ++i) {
    threads_.emplace_back([this] { worker(); });
  }
}

TaskPool::~TaskPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> l(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::submit(std::function<void()> task) {
  if (threads_.empty()) {  // inline mode: the serial code path
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> l(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void TaskPool::wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> l(mu_);
  done_cv_.wait(l, [this] { return in_flight_ == 0; });
}

void TaskPool::worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> l(mu_);
      work_cv_.wait(l, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    bool drained;
    {
      std::lock_guard<std::mutex> l(mu_);
      drained = --in_flight_ == 0;
    }
    if (drained) done_cv_.notify_all();
  }
}

RunPool::RunPool(RunArtifacts& art, std::uint32_t jobs)
    : art_(art), pool_(resolve_jobs(jobs)) {}

std::size_t RunPool::submit(std::string label, RunFn fn) {
  queue_.emplace_back();
  Job& j = queue_.back();
  // Label and pid come from the shared RunArtifacts *now*, on the calling
  // thread: submission order fixes the artifact order regardless of which
  // worker finishes first.
  j.obs = art_.next_run(std::move(label));
  j.use_metrics = j.obs.metrics != nullptr;
  j.use_trace = j.obs.trace != nullptr;
  if (j.use_metrics) j.obs.metrics = &j.metrics;
  if (j.use_trace) j.obs.trace = &j.trace;
  j.fn = std::move(fn);
  Job* jp = &j;  // deque: stable across later submits
  pool_.submit([jp] { jp->result = jp->fn(jp->obs); });
  return queue_.size() - 1;
}

const std::vector<RunResult>& RunPool::drain() {
  pool_.wait();
  results_.clear();
  results_.reserve(queue_.size());
  for (Job& j : queue_) {
    if (j.use_metrics) {
      // Move this run's sections into the shared document. Each run
      // appended exactly the entries it would have appended serially, so
      // concatenating in submission order reproduces the serial document.
      obs::JsonValue& dst = art_.metrics().root()["runs"];
      for (obs::JsonValue& r : j.metrics.root()["runs"].items()) {
        dst.push_back(std::move(r));
      }
    }
    if (j.use_trace) art_.trace().merge_from(j.trace);
    results_.push_back(j.result);
  }
  queue_.clear();
  return results_;
}

}  // namespace hmps::harness

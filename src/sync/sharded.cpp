#include "sync/sharded.hpp"

namespace hmps::sync {

namespace {

/// splitmix64 finalizer: the avalanche stage used throughout the repo's
/// seeding paths. Good enough that rendezvous weights over a few dozen
/// shards are effectively independent per (object, shard) pair.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint32_t shard_of(std::uint64_t obj, std::uint32_t shards) {
  if (shards <= 1) return 0;
  // Rendezvous (highest-random-weight) hashing: every (object, shard) pair
  // gets an independent weight and the object lives on the shard with the
  // largest one. Unlike `obj % shards`, growing or shrinking the fleet by
  // one shard relocates only ~1/shards of the objects, and unlike a ring it
  // needs no virtual-node tuning to balance a handful of shards.
  std::uint32_t best = 0;
  std::uint64_t best_w = mix64((obj + 1) * 0x2545f4914f6cdd1dULL);
  for (std::uint32_t s = 1; s < shards; ++s) {
    const std::uint64_t w =
        mix64((obj + 1) * 0x2545f4914f6cdd1dULL + s * 0xd1342543de82ef95ULL);
    if (w > best_w) {
      best_w = w;
      best = s;
    }
  }
  return best;
}

std::vector<std::uint32_t> shard_route_table(std::uint64_t n_objects,
                                             std::uint32_t shards) {
  std::vector<std::uint32_t> t;
  t.reserve(n_objects);
  for (std::uint64_t o = 0; o < n_objects; ++o) {
    t.push_back(shard_of(o, shards));
  }
  return t;
}

std::vector<std::uint64_t> shard_load_counts(std::uint64_t n_objects,
                                             std::uint32_t shards) {
  std::vector<std::uint64_t> counts(shards == 0 ? 1 : shards, 0);
  for (std::uint64_t o = 0; o < n_objects; ++o) {
    ++counts[shard_of(o, shards)];
  }
  return counts;
}

double shard_load_max_over_mean(std::uint64_t n_objects,
                                std::uint32_t shards) {
  if (shards == 0 || n_objects == 0) return 0.0;
  const std::vector<std::uint64_t> counts = shard_load_counts(n_objects, shards);
  std::uint64_t max = 0;
  for (const std::uint64_t c : counts) {
    if (c > max) max = c;
  }
  const double mean =
      static_cast<double>(n_objects) / static_cast<double>(shards);
  return static_cast<double>(max) / mean;
}

}  // namespace hmps::sync

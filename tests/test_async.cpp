// Async delegation tickets (docs/MODEL.md §9): apply_async / wait /
// wait_all across MP-SERVER, MP-SERVER-HUB, SHM-SERVER and HYBCOMB, on the
// deterministic simulator and under real threads via NativeCtx. Exercises
// the demux deliberately: trains are reaped in reverse (and arbitrary)
// order so replies must flow through the context's staging path, and the
// Section 6 credit guard is driven with more outstanding tickets than
// credits to pin the no-self-deadlock drain.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "runtime/native_context.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/async_batcher.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"
#include "sync/mp_server_hub.hpp"
#include "sync/shm_server.hpp"

namespace hmps {
namespace {

using rt::NativeCtx;
using rt::NativeEnv;
using rt::SimCtx;
using rt::SimExecutor;

// CS body flagging concurrent entry; returns the pre-increment value so
// completeness and uniqueness are both checkable from the reap results.
struct MutexProbe {
  ds::SeqCounter counter;
  int inside = 0;
  int max_inside = 0;
};

template <class Ctx>
std::uint64_t probe_cs(Ctx& ctx, void* obj, std::uint64_t /*arg*/) {
  auto* p = static_cast<MutexProbe*>(obj);
  ++p->inside;
  if (p->inside > p->max_inside) p->max_inside = p->inside;
  const std::uint64_t v = ctx.load(&p->counter.value);
  ctx.compute(7);
  ctx.store(&p->counter.value, v + 1);
  --p->inside;
  return v;
}

enum class AKind { kMpServer, kMpServerHub, kShmServer, kHybComb };

constexpr AKind kAllAsync[] = {AKind::kMpServer, AKind::kMpServerHub,
                               AKind::kShmServer, AKind::kHybComb};

struct Result {
  std::uint64_t final_count = 0;
  std::uint64_t total_ops = 0;
  int max_inside = 0;
  bool all_returns_unique = true;
};

// Clients issue `train`-deep ticket trains and reap them in REVERSE order
// (forcing every non-last reply through the staging path), `ops_each` ops
// per client in total. `use_wait_all` reaps via wait_all instead (values
// discarded, so uniqueness is only checked when reaping individually).
Result run_sim_async(AKind kind, std::uint32_t nclients,
                     std::uint64_t ops_each, std::uint32_t train,
                     std::uint64_t max_inflight = 0,
                     bool use_wait_all = false) {
  SimExecutor ex(arch::MachineParams::tilegx36(), /*seed=*/7);
  MutexProbe probe;
  std::vector<std::vector<std::uint64_t>> returns(nclients);

  sync::MpServer<SimCtx> mp(0, &probe, max_inflight);
  sync::MpServerHub<SimCtx> hub(0, max_inflight);
  const std::uint64_t opcode = hub.add_op(probe_cs<SimCtx>, &probe);
  sync::ShmServer<SimCtx> shm(0, &probe, 64, train);
  sync::HybComb<SimCtx>::Options hopts;
  hopts.max_inflight = max_inflight;
  sync::HybComb<SimCtx> hyb(&probe, /*max_ops=*/16, false, hopts);

  auto issue = [&](SimCtx& ctx) -> sync::Ticket {
    switch (kind) {
      case AKind::kMpServer: return mp.apply_async(ctx, probe_cs<SimCtx>, 0);
      case AKind::kMpServerHub: return hub.apply_async(ctx, opcode, 0);
      case AKind::kShmServer: return shm.apply_async(ctx, probe_cs<SimCtx>, 0);
      case AKind::kHybComb: return hyb.apply_async(ctx, probe_cs<SimCtx>, 0);
    }
    return {};
  };
  auto reap = [&](SimCtx& ctx, sync::Ticket& t) -> std::uint64_t {
    switch (kind) {
      case AKind::kMpServer: return mp.wait(ctx, t);
      case AKind::kMpServerHub: return hub.wait(ctx, t);
      case AKind::kShmServer: return shm.wait(ctx, t);
      case AKind::kHybComb: return hyb.wait(ctx, t);
    }
    return 0;
  };
  auto reap_all = [&](SimCtx& ctx) {
    switch (kind) {
      case AKind::kMpServer: mp.wait_all(ctx); break;
      case AKind::kMpServerHub: hub.wait_all(ctx); break;
      case AKind::kShmServer: shm.wait_all(ctx); break;
      case AKind::kHybComb: hyb.wait_all(ctx); break;
    }
  };

  const bool has_server = kind != AKind::kHybComb;
  std::uint32_t done = 0;
  if (has_server) {
    ex.add_thread([&](SimCtx& ctx) {
      switch (kind) {
        case AKind::kMpServer: mp.serve(ctx); break;
        case AKind::kMpServerHub: hub.serve(ctx); break;
        default: shm.serve(ctx); break;
      }
    });
  }
  for (std::uint32_t i = 0; i < nclients; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      std::uint64_t k = 0;
      while (k < ops_each) {
        const std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(train, ops_each - k));
        std::vector<sync::Ticket> ts;
        for (std::uint32_t j = 0; j < n; ++j, ++k) ts.push_back(issue(ctx));
        if (use_wait_all) {
          reap_all(ctx);
          for (std::uint32_t j = 0; j < n; ++j) returns[i].push_back(0);
        } else {
          for (std::uint32_t j = n; j-- > 0;) {
            returns[i].push_back(reap(ctx, ts[j]));
          }
        }
        ctx.compute(ctx.rand_below(20));
      }
      ++done;
      if (done == nclients && has_server) {
        switch (kind) {
          case AKind::kMpServer: mp.request_stop(ctx); break;
          case AKind::kMpServerHub: hub.request_stop(ctx); break;
          default: shm.request_stop(ctx); break;
        }
      }
    });
  }
  ex.run_until(sim::kCycleMax);

  Result r;
  r.final_count = probe.counter.value.load();
  r.max_inside = probe.max_inside;
  std::vector<std::uint64_t> all;
  for (auto& v : returns) {
    r.total_ops += v.size();
    all.insert(all.end(), v.begin(), v.end());
  }
  if (!use_wait_all) {
    std::sort(all.begin(), all.end());
    r.all_returns_unique =
        std::adjacent_find(all.begin(), all.end()) == all.end();
  }
  return r;
}

class AsyncSim
    : public ::testing::TestWithParam<std::tuple<AKind, std::uint32_t>> {};

TEST_P(AsyncSim, ReverseReapTrainsAreExact) {
  const auto [kind, nclients] = GetParam();
  const std::uint64_t ops_each = 48;
  const Result r = run_sim_async(kind, nclients, ops_each, /*train=*/4);
  EXPECT_EQ(r.total_ops, static_cast<std::uint64_t>(nclients) * ops_each);
  EXPECT_EQ(r.final_count, r.total_ops) << "lost or duplicated increments";
  EXPECT_EQ(r.max_inside, 1) << "mutual exclusion violated";
  EXPECT_TRUE(r.all_returns_unique);
}

TEST_P(AsyncSim, WaitAllCompletes) {
  const auto [kind, nclients] = GetParam();
  const std::uint64_t ops_each = 32;
  const Result r = run_sim_async(kind, nclients, ops_each, /*train=*/4,
                                 /*max_inflight=*/0, /*use_wait_all=*/true);
  EXPECT_EQ(r.final_count, static_cast<std::uint64_t>(nclients) * ops_each);
  EXPECT_EQ(r.max_inside, 1);
}

TEST_P(AsyncSim, CreditGuardWithUnreapedTicketsDoesNotDeadlock) {
  const auto [kind, nclients] = GetParam();
  // 6-deep trains against 2 credits: issue must drain arrived replies while
  // spinning or the issuer starves on credits its own tickets hold. The
  // shm construction has no credit pool; its 6-deep train over 4 slots
  // exercises the inline-fallback path instead.
  const std::uint64_t ops_each = 24;
  const Result r = run_sim_async(kind, nclients, ops_each, /*train=*/6,
                                 /*max_inflight=*/2);
  EXPECT_EQ(r.total_ops, static_cast<std::uint64_t>(nclients) * ops_each);
  EXPECT_EQ(r.final_count, r.total_ops);
  EXPECT_TRUE(r.all_returns_unique);
}

std::string AsyncSimName(
    const ::testing::TestParamInfo<std::tuple<AKind, std::uint32_t>>& info) {
  static const char* names[] = {"MpServer", "MpServerHub", "ShmServer",
                                "HybComb"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
         "_t" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllAsyncKinds, AsyncSim,
                         ::testing::Combine(::testing::ValuesIn(kAllAsync),
                                            ::testing::Values(1u, 3u)),
                         AsyncSimName);

// Arbitrary (not just reversed) reap order through the staging path.
TEST(AsyncSimOrder, ArbitraryReapOrder) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 3);
  MutexProbe probe;
  sync::MpServer<SimCtx> mp(0, &probe);
  std::vector<std::uint64_t> got;
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    sync::Ticket t[4];
    for (int j = 0; j < 4; ++j) {
      t[j] = mp.apply_async(ctx, probe_cs<SimCtx>, 0);
    }
    for (int j : {2, 0, 3, 1}) got.push_back(mp.wait(ctx, t[j]));
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(probe.counter.value.load(), 4u);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

// apply() with tickets outstanding must route through the async path (a
// bare 1-word reply would misframe behind the pending tagged replies).
TEST(AsyncSimOrder, SyncApplyInterleavedWithOutstandingTickets) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 4);
  MutexProbe probe;
  sync::MpServer<SimCtx> mp(0, &probe);
  std::vector<std::uint64_t> got;
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    sync::Ticket a = mp.apply_async(ctx, probe_cs<SimCtx>, 0);
    sync::Ticket b = mp.apply_async(ctx, probe_cs<SimCtx>, 0);
    got.push_back(mp.apply(ctx, probe_cs<SimCtx>, 0));  // guarded sync call
    got.push_back(mp.wait(ctx, b));
    got.push_back(mp.wait(ctx, a));
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(probe.counter.value.load(), 3u);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 2}));
}

// The client-side batcher: trains complete exactly and the coalescing is
// visible in the stats.
TEST(AsyncBatcher, TrainsCompleteAndCount) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 5);
  MutexProbe probe;
  sync::MpServer<SimCtx> mp(0, &probe);
  std::uint64_t completed = 0;
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    sync::AsyncBatcher<SimCtx, sync::MpServer<SimCtx>> batch(mp, 4);
    for (int k = 0; k < 10; ++k) {
      completed += batch.add(ctx, probe_cs<SimCtx>, 0);
    }
    completed += batch.drain(ctx);  // the 2-op tail train
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(completed, 10u);
  EXPECT_EQ(probe.counter.value.load(), 10u);
  EXPECT_EQ(mp.stats(1).async_issued, 10u);
  EXPECT_EQ(mp.stats(1).async_batched, 10u);  // two 4-trains + one 2-train
}

// Partial-train flush: three ops buffered at depth 4 must complete when
// flush() is called (the open-loop idle-flush path), and — unlike drain()'s
// legacy accounting — the short train still counts as batched work. Without
// the flush the three ops would sit in the buffer until a fourth arrival
// tops the train up, which in an open-loop lull may never come.
TEST(AsyncBatcher, FlushReapsPartialTrain) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 5);
  MutexProbe probe;
  sync::MpServer<SimCtx> mp(0, &probe);
  std::uint64_t buffered_completed = 0;
  std::uint64_t flush_completed = 0;
  sim::Cycle completed_stamp = 0;
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    sync::AsyncBatcher<SimCtx, sync::MpServer<SimCtx>> batch(mp, 4);
    for (int k = 0; k < 3; ++k) {
      buffered_completed += batch.add(ctx, probe_cs<SimCtx>, 0);
    }
    EXPECT_EQ(batch.buffered(), 3u);
    flush_completed = batch.flush(ctx);
    completed_stamp = batch.last_completed();
    EXPECT_EQ(batch.buffered(), 0u);
    EXPECT_EQ(batch.flush(ctx), 0u);  // empty flush is a no-op
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(buffered_completed, 0u);  // depth never reached by add() alone
  EXPECT_EQ(flush_completed, 3u);
  EXPECT_EQ(probe.counter.value.load(), 3u);
  EXPECT_EQ(mp.stats(1).async_issued, 3u);
  EXPECT_EQ(mp.stats(1).async_batched, 3u);  // the short train is counted
  EXPECT_GT(completed_stamp, 0u);  // tickets carry completion stamps
}

// ---- native backend: real threads, real races ----

std::uint64_t run_native_async(AKind kind, std::uint32_t nclients,
                               std::uint64_t ops_each) {
  const bool has_server = kind != AKind::kHybComb;
  const std::uint32_t total = nclients + (has_server ? 1 : 0);
  NativeEnv env(total);
  ds::SeqCounter counter;

  sync::MpServer<NativeCtx> mp(0, &counter);
  sync::MpServerHub<NativeCtx> hub(0);
  const std::uint64_t opcode = hub.add_op(ds::counter_inc<NativeCtx>, &counter);
  sync::ShmServer<NativeCtx> shm(0, &counter, 64, 4);
  sync::HybComb<NativeCtx> hyb(&counter, 16);

  std::vector<std::thread> threads;
  std::atomic<std::uint32_t> done{0};
  if (has_server) {
    threads.emplace_back([&] {
      NativeCtx ctx(env, 0, 1);
      switch (kind) {
        case AKind::kMpServer: mp.serve(ctx); break;
        case AKind::kMpServerHub: hub.serve(ctx); break;
        default: shm.serve(ctx); break;
      }
    });
  }
  const std::uint32_t base = has_server ? 1 : 0;
  for (std::uint32_t i = 0; i < nclients; ++i) {
    threads.emplace_back([&, i] {
      NativeCtx ctx(env, base + i, 100 + i);
      auto issue = [&]() -> sync::Ticket {
        switch (kind) {
          case AKind::kMpServer:
            return mp.apply_async(ctx, ds::counter_inc<NativeCtx>, 0);
          case AKind::kMpServerHub: return hub.apply_async(ctx, opcode, 0);
          case AKind::kShmServer:
            return shm.apply_async(ctx, ds::counter_inc<NativeCtx>, 0);
          case AKind::kHybComb:
            return hyb.apply_async(ctx, ds::counter_inc<NativeCtx>, 0);
        }
        return {};
      };
      auto reap = [&](sync::Ticket& t) {
        switch (kind) {
          case AKind::kMpServer: mp.wait(ctx, t); break;
          case AKind::kMpServerHub: hub.wait(ctx, t); break;
          case AKind::kShmServer: shm.wait(ctx, t); break;
          case AKind::kHybComb: hyb.wait(ctx, t); break;
        }
      };
      std::uint64_t k = 0;
      while (k < ops_each) {
        const std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(4, ops_each - k));
        sync::Ticket ts[4];
        for (std::uint32_t j = 0; j < n; ++j, ++k) ts[j] = issue();
        for (std::uint32_t j = n; j-- > 0;) reap(ts[j]);
      }
      if (done.fetch_add(1) + 1 == nclients && has_server) {
        switch (kind) {
          case AKind::kMpServer: mp.request_stop(ctx); break;
          case AKind::kMpServerHub: hub.request_stop(ctx); break;
          default: shm.request_stop(ctx); break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return counter.value.load();
}

class NativeAsync
    : public ::testing::TestWithParam<std::tuple<AKind, std::uint32_t>> {};

TEST_P(NativeAsync, ReverseReapCounterIsExact) {
  const auto [kind, nclients] = GetParam();
  const std::uint64_t ops_each = 2000;
  EXPECT_EQ(run_native_async(kind, nclients, ops_each),
            static_cast<std::uint64_t>(nclients) * ops_each);
}

INSTANTIATE_TEST_SUITE_P(AllAsyncKinds, NativeAsync,
                         ::testing::Combine(::testing::ValuesIn(kAllAsync),
                                            ::testing::Values(2u, 4u)),
                         AsyncSimName);

}  // namespace
}  // namespace hmps

// Unit tests for the machine model: topology, coherence cost structure,
// memory-controller atomics, and the UDN message-passing model.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "arch/coherence.hpp"
#include "arch/machine.hpp"
#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "arch/udn.hpp"
#include "sim/stats.hpp"

namespace hmps::arch {
namespace {

TEST(Topology, CoordsAndDistances) {
  MachineParams p = MachineParams::tilegx36();
  MeshTopology topo(p);
  EXPECT_EQ(topo.cores(), 36u);
  EXPECT_EQ(topo.hops(0, 0), 0u);
  EXPECT_EQ(topo.hops(0, 5), 5u);    // same row, far end
  EXPECT_EQ(topo.hops(0, 35), 10u);  // opposite corner of the 6x6 mesh
  EXPECT_EQ(topo.hops(7, 7), 0u);
  EXPECT_EQ(topo.hops(3, 9), 1u);    // vertical neighbors
}

TEST(Topology, WireLatencyMonotoneInDistance) {
  MachineParams p = MachineParams::tilegx36();
  MeshTopology topo(p);
  EXPECT_LT(topo.wire(0, 1), topo.wire(0, 35));
  EXPECT_EQ(topo.wire(4, 4), p.router);
}

TEST(Topology, HomesAreDistributed) {
  MachineParams p = MachineParams::tilegx36();
  MeshTopology topo(p);
  std::vector<int> counts(topo.cores(), 0);
  for (std::uint64_t line = 0; line < 10000; ++line) {
    ++counts[topo.home_tile(line)];
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Topology, CtrlAssignmentCoversAll) {
  MachineParams p = MachineParams::tilegx36();
  MeshTopology topo(p);
  ASSERT_EQ(topo.n_ctrls(), 2u);
  int seen[2] = {0, 0};
  for (std::uint64_t line = 0; line < 1000; ++line) {
    ++seen[topo.home_ctrl(line)];
  }
  EXPECT_GT(seen[0], 200);
  EXPECT_GT(seen[1], 200);
}

class CoherenceTest : public ::testing::Test {
 protected:
  CoherenceTest() : p_(MachineParams::tilegx36()), topo_(p_), coh_(p_, topo_) {}
  MachineParams p_;
  MeshTopology topo_;
  CoherenceModel coh_;
};

TEST_F(CoherenceTest, FirstReadMissesThenHits) {
  const std::uint64_t a = 0x1000;
  auto miss = coh_.read(0, a, 0);
  EXPECT_TRUE(miss.remote);
  EXPECT_GT(miss.latency, p_.l_hit);
  auto hit = coh_.read(0, a, 100);
  EXPECT_FALSE(hit.remote);
  EXPECT_EQ(hit.latency, p_.l_hit);
}

TEST_F(CoherenceTest, WriteInvalidatesReaders) {
  const std::uint64_t a = 0x2000;
  coh_.read(0, a, 0);
  coh_.read(1, a, 100);
  auto w = coh_.write(2, a, 200);
  EXPECT_TRUE(w.remote);
  // The new owner hits on both reads and further writes...
  EXPECT_FALSE(coh_.write(2, a, 250).remote);
  EXPECT_FALSE(coh_.read(2, a, 260).remote);
  // ...while both prior readers must now miss.
  EXPECT_TRUE(coh_.read(0, a, 300).remote);
  EXPECT_TRUE(coh_.read(1, a, 400).remote);
  // Readers took shared copies, so even the former owner's next write is an
  // upgrade RMR (invalidation round).
  EXPECT_TRUE(coh_.write(2, a, 600).remote);
}

TEST_F(CoherenceTest, DirtyReadDowngradesOwner) {
  const std::uint64_t a = 0x3000;
  coh_.write(0, a, 0);
  auto r = coh_.read(1, a, 100);
  EXPECT_TRUE(r.remote);
  // Both now share read-only.
  EXPECT_FALSE(coh_.read(0, a, 200).remote);
  EXPECT_FALSE(coh_.read(1, a, 300).remote);
  // Former owner must re-upgrade to write.
  EXPECT_TRUE(coh_.write(0, a, 400).remote);
}

TEST_F(CoherenceTest, DirtyRemoteReadCostsRoughlyOneRmr) {
  // Calibration guard: a dirty remote fetch should be in the ~25-60 cycle
  // band that makes SHM-SERVER spend ~30+ stall cycles per op (Fig. 4a).
  sim::Summary s;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = 0x100000 + 0x40 * i;
    coh_.write(i % 35, a, 0);
    s.add(static_cast<double>(coh_.read(35, a, 1000).latency));
  }
  EXPECT_GT(s.mean(), 25.0);
  EXPECT_LT(s.mean(), 60.0);
}

TEST_F(CoherenceTest, LineOccupancySerializesHotLine) {
  // Run the identical transaction sequence (same cores, same line) twice:
  // packed into one instant vs spread out in time. The packed run must pay
  // the line-occupancy queueing on top of otherwise equal path latencies.
  const std::uint64_t a = 0x4000;
  coh_.write(0, a, 0);
  coh_.read(1, a, 100);
  coh_.write(2, a, 100);                      // queues behind the read
  const auto packed = coh_.read(3, a, 100);   // queues behind both

  CoherenceModel fresh(p_, topo_);
  fresh.write(0, a, 0);
  fresh.read(1, a, 100);
  fresh.write(2, a, 300);
  const auto spread = fresh.read(3, a, 600);  // no queueing

  EXPECT_EQ(packed.latency, spread.latency + 2 * p_.line_occupancy);
}

TEST_F(CoherenceTest, AtomicsGoHomeAndInvalidate) {
  const std::uint64_t a = 0x5000;
  coh_.write(0, a, 0);
  auto at = coh_.atomic(1, a, 100);
  EXPECT_TRUE(at.remote);
  EXPECT_GT(at.latency, p_.l_hit);
  // The old owner's copy is gone.
  EXPECT_TRUE(coh_.read(0, a, 200).remote);
}

TEST_F(CoherenceTest, ControllerOccupancyQueuesAtomics) {
  // Many atomics to lines on the same controller issued at the same time
  // must observe growing controller queueing delay. Controllers are
  // assigned by first-touch order (the i-th distinct line touched maps to
  // home_ctrl(i)), so touch 32 fresh lines in order and measure the ones
  // landing on controller 0.
  int measured = 0;
  Cycle first_wait = ~Cycle{0}, last_wait = 0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    Cycle w = 0;
    coh_.atomic(static_cast<Tid>(i % 35), 0x100000 + i * 64, 1000,
                AtomicKind::kCasSuccess, &w);
    if (topo_.home_ctrl(i) == 0) {
      if (measured++ == 0) first_wait = w;
      last_wait = w;
    }
  }
  ASSERT_GT(measured, 4);
  EXPECT_EQ(first_wait, 0u);
  EXPECT_GT(last_wait, 0u);
  EXPECT_GT(coh_.counters().ctrl_wait_total, 0u);
}

TEST_F(CoherenceTest, XeonPresetExecutesAtomicsInCache) {
  MachineParams xp = MachineParams::xeon10();
  MeshTopology xt(xp);
  CoherenceModel xc(xp, xt);
  const std::uint64_t a = 0x6000;
  xc.atomic(0, a, 0);
  // In-cache atomics leave the line owned by the executing core.
  EXPECT_FALSE(xc.read(0, a, 100).remote);
}

TEST_F(CoherenceTest, CountersTrackEvents) {
  coh_.reset_counters();
  coh_.read(0, 0x7000, 0);
  coh_.read(0, 0x7000, 10);
  coh_.write(1, 0x7000, 20);
  coh_.atomic(2, 0x7000, 30);
  const auto& c = coh_.counters();
  EXPECT_EQ(c.rmr_reads, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.rmr_writes, 1u);
  EXPECT_EQ(c.atomics, 1u);
}

// ---- UDN ----

class UdnTest : public ::testing::Test {
 protected:
  UdnTest() : m_(MachineParams::tilegx36()) {}
  Machine m_;
};

TEST_F(UdnTest, DeliversInFifoOrder) {
  auto& udn = m_.udn();
  auto& sched = m_.sched();
  std::vector<std::uint64_t> got;
  sched.spawn([&] {
    std::uint64_t w;
    for (int i = 0; i < 6; ++i) {
      udn.receive(0, 0, &w, 1);
      got.push_back(w);
    }
  });
  sched.spawn([&] {
    const std::uint64_t words[3] = {1, 2, 3};
    udn.send(5, 0, 0, words, 3);
    const std::uint64_t more[3] = {4, 5, 6};
    udn.send(5, 0, 0, more, 3);
  });
  sched.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
}

TEST_F(UdnTest, ReceiveBlocksUntilEnoughWords) {
  auto& udn = m_.udn();
  auto& sched = m_.sched();
  sim::Cycle received_at = 0;
  sched.spawn([&] {
    std::uint64_t w[3];
    udn.receive(0, 0, w, 3);
    received_at = sched.now();
  });
  sched.spawn([&] {
    std::uint64_t one = 7;
    udn.send(1, 0, 0, &one, 1);
    sched.wait_for(500);
    std::uint64_t two[2] = {8, 9};
    udn.send(1, 0, 0, two, 2);
  });
  sched.run();
  EXPECT_GE(received_at, 500u);
}

TEST_F(UdnTest, SendIsAsynchronousAndCheap) {
  auto& udn = m_.udn();
  auto& sched = m_.sched();
  sim::Cycle send_cost = 0;
  sched.spawn([&] {
    const std::uint64_t w[3] = {1, 2, 3};
    const sim::Cycle t0 = sched.now();
    udn.send(0, 35, 0, w, 3);  // corner to corner: long wire
    send_cost = sched.now() - t0;
  });
  sched.run();
  const auto& p = m_.params();
  // Sender pays injection + word serialization only, not the wire latency.
  EXPECT_EQ(send_cost, p.udn_inject + 3 * p.udn_per_word_wire);
}

TEST_F(UdnTest, BackpressureBlocksSender) {
  auto& udn = m_.udn();
  auto& sched = m_.sched();
  const auto cap = m_.params().udn_buf_words;
  bool receiver_started = false;
  std::uint64_t sent = 0;
  sched.spawn([&] {
    std::uint64_t w = 0;
    // Fill the destination buffer beyond capacity.
    for (std::uint64_t i = 0; i < cap + 10; ++i) {
      udn.send(1, 0, 0, &w, 1);
      ++sent;
    }
  });
  sched.spawn([&] {
    sched.wait_for(100000);
    receiver_started = true;
    std::uint64_t w;
    for (std::uint64_t i = 0; i < cap + 10; ++i) udn.receive(0, 0, &w, 1);
  });
  sched.run();
  EXPECT_TRUE(receiver_started);
  EXPECT_EQ(sent, cap + 10);
  EXPECT_GT(udn.counters().sender_blocks, 0u);
}

TEST_F(UdnTest, QueuesAreIndependent) {
  auto& udn = m_.udn();
  auto& sched = m_.sched();
  std::uint64_t got_q0 = 0, got_q1 = 0;
  sched.spawn([&] {
    const std::uint64_t a = 11, b = 22;
    udn.send(2, 0, 1, &b, 1);
    udn.send(2, 0, 0, &a, 1);
  });
  sched.spawn([&] { udn.receive(0, 0, &got_q0, 1); });
  sched.spawn([&] { udn.receive(0, 1, &got_q1, 1); });
  sched.run();
  EXPECT_EQ(got_q0, 11u);
  EXPECT_EQ(got_q1, 22u);
}

TEST_F(UdnTest, PeakOccupancyTracked) {
  auto& udn = m_.udn();
  auto& sched = m_.sched();
  sched.spawn([&] {
    const std::uint64_t w[3] = {1, 2, 3};
    for (int i = 0; i < 5; ++i) udn.send(1, 0, 0, w, 3);
  });
  sched.run();
  EXPECT_EQ(udn.counters().peak_occupancy, 15u);
  EXPECT_EQ(udn.counters().messages, 5u);
  EXPECT_EQ(udn.counters().words, 15u);
}

}  // namespace
}  // namespace hmps::arch

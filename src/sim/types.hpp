// Basic simulation-wide value types.
#pragma once

#include <cstdint>

namespace hmps::sim {

/// Simulated time, in processor clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "never" / unbounded horizons.
inline constexpr Cycle kCycleMax = ~Cycle{0};

/// Identifier of a simulated hardware thread / core slot.
using Tid = std::uint32_t;

inline constexpr Tid kNoTid = ~Tid{0};

}  // namespace hmps::sim

// Execution tracing: collects per-core timeline events from a simulation
// and writes them as Chrome trace-event JSON (open https://ui.perfetto.dev
// or chrome://tracing and load the file).
//
// Four record kinds (docs/OBSERVABILITY.md):
//   * duration events (ph "X"): what a core was doing over [start, start+dur)
//   * flow events (ph "s"/"f"): one arrow per UDN message from the sending
//     core to the delivering core, keyed by a monotonically assigned flow id
//   * counter samples (ph "C"): the value of a named counter track at a
//     timestamp — the obs::Telemetry windowed sampler emits one per track
//     per window, so Perfetto draws stall share, throughput and queue
//     depths as time series under the spans
//   * metadata (ph "M"): process/thread names, synthesized at write time
//
// Disabled by default: the hot-path cost is one branch, and recording never
// advances simulated time, so enabling tracing cannot change timestamps
// (tests assert this zero-observer-effect property).
//
// Event volume is bounded by `max_events` to keep traces loadable; events
// past the cap are counted (dropped()) and reported in the JSON footer
// instead of vanishing silently.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "sim/types.hpp"

namespace hmps::sim {

class Tracer {
 public:
  /// Starts collecting up to `max_events` events.
  void enable(std::size_t max_events = 1'000'000) {
    enabled_ = true;
    max_ = max_events;
    events_.reserve(max_events < 65536 ? max_events : 65536);
  }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Chrome-trace "pid" for subsequently recorded events, with a display
  /// name. The harness gives every benchmark run its own pid so merged
  /// trace files keep runs on separate tracks.
  void set_process(std::uint32_t pid, std::string name) {
    pid_ = pid;
    set_process_name(pid, std::move(name));
  }
  std::uint32_t pid() const { return pid_; }

  /// Records a duration event on a core's timeline. `name` must point to a
  /// string with static storage duration (no copies are taken).
  void event(Tid core, const char* name, Cycle start, Cycle dur) {
    if (!enabled_) return;
    if (events_.size() >= max_) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{name, start, dur, 0, core, pid_, Phase::kComplete});
  }

  /// Allocates a fresh flow id (monotonic, unique within this tracer;
  /// merge_from() remaps ids so merged tracers stay collision-free).
  std::uint64_t next_flow_id() { return ++last_flow_id_; }

  /// Flow start: the message leaves `core` at `ts`.
  void flow_start(Tid core, const char* name, Cycle ts, std::uint64_t id) {
    flow(core, name, ts, id, Phase::kFlowStart);
  }
  /// Flow end: the message is delivered at `core` at `ts`.
  void flow_end(Tid core, const char* name, Cycle ts, std::uint64_t id) {
    flow(core, name, ts, id, Phase::kFlowEnd);
  }

  /// Counter sample (ph "C"): the named track holds `value` at `ts`. Like
  /// event(), `name` must outlive the tracer — intern() dynamically built
  /// track names.
  void counter(Tid core, const char* name, Cycle ts, std::uint64_t value) {
    if (!enabled_) return;
    if (events_.size() >= max_) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{name, ts, value, 0, core, pid_, Phase::kCounter});
  }

  /// Copies a dynamically built name (telemetry counter tracks) into
  /// tracer-owned storage and returns a pointer that stays valid for the
  /// tracer's lifetime — including across merge_from(), which transfers
  /// ownership of the source tracer's interned names. Deduplicated, so
  /// per-window re-interning of a stable track set costs a lookup only.
  const char* intern(const std::string& name) {
    for (const auto& s : interned_) {
      if (*s == name) return s->c_str();
    }
    interned_.push_back(std::make_unique<std::string>(name));
    return interned_.back()->c_str();
  }

  std::size_t size() const { return events_.size(); }
  /// Events discarded because the `max_events` cap was reached.
  std::uint64_t dropped() const { return dropped_; }

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Moves every event of `other` into this tracer, remapping `other`'s
  /// flow ids past this tracer's so pairs stay matched and unique. `other`
  /// is left cleared. Process names and the dropped count carry over.
  void merge_from(Tracer& other) {
    const std::uint64_t flow_base = last_flow_id_;
    events_.reserve(events_.size() + other.events_.size());
    for (Event e : other.events_) {
      if (e.flow_id) e.flow_id += flow_base;
      events_.push_back(e);
    }
    last_flow_id_ += other.last_flow_id_;
    dropped_ += other.dropped_;
    for (auto& [pid, name] : other.proc_names_) {
      set_process_name(pid, std::move(name));
    }
    // Take ownership of the interned name storage the moved events point
    // into (the unique_ptr targets never move, so the pointers stay valid).
    for (auto& s : other.interned_) interned_.push_back(std::move(s));
    other.interned_.clear();
    other.clear();
    other.proc_names_.clear();
  }

  /// Writes the Chrome trace-event JSON. Cycle timestamps are emitted as
  /// microseconds 1:1 (so "1 us" in the viewer = 1 simulated cycle). The
  /// output is a JSON object: {"traceEvents": [...], "hmps": {footer}} —
  /// valid even with zero events, with names escaped, and with a warning in
  /// the footer when events were dropped.
  void write_chrome_json(std::ostream& os) const {
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
      if (!first) os << ",";
      first = false;
      os << "\n";
    };
    // Metadata: name each (pid, core) track once, plus process names.
    for (const auto& [pid, name] : proc_names_) {
      sep();
      os << R"({"name":"process_name","ph":"M","pid":)" << pid
         << R"(,"tid":0,"args":{"name":")" << obs::json_escape(name) << "\"}}";
    }
    std::vector<std::uint64_t> tracks;
    tracks.reserve(events_.size());
    for (const Event& e : events_) {
      tracks.push_back((static_cast<std::uint64_t>(e.pid) << 32) | e.core);
    }
    std::sort(tracks.begin(), tracks.end());
    tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
    for (const std::uint64_t t : tracks) {
      const std::uint32_t core = static_cast<std::uint32_t>(t);
      sep();
      os << R"({"name":"thread_name","ph":"M","pid":)" << (t >> 32)
         << R"(,"tid":)" << core << R"(,"args":{"name":"core )" << core
         << "\"}}";
    }
    for (const Event& e : events_) {
      sep();
      switch (e.phase) {
        case Phase::kComplete:
          os << R"({"name":")" << obs::json_escape(e.name)
             << R"(","ph":"X","pid":)" << e.pid << R"(,"tid":)" << e.core
             << R"(,"ts":)" << e.start << R"(,"dur":)"
             << (e.dur == 0 ? 1 : e.dur) << "}";
          break;
        case Phase::kFlowStart:
          os << R"({"name":")" << obs::json_escape(e.name)
             << R"(","cat":"udn","ph":"s","id":)" << e.flow_id
             << R"(,"pid":)" << e.pid << R"(,"tid":)" << e.core
             << R"(,"ts":)" << e.start << "}";
          break;
        case Phase::kFlowEnd:
          os << R"({"name":")" << obs::json_escape(e.name)
             << R"(","cat":"udn","ph":"f","bp":"e","id":)" << e.flow_id
             << R"(,"pid":)" << e.pid << R"(,"tid":)" << e.core
             << R"(,"ts":)" << e.start << "}";
          break;
        case Phase::kCounter:
          // The sampled value rides in the `dur` slot (counters have no
          // duration); Perfetto keys counter tracks by (pid, name). The
          // value prints signed: windowed bucket deltas can go negative
          // when cycles are retroactively reclassified across a window
          // boundary (obs::Telemetry).
          os << R"({"name":")" << obs::json_escape(e.name)
             << R"(","ph":"C","pid":)" << e.pid << R"(,"tid":)" << e.core
             << R"(,"ts":)" << e.start << R"(,"args":{"value":)"
             << static_cast<std::int64_t>(e.dur) << "}}";
          break;
      }
    }
    if (!first) os << "\n";
    os << "],\"hmps\":{\"events\":" << events_.size()
       << ",\"dropped\":" << dropped_;
    if (dropped_ > 0) {
      os << ",\"warning\":\"" << dropped_
         << " events dropped past the max_events cap; raise "
            "Tracer::enable(max_events) for a complete trace\"";
    }
    os << "}}\n";
  }

  void write_chrome_json(const std::string& path) const {
    std::ofstream f(path);
    write_chrome_json(f);
  }

 private:
  enum class Phase : std::uint8_t { kComplete, kFlowStart, kFlowEnd, kCounter };

  struct Event {
    const char* name;
    Cycle start;
    Cycle dur;
    std::uint64_t flow_id;
    Tid core;
    std::uint32_t pid;
    Phase phase;
  };

  void flow(Tid core, const char* name, Cycle ts, std::uint64_t id,
            Phase ph) {
    if (!enabled_) return;
    if (events_.size() >= max_) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{name, ts, 0, id, core, pid_, ph});
  }

  void set_process_name(std::uint32_t pid, std::string name) {
    for (auto& [p, n] : proc_names_) {
      if (p == pid) {
        n = std::move(name);
        return;
      }
    }
    proc_names_.emplace_back(pid, std::move(name));
  }

  bool enabled_ = false;
  std::size_t max_ = 0;
  std::uint32_t pid_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t last_flow_id_ = 0;
  std::vector<Event> events_;
  std::vector<std::pair<std::uint32_t, std::string>> proc_names_;
  std::vector<std::unique_ptr<std::string>> interned_;
};

}  // namespace hmps::sim

// Sharded delegation (docs/SHARDING.md): a fleet of MP-SERVER instances,
// each owning a disjoint partition of a dense object-id space, behind one
// client-side routing layer.
//
// The paper stops at a single server on a 36-core mesh; this construction
// is the scale-out step. Shard s runs on thread s (tids [0, shards) by
// convention, one serve() fiber each); every object id is homed on exactly
// one shard by rendezvous hashing (shard_of below), and clients resolve
// object -> shard locally before sending the usual 3-word request. The
// async ticket API (docs/MODEL.md §9) is extended so one client can keep
// operations in flight against several shards at once: the 31-bit reply tag
// carries the shard id in its top bits, which lets the reply demux release
// the right shard's in-flight credit no matter the arrival order.
//
// Cross-shard operations use two-phase delegation. queue_transfer(src, dst)
// between queues homed on different shards: shard A dequeues locally,
// forwards the element as a delegated enqueue to shard B over a
// server-to-server frame (bit 63 of the first word marks it — client
// request words never set it), and replies to the client only after B's
// ack. The client-observed linearization bracket is documented in
// docs/MODEL.md §10.
//
// Capacity scoping: every per-thread array here is indexed by *client slot*
// (tid - shards), and stats / in-flight credits are kept per shard — so a
// fleet of 2 shards serving 64 clients (66 threads) stays inside the fixed
// kMaxClients capacity instead of tripping the check_tid abort that a
// single global tid-indexed construction would hit.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

/// Rendezvous (highest-random-weight) shard of a dense object id. Pure
/// function of (obj, shards); adding a shard relocates ~1/shards of the
/// objects.
std::uint32_t shard_of(std::uint64_t obj, std::uint32_t shards);

/// Precomputed shard_of for ids [0, n_objects).
std::vector<std::uint32_t> shard_route_table(std::uint64_t n_objects,
                                             std::uint32_t shards);

/// Objects homed per shard over ids [0, n_objects).
std::vector<std::uint64_t> shard_load_counts(std::uint64_t n_objects,
                                             std::uint32_t shards);

/// max(load) / mean(load) over ids [0, n_objects) — the balance figure the
/// tests bound (<= 1.25 at 1k objects).
double shard_load_max_over_mean(std::uint64_t n_objects,
                                std::uint32_t shards);

/// Returned by queue_transfer when the source queue was empty.
inline constexpr std::uint64_t kTransferEmpty = ~std::uint64_t{0};

/// Distinguished fn word of a transfer request (odd: never a valid
/// function pointer; kStopWord is 0).
inline constexpr std::uint64_t kTransferWord = 3;

template <class Ctx>
class ShardedServer {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxShards = 32;
  static constexpr std::uint32_t kMaxClients = 64;

  // Tag layout: [30:26] shard, [25:0] per-(client, shard) sequence number
  // in [1, 2^26) (nonzero, wrapping). Still fits kAsyncTagMask.
  static constexpr std::uint64_t kSeqBits = 26;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;

  /// Queue hooks for cross-shard transfers: both are farm CS bodies taking
  /// the packed (obj << 32 | arg) argument convention (pack_obj_arg).
  /// `deq` returns the dequeued value or ds::kQEmpty; transferred values
  /// must fit in 32 bits (they travel in the low half of a forward frame).
  struct TransferHooks {
    Fn deq = nullptr;
    Fn enq = nullptr;
  };

  /// `shards` serve() fibers run on tids [0, shards); clients are the tids
  /// after them (slot = tid - shards, at most kMaxClients). `farm` is the
  /// shared object farm every CS body receives; partitioning is purely by
  /// the object id packed into the argument, so a farm whose per-object
  /// state lives on distinct cache lines is only ever touched by its home
  /// shard. `max_inflight` > 0 bounds outstanding requests *per shard*
  /// (the Section 6 overflow guard, scoped to each shard's buffer).
  ShardedServer(std::uint32_t shards, void* farm, std::uint64_t n_objects,
                std::uint64_t max_inflight = 0, TransferHooks hooks = {})
      : shards_(shards == 0 ? 1 : shards),
        obj_(farm),
        max_inflight_(max_inflight),
        hooks_(hooks),
        route_(shard_route_table(n_objects, shards_)) {
    // Hard bound, not an assert: shard ids are packed into tag bits
    // [30:26], so a 33rd shard would spill into the async reply mark and
    // silently collide credits in release builds. Same failure contract as
    // check_tid (docs/SHARDING.md).
    if (shards_ > kMaxShards) [[unlikely]] {
      std::fprintf(stderr,
                   "hmps fatal: ShardedServer: %u shards exceed the %u-shard "
                   "tag field (shard << 26 packing)\n",
                   static_cast<unsigned>(shards_),
                   static_cast<unsigned>(kMaxShards));
      std::abort();
    }
    for (auto& p : pending_) p.reserve(8);
  }

  std::uint32_t shards() const { return shards_; }
  void* object() const { return obj_; }
  Tid server_tid(std::uint32_t shard) const { return shard; }

  /// Home shard of an object id (precomputed for ids < n_objects).
  std::uint32_t shard_home(std::uint64_t obj) const {
    return obj < route_.size() ? route_[obj]
                               : shard_of(obj, shards_);
  }

  /// The wire argument convention of every farm CS body: object id in the
  /// high half, the operation's own 32-bit argument in the low half.
  static constexpr std::uint64_t pack_obj_arg(std::uint64_t obj,
                                              std::uint64_t arg) {
    return (obj << 32) | (arg & 0xFFFFFFFFu);
  }

  /// Executes `fn(farm, pack_obj_arg(obj, arg))` on the object's home
  /// shard and returns the result. Routed through the async path when this
  /// client has tickets outstanding (a bare 1-word reply would misframe
  /// behind pending tagged pairs, docs/MODEL.md §9).
  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t obj, std::uint64_t arg) {
    const std::uint32_t slot = client_slot(ctx, "ShardedServer::apply");
    if (clients_[slot].total_outstanding > 0) {
      Ticket t = apply_async(ctx, fn, obj, arg);
      return wait(ctx, t);
    }
    obs::Span<Ctx> span(ctx, "shard.request");
    const std::uint32_t s = route_resolve(ctx, obj);
    SyncStats& st = client_stats_[slot].s;
    if (max_inflight_ != 0) acquire_credit(ctx, st, s);
    ctx.send(server_tid(s), {ctx.tid(), rt::to_word(fn), pack_obj_arg(obj, arg)});
    const std::uint64_t ret = ctx.receive1();
    if (max_inflight_ != 0) release_credit(ctx, s);
    ++st.ops;
    return ret;
  }

  /// Issues `fn` on the object's home shard without blocking; the ticket's
  /// tag embeds the shard so wait() can release the right credit. One
  /// client may hold tickets against several shards simultaneously.
  Ticket apply_async(Ctx& ctx, Fn fn, std::uint64_t obj, std::uint64_t arg) {
    const std::uint32_t slot = client_slot(ctx, "ShardedServer::apply_async");
    const std::uint32_t s = route_resolve(ctx, obj);
    return issue_async(ctx, slot, s, rt::to_word(fn), pack_obj_arg(obj, arg));
  }

  /// Moves the head element of queue object `src` to the tail of queue
  /// object `dst` (TransferHooks required). Returns the moved value, or
  /// kTransferEmpty if `src` was empty. Linearization bracket:
  /// docs/MODEL.md §10.
  std::uint64_t queue_transfer(Ctx& ctx, std::uint64_t src, std::uint64_t dst) {
    const std::uint32_t slot =
        client_slot(ctx, "ShardedServer::queue_transfer");
    if (clients_[slot].total_outstanding > 0) {
      Ticket t = transfer_async(ctx, src, dst);
      return wait(ctx, t);
    }
    obs::Span<Ctx> span(ctx, "shard.request");
    const std::uint32_t s = route_resolve(ctx, src);
    SyncStats& st = client_stats_[slot].s;
    if (max_inflight_ != 0) acquire_credit(ctx, st, s);
    ctx.send(server_tid(s), {ctx.tid(), kTransferWord, pack_obj_arg(src, dst)});
    const std::uint64_t ret = ctx.receive1();
    if (max_inflight_ != 0) release_credit(ctx, s);
    ++st.ops;
    return ret;
  }

  /// Async queue_transfer; reap with wait().
  Ticket transfer_async(Ctx& ctx, std::uint64_t src, std::uint64_t dst) {
    const std::uint32_t slot =
        client_slot(ctx, "ShardedServer::transfer_async");
    const std::uint32_t s = route_resolve(ctx, src);
    return issue_async(ctx, slot, s, kTransferWord, pack_obj_arg(src, dst));
  }

  /// Reaps one ticket (issuing thread only). Replies for other outstanding
  /// tickets — possibly from other shards — are staged for their own
  /// wait().
  std::uint64_t wait(Ctx& ctx, Ticket& t) {
    const std::uint32_t slot = client_slot(ctx, "ShardedServer::wait");
    ClientSt& c = clients_[slot];
    if (t.tag == 0) return t.value;  // completed inline
    explore_point(ctx, "shard.reap");
    std::uint64_t val;
    if (ctx.take_staged_reply(t.tag, &val)) {
      complete(c, t.tag);
      t.completed = ctx.now();
      return val;
    }
    for (;;) {
      std::uint64_t m[2];
      ctx.receive_async(m, 2);
      const std::uint64_t got = reply_tag(m[0]);
      if (max_inflight_ != 0) release_credit(ctx, tag_shard(got));
      if (got == t.tag) {
        complete(c, got);
        t.completed = ctx.now();
        return m[1];
      }
      ctx.stage_reply(got, m[1]);
    }
  }

  /// Reaps every outstanding ticket of the calling thread across all
  /// shards, discarding results.
  void wait_all(Ctx& ctx) {
    const std::uint32_t slot = client_slot(ctx, "ShardedServer::wait_all");
    ClientSt& c = clients_[slot];
    explore_point(ctx, "shard.reap");
    std::uint64_t tag, val;
    while (c.total_outstanding > 0) {
      if (ctx.take_any_staged_reply(&tag, &val)) {
        complete(c, tag);
        continue;
      }
      std::uint64_t m[2];
      ctx.receive_async(m, 2);
      const std::uint64_t got = reply_tag(m[0]);
      if (max_inflight_ != 0) release_credit(ctx, tag_shard(got));
      complete(c, got);
    }
  }

  /// Shard server loop; run on thread `shard` (== its tid). Demuxes three
  /// frame kinds by the first word: server-to-server forwards/acks (bit 63
  /// set), the stop word, and client requests. Exits on stop.
  void serve(Ctx& ctx, std::uint32_t shard) {
    assert(shard < shards_ && ctx.tid() == server_tid(shard));
    SyncStats& st = server_stats_[shard].s;
    for (;;) {
      explore_point(ctx, "shard.serve");
      std::uint64_t m[3];
      ctx.receive(m, 3);
      if ((m[0] & kSrvMark) != 0) {
        serve_peer_frame(ctx, shard, st, m);
        continue;
      }
      if (m[1] == kStopWord) {
        assert(live_pending_[shard] == 0 &&
               "stop with cross-shard transfers still pending");
        return;
      }
      if (m[1] == kTransferWord) {
        serve_transfer(ctx, shard, st, m);
        continue;
      }
      obs::Span<Ctx> cs(ctx, "shard.cs");
      Fn fn = rt::from_word<std::remove_pointer_t<Fn>>(m[1]);
      const std::uint64_t ret = fn(ctx, obj_, m[2]);
      reply_to(ctx, m[0], ret);
      ++st.served;
    }
  }

  /// Stops every shard's serve loop. Call only after all client operations
  /// have completed (FIFO per channel keeps earlier requests ahead of the
  /// stop; cross-shard pendings must have drained, which completion of all
  /// client transfers guarantees).
  void request_stop(Ctx& ctx) {
    for (std::uint32_t s = 0; s < shards_; ++s) {
      ctx.send(server_tid(s), {0, kStopWord, 0});
    }
  }

  /// Per-thread stats slot: server tids map to their shard's server-side
  /// counters, later tids to the owning client slot.
  SyncStats& stats(Tid t) {
    if (t < shards_) return server_stats_[t].s;
    const Tid slot = t - shards_;
    check_tid(slot, kMaxClients, "ShardedServer::stats");
    return client_stats_[slot].s;
  }

  /// Requests currently holding shard `s`'s overflow-guard credit.
  std::uint64_t inflight(std::uint32_t s) const {
    return inflight_[s].v.load(std::memory_order_relaxed);
  }

  /// Sum over shards (telemetry gauge).
  std::uint64_t inflight_total() const {
    std::uint64_t sum = 0;
    for (std::uint32_t s = 0; s < shards_; ++s) sum += inflight(s);
    return sum;
  }

  /// Test hook: jumps a client's next tag sequence for shard `s` so the
  /// 26-bit wraparound boundary is reachable without 2^26 real operations
  /// (tests/test_sharded.cpp). Not for production use.
  void debug_set_seq(std::uint32_t client_slot, std::uint32_t s,
                     std::uint64_t seq) {
    clients_[client_slot].seq[s] = seq;
  }

 private:
  // Server-to-server frame layout (first word):
  //   bit 63          kSrvMark (client request words never set it)
  //   bit 62          kSrvAck: ack of a forwarded enqueue
  //   bits [16, 22)   source shard (forwards only)
  //   bits [0, 16)    pending-table slot on the source shard
  static constexpr std::uint64_t kSrvMark = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kSrvAck = std::uint64_t{1} << 62;

  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };
  struct alignas(rt::kCacheLine) PaddedWord {
    Word v{0};
  };
  struct alignas(rt::kCacheLine) ClientSt {
    std::uint64_t seq[kMaxShards] = {};     ///< next tag sequence, per shard
    std::uint32_t out[kMaxShards] = {};     ///< outstanding, per shard
    std::uint32_t total_outstanding = 0;
  };
  /// A transfer parked at its source shard, waiting for the destination
  /// shard's ack.
  struct Pending {
    std::uint64_t client_id = 0;  ///< first request word (tid | tag<<32)
    std::uint64_t value = 0;      ///< the element in flight
    bool live = false;
  };

  static constexpr std::uint32_t tag_shard(std::uint64_t tag) {
    return static_cast<std::uint32_t>(tag >> kSeqBits);
  }

  std::uint32_t client_slot(Ctx& ctx, const char* who) const {
    const Tid tid = ctx.tid();
    assert(tid >= shards_ && "client call from a server tid");
    const Tid slot = tid - shards_;
    check_tid(slot, kMaxClients, who);
    return slot;
  }

  /// Object -> shard on the client's critical path: one table lookup.
  std::uint32_t route_resolve(Ctx& ctx, std::uint64_t obj) {
    explore_point(ctx, "shard.route");
    ctx.compute(1);
    return shard_home(obj);
  }

  Ticket issue_async(Ctx& ctx, std::uint32_t slot, std::uint32_t s,
                     std::uint64_t fn_word, std::uint64_t arg) {
    ClientSt& c = clients_[slot];
    SyncStats& st = client_stats_[slot].s;
    obs::Span<Ctx> span(ctx, "shard.request");
    explore_point(ctx, "shard.async_issue");
    if (max_inflight_ != 0) acquire_credit_draining(ctx, st, c, s);
    std::uint64_t seq = c.seq[s];
    if (seq == 0 || seq > kSeqMask) [[unlikely]] {
      // The 26-bit sequence wraps back to 1. Recycling tags while tickets
      // from the previous epoch are still outstanding on this shard would
      // alias a live tag (wait() would complete the wrong ticket and
      // release the wrong credit); die with a diagnosis instead of
      // silently colliding.
      if (seq != 0 && c.out[s] != 0) {
        std::fprintf(stderr,
                     "hmps fatal: ShardedServer: tag sequence for shard %u "
                     "wrapped past 2^26 with %u tickets outstanding — "
                     "recycled tags would collide\n",
                     static_cast<unsigned>(s),
                     static_cast<unsigned>(c.out[s]));
        std::abort();
      }
      seq = 1;
    }
    c.seq[s] = seq + 1;
    const std::uint64_t tag = (static_cast<std::uint64_t>(s) << kSeqBits) | seq;
    ctx.send(server_tid(s), {pack_request_id(ctx.tid(), tag), fn_word, arg});
    ++st.async_issued;
    ++st.ops;
    ++c.out[s];
    ++c.total_outstanding;
    Ticket t{tag, 0, 0};
    t.issued = ctx.now();
    return t;
  }

  void complete(ClientSt& c, std::uint64_t tag) {
    const std::uint32_t s = tag_shard(tag);
    --c.out[s];
    --c.total_outstanding;
  }

  void reply_to(Ctx& ctx, std::uint64_t id_word, std::uint64_t ret) {
    const std::uint64_t tag = request_tag(id_word);
    if (tag != 0) {
      ctx.send(request_tid(id_word), {kAsyncReplyMark | tag, ret});
    } else {
      ctx.send(request_tid(id_word), {ret});
    }
  }

  /// Transfer source half (shard A): dequeue locally; same-shard moves
  /// complete inline, cross-shard moves park in the pending table and
  /// forward the element to the destination shard.
  void serve_transfer(Ctx& ctx, std::uint32_t shard, SyncStats& st,
                      const std::uint64_t m[3]) {
    obs::Span<Ctx> cs(ctx, "shard.cs");
    const std::uint64_t src = m[2] >> 32;
    const std::uint64_t dst = m[2] & 0xFFFFFFFFu;
    const std::uint64_t v = hooks_.deq(ctx, obj_, pack_obj_arg(src, 0));
    if (v == kTransferEmpty) {  // ds::kQEmpty passes through unchanged
      reply_to(ctx, m[0], kTransferEmpty);
      ++st.served;
      return;
    }
    const std::uint32_t to = shard_home(dst);
    if (to == shard) {
      hooks_.enq(ctx, obj_, pack_obj_arg(dst, v));
      reply_to(ctx, m[0], v);
      ++st.served;
      return;
    }
    const std::uint32_t slot = park_pending(shard, m[0], v);
    explore_point(ctx, "shard.forward");
    ctx.send(server_tid(to),
             {kSrvMark | (static_cast<std::uint64_t>(shard) << 16) | slot,
              kTransferWord, pack_obj_arg(dst, v)});
    ++st.served;
  }

  /// Server-to-server frames: a forwarded enqueue (execute + ack back) or
  /// an ack (complete the parked transfer, reply to the client).
  void serve_peer_frame(Ctx& ctx, std::uint32_t shard, SyncStats& st,
                        const std::uint64_t m[3]) {
    const std::uint32_t slot = static_cast<std::uint32_t>(m[0] & 0xFFFF);
    if ((m[0] & kSrvAck) != 0) {
      explore_point(ctx, "shard.ack");
      Pending& p = pending_[shard][slot];
      assert(p.live);
      reply_to(ctx, p.client_id, p.value);
      p.live = false;
      free_pending_[shard].push_back(slot);
      --live_pending_[shard];
      return;
    }
    // Delegated enqueue from shard `from`.
    obs::Span<Ctx> cs(ctx, "shard.cs");
    const std::uint32_t from = static_cast<std::uint32_t>((m[0] >> 16) & 0x3F);
    hooks_.enq(ctx, obj_, m[2]);
    ++st.served;
    explore_point(ctx, "shard.ack");
    ctx.send(server_tid(from), {kSrvMark | kSrvAck | slot, 1, 0});
  }

  std::uint32_t park_pending(std::uint32_t shard, std::uint64_t client_id,
                             std::uint64_t value) {
    std::uint32_t slot;
    if (!free_pending_[shard].empty()) {
      slot = free_pending_[shard].back();
      free_pending_[shard].pop_back();
    } else {
      slot = static_cast<std::uint32_t>(pending_[shard].size());
      assert(slot < 0xFFFF);
      pending_[shard].push_back(Pending{});
    }
    pending_[shard][slot] = Pending{client_id, value, true};
    ++live_pending_[shard];
    return slot;
  }

  void acquire_credit(Ctx& ctx, SyncStats& st, std::uint32_t s) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&inflight_[s].v);
      if (cur < max_inflight_ && ctx.cas(&inflight_[s].v, cur, cur + 1)) {
        return;
      }
      ++st.throttle_waits;
      ctx.cpu_relax();
    }
  }

  /// Async-issue variant of acquire_credit: drains already-arrived replies
  /// (any shard's) into the context stash while spinning, releasing their
  /// credits — without it a client whose unreaped tickets hold every credit
  /// of shard `s` would spin forever (docs/MODEL.md §9).
  void acquire_credit_draining(Ctx& ctx, SyncStats& st, ClientSt& c,
                               std::uint32_t s) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&inflight_[s].v);
      if (cur < max_inflight_ && ctx.cas(&inflight_[s].v, cur, cur + 1)) {
        return;
      }
      ++st.throttle_waits;
      if (c.total_outstanding > 0 && !ctx.queue_empty()) {
        std::uint64_t m[2];
        ctx.receive_async(m, 2);
        const std::uint64_t got = reply_tag(m[0]);
        ctx.stage_reply(got, m[1]);
        release_credit(ctx, tag_shard(got));
      } else {
        ctx.cpu_relax();
      }
    }
  }

  void release_credit(Ctx& ctx, std::uint32_t s) {
    ctx.faa(&inflight_[s].v, ~std::uint64_t{0});  // +(-1)
  }

  std::uint32_t shards_;
  void* obj_;
  std::uint64_t max_inflight_;
  TransferHooks hooks_;
  std::vector<std::uint32_t> route_;  ///< shard_of cache for dense ids

  PaddedWord inflight_[kMaxShards];          ///< per-shard credit scoping
  PaddedStats server_stats_[kMaxShards];
  PaddedStats client_stats_[kMaxClients];
  ClientSt clients_[kMaxClients];

  // Pending cross-shard transfers, per source shard. Touched only by that
  // shard's serve fiber.
  std::vector<Pending> pending_[kMaxShards];
  std::vector<std::uint32_t> free_pending_[kMaxShards];
  std::uint32_t live_pending_[kMaxShards] = {};
};

}  // namespace hmps::sync

// Open-loop service bench (docs/SERVICE.md): counter-farm throughput vs
// tail latency under a Poisson offered load swept across saturation.
//
// Closed-loop benches (fig3a) measure capacity: clients re-issue on
// completion, so latency is conditioned on the system keeping up. Here the
// arrival process does not care whether the system keeps up — as offered
// load approaches each construction's capacity, the pending-arrival queues
// fill, sojourn time (arrival to completion) blows up, and past saturation
// admission control sheds the excess. The headline result is the
// throughput-vs-p99 curve: p99 sojourn degrades monotonically with offered
// load, gently below saturation and steeply across it.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/service.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "service_counter", argc, argv);

  // Offered loads in Mops/s at the 1.2 GHz clock. The serving core's
  // per-op cost puts capacity in the low tens of Mops/s for every
  // construction here, so the upper loads are firmly past saturation.
  std::vector<double> loads{2, 4, 8, 16, 24, 32};
  if (args.full) loads = {1, 2, 4, 8, 12, 16, 24, 32, 48};
  if (args.quick) loads = {4, 24};

  std::vector<Approach> apps{Approach::kMpServer, Approach::kHybComb,
                             Approach::kShmServer, Approach::kCcSynch,
                             Approach::kVlinkServer};
  if (args.quick) apps = {Approach::kMpServer, Approach::kHybComb};

  harness::ServiceCfg base;
  base.base.seed = args.seed;
  base.base.warmup = args.quick ? 20'000 : 60'000;
  base.base.window = args.window ? args.window : (args.quick ? 60'000 : 400'000);
  base.base.reps = args.reps ? args.reps : (args.quick ? 1 : 2);
  base.base.telemetry_window = args.telemetry_window;
  base.base.machine.model_link_contention |= args.noc;
  base.base.machine.noc_combining |= args.noc_combining;
  if (args.mesh_w && args.mesh_h) {
    base.base.machine.mesh_w = args.mesh_w;
    base.base.machine.mesh_h = args.mesh_h;
  }
  base.sessions = args.threads ? args.threads : 4;
  base.objects = 4;
  base.zipf_s = 0.9;

  harness::RunPool pool(art, args.jobs);
  for (double load : loads) {
    for (Approach a : apps) {
      harness::ServiceCfg cfg = base;
      cfg.offered_mops = load;
      pool.submit(std::string(harness::approach_name(a)) + "/o" +
                      harness::fmt(load, 0),
                  [cfg, a](const harness::RunObs& obs) {
                    harness::ServiceCfg c = cfg;
                    c.base.obs = obs;
                    const auto r = harness::run_service(c, a);
                    std::fprintf(stderr, "[service_counter] %s done\n",
                                 obs.label);
                    return r;
                  });
    }
  }
  const auto& results = pool.drain();

  std::vector<std::string> cols{"offered"};
  for (Approach a : apps) {
    cols.push_back(std::string(harness::approach_name(a)) + " ach");
    cols.push_back(std::string(harness::approach_name(a)) + " p99");
    cols.push_back(std::string(harness::approach_name(a)) + " shed");
  }
  harness::Table table(cols);
  std::size_t idx = 0;
  std::vector<double> prev_p99(apps.size(), 0);
  std::vector<bool> monotone(apps.size(), true);
  for (double load : loads) {
    std::vector<std::string> row{harness::fmt(load, 0)};
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
      const auto& r = results[idx++];
      row.push_back(harness::fmt(r.mops));
      row.push_back(harness::fmt(r.lat_p99, 0));
      row.push_back(std::to_string(r.shed_ops));
      // Monotone degradation with a 5% slack for sampling noise.
      if (r.lat_p99 + 1e-9 < prev_p99[ai] * 0.95) monotone[ai] = false;
      if (r.lat_p99 > prev_p99[ai]) prev_p99[ai] = r.lat_p99;
    }
    table.add_row(row);
  }
  table.print("Open-loop counter service: achieved Mops/s, p99 sojourn "
              "(cycles) and shed arrivals vs offered load (" +
              std::to_string(base.sessions) + " sessions, Poisson)");
  for (std::size_t ai = 0; ai < apps.size(); ++ai) {
    std::printf("p99 degrades monotonically for %s: %s\n",
                harness::approach_name(apps[ai]),
                monotone[ai] ? "yes" : "NO");
  }
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

// Ablation benches for the HYBCOMB design choices discussed in Section 4.2
// ("Additional comments"):
//
//   A1  CAS vs SWAP for combiner registration. The paper argues for CAS:
//       with SWAP every candidate becomes a combiner, many combining only
//       their own request, so the combining rate collapses.
//   A2  The opportunistic drain loop (lines 25-28) before closing
//       registration. Not needed for correctness; removing it shortens
//       combining rounds and costs throughput.
#include <cstdio>
#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "harness/report.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/hybcomb.hpp"

using namespace hmps;
using rt::SimCtx;

namespace {

struct Outcome {
  double mops = 0;
  double rate = 0;
};

Outcome run(std::uint32_t threads, sync::HybComb<SimCtx>::Options opts,
            sim::Cycle window, std::uint64_t seed) {
  rt::SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  ds::SeqCounter c;
  sync::HybComb<SimCtx> hyb(&c, 200, false, opts);
  std::vector<std::uint64_t> ops(threads, 0);
  for (std::uint32_t i = 0; i < threads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (;;) {
        hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ++ops[i];
        ctx.compute(2 * ctx.rand_below(51));
      }
    });
  }
  ex.run_until(60'000);
  std::uint64_t o0 = 0;
  for (auto o : ops) o0 += o;
  sync::SyncStats s0;
  for (std::uint32_t t = 0; t < 64; ++t) {
    s0.served += hyb.stats(t).served;
    s0.tenures += hyb.stats(t).tenures;
  }
  ex.run_until(60'000 + window);
  std::uint64_t o1 = 0;
  for (auto o : ops) o1 += o;
  sync::SyncStats s1;
  for (std::uint32_t t = 0; t < 64; ++t) {
    s1.served += hyb.stats(t).served;
    s1.tenures += hyb.stats(t).tenures;
  }
  Outcome out;
  out.mops = static_cast<double>(o1 - o0) / static_cast<double>(window) *
             1200.0;
  const std::uint64_t dten = s1.tenures - s0.tenures;
  out.rate = dten ? static_cast<double>(s1.served - s0.served) /
                        static_cast<double>(dten)
                  : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  const sim::Cycle window = args.window ? args.window : 200'000;

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{5, 10, 15, 20, 25, 30, 35}
                : std::vector<std::uint32_t>{10, 20, 35};
  if (args.threads) threads = {args.threads};

  harness::Table table({"threads", "CAS Mops/s", "CAS rate", "SWAP Mops/s",
                        "SWAP rate", "no-drain Mops/s", "no-drain rate"});
  for (std::uint32_t t : threads) {
    sync::HybComb<SimCtx>::Options paper{};  // CAS + eager drain
    sync::HybComb<SimCtx>::Options swap{};
    swap.swap_registration = true;
    sync::HybComb<SimCtx>::Options nodrain{};
    nodrain.eager_drain = false;

    const Outcome a = run(t, paper, window, args.seed);
    const Outcome b = run(t, swap, window, args.seed);
    const Outcome c = run(t, nodrain, window, args.seed);
    table.add_row({std::to_string(t), harness::fmt(a.mops),
                   harness::fmt(a.rate, 1), harness::fmt(b.mops),
                   harness::fmt(b.rate, 1), harness::fmt(c.mops),
                   harness::fmt(c.rate, 1)});
    std::fprintf(stderr, "[abl-hybcomb] threads=%u done\n", t);
  }
  table.print(
      "Ablations A1/A2: HybComb registration (CAS vs SWAP) and eager drain");
  if (!args.csv.empty()) table.write_csv(args.csv);
  return 0;
}

// In-network combining of unconditional RMWs (arch/combining.hpp,
// docs/MODEL.md §11): knob-off runs are bit-identical to the pre-knob
// model, knob-on runs merge concurrent FAAs to one word at the routers
// (combines == decombines by construction), and correctness never depends
// on the knob — histories over a combining NoC stay linearizable, with and
// without fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <tuple>

#include "arch/machine.hpp"
#include "arch/params.hpp"
#include "check/gen.hpp"
#include "harness/history.hpp"
#include "harness/record.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/fault.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

/// `threads` fibers hammer one shared word with FAAs; returns
/// (final value, end time, combines, decombines).
std::tuple<std::uint64_t, sim::Cycle, std::uint64_t, std::uint64_t>
hammer_faa(arch::MachineParams p, std::uint32_t threads, std::uint32_t reps) {
  SimExecutor ex(p, 7);
  std::atomic<std::uint64_t> word{0};
  for (std::uint32_t i = 0; i < threads; ++i) {
    ex.add_thread([&, reps](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < reps; ++k) ctx.faa(&word, 1);
    });
  }
  ex.run_until(sim::kCycleMax);
  const auto& c = ex.machine().coherence().combining().counters();
  return {word.load(), ex.sched().now(), c.combines, c.decombines};
}

TEST(Combining, KnobOffLeavesCountersZeroAndTimingUnchanged) {
  arch::MachineParams off = arch::MachineParams::tilegx36();
  ASSERT_FALSE(off.noc_combining);  // default-off knob
  const auto base = hammer_faa(off, 8, 40);
  EXPECT_EQ(std::get<2>(base), 0u);
  EXPECT_EQ(std::get<3>(base), 0u);
  // Re-running the identical config reproduces the timeline exactly.
  EXPECT_EQ(hammer_faa(off, 8, 40), base);
}

TEST(Combining, ConcurrentFaasCombineAndTelescope) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  p.noc_combining = true;
  const auto r = hammer_faa(p, 8, 40);
  // Functional result is exact regardless of merging.
  EXPECT_EQ(std::get<0>(r), 8u * 40u);
  // Overlapping requests to one word do merge at the routers, and every
  // combined request decombines on the reply path (the CI telescoping
  // invariant: a knob-on run can never leak a merged request).
  EXPECT_GT(std::get<2>(r), 0u);
  EXPECT_EQ(std::get<2>(r), std::get<3>(r));
}

TEST(Combining, CombiningNeverSlowsTheHammer) {
  // Combined requests skip the line recall and the controller occupancy, so
  // under heavy same-word contention the knob-on run finishes no later.
  arch::MachineParams off = arch::MachineParams::tilegx36();
  arch::MachineParams on = off;
  on.noc_combining = true;
  const auto r_off = hammer_faa(off, 12, 50);
  const auto r_on = hammer_faa(on, 12, 50);
  EXPECT_EQ(std::get<0>(r_off), std::get<0>(r_on));
  EXPECT_LE(std::get<1>(r_on), std::get<1>(r_off));
  EXPECT_GT(std::get<2>(r_on), 0u);
}

TEST(Combining, SingleThreadIsByteIdenticalUnderTheKnob) {
  // One fiber's FAAs are strictly sequential: every root's reply window has
  // closed before the next request departs, so nothing can merge and the
  // knob must not move a single cycle.
  arch::MachineParams off = arch::MachineParams::tilegx36();
  arch::MachineParams on = off;
  on.noc_combining = true;
  const auto r_off = hammer_faa(off, 1, 60);
  const auto r_on = hammer_faa(on, 1, 60);
  EXPECT_EQ(std::get<0>(r_off), std::get<0>(r_on));
  EXPECT_EQ(std::get<1>(r_off), std::get<1>(r_on));
  EXPECT_EQ(std::get<2>(r_on), 0u);
}

// ---- linearizability over a combining NoC (docs/TESTING.md) ----

sim::FaultPlan noisy_plan(std::uint64_t seed) {
  sim::FaultPlan fp;
  fp.seed = seed;
  fp.delay_permille = 120;
  fp.delay_min = 4;
  fp.delay_max = 50;
  fp.credit_period = 9'000;
  fp.credit_duration = 2'500;
  fp.credit_pct = 30;
  return fp;
}

TEST(Combining, CounterHistoriesLinearizableUnderFaults) {
  // Atomic-heavy constructions (their locks/tails are exchange/FAA words)
  // over a combining NoC with message faults on top: merging is a latency
  // optimization only and must never reorder observable effects.
  for (const auto cons :
       {harness::Construction::kCcSynch, harness::Construction::kMcsLock}) {
    harness::RecordCfg cfg;
    cfg.params = arch::MachineParams::tilegx_small(4, 2);
    cfg.params.noc_combining = true;
    cfg.construction = cons;
    cfg.object = harness::Object::kCounter;
    cfg.threads = 6;
    cfg.ops_each = 12;
    cfg.faults = noisy_plan(31);
    cfg.seed = 11;
    const auto res = harness::record_history(cfg);
    ASSERT_TRUE(res.completed);
    const auto chk = harness::check_counter_fast(res.history);
    EXPECT_TRUE(chk.ok) << to_string(cons) << ": " << chk.reason;
  }
}

TEST(Combining, QueueHistoriesLinearizableUnderFaults) {
  harness::RecordCfg cfg;
  cfg.params = arch::MachineParams::tilegx_small(4, 2);
  cfg.params.noc_combining = true;
  cfg.construction = harness::Construction::kCcSynch;
  cfg.object = harness::Object::kQueue;
  cfg.threads = 5;
  cfg.ops_each = 14;
  cfg.faults = noisy_plan(77);
  cfg.seed = 5;
  const auto res = harness::record_history(cfg);
  ASSERT_TRUE(res.completed);
  const auto chk = harness::check_queue_fast(res.history);
  EXPECT_TRUE(chk.ok) << chk.reason;
}

TEST(Combining, FuzzMachinesDrawTheKnobDeterministically) {
  // random_machine() appends the combining draw at the end of its stream,
  // so all pre-existing parameters for a given seed are untouched and the
  // knob itself replays deterministically.
  bool saw_on = false, saw_off = false;
  for (std::uint64_t s = 1; s <= 32; ++s) {
    const arch::MachineParams a = check::random_machine(s);
    const arch::MachineParams b = check::random_machine(s);
    EXPECT_EQ(a.noc_combining, b.noc_combining);
    (a.noc_combining ? saw_on : saw_off) = true;
  }
  EXPECT_TRUE(saw_on);
  EXPECT_TRUE(saw_off);
}

}  // namespace
}  // namespace hmps

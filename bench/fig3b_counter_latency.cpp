// Reproduces Fig. 3b: average counter-request latency observed by
// application threads vs number of application threads.
//
// Expected shape: MP-SERVER lowest across the board; HYBCOMB below
// CC-SYNCH/SHM-SERVER except at one thread, where CC-SYNCH wins (one atomic
// per op vs HYBCOMB's three, and atomics execute at the memory
// controllers); a latency dip for the combining algorithms at mid
// concurrency, where the combining rate jumps (cf. Fig. 4b).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig3b_counter_latency", argc, argv);

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{1, 2, 4, 6, 8, 10, 12, 14, 16,
                                             18, 20, 22, 24, 26, 28, 30, 32,
                                             34, 35}
                : std::vector<std::uint32_t>{1, 5, 10, 15, 20, 25, 30, 35};
  if (args.threads) threads = {args.threads};

  const Approach order[] = {Approach::kMpServer, Approach::kHybComb,
                            Approach::kShmServer, Approach::kCcSynch};

  harness::RunPool pool(art, args.jobs);
  for (std::uint32_t t : threads) {
    harness::RunCfg cfg;
    cfg.app_threads = t;
    cfg.seed = args.seed;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    for (Approach a : order) {
      pool.submit(std::string(harness::approach_name(a)) + "/t" +
                      std::to_string(t),
                  [cfg, a](const harness::RunObs& obs) {
                    harness::RunCfg c = cfg;
                    c.obs = obs;
                    const auto r = harness::run_counter(c, a);
                    std::fprintf(stderr, "[fig3b] %s done\n", obs.label);
                    return r;
                  });
    }
  }
  const auto& results = pool.drain();

  harness::Table table({"threads", "mp-server", "HybComb", "shm-server",
                        "CC-Synch"});
  harness::Table tails({"threads", "mp p50/p99", "Hyb p50/p99",
                        "shm p50/p99", "CC p50/p99"});
  std::size_t idx = 0;
  for (std::uint32_t t : threads) {
    std::vector<std::string> row{std::to_string(t)};
    std::vector<std::string> trow{std::to_string(t)};
    for (std::size_t a = 0; a < 4; ++a) {
      const auto& r = results[idx++];
      row.push_back(harness::fmt(r.lat_mean, 0));
      trow.push_back(harness::fmt(r.lat_p50, 0) + "/" +
                     harness::fmt(r.lat_p99, 0));
    }
    table.add_row(row);
    tails.add_row(trow);
  }
  table.print("Fig. 3b: counter request latency (cycles) vs threads");
  if (args.full) {
    tails.print("Fig. 3b extension: latency percentiles (p50/p99 cycles)");
  }
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

// VLINK-SERVER: delegation over a Virtual-Link MPMC channel
// (arch/vlink.hpp, docs/MODEL.md §12).
//
// Same client/server shape as MP-SERVER (paper Section 4.1) with the
// transport swapped: instead of addressing the server's per-core hardware
// receive buffer, clients push 3-word requests into one shared MPMC channel
// anchored at the server's tile, and each client pops 2-word replies from
// its own single-consumer reply channel. Because the request channel is
// many-to-many, a pool of servers can drain it concurrently (pass each one
// to serve(); frame-atomic pops keep requests whole) — the UDN needs the
// hub/sharded machinery to get the same effect.
//
// Wire format is the cs.hpp request format with 2-word replies throughout
// (tag 0 = synchronous), so the per-channel frame size is homogeneous.
// Section 6 overflow credits, async tickets, spans, and explore points all
// mirror MpServer, bucket for bucket.
//
// Sim-only: the fabric is a simulator model, so this construction is not
// instantiated over NativeCtx (like sync::ShardedServer).
#pragma once

#include <cstdint>

#include "arch/vlink.hpp"
#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class VlinkServer {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;
  static constexpr std::uint32_t kNoChannel = ~std::uint32_t{0};
  /// Request-channel capacity in words (42 in-flight 3-word frames at the
  /// default — matches the UDN buffer's order of magnitude so backpressure
  /// engages at comparable depth).
  static constexpr std::size_t kDefaultReqWords = 126;
  /// Reply channels hold a client's whole outstanding train (<= 16 tickets
  /// of 2 words) with room to spare.
  static constexpr std::size_t kReplyWords = 64;

  /// `server_core`: home tile of the shared request channel (the tile the
  /// serving thread runs on; with a server pool, the first server's tile).
  /// `max_inflight` > 0 enables the Section 6 overflow guard exactly as in
  /// MpServer.
  VlinkServer(arch::VlinkFabric& fab, rt::Tid server_core, void* obj,
              std::uint64_t max_inflight = 0,
              std::size_t req_words = kDefaultReqWords)
      : fab_(fab), obj_(obj), max_inflight_(max_inflight) {
    req_ch_ = fab_.create_channel(server_core, req_words);
    for (auto& r : reply_ch_) r = kNoChannel;
  }

  void* object() const { return obj_; }
  std::uint32_t request_channel() const { return req_ch_; }

  /// Client side: executes `fn(obj, arg)` under the server and returns its
  /// result. Routed through the async path while tickets are outstanding
  /// (a plain pop would reap another ticket's reply first).
  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "VlinkServer::apply");
    if (async_[tid].outstanding > 0) {
      Ticket t = apply_async(ctx, fn, arg);
      return wait(ctx, t);
    }
    ensure_reply_channel(ctx, tid);
    obs::Span<Ctx> span(ctx, "vlink.request");
    explore_point(ctx, "vlink.pre_send");
    if (max_inflight_ != 0) acquire_credit(ctx, stats_[tid].s);
    ctx.vlink_push(req_ch_, {tid, rt::to_word(fn), arg});
    std::uint64_t m[2];
    ctx.vlink_pop(reply_ch_[tid], m, 2);
    if (max_inflight_ != 0) ctx.faa(&inflight_, ~std::uint64_t{0});
    return m[1];
  }

  /// Issues `fn(obj, arg)` without blocking on the reply; reap with wait()
  /// or wait_all(). A pending ticket holds its in-flight credit until the
  /// reply reaches this client (docs/MODEL.md §9).
  Ticket apply_async(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "VlinkServer::apply_async");
    ensure_reply_channel(ctx, tid);
    SyncStats& st = stats_[tid].s;
    AsyncSt& a = async_[tid];
    obs::Span<Ctx> span(ctx, "vlink.request");
    explore_point(ctx, "vlink.async_issue");
    if (max_inflight_ != 0) acquire_credit_draining(ctx, st, a);
    const std::uint64_t tag = a.next_tag;
    a.next_tag = a.next_tag == kAsyncTagMask ? 1 : a.next_tag + 1;
    ctx.vlink_push(req_ch_, {pack_request_id(tid, tag), rt::to_word(fn), arg});
    ++st.async_issued;
    ++a.outstanding;
    Ticket t{tag, 0, 0};
    t.issued = ctx.now();
    return t;
  }

  /// Reaps one ticket on the issuing thread. Replies for other outstanding
  /// tickets arriving first are staged in the context for their own wait()
  /// (a server pool may complete requests out of issue order).
  std::uint64_t wait(Ctx& ctx, Ticket& t) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "VlinkServer::wait");
    AsyncSt& a = async_[tid];
    if (t.tag == 0) return t.value;  // completed inline
    explore_point(ctx, "vlink.reap");
    std::uint64_t val;
    if (ctx.take_staged_reply(t.tag, &val)) {
      --a.outstanding;
      t.completed = ctx.now();
      return val;
    }
    for (;;) {
      std::uint64_t m[2];
      ctx.vlink_pop_async(reply_ch_[tid], m, 2);
      if (max_inflight_ != 0) ctx.faa(&inflight_, ~std::uint64_t{0});
      const std::uint64_t got = reply_tag(m[0]);
      if (got == t.tag) {
        --a.outstanding;
        t.completed = ctx.now();
        return m[1];
      }
      ctx.stage_reply(got, m[1]);
    }
  }

  /// Reaps every outstanding ticket of the calling thread.
  void wait_all(Ctx& ctx) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "VlinkServer::wait_all");
    AsyncSt& a = async_[tid];
    explore_point(ctx, "vlink.reap");
    std::uint64_t tag, val;
    while (a.outstanding > 0) {
      if (ctx.take_any_staged_reply(&tag, &val)) {
        --a.outstanding;
        continue;
      }
      std::uint64_t m[2];
      ctx.vlink_pop_async(reply_ch_[tid], m, 2);
      if (max_inflight_ != 0) ctx.faa(&inflight_, ~std::uint64_t{0});
      --a.outstanding;
    }
  }

  /// Server side: drains the shared request channel until a stop frame
  /// arrives. Any number of threads may serve concurrently (MPMC pops are
  /// frame-atomic); send one request_stop() per serving thread.
  ///
  /// With a pool, CS bodies run CONCURRENTLY across the serving threads —
  /// unlike single-server delegation, a pool does not serialize the object.
  /// Pool CS bodies must therefore be thread-safe (atomic RMWs, disjoint
  /// state, a lock of their own); a plain load/store body loses updates
  /// exactly as it would under direct concurrent access.
  void serve(Ctx& ctx) {
    check_tid(ctx.tid(), kMaxThreads, "VlinkServer::serve");
    SyncStats& st = stats_[ctx.tid()].s;
    for (;;) {
      explore_point(ctx, "vlink.serve");
      std::uint64_t m[3];
      ctx.vlink_pop(req_ch_, m, 3);
      if (m[1] == kStopWord) return;
      obs::Span<Ctx> cs(ctx, "vlink.cs");
      Fn fn = rt::from_word<std::remove_pointer_t<Fn>>(m[1]);
      const std::uint64_t ret = fn(ctx, obj_, m[2]);
      const Tid tid = request_tid(m[0]);
      ctx.vlink_push(reply_ch_[tid],
                     {kAsyncReplyMark | request_tag(m[0]), ret});
      ++st.served;
    }
  }

  /// Asks one serving thread to exit (FIFO: queued requests drain first).
  void request_stop(Ctx& ctx) { ctx.vlink_push(req_ch_, {0, kStopWord, 0}); }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "VlinkServer::stats");
    return stats_[t].s;
  }

  /// Requests currently holding an overflow-guard credit (0 when the guard
  /// is off). Telemetry gauge — plain snapshot read, never synchronizing.
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };
  struct alignas(rt::kCacheLine) AsyncSt {
    std::uint64_t next_tag = 1;
    std::uint32_t outstanding = 0;
  };

  /// Lazily anchors this client's reply channel at its current core. First
  /// touch is deterministic (the simulation itself is), so channel ids —
  /// and therefore timing — replay identically for a given seed.
  void ensure_reply_channel(Ctx& ctx, Tid tid) {
    if (reply_ch_[tid] == kNoChannel) {
      reply_ch_[tid] = fab_.create_channel(ctx.core(), kReplyWords);
    }
  }

  void acquire_credit(Ctx& ctx, SyncStats& st) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&inflight_);
      if (cur < max_inflight_ && ctx.cas(&inflight_, cur, cur + 1)) return;
      ++st.throttle_waits;
      ctx.cpu_relax();
    }
  }

  /// While spinning for a credit, drain replies already delivered for this
  /// thread's own tickets (each releases its credit) — without the drain a
  /// thread whose unreaped tickets hold every credit spins forever
  /// (docs/MODEL.md §9).
  void acquire_credit_draining(Ctx& ctx, SyncStats& st, AsyncSt& a) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&inflight_);
      if (cur < max_inflight_ && ctx.cas(&inflight_, cur, cur + 1)) return;
      ++st.throttle_waits;
      if (a.outstanding > 0 && !ctx.vlink_empty(reply_ch_[ctx.tid()])) {
        std::uint64_t m[2];
        ctx.vlink_pop_async(reply_ch_[ctx.tid()], m, 2);
        ctx.stage_reply(reply_tag(m[0]), m[1]);
        ctx.faa(&inflight_, ~std::uint64_t{0});
      } else {
        ctx.cpu_relax();
      }
    }
  }

  arch::VlinkFabric& fab_;
  void* obj_;
  std::uint64_t max_inflight_;
  std::uint32_t req_ch_ = 0;
  alignas(rt::kCacheLine) Word inflight_{0};
  std::uint32_t reply_ch_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
  AsyncSt async_[kMaxThreads];
};

}  // namespace hmps::sync

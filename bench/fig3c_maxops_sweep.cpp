// Reproduces Fig. 3c: maximum achievable counter throughput as a function
// of the allowed combining rate (MAX_OPS), at full concurrency.
//
// Expected shape: CC-SYNCH gains little beyond moderate MAX_OPS values,
// while HYBCOMB keeps improving toward very large MAX_OPS (combining is so
// fast that combiner switching stays visible), approaching MP-SERVER's
// throughput. MP-SERVER/SHM-SERVER are flat references (no combining).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig3c_maxops_sweep", argc, argv);
  const std::uint32_t nthreads = args.threads ? args.threads : 35;

  std::vector<std::uint64_t> maxops =
      args.full ? std::vector<std::uint64_t>{1, 2, 5, 10, 20, 50, 100, 200,
                                             500, 1000, 2000, 5000}
                : std::vector<std::uint64_t>{1, 10, 50, 200, 1000, 5000};

  harness::Table table({"max_ops", "HybComb", "CC-Synch", "mp-server(ref)",
                        "shm-server(ref)"});

  harness::RunCfg base;
  base.app_threads = nthreads;
  base.seed = args.seed;
  if (args.window) base.window = args.window;
  if (args.reps) base.reps = args.reps;

  harness::RunCfg ref = base;
  ref.obs = art.next_run("mp-server/ref");
  const double mp_ref = harness::run_counter(ref, Approach::kMpServer).mops;
  ref.obs = art.next_run("shm-server/ref");
  const double shm_ref = harness::run_counter(ref, Approach::kShmServer).mops;

  for (std::uint64_t m : maxops) {
    harness::RunCfg cfg = base;
    cfg.max_ops = m;
    cfg.obs = art.next_run("HybComb/max_ops" + std::to_string(m));
    const auto hyb = harness::run_counter(cfg, Approach::kHybComb);
    cfg.obs = art.next_run("CC-Synch/max_ops" + std::to_string(m));
    const auto cc = harness::run_counter(cfg, Approach::kCcSynch);
    table.add_row({std::to_string(m), harness::fmt(hyb.mops),
                   harness::fmt(cc.mops), harness::fmt(mp_ref),
                   harness::fmt(shm_ref)});
    std::fprintf(stderr, "[fig3c] max_ops=%llu done\n",
                 static_cast<unsigned long long>(m));
  }
  table.print("Fig. 3c: peak throughput (Mops/s) vs MAX_OPS, " +
              std::to_string(nthreads) + " threads");
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

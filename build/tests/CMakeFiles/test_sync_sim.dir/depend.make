# Empty dependencies file for test_sync_sim.
# This may be replaced when dependencies are built.

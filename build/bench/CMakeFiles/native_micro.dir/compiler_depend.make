# Empty compiler generated dependencies file for native_micro.
# This may be replaced when dependencies are built.

#include "harness/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

#include "ds/counter.hpp"
#include "ds/queue.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/async_batcher.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"
#include "sync/sharded.hpp"
#include "sync/shm_server.hpp"
#include "sync/vlink_server.hpp"

namespace hmps::harness {

using rt::SimCtx;
using rt::SimExecutor;
using sim::Cycle;
using sync::SyncStats;

const char* arrival_model_name(ArrivalModel m) {
  switch (m) {
    case ArrivalModel::kPoisson: return "poisson";
    case ArrivalModel::kMmpp: return "mmpp";
  }
  return "?";
}

const char* shed_policy_name(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kDropNewest: return "drop-newest";
    case ShedPolicy::kDropOldest: return "drop-oldest";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kMaxObjects = 8;

// Object farms: one construction instance serializes critical sections on
// K object instances (the server-consolidation shape: one serving core,
// many objects); the Zipf-chosen object index rides in the CS argument.
// Each instance sits on its own cache line(s), so popularity skew shows up
// as working-set locality at the serving core.
struct CounterFarm {
  ds::SeqCounter c[kMaxObjects];
};

template <class Ctx>
std::uint64_t farm_inc(Ctx& ctx, void* obj, std::uint64_t arg) {
  auto* f = static_cast<CounterFarm*>(obj);
  return ds::counter_inc(ctx, &f->c[arg & (kMaxObjects - 1)], 0);
}

template <class Ctx>
std::uint64_t farm_get(Ctx& ctx, void* obj, std::uint64_t arg) {
  auto* f = static_cast<CounterFarm*>(obj);
  return ds::counter_get(ctx, &f->c[arg & (kMaxObjects - 1)], 0);
}

struct QueueFarm {
  ds::SeqQueue q[kMaxObjects];  // default capacity each; in-place (nodes
                                // self-reference, so SeqQueue must not move)
};

template <class Ctx>
std::uint64_t farm_enq(Ctx& ctx, void* obj, std::uint64_t arg) {
  auto* f = static_cast<QueueFarm*>(obj);
  return ds::q_enqueue(ctx, &f->q[(arg >> 32) & (kMaxObjects - 1)],
                       arg & 0xFFFFFFFFu);
}

template <class Ctx>
std::uint64_t farm_deq(Ctx& ctx, void* obj, std::uint64_t arg) {
  auto* f = static_cast<QueueFarm*>(obj);
  return ds::q_dequeue(ctx, &f->q[(arg >> 32) & (kMaxObjects - 1)], 0);
}

// Sharded farms are larger than the single-server ones: the point of the
// fleet is spreading many objects across shards, and rendezvous hashing
// needs a reasonable object population to balance (docs/SHARDING.md).
constexpr std::uint32_t kShardedObjects = 64;

struct ShardedCounterFarm {
  ds::SeqCounter c[kShardedObjects];
};
struct ShardedQueueFarm {
  ds::SeqQueue q[kShardedObjects];
};

// Sharded CS bodies: the object index rides in the high 32 bits of the
// argument (sync::ShardedServer::pack_obj_arg).
template <class Ctx>
std::uint64_t sh_farm_inc(Ctx& ctx, void* obj, std::uint64_t a) {
  auto* f = static_cast<ShardedCounterFarm*>(obj);
  return ds::counter_inc(ctx, &f->c[(a >> 32) % kShardedObjects], 0);
}
template <class Ctx>
std::uint64_t sh_farm_get(Ctx& ctx, void* obj, std::uint64_t a) {
  auto* f = static_cast<ShardedCounterFarm*>(obj);
  return ds::counter_get(ctx, &f->c[(a >> 32) % kShardedObjects], 0);
}
template <class Ctx>
std::uint64_t sh_farm_enq(Ctx& ctx, void* obj, std::uint64_t a) {
  auto* f = static_cast<ShardedQueueFarm*>(obj);
  return ds::q_enqueue(ctx, &f->q[(a >> 32) % kShardedObjects],
                       a & 0xFFFFFFFFu);
}
template <class Ctx>
std::uint64_t sh_farm_deq(Ctx& ctx, void* obj, std::uint64_t a) {
  auto* f = static_cast<ShardedQueueFarm*>(obj);
  return ds::q_dequeue(ctx, &f->q[(a >> 32) % kShardedObjects], 0);
}

struct Arrival {
  Cycle t;            ///< arrival time
  std::uint32_t obj;  ///< Zipf-chosen object index
  bool alt;           ///< session-mix alternate op (get/dequeue)
};

struct PendingStamp {
  Cycle t_arr;
  Cycle t_disp;
};

SyncStats diff_stats(const SyncStats& cur, const SyncStats& prev) {
  SyncStats d;
  d.ops = cur.ops - prev.ops;
  d.served = cur.served - prev.served;
  d.tenures = cur.tenures - prev.tenures;
  d.cas_attempts = cur.cas_attempts - prev.cas_attempts;
  d.cas_failures = cur.cas_failures - prev.cas_failures;
  d.throttle_waits = cur.throttle_waits - prev.throttle_waits;
  d.stall_timeouts = cur.stall_timeouts - prev.stall_timeouts;
  d.async_issued = cur.async_issued - prev.async_issued;
  d.async_batched = cur.async_batched - prev.async_batched;
  d.shed_ops = cur.shed_ops - prev.shed_ops;
  return d;
}

}  // namespace

RunResult run_service(const ServiceCfg& cfg, Approach a) {
  if (a != Approach::kMpServer && a != Approach::kHybComb &&
      a != Approach::kShmServer && a != Approach::kCcSynch &&
      a != Approach::kVlinkServer) {
    std::fprintf(stderr,
                 "hmps fatal: run_service: approach %s has no service "
                 "driver\n",
                 approach_name(a));
    std::abort();
  }
  const RunCfg& base = cfg.base;
  const std::uint32_t nsess = std::max(cfg.sessions, 1u);
  const std::uint32_t nobj =
      std::min(std::max(cfg.objects, 1u), kMaxObjects);
  const Cycle measure =
      base.window * std::max<std::uint64_t>(base.reps, 1);
  const Cycle t_meas0 = base.warmup;
  const Cycle t_end = base.warmup + measure;

  SimExecutor ex(base.machine, base.seed);
  if (base.faults.enabled()) ex.machine().install_faults(base.faults);
  const bool tracing = base.obs.trace != nullptr;
  if (tracing) {
    ex.machine().tracer().enable(base.obs.trace_max_events);
    ex.machine().tracer().set_process(base.obs.pid, base.obs.label);
  }

  // ---- objects + constructions (one serialization domain per run) ----
  CounterFarm counters;
  QueueFarm queues;
  void* obj = cfg.queue_object ? static_cast<void*>(&queues)
                               : static_cast<void*>(&counters);
  const sync::CsFn<SimCtx> fn_main =
      cfg.queue_object ? &farm_enq<SimCtx> : &farm_inc<SimCtx>;
  const sync::CsFn<SimCtx> fn_alt =
      cfg.queue_object ? &farm_deq<SimCtx> : &farm_get<SimCtx>;

  sync::MpServer<SimCtx> mp(0, obj, base.max_inflight);
  sync::ShmServer<SimCtx> shm(0, obj, sync::ShmServer<SimCtx>::kMaxThreads,
                              base.async_batch);
  sync::HybComb<SimCtx>::Options hopts;
  hopts.stall_timeout = base.stall_timeout;
  hopts.max_inflight = base.max_inflight;
  sync::HybComb<SimCtx> hyb(obj, base.max_ops, /*fixed_combiner=*/false,
                            hopts);
  sync::CcSynch<SimCtx> cc(obj, static_cast<std::uint32_t>(base.max_ops));
  // The executor (and so the Virtual-Link fabric) already exists here, so
  // the vlink construction is built directly — no deferred init needed.
  sync::VlinkServer<SimCtx> vl(ex.machine().vlink(), /*server_core=*/0, obj,
                               base.max_inflight);

  auto stats_slot = [&](std::uint32_t t) -> SyncStats& {
    switch (a) {
      case Approach::kMpServer: return mp.stats(t);
      case Approach::kHybComb: return hyb.stats(t);
      case Approach::kShmServer: return shm.stats(t);
      case Approach::kVlinkServer: return vl.stats(t);
      default: return cc.stats(t);
    }
  };
  auto sum_stats = [&]() {
    SyncStats sum;
    for (std::uint32_t t = 0; t < 64; ++t) sum.add(stats_slot(t));
    return sum;
  };

  const std::uint32_t ns = approach_needs_server(a) ? 1 : 0;
  if (ns) {
    ex.add_thread([&](SimCtx& ctx) {
      if (a == Approach::kMpServer) {
        mp.serve(ctx);
      } else if (a == Approach::kVlinkServer) {
        vl.serve(ctx);
      } else {
        shm.serve(ctx);
      }
    });
  }

  // Client-side batching (idle-flushed on lulls; docs/SERVICE.md).
  using MpBatch = sync::AsyncBatcher<SimCtx, sync::MpServer<SimCtx>>;
  using HybBatch = sync::AsyncBatcher<SimCtx, sync::HybComb<SimCtx>>;
  using ShmBatch = sync::AsyncBatcher<SimCtx, sync::ShmServer<SimCtx>>;
  using VlBatch = sync::AsyncBatcher<SimCtx, sync::VlinkServer<SimCtx>>;
  std::vector<MpBatch> mpb;
  std::vector<HybBatch> hybb;
  std::vector<ShmBatch> shmb;
  std::vector<VlBatch> vlb;
  const bool batching = base.async_batch >= 2 && a != Approach::kCcSynch;
  if (batching) {
    for (std::uint32_t t = 0; t < 64; ++t) {
      mpb.emplace_back(mp, base.async_batch);
      hybb.emplace_back(hyb, base.async_batch);
      shmb.emplace_back(shm, base.async_batch);
      vlb.emplace_back(vl, base.async_batch);
    }
  }

  // ---- open-loop state ----
  ArrivalGen gen(cfg, base.seed * 0x9e3779b97f4a7c15ULL + 0xA55A);
  ZipfSampler zipf(nobj, cfg.zipf_s);
  // Per-session op mix: fraction (percent) of the primary op, drawn once
  // per session from the arrival stream's RNG so the whole traffic pattern
  // is (seed, config)-deterministic.
  std::vector<std::uint32_t> mix(nsess);
  for (auto& m : mix) m = 50 + static_cast<std::uint32_t>(gen.below(50));

  std::vector<std::deque<Arrival>> pend(nsess);
  std::vector<std::deque<PendingStamp>> stamps(nsess);
  std::vector<char> waiting(nsess, 0);
  std::vector<sim::Scheduler::FiberId> sfid(nsess, 0);

  sim::Reservoir sojourn;
  sim::Summary queue_delay, service_time;
  std::uint64_t offered_n = 0;    // arrivals generated in the window
  std::uint64_t admitted_n = 0;   // arrivals admitted in the window
  std::uint64_t completed_n = 0;  // completions recorded in the window

  // Windowed sampling (off unless base.telemetry_window > 0): per-window
  // sojourn percentiles, throughput, admission-queue depth, sheds, and the
  // construction's backlog gauge — the time-resolved view of this run.
  obs::Telemetry tel(ex.machine(), {base.telemetry_window});
  if (tel.enabled()) {
    tel.enable_completion_stream();
    tel.add_gauge("admission_queue", [&pend] {
      std::uint64_t n = 0;
      for (const auto& q : pend) n += q.size();
      return n;
    });
    if (a == Approach::kMpServer) {
      tel.add_gauge("server_inflight", [&mp] { return mp.inflight(); });
    } else if (a == Approach::kVlinkServer) {
      tel.add_gauge("server_inflight", [&vl] { return vl.inflight(); });
    } else if (a == Approach::kHybComb) {
      tel.add_gauge("combiner_inflight",
                    [&hyb] { return hyb.combiner_inflight(); });
    }
    tel.add_counter("shed_ops", [&sum_stats] { return sum_stats().shed_ops; });
    tel.add_counter("offered", [&offered_n] { return offered_n; });
  }

  // Carves an arrival's queueing delay out of the session core's account:
  // while the arrival aged in the pending queue, the core was burning
  // cycles on the *previous* operation — mostly waiting on the
  // construction — and those cycles are the queueing delay, charged under
  // the mechanism rather than the cause. Wait-type buckets are drained
  // first, compute last; clamping in reclassify() keeps the sum invariant
  // unconditional.
  auto carve_queue_delay = [](obs::CycleAccount& acct, Cycle w) {
    using CA = obs::CycleAccount;
    static constexpr CA::Bucket order[] = {
        CA::kUdnRecvWait, CA::kUdnAsyncWait, CA::kSpin,
        CA::kCoherenceRead, CA::kCoherenceWrite, CA::kAtomic,
        CA::kUdnSendBlock, CA::kIdle, CA::kCompute};
    for (const CA::Bucket b : order) {
      if (w == 0) return;
      w -= acct.reclassify(b, CA::kSvcQueue, w);
    }
  };

  auto record = [&](Cycle t_arr, Cycle t_disp, Cycle t_done) {
    if (t_done < t_meas0) return;
    sojourn.add(t_done - t_arr);
    queue_delay.add(static_cast<double>(t_disp - t_arr));
    service_time.add(static_cast<double>(t_done - t_disp));
    ++completed_n;
    tel.record_completion(t_done - t_arr);
  };

  // ---- session fibers ----
  for (std::uint32_t i = 0; i < nsess; ++i) {
    const std::uint32_t tid = ns + i;
    ex.add_thread([&, i, tid](SimCtx& ctx) {
      sfid[i] = ex.sched().current();
      const std::uint32_t core = tid % ex.machine().cores();
      obs::CycleAccount& acct = ex.machine().core(core).account;
      auto& myq = pend[i];
      auto& mystamps = stamps[i];
      std::uint64_t k = 0;
      for (;;) {
        if (myq.empty()) {
          if (batching) {
            // Open-loop lull: flush the partial train so buffered ops are
            // not stranded until the next arrival (sync::AsyncBatcher).
            std::uint64_t n = 0;
            switch (a) {
              case Approach::kMpServer: n = mpb[tid].flush(ctx); break;
              case Approach::kHybComb: n = hybb[tid].flush(ctx); break;
              case Approach::kVlinkServer: n = vlb[tid].flush(ctx); break;
              default: n = shmb[tid].flush(ctx); break;
            }
            if (n > 0) {
              const Cycle done = ctx.now();
              for (std::uint64_t j = 0; j < n; ++j) {
                const PendingStamp s = mystamps.front();
                mystamps.pop_front();
                record(s.t_arr, s.t_disp, done);
              }
              continue;  // time passed; re-check for new arrivals
            }
          }
          waiting[i] = 1;
          ex.sched().suspend();
          continue;
        }
        const Arrival arr = myq.front();
        myq.pop_front();
        const Cycle t_disp = ctx.now();
        // Queueing delay spent inside the measurement window becomes
        // svc-queue on this session's core (clamped at the window start so
        // a wait that began during warmup cannot overdraw the reset
        // buckets).
        const Cycle wait_from = arr.t > t_meas0 ? arr.t : t_meas0;
        if (t_disp > wait_from) carve_queue_delay(acct, t_disp - wait_from);
        const std::uint64_t arg =
            cfg.queue_object
                ? (static_cast<std::uint64_t>(arr.obj) << 32) |
                      (1 + (k & 0xFFFF))
                : arr.obj;
        ++k;
        const sync::CsFn<SimCtx> fn = arr.alt ? fn_alt : fn_main;
        if (batching) {
          mystamps.push_back({arr.t, t_disp});
          std::uint64_t n = 0;
          switch (a) {
            case Approach::kMpServer: n = mpb[tid].add(ctx, fn, arg); break;
            case Approach::kHybComb: n = hybb[tid].add(ctx, fn, arg); break;
            case Approach::kVlinkServer: n = vlb[tid].add(ctx, fn, arg); break;
            default: n = shmb[tid].add(ctx, fn, arg); break;
          }
          if (n > 0) {
            const Cycle done = ctx.now();
            for (std::uint64_t j = 0; j < n; ++j) {
              const PendingStamp s = mystamps.front();
              mystamps.pop_front();
              record(s.t_arr, s.t_disp, done);
            }
          }
        } else {
          switch (a) {
            case Approach::kMpServer: mp.apply(ctx, fn, arg); break;
            case Approach::kHybComb: hyb.apply(ctx, fn, arg); break;
            case Approach::kShmServer: shm.apply(ctx, fn, arg); break;
            case Approach::kVlinkServer: vl.apply(ctx, fn, arg); break;
            default: cc.apply(ctx, fn, arg); break;
          }
          record(arr.t, t_disp, ctx.now());
        }
      }
    });
  }

  // ---- arrival delivery (scheduler callbacks; composes with the
  // wait_until fast path: a pending arrival event blocks the floor raise,
  // so fibers can never skip over one) ----
  std::function<void(Cycle)> arrive = [&](Cycle t) {
    const std::uint32_t sess = static_cast<std::uint32_t>(gen.below(nsess));
    const std::uint32_t obj_i = zipf.sample(gen.uniform());
    const bool alt = gen.below(100) >= mix[sess];
    if (t >= t_meas0) ++offered_n;
    auto& q = pend[sess];
    bool admitted = true;
    if (q.size() >= cfg.queue_cap) {
      // Admission control: the pending queue is full.
      ++stats_slot(ns + sess).shed_ops;
      if (cfg.shed == ShedPolicy::kDropNewest) {
        admitted = false;
      } else {
        q.pop_front();  // evict the longest-waiting arrival
      }
    }
    if (admitted) {
      q.push_back(Arrival{t, obj_i, alt});
      if (t >= t_meas0) ++admitted_n;
      if (waiting[sess]) {
        waiting[sess] = 0;
        ex.sched().wake(sfid[sess], t);
      }
    }
    const Cycle nt = gen.next(t);
    if (nt <= t_end) {
      ex.sched().at(nt, [&arrive, nt] { arrive(nt); });
    }
  };
  const Cycle t0 = gen.next(0);
  if (t0 <= t_end) {
    ex.sched().at(t0, [&arrive, t0] { arrive(t0); });
  }

  // ---- run: warmup, then one continuous measurement window ----
  ex.run_until(base.warmup);
  ex.machine().reset_window_counters();
  const SyncStats stats0 = sum_stats();
  // Baseline after the reset: every account starts from zero at t_meas0,
  // so the per-bucket window sums telescope to the final cycle_accounts.
  tel.start(t_meas0, t_end);
  ex.run_until(t_end);
  // Close the books even if the event queue drained before t_end (all
  // sessions idle past the last arrival): the tail must become idle time
  // or the per-core accounts under-cover the window.
  ex.machine().finalize_accounts(t_end);
  tel.flush(t_end);
  const SyncStats stat_delta = diff_stats(sum_stats(), stats0);

  RunResult r;
  r.total_ops = completed_n;
  r.arrivals = admitted_n;
  r.shed_ops = stat_delta.shed_ops;
  const double win = static_cast<double>(measure);
  r.mops = static_cast<double>(completed_n) / win * 1200.0;
  r.offered_mops = static_cast<double>(offered_n) / win * 1200.0;
  r.lat_mean = sojourn.summary().mean();
  r.lat_p50 = static_cast<double>(sojourn.quantile(0.50));
  r.lat_p99 = static_cast<double>(sojourn.quantile(0.99));
  r.lat_p999 = static_cast<double>(sojourn.quantile(0.999));
  r.lat_max = sojourn.summary().max();
  r.queue_delay_mean = queue_delay.mean();
  r.service_mean = service_time.mean();
  r.combining_rate = stat_delta.combining_rate();
  r.throttle_waits = stat_delta.throttle_waits;
  r.stall_timeouts = stat_delta.stall_timeouts;
  r.cycles_per_op = r.mops > 0 ? 1200.0 / r.mops : 0;
  // Windowed attribution of the serving core ([0]; for the serverless
  // combiners core 0 is the first session's core).
  r.serv_account = ex.machine().core(0).account;
  r.serv_ops = static_cast<double>(stat_delta.served ? stat_delta.served
                                                     : completed_n);

  if (base.obs.metrics != nullptr) {
    using obs::JsonValue;
    using obs::MetricsRegistry;
    JsonValue& run = base.obs.metrics->add_run(base.obs.label);
    JsonValue& c = run["config"];
    c["app_threads"] = JsonValue(std::uint64_t{nsess});
    c["servers"] = JsonValue(std::uint64_t{ns});
    c["warmup"] = JsonValue(std::uint64_t{base.warmup});
    c["window"] = JsonValue(std::uint64_t{measure});
    c["reps"] = JsonValue(std::uint64_t{1});
    c["seed"] = JsonValue(base.seed);
    c["max_ops"] = JsonValue(base.max_ops);
    c["max_inflight"] = JsonValue(base.max_inflight);
    c["stall_timeout"] = JsonValue(std::uint64_t{base.stall_timeout});
    c["async_batch"] = JsonValue(std::uint64_t{base.async_batch});
    c["faults_enabled"] = JsonValue(base.faults.enabled());
    JsonValue& res = run["results"];
    res["mops"] = JsonValue(r.mops);
    res["lat_mean"] = JsonValue(r.lat_mean);
    res["lat_p50"] = JsonValue(r.lat_p50);
    res["lat_p99"] = JsonValue(r.lat_p99);
    res["total_ops"] = JsonValue(r.total_ops);
    res["throttle_waits"] = JsonValue(r.throttle_waits);
    res["stall_timeouts"] = JsonValue(r.stall_timeouts);
    res["serv_ops"] = JsonValue(r.serv_ops);
    JsonValue& svc = run["service"];
    svc["arrival"] = JsonValue(arrival_model_name(cfg.arrival));
    svc["offered_mops_target"] = JsonValue(cfg.offered_mops);
    svc["offered_mops"] = JsonValue(r.offered_mops);
    svc["achieved_mops"] = JsonValue(r.mops);
    svc["sessions"] = JsonValue(std::uint64_t{nsess});
    svc["objects"] = JsonValue(std::uint64_t{nobj});
    svc["zipf_s"] = JsonValue(cfg.zipf_s);
    svc["burst"] = JsonValue(cfg.burst);
    svc["dwell_quiet"] = JsonValue(std::uint64_t{cfg.dwell_quiet});
    svc["dwell_burst"] = JsonValue(std::uint64_t{cfg.dwell_burst});
    svc["queue_cap"] = JsonValue(std::uint64_t{cfg.queue_cap});
    svc["shed_policy"] = JsonValue(shed_policy_name(cfg.shed));
    svc["object"] = JsonValue(cfg.queue_object ? "ms-queue" : "counter");
    svc["offered"] = JsonValue(offered_n);
    svc["arrivals"] = JsonValue(r.arrivals);
    svc["completed"] = JsonValue(completed_n);
    svc["shed_ops"] = JsonValue(r.shed_ops);
    JsonValue& soj = svc["sojourn"];
    soj["mean"] = JsonValue(r.lat_mean);
    soj["p50"] = JsonValue(r.lat_p50);
    soj["p99"] = JsonValue(r.lat_p99);
    soj["p999"] = JsonValue(r.lat_p999);
    soj["max"] = JsonValue(r.lat_max);
    soj["count"] = JsonValue(sojourn.count());
    soj["kept"] = JsonValue(static_cast<std::uint64_t>(sojourn.kept()));
    svc["queue_delay_mean"] = JsonValue(r.queue_delay_mean);
    svc["service_mean"] = JsonValue(r.service_mean);
    run["machine_params"] = MetricsRegistry::params_json(base.machine);
    run["sync_stats"] = MetricsRegistry::sync_stats_json(stat_delta);
    run["machine"] = MetricsRegistry::machine_json(ex.machine());
    JsonValue& accts = run["cycle_accounts"];
    for (std::uint32_t core = 0; core < ex.machine().cores(); ++core) {
      accts.push_back(MetricsRegistry::cycle_account_json(
          ex.machine().core(core).account));
    }
    if (tel.enabled()) {
      run["telemetry"] = tel.to_json();
    }
    if (tracing) {
      run["trace"] = MetricsRegistry::tracer_json(ex.machine().tracer());
    }
  }
  if (tracing) {
    base.obs.trace->merge_from(ex.machine().tracer());
  }
  return r;
}

RunResult run_service_sharded(const ServiceCfg& cfg) {
  using Sharded = sync::ShardedServer<SimCtx>;
  const RunCfg& base = cfg.base;
  const std::uint32_t shards = std::clamp<std::uint32_t>(
      cfg.shards, 1, Sharded::kMaxShards);
  const std::uint32_t nsess =
      std::min(std::max(cfg.sessions, 1u), Sharded::kMaxClients);
  const std::uint32_t nobj =
      std::min(std::max(cfg.objects, 1u), kShardedObjects);
  const Cycle measure = base.window * std::max<std::uint64_t>(base.reps, 1);
  const Cycle t_meas0 = base.warmup;
  const Cycle t_end = base.warmup + measure;

  SimExecutor ex(base.machine, base.seed);
  if (base.faults.enabled()) ex.machine().install_faults(base.faults);
  const bool tracing = base.obs.trace != nullptr;
  if (tracing) {
    ex.machine().tracer().enable(base.obs.trace_max_events);
    ex.machine().tracer().set_process(base.obs.pid, base.obs.label);
  }

  // ---- farm + fleet ----
  ShardedCounterFarm counters;
  ShardedQueueFarm queues;
  void* obj = cfg.queue_object ? static_cast<void*>(&queues)
                               : static_cast<void*>(&counters);
  const sync::CsFn<SimCtx> fn_main =
      cfg.queue_object ? &sh_farm_enq<SimCtx> : &sh_farm_inc<SimCtx>;
  const sync::CsFn<SimCtx> fn_alt =
      cfg.queue_object ? &sh_farm_deq<SimCtx> : &sh_farm_get<SimCtx>;
  Sharded::TransferHooks hooks{&sh_farm_deq<SimCtx>, &sh_farm_enq<SimCtx>};
  Sharded sh(shards, obj, nobj, base.max_inflight,
             cfg.queue_object ? hooks : Sharded::TransferHooks{});

  auto sum_stats = [&]() {
    SyncStats sum;
    for (std::uint32_t t = 0; t < shards + Sharded::kMaxClients; ++t) {
      sum.add(sh.stats(t));
    }
    return sum;
  };

  for (std::uint32_t s = 0; s < shards; ++s) {
    ex.add_thread([&sh, s](SimCtx& ctx) { sh.serve(ctx, s); });
  }

  // ---- open-loop state (one arrival stream demuxed across sessions,
  // exactly as run_service) ----
  ArrivalGen gen(cfg, base.seed * 0x9e3779b97f4a7c15ULL + 0xA55A);
  ZipfSampler zipf(nobj, cfg.zipf_s);
  std::vector<std::uint32_t> mix(nsess);
  for (auto& m : mix) m = 50 + static_cast<std::uint32_t>(gen.below(50));

  std::vector<std::deque<Arrival>> pend(nsess);
  std::vector<std::deque<PendingStamp>> stamps(nsess);
  std::vector<char> waiting(nsess, 0);
  std::vector<sim::Scheduler::FiberId> sfid(nsess, 0);

  sim::Reservoir sojourn;
  sim::Summary queue_delay, service_time;
  std::uint64_t offered_n = 0;
  std::uint64_t admitted_n = 0;
  std::uint64_t completed_n = 0;

  obs::Telemetry tel(ex.machine(), {base.telemetry_window});
  if (tel.enabled()) {
    tel.enable_completion_stream();
    tel.add_gauge("admission_queue", [&pend] {
      std::uint64_t n = 0;
      for (const auto& q : pend) n += q.size();
      return n;
    });
    tel.add_gauge("fleet_inflight", [&sh] { return sh.inflight_total(); });
    tel.add_counter("shed_ops", [&sum_stats] { return sum_stats().shed_ops; });
    tel.add_counter("offered", [&offered_n] { return offered_n; });
  }

  auto carve_queue_delay = [](obs::CycleAccount& acct, Cycle w) {
    using CA = obs::CycleAccount;
    static constexpr CA::Bucket order[] = {
        CA::kUdnRecvWait, CA::kUdnAsyncWait, CA::kSpin,
        CA::kCoherenceRead, CA::kCoherenceWrite, CA::kAtomic,
        CA::kUdnSendBlock, CA::kIdle, CA::kCompute};
    for (const CA::Bucket b : order) {
      if (w == 0) return;
      w -= acct.reclassify(b, CA::kSvcQueue, w);
    }
  };

  auto record = [&](Cycle t_arr, Cycle t_disp, Cycle t_done) {
    if (t_done < t_meas0) return;
    sojourn.add(t_done - t_arr);
    queue_delay.add(static_cast<double>(t_disp - t_arr));
    service_time.add(static_cast<double>(t_done - t_disp));
    ++completed_n;
    tel.record_completion(t_done - t_arr);
  };

  // ---- session fibers: the client-side routing layer. Each session
  // resolves its arrival's object to the home shard and issues through the
  // fleet's ticket API; with base.async_batch >= 2 a session keeps a train
  // of async tickets in flight — typically spread across several shards at
  // once — and reaps the train when it fills or the arrival stream lulls.
  const std::uint32_t batch =
      base.async_batch >= 2
          ? std::min<std::uint32_t>(base.async_batch, 16)
          : 1;
  for (std::uint32_t i = 0; i < nsess; ++i) {
    const std::uint32_t tid = shards + i;
    ex.add_thread([&, i, tid](SimCtx& ctx) {
      sfid[i] = ex.sched().current();
      const std::uint32_t core = tid % ex.machine().cores();
      obs::CycleAccount& acct = ex.machine().core(core).account;
      auto& myq = pend[i];
      auto& mystamps = stamps[i];
      sync::Ticket train[16];
      std::uint32_t train_n = 0;
      std::uint64_t k = 0;
      auto reap_train = [&](SimCtx& c2) {
        for (std::uint32_t j = 0; j < train_n; ++j) sh.wait(c2, train[j]);
        const Cycle done = c2.now();
        for (std::uint32_t j = 0; j < train_n; ++j) {
          const PendingStamp s = mystamps.front();
          mystamps.pop_front();
          record(s.t_arr, s.t_disp, done);
        }
        train_n = 0;
      };
      for (;;) {
        if (myq.empty()) {
          if (train_n > 0) {
            // Open-loop lull: reap the partial train so in-flight ops are
            // not stranded until the next arrival.
            reap_train(ctx);
            continue;  // time passed; re-check for new arrivals
          }
          waiting[i] = 1;
          ex.sched().suspend();
          continue;
        }
        const Arrival arr = myq.front();
        myq.pop_front();
        const Cycle t_disp = ctx.now();
        const Cycle wait_from = arr.t > t_meas0 ? arr.t : t_meas0;
        if (t_disp > wait_from) carve_queue_delay(acct, t_disp - wait_from);
        const std::uint64_t arg = cfg.queue_object ? 1 + (k & 0xFFFF) : 0;
        ++k;
        const sync::CsFn<SimCtx> fn = arr.alt ? fn_alt : fn_main;
        if (batch >= 2) {
          mystamps.push_back({arr.t, t_disp});
          train[train_n++] = sh.apply_async(ctx, fn, arr.obj, arg);
          if (train_n == batch) reap_train(ctx);
        } else {
          sh.apply(ctx, fn, arr.obj, arg);
          record(arr.t, t_disp, ctx.now());
        }
      }
    });
  }

  // ---- arrival delivery ----
  std::function<void(Cycle)> arrive = [&](Cycle t) {
    const std::uint32_t sess = static_cast<std::uint32_t>(gen.below(nsess));
    const std::uint32_t obj_i = zipf.sample(gen.uniform());
    const bool alt = gen.below(100) >= mix[sess];
    if (t >= t_meas0) ++offered_n;
    auto& q = pend[sess];
    bool admitted = true;
    if (q.size() >= cfg.queue_cap) {
      ++sh.stats(shards + sess).shed_ops;
      if (cfg.shed == ShedPolicy::kDropNewest) {
        admitted = false;
      } else {
        q.pop_front();
      }
    }
    if (admitted) {
      q.push_back(Arrival{t, obj_i, alt});
      if (t >= t_meas0) ++admitted_n;
      if (waiting[sess]) {
        waiting[sess] = 0;
        ex.sched().wake(sfid[sess], t);
      }
    }
    const Cycle nt = gen.next(t);
    if (nt <= t_end) {
      ex.sched().at(nt, [&arrive, nt] { arrive(nt); });
    }
  };
  const Cycle t0 = gen.next(0);
  if (t0 <= t_end) {
    ex.sched().at(t0, [&arrive, t0] { arrive(t0); });
  }

  // ---- run: warmup, then one continuous measurement window ----
  ex.run_until(base.warmup);
  ex.machine().reset_window_counters();
  const SyncStats stats0 = sum_stats();
  tel.start(t_meas0, t_end);
  ex.run_until(t_end);
  ex.machine().finalize_accounts(t_end);
  tel.flush(t_end);
  const SyncStats stat_delta = diff_stats(sum_stats(), stats0);

  RunResult r;
  r.total_ops = completed_n;
  r.arrivals = admitted_n;
  r.shed_ops = stat_delta.shed_ops;
  const double win = static_cast<double>(measure);
  r.mops = static_cast<double>(completed_n) / win * 1200.0;
  r.offered_mops = static_cast<double>(offered_n) / win * 1200.0;
  r.lat_mean = sojourn.summary().mean();
  r.lat_p50 = static_cast<double>(sojourn.quantile(0.50));
  r.lat_p99 = static_cast<double>(sojourn.quantile(0.99));
  r.lat_p999 = static_cast<double>(sojourn.quantile(0.999));
  r.lat_max = sojourn.summary().max();
  r.queue_delay_mean = queue_delay.mean();
  r.service_mean = service_time.mean();
  r.combining_rate = stat_delta.combining_rate();
  r.throttle_waits = stat_delta.throttle_waits;
  r.stall_timeouts = stat_delta.stall_timeouts;
  r.cycles_per_op = r.mops > 0 ? 1200.0 / r.mops : 0;
  r.serv_account = ex.machine().core(0).account;  // shard 0's core
  r.serv_ops = static_cast<double>(stat_delta.served ? stat_delta.served
                                                     : completed_n);

  if (base.obs.metrics != nullptr) {
    using obs::JsonValue;
    using obs::MetricsRegistry;
    JsonValue& run = base.obs.metrics->add_run(base.obs.label);
    JsonValue& c = run["config"];
    c["app_threads"] = JsonValue(std::uint64_t{nsess});
    c["servers"] = JsonValue(std::uint64_t{shards});
    c["warmup"] = JsonValue(std::uint64_t{base.warmup});
    c["window"] = JsonValue(std::uint64_t{measure});
    c["reps"] = JsonValue(std::uint64_t{1});
    c["seed"] = JsonValue(base.seed);
    c["max_ops"] = JsonValue(base.max_ops);
    c["max_inflight"] = JsonValue(base.max_inflight);
    c["stall_timeout"] = JsonValue(std::uint64_t{base.stall_timeout});
    c["async_batch"] = JsonValue(std::uint64_t{base.async_batch});
    c["faults_enabled"] = JsonValue(base.faults.enabled());
    JsonValue& res = run["results"];
    res["mops"] = JsonValue(r.mops);
    res["lat_mean"] = JsonValue(r.lat_mean);
    res["lat_p50"] = JsonValue(r.lat_p50);
    res["lat_p99"] = JsonValue(r.lat_p99);
    res["total_ops"] = JsonValue(r.total_ops);
    res["throttle_waits"] = JsonValue(r.throttle_waits);
    res["stall_timeouts"] = JsonValue(r.stall_timeouts);
    res["serv_ops"] = JsonValue(r.serv_ops);
    JsonValue& svc = run["service"];
    svc["arrival"] = JsonValue(arrival_model_name(cfg.arrival));
    svc["offered_mops_target"] = JsonValue(cfg.offered_mops);
    svc["offered_mops"] = JsonValue(r.offered_mops);
    svc["achieved_mops"] = JsonValue(r.mops);
    svc["sessions"] = JsonValue(std::uint64_t{nsess});
    svc["objects"] = JsonValue(std::uint64_t{nobj});
    svc["shards"] = JsonValue(std::uint64_t{shards});
    svc["zipf_s"] = JsonValue(cfg.zipf_s);
    svc["burst"] = JsonValue(cfg.burst);
    svc["dwell_quiet"] = JsonValue(std::uint64_t{cfg.dwell_quiet});
    svc["dwell_burst"] = JsonValue(std::uint64_t{cfg.dwell_burst});
    svc["queue_cap"] = JsonValue(std::uint64_t{cfg.queue_cap});
    svc["shed_policy"] = JsonValue(shed_policy_name(cfg.shed));
    svc["object"] = JsonValue(cfg.queue_object ? "ms-queue" : "counter");
    svc["offered"] = JsonValue(offered_n);
    svc["arrivals"] = JsonValue(r.arrivals);
    svc["completed"] = JsonValue(completed_n);
    svc["shed_ops"] = JsonValue(r.shed_ops);
    JsonValue& soj = svc["sojourn"];
    soj["mean"] = JsonValue(r.lat_mean);
    soj["p50"] = JsonValue(r.lat_p50);
    soj["p99"] = JsonValue(r.lat_p99);
    soj["p999"] = JsonValue(r.lat_p999);
    soj["max"] = JsonValue(r.lat_max);
    soj["count"] = JsonValue(sojourn.count());
    soj["kept"] = JsonValue(static_cast<std::uint64_t>(sojourn.kept()));
    svc["queue_delay_mean"] = JsonValue(r.queue_delay_mean);
    svc["service_mean"] = JsonValue(r.service_mean);
    run["machine_params"] = MetricsRegistry::params_json(base.machine);
    run["sync_stats"] = MetricsRegistry::sync_stats_json(stat_delta);
    run["machine"] = MetricsRegistry::machine_json(ex.machine());
    JsonValue& accts = run["cycle_accounts"];
    for (std::uint32_t core = 0; core < ex.machine().cores(); ++core) {
      accts.push_back(MetricsRegistry::cycle_account_json(
          ex.machine().core(core).account));
    }
    if (tel.enabled()) {
      run["telemetry"] = tel.to_json();
    }
    if (tracing) {
      run["trace"] = MetricsRegistry::tracer_json(ex.machine().tracer());
    }
  }
  if (tracing) {
    base.obs.trace->merge_from(ex.machine().tracer());
  }
  return r;
}

}  // namespace hmps::harness

file(REMOVE_RECURSE
  "CMakeFiles/test_ds_edge.dir/test_ds_edge.cpp.o"
  "CMakeFiles/test_ds_edge.dir/test_ds_edge.cpp.o.d"
  "test_ds_edge"
  "test_ds_edge.pdb"
  "test_ds_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ds_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

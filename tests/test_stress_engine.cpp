// Engine stress and degenerate-configuration tests: many fibers, long
// event chains, minimal machines.
#include <gtest/gtest.h>

#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

TEST(SchedulerStress, FiveHundredFibersTokenRing) {
  // A token passes around a 500-fiber ring via suspend/wake; total hops
  // and final time must be exact.
  sim::Scheduler s;
  constexpr int kN = 500, kRounds = 20;
  std::vector<sim::Scheduler::FiberId> ids(kN);
  int token_hops = 0;
  bool token_arrived[kN] = {};
  for (int i = 0; i < kN; ++i) {
    ids[i] = s.spawn([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        if (!(i == 0 && r == 0)) {
          while (!token_arrived[i]) s.suspend();
          token_arrived[i] = false;
        }
        ++token_hops;
        const int next = (i + 1) % kN;
        token_arrived[next] = true;
        s.wake(ids[next], s.now() + 1);
      }
    });
  }
  s.run();
  EXPECT_EQ(token_hops, kN * kRounds);
}

TEST(SchedulerStress, DeepEventChains) {
  sim::Scheduler s;
  std::uint64_t fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 100000) s.at(s.now() + 1, chain);
  };
  s.at(0, chain);
  s.run();
  EXPECT_EQ(fired, 100000u);
  EXPECT_EQ(s.now(), 99999u);
}

TEST(EventQueueStress, RandomizedOrderMatchesSort) {
  sim::EventQueue q;
  sim::Xoshiro256 r(77);
  std::vector<sim::Cycle> times;
  for (int i = 0; i < 5000; ++i) {
    const sim::Cycle t = r.below(1000);
    times.push_back(t);
    q.schedule(t, [] {});
  }
  std::sort(times.begin(), times.end());
  for (std::size_t i = 0; i < times.size(); ++i) {
    sim::Cycle t;
    q.pop(&t)();
    EXPECT_EQ(t, times[i]);
  }
}

TEST(DegenerateMachine, SingleCoreStillWorks) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(1, 1);
  SimExecutor ex(p, 1);
  ds::SeqCounter c;
  sync::CcSynch<SimCtx> cc(&c, 4);
  ex.add_thread([&](SimCtx& ctx) {
    for (int k = 0; k < 100; ++k) cc.apply(ctx, ds::counter_inc<SimCtx>, 0);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), 100u);
}

TEST(DegenerateMachine, SingleCoreMultiplexedHybComb) {
  // 1 core, 4 threads on the 4 demux queues: HybComb self-messaging works.
  arch::MachineParams p = arch::MachineParams::tilegx_small(1, 1);
  SimExecutor ex(p, 2);
  ds::SeqCounter c;
  sync::HybComb<SimCtx> hyb(&c, 4);
  for (int i = 0; i < 4; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 50; ++k) hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), 200u);
}

TEST(DegenerateMachine, ZeroThinkTimeSaturation) {
  // No think time at all: pure back-to-back ops must still be exact.
  SimExecutor ex(arch::MachineParams::tilegx36(), 3);
  ds::SeqCounter c;
  sync::HybComb<SimCtx> hyb(&c, 200);
  for (int i = 0; i < 35; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 60; ++k) hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), 35u * 60u);
}

TEST(LongRun, MillionsOfCyclesStayConsistent) {
  // A longer soak: ~2M simulated cycles of saturated MP-SERVER traffic.
  SimExecutor ex(arch::MachineParams::tilegx36(), 4);
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  std::vector<std::uint64_t> ops(10, 0);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  for (int i = 0; i < 10; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (;;) {
        mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ++ops[i];
      }
    });
  }
  ex.run_until(2'000'000);
  std::uint64_t total = 0;
  for (auto o : ops) total += o;
  // Counter equals completed client ops, modulo requests in flight.
  EXPECT_GE(c.value.load(), total);
  EXPECT_LE(c.value.load(), total + 11);
  EXPECT_GT(total, 50'000u);
}

}  // namespace
}  // namespace hmps

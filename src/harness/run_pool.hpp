// In-process parallel run pool: executes independent (seed, config)
// simulation runs on a fixed set of host threads, with artifact output
// byte-identical to running the same submissions serially.
//
// Why this is sound: a simulation run is already self-contained — drive()
// builds its own SimExecutor/Machine (engine, RNG streams, counters) on the
// caller's stack, and the fiber layer's scratch slots are thread_local
// (sim/fiber.cpp). The only cross-run state is *read-only after
// construction* (MachineParams presets, shared NoC route tables) or
// *private per run* (the metrics/trace arenas below). So runs never
// communicate, and each run's simulated timeline is the same bit-for-bit
// whether it executes on the main thread or any worker.
//
// Why determinism survives the merge: labels and Chrome-trace pids are
// assigned at submit() time on the calling thread (submission order ==
// serial order), each run fills a private MetricsRegistry/Tracer arena, and
// drain() merges the arenas back into the shared RunArtifacts in submission
// order — so completion order, which IS nondeterministic, never reaches the
// artifact. See docs/ENGINE.md ("The run pool").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/workload.hpp"

namespace hmps::harness {

/// Resolves a --jobs setting: a non-zero flag wins, else the HMPS_JOBS
/// environment variable, else std::thread::hardware_concurrency() (at
/// least 1).
std::uint32_t resolve_jobs(std::uint32_t flag);

/// Minimal fixed-thread task pool (the run-agnostic layer; check_explore's
/// scenario batches use it directly). With `jobs` <= 1 no threads are
/// created and submit() runs the task inline, so a --jobs 1 invocation is
/// the serial code path, not a one-worker simulation of it.
class TaskPool {
 public:
  explicit TaskPool(std::uint32_t jobs);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::uint32_t jobs() const { return jobs_; }

  /// Enqueues one task. Tasks must be independent: they run in any order,
  /// concurrently, on worker threads.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

 private:
  void worker();

  std::uint32_t jobs_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: "a task may be available"
  std::condition_variable done_cv_;  ///< wait(): "a task just finished"
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< submitted but not yet finished
  bool stop_ = false;
};

/// Artifact-aware run pool. submit() assigns the run's label/pid through
/// the shared RunArtifacts immediately (fixing the artifact order), hands
/// the run a private metrics/trace arena, and runs it on the TaskPool;
/// drain() waits for everything and merges the arenas in submission order.
class RunPool {
 public:
  /// The run body: receives the observability sinks for this run (label
  /// and pid as assigned at submit(); metrics/trace pointing into the
  /// run's private arena, or null when the artifact flag is off) and
  /// returns the run's measured result.
  using RunFn = std::function<RunResult(const RunObs&)>;

  /// `jobs` is used as given when non-zero; 0 resolves via resolve_jobs().
  RunPool(RunArtifacts& art, std::uint32_t jobs = 0);

  std::uint32_t jobs() const { return pool_.jobs(); }

  /// Submits one run; returns its index (== submission order, the index
  /// into drain()'s result vector).
  std::size_t submit(std::string label, RunFn fn);

  /// Waits for every submitted run, merges per-run artifacts into the
  /// shared RunArtifacts in submission order, and returns the results in
  /// submission order. The pool is reusable after drain().
  const std::vector<RunResult>& drain();

 private:
  struct Job {
    RunFn fn;
    RunObs obs;                   ///< label/pid shared, sinks per-run
    obs::MetricsRegistry metrics; ///< private arena (used when JSON is on)
    sim::Tracer trace;            ///< private merge sink (when tracing)
    bool use_metrics = false;
    bool use_trace = false;
    RunResult result;
  };

  RunArtifacts& art_;
  TaskPool pool_;
  std::deque<Job> queue_;  ///< deque: stable addresses for running jobs
  std::vector<RunResult> results_;
};

}  // namespace hmps::harness

// LCRQ — the nonblocking linked concurrent ring queue of Morrison & Afek
// (PPoPP'13), in the form the paper ported to the TILE-Gx (Section 5.4,
// footnote 5):
//
//  * no 128-bit CAS2 on this machine, so values are 32 bits and each ring
//    cell packs {safe:1 | idx:31 | val:32} into one 64-bit word;
//  * the missing bitwise test-and-set on the tail's CLOSED bit is replaced
//    by a plain CAS loop.
//
// Each CRQ is a ring of R cells indexed by FAA'd head/tail counters; when a
// ring fills (or an enqueuer starves), it is closed and a new CRQ is linked
// behind it. Every operation performs several atomic instructions, which on
// the TILE-Gx all execute at the two memory controllers — the false
// serialization that caps LCRQ's throughput in Fig. 5a.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/aligned.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::ds {

using rt::Word;

inline constexpr std::uint32_t kLcrqEmpty = 0xFFFFFFFFu;

template <class Ctx>
class Lcrq {
 public:
  /// `ring_order`: lg2 of cells per CRQ. `max_rings`: allocation pool size
  /// (closed rings are retired, not freed, in lieu of hazard pointers —
  /// bounded-lifetime use only, as in the paper's benchmark).
  explicit Lcrq(std::uint32_t ring_order = 7, std::uint32_t max_rings = 4096)
      : ring_size_(1u << ring_order), pool_cap_(max_rings) {
    pool_.reserve(pool_cap_);
    for (std::uint32_t i = 0; i < pool_cap_; ++i) {
      pool_.push_back(std::make_unique<Crq>(ring_size_));
    }
    Crq* first = pool_[0].get();
    pool_next_.store(1, std::memory_order_relaxed);
    init_empty(first);
    head_ptr_.store(rt::to_word(first), std::memory_order_relaxed);
    tail_ptr_.store(rt::to_word(first), std::memory_order_relaxed);
  }

  /// Enqueues a 32-bit value (the paper's port stores 32-bit values).
  void enqueue(Ctx& ctx, std::uint32_t v) {
    assert(v != kLcrqEmpty);
    int close_tries = 0;
    for (;;) {
      Crq* crq = rt::from_word<Crq>(ctx.load(&tail_ptr_));
      {  // help a lagging tail pointer forward
        Crq* next = rt::from_word<Crq>(ctx.load(&crq->next));
        if (next != nullptr) {
          ctx.cas(&tail_ptr_, rt::to_word(crq), rt::to_word(next));
          continue;
        }
      }
      const std::uint64_t traw = ctx.faa(&crq->tail, 1);
      if (closed(traw)) {
        if (append_new(ctx, crq, v)) return;
        continue;
      }
      const std::uint64_t t = traw;
      Word* cell = &crq->ring[t & (ring_size_ - 1)];
      const std::uint64_t c = ctx.load(cell);
      if (cell_val(c) == kLcrqEmpty && cell_idx(c) <= t &&
          (cell_safe(c) || ctx.load(&crq->head) <= t)) {
        if (ctx.cas(cell, c, make_cell(true, t, v))) return;
      }
      // Failed to install: check fullness / starvation and maybe close.
      const std::uint64_t h = ctx.load(&crq->head);
      if (t >= h + ring_size_ || ++close_tries >= kCloseThreshold) {
        close(ctx, crq);
        if (append_new(ctx, crq, v)) return;
        close_tries = 0;
      }
    }
  }

  /// Dequeues a value, or kLcrqEmpty if the queue is (momentarily) empty.
  std::uint32_t dequeue(Ctx& ctx) {
    for (;;) {
      Crq* crq = rt::from_word<Crq>(ctx.load(&head_ptr_));
      const std::uint32_t v = crq_dequeue(ctx, crq);
      if (v != kLcrqEmpty) return v;
      if (rt::from_word<Crq>(ctx.load(&crq->next)) == nullptr) {
        return kLcrqEmpty;
      }
      // The CRQ has a successor: drain once more (an in-flight enqueue may
      // have landed), then advance the head CRQ pointer.
      const std::uint32_t v2 = crq_dequeue(ctx, crq);
      if (v2 != kLcrqEmpty) return v2;
      ctx.cas(&head_ptr_, rt::to_word(crq),
              ctx.load(&crq->next));
    }
  }

 private:
  static constexpr int kCloseThreshold = 10;
  static constexpr std::uint64_t kClosedBit = std::uint64_t{1} << 63;

  struct Crq {
    explicit Crq(std::uint32_t n) : ring(n) {}
    alignas(rt::kCacheLine) Word head{0};
    alignas(rt::kCacheLine) Word tail{0};
    alignas(rt::kCacheLine) Word next{0};  // Crq*
    rt::AlignedArray<Word> ring;  // line packing independent of the heap
  };

  // Cell word: {safe:1 | idx:31 | val:32}.
  static constexpr std::uint64_t make_cell(bool safe, std::uint64_t idx,
                                           std::uint32_t val) {
    return (static_cast<std::uint64_t>(safe) << 63) |
           ((idx & 0x7FFFFFFFull) << 32) | val;
  }
  static constexpr bool cell_safe(std::uint64_t c) { return c >> 63; }
  static constexpr std::uint64_t cell_idx(std::uint64_t c) {
    return (c >> 32) & 0x7FFFFFFFull;
  }
  static constexpr std::uint32_t cell_val(std::uint64_t c) {
    return static_cast<std::uint32_t>(c);
  }
  static constexpr bool closed(std::uint64_t t) { return t & kClosedBit; }
  static constexpr std::uint64_t tail_index(std::uint64_t t) {
    return t & ~kClosedBit;
  }

  void init_empty(Crq* crq) {
    crq->head.store(0, std::memory_order_relaxed);
    crq->tail.store(0, std::memory_order_relaxed);
    crq->next.store(0, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < ring_size_; ++i) {
      // Cell i starts safe/empty with idx == i.
      crq->ring[i].store(make_cell(true, i, kLcrqEmpty),
                         std::memory_order_relaxed);
    }
  }

  /// The paper's BTAS substitution: close the ring with a CAS loop on the
  /// tail's CLOSED bit.
  void close(Ctx& ctx, Crq* crq) {
    for (;;) {
      const std::uint64_t t = ctx.load(&crq->tail);
      if (closed(t)) return;
      if (ctx.cas(&crq->tail, t, t | kClosedBit)) return;
    }
  }

  /// Allocates a CRQ pre-loaded with `v` and links it behind `crq`.
  /// Returns true if our ring (and thus `v`) was installed.
  bool append_new(Ctx& ctx, Crq* crq, std::uint32_t v) {
    if (rt::from_word<Crq>(ctx.load(&crq->next)) != nullptr) {
      ctx.cas(&tail_ptr_, rt::to_word(crq), ctx.load(&crq->next));
      return false;
    }
    Crq* nq = alloc_ring(ctx);
    init_empty(nq);
    nq->ring[0].store(make_cell(true, 0, v), std::memory_order_relaxed);
    nq->tail.store(1, std::memory_order_relaxed);
    if (ctx.cas(&crq->next, std::uint64_t{0}, rt::to_word(nq))) {
      ctx.cas(&tail_ptr_, rt::to_word(crq), rt::to_word(nq));
      return true;
    }
    recycle_ring(ctx, nq);  // lost the race; only we ever saw nq
    ctx.cas(&tail_ptr_, rt::to_word(crq), ctx.load(&crq->next));
    return false;
  }

  std::uint32_t crq_dequeue(Ctx& ctx, Crq* crq) {
    for (;;) {
      const std::uint64_t h = ctx.faa(&crq->head, 1);
      Word* cell = &crq->ring[h & (ring_size_ - 1)];
      for (;;) {
        const std::uint64_t c = ctx.load(cell);
        if (cell_idx(c) > h) {
          // A later round already claimed this cell (we are a slow
          // dequeuer); treat our round as empty. Without this guard we
          // could lower a poisoned index and strand a slow enqueue.
          break;
        }
        if (cell_val(c) != kLcrqEmpty) {
          if (cell_idx(c) == h) {
            // Dequeue transition: consume and re-arm the cell for round
            // h + ring_size.
            if (ctx.cas(cell, c,
                        make_cell(cell_safe(c), h + ring_size_, kLcrqEmpty))) {
              return cell_val(c);
            }
          } else {
            // A value from a different round: mark unsafe so its enqueuer
            // cannot be dequeued out of order.
            if (ctx.cas(cell, c,
                        make_cell(false, cell_idx(c), cell_val(c)))) {
              break;
            }
          }
        } else {
          // Empty transition: poison index h so a slow enqueuer skips it.
          if (ctx.cas(cell, c,
                      make_cell(cell_safe(c), h + ring_size_, kLcrqEmpty))) {
            break;
          }
        }
      }
      // Is this CRQ drained?
      const std::uint64_t t = tail_index(ctx.load(&crq->tail));
      if (t <= h + 1) {
        fix_state(ctx, crq);
        return kLcrqEmpty;
      }
    }
  }

  /// After overshooting dequeues, pull the tail up to the head so future
  /// enqueues land on live indices.
  void fix_state(Ctx& ctx, Crq* crq) {
    for (;;) {
      const std::uint64_t t = ctx.load(&crq->tail);
      const std::uint64_t h = ctx.load(&crq->head);
      if (ctx.load(&crq->tail) != t) continue;
      if (h <= tail_index(t)) return;
      if (ctx.cas(&crq->tail, t, h | (t & kClosedBit))) return;
    }
  }

  Crq* alloc_ring(Ctx& ctx) {
    const std::uint64_t i = ctx.faa(&pool_next_, 1);
    assert(i < pool_cap_ && "LCRQ ring pool exhausted");
    return pool_[static_cast<std::size_t>(i)].get();
  }

  void recycle_ring(Ctx& ctx, Crq* nq) {
    // Only the loser of an append race calls this, and nobody else has a
    // reference; push it on a simple freelist via the next field.
    for (;;) {
      const std::uint64_t f = ctx.load(&free_rings_);
      ctx.store(&nq->next, f);
      if (ctx.cas(&free_rings_, f, rt::to_word(nq))) return;
    }
  }

  std::uint32_t ring_size_;
  std::uint32_t pool_cap_;
  std::vector<std::unique_ptr<Crq>> pool_;
  alignas(rt::kCacheLine) Word pool_next_{0};
  alignas(rt::kCacheLine) Word free_rings_{0};
  alignas(rt::kCacheLine) Word head_ptr_{0};
  alignas(rt::kCacheLine) Word tail_ptr_{0};
};

}  // namespace hmps::ds

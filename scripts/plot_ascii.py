#!/usr/bin/env python3
"""Render a bench CSV (first column = x, remaining columns = series) as an
ASCII chart, so figure shapes can be eyeballed without a plotting stack.

Usage:
    ./build/bench/fig3a_counter_throughput --csv 3a.csv
    scripts/plot_ascii.py 3a.csv [--height 20] [--width 70]
"""
import argparse
import csv
import sys

MARKS = "ox+*#@%&"


def load(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    header = rows[0]
    xs, series = [], [[] for _ in header[1:]]
    for row in rows[1:]:
        try:
            xs.append(float(row[0]))
        except ValueError:
            continue
        for i, cell in enumerate(row[1:]):
            try:
                series[i].append(float(cell))
            except ValueError:
                series[i].append(None)
    return header, xs, series


def render(header, xs, series, width, height):
    flat = [v for s in series for v in s if v is not None]
    if not flat or not xs:
        print("no plottable data")
        return
    lo, hi = 0.0, max(flat) * 1.05 or 1.0
    x0, x1 = min(xs), max(xs)
    span_x = (x1 - x0) or 1.0
    grid = [[" "] * width for _ in range(height)]

    for si, s in enumerate(series):
        mark = MARKS[si % len(MARKS)]
        for x, v in zip(xs, s):
            if v is None:
                continue
            col = int((x - x0) / span_x * (width - 1))
            row = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    print(f"y: {lo:.1f} .. {hi:.1f}")
    for line in grid:
        print("  |" + "".join(line))
    print("  +" + "-" * width)
    print(f"   x: {x0:g} .. {x1:g}   ({header[0]})")
    for si, name in enumerate(header[1:]):
        print(f"   {MARKS[si % len(MARKS)]} = {name}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("csv")
    ap.add_argument("--width", type=int, default=70)
    ap.add_argument("--height", type=int, default=20)
    args = ap.parse_args()
    header, xs, series = load(args.csv)
    render(header, xs, series, args.width, args.height)
    return 0


if __name__ == "__main__":
    sys.exit(main())

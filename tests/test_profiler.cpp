// Tests for the coherence hot-line profiler.
#include <gtest/gtest.h>

#include "arch/params.hpp"
#include "arch/profiler.hpp"
#include "ds/counter.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

TEST(Profiler, AttributesEventsToLines) {
  arch::CoherenceProfiler prof;
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ex.machine().coherence().attach_profiler(&prof);
  static ds::SeqCounter a, b;
  a.value.store(0);
  b.value.store(0);
  prof.label(&a.value, "counter-a");
  prof.label(&b.value, "counter-b");
  ex.add_thread([&](SimCtx& ctx) {
    for (int i = 0; i < 20; ++i) ctx.store(&a.value, ctx.load(&a.value) + 1);
    (void)ctx.faa(&b.value, 1);
  });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(500);
    for (int i = 0; i < 20; ++i) ctx.store(&a.value, ctx.load(&a.value) + 1);
  });
  ex.run_until(sim::kCycleMax);
  const auto top = prof.top_lines(4);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].label, "counter-a");  // ping-ponged line dominates
  EXPECT_GT(top[0].rmr_reads + top[0].rmr_writes, 2u);
  EXPECT_GT(top[0].hits, 10u);
  bool saw_b = false;
  for (const auto& l : top) {
    if (l.label == "counter-b") {
      saw_b = true;
      EXPECT_EQ(l.atomics, 1u);
    }
  }
  EXPECT_TRUE(saw_b);
}

TEST(Profiler, FindsHybCombHotWord) {
  // Under contended HybComb, the hottest atomic line must be the current
  // combiner's node (the n_ops FAA word) — the profiler should surface it
  // above the counter itself.
  arch::CoherenceProfiler prof;
  SimExecutor ex(arch::MachineParams::tilegx36(), 3);
  ex.machine().coherence().attach_profiler(&prof);
  static ds::SeqCounter counter;
  counter.value.store(0);
  prof.label(&counter.value, "the-counter");
  sync::HybComb<SimCtx> hyb(&counter, 200);
  for (int i = 0; i < 16; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 80; ++k) {
        hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ctx.compute(ctx.rand_below(40));
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  const auto top = prof.top_lines(10);
  ASSERT_FALSE(top.empty());
  // The top line by atomics is unlabeled (a HybComb node), not the counter
  // (which is only ever touched by the combiner, staying cache-resident).
  // The combiner role rotates over nodes, so sum the unlabeled node lines.
  std::uint64_t node_atomics = 0, counter_traffic = 0;
  for (const auto& l : top) {
    if (l.label.empty()) node_atomics += l.atomics;
    if (l.label == "the-counter") counter_traffic = l.traffic();
  }
  EXPECT_GT(node_atomics, 16u * 80u / 2);  // most FAAs across node lines
  EXPECT_LT(counter_traffic, node_atomics / 10);
}

TEST(Profiler, ResetClears) {
  arch::CoherenceProfiler prof;
  prof.on_read(5, 40);
  EXPECT_EQ(prof.top_lines(10).size(), 1u);
  prof.reset();
  EXPECT_TRUE(prof.top_lines(10).empty());
}

}  // namespace
}  // namespace hmps

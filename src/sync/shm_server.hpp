// SHM-SERVER (paper Sections 3 and 5.2): the pure-shared-memory server
// approach — a simplified Remote Core Locking (RCL) with the same core
// mechanism and performance: one dedicated cache line per client used as a
// bidirectional request/response channel.
//
// Protocol on each 64-byte channel line:
//   client: writes arg, fn, then bumps req_seq; spins on resp_seq.
//   server: round-robin scans channels; a req_seq ahead of resp_seq is a
//           pending request; executes it, writes ret, bumps resp_seq.
// The server's read of a freshly written channel is one RMR (the line is
// dirty in the client's cache) and its response write is a second RMR
// (invalidating the spinning client) — the two stalls of Fig. 1.
//
// The server prefetches the next channel while working (the software
// pipelining a compiler performs at -O3 on an in-order core), which is what
// lets those RMRs overlap with long CS bodies (Fig. 4c).
#pragma once

#include <cstdint>
#include <memory>

#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class ShmServer {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  /// `max_clients` fixes the channel array size; client thread ids must be
  /// < max_clients (and <= kMaxThreads: the per-thread seq/stats slots are
  /// fixed arrays).
  ShmServer(Tid server_tid, void* obj, std::uint32_t max_clients = kMaxThreads)
      : server_(server_tid), obj_(obj), nchan_(max_clients),
        chans_(new Channel[max_clients]) {
    check_tid(max_clients ? max_clients - 1 : 0, kMaxThreads,
              "ShmServer (max_clients)");
  }

  Tid server_tid() const { return server_; }

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    check_tid(ctx.tid(), nchan_, "ShmServer::apply");
    obs::Span<Ctx> span(ctx, "shm.request");
    Channel& ch = chans_[ctx.tid()];
    const std::uint64_t seq = ++my_seq_[ctx.tid()].v;
    ctx.store(&ch.arg, arg);
    ctx.store(&ch.fn, rt::to_word(fn));
    explore_point(ctx, "shm.publish");
    ctx.store(&ch.req_seq, seq);
    while (ctx.load(&ch.resp_seq) != seq) ctx.cpu_relax();
    return ctx.load(&ch.ret);
  }

  /// Serves until a stop request is observed.
  void serve(Ctx& ctx) {
    check_tid(ctx.tid(), kMaxThreads, "ShmServer::serve");
    SyncStats& st = stats_[ctx.tid()].s;
    std::uint32_t i = 0;
    bool found_any = false;
    for (;;) {
      Channel& ch = chans_[i];
      const std::uint32_t next = i + 1 == nchan_ ? 0 : i + 1;
      // Software-pipelined scan: start fetching the next channel line while
      // this one is inspected/served.
      ctx.prefetch(&chans_[next]);
      const std::uint64_t req = ctx.load(&ch.req_seq);
      if (req != ctx.load(&ch.resp_seq)) {
        const std::uint64_t fnw = ctx.load(&ch.fn);
        if (fnw == kStopWord) {
          ctx.store(&ch.resp_seq, req);  // ack so the stopper can proceed
          return;
        }
        // CS + response phase: the two server-side RMRs of Fig. 1 land here.
        obs::Span<Ctx> cs(ctx, "shm.cs");
        Fn fn = rt::from_word<std::remove_pointer_t<Fn>>(fnw);
        const std::uint64_t arg = ctx.load(&ch.arg);
        const std::uint64_t ret = fn(ctx, obj_, arg);
        ctx.store(&ch.ret, ret);
        ctx.store(&ch.resp_seq, req);
        ++st.served;
        found_any = true;
      }
      i = next;
      if (i == 0) {
        explore_point(ctx, "shm.scan");
        // Completed a full scan. Back off briefly when it was empty: free
        // in the simulator, and natively it lets oversubscribed clients run
        // (the NativeCtx relax escalates to an OS yield).
        if (!found_any) {
          for (int b = 0; b < 8; ++b) ctx.cpu_relax();
        }
        found_any = false;
      }
    }
  }

  /// Stops the server through the caller's own channel (blocking until the
  /// server acknowledges).
  void request_stop(Ctx& ctx) {
    check_tid(ctx.tid(), nchan_, "ShmServer::request_stop");
    Channel& ch = chans_[ctx.tid()];
    const std::uint64_t seq = ++my_seq_[ctx.tid()].v;
    ctx.store(&ch.fn, kStopWord);
    ctx.store(&ch.req_seq, seq);
    while (ctx.load(&ch.resp_seq) != seq) ctx.cpu_relax();
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "ShmServer::stats");
    return stats_[t].s;
  }

 private:
  // One cache line per client, as in RCL.
  struct alignas(rt::kCacheLine) Channel {
    Word fn{0};
    Word arg{0};
    Word ret{0};
    Word req_seq{0};
    Word resp_seq{0};
  };
  static_assert(sizeof(Channel) == rt::kCacheLine);

  struct alignas(rt::kCacheLine) PaddedSeq {
    std::uint64_t v = 0;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  Tid server_;
  void* obj_;
  std::uint32_t nchan_;
  std::unique_ptr<Channel[]> chans_;
  PaddedSeq my_seq_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::sync

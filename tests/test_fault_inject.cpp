// Deterministic fault injection (sim/fault.hpp) and the Section 6
// robustness paths it exercises: UDN credit pressure, delivery delays,
// preemption windows, the MP-SERVER/HYBCOMB in-flight throttling guards and
// the HYBCOMB combiner-stall knob. See docs/ROBUSTNESS.md.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "arch/noc.hpp"
#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "ds/counter.hpp"
#include "harness/workload.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/fault.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"
#include "sync/mp_server_hub.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

sim::FaultPlan pressure_plan(std::uint64_t seed) {
  sim::FaultPlan fp;
  fp.seed = seed;
  fp.credit_period = 8'000;
  fp.credit_duration = 3'000;
  fp.credit_pct = 25;
  fp.preempt_period = 6'000;
  fp.preempt_duration = 1'500;
  fp.delay_permille = 100;
  fp.delay_min = 5;
  fp.delay_max = 60;
  return fp;
}

// ---- determinism ----

TEST(FaultDeterminism, DisabledPlanIsByteIdentical) {
  // Installing an all-off plan must not perturb the timeline at all (the
  // injector stays inert, no events, no extra randomness).
  auto run = [](bool install_empty_plan) {
    SimExecutor ex(arch::MachineParams::tilegx_small(4, 2), 17);
    if (install_empty_plan) ex.machine().install_faults(sim::FaultPlan{});
    ds::SeqCounter c;
    sync::MpServer<SimCtx> mp(0, &c);
    std::uint32_t done = 0;
    ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
    for (int i = 0; i < 5; ++i) {
      ex.add_thread([&](SimCtx& ctx) {
        for (int k = 0; k < 50; ++k) {
          mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
          ctx.compute(ctx.rand_below(30));
        }
        if (++done == 5) mp.request_stop(ctx);
      });
    }
    ex.run_until(sim::kCycleMax);
    return std::make_tuple(c.value.load(), ex.sched().now(),
                           ex.machine().udn().counters().messages);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultDeterminism, SameSeedSameTimeline) {
  auto run = [] {
    arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
    SimExecutor ex(p, 23);
    ex.machine().install_faults(pressure_plan(99));
    ds::SeqCounter c;
    sync::MpServer<SimCtx> mp(0, &c, /*max_inflight=*/4);
    std::uint32_t done = 0;
    ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
    const std::uint32_t nclients = 10;
    for (std::uint32_t i = 0; i < nclients; ++i) {
      ex.add_thread([&](SimCtx& ctx) {
        for (int k = 0; k < 40; ++k) {
          mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
          ctx.compute(ctx.rand_below(25));
        }
        if (++done == nclients) mp.request_stop(ctx);
      });
    }
    // Bounded horizon: fault events recur forever, so the event queue never
    // drains; the workload finishes well before this.
    ex.run_until(3'000'000);
    std::uint64_t throttle = 0;
    for (rt::Tid t = 0; t < sync::MpServer<SimCtx>::kMaxThreads; ++t) {
      throttle += mp.stats(t).throttle_waits;
    }
    const auto& fc = ex.machine().faults().counters();
    return std::make_tuple(c.value.load(), throttle, fc.credit_windows,
                           fc.delayed_messages, fc.preemptions,
                           ex.machine().udn().counters().sender_blocks);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::get<0>(a), 400u) << "all ops must complete under faults";
  EXPECT_GT(std::get<2>(a), 0u) << "credit windows should have opened";
  EXPECT_GT(std::get<4>(a), 0u) << "preemption windows should have opened";
}

// ---- UDN credit blocking (regression for the backpressure path) ----

TEST(UdnCredit, SenderBlocksUntilReceiverDrains) {
  // A sender filling the destination's hardware buffer must block on the
  // credit check and resume exactly when the receiver's drain frees space —
  // not earlier, not never.
  arch::MachineParams p = arch::MachineParams::tilegx_small(2, 1);
  p.udn_buf_words = 4;  // one 3-word message fits; two do not
  SimExecutor ex(p, 31);
  const sim::Cycle drain_at = 50'000;
  sim::Cycle second_send_done = 0;
  sim::Cycle first_send_done = 0;
  // Thread 0 (core 0): receiver, drains after a long pause.
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(drain_at);
    std::uint64_t m[3];
    ctx.receive(m, 3);
    EXPECT_EQ(m[0], 1u);
    ctx.receive(m, 3);
    EXPECT_EQ(m[0], 2u);
  });
  // Thread 1 (core 1): sender; the second send must block on credits.
  ex.add_thread([&](SimCtx& ctx) {
    ctx.send(0, {1, 2, 3});
    first_send_done = ctx.now();
    ctx.send(0, {2, 3, 4});
    second_send_done = ctx.now();
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_LT(first_send_done, 1'000u) << "first send must not block";
  EXPECT_GE(second_send_done, drain_at)
      << "second send must wait for the receiver's drain";
  EXPECT_LT(second_send_done, drain_at + 1'000u)
      << "second send must resume promptly once credits free up";
  EXPECT_GE(ex.machine().udn().counters().sender_blocks, 1u);
}

TEST(UdnCredit, FaultWindowCloseReleasesBlockedSender) {
  // A sender blocked by a shrunk credit window (not by a full buffer) must
  // be released when the window closes even if no receive ever happens
  // in between.
  arch::MachineParams p = arch::MachineParams::tilegx_small(2, 1);
  p.udn_buf_words = 32;
  SimExecutor ex(p, 37);
  sim::FaultPlan fp;
  fp.seed = 5;
  fp.credit_period = 2'000;  // first window opens within [1000, 3000]
  fp.credit_duration = 4'000;
  fp.credit_pct = 10;  // floor of 6 words applies
  ex.machine().install_faults(fp);
  sim::Cycle burst_done = 0;
  ex.add_thread([&](SimCtx& ctx) {
    // Receiver: drain everything at the very end only.
    ctx.compute(40'000);
    std::uint64_t w;
    for (int i = 0; i < 12; ++i) ctx.receive(&w, 1);
  });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(3'500);  // land inside the first pressure window
    for (int i = 0; i < 12; ++i) {
      const std::uint64_t w = static_cast<std::uint64_t>(i);
      ctx.send(0, &w, 1);
    }
    burst_done = ctx.now();
  });
  ex.run_until(100'000);
  ASSERT_GT(ex.machine().faults().counters().credit_windows, 0u);
  EXPECT_GT(burst_done, 0u) << "sender must not stay blocked forever";
  EXPECT_LT(burst_done, 40'000u)
      << "the window close, not the receiver, must release the sender";
}

// ---- NoC link jitter under contention (regression) ----

TEST(LinkJitter, ContentionPathExtendsLinkHold) {
  // Jitter on a hop must extend the link's reservation, not only the
  // jittered message's own arrival: a later message crossing the same link
  // has to queue behind the jitter. Before the fix the contention path
  // added hop jitter to the head latency only, so jittered runs were
  // indistinguishable from clean ones for every *other* message — this
  // test fails on that code with jit.second == clean.second + 1.
  arch::MachineParams p = arch::MachineParams::tilegx_small(2, 1);
  p.model_link_contention = true;
  arch::MeshTopology topo(p);
  sim::Scheduler sched;
  sim::FaultInjector fi(sched);
  sim::FaultPlan fp;
  fp.seed = 9;
  fp.jitter_permille = 1000;  // every hop draw hits...
  fp.jitter_max = 1;          // ...and adds exactly 1 + below(1) = 1 cycle
  fi.install(fp, p.cores());
  auto arrivals = [&](sim::FaultInjector* f) {
    arch::NocModel noc(p, topo);
    if (f) noc.attach_faults(f);
    // Two back-to-back 3-word messages over the single east link of the
    // 2x1 mesh, both injected at t = 0: the second queues behind the first.
    const sim::Cycle a1 = noc.route(0, 1, 0, 3);
    const sim::Cycle a2 = noc.route(0, 1, 0, 3);
    return std::make_pair(a1, a2);
  };
  const auto clean = arrivals(nullptr);
  const auto jit = arrivals(&fi);
  // First message: only its own hop jitter.
  EXPECT_EQ(jit.first, clean.first + 1);
  // Second message: the first message's jittered hold plus its own jitter.
  EXPECT_EQ(jit.second, clean.second + 2)
      << "link hold must absorb the jitter so later messages queue behind it";
}

// ---- Section 6 overflow guards ----

TEST(Sec6Overflow, ThrottlingFixesClientOnServerCoreWedge) {
  // The DeadlockHazard scenario from test_sec6_practical.cpp: a client
  // sharing the server's core with a 6-word buffer wedges the plain
  // MP-SERVER. With max_inflight = 1 the whole system holds at most one
  // 3-word request plus one 1-word response at a time, so the server's
  // response send can always complete.
  arch::MachineParams p = arch::MachineParams::tilegx_small(2, 1);
  p.udn_buf_words = 6;
  SimExecutor ex(p, 3);
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c, /*max_inflight=*/1);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });  // core 0
  for (int i = 0; i < 3; ++i) {  // threads 1..3 land on cores 1, 0(!), 1
    ex.add_thread([&](SimCtx& ctx) {
      for (;;) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
    });
  }
  ex.run_until(2'000'000);
  EXPECT_GT(c.value.load(), 10'000u) << "throttling must prevent the wedge";
  std::uint64_t throttle = 0;
  for (rt::Tid t = 0; t < sync::MpServer<SimCtx>::kMaxThreads; ++t) {
    throttle += mp.stats(t).throttle_waits;
  }
  EXPECT_GT(throttle, 0u) << "clients should have waited for credits";
}

TEST(Sec6Overflow, MpServerCompletesUnderPressureAndPreemption) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  p.udn_buf_words = 24;  // small buffer: pressure windows bite
  SimExecutor ex(p, 41);
  ex.machine().install_faults(pressure_plan(7));
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c, /*max_inflight=*/2);
  const std::uint32_t nclients = 12;
  const std::uint64_t ops_each = 40;
  std::uint32_t done = 0;
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  for (std::uint32_t i = 0; i < nclients; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops_each; ++k) {
        mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
      }
      if (++done == nclients) mp.request_stop(ctx);
    });
  }
  ex.run_until(10'000'000);
  EXPECT_EQ(c.value.load(), nclients * ops_each)
      << "no request may be lost under faults";
  EXPECT_GT(ex.machine().faults().counters().preemptions, 0u);
}

// MP-SERVER-HUB parity: the consolidated server must survive the same two
// Section 6 adversaries as the single-object MpServer above.

TEST(Sec6Overflow, HubThrottlingFixesClientOnServerCoreWedge) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(2, 1);
  p.udn_buf_words = 6;
  SimExecutor ex(p, 3);
  ds::SeqCounter c;
  sync::MpServerHub<SimCtx> hub(0, /*max_inflight=*/1);
  const std::uint64_t op = hub.add_op(ds::counter_inc<SimCtx>, &c);
  ex.add_thread([&](SimCtx& ctx) { hub.serve(ctx); });  // core 0
  for (int i = 0; i < 3; ++i) {  // threads 1..3 land on cores 1, 0(!), 1
    ex.add_thread([&](SimCtx& ctx) {
      for (;;) hub.apply(ctx, op, 0);
    });
  }
  ex.run_until(2'000'000);
  EXPECT_GT(c.value.load(), 10'000u) << "throttling must prevent the wedge";
  std::uint64_t throttle = 0;
  for (rt::Tid t = 0; t < sync::MpServerHub<SimCtx>::kMaxThreads; ++t) {
    throttle += hub.stats(t).throttle_waits;
  }
  EXPECT_GT(throttle, 0u) << "clients should have waited for credits";
}

TEST(Sec6Overflow, HubCompletesUnderPressureAndPreemption) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  p.udn_buf_words = 24;
  SimExecutor ex(p, 41);
  ex.machine().install_faults(pressure_plan(7));
  ds::SeqCounter c;
  sync::MpServerHub<SimCtx> hub(0, /*max_inflight=*/2);
  const std::uint64_t op = hub.add_op(ds::counter_inc<SimCtx>, &c);
  const std::uint32_t nclients = 12;
  const std::uint64_t ops_each = 40;
  std::uint32_t done = 0;
  ex.add_thread([&](SimCtx& ctx) { hub.serve(ctx); });
  for (std::uint32_t i = 0; i < nclients; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops_each; ++k) {
        hub.apply(ctx, op, 0);
      }
      if (++done == nclients) hub.request_stop(ctx);
    });
  }
  ex.run_until(10'000'000);
  EXPECT_EQ(c.value.load(), nclients * ops_each)
      << "no request may be lost under faults";
  EXPECT_GT(ex.machine().faults().counters().preemptions, 0u);
}

TEST(Sec6Overflow, HybCombCompletesWithStallDetection) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  SimExecutor ex(p, 43);
  sim::FaultPlan fp;
  fp.seed = 11;
  fp.preempt_period = 3'000;  // aggressive: combiners get descheduled often
  fp.preempt_duration = 2'000;
  ex.machine().install_faults(fp);
  ds::SeqCounter c;
  sync::HybComb<SimCtx>::Options opts;
  opts.stall_timeout = 400;
  opts.max_inflight = 4;
  sync::HybComb<SimCtx> hyb(&c, 16, /*fixed_combiner=*/false, opts);
  const std::uint32_t nthreads = 16;
  const std::uint64_t ops_each = 40;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops_each; ++k) {
        hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ctx.compute(ctx.rand_below(20));
      }
    });
  }
  ex.run_until(20'000'000);
  EXPECT_EQ(c.value.load(), nthreads * ops_each)
      << "no request may be lost under combiner preemption";
  std::uint64_t stalls = 0;
  for (rt::Tid t = 0; t < sync::HybComb<SimCtx>::kMaxThreads; ++t) {
    stalls += hyb.stats(t).stall_timeouts;
  }
  EXPECT_GT(stalls, 0u)
      << "stall detection should have fired under aggressive preemption";
}

TEST(Sec6Overflow, HarnessReportsRobustnessCounters) {
  // The acceptance scenario: harness-level run with buffer pressure and
  // combiner preemption completes and surfaces the new counters.
  harness::RunCfg cfg;
  cfg.machine = arch::MachineParams::tilegx_small(4, 2);
  cfg.app_threads = 8;
  cfg.warmup = 20'000;
  cfg.window = 60'000;
  cfg.reps = 2;
  cfg.faults = pressure_plan(3);
  cfg.max_inflight = 2;
  cfg.stall_timeout = 500;
  for (harness::Approach a :
       {harness::Approach::kMpServer, harness::Approach::kHybComb}) {
    const harness::RunResult r = harness::run_counter(cfg, a);
    EXPECT_GT(r.total_ops, 0u) << harness::approach_name(a);
    EXPECT_GT(r.preemptions, 0u) << harness::approach_name(a);
    EXPECT_GT(r.throttle_waits, 0u) << harness::approach_name(a);
  }
}

// ---- hard capacity checks (death tests) ----

using FaultInjectDeathTest = ::testing::Test;

TEST(FaultInjectDeathTest, StatsBeyondCapacityAborts) {
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  EXPECT_DEATH(mp.stats(64), "exceeds the construction's fixed capacity");
  sync::HybComb<SimCtx> hyb(&c);
  EXPECT_DEATH(hyb.stats(200), "exceeds the construction's fixed capacity");
  sync::CcSynch<SimCtx> cc(&c);
  EXPECT_DEATH(cc.stats(64), "exceeds the construction's fixed capacity");
}

TEST(FaultInjectDeathTest, TooManyThreadsAborts) {
  // A 73rd thread (tid 72) would silently index past the 64-slot pools; the
  // capacity check must fire before any memory is touched.
  EXPECT_DEATH(
      {
        // 36 cores x 4 demux queues hold 144 threads, so every placement is
        // valid; only the construction's 64-slot pools are exceeded.
        SimExecutor ex(arch::MachineParams::tilegx36(), 3);
        ds::SeqCounter c;
        sync::HybComb<SimCtx> hyb(&c, 16);
        const std::uint32_t nthreads = 72;
        for (std::uint32_t i = 0; i < nthreads; ++i) {
          ex.add_thread([&](SimCtx& ctx) {
            hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
          });
        }
        ex.run_until(sim::kCycleMax);
      },
      "exceeds the construction's fixed capacity");
}

TEST(FaultInjectDeathTest, UnhandledQueueImplAborts) {
  // The harness server dispatch must fail loudly on an enumerator it does
  // not know instead of silently running the bench without its server.
  harness::RunCfg cfg;
  cfg.machine = arch::MachineParams::tilegx_small(4, 2);
  cfg.app_threads = 2;
  EXPECT_DEATH(harness::run_queue(cfg, static_cast<harness::QueueImpl>(99)),
               "unhandled QueueImpl");
}

}  // namespace
}  // namespace hmps

file(REMOVE_RECURSE
  "CMakeFiles/fig5a_queues.dir/fig5a_queues.cpp.o"
  "CMakeFiles/fig5a_queues.dir/fig5a_queues.cpp.o.d"
  "fig5a_queues"
  "fig5a_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

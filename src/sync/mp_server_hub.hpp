// MP-SERVER-HUB: one dedicated server core serving MANY concurrent objects
// through the paper's Section 5.2 opcode interface.
//
// Instead of a function pointer, requests carry a small opcode indexing a
// registered (function, object) pair — the interface the paper used to let
// the compiler inline CS bodies at the servicing thread. The hub form also
// addresses the intro's observation that "dedicating cores is less
// feasible if an application includes a large number of potentially
// contended concurrent objects": k objects share one server core, trading
// per-object throughput for core economy (see the
// abl_server_consolidation bench).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class MpServerHub {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  explicit MpServerHub(Tid server_tid) : server_(server_tid) {}

  /// Registers a critical-section body bound to an object; returns its
  /// opcode. All registrations must happen before serve() starts.
  std::uint64_t add_op(Fn fn, void* obj) {
    ops_.push_back(Entry{fn, obj});
    return ops_.size();  // opcode 0 is the stop word
  }

  Tid server_tid() const { return server_; }
  std::size_t op_count() const { return ops_.size(); }

  /// Client side: executes the CS registered under `opcode`.
  std::uint64_t apply(Ctx& ctx, std::uint64_t opcode, std::uint64_t arg) {
    assert(opcode >= 1 && opcode <= ops_.size());
    ctx.send(server_, {ctx.tid(), opcode, arg});
    return ctx.receive1();
  }

  /// Server side: serves all registered objects until a stop request.
  void serve(Ctx& ctx) {
    check_tid(ctx.tid(), kMaxThreads, "MpServerHub::serve");
    SyncStats& st = stats_[ctx.tid()].s;
    for (;;) {
      std::uint64_t m[3];
      ctx.receive(m, 3);
      if (m[1] == kStopWord) return;
      const Entry& e = ops_[m[1] - 1];
      ctx.send(static_cast<Tid>(m[0]), {e.fn(ctx, e.obj, m[2])});
      ++st.served;
    }
  }

  void request_stop(Ctx& ctx) { ctx.send(server_, {0, kStopWord, 0}); }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "MpServerHub::stats");
    return stats_[t].s;
  }

 private:
  struct Entry {
    Fn fn;
    void* obj;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  Tid server_;
  std::vector<Entry> ops_;
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::sync

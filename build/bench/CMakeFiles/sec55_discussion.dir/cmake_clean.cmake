file(REMOVE_RECURSE
  "CMakeFiles/sec55_discussion.dir/sec55_discussion.cpp.o"
  "CMakeFiles/sec55_discussion.dir/sec55_discussion.cpp.o.d"
  "sec55_discussion"
  "sec55_discussion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_discussion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

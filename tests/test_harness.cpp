// Tests for the benchmark harness itself: reporting, argument parsing, and
// — most importantly — the paper's qualitative shapes as executable
// assertions on small windows (the "who wins" relations of the evaluation).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/report.hpp"
#include "harness/workload.hpp"

namespace hmps::harness {
namespace {

TEST(Report, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string path = "/tmp/hmps_test_table.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::getline(f, line);
  EXPECT_EQ(line, "3,4");
}

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(100.0), "100.00");
}

TEST(Report, BenchArgsParse) {
  const char* argv[] = {"bench", "--full", "--csv", "out.csv", "--threads",
                        "12",    "--window", "5000", "--reps", "7",
                        "--seed", "99"};
  const BenchArgs a = BenchArgs::parse(12, const_cast<char**>(argv));
  EXPECT_TRUE(a.full);
  EXPECT_EQ(a.csv, "out.csv");
  EXPECT_EQ(a.threads, 12u);
  EXPECT_EQ(a.window, 5000u);
  EXPECT_EQ(a.reps, 7u);
  EXPECT_EQ(a.seed, 99u);
}

TEST(Report, BenchArgsDefaults) {
  const char* argv[] = {"bench"};
  const BenchArgs a = BenchArgs::parse(1, const_cast<char**>(argv));
  EXPECT_FALSE(a.full);
  EXPECT_TRUE(a.csv.empty());
  EXPECT_EQ(a.threads, 0u);
}

// ---- workload smoke + shape assertions (small windows) ----

RunCfg quick_cfg(std::uint32_t threads) {
  RunCfg cfg;
  cfg.app_threads = threads;
  cfg.warmup = 30'000;
  cfg.window = 60'000;
  cfg.reps = 2;
  return cfg;
}

TEST(Workload, CounterProducesSaneMetrics) {
  const RunResult r = run_counter(quick_cfg(8), Approach::kMpServer);
  EXPECT_GT(r.mops, 1.0);
  EXPECT_GT(r.lat_mean, 1.0);
  EXPECT_GE(r.fairness, 1.0);
  EXPECT_GT(r.total_ops, 100u);
  EXPECT_NEAR(r.msgs_per_op, 2.0, 0.2);  // request + response
}

TEST(Workload, PaperShapeCounterAt20Threads) {
  // The core qualitative result of Fig. 3a at a high concurrency level:
  // mp-server > HybComb > {shm-server, CC-Synch}, with mp-server at least
  // 3x shm-server.
  const RunCfg cfg = quick_cfg(20);
  const double mp = run_counter(cfg, Approach::kMpServer).mops;
  const double hyb = run_counter(cfg, Approach::kHybComb).mops;
  const double shm = run_counter(cfg, Approach::kShmServer).mops;
  const double cc = run_counter(cfg, Approach::kCcSynch).mops;
  EXPECT_GT(mp, hyb);
  EXPECT_GT(hyb, shm);
  EXPECT_GT(hyb, cc);
  EXPECT_GT(mp / shm, 3.0);
}

TEST(Workload, PaperShapeStallsVanishWithMessagePassing) {
  // Fig. 4a: the servicing thread's stall share is near zero for
  // mp-server and majority for the shared-memory approaches.
  RunCfg cfg = quick_cfg(20);
  const RunResult mp = run_counter(cfg, Approach::kMpServer);
  cfg.fixed_combiner = true;
  const RunResult cc = run_counter(cfg, Approach::kCcSynch);
  EXPECT_LT(mp.serv_stall_per_op, 2.0);
  EXPECT_GT(cc.serv_stall_per_op / cc.serv_total_per_op, 0.4);
}

TEST(Workload, PaperShapeMaxOpsHelpsHybCombOnly) {
  // Fig. 3c: HybComb keeps gaining from larger MAX_OPS; CC-Synch saturates.
  RunCfg lo = quick_cfg(20);
  lo.max_ops = 4;
  RunCfg hi = quick_cfg(20);
  hi.max_ops = 1000;
  const double hyb_lo = run_counter(lo, Approach::kHybComb).mops;
  const double hyb_hi = run_counter(hi, Approach::kHybComb).mops;
  const double cc_lo = run_counter(lo, Approach::kCcSynch).mops;
  const double cc_hi = run_counter(hi, Approach::kCcSynch).mops;
  EXPECT_GT(hyb_hi, 1.8 * hyb_lo);
  EXPECT_LT(cc_hi, 1.8 * cc_lo);
}

TEST(Workload, PaperShapeQueueRanking) {
  // Fig. 5a at moderate concurrency: one-lock mp-server queue beats the
  // one-lock shm-server queue and the two-lock variant.
  const RunCfg cfg = quick_cfg(16);
  const double mp1 = run_queue(cfg, QueueImpl::kMp1).mops;
  const double shm1 = run_queue(cfg, QueueImpl::kShm1).mops;
  const double mp2 = run_queue(cfg, QueueImpl::kMp2).mops;
  EXPECT_GT(mp1, shm1);
  EXPECT_GT(mp1, mp2);
}

TEST(Workload, PaperShapeStackRanking) {
  // Fig. 5b: the mp-server stack beats shm-server and Treiber.
  const RunCfg cfg = quick_cfg(16);
  const double mp = run_stack(cfg, StackImpl::kMp).mops;
  const double shm = run_stack(cfg, StackImpl::kShm).mops;
  const double tr = run_stack(cfg, StackImpl::kTreiber).mops;
  EXPECT_GT(mp, shm);
  EXPECT_GT(mp, tr);
}

TEST(Workload, IdealCsGrowsLinearly) {
  RunCfg cfg = quick_cfg(1);
  cfg.cs_iters = 5;
  const double c5 = ideal_cs_cycles(cfg);
  cfg.cs_iters = 10;
  const double c10 = ideal_cs_cycles(cfg);
  EXPECT_GT(c5, 0.0);
  EXPECT_NEAR(c10 / c5, 2.0, 0.3);
}

TEST(Workload, RepeatableAcrossRuns) {
  // The event order for a fixed (machine, workload, seed, address layout)
  // is exactly deterministic; across repeated in-process runs the heap
  // layout shifts line->home assignments slightly, so results must agree
  // closely but not bit-exactly.
  // HybComb's combining-round dynamics amplify small layout differences;
  // the tolerance reflects the observed cross-layout spread, not noise in
  // a single run (which is zero).
  const RunResult a = run_counter(quick_cfg(8), Approach::kHybComb);
  const RunResult b = run_counter(quick_cfg(8), Approach::kHybComb);
  EXPECT_NEAR(a.mops, b.mops, 0.15 * a.mops);
  EXPECT_NEAR(a.lat_mean, b.lat_mean, 0.20 * a.lat_mean);
}

TEST(Workload, SeedChangesOutcomeSlightly) {
  RunCfg c1 = quick_cfg(8);
  RunCfg c2 = quick_cfg(8);
  c2.seed = 1234;
  const RunResult a = run_counter(c1, Approach::kHybComb);
  const RunResult b = run_counter(c2, Approach::kHybComb);
  EXPECT_NE(a.total_ops, b.total_ops);     // different think-time draws
  EXPECT_NEAR(a.mops, b.mops, a.mops / 2); // but same ballpark
}

TEST(Workload, XeonPresetRuns) {
  RunCfg cfg = quick_cfg(8);
  cfg.machine = arch::MachineParams::xeon10();
  const RunResult r = run_counter(cfg, Approach::kCcSynch);
  EXPECT_GT(r.mops, 0.5);
}

TEST(Workload, LockApproachesWork) {
  const RunCfg cfg = quick_cfg(8);
  for (Approach a : {Approach::kMcsLock, Approach::kClhLock,
                     Approach::kTicketLock, Approach::kTasLock,
                     Approach::kTtasLock}) {
    const RunResult r = run_counter(cfg, a);
    EXPECT_GT(r.mops, 0.5) << approach_name(a);
  }
}

}  // namespace
}  // namespace hmps::harness

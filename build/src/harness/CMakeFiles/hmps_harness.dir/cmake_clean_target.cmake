file(REMOVE_RECURSE
  "libhmps_harness.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/test_sync_sim.dir/test_sync_sim.cpp.o"
  "CMakeFiles/test_sync_sim.dir/test_sync_sim.cpp.o.d"
  "test_sync_sim"
  "test_sync_sim.pdb"
  "test_sync_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

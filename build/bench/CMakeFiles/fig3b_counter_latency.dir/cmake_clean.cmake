file(REMOVE_RECURSE
  "CMakeFiles/fig3b_counter_latency.dir/fig3b_counter_latency.cpp.o"
  "CMakeFiles/fig3b_counter_latency.dir/fig3b_counter_latency.cpp.o.d"
  "fig3b_counter_latency"
  "fig3b_counter_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_counter_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Extension bench: the whole combining-construction lineage on one plot —
// Oyama'99 (lock + CAS-pushed pending list), flat combining (publication
// records), CC-SYNCH / DSM-SYNCH / H-SYNCH (the Fatourou-Kallimanis
// family), and HYBCOMB (the paper's hybrid) — on the contended counter.
//
// Expected: HybComb >> CC-Synch >= {DSM-Synch, H-Synch} > flat combining
// >= Oyama: each generation removed a bottleneck of its predecessor, and
// HybComb finally moves request traffic off the coherence fabric
// altogether.
#include <cstdio>
#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "harness/report.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/ccsynch.hpp"
#include "sync/dsm_synch.hpp"
#include "sync/flat_combining.hpp"
#include "sync/hsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/oyama.hpp"

using namespace hmps;
using rt::SimCtx;

namespace {

enum class C { kOy, kFc, kCc, kDsm, kHs, kHyb };

double run(C kind, std::uint32_t threads, sim::Cycle window,
           std::uint64_t seed) {
  rt::SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  ds::SeqCounter c;
  sync::OyamaComb<SimCtx> oy(&c);
  sync::FlatCombining<SimCtx> fc(&c);
  sync::CcSynch<SimCtx> cc(&c, 200);
  sync::DsmSynch<SimCtx> dsm(&c, 200);
  sync::HSynch<SimCtx> hs(&c, 200, 6);
  sync::HybComb<SimCtx> hyb(&c, 200);
  std::vector<std::uint64_t> ops(threads, 0);
  for (std::uint32_t i = 0; i < threads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (;;) {
        switch (kind) {
          case C::kOy: oy.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
          case C::kFc: fc.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
          case C::kCc: cc.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
          case C::kDsm: dsm.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
          case C::kHs: hs.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
          case C::kHyb: hyb.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
        }
        ++ops[i];
        ctx.compute(2 * ctx.rand_below(51));
      }
    });
  }
  ex.run_until(60'000);
  std::uint64_t o0 = 0;
  for (auto o : ops) o0 += o;
  ex.run_until(60'000 + window);
  std::uint64_t o1 = 0;
  for (auto o : ops) o1 += o;
  return static_cast<double>(o1 - o0) / static_cast<double>(window) * 1200.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  const sim::Cycle window = args.window ? args.window : 150'000;

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{1, 2, 5, 10, 15, 20, 25, 30, 35}
                : std::vector<std::uint32_t>{1, 5, 15, 25, 35};
  if (args.threads) threads = {args.threads};

  harness::Table table({"threads", "Oyama99", "flat-combining", "CC-Synch",
                        "DSM-Synch", "H-Synch", "HybComb"});
  for (std::uint32_t t : threads) {
    table.add_row({std::to_string(t),
                   harness::fmt(run(C::kOy, t, window, args.seed)),
                   harness::fmt(run(C::kFc, t, window, args.seed)),
                   harness::fmt(run(C::kCc, t, window, args.seed)),
                   harness::fmt(run(C::kDsm, t, window, args.seed)),
                   harness::fmt(run(C::kHs, t, window, args.seed)),
                   harness::fmt(run(C::kHyb, t, window, args.seed))});
    std::fprintf(stderr, "[ext-combiners] threads=%u done\n", t);
  }
  table.print("Extension: the combining family on the counter (Mops/s)");
  if (!args.csv.empty()) table.write_csv(args.csv);
  return 0;
}

# Empty compiler generated dependencies file for fig4c_cs_length.
# This may be replaced when dependencies are built.

// The run pool's contract (harness/run_pool.hpp): executing a set of
// submitted runs on N worker threads produces artifacts byte-identical to
// executing the same submissions serially, regardless of completion order.
// These tests pin that contract at every layer — TaskPool mechanics,
// RunPool metrics/trace merging, and the parallel schedule-exploration
// loop's repro output.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/explore.hpp"
#include "check/repro.hpp"
#include "harness/artifact.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"

namespace {

using namespace hmps;
using harness::Approach;
using harness::BenchArgs;
using harness::RunArtifacts;
using harness::RunPool;
using harness::TaskPool;

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "hmps_run_pool_" + name;
}

// --- resolve_jobs ----------------------------------------------------------

TEST(ResolveJobs, FlagWinsOverEnvAndHardware) {
  ::setenv("HMPS_JOBS", "3", 1);
  EXPECT_EQ(harness::resolve_jobs(7), 7u);
  ::unsetenv("HMPS_JOBS");
}

TEST(ResolveJobs, EnvWinsOverHardware) {
  ::setenv("HMPS_JOBS", "5", 1);
  EXPECT_EQ(harness::resolve_jobs(0), 5u);
  ::unsetenv("HMPS_JOBS");
}

TEST(ResolveJobs, DefaultsToHardwareConcurrencyAtLeastOne) {
  ::unsetenv("HMPS_JOBS");
  const std::uint32_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(harness::resolve_jobs(0), hw > 0 ? hw : 1u);
}

TEST(ResolveJobs, GarbageEnvFallsThrough) {
  ::setenv("HMPS_JOBS", "not-a-number", 1);
  const std::uint32_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(harness::resolve_jobs(0), hw > 0 ? hw : 1u);
  ::unsetenv("HMPS_JOBS");
}

// --- TaskPool --------------------------------------------------------------

TEST(TaskPool, RunsEveryTask) {
  TaskPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(TaskPool, SingleJobRunsInlineOnCallerThread) {
  TaskPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  pool.submit([&] {
    ran = true;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  // Inline mode: the task has already run when submit() returns.
  EXPECT_TRUE(ran);
  pool.wait();
}

TEST(TaskPool, ReusableAfterWait) {
  TaskPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 50 * (round + 1));
  }
}

TEST(TaskPool, WaitWithNothingSubmittedReturns) {
  TaskPool pool(2);
  pool.wait();  // must not hang
  TaskPool serial(1);
  serial.wait();
}

// --- RunPool artifact identity ---------------------------------------------

// Builds the BenchArgs/argv a bench main() would have. The argv recorded in
// the artifact header must match between the serial and parallel runs for a
// byte comparison to be meaningful, so both use this fixed fake argv.
BenchArgs artifact_args(const std::string& json, const std::string& trace) {
  BenchArgs a;
  a.json = json;
  a.trace = trace;
  return a;
}

std::vector<harness::RunCfg> sweep_cfgs() {
  std::vector<harness::RunCfg> cfgs;
  for (std::uint32_t t : {2u, 3u, 4u}) {
    harness::RunCfg cfg;
    cfg.app_threads = t;
    cfg.warmup = 2'000;
    cfg.window = 6'000;
    cfg.reps = 2;
    cfg.seed = 42;
    cfgs.push_back(cfg);
  }
  return cfgs;
}

// Runs the sweep serially (the pre-pool code path: shared sinks, in order)
// and returns the artifact bytes.
void run_serial(const std::string& json, const std::string& trace,
                std::vector<harness::RunResult>* results = nullptr) {
  const char* argv[] = {const_cast<char*>("sweep")};
  BenchArgs args = artifact_args(json, trace);
  RunArtifacts art(args, "sweep", 1, const_cast<char**>(argv));
  for (const harness::RunCfg& base : sweep_cfgs()) {
    for (Approach a : {Approach::kMpServer, Approach::kCcSynch}) {
      harness::RunCfg cfg = base;
      cfg.obs = art.next_run(std::string(harness::approach_name(a)) + "/t" +
                             std::to_string(cfg.app_threads));
      const auto r = harness::run_counter(cfg, a);
      if (results) results->push_back(r);
    }
  }
  art.finalize();
}

// Same sweep through the RunPool with `jobs` workers. `reverse_weight`
// makes the first-submitted runs the slowest (largest windows), so under
// multiple workers completion order is adversarial to submission order.
void run_pooled(const std::string& json, const std::string& trace,
                std::uint32_t jobs, bool reverse_weight,
                std::vector<harness::RunResult>* results = nullptr) {
  const char* argv[] = {const_cast<char*>("sweep")};
  BenchArgs args = artifact_args(json, trace);
  RunArtifacts art(args, "sweep", 1, const_cast<char**>(argv));
  RunPool pool(art, jobs);
  std::vector<harness::RunCfg> cfgs = sweep_cfgs();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    for (Approach a : {Approach::kMpServer, Approach::kCcSynch}) {
      harness::RunCfg cfg = cfgs[i];
      if (reverse_weight) {
        // First submissions simulate the longest window: workers finish
        // later submissions first, exercising out-of-order completion.
        cfg.window += (cfgs.size() - i) * 4'000;
      }
      pool.submit(std::string(harness::approach_name(a)) + "/t" +
                      std::to_string(cfg.app_threads),
                  [cfg, a](const harness::RunObs& obs) {
                    harness::RunCfg c = cfg;
                    c.obs = obs;
                    return harness::run_counter(c, a);
                  });
    }
  }
  const auto& rs = pool.drain();
  if (results) *results = rs;
  art.finalize();
}

TEST(RunPool, MetricsAndTraceBitIdenticalToSerial) {
  const std::string sj = tmp_path("serial.json");
  const std::string st = tmp_path("serial.trace.json");
  const std::string pj = tmp_path("pool.json");
  const std::string pt = tmp_path("pool.trace.json");
  std::vector<harness::RunResult> serial_rs, pool_rs;
  run_serial(sj, st, &serial_rs);
  run_pooled(pj, pt, 4, /*reverse_weight=*/false, &pool_rs);

  const std::string serial_json = slurp(sj);
  ASSERT_FALSE(serial_json.empty());
  EXPECT_EQ(serial_json, slurp(pj));
  const std::string serial_trace = slurp(st);
  ASSERT_FALSE(serial_trace.empty());
  EXPECT_EQ(serial_trace, slurp(pt));

  // Results come back in submission order with bit-equal measurements.
  ASSERT_EQ(serial_rs.size(), pool_rs.size());
  for (std::size_t i = 0; i < serial_rs.size(); ++i) {
    EXPECT_EQ(serial_rs[i].mops, pool_rs[i].mops) << "run " << i;
    EXPECT_EQ(serial_rs[i].total_ops, pool_rs[i].total_ops) << "run " << i;
    EXPECT_EQ(serial_rs[i].lat_p99, pool_rs[i].lat_p99) << "run " << i;
  }
}

TEST(RunPool, MergeDeterministicUnderAdversarialCompletionOrder) {
  // Weighted so completion order inverts submission order; the merged
  // artifact must still equal the serial execution of the same weighted
  // submissions (jobs=1 through the same RunPool code path).
  const std::string sj = tmp_path("adv_serial.json");
  const std::string st = tmp_path("adv_serial.trace.json");
  const std::string pj = tmp_path("adv_pool.json");
  const std::string pt = tmp_path("adv_pool.trace.json");
  run_pooled(sj, st, 1, /*reverse_weight=*/true);
  run_pooled(pj, pt, 8, /*reverse_weight=*/true);
  const std::string serial_json = slurp(sj);
  ASSERT_FALSE(serial_json.empty());
  EXPECT_EQ(serial_json, slurp(pj));
  EXPECT_EQ(slurp(st), slurp(pt));
}

TEST(RunPool, ReusableAcrossDrains) {
  const char* argv[] = {const_cast<char*>("sweep")};
  BenchArgs args;  // no artifacts: exercise the null-sink path
  RunArtifacts art(args, "sweep", 1, const_cast<char**>(argv));
  RunPool pool(art, 2);
  harness::RunCfg cfg;
  cfg.app_threads = 2;
  cfg.warmup = 1'000;
  cfg.window = 3'000;
  cfg.reps = 1;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 3; ++i) {
      pool.submit("r", [cfg](const harness::RunObs& obs) {
        harness::RunCfg c = cfg;
        c.obs = obs;
        return harness::run_counter(c, Approach::kMpServer);
      });
    }
    EXPECT_EQ(pool.drain().size(), 3u);
  }
}

// --- parallel schedule exploration -----------------------------------------

// The exploration loop batches scenario execution across workers but must
// find the same (lowest-iteration) violation and shrink it to the same
// repro as the serial loop.
TEST(ExploreJobs, ReproIdenticalAcrossJobCounts) {
  check::ExploreCfg cfg;
  cfg.seed = 11;
  cfg.max_schedules = 300;
  cfg.budget_seconds = 0;  // schedule-bound
  cfg.constructions = {harness::Construction::kHybComb};
  cfg.objects = {harness::Object::kCounter};
  cfg.hyb_bug_drop_every = 3;  // seeded defect: a violation exists

  cfg.jobs = 1;
  const check::ExploreResult serial = check::explore(cfg);
  cfg.jobs = 8;
  const check::ExploreResult parallel = check::explore(cfg);

  ASSERT_TRUE(serial.violation_found);
  ASSERT_TRUE(parallel.violation_found);
  // Identical failing scenario (the lowest-iteration violation)...
  EXPECT_EQ(serial.failing.cfg.seed, parallel.failing.cfg.seed);
  EXPECT_EQ(serial.violation.kind, parallel.violation.kind);
  EXPECT_EQ(serial.violation.detail, parallel.violation.detail);
  // ...and an identical serialized repro after shrinking.
  EXPECT_EQ(check::repro_to_json(serial.shrunk, serial.shrunk_violation),
            check::repro_to_json(parallel.shrunk, parallel.shrunk_violation));
}

}  // namespace

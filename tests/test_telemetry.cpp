// Tests for obs::Telemetry (docs/OBSERVABILITY.md): the windowed sampler
// must (a) telescope — per-bucket window sums equal the run-level
// cycle_accounts exactly, (b) have zero observer effect — enabling it
// changes no simulated outcome and adds only ph:"C" counter samples to the
// trace, and (c) keep the artifact byte-identical across --jobs 1 and
// --jobs N with telemetry on.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/run_pool.hpp"
#include "harness/service.hpp"
#include "harness/workload.hpp"
#include "obs/cycle_account.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace hmps {
namespace {

using harness::Approach;
using obs::CycleAccount;
using obs::JsonValue;

harness::RunCfg small_cfg() {
  harness::RunCfg cfg;
  cfg.app_threads = 3;
  cfg.warmup = 20'000;
  cfg.window = 50'000;
  cfg.reps = 2;
  cfg.seed = 7;
  return cfg;
}

std::uint64_t sum_series(const JsonValue& arr) {
  std::uint64_t s = 0;
  for (const JsonValue& v : arr.items()) s += v.as_uint();
  return s;
}

// Bucket window deltas are signed (reclassify can pull cycles back across
// a window boundary); only their telescoped sum must match the unsigned
// run-level totals.
std::int64_t sum_signed(const JsonValue& arr) {
  std::int64_t s = 0;
  for (const JsonValue& v : arr.items()) s += v.as_int();
  return s;
}

// --- telescoping: window sums == run-level cycle_accounts ------------------

// Multi-chip link grid (docs/SHARDING.md): the per-chip busy/wait
// aggregates must telescope exactly to the sums of the global per-link
// grid, and the chip-grid shape is always emitted.
TEST(Telemetry, MultiChipLinkGridTelescopesToGlobalGrid) {
  obs::MetricsRegistry reg;
  harness::RunCfg cfg = small_cfg();
  cfg.telemetry_window = 20'000;
  cfg.machine.model_link_contention = true;
  cfg.machine.mesh_w = 8;
  cfg.machine.mesh_h = 8;
  cfg.machine.chips_x = 2;
  cfg.machine.chips_y = 2;
  cfg.machine.chip_hop_extra = 12;
  cfg.app_threads = 8;
  cfg.obs.metrics = &reg;
  cfg.obs.label = "mp-server-multichip";
  (void)harness::run_counter(cfg, Approach::kMpServer);

  ASSERT_EQ(reg.root()["runs"].size(), 1u);
  const JsonValue& run = reg.root()["runs"].items()[0];
  const JsonValue* grid = run.find("telemetry")->find("link_grid");
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(grid->find("chips_x")->as_uint(), 2u);
  EXPECT_EQ(grid->find("chips_y")->as_uint(), 2u);
  const JsonValue* chip_busy = grid->find("chip_busy");
  const JsonValue* chip_wait = grid->find("chip_wait");
  ASSERT_NE(chip_busy, nullptr);
  ASSERT_NE(chip_wait, nullptr);
  ASSERT_EQ(chip_busy->size(), 4u);
  ASSERT_EQ(chip_wait->size(), 4u);
  EXPECT_GT(sum_series(*grid->find("busy")), 0u);
  EXPECT_EQ(sum_series(*chip_busy), sum_series(*grid->find("busy")));
  EXPECT_EQ(sum_series(*chip_wait), sum_series(*grid->find("wait")));
  // The run's machine params echo the chip grid for downstream tools.
  const JsonValue* mp = run.find("machine_params");
  EXPECT_EQ(mp->find("chips_x")->as_uint(), 2u);
  EXPECT_EQ(mp->find("chip_hop_extra")->as_uint(), 12u);
}

// Single-chip machines emit the chip-grid shape but no per-chip series —
// consumers key on chips_x * chips_y > 1.
TEST(Telemetry, SingleChipLinkGridHasNoChipSeries) {
  obs::MetricsRegistry reg;
  harness::RunCfg cfg = small_cfg();
  cfg.telemetry_window = 20'000;
  cfg.machine.model_link_contention = true;
  cfg.obs.metrics = &reg;
  cfg.obs.label = "mp-server-mono";
  (void)harness::run_counter(cfg, Approach::kMpServer);
  const JsonValue& run = reg.root()["runs"].items()[0];
  const JsonValue* grid = run.find("telemetry")->find("link_grid");
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(grid->find("chips_x")->as_uint(), 1u);
  EXPECT_EQ(grid->find("chips_y")->as_uint(), 1u);
  EXPECT_EQ(grid->find("chip_busy"), nullptr);
  EXPECT_EQ(grid->find("chip_wait"), nullptr);
}

TEST(Telemetry, CounterRunWindowSumsTelescopeToRunTotals) {
  obs::MetricsRegistry reg;
  harness::RunCfg cfg = small_cfg();
  cfg.telemetry_window = 20'000;
  // Route messages through the XY-wormhole model so the NoC counters and
  // the per-window noc series are live (the --noc bench flag).
  cfg.machine.model_link_contention = true;
  cfg.obs.metrics = &reg;
  cfg.obs.label = "mp-server";
  (void)harness::run_counter(cfg, Approach::kMpServer);

  ASSERT_EQ(reg.root()["runs"].size(), 1u);
  const JsonValue& run = reg.root()["runs"].items()[0];
  ASSERT_TRUE(run.has("telemetry"));
  const JsonValue* tel = run.find("telemetry");
  EXPECT_EQ(tel->find("window")->as_uint(), 20'000u);

  // warmup 20k + 2 * 50k measured: ticks at 40/60/80/100k (strictly before
  // the end), flush closes the final window at 120k.
  ASSERT_EQ(tel->find("n_windows")->as_uint(), 5u);
  const JsonValue* ends = tel->find("ends");
  ASSERT_EQ(ends->size(), 5u);
  EXPECT_EQ(ends->items()[0].as_uint(), 40'000u);
  EXPECT_EQ(ends->items()[4].as_uint(), 120'000u);

  const JsonValue* accts = run.find("cycle_accounts");
  ASSERT_GT(accts->size(), 0u);
  const JsonValue* buckets = tel->find("buckets");
  const JsonValue* core0 = tel->find("core0_buckets");
  for (int b = 0; b < CycleAccount::kNumBuckets; ++b) {
    const char* name =
        CycleAccount::bucket_name(static_cast<CycleAccount::Bucket>(b));
    ASSERT_TRUE(buckets->has(name)) << name;
    ASSERT_EQ(buckets->find(name)->size(), 5u) << name;
    std::uint64_t run_total = 0;
    for (const JsonValue& a : accts->items()) {
      run_total += a.find(name)->as_uint();
    }
    // Exact, not approximate: the sampler baselines at the same snapshot
    // the harness uses and flushes after the final settle.
    EXPECT_EQ(sum_signed(*buckets->find(name)),
              static_cast<std::int64_t>(run_total))
        << name;
    EXPECT_EQ(sum_signed(*core0->find(name)),
              static_cast<std::int64_t>(
                  accts->items()[0].find(name)->as_uint()))
        << name;
  }

  // Satellite: the machine block now exports NoC counters, and an
  // MP-SERVER run pushes real messages through the mesh.
  const JsonValue* noc = run.find("machine")->find("noc");
  ASSERT_NE(noc, nullptr);
  EXPECT_GT(noc->find("messages")->as_uint(), 0u);
  EXPECT_GT(noc->find("hops")->as_uint(), 0u);
  EXPECT_GT(sum_series(*tel->find("noc")->find("messages")), 0u);
}

TEST(Telemetry, ServiceRunTelescopesAndCountsEveryCompletion) {
  obs::MetricsRegistry reg;
  harness::ServiceCfg cfg;
  cfg.base = small_cfg();
  cfg.base.window = 60'000;
  cfg.base.reps = 1;
  cfg.base.telemetry_window = 15'000;
  cfg.base.obs.metrics = &reg;
  cfg.base.obs.label = "mp-server/o4";
  cfg.sessions = 4;
  cfg.offered_mops = 4.0;
  const harness::RunResult r =
      harness::run_service(cfg, Approach::kMpServer);

  ASSERT_EQ(reg.root()["runs"].size(), 1u);
  const JsonValue& run = reg.root()["runs"].items()[0];
  ASSERT_TRUE(run.has("telemetry"));
  const JsonValue* tel = run.find("telemetry");
  // t_meas0 20k .. t_end 80k, cadence 15k: ticks 35/50/65k + flush at 80k.
  ASSERT_EQ(tel->find("n_windows")->as_uint(), 4u);

  const JsonValue* accts = run.find("cycle_accounts");
  const JsonValue* buckets = tel->find("buckets");
  for (int b = 0; b < CycleAccount::kNumBuckets; ++b) {
    const char* name =
        CycleAccount::bucket_name(static_cast<CycleAccount::Bucket>(b));
    std::uint64_t run_total = 0;
    for (const JsonValue& a : accts->items()) {
      run_total += a.find(name)->as_uint();
    }
    EXPECT_EQ(sum_signed(*buckets->find(name)),
              static_cast<std::int64_t>(run_total))
        << name;
  }

  // The completion stream is on: every admitted completion lands in
  // exactly one window, and the offered counter covers every arrival.
  ASSERT_TRUE(tel->has("throughput"));
  ASSERT_EQ(tel->find("throughput")->size(), 4u);
  ASSERT_EQ(tel->find("sojourn_p99")->size(), 4u);
  EXPECT_EQ(sum_series(*tel->find("throughput")), r.total_ops);
  const JsonValue* ctrs = tel->find("counters");
  ASSERT_NE(ctrs, nullptr);
  EXPECT_EQ(sum_series(*ctrs->find("offered")), r.arrivals + r.shed_ops);
  EXPECT_EQ(sum_series(*ctrs->find("shed_ops")), r.shed_ops);
  const JsonValue* gauges = tel->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_TRUE(gauges->has("admission_queue"));
  EXPECT_TRUE(gauges->has("server_inflight"));
}

// --- zero observer effect ---------------------------------------------------

TEST(Telemetry, EnablingChangesNoSimulatedOutcome) {
  const harness::RunResult off =
      harness::run_counter(small_cfg(), Approach::kHybComb);
  harness::RunCfg cfg = small_cfg();
  cfg.telemetry_window = 10'000;
  const harness::RunResult on =
      harness::run_counter(cfg, Approach::kHybComb);

  EXPECT_EQ(off.total_ops, on.total_ops);
  EXPECT_EQ(off.mops, on.mops);
  EXPECT_EQ(off.lat_mean, on.lat_mean);
  EXPECT_EQ(off.lat_p50, on.lat_p50);
  EXPECT_EQ(off.lat_p99, on.lat_p99);
  EXPECT_EQ(off.serv_stall_per_op, on.serv_stall_per_op);
  for (int b = 0; b < CycleAccount::kNumBuckets; ++b) {
    const auto bucket = static_cast<CycleAccount::Bucket>(b);
    EXPECT_EQ(off.serv_account.bucket(bucket), on.serv_account.bucket(bucket))
        << CycleAccount::bucket_name(bucket);
  }
}

// Chrome-trace event lines (one JSON object per line), trailing commas
// stripped so the last-line difference doesn't leak into comparisons.
std::vector<std::string> event_lines(const sim::Tracer& t) {
  std::ostringstream ss;
  t.write_chrome_json(ss);
  std::vector<std::string> out;
  std::istringstream in(ss.str());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '{') continue;  // header/footer
    if (line.back() == ',') line.pop_back();
    out.push_back(line);
  }
  return out;
}

TEST(Telemetry, TraceGainsOnlyCounterSamples) {
  auto traced = [](sim::Cycle tw) {
    sim::Tracer sink;
    harness::RunCfg cfg = small_cfg();
    cfg.telemetry_window = tw;
    cfg.obs.trace = &sink;
    cfg.obs.label = "mp-server";
    (void)harness::run_counter(cfg, Approach::kMpServer);
    return event_lines(sink);
  };
  const std::vector<std::string> off = traced(0);
  const std::vector<std::string> on = traced(20'000);

  std::vector<std::string> on_sans_counters;
  std::size_t counters = 0;
  for (const std::string& l : on) {
    if (l.find("\"ph\":\"C\"") != std::string::npos) {
      ++counters;
      EXPECT_NE(l.find("\"tel."), std::string::npos) << l;
    } else {
      on_sans_counters.push_back(l);
    }
  }
  // Telemetry off: no counter events at all (golden traces unchanged).
  for (const std::string& l : off) {
    EXPECT_EQ(l.find("\"ph\":\"C\""), std::string::npos) << l;
  }
  // Telemetry on: the counter samples are a pure addition — every other
  // event is byte-identical and in the same order.
  EXPECT_EQ(on_sans_counters, off);
  // One sample per track per window: 11 buckets + rx_words + link_wait +
  // the MP-SERVER inflight gauge, over 5 windows.
  EXPECT_EQ(counters, 5u * (CycleAccount::kNumBuckets + 3));
}

// --- artifact identity across job counts ------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void run_sweep(const std::string& json, const std::string& trace,
               std::uint32_t jobs) {
  const char* argv[] = {const_cast<char*>("sweep")};
  harness::BenchArgs args;
  args.json = json;
  args.trace = trace;
  harness::RunArtifacts art(args, "sweep", 1, const_cast<char**>(argv));
  harness::RunPool pool(art, jobs);
  for (std::uint32_t t : {2u, 3u}) {
    harness::RunCfg cfg = small_cfg();
    cfg.app_threads = t;
    cfg.telemetry_window = 15'000;
    for (Approach a : {Approach::kMpServer, Approach::kHybComb}) {
      pool.submit(std::string(harness::approach_name(a)) + "/t" +
                      std::to_string(t),
                  [cfg, a](const harness::RunObs& obs) {
                    harness::RunCfg c = cfg;
                    c.obs = obs;
                    return harness::run_counter(c, a);
                  });
    }
  }
  pool.drain();
  art.finalize();
}

TEST(Telemetry, ArtifactBytesIdenticalAcrossJobCounts) {
  const std::string j1 = ::testing::TempDir() + "hmps_tel_j1.json";
  const std::string t1 = ::testing::TempDir() + "hmps_tel_j1.trace.json";
  const std::string j4 = ::testing::TempDir() + "hmps_tel_j4.json";
  const std::string t4 = ::testing::TempDir() + "hmps_tel_j4.trace.json";
  run_sweep(j1, t1, 1);
  run_sweep(j4, t4, 4);
  const std::string serial = slurp(j1);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("\"telemetry\""), std::string::npos);
  EXPECT_EQ(serial, slurp(j4));
  const std::string serial_trace = slurp(t1);
  ASSERT_FALSE(serial_trace.empty());
  EXPECT_NE(serial_trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(serial_trace, slurp(t4));
}

// Telemetry stays inert (no block, no events) when the window is zero.
TEST(Telemetry, DisabledRunEmitsNoTelemetryBlock) {
  obs::MetricsRegistry reg;
  harness::RunCfg cfg = small_cfg();
  cfg.obs.metrics = &reg;
  cfg.obs.label = "mp-server";
  (void)harness::run_counter(cfg, Approach::kMpServer);
  const JsonValue& run = reg.root()["runs"].items()[0];
  EXPECT_FALSE(run.has("telemetry"));
  // v2 schema is stamped regardless: the noc block is always present.
  EXPECT_EQ(reg.root()["schema"].as_string(), "hmps-metrics-v2");
  EXPECT_TRUE(run.find("machine")->has("noc"));
}

}  // namespace
}  // namespace hmps

file(REMOVE_RECURSE
  "CMakeFiles/fig4c_cs_length.dir/fig4c_cs_length.cpp.o"
  "CMakeFiles/fig4c_cs_length.dir/fig4c_cs_length.cpp.o.d"
  "fig4c_cs_length"
  "fig4c_cs_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_cs_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

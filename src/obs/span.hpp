// RAII phase spans for synchronization algorithms: mark acquire / combine /
// critical-section / response phases so a Perfetto trace shows *what* a core
// was doing, not just that it was busy.
//
// Algorithms are templated over the execution context; only contexts that
// expose a machine (i.e. SimCtx) carry a tracer, so Span degrades to a
// no-op for any other context (NativeCtx) at compile time. Reading the
// clock and recording events never advances simulated time, so spans have
// zero observer effect on timing.
#pragma once

#include "sim/types.hpp"

namespace hmps::obs {

template <class Ctx>
class Span {
  static constexpr bool kTraced =
      requires(Ctx& c) { c.machine().tracer().enabled(); };

 public:
  /// `name` must have static storage duration (the tracer keeps pointers).
  Span(Ctx& ctx, const char* name) : ctx_(ctx), name_(name) {
    if constexpr (kTraced) start_ = ctx_.now();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// Ends the span early (before scope exit). Idempotent.
  void finish() {
    if constexpr (kTraced) {
      if (done_) return;
      done_ = true;
      ctx_.machine().tracer().event(ctx_.core(), name_, start_,
                                    ctx_.now() - start_);
    }
  }

 private:
  Ctx& ctx_;
  const char* name_;
  sim::Cycle start_ = 0;
  bool done_ = false;
};

}  // namespace hmps::obs

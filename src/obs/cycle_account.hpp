// Per-core cycle accounting: attributes every simulated cycle of a core's
// timeline to exactly one cause bucket.
//
// This is the counter set the paper wishes the TILE-Gx had (Section 5.3:
// "there are no event counters that would provide more fine-grained
// information on the source of stalls"). The simulator knows the cause of
// every wait, so the account is exact: after settle(), the buckets sum to
// the elapsed simulated cycles — an invariant tests assert.
//
// Charging model. A charge covers the half-open interval [start, end) of
// the core's local timeline. The account keeps a watermark of the last
// accounted cycle; a gap between the watermark and `start` is idle time
// (the core had nothing scheduled), and any portion of the interval at or
// before the watermark is clipped (the core was already accounted there —
// this absorbs overlapping charges when several fibers share a core, and
// re-charges that straddle a settle point). Clipping keeps the sum
// invariant unconditional: no charging site can break it.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace hmps::obs {

using sim::Cycle;

class CycleAccount {
 public:
  enum Bucket : std::uint8_t {
    kCompute = 0,     ///< issue/ALU work, local cache hits
    kCoherenceRead,   ///< waiting for remote data (RMR load)
    kCoherenceWrite,  ///< ownership acquisition / write-buffer drain
    kAtomic,          ///< atomic RMW round trip (incl. controller queueing)
    kUdnSendBlock,    ///< UDN send blocked on backpressure
    kUdnRecvWait,     ///< UDN receive on an empty queue
    kUdnAsyncWait,    ///< reaping an async-delegation ticket (wait/wait_all)
    kSpin,            ///< explicit backoff / cpu_relax spinning
    kPreempted,       ///< injected preemption windows (sim/fault.hpp)
    kSvcQueue,        ///< open-loop queueing delay: arrival to dispatch
    kIdle,            ///< nothing scheduled on this core
    kNumBuckets
  };

  static constexpr const char* bucket_name(Bucket b) {
    switch (b) {
      case kCompute: return "compute";
      case kCoherenceRead: return "coherence-read";
      case kCoherenceWrite: return "coherence-write";
      case kAtomic: return "atomic";
      case kUdnSendBlock: return "udn-send-block";
      case kUdnRecvWait: return "udn-recv-wait";
      case kUdnAsyncWait: return "udn-async-wait";
      case kSpin: return "spin";
      case kPreempted: return "preempted";
      case kSvcQueue: return "svc-queue";
      case kIdle: return "idle";
      default: return "?";
    }
  }

  /// Charges [start, end) to `b`. Any gap below `start` becomes idle; any
  /// overlap with already-accounted time is clipped (see file comment).
  void charge(Bucket b, Cycle start, Cycle end) {
    if (start > mark_) {
      b_[kIdle] += start - mark_;
      mark_ = start;
    }
    if (end <= mark_) return;
    b_[b] += end - mark_;
    mark_ = end;
  }

  /// Accounts the tail [mark, now) as idle so total() == now - origin.
  /// Call at window boundaries before reading the buckets.
  void settle(Cycle now) {
    if (now > mark_) {
      b_[kIdle] += now - mark_;
      mark_ = now;
    }
  }

  /// Closes the account at run teardown. Identical idle-fill to settle(),
  /// but also covers a core whose mark never moved (it never received
  /// work): the whole [origin, now) interval becomes idle, keeping
  /// total() == now - origin even when a run ends mid-interval. Kept as a
  /// distinct entry point so teardown sites read as "close the books", and
  /// so the final interval is closed exactly once per run.
  void finalize(Cycle now) { settle(now); }

  /// Moves up to `n` already-charged cycles from `from` to `to`, returning
  /// the amount actually moved (clamped to the source bucket's balance);
  /// total() is invariant. This is the carve-out primitive for derived
  /// causes the charging sites cannot see: the service harness re-labels
  /// the cycles a session core burned waiting on the construction while an
  /// admitted arrival aged in its pending queue as svc-queue
  /// (docs/SERVICE.md) — those cycles are the arrival's queueing delay,
  /// already on the books under the mechanism (udn-recv-wait, spin, ...)
  /// rather than the cause.
  Cycle reclassify(Bucket from, Bucket to, Cycle n) {
    const Cycle m = n < b_[from] ? n : b_[from];
    b_[from] -= m;
    b_[to] += m;
    return m;
  }

  /// Zeroes the buckets and restarts the account at `now`.
  void reset(Cycle now) {
    for (auto& c : b_) c = 0;
    origin_ = mark_ = now;
  }

  Cycle bucket(Bucket b) const { return b_[b]; }

  /// Sum over all buckets; equals mark() - origin() by construction.
  Cycle total() const {
    Cycle t = 0;
    for (const auto c : b_) t += c;
    return t;
  }

  /// Memory-system stall share (what Fig. 4a calls "stalled").
  Cycle stalled() const {
    return b_[kCoherenceRead] + b_[kCoherenceWrite] + b_[kAtomic] +
           b_[kPreempted];
  }

  /// Everything but idle.
  Cycle active() const { return total() - b_[kIdle]; }

  Cycle origin() const { return origin_; }
  Cycle mark() const { return mark_; }

  /// Bucketwise `*this - prev` for windowed measurement (buckets are
  /// monotonic, so a window is the difference of two snapshots).
  CycleAccount diff_since(const CycleAccount& prev) const {
    CycleAccount d;
    for (int i = 0; i < kNumBuckets; ++i) d.b_[i] = b_[i] - prev.b_[i];
    d.origin_ = prev.mark_;
    d.mark_ = mark_;
    return d;
  }

 private:
  Cycle b_[kNumBuckets] = {};
  Cycle origin_ = 0;  ///< where accounting (re)started
  Cycle mark_ = 0;    ///< last accounted cycle
};

}  // namespace hmps::obs

file(REMOVE_RECURSE
  "CMakeFiles/fig3a_counter_throughput.dir/fig3a_counter_throughput.cpp.o"
  "CMakeFiles/fig3a_counter_throughput.dir/fig3a_counter_throughput.cpp.o.d"
  "fig3a_counter_throughput"
  "fig3a_counter_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_counter_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

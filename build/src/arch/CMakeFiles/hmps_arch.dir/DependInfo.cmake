
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/coherence.cpp" "src/arch/CMakeFiles/hmps_arch.dir/coherence.cpp.o" "gcc" "src/arch/CMakeFiles/hmps_arch.dir/coherence.cpp.o.d"
  "/root/repo/src/arch/noc.cpp" "src/arch/CMakeFiles/hmps_arch.dir/noc.cpp.o" "gcc" "src/arch/CMakeFiles/hmps_arch.dir/noc.cpp.o.d"
  "/root/repo/src/arch/udn.cpp" "src/arch/CMakeFiles/hmps_arch.dir/udn.cpp.o" "gcc" "src/arch/CMakeFiles/hmps_arch.dir/udn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hmps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/abl_locks_counter.dir/abl_locks_counter.cpp.o"
  "CMakeFiles/abl_locks_counter.dir/abl_locks_counter.cpp.o.d"
  "abl_locks_counter"
  "abl_locks_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_locks_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

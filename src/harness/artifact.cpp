#include "harness/artifact.hpp"

#include <cstdio>

namespace hmps::harness {

RunArtifacts::RunArtifacts(const BenchArgs& args, const std::string& bench,
                           int argc, char** argv)
    : json_path_(args.json), trace_path_(args.trace) {
  if (!json_path_.empty()) metrics_.stamp(bench, argc, argv);
}

RunObs RunArtifacts::next_run(std::string label) {
  labels_.push_back(std::move(label));
  RunObs o;
  o.label = labels_.back().c_str();
  o.pid = next_pid_++;
  if (!json_path_.empty()) o.metrics = &metrics_;
  if (!trace_path_.empty()) o.trace = &trace_;
  return o;
}

void RunArtifacts::finalize() {
  if (!json_path_.empty()) {
    // Surface trace health in the metrics artifact too, so a consumer of
    // the JSON alone learns about dropped trace events.
    if (!trace_path_.empty()) {
      metrics_.root()["trace"] =
          obs::MetricsRegistry::tracer_json(trace_);
    }
    if (metrics_.write(json_path_)) {
      std::printf("artifact: wrote %s (%zu runs)\n", json_path_.c_str(),
                  metrics_.root()["runs"].size());
    } else {
      std::fprintf(stderr, "artifact: FAILED to write %s\n",
                   json_path_.c_str());
    }
  }
  if (!trace_path_.empty()) {
    trace_.write_chrome_json(trace_path_);
    std::printf("artifact: wrote %s (%zu events, %llu dropped)\n",
                trace_path_.c_str(), trace_.size(),
                static_cast<unsigned long long>(trace_.dropped()));
  }
}

}  // namespace hmps::harness

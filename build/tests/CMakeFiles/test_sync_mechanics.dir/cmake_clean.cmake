file(REMOVE_RECURSE
  "CMakeFiles/test_sync_mechanics.dir/test_sync_mechanics.cpp.o"
  "CMakeFiles/test_sync_mechanics.dir/test_sync_mechanics.cpp.o.d"
  "test_sync_mechanics"
  "test_sync_mechanics.pdb"
  "test_sync_mechanics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_mechanics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Uniform universal-construction surface.
//
// A universal construction (UC) executes arbitrary critical sections on a
// concurrent object in mutual exclusion: uc.apply(ctx, fn, arg) -> ret.
// MpServer, ShmServer, CcSynch and HybComb all provide this; LockUc wraps
// any of the classic locks into the same shape (executing the CS at the
// caller's core — no locality benefit, for the ablation benches).
#pragma once

#include <concepts>
#include <cstdint>

#include "sync/cs.hpp"

namespace hmps::sync {

template <class U, class Ctx>
concept UniversalConstruction = requires(U u, Ctx& ctx, CsFn<Ctx> fn,
                                         std::uint64_t arg) {
  { u.apply(ctx, fn, arg) } -> std::convertible_to<std::uint64_t>;
};

/// Lock-based universal construction: acquire, run the CS locally, release.
template <class Ctx, class Lock>
class LockUc {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  explicit LockUc(void* obj) : obj_(obj) {}

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    check_tid(ctx.tid(), kMaxThreads, "LockUc::apply");
    lock_.lock(ctx);
    const std::uint64_t ret = fn(ctx, obj_, arg);
    lock_.unlock(ctx);
    ++stats_[ctx.tid()].s.ops;
    return ret;
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "LockUc::stats");
    return stats_[t].s;
  }

 private:
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };
  void* obj_;
  Lock lock_;
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::sync

#include "arch/coherence.hpp"

#include <bit>

namespace hmps::arch {

namespace {
constexpr std::uint64_t bit(Tid c) { return std::uint64_t{1} << (c % 64); }
}  // namespace

Cycle CoherenceModel::inval_cost(std::uint64_t sharers, Tid except) {
  const int n = std::popcount(sharers & ~bit(except));
  if (n == 0) return 0;
  ++counters_.invalidations;
  // Invalidations fan out in parallel; cost grows sub-linearly, capped.
  const int charged = n > 8 ? 8 : n;
  return p_.inval_base + p_.inval_per_sharer * static_cast<Cycle>(charged);
}

AccessCost CoherenceModel::read(Tid c, std::uint64_t addr, Cycle now) {
  Line& l = line_at(addr);
  if ((l.state == State::kModified && l.owner == c) ||
      (l.state == State::kShared && (l.sharers & bit(c)))) {
    ++counters_.hits;
    if (prof_) prof_->on_hit(line_of(addr));
    return {p_.l_hit, false};
  }
  ++counters_.rmr_reads;
  const Cycle wait = acquire_line(l, now);
  const std::uint64_t ln = line_of(addr);
  const Tid home = l.home;
  Cycle lat = topo_.wire(c, home) + p_.dir_lookup;
  if (l.state == State::kModified) {
    // Dirty elsewhere: forward to owner, owner supplies data and downgrades.
    lat += p_.fwd_cost + topo_.wire(home, l.owner) + topo_.wire(l.owner, c) +
           p_.xfer;
    l.sharers = bit(l.owner) | bit(c);
    l.owner = sim::kNoTid;
    l.state = State::kShared;
  } else {
    // Clean at home (possibly shared): data comes from the home tile.
    lat += p_.home_mem + topo_.wire(home, c) + p_.xfer;
    l.sharers |= bit(c);
    l.state = State::kShared;
  }
  if (prof_) prof_->on_read(ln, wait + lat);
  return {wait + lat, true};
}

AccessCost CoherenceModel::write(Tid c, std::uint64_t addr, Cycle now) {
  Line& l = line_at(addr);
  if (l.state == State::kModified && l.owner == c) {
    ++counters_.hits;
    if (prof_) prof_->on_hit(line_of(addr));
    return {p_.l_hit, false};
  }
  ++counters_.rmr_writes;
  const Cycle wait = acquire_line(l, now);
  const std::uint64_t ln = line_of(addr);
  const Tid home = l.home;
  Cycle lat = topo_.wire(c, home) + p_.dir_lookup;
  if (l.state == State::kModified) {
    // Recall from the current owner.
    lat += p_.fwd_cost + topo_.wire(home, l.owner) + topo_.wire(l.owner, c) +
           p_.xfer;
  } else {
    lat += inval_cost(l.sharers, c) + p_.home_mem + topo_.wire(home, c) +
           p_.xfer;
  }
  l.state = State::kModified;
  l.owner = c;
  l.sharers = 0;
  if (prof_) prof_->on_write(ln, wait + lat);
  return {wait + lat, true};
}

AccessCost CoherenceModel::atomic(Tid c, std::uint64_t addr, Cycle now,
                                  AtomicKind kind, Cycle* ctrl_wait_out) {
  ++counters_.atomics;
  if (!p_.atomics_at_ctrl) {
    // x86-like: acquire ownership locally, then a locked RMW in-cache.
    AccessCost ac = write(c, addr, now);
    ac.latency += p_.atomic_local_extra;
    if (ctrl_wait_out) *ctrl_wait_out = 0;
    return ac;
  }
  // TILE-Gx-like: the operation is shipped to the line's memory controller.
  // Cached copies must be flushed/invalidated first; afterwards the line's
  // authoritative copy lives at home again.
  if (p_.noc_combining && kind == AtomicKind::kFaa) {
    // Unconditional RMWs are combinable: if an earlier same-word request is
    // in flight past a router on our route, merge into it there — the
    // request never reaches the directory or the controller, and the reply
    // peels off at the merge router on its way back (docs/MODEL.md §11).
    const auto m = combining_.try_combine(c, addr, now);
    if (m.combined) {
      if (ctrl_wait_out) *ctrl_wait_out = 0;
      if (prof_) prof_->on_atomic(line_of(addr), m.done - now);
      return {m.done - now, true};
    }
  }
  Line& l = line_at(addr);
  const Cycle wait = acquire_line(l, now);
  const std::uint32_t ctrl = l.ctrl;

  Cycle recall = 0;
  if (l.state == State::kModified) {
    recall = p_.fwd_cost + p_.xfer;  // writeback of the dirty copy
  } else if (l.state == State::kShared) {
    recall = inval_cost(l.sharers, sim::kNoTid);
  }
  l.state = State::kHome;
  l.owner = sim::kNoTid;
  l.sharers = 0;

  const Cycle op_cost = kind == AtomicKind::kFaa      ? p_.ctrl_op_faa
                        : kind == AtomicKind::kCasFail ? p_.ctrl_op_cas_fail
                                                       : p_.ctrl_op_cas;
  const Cycle to_ctrl = topo_.wire_to_ctrl(c, ctrl);
  const Cycle arrive = now + wait + recall + to_ctrl;
  Cycle& busy = ctrl_busy_until_[ctrl % 8];
  const Cycle start = busy > arrive ? busy : arrive;
  const Cycle ctrl_wait = start - arrive;
  busy = start + op_cost;
  counters_.ctrl_wait_total += ctrl_wait;
  if (ctrl_wait_out) *ctrl_wait_out = ctrl_wait;

  const Cycle done = start + op_cost + to_ctrl;  // response trip back
  if (p_.noc_combining && kind == AtomicKind::kFaa) {
    // This request went all the way to the controller; later same-word
    // requests may merge into it anywhere along its route while its reply
    // is still outbound. The request leaves the source once the line is
    // quiesced (after line wait + recall) and the reply leaves the
    // controller when the op retires.
    combining_.register_root(c, addr, ctrl, now + wait + recall,
                             start + op_cost, done);
  }
  if (prof_) prof_->on_atomic(line_of(addr), done - now);
  return {done - now, true};
}

}  // namespace hmps::arch

// 2D mesh topology with XY (dimension-ordered) routing distances.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "arch/params.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;
};

class MeshTopology {
 public:
  explicit MeshTopology(const MachineParams& p)
      : w_(p.mesh_w),
        h_(p.mesh_h),
        hop_(p.hop),
        router_(p.router),
        chip_w_(p.chip_w()),
        chip_h_(p.chip_h()),
        chip_extra_(p.chips() > 1 ? p.chip_hop_extra : 0) {
    assert(w_ > 0 && h_ > 0);
    // Memory controllers sit at the vertical midpoints of the left and
    // right mesh edges (mirroring the TILE-Gx's edge-attached controllers);
    // extra controllers (if configured) spread along the top edge.
    const std::int32_t midy = static_cast<std::int32_t>(h_) / 2;
    ctrls_.push_back(Coord{0, midy});
    if (p.n_mem_ctrls > 1)
      ctrls_.push_back(Coord{static_cast<std::int32_t>(w_) - 1, midy});
    for (std::uint32_t i = 2; i < p.n_mem_ctrls; ++i)
      ctrls_.push_back(Coord{static_cast<std::int32_t>(i % w_), 0});
    // Tile coordinates, precomputed: wire() runs several times per remote
    // memory access, and the div/mod pair per endpoint is measurable there.
    coords_.reserve(static_cast<std::size_t>(w_) * h_);
    for (std::uint32_t c = 0; c < w_ * h_; ++c) {
      coords_.push_back(Coord{static_cast<std::int32_t>(c % w_),
                              static_cast<std::int32_t>(c / w_)});
    }
  }

  std::uint32_t cores() const { return w_ * h_; }
  std::uint32_t n_ctrls() const {
    return static_cast<std::uint32_t>(ctrls_.size());
  }

  Coord coord(sim::Tid core) const {
    assert(core < cores());
    return coords_[core];
  }

  static std::uint32_t manhattan(Coord a, Coord b) {
    return static_cast<std::uint32_t>(std::abs(a.x - b.x) +
                                      std::abs(a.y - b.y));
  }

  std::uint32_t hops(sim::Tid a, sim::Tid b) const {
    return manhattan(coord(a), coord(b));
  }

  std::uint32_t hops_to_ctrl(sim::Tid core, std::uint32_t ctrl) const {
    return manhattan(coord(core), ctrls_[ctrl % ctrls_.size()]);
  }

  /// Chip-boundary crossings on the XY route between two coordinates.
  /// Dimension-ordered routing walks X then Y, so the crossing count is
  /// exactly the chip-grid Manhattan distance — independent of which
  /// boundary column/row the route threads through.
  std::uint32_t chip_crossings(Coord a, Coord b) const {
    if (chip_extra_ == 0) return 0;
    return static_cast<std::uint32_t>(
        std::abs(a.x / static_cast<std::int32_t>(chip_w_) -
                 b.x / static_cast<std::int32_t>(chip_w_)) +
        std::abs(a.y / static_cast<std::int32_t>(chip_h_) -
                 b.y / static_cast<std::int32_t>(chip_h_)));
  }

  std::uint32_t chip_crossings(sim::Tid a, sim::Tid b) const {
    return chip_crossings(coord(a), coord(b));
  }

  /// One-way message latency between two tiles.
  Cycle wire(sim::Tid a, sim::Tid b) const {
    const Coord ca = coord(a), cb = coord(b);
    return router_ + hop_ * manhattan(ca, cb) +
           chip_extra_ * chip_crossings(ca, cb);
  }

  /// One-way latency from a tile to a memory controller.
  Cycle wire_to_ctrl(sim::Tid core, std::uint32_t ctrl) const {
    const Coord ca = coord(core), cb = ctrls_[ctrl % ctrls_.size()];
    return router_ + hop_ * manhattan(ca, cb) +
           chip_extra_ * chip_crossings(ca, cb);
  }

  /// Mesh coordinate of a memory controller's attach point (the combining
  /// model walks routes toward it router by router).
  Coord ctrl_coord(std::uint32_t ctrl) const {
    return ctrls_[ctrl % ctrls_.size()];
  }

  /// One-way latency between two coordinates (same formula as wire(), for
  /// callers that already hold Coords mid-route).
  Cycle wire_coord(Coord a, Coord b) const {
    return router_ + hop_ * manhattan(a, b) + chip_extra_ * chip_crossings(a, b);
  }

  /// Home tile of a cache line: lines are hash-distributed over all tiles
  /// (TILE-Gx "hash-for-home" distributed directory).
  sim::Tid home_tile(std::uint64_t line) const {
    // Fibonacci hash to decorrelate adjacent lines.
    return static_cast<sim::Tid>(((line * 0x9e3779b97f4a7c15ULL) >> 24) %
                                 cores());
  }

  /// Memory controller owning a line (for atomics and off-chip traffic).
  std::uint32_t home_ctrl(std::uint64_t line) const {
    return static_cast<std::uint32_t>((line * 0x2545f4914f6cdd1dULL) >> 33) %
           n_ctrls();
  }

 private:
  std::uint32_t w_, h_;
  Cycle hop_, router_;
  std::uint32_t chip_w_ = 0, chip_h_ = 0;  ///< tiles per chip per axis
  Cycle chip_extra_ = 0;  ///< per-boundary-crossing latency (0 = one chip)
  std::vector<Coord> ctrls_;
  std::vector<Coord> coords_;  ///< coord(c) for every core, precomputed
};

}  // namespace hmps::arch

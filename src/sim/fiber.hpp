// Cooperative fibers (stackful coroutines) built on POSIX ucontext.
//
// Each simulated hardware thread runs as one fiber; the discrete-event
// scheduler switches between fibers on a single host thread, which is what
// makes the whole simulation deterministic and data-race-free by
// construction.
//
// Lifetime note: a simulation window may end while fibers are blocked
// (e.g. in a message receive). Such fibers are never resumed again and their
// stack frames are reclaimed WITHOUT unwinding — destructors of locals on a
// blocked fiber's stack do not run. Simulation code therefore keeps only
// trivially-destructible state (or state owned outside the fiber) on fiber
// stacks.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace hmps::sim {

class Fiber {
 public:
  enum class State { kReady, kRunning, kBlocked, kFinished };

  /// `fn` is the fiber body; it runs when the fiber is first resumed.
  Fiber(std::function<void()> fn, std::size_t stack_bytes = kDefaultStack);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber() = default;

  /// Transfers control from the calling (host/scheduler) context into the
  /// fiber. Returns when the fiber yields or finishes.
  void resume();

  /// Transfers control from inside the fiber back to whoever resumed it.
  /// Must only be called on the currently running fiber.
  void yield();

  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }

  void set_state(State s) { state_ = s; }

  static constexpr std::size_t kDefaultStack = 256 * 1024;

 private:
  static void trampoline();

  std::function<void()> fn_;
  std::unique_ptr<char[]> stack_;
  ucontext_t ctx_{};
  ucontext_t caller_{};
  State state_ = State::kReady;
  bool started_ = false;
};

}  // namespace hmps::sim

#!/usr/bin/env python3
"""Render a bench CSV (first column = x, remaining columns = series) as an
ASCII chart, so figure shapes can be eyeballed without a plotting stack.

Usage:
    ./build/bench/fig3a_counter_throughput --csv 3a.csv
    scripts/plot_ascii.py 3a.csv [--height 20] [--width 70]

With --stalls the input is a --json run artifact (docs/OBSERVABILITY.md)
instead of a CSV: renders one bar per run showing how the servicing core's
cycles split across the CycleAccount buckets.

    ./build/bench/fig4a_stall_breakdown --json 4a.json
    scripts/plot_ascii.py --stalls 4a.json

With --throughput the input is a --json sweep artifact: each run's
results.mops is plotted against config.app_threads, one series per label
prefix (the text before "/" in the run label). Both artifact modes accept
several files — the runs are concatenated, so artifacts merged from a
parallel sweep (or written by separate bench invocations) plot together.

    ./build/bench/fig3a_counter_throughput --jobs 8 --json 3a.json
    scripts/plot_ascii.py --throughput 3a.json

With --latency the input is a service --json artifact (docs/SERVICE.md):
each run's p99 sojourn is plotted against its offered load, one series per
label prefix. Runs without a "service" block are skipped, so mixed file
sets (open-loop + closed-loop artifacts) still plot.

    ./build/bench/service_counter --jobs 8 --json svc.json
    scripts/plot_ascii.py --latency svc.json
"""
import argparse
import csv
import json
import sys

MARKS = "ox+*#@%&"

# (bucket key in the artifact, bar character) — idle excluded: the bar shows
# how the core's *active* cycles split.
STALL_BUCKETS = [
    ("compute", "."),
    ("coherence-read", "R"),
    ("coherence-write", "W"),
    ("atomic", "A"),
    ("udn-send-block", "S"),
    ("udn-recv-wait", "u"),
    ("udn-async-wait", "a"),
    ("spin", "~"),
    ("preempted", "P"),
    ("svc-queue", "Q"),
]


def load(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    header = rows[0]
    xs, series = [], [[] for _ in header[1:]]
    for row in rows[1:]:
        try:
            xs.append(float(row[0]))
        except ValueError:
            continue
        for i, cell in enumerate(row[1:]):
            try:
                series[i].append(float(cell))
            except ValueError:
                series[i].append(None)
    return header, xs, series


def render(header, xs, series, width, height):
    flat = [v for s in series for v in s if v is not None]
    if not flat or not xs:
        print("no plottable data")
        return
    lo, hi = 0.0, max(flat) * 1.05 or 1.0
    x0, x1 = min(xs), max(xs)
    span_x = (x1 - x0) or 1.0
    grid = [[" "] * width for _ in range(height)]

    for si, s in enumerate(series):
        mark = MARKS[si % len(MARKS)]
        for x, v in zip(xs, s):
            if v is None:
                continue
            col = int((x - x0) / span_x * (width - 1))
            row = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    print(f"y: {lo:.1f} .. {hi:.1f}")
    for line in grid:
        print("  |" + "".join(line))
    print("  +" + "-" * width)
    print(f"   x: {x0:g} .. {x1:g}   ({header[0]})")
    for si, name in enumerate(header[1:]):
        print(f"   {MARKS[si % len(MARKS)]} = {name}")


def load_runs(paths):
    """Concatenates the runs of one or more hmps-metrics-v1 artifacts, in
    the given file order (each artifact's own run order is its submission
    order, so merged parallel sweeps read exactly like serial ones)."""
    runs, benches = [], []
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        runs.extend(doc.get("runs", []))
        if doc.get("bench"):
            benches.append(doc["bench"])
    return runs, "+".join(dict.fromkeys(benches)) or "?"


def render_stalls(paths, width):
    runs, bench = load_runs(paths)
    runs = [r for r in runs if r.get("cycle_accounts")]
    if not runs:
        print("no runs with cycle accounts in artifact")
        return
    labw = max(len(r.get("label", "?")) for r in runs)
    print(f"stall breakdown at the servicing core — {bench}")
    for r in runs:
        acc = r["cycle_accounts"][0]  # core 0 = the servicing core
        active = sum(acc.get(k, 0) for k, _ in STALL_BUCKETS)
        bar = ""
        for key, mark in STALL_BUCKETS:
            bar += mark * int(round(acc.get(key, 0) / active * width) if active else 0)
        bar = bar[:width].ljust(width)
        stalled = sum(
            acc.get(k, 0)
            for k in ("coherence-read", "coherence-write", "atomic", "preempted")
        )
        share = stalled / active if active else 0.0
        print(f"  {r.get('label', '?'):<{labw}} |{bar}| {share:5.1%} stalled")
    legend = "  ".join(f"{mark}={key}" for key, mark in STALL_BUCKETS)
    print(f"   {legend}")


def render_throughput(paths, width, height):
    runs, bench = load_runs(paths)
    points = {}  # series name -> {threads: mops}
    for r in runs:
        mops = r.get("results", {}).get("mops")
        threads = r.get("config", {}).get("app_threads")
        if mops is None or threads is None:
            continue
        name = r.get("label", "?").split("/")[0]
        points.setdefault(name, {})[threads] = mops
    if not points:
        print("no runs with results.mops in artifact")
        return
    xs = sorted({t for s in points.values() for t in s})
    header = ["threads"] + list(points)
    series = [[points[name].get(t) for t in xs] for name in points]
    print(f"throughput (Mops/s) vs application threads — {bench}")
    render(header, xs, series, width, height)


def render_latency(paths, width, height):
    """Throughput-vs-tail-latency curves from open-loop service artifacts
    (docs/SERVICE.md): each run's p99 sojourn is plotted against its offered
    load, one series per label prefix. Runs without a "service" block (e.g.
    closed-loop sweeps merged into the same file set) are skipped, so mixed
    artifacts remain plottable."""
    runs, bench = load_runs(paths)
    points = {}  # series name -> {offered: p99}
    for r in runs:
        svc = r.get("service")
        if not svc:
            continue
        offered = svc.get("offered_mops")
        p99 = svc.get("sojourn", {}).get("p99")
        if offered is None or p99 is None:
            continue
        name = r.get("label", "?").split("/")[0]
        points.setdefault(name, {})[offered] = p99
    if not points:
        print("no runs with a service block in artifact")
        return
    xs = sorted({o for s in points.values() for o in s})
    header = ["offered Mops/s"] + list(points)
    series = [[points[name].get(o) for o in xs] for name in points]
    print(f"p99 sojourn (cycles) vs offered load — {bench}")
    render(header, xs, series, width, height)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument(
        "input",
        nargs="+",
        help="bench CSV, or --json artifact(s) with --stalls/--throughput",
    )
    ap.add_argument("--width", type=int, default=70)
    ap.add_argument("--height", type=int, default=20)
    ap.add_argument(
        "--stalls",
        action="store_true",
        help="render the per-run cycle-account breakdown from a --json artifact",
    )
    ap.add_argument(
        "--throughput",
        action="store_true",
        help="render results.mops vs config.app_threads from a --json artifact",
    )
    ap.add_argument(
        "--latency",
        action="store_true",
        help="render p99 sojourn vs offered load from service --json artifacts",
    )
    args = ap.parse_args()
    if args.stalls:
        render_stalls(args.input, args.width)
        return 0
    if args.throughput:
        render_throughput(args.input, args.width, args.height)
        return 0
    if args.latency:
        render_latency(args.input, args.width, args.height)
        return 0
    header, xs, series = load(args.input[0])
    render(header, xs, series, args.width, args.height)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Render a bench CSV (first column = x, remaining columns = series) as an
ASCII chart, so figure shapes can be eyeballed without a plotting stack.

Usage:
    ./build/bench/fig3a_counter_throughput --csv 3a.csv
    scripts/plot_ascii.py 3a.csv [--height 20] [--width 70]

With --stalls the input is a --json run artifact (docs/OBSERVABILITY.md)
instead of a CSV: renders one bar per run showing how the servicing core's
cycles split across the CycleAccount buckets.

    ./build/bench/fig4a_stall_breakdown --json 4a.json
    scripts/plot_ascii.py --stalls 4a.json

With --throughput the input is a --json sweep artifact: each run's
results.mops is plotted against config.app_threads, one series per label
prefix (the text before "/" in the run label). Both artifact modes accept
several files — the runs are concatenated, so artifacts merged from a
parallel sweep (or written by separate bench invocations) plot together.

    ./build/bench/fig3a_counter_throughput --jobs 8 --json 3a.json
    scripts/plot_ascii.py --throughput 3a.json

With --latency the input is a service --json artifact (docs/SERVICE.md):
each run's p99 sojourn is plotted against its offered load, one series per
label prefix. Runs without a "service" block are skipped, so mixed file
sets (open-loop + closed-loop artifacts) still plot.

    ./build/bench/service_counter --jobs 8 --json svc.json
    scripts/plot_ascii.py --latency svc.json

With --timeline the input is a --json artifact from a run with
--telemetry-window N (hmps-metrics-v2): for every run with a telemetry
block, the per-window stall share, throughput and p99 sojourn are plotted
against simulated time, each series normalized to its own peak (shown in
the legend) so bursts and backlog drain line up on one chart.

    ./build/bench/service_counter --telemetry-window 50000 --json svc.json
    scripts/plot_ascii.py --timeline svc.json

With --heatmap the same artifact's telemetry.link_grid is rendered as a
mesh-utilization grid (two characters per router, ramp " .:-=+*#%@"),
plus the hottest directed links. Links carry data only when the run
modeled link contention (--noc); readable up to 16x16 meshes.

    ./build/bench/service_counter --telemetry-window 50000 --noc \\
        --mesh 16x16 --json svc.json
    scripts/plot_ascii.py --heatmap svc.json
"""
import argparse
import csv
import json
import sys

MARKS = "ox+*#@%&"

# (bucket key in the artifact, bar character) — idle excluded: the bar shows
# how the core's *active* cycles split.
STALL_BUCKETS = [
    ("compute", "."),
    ("coherence-read", "R"),
    ("coherence-write", "W"),
    ("atomic", "A"),
    ("udn-send-block", "S"),
    ("udn-recv-wait", "u"),
    ("udn-async-wait", "a"),
    ("spin", "~"),
    ("preempted", "P"),
    ("svc-queue", "Q"),
]


def load(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    header = rows[0]
    xs, series = [], [[] for _ in header[1:]]
    for row in rows[1:]:
        try:
            xs.append(float(row[0]))
        except ValueError:
            continue
        for i, cell in enumerate(row[1:]):
            try:
                series[i].append(float(cell))
            except ValueError:
                series[i].append(None)
    return header, xs, series


def render(header, xs, series, width, height):
    flat = [v for s in series for v in s if v is not None]
    if not flat or not xs:
        print("no plottable data")
        return
    lo, hi = 0.0, max(flat) * 1.05 or 1.0
    x0, x1 = min(xs), max(xs)
    span_x = (x1 - x0) or 1.0
    grid = [[" "] * width for _ in range(height)]

    for si, s in enumerate(series):
        mark = MARKS[si % len(MARKS)]
        for x, v in zip(xs, s):
            if v is None:
                continue
            col = int((x - x0) / span_x * (width - 1))
            row = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    print(f"y: {lo:.1f} .. {hi:.1f}")
    for line in grid:
        print("  |" + "".join(line))
    print("  +" + "-" * width)
    print(f"   x: {x0:g} .. {x1:g}   ({header[0]})")
    for si, name in enumerate(header[1:]):
        print(f"   {MARKS[si % len(MARKS)]} = {name}")


def load_runs(paths):
    """Concatenates the runs of one or more hmps-metrics-v* artifacts
    (v1 and v2 read identically here), in the given file order (each
    artifact's own run order is its submission order, so merged parallel
    sweeps read exactly like serial ones)."""
    runs, benches = [], []
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        runs.extend(doc.get("runs", []))
        if doc.get("bench"):
            benches.append(doc["bench"])
    return runs, "+".join(dict.fromkeys(benches)) or "?"


def render_stalls(paths, width):
    runs, bench = load_runs(paths)
    runs = [r for r in runs if r.get("cycle_accounts")]
    if not runs:
        print("no runs with cycle accounts in artifact")
        return
    labw = max(len(r.get("label", "?")) for r in runs)
    print(f"stall breakdown at the servicing core — {bench}")
    for r in runs:
        acc = r["cycle_accounts"][0]  # core 0 = the servicing core
        active = sum(acc.get(k, 0) for k, _ in STALL_BUCKETS)
        bar = ""
        for key, mark in STALL_BUCKETS:
            bar += mark * int(round(acc.get(key, 0) / active * width) if active else 0)
        bar = bar[:width].ljust(width)
        stalled = sum(
            acc.get(k, 0)
            for k in ("coherence-read", "coherence-write", "atomic", "preempted")
        )
        share = stalled / active if active else 0.0
        print(f"  {r.get('label', '?'):<{labw}} |{bar}| {share:5.1%} stalled")
    legend = "  ".join(f"{mark}={key}" for key, mark in STALL_BUCKETS)
    print(f"   {legend}")


def render_throughput(paths, width, height):
    runs, bench = load_runs(paths)
    points = {}  # series name -> {threads: mops}
    for r in runs:
        mops = r.get("results", {}).get("mops")
        threads = r.get("config", {}).get("app_threads")
        if mops is None or threads is None:
            continue
        name = r.get("label", "?").split("/")[0]
        points.setdefault(name, {})[threads] = mops
    if not points:
        print("no runs with results.mops in artifact")
        return
    xs = sorted({t for s in points.values() for t in s})
    header = ["threads"] + list(points)
    series = [[points[name].get(t) for t in xs] for name in points]
    print(f"throughput (Mops/s) vs application threads — {bench}")
    render(header, xs, series, width, height)


def render_latency(paths, width, height):
    """Throughput-vs-tail-latency curves from open-loop service artifacts
    (docs/SERVICE.md): each run's p99 sojourn is plotted against its offered
    load, one series per label prefix. Runs without a "service" block (e.g.
    closed-loop sweeps merged into the same file set) are skipped, so mixed
    artifacts remain plottable."""
    runs, bench = load_runs(paths)
    points = {}  # series name -> {offered: p99}
    for r in runs:
        svc = r.get("service")
        if not svc:
            continue
        offered = svc.get("offered_mops")
        p99 = svc.get("sojourn", {}).get("p99")
        if offered is None or p99 is None:
            continue
        name = r.get("label", "?").split("/")[0]
        points.setdefault(name, {})[offered] = p99
    if not points:
        print("no runs with a service block in artifact")
        return
    xs = sorted({o for s in points.values() for o in s})
    header = ["offered Mops/s"] + list(points)
    series = [[points[name].get(o) for o in xs] for name in points]
    print(f"p99 sojourn (cycles) vs offered load — {bench}")
    render(header, xs, series, width, height)


# Memory-system stall buckets (CycleAccount::stalled()).
STALLED_KEYS = ("coherence-read", "coherence-write", "atomic", "preempted")

# Heatmap character ramp, blank (idle) to dense (peak utilization).
RAMP = " .:-=+*#%@"


def render_timeline(paths, width, height):
    """Per-window stall share / throughput / p99 vs simulated time from the
    telemetry block of an hmps-metrics-v2 artifact. Each series is
    normalized to its own peak (absolute peaks go in the legend) so
    differently-scaled quantities share one chart."""
    runs, bench = load_runs(paths)
    shown = 0
    for r in runs:
        tel = r.get("telemetry")
        if not tel or not tel.get("ends"):
            continue
        ends = tel["ends"]
        buckets = tel.get("buckets", {})
        n = len(ends)
        stalled = [
            sum(buckets.get(k, [0] * n)[i] for k in STALLED_KEYS)
            for i in range(n)
        ]
        total = [
            sum(vals[i] for vals in buckets.values()) for i in range(n)
        ] if buckets else [0] * n
        # Bucket deltas are signed (reclassification across a window
        # boundary can go negative); clamp the share into [0, 1].
        shares = [min(1.0, max(0.0, s / t)) if t > 0 else 0.0
                  for s, t in zip(stalled, total)]
        series_defs = [("stall share", shares)]
        if tel.get("throughput"):
            series_defs.append(("throughput/window", tel["throughput"]))
        if tel.get("sojourn_p99"):
            series_defs.append(("p99 sojourn", tel["sojourn_p99"]))
        names, norm = [], []
        for name, vals in series_defs:
            peak = max(vals) if vals else 0
            norm.append([v / peak if peak else 0.0 for v in vals])
            names.append(f"{name} (peak {peak:g})")
        print(f"timeline — {r.get('label', '?')} ({bench}), "
              f"window {tel.get('window', '?')} cycles")
        render(["cycle"] + names, ends, norm, width, height)
        shown += 1
    if not shown:
        print("no runs with a telemetry block in artifact "
              "(rerun the bench with --telemetry-window N)")


def render_heatmap(paths, width):
    """Mesh link-utilization grid from telemetry.link_grid: one cell per
    router (two characters wide), shaded by the mean hold share of its four
    outgoing links, normalized to the hottest router. Per-link data exists
    only when the run modeled link contention (--noc)."""
    del width  # grid width is the mesh shape
    runs, bench = load_runs(paths)
    shown = 0
    dirs = "EWNS"
    for r in runs:
        grid = (r.get("telemetry") or {}).get("link_grid")
        if not grid or not grid.get("busy"):
            continue
        w, h = grid["mesh_w"], grid["mesh_h"]
        elapsed = grid.get("elapsed", 0)
        busy = grid["busy"]
        wait = grid.get("wait", [0] * len(busy))
        util = []
        for y in range(h):
            row = []
            for x in range(w):
                base = (y * w + x) * 4
                tot = sum(busy[base:base + 4])
                row.append(tot / (4.0 * elapsed) if elapsed else 0.0)
            util.append(row)
        peak = max(v for row in util for v in row)
        print(f"NoC link-utilization heatmap — {r.get('label', '?')} "
              f"({bench}), {w}x{h} mesh, peak router load {peak:.1%}")
        if peak == 0:
            print("  (all links idle — rerun the bench with --noc to model "
                  "link contention)")
        for row in util:
            cells = "".join(
                RAMP[int(v / peak * (len(RAMP) - 1)) if peak else 0] * 2
                for v in row
            )
            print("  |" + cells + "|")
        hot = sorted(
            range(len(busy)), key=lambda i: busy[i] + wait[i], reverse=True
        )[:5]
        for i in hot:
            if busy[i] + wait[i] == 0:
                break
            x, y, d = (i // 4) % w, i // (4 * w), dirs[i % 4]
            print(f"   hot link ({x},{y})->{d}: busy {busy[i]} "
                  f"wait {wait[i]} cycles")
        shown += 1
    if not shown:
        print("no runs with telemetry.link_grid in artifact "
              "(rerun the bench with --telemetry-window N)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument(
        "input",
        nargs="+",
        help="bench CSV, or --json artifact(s) with --stalls/--throughput",
    )
    ap.add_argument("--width", type=int, default=70)
    ap.add_argument("--height", type=int, default=20)
    ap.add_argument(
        "--stalls",
        action="store_true",
        help="render the per-run cycle-account breakdown from a --json artifact",
    )
    ap.add_argument(
        "--throughput",
        action="store_true",
        help="render results.mops vs config.app_threads from a --json artifact",
    )
    ap.add_argument(
        "--latency",
        action="store_true",
        help="render p99 sojourn vs offered load from service --json artifacts",
    )
    ap.add_argument(
        "--timeline",
        action="store_true",
        help="render per-window stall/throughput/p99 vs time from the "
        "telemetry block of a --telemetry-window artifact",
    )
    ap.add_argument(
        "--heatmap",
        action="store_true",
        help="render the mesh link-utilization grid from telemetry.link_grid",
    )
    args = ap.parse_args()
    if args.stalls:
        render_stalls(args.input, args.width)
        return 0
    if args.throughput:
        render_throughput(args.input, args.width, args.height)
        return 0
    if args.latency:
        render_latency(args.input, args.width, args.height)
        return 0
    if args.timeline:
        render_timeline(args.input, args.width, args.height)
        return 0
    if args.heatmap:
        render_heatmap(args.input, args.width)
        return 0
    header, xs, series = load(args.input[0])
    render(header, xs, series, args.width, args.height)
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Optional link-level NoC contention model for the message network.
//
// The default UDN timing charges wire latency plus destination-port
// serialization, which captures the paper's effects. This model adds
// per-link occupancy along the XY (dimension-ordered) route — a wormhole
// approximation where each hop's link is reserved for the message's flits —
// so heavy many-to-one traffic also queues inside the mesh, not just at the
// receiver. Enable with MachineParams::model_link_contention.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "sim/fault.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

using sim::Cycle;
using sim::Tid;

class NocModel {
 public:
  NocModel(const MachineParams& p, const MeshTopology& topo);

  /// Arrival time at `dst` of an `words`-word message injected at `src` at
  /// `inject_time`, after queueing on every link of the XY route. Routes are
  /// resolved through a precomputed hop table (built lazily on first use):
  /// the per-hop link indices of every (src, dst) pair are derived once, so
  /// the per-message loop touches only the link reservation array. The
  /// link_wait arithmetic is identical to walking the route coordinate by
  /// coordinate.
  Cycle route(Tid src, Tid dst, Cycle inject_time, std::uint32_t words);

  /// Attaches the machine's fault injector; when active, every hop may take
  /// extra jitter cycles (sim/fault.hpp). Neutral when null or inactive.
  void attach_faults(sim::FaultInjector* f) { faults_ = f; }

  struct Counters {
    std::uint64_t messages = 0;
    std::uint64_t hops = 0;
    Cycle link_wait = 0;  ///< total cycles spent queued on busy links
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 private:
  // Directions out of each router.
  enum Dir : std::uint32_t { kEast, kWest, kNorth, kSouth, kDirs };

  std::size_t link_index(std::uint32_t x, std::uint32_t y, Dir d) const {
    return (static_cast<std::size_t>(y) * w_ + x) * kDirs + d;
  }

  /// Fills route_offs_ / route_links_ with the XY route of every ordered
  /// (src, dst) pair. Meshes are small (fuzzing caps at 8x8), so the full
  /// table is a few hundred KiB at worst.
  void build_route_table();

  const MachineParams& p_;
  const MeshTopology& topo_;
  sim::FaultInjector* faults_ = nullptr;
  std::uint32_t w_, h_;
  std::vector<Cycle> busy_;  ///< per-link reservation horizon
  /// Concatenated per-pair link-index lists; pair (src, dst) occupies
  /// route_links_[route_offs_[src * cores + dst] ..
  ///              route_offs_[src * cores + dst + 1]).
  std::vector<std::uint32_t> route_links_;
  std::vector<std::uint32_t> route_offs_;
  Counters counters_;
};

}  // namespace hmps::arch

// Engine micro-benchmark: raw throughput of the simulation engine itself
// (no synchronization algorithms on top). Four workloads:
//
//   event_churn   — events executed/sec through the event queue, using
//                   callbacks with UDN-delivery-sized captures (24 bytes)
//   fiber_churn   — fiber resume/yield round trips/sec through the scheduler
//   udn_pingpong  — two-core message round trips/sec (send+receive both ways)
//   udn_flood     — many-to-one messages/sec with link contention modelled
//
// Usage: engine_micro [--smoke] [--json FILE]
//   --smoke  run 1% of the default iteration counts (CI smoke test)
//   --json   append machine-readable results to FILE
//
// Rates are host wall-clock, so absolute numbers vary by machine; the point
// is comparing the same workload across engine versions (scripts/
// bench_engine.sh records them in BENCH_engine.json).
//
// Compiling this file against the pre-overhaul engine (for baselines)
// requires -DENGINE_MICRO_SEED, which stubs out the self-counters that the
// seed engine does not have.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "arch/udn.hpp"
#include "sim/scheduler.hpp"

using namespace hmps;
using sim::Cycle;
using sim::Tid;

namespace {

struct Result {
  const char* name;
  const char* unit;
  std::uint64_t ops;
  double seconds;
  double rate() const { return seconds > 0 ? ops / seconds : 0.0; }
};

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// ---- event_churn -----------------------------------------------------------
// Self-rescheduling events whose captures are sized like the engine's real
// hot-path callbacks: a UDN delivery captures {this, dst, queue, n} = 24
// bytes, which is what the inline event storage exists for.
struct ChurnCtx {
  sim::Scheduler* s;
  std::uint64_t remaining;
  std::uint64_t sink;
};

void schedule_churn(ChurnCtx* c, std::uint64_t key, std::uint64_t salt) {
  c->s->at(c->s->now() + 1 + key % 7, [c, key, salt] {  // 24-byte capture
    c->sink += key ^ salt;
    if (c->remaining == 0) return;  // budget shared by all chains
    if (--c->remaining > 0)
      schedule_churn(c, key * 2654435761ull + 1, salt + 1);
  });
}

Result event_churn(std::uint64_t events) {
  sim::Scheduler s;
  ChurnCtx ctx{&s, events, 0};
  const double t0 = now_sec();
  // 64 concurrent self-rescheduling chains keep the heap realistically deep.
  for (std::uint64_t i = 0; i < 64 && i < events; ++i)
    schedule_churn(&ctx, 0x9e3779b97f4a7c15ull * (i + 1), i);
  s.run();
  const double dt = now_sec() - t0;
  if (ctx.sink == 42) std::printf("");  // defeat dead-code elimination
  return {"event_churn", "events/s", events, dt};
}

// ---- fiber_churn -----------------------------------------------------------
Result fiber_churn(std::uint64_t resumes) {
  sim::Scheduler s;
  const std::uint64_t kFibers = 32;
  const std::uint64_t per = resumes / kFibers;
  for (std::uint64_t f = 0; f < kFibers; ++f) {
    s.spawn([&s, per] {
      for (std::uint64_t i = 0; i < per; ++i) s.wait_for(1);
    });
  }
  const double t0 = now_sec();
  s.run();
  const double dt = now_sec() - t0;
  return {"fiber_churn", "resumes/s", per * kFibers, dt};
}

// ---- udn_pingpong ----------------------------------------------------------
Result udn_pingpong(std::uint64_t roundtrips) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  arch::MeshTopology topo(p);
  sim::Scheduler s;
  arch::UdnModel udn(p, topo, s);
  s.spawn([&] {
    std::uint64_t w[3] = {1, 2, 3};
    for (std::uint64_t r = 0; r < roundtrips; ++r) {
      udn.send(0, 5, 0, w, 3);
      udn.receive(0, 1, w, 3);
    }
    s.stop();
  });
  s.spawn([&] {
    std::uint64_t w[3];
    for (;;) {
      udn.receive(5, 0, w, 3);
      udn.send(5, 0, 1, w, 3);
    }
  });
  const double t0 = now_sec();
  s.run();
  const double dt = now_sec() - t0;
  return {"udn_pingpong", "roundtrips/s", roundtrips, dt};
}

// ---- udn_flood -------------------------------------------------------------
Result udn_flood(std::uint64_t messages) {
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  p.model_link_contention = true;
  arch::MeshTopology topo(p);
  sim::Scheduler s;
  arch::UdnModel udn(p, topo, s);
  const std::uint32_t C = topo.cores();
  const std::uint64_t per = messages / (C - 1);
  for (Tid i = 1; i < C; ++i) {
    s.spawn([&, i, per] {
      std::uint64_t w[3] = {i, 0, 0};
      for (std::uint64_t m = 0; m < per; ++m) {
        w[1] = m;
        udn.send(i, 0, 0, w, 3);
      }
    });
  }
  s.spawn([&] {
    std::uint64_t w[3];
    for (std::uint64_t m = 0; m < per * (C - 1); ++m) udn.receive(0, 0, w, 3);
  });
  const double t0 = now_sec();
  s.run();
  const double dt = now_sec() - t0;
  return {"udn_flood", "msgs/s", per * (C - 1), dt};
}

// ---- engine self-counters --------------------------------------------------
// Re-runs a short mixed workload on a fresh scheduler purely to report the
// allocation-escape counters (the seed engine has none — stubbed under
// ENGINE_MICRO_SEED so the same source builds against it for baselines).
struct SelfCounters {
  std::uint64_t scheduled = 0, executed = 0;
  std::uint64_t spill_allocs = 0, heap_grows = 0, peak_depth = 0;
  std::uint64_t stack_pool_hits = 0;
  bool available = false;
};

SelfCounters probe_counters() {
  SelfCounters out;
#ifndef ENGINE_MICRO_SEED
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  arch::MeshTopology topo(p);
  sim::Scheduler s;
  // Pre-sized the way arch::Machine sizes its scheduler: the steady state
  // must then never grow the event heap (asserted below via heap_grows).
  s.reserve_events(static_cast<std::size_t>(topo.cores()) * 8 + 64,
                   topo.cores() + 8);
  arch::UdnModel udn(p, topo, s);
  s.spawn([&] {
    std::uint64_t w[3] = {7, 8, 9};
    for (int r = 0; r < 2000; ++r) {
      udn.send(0, 5, 0, w, 3);
      udn.receive(0, 1, w, 3);
    }
    s.stop();
  });
  s.spawn([&] {
    std::uint64_t w[3];
    for (;;) {
      udn.receive(5, 0, w, 3);
      udn.send(5, 0, 1, w, 3);
    }
  });
  s.run();
  const auto& c = s.engine_counters();
  out.scheduled = c.scheduled;
  out.executed = c.executed;
  out.spill_allocs = c.spill_allocs;
  out.heap_grows = c.heap_grows;
  out.peak_depth = c.peak_depth;
  out.stack_pool_hits = sim::Fiber::stack_pool_hits();
  out.available = true;
#endif
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json FILE]\n", argv[0]);
      return 2;
    }
  }
  const std::uint64_t scale = smoke ? 100 : 1;

  std::vector<Result> results;
  results.push_back(event_churn(4'000'000 / scale));
  results.push_back(fiber_churn(2'000'000 / scale));
  results.push_back(udn_pingpong(400'000 / scale));
  results.push_back(udn_flood(700'000 / scale));

  for (const Result& r : results) {
    std::printf("%-14s %12llu ops  %8.3f s  %14.0f %s\n", r.name,
                (unsigned long long)r.ops, r.seconds, r.rate(), r.unit);
  }

  const SelfCounters c = probe_counters();
  if (c.available) {
    std::printf(
        "engine_counters: scheduled=%llu executed=%llu spill_allocs=%llu "
        "heap_grows=%llu peak_depth=%llu stack_pool_hits=%llu\n",
        (unsigned long long)c.scheduled, (unsigned long long)c.executed,
        (unsigned long long)c.spill_allocs, (unsigned long long)c.heap_grows,
        (unsigned long long)c.peak_depth,
        (unsigned long long)c.stack_pool_hits);
    if (c.spill_allocs != 0) {
      std::fprintf(stderr, "FAIL: hot-path callbacks spilled to the heap\n");
      return 1;
    }
    if (c.heap_grows != 0) {
      std::fprintf(stderr,
                   "FAIL: pre-sized event heap grew %llu times in steady "
                   "state\n",
                   (unsigned long long)c.heap_grows);
      return 1;
    }
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::perror("fopen --json");
      return 1;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"ops\": %llu, \"seconds\": %.6f, "
                   "\"rate\": %.1f, \"unit\": \"%s\"}%s\n",
                   r.name, (unsigned long long)r.ops, r.seconds, r.rate(),
                   r.unit, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"engine_counters\": ");
    if (c.available) {
      std::fprintf(f,
                   "{\"scheduled\": %llu, \"executed\": %llu, "
                   "\"spill_allocs\": %llu, \"heap_grows\": %llu, "
                   "\"peak_depth\": %llu, \"stack_pool_hits\": %llu}\n",
                   (unsigned long long)c.scheduled,
                   (unsigned long long)c.executed,
                   (unsigned long long)c.spill_allocs,
                   (unsigned long long)c.heap_grows,
                   (unsigned long long)c.peak_depth,
                   (unsigned long long)c.stack_pool_hits);
    } else {
      std::fprintf(f, "null\n");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return 0;
}

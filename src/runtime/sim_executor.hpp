// SimExecutor: owns a Machine plus one SimCtx/fiber per simulated thread
// and provides warmup/measurement-window control for benchmarks.
//
// Thread bodies are infinite loops (they run "an application"); a window
// ends by simply stopping the event loop at a horizon and snapshotting
// counters, so fibers are never unwound (see fiber.hpp lifetime note).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "arch/machine.hpp"
#include "runtime/sim_context.hpp"

namespace hmps::rt {

class SimExecutor {
 public:
  using ThreadFn = std::function<void(SimCtx&)>;

  explicit SimExecutor(arch::MachineParams params, std::uint64_t seed = 1)
      : m_(std::make_unique<arch::Machine>(std::move(params))), seed_(seed) {}

  arch::Machine& machine() { return *m_; }
  sim::Scheduler& sched() { return m_->sched(); }
  std::uint32_t nthreads() const {
    return static_cast<std::uint32_t>(bodies_.size());
  }

  /// Registers a simulated thread; thread i is pinned to core i % cores
  /// (demux queue i / cores). Must be called before start().
  Tid add_thread(ThreadFn fn) {
    bodies_.push_back(std::move(fn));
    return static_cast<Tid>(bodies_.size() - 1);
  }

  /// Spawns all registered threads as fibers. Thread i starts at cycle i
  /// (slight skew avoids artificial lockstep). Default placement pins
  /// thread i to core i % cores, demux queue i / cores (the Section 6
  /// multiplexing); threads may migrate() afterwards.
  void start() {
    const auto n = static_cast<std::uint32_t>(bodies_.size());
    ctxs_.reserve(n);
    placements_.resize(n);
    for (Tid t = 0; t < n; ++t) {
      placements_[t] = Placement{t % m_->cores(), t / m_->cores()};
    }
    for (Tid t = 0; t < n; ++t) {
      ctxs_.push_back(std::make_unique<SimCtx>(
          *m_, t, n, &placements_,
          seed_ * 0x9e3779b97f4a7c15ULL + t));
    }
    for (Tid t = 0; t < n; ++t) {
      SimCtx* ctx = ctxs_[t].get();
      ThreadFn fn = bodies_[t];
      m_->sched().spawn([fn = std::move(fn), ctx] { fn(*ctx); }, /*start=*/t);
    }
    started_ = true;
  }

  /// Runs the simulation up to the given absolute cycle.
  void run_until(sim::Cycle t) {
    if (!started_) start();
    m_->sched().run(t);
  }

  /// Runs `warmup` cycles, zeroes the per-window counters, then runs
  /// `window` more cycles. Returns the measured window length.
  sim::Cycle run_window(sim::Cycle warmup, sim::Cycle window) {
    run_until(m_->sched().now() + warmup);
    m_->reset_window_counters();
    const sim::Cycle t0 = m_->sched().now();
    run_until(t0 + window);
    return m_->sched().now() - t0;
  }

  SimCtx& ctx(Tid t) { return *ctxs_[t]; }

 private:
  std::unique_ptr<arch::Machine> m_;
  std::uint64_t seed_;
  std::vector<ThreadFn> bodies_;
  std::vector<Placement> placements_;
  std::vector<std::unique_ptr<SimCtx>> ctxs_;
  bool started_ = false;
};

}  // namespace hmps::rt

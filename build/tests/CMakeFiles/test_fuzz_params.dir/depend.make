# Empty dependencies file for test_fuzz_params.
# This may be replaced when dependencies are built.

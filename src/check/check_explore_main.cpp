// check_explore: schedule-exploration driver (docs/TESTING.md).
//
//   check_explore --budget 30s                    # fuzz all constructions
//   check_explore --schedules 500 --seed 7        # fixed schedule count
//   check_explore --construction hybcomb --object counter
//   check_explore --selftest --budget 60s         # seeded-bug end-to-end
//   check_explore --replay repro.json             # re-run an hmps-repro-v1
//
// Exit codes: 0 = clean (or replay/selftest passed), 1 = violation found
// (or replay/selftest mismatch), 2 = usage / I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/explore.hpp"
#include "check/repro.hpp"
#include "harness/run_pool.hpp"

namespace {

using namespace hmps;

void usage() {
  std::fprintf(
      stderr,
      "usage: check_explore [options]\n"
      "  --budget S[s]         wall-clock budget in seconds (default 30)\n"
      "  --schedules N         stop after N schedules (0 = budget-bound)\n"
      "  --seed N              exploration seed (default 1)\n"
      "  --construction LIST   comma-separated subset (default: all):\n"
      "                        mp_server,hybcomb,shm_server,ccsynch,\n"
      "                        dsm_synch,flat_combining,hsynch,oyama,\n"
      "                        mcs_lock,mp_server_hub,sharded\n"
      "  --object LIST         counter,queue,stack,lcrq,elim_stack\n"
      "  --fuzz-machines       also draw random machine parameters\n"
      "  --inject-bug N        seed the test-only HybComb defect (drop every\n"
      "                        Nth combined request)\n"
      "  --jobs N              scenario-execution workers (default: \n"
      "                        $HMPS_JOBS, then hardware concurrency); the\n"
      "                        failing scenario and shrunk repro are\n"
      "                        identical for every N\n"
      "  --out FILE            write the shrunk repro as hmps-repro-v1\n"
      "  --replay FILE         re-run a repro and compare its violation\n"
      "  --selftest            seeded-bug find+shrink+replay end-to-end\n"
      "  --verbose             progress to stderr\n");
}

bool parse_budget(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v < 0) return false;
  if (*end != '\0' && std::strcmp(end, "s") != 0) return false;
  *out = v;
  return true;
}

bool split_list(const std::string& arg, std::vector<std::string>* out) {
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string tok =
        arg.substr(start, comma == std::string::npos ? comma : comma - start);
    if (tok.empty()) return false;
    out->push_back(tok);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

void print_scenario(const char* tag, const check::Scenario& s) {
  std::printf(
      "%s: %s on %s, %u threads x %u ops, max_ops %llu, shards %u, "
      "machine %s, seed %llu\n",
      tag, harness::to_string(s.cfg.construction),
      harness::to_string(s.cfg.object), s.cfg.threads, s.cfg.ops_each,
      static_cast<unsigned long long>(s.cfg.max_ops), s.cfg.shards,
      s.cfg.params.name.c_str(),
      static_cast<unsigned long long>(s.cfg.seed));
  std::printf(
      "%s: perturb{seed %llu, change_points %u, resume %u%%o x %llu, "
      "point %u%%o <= %llu}%s\n",
      tag, static_cast<unsigned long long>(s.perturb.seed),
      s.perturb.change_points, s.perturb.resume_permille,
      static_cast<unsigned long long>(s.perturb.delay_unit),
      s.perturb.point_permille,
      static_cast<unsigned long long>(s.perturb.point_delay_max),
      s.cfg.faults.enabled() ? " + faults" : "");
}

int do_replay(const std::string& path) {
  check::Scenario s;
  check::Violation expect;
  std::string err;
  if (!check::read_repro_file(path, &s, &expect, &err)) {
    std::fprintf(stderr, "check_explore: %s\n", err.c_str());
    return 2;
  }
  print_scenario("replay", s);
  const check::Violation got = check::run_scenario(s);
  if (got.found) {
    std::printf("replay: violation [%s] %s\n", got.kind.c_str(),
                got.detail.c_str());
  } else {
    std::printf("replay: no violation\n");
  }
  if (expect.found != got.found ||
      (expect.found && expect.kind != got.kind)) {
    std::printf("replay: MISMATCH with recorded violation [%s] %s\n",
                expect.kind.c_str(), expect.detail.c_str());
    return 1;
  }
  std::printf("replay: matches the recorded outcome\n");
  return 0;
}

int do_selftest(double budget, std::uint64_t seed, bool verbose) {
  // Seed the test-only HybComb defect (a combiner dropping every 3rd
  // combined request) and require the harness to find it, shrink it to a
  // small repro, and replay it deterministically.
  check::ExploreCfg cfg;
  cfg.seed = seed;
  cfg.budget_seconds = budget;
  cfg.constructions = {harness::Construction::kHybComb};
  cfg.objects = {harness::Object::kCounter};
  cfg.hyb_bug_drop_every = 3;
  cfg.verbose = verbose;
  const check::ExploreResult r = check::explore(cfg);
  std::printf("selftest: %llu schedules run\n",
              static_cast<unsigned long long>(r.schedules_run));
  if (!r.violation_found) {
    std::printf("selftest: FAILED - seeded bug not found within budget\n");
    return 1;
  }
  print_scenario("selftest found", r.failing);
  std::printf("selftest: violation [%s] %s\n", r.violation.kind.c_str(),
              r.violation.detail.c_str());
  print_scenario("selftest shrunk", r.shrunk);
  std::printf("selftest: shrink used %llu candidate runs\n",
              static_cast<unsigned long long>(r.shrink_runs));
  if (r.shrunk.cfg.threads > 4 || r.shrunk.cfg.ops_each > 8) {
    std::printf("selftest: FAILED - shrunk repro too large (%u threads, %u "
                "ops)\n",
                r.shrunk.cfg.threads, r.shrunk.cfg.ops_each);
    return 1;
  }
  // Round-trip through hmps-repro-v1 and replay twice: the violation must
  // reproduce identically from the serialized form.
  const std::string json = check::repro_to_json(r.shrunk, r.shrunk_violation);
  check::Scenario replayed;
  check::Violation expect;
  std::string err;
  if (!check::repro_from_json(json, &replayed, &expect, &err)) {
    std::printf("selftest: FAILED - repro round-trip: %s\n", err.c_str());
    return 1;
  }
  const check::Violation v1 = check::run_scenario(replayed);
  const check::Violation v2 = check::run_scenario(replayed);
  if (!v1.found || v1.kind != expect.kind || v1.detail != v2.detail) {
    std::printf("selftest: FAILED - replay not deterministic\n");
    return 1;
  }
  std::printf("selftest: PASSED (shrunk to %u threads x %u ops, "
              "deterministic replay)\n",
              r.shrunk.cfg.threads, r.shrunk.cfg.ops_each);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  check::ExploreCfg cfg;
  cfg.jobs = harness::resolve_jobs(0);  // $HMPS_JOBS, then h/w concurrency
  std::string out_path;
  std::string replay_path;
  bool selftest = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "check_explore: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--budget") {
      if (!parse_budget(next(), &cfg.budget_seconds)) {
        std::fprintf(stderr, "check_explore: bad --budget value\n");
        return 2;
      }
    } else if (a == "--schedules") {
      cfg.max_schedules = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--construction") {
      std::vector<std::string> toks;
      if (!split_list(next(), &toks)) return 2;
      for (const auto& t : toks) {
        harness::Construction c;
        if (!harness::construction_from_string(t, &c)) {
          std::fprintf(stderr, "check_explore: unknown construction '%s'\n",
                       t.c_str());
          return 2;
        }
        cfg.constructions.push_back(c);
      }
    } else if (a == "--object") {
      std::vector<std::string> toks;
      if (!split_list(next(), &toks)) return 2;
      for (const auto& t : toks) {
        harness::Object o;
        if (!harness::object_from_string(t, &o)) {
          std::fprintf(stderr, "check_explore: unknown object '%s'\n",
                       t.c_str());
          return 2;
        }
        cfg.objects.push_back(o);
      }
    } else if (a == "--jobs") {
      cfg.jobs = harness::resolve_jobs(
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10)));
    } else if (a == "--fuzz-machines") {
      cfg.fuzz_machines = true;
    } else if (a == "--inject-bug") {
      cfg.hyb_bug_drop_every = std::strtoull(next(), nullptr, 10);
    } else if (a == "--out") {
      out_path = next();
    } else if (a == "--replay") {
      replay_path = next();
    } else if (a == "--selftest") {
      selftest = true;
    } else if (a == "--verbose") {
      cfg.verbose = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "check_explore: unknown option '%s'\n", a.c_str());
      usage();
      return 2;
    }
  }

  if (!replay_path.empty()) return do_replay(replay_path);
  if (selftest) return do_selftest(cfg.budget_seconds, cfg.seed, cfg.verbose);

  const check::ExploreResult r = check::explore(cfg);
  std::printf("explored %llu schedules (%llu ops checked)\n",
              static_cast<unsigned long long>(r.schedules_run),
              static_cast<unsigned long long>(r.ops_checked));
  if (!r.violation_found) {
    std::printf("no violation found\n");
    return 0;
  }
  print_scenario("failing", r.failing);
  std::printf("violation: [%s] %s\n", r.violation.kind.c_str(),
              r.violation.detail.c_str());
  print_scenario("shrunk", r.shrunk);
  std::printf("shrunk violation: [%s] %s\n", r.shrunk_violation.kind.c_str(),
              r.shrunk_violation.detail.c_str());
  if (!out_path.empty()) {
    std::string err;
    if (!check::write_repro_file(out_path, r.shrunk, r.shrunk_violation,
                                 &err)) {
      std::fprintf(stderr, "check_explore: %s\n", err.c_str());
      return 2;
    }
    std::printf("repro written to %s\n", out_path.c_str());
  }
  return 1;
}

// Oyama, Taura & Yonezawa's lock-based combining (the paper's reference
// [24]; 1999): the earliest of the combining constructions. Threads that
// find the lock busy CAS-push their request onto a shared pending list; the
// lock owner repeatedly detaches the whole list with a SWAP and executes
// the requests before releasing.
//
// Compared to its successors it contends on a single list head with CAS
// (every blocked thread pushes there) — the weakness flat combining and
// CC-SYNCH later removed. Included as an extension baseline.
#pragma once

#include <cstdint>

#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class OyamaComb {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  explicit OyamaComb(void* obj) : obj_(obj) {}

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "OyamaComb::apply");
    SyncStats& st = stats_[tid].s;
    Node* my = &nodes_[tid];
    bool pushed = false;

    for (;;) {
      if (!pushed && ctx.load(&lock_) == 0 &&
          ctx.exchange(&lock_, std::uint64_t{1}) == 0) {
        // Owner: execute own request, then drain the pending list until it
        // stays empty, then release.
        ++st.tenures;
        const std::uint64_t ret = fn(ctx, obj_, arg);
        ++st.served;
        drain(ctx, st);
        explore_point(ctx, "oy.release");
        ctx.store(&lock_, std::uint64_t{0});
        ++st.ops;
        return ret;
      }
      if (!pushed) {
        // Publish the request on the pending list (CAS push).
        ctx.store(&my->fn, rt::to_word(fn));
        ctx.store(&my->arg, arg);
        ctx.store(&my->done, std::uint64_t{0});
        for (;;) {
          const std::uint64_t head = ctx.load(&head_);
          ctx.store(&my->next, head);
          ++st.cas_attempts;
          if (ctx.cas(&head_, head, rt::to_word(my))) break;
          ++st.cas_failures;
        }
        pushed = true;
        explore_point(ctx, "oy.pushed");
      }
      if (ctx.load(&my->done)) {
        ++st.ops;
        return ctx.load(&my->ret);
      }
      // The owner may have released without seeing our late push: if the
      // lock is free, try to become the owner and drain (our own node is
      // still in the list and will be served by ourselves).
      if (ctx.load(&lock_) == 0 &&
          ctx.exchange(&lock_, std::uint64_t{1}) == 0) {
        ++st.tenures;
        drain(ctx, st);
        ctx.store(&lock_, std::uint64_t{0});
        // Our node was in the list, so it is done now.
        ++st.ops;
        return ctx.load(&my->ret);
      }
      ctx.cpu_relax();
    }
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "OyamaComb::stats");
    return stats_[t].s;
  }

 private:
  struct alignas(rt::kCacheLine) Node {
    Word fn{0};
    Word arg{0};
    Word ret{0};
    Word done{0};
    Word next{0};  // Node*
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  void drain(Ctx& ctx, SyncStats& st) {
    for (;;) {
      Node* head = rt::from_word<Node>(ctx.exchange(&head_, std::uint64_t{0}));
      if (head == nullptr) return;
      // Serve the detached chain (reverse arrival order, as in the paper).
      while (head != nullptr) {
        Node* next = rt::from_word<Node>(ctx.load(&head->next));
        Fn f = rt::from_word<std::remove_pointer_t<Fn>>(ctx.load(&head->fn));
        ctx.store(&head->ret, f(ctx, obj_, ctx.load(&head->arg)));
        ctx.store(&head->done, std::uint64_t{1});
        ++st.served;
        head = next;
      }
    }
  }

  void* obj_;
  alignas(rt::kCacheLine) Word lock_{0};
  alignas(rt::kCacheLine) Word head_{0};
  Node nodes_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::sync

// SimCtx: the ExecutionContext backend that runs algorithms on the
// discrete-event machine model.
//
// Functional effects apply at the instant the fiber executes the call
// (a legal linearization point inside the operation's latency interval,
// valid because the whole simulation runs on one host thread); the fiber
// then sleeps for the modeled latency, with cycles attributed to busy /
// stall / idle per the core model.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "arch/machine.hpp"
#include "runtime/context.hpp"
#include "sim/rng.hpp"

namespace hmps::rt {

/// Where a simulated thread currently executes: its core and the hardware
/// message queue it has reserved there (paper Section 6: a thread's
/// identity for message passing is its current (core, queue) pair).
struct Placement {
  Tid core = 0;
  std::uint32_t queue = 0;
};

class SimCtx {
 public:
  /// `placements` maps thread id -> current placement for all threads of
  /// the executor (shared; updated by migrate()).
  SimCtx(arch::Machine& m, Tid tid, std::uint32_t nthreads,
         std::vector<Placement>* placements, std::uint64_t seed)
      : m_(m), tid_(tid), nthreads_(nthreads), placements_(placements),
        core_((*placements)[tid].core), queue_((*placements)[tid].queue),
        rng_(seed) {}

  using Bucket = obs::CycleAccount::Bucket;

  Tid tid() const { return tid_; }
  std::uint32_t nthreads() const { return nthreads_; }
  Tid core() const { return core_; }
  Cycle now() const { return m_.sched().now(); }
  arch::Machine& machine() { return m_; }
  sim::Xoshiro256& rng() { return rng_; }
  std::uint64_t rand_below(std::uint64_t bound) { return rng_.below(bound); }

  // ---- shared memory ----

  template <class T>
  T load(const std::atomic<T>* p) {
    static_assert(sizeof(T) <= 8);
    fault_stall();
    const T v = p->load(std::memory_order_relaxed);
    account_load(reinterpret_cast<std::uint64_t>(p));
    return v;
  }

  template <class T>
  void store(std::atomic<T>* p, T v) {
    static_assert(sizeof(T) <= 8);
    fault_stall();
    p->store(v, std::memory_order_relaxed);
    account_store(reinterpret_cast<std::uint64_t>(p));
  }

  std::uint64_t faa(std::atomic<std::uint64_t>* p, std::uint64_t d) {
    fault_stall();
    const std::uint64_t old = p->fetch_add(d, std::memory_order_relaxed);
    account_atomic(reinterpret_cast<std::uint64_t>(p),
                   arch::AtomicKind::kFaa);
    return old;
  }

  template <class T>
  T exchange(std::atomic<T>* p, T v) {
    static_assert(sizeof(T) <= 8);
    fault_stall();
    const T old = p->exchange(v, std::memory_order_relaxed);
    // Exchange is an unconditional RMW: controller cost class of FAA.
    account_atomic(reinterpret_cast<std::uint64_t>(p),
                   arch::AtomicKind::kFaa);
    return old;
  }

  template <class T>
  bool cas(std::atomic<T>* p, T expect, T desired) {
    static_assert(sizeof(T) <= 8);
    fault_stall();
    const bool ok = p->compare_exchange_strong(expect, desired,
                                               std::memory_order_relaxed);
    account_atomic(reinterpret_cast<std::uint64_t>(p),
                   ok ? arch::AtomicKind::kCasSuccess
                      : arch::AtomicKind::kCasFail);
    return ok;
  }

  void fence() {
    fault_stall();
    auto& c = m_.core(core_);
    const Cycle t = now();
    Cycle wait = 0;
    if (c.wb_ready > t) {
      wait = c.wb_ready - t;
      c.stall += wait;
      charge(Bucket::kCoherenceWrite, t, t + wait);  // write-buffer drain
      m_.sched().wait_until(c.wb_ready);
    }
    c.busy += m_.params().fence_cost;
    charge(Bucket::kCompute, t + wait, t + wait + m_.params().fence_cost);
    m_.sched().wait_for(m_.params().fence_cost);
  }

  void prefetch(const void* p) {
    if (!m_.params().allow_prefetch) return;
    fault_stall();
    auto& c = m_.core(core_);
    const std::uint64_t addr = reinterpret_cast<std::uint64_t>(p);
    c.prefetch_line = m_.coherence().line_of(addr);
    c.prefetch_ready = m_.coherence().prefetch(core_, addr, now());
    c.busy += 1;
    charge(Bucket::kCompute, now(), now() + 1);
    m_.sched().wait_for(1);
  }

  // ---- message passing ----

  void send(Tid dst_thread, const std::uint64_t* words, std::size_t n) {
    fault_stall();
    auto& c = m_.core(core_);
    ++c.msgs_sent;
    const Cycle t0 = now();
    m_.udn().send(core_, core_of_thread(dst_thread),
                  queue_of_thread(dst_thread), words, n);
    const Cycle dt = now() - t0;
    c.busy += dt;  // injection cost; backpressure counts as busy-wait
    // The injection tail is fixed; anything beyond it was credit
    // backpressure (the sender suspended before reserving space).
    const Cycle inject = m_.params().udn_inject +
                         m_.params().udn_per_word_wire * static_cast<Cycle>(n);
    const Cycle block = dt > inject ? dt - inject : 0;
    charge(Bucket::kUdnSendBlock, t0, t0 + block);
    charge(Bucket::kCompute, t0 + block, t0 + dt);
    m_.tracer().event(core_, "send", t0, dt);
  }

  void send(Tid dst_thread, std::initializer_list<std::uint64_t> words) {
    send(dst_thread, words.begin(), words.size());
  }

  void receive(std::uint64_t* out, std::size_t n) {
    receive_impl(out, n, Bucket::kUdnRecvWait, "receive-wait");
  }

  /// Identical timing to receive(); the empty-queue wait is attributed to
  /// the async-delegation bucket instead. Used by the constructions'
  /// wait()/wait_all() ticket-reaping paths (docs/MODEL.md §9) so Fig. 4a
  /// style breakdowns separate "blocked on a future" from the server's
  /// ordinary receive wait.
  void receive_async(std::uint64_t* out, std::size_t n) {
    receive_impl(out, n, Bucket::kUdnAsyncWait, "receive-async-wait");
  }

  std::uint64_t receive1() {
    std::uint64_t w;
    receive(&w, 1);
    return w;
  }

  // ---- async reply staging (tagged-receive demux, docs/MODEL.md §9) ----
  // Replies popped while waiting for a different tag park here until their
  // ticket is reaped. Pure register-file bookkeeping: no cycles are
  // charged, matching NativeCtx's staged-word queue.

  void stage_reply(std::uint64_t tag, std::uint64_t val) {
    staged_replies_.emplace_back(tag, val);
  }

  bool take_staged_reply(std::uint64_t tag, std::uint64_t* val) {
    for (std::size_t i = 0; i < staged_replies_.size(); ++i) {
      if (staged_replies_[i].first == tag) {
        *val = staged_replies_[i].second;
        staged_replies_[i] = staged_replies_.back();
        staged_replies_.pop_back();
        return true;
      }
    }
    return false;
  }

  bool take_any_staged_reply(std::uint64_t* tag, std::uint64_t* val) {
    if (staged_replies_.empty()) return false;
    *tag = staged_replies_.back().first;
    *val = staged_replies_.back().second;
    staged_replies_.pop_back();
    return true;
  }

  bool queue_empty() {
    fault_stall();
    auto& c = m_.core(core_);
    c.busy += 1;
    charge(Bucket::kCompute, now(), now() + 1);
    m_.sched().wait_for(1);
    return m_.udn().queue_empty(core_, queue_);
  }

  // ---- virtual-link channels (arch/vlink.hpp; sim-only transport) ----
  // Accounting mirrors the UDN ops bucket for bucket (push backpressure is
  // kUdnSendBlock, pop waits are kUdnRecvWait / kUdnAsyncWait), so Fig. 4a
  // style breakdowns compare the transports without new schema buckets.

  void vlink_push(std::uint32_t ch, const std::uint64_t* words,
                  std::size_t n) {
    fault_stall();
    auto& c = m_.core(core_);
    ++c.msgs_sent;
    const Cycle t0 = now();
    m_.vlink().push(core_, ch, words, n);
    const Cycle dt = now() - t0;
    c.busy += dt;  // injection cost; backpressure counts as busy-wait
    const Cycle inject = m_.params().udn_inject +
                         m_.params().udn_per_word_wire * static_cast<Cycle>(n);
    const Cycle block = dt > inject ? dt - inject : 0;
    charge(Bucket::kUdnSendBlock, t0, t0 + block);
    charge(Bucket::kCompute, t0 + block, t0 + dt);
    m_.tracer().event(core_, "vlink-push", t0, dt);
  }

  void vlink_push(std::uint32_t ch, std::initializer_list<std::uint64_t> w) {
    vlink_push(ch, w.begin(), w.size());
  }

  void vlink_pop(std::uint32_t ch, std::uint64_t* out, std::size_t n) {
    vlink_pop_impl(ch, out, n, Bucket::kUdnRecvWait, "vlink-pop");
  }

  /// Identical timing to vlink_pop(); the wait is attributed to the
  /// async-delegation bucket (ticket reaping, docs/MODEL.md §9).
  void vlink_pop_async(std::uint32_t ch, std::uint64_t* out, std::size_t n) {
    vlink_pop_impl(ch, out, n, Bucket::kUdnAsyncWait, "vlink-pop-async");
  }

  bool vlink_empty(std::uint32_t ch) {
    fault_stall();
    auto& c = m_.core(core_);
    c.busy += 1;
    charge(Bucket::kCompute, now(), now() + 1);
    m_.sched().wait_for(1);
    return m_.vlink().empty(ch);
  }

  // ---- execution ----

  void compute(Cycle cycles) { busy_wait(cycles, Bucket::kCompute, "compute"); }

  /// Backoff/poll iteration: same timing as compute(1), accounted as spin.
  void cpu_relax() { busy_wait(1, Bucket::kSpin, "spin"); }

  /// Exploration yield point (sync-layer span boundaries, see
  /// sim/perturb.hpp): with a perturber installed the thread may be stalled
  /// here as if descheduled, accounted like an injected preemption. A
  /// single predicted branch when no perturber is active.
  void explore_point(const char* where) {
    sim::Perturber* p = m_.sched().perturber();
    if (p == nullptr) [[likely]] return;
    const Cycle d = p->point_delay(tid_, core_, where, now());
    if (d > 0) {
      auto& c = m_.core(core_);
      c.stall += d;
      c.preempt_stall += d;
      charge(Bucket::kPreempted, now(), now() + d);
      m_.tracer().event(core_, "explore-preempt", now(), d);
      m_.sched().wait_for(d);
    }
  }

  /// Current placement of any thread (dynamic: threads may migrate).
  Tid core_of_thread(Tid t) const {
    assert(t < placements_->size() && "message to unregistered thread id");
    return (*placements_)[t].core;
  }
  std::uint32_t queue_of_thread(Tid t) const {
    assert(t < placements_->size() && "message to unregistered thread id");
    return (*placements_)[t].queue;
  }

  /// Migrates this thread to another core/hardware queue, as Section 6
  /// allows "in between requests": the local message queue must be empty
  /// (no response pending) and no request may be in flight. Charges a
  /// migration penalty. The caller is responsible for not double-booking a
  /// (core, queue) pair.
  void migrate(Tid new_core, std::uint32_t new_queue, Cycle cost = 200) {
    assert(m_.udn().queue_empty(core_, queue_) &&
           "migrate with pending messages");
    compute(cost);
    core_ = new_core;
    queue_ = new_queue;
    (*placements_)[tid_] = Placement{new_core, new_queue};
  }

 private:
  void vlink_pop_impl(std::uint32_t ch, std::uint64_t* out, std::size_t n,
                      Bucket wait_bucket, const char* name) {
    fault_stall();
    auto& c = m_.core(core_);
    ++c.msgs_received;
    const Cycle t0 = now();
    m_.vlink().pop(core_, ch, out, n);
    const Cycle dt = now() - t0;
    m_.tracer().event(core_, name, t0, dt);
    // The register reads trail; everything before them — the home-ring
    // round trip plus any empty-channel block — is wait, not compute.
    const Cycle pop_cost = m_.params().udn_recv_word * static_cast<Cycle>(n);
    const Cycle wait = dt > pop_cost ? dt - pop_cost : 0;
    c.busy += pop_cost;
    c.idle += wait;
    charge(wait_bucket, t0, t0 + wait);
    charge(Bucket::kCompute, t0 + wait, t0 + dt);
  }

  void receive_impl(std::uint64_t* out, std::size_t n, Bucket wait_bucket,
                    const char* wait_name) {
    fault_stall();
    auto& c = m_.core(core_);
    ++c.msgs_received;
    const Cycle t0 = now();
    const bool had = m_.udn().words_pending(core_, queue_) >= n;
    m_.udn().receive(core_, queue_, out, n);
    const Cycle dt = now() - t0;
    m_.tracer().event(core_, had ? "receive" : wait_name, t0, dt);
    const Cycle pop_cost =
        m_.params().udn_recv_word * static_cast<Cycle>(n);
    if (had) {
      c.busy += dt;
      charge(Bucket::kCompute, t0, t0 + dt);
    } else {
      // Waiting for a message is idle time, not a pipeline stall. The pop
      // happens after the words arrive, so the wait leads and the register
      // reads trail.
      c.busy += pop_cost;
      c.idle += dt > pop_cost ? dt - pop_cost : 0;
      const Cycle wait = dt > pop_cost ? dt - pop_cost : 0;
      charge(wait_bucket, t0, t0 + wait);
      charge(Bucket::kCompute, t0 + wait, t0 + dt);
    }
  }

  /// Charges [start, end) on this core's cycle account (obs layer). Pure
  /// bookkeeping: never advances simulated time.
  void charge(Bucket b, Cycle start, Cycle end) {
    m_.core(core_).account.charge(b, start, end);
  }

  /// Occupies the core for `cycles`, attributed to `bucket`.
  void busy_wait(Cycle cycles, Bucket bucket, const char* name) {
    if (cycles == 0) return;
    fault_stall();
    m_.tracer().event(core_, name, now(), cycles);
    m_.core(core_).busy += cycles;
    charge(bucket, now(), now() + cycles);
    m_.sched().wait_for(cycles);
  }

  /// Fault-injection hook at every operation boundary: while this core sits
  /// inside an injected preemption window, the fiber makes no progress (the
  /// thread is "descheduled"; Section 6's unlucky-scheduling scenario).
  /// A single predicted-false branch when no plan is active — the stall
  /// body lives in a separate function so this wrapper actually inlines
  /// into every memory-op (it did not as one function, and this is called
  /// before every simulated operation).
  void fault_stall() {
    if (!m_.faults().active()) [[likely]] return;
    fault_stall_slow();
  }

  __attribute__((noinline)) void fault_stall_slow() {
    const Cycle until = m_.faults().preempt_until(core_);
    const Cycle t = now();
    if (until > t) {
      auto& c = m_.core(core_);
      c.preempt_stall += until - t;
      c.stall += until - t;
      ++c.preemptions;
      charge(Bucket::kPreempted, t, until);
      m_.tracer().event(core_, "preempt", t, until - t);
      m_.sched().wait_until(until);
    }
  }

  void account_load(std::uint64_t addr) {
    auto& c = m_.core(core_);
    ++c.mem_ops;
    const auto& p = m_.params();
    Cycle extra_wait = 0;
    const std::uint64_t line = m_.coherence().line_of(addr);
    if (c.prefetch_line == line) {
      // The prefetch already ran the coherence transaction; the load only
      // stalls for whatever latency is still outstanding.
      const Cycle t = now();
      extra_wait = c.prefetch_ready > t ? c.prefetch_ready - t : 0;
      c.prefetch_line = ~std::uint64_t{0};
    }
    const auto ac = m_.coherence().read(core_, addr, now() + extra_wait);
    if (ac.remote) ++c.rmr_loads;
    const Cycle lat = extra_wait + ac.latency;
    m_.tracer().event(core_, ac.remote ? "load-miss" : "load-hit", now(),
                      p.issue_cost + lat);
    const Cycle busy_part = lat < p.l_hit ? lat : p.l_hit;
    c.busy += p.issue_cost + busy_part;
    c.stall += lat - busy_part;
    c.load_stall += lat - busy_part;
    const Cycle t = now();
    charge(Bucket::kCompute, t, t + p.issue_cost + busy_part);
    charge(Bucket::kCoherenceRead, t + p.issue_cost + busy_part,
           t + p.issue_cost + lat);
    m_.sched().wait_for(p.issue_cost + lat);
  }

  void account_store(std::uint64_t addr) {
    auto& c = m_.core(core_);
    ++c.mem_ops;
    const auto& p = m_.params();
    const std::uint64_t line = m_.coherence().line_of(addr);
    if (p.posted_writes && line == c.wb_line && now() < c.wb_ready) {
      // Store-buffer coalescing: this store merges into the same-line entry
      // still draining; ownership is re-asserted so an interleaved remote
      // read (e.g. a client polling the response word) is ordered after the
      // drain rather than splitting one upgrade into two.
      m_.coherence().own_silently(core_, addr);
      m_.tracer().event(core_, "store-coalesced", now(), p.issue_cost);
      c.busy += p.issue_cost;
      charge(Bucket::kCompute, now(), now() + p.issue_cost);
      m_.sched().wait_for(p.issue_cost);
      return;
    }
    const auto ac = m_.coherence().write(core_, addr, now());
    if (ac.remote) ++c.rmr_stores;
    if (ac.remote && p.posted_writes) {
      // Posted store: retires through the write buffer in the background.
      const Cycle t = now();
      Cycle wait = 0;
      if (c.wb_ready > t) {  // single-entry buffer still draining
        wait = c.wb_ready - t;
        c.stall += wait;
        c.wb_stall += wait;
      }
      c.wb_ready = t + wait + ac.latency;
      c.wb_line = line;
      m_.tracer().event(core_, "store-posted", now(), p.issue_cost + wait);
      c.busy += p.issue_cost;
      charge(Bucket::kCoherenceWrite, t, t + wait);  // buffer-full drain
      charge(Bucket::kCompute, t + wait, t + wait + p.issue_cost);
      m_.sched().wait_for(p.issue_cost + wait);
    } else {
      const Cycle busy_part = ac.latency < p.l_hit ? ac.latency : p.l_hit;
      c.busy += p.issue_cost + busy_part;
      c.stall += ac.latency - busy_part;
      const Cycle t = now();
      charge(Bucket::kCompute, t, t + p.issue_cost + busy_part);
      charge(Bucket::kCoherenceWrite, t + p.issue_cost + busy_part,
             t + p.issue_cost + ac.latency);
      m_.sched().wait_for(p.issue_cost + ac.latency);
    }
  }

  void account_atomic(std::uint64_t addr, arch::AtomicKind kind) {
    auto& c = m_.core(core_);
    ++c.mem_ops;
    ++c.atomics;
    const auto& p = m_.params();
    const auto ac = m_.coherence().atomic(core_, addr, now(), kind);
    m_.tracer().event(core_, "atomic", now(), p.issue_cost + ac.latency);
    // Atomics block the core for their full round trip.
    c.busy += p.issue_cost;
    c.stall += ac.latency;
    c.atomic_stall += ac.latency;
    const Cycle t = now();
    charge(Bucket::kCompute, t, t + p.issue_cost);
    charge(Bucket::kAtomic, t + p.issue_cost, t + p.issue_cost + ac.latency);
    m_.sched().wait_for(p.issue_cost + ac.latency);
  }

  arch::Machine& m_;
  Tid tid_;
  std::uint32_t nthreads_;
  std::vector<Placement>* placements_;
  Tid core_;
  std::uint32_t queue_;
  sim::Xoshiro256 rng_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> staged_replies_;
};

static_assert(ExecutionContext<SimCtx>);

}  // namespace hmps::rt

# Empty compiler generated dependencies file for machine_probe.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig4b_combining_rate.
# This may be replaced when dependencies are built.

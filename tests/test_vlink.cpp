// Virtual-Link MPMC channel fabric (arch/vlink.hpp) and the delegation
// construction built on it (sync/vlink_server.hpp, docs/MODEL.md §12):
// frame integrity under concurrent producers/consumers, credit
// backpressure, the server-pool drain, async tickets, fault interaction,
// and linearizable histories through the recording harness.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "arch/machine.hpp"
#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "ds/queue.hpp"
#include "harness/history.hpp"
#include "harness/record.hpp"
#include "harness/workload.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/fault.hpp"
#include "sync/vlink_server.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

TEST(VlinkFabric, RoundTripDeliversWordsIntact) {
  SimExecutor ex(arch::MachineParams::tilegx_small(4, 2), 3);
  const auto ch = ex.machine().vlink().create_channel(/*home=*/0, 64);
  std::uint64_t got[3] = {0, 0, 0};
  ex.add_thread([&](SimCtx& ctx) { ctx.vlink_pop(ch, got, 3); });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.vlink_push(ch, {0xA5A5u, 42u, ~std::uint64_t{0}});
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(got[0], 0xA5A5u);
  EXPECT_EQ(got[1], 42u);
  EXPECT_EQ(got[2], ~std::uint64_t{0});
  const auto& c = ex.machine().vlink().counters();
  EXPECT_EQ(c.frames, 1u);
  EXPECT_EQ(c.words, 3u);
}

TEST(VlinkFabric, FramesStayAtomicAcrossMpmc) {
  // 4 producers push 3-word frames tagged (producer, seq, producer^seq);
  // 2 consumers drain them concurrently. Every popped frame must be
  // internally consistent — concurrent consumers never interleave words —
  // and every pushed frame must arrive exactly once.
  constexpr std::uint32_t kProducers = 4, kConsumers = 2, kFrames = 25;
  SimExecutor ex(arch::MachineParams::tilegx_small(4, 2), 9);
  // Tiny capacity (4 frames) so producers hit backpressure and consumers
  // block mid-stream: both waiter paths run.
  const auto ch = ex.machine().vlink().create_channel(/*home=*/0, 12);
  std::vector<std::array<std::uint64_t, 3>> popped;
  std::uint32_t drained = 0;
  for (std::uint32_t cns = 0; cns < kConsumers; ++cns) {
    ex.add_thread([&](SimCtx& ctx) {
      for (;;) {
        std::uint64_t f[3];
        ctx.vlink_pop(ch, f, 3);
        if (f[0] == ~std::uint64_t{0}) return;  // poison
        popped.push_back({f[0], f[1], f[2]});
        ++drained;
      }
    });
  }
  std::uint32_t done = 0;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    ex.add_thread([&, p](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < kFrames; ++k) {
        ctx.vlink_push(ch, {p, k, static_cast<std::uint64_t>(p ^ k)});
        ctx.compute(ctx.rand_below(20));
      }
      if (++done == kProducers) {
        for (std::uint32_t c = 0; c < kConsumers; ++c) {
          ctx.vlink_push(ch, {~std::uint64_t{0}, 0, 0});
        }
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  ASSERT_EQ(drained, kProducers * kFrames);
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (const auto& f : popped) {
    EXPECT_EQ(f[2], f[0] ^ f[1]) << "interleaved frame";
    EXPECT_TRUE(seen.insert({f[0], f[1]}).second) << "duplicated frame";
  }
  const auto& c = ex.machine().vlink().counters();
  EXPECT_GT(c.producer_blocks, 0u);  // the tiny ring exerted backpressure
  EXPECT_GT(c.consumer_waits, 0u);
  EXPECT_LE(c.peak_occupancy, 12u);  // credits never exceed capacity
}

TEST(VlinkFabric, DeterministicTimeline) {
  auto run = [] {
    SimExecutor ex(arch::MachineParams::tilegx_small(4, 2), 21);
    const auto ch = ex.machine().vlink().create_channel(0, 16);
    std::uint64_t sum = 0;
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 60; ++k) {
        std::uint64_t f[2];
        ctx.vlink_pop(ch, f, 2);
        sum += f[1];
      }
    });
    for (std::uint32_t p = 0; p < 3; ++p) {
      ex.add_thread([&, p](SimCtx& ctx) {
        for (std::uint64_t k = 0; k < 20; ++k) {
          ctx.vlink_push(ch, {p, k});
          ctx.compute(ctx.rand_below(15));
        }
      });
    }
    ex.run_until(sim::kCycleMax);
    return std::make_tuple(sum, ex.sched().now(),
                           ex.machine().vlink().counters().frames);
  };
  EXPECT_EQ(run(), run());
}

// ---- the construction ----

TEST(VlinkServer, CounterExactUnderContention) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 5);
  ds::SeqCounter c;
  sync::VlinkServer<SimCtx> vl(ex.machine().vlink(), /*server_core=*/0, &c);
  ex.add_thread([&](SimCtx& ctx) { vl.serve(ctx); });
  std::uint32_t done = 0;
  constexpr std::uint32_t kClients = 6, kOps = 40;
  for (std::uint32_t i = 0; i < kClients; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < kOps; ++k) {
        vl.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ctx.compute(ctx.rand_below(25));
      }
      if (++done == kClients) vl.request_stop(ctx);
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), kClients * kOps);
  sync::SyncStats sum;
  for (std::uint32_t t = 0; t < 16; ++t) sum.add(vl.stats(t));
  EXPECT_EQ(sum.served, kClients * kOps);
}

/// Pool CS body: a pool runs CS bodies concurrently across its serving
/// threads (see VlinkServer::serve), so the increment must be atomic — a
/// plain load/store body would lose updates exactly as under direct access.
std::uint64_t counter_faa_inc(SimCtx& ctx, void* obj, std::uint64_t) {
  return ctx.faa(&static_cast<ds::SeqCounter*>(obj)->value, 1);
}

TEST(VlinkServer, ServerPoolDrainsOneChannel) {
  // The MPMC request channel is the whole point: two serving threads drain
  // it concurrently with no demux/hub machinery, and frame-atomic pops keep
  // every 3-word request whole.
  SimExecutor ex(arch::MachineParams::tilegx36(), 13);
  ds::SeqCounter c;
  sync::VlinkServer<SimCtx> vl(ex.machine().vlink(), /*server_core=*/0, &c);
  ex.add_thread([&](SimCtx& ctx) { vl.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) { vl.serve(ctx); });
  std::uint32_t done = 0;
  constexpr std::uint32_t kClients = 8, kOps = 30;
  std::set<std::uint64_t> returns;
  for (std::uint32_t i = 0; i < kClients; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < kOps; ++k) {
        returns.insert(vl.apply(ctx, counter_faa_inc, 0));
        ctx.compute(ctx.rand_below(12));
      }
      if (++done == kClients) {
        vl.request_stop(ctx);  // one stop frame per serving thread
        vl.request_stop(ctx);
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), kClients * kOps);
  // Every request served exactly once: the pre-increment FAA values form
  // the full 0..239 range with no duplicates, so no frame was lost, split,
  // or double-served on the shared channel.
  EXPECT_EQ(returns.size(), kClients * kOps);
  EXPECT_EQ(*returns.rbegin(), kClients * kOps - 1);
}

TEST(VlinkServer, AsyncTicketsReapOutOfOrder) {
  SimExecutor ex(arch::MachineParams::tilegx_small(4, 2), 17);
  ds::SeqCounter c;
  sync::VlinkServer<SimCtx> vl(ex.machine().vlink(), /*server_core=*/0, &c);
  ex.add_thread([&](SimCtx& ctx) { vl.serve(ctx); });
  std::set<std::uint64_t> returns;
  ex.add_thread([&](SimCtx& ctx) {
    sync::Ticket t[8];
    for (int j = 0; j < 8; ++j) {
      t[j] = vl.apply_async(ctx, ds::counter_inc<SimCtx>, 0);
    }
    for (int j = 8; j-- > 0;) {  // reverse reap exercises the staging path
      returns.insert(vl.wait(ctx, t[j]));
    }
    vl.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), 8u);
  // FAA pre-increment values 0..7, each seen exactly once.
  EXPECT_EQ(returns.size(), 8u);
  EXPECT_EQ(*returns.begin(), 0u);
  EXPECT_EQ(*returns.rbegin(), 7u);
}

TEST(VlinkServer, SurvivesFaultInjection) {
  sim::FaultPlan fp;
  fp.seed = 41;
  fp.delay_permille = 150;
  fp.delay_min = 5;
  fp.delay_max = 80;
  SimExecutor ex(arch::MachineParams::tilegx_small(4, 2), 29);
  ex.machine().install_faults(fp);
  ds::SeqCounter c;
  sync::VlinkServer<SimCtx> vl(ex.machine().vlink(), /*server_core=*/0, &c);
  ex.add_thread([&](SimCtx& ctx) { vl.serve(ctx); });
  std::uint32_t done = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < 30; ++k) {
        vl.apply(ctx, ds::counter_inc<SimCtx>, 0);
      }
      if (++done == 5) vl.request_stop(ctx);
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), 150u);
  EXPECT_GT(ex.machine().faults().counters().delayed_messages, 0u);
}

// ---- harness integration ----

TEST(VlinkHarness, RecordHistoryCounterLinearizable) {
  for (const std::uint32_t depth : {0u, 4u}) {
    harness::RecordCfg cfg;
    cfg.params = arch::MachineParams::tilegx_small(4, 2);
    cfg.construction = harness::Construction::kVlink;
    cfg.object = harness::Object::kCounter;
    cfg.threads = 5;
    cfg.ops_each = 12;
    cfg.async_depth = depth;
    cfg.seed = 3;
    const auto res = harness::record_history(cfg);
    ASSERT_TRUE(res.completed) << "depth " << depth;
    ASSERT_EQ(res.history.size(), 5u * 12u);
    const auto chk = harness::check_counter_fast(res.history);
    EXPECT_TRUE(chk.ok) << "depth " << depth << ": " << chk.reason;
  }
}

TEST(VlinkHarness, RecordHistoryQueueLinearizableWithCombiningNoc) {
  // The full ISSUE stack at once: vlink transport + combining NoC + faults.
  harness::RecordCfg cfg;
  cfg.params = arch::MachineParams::tilegx_small(4, 2);
  cfg.params.noc_combining = true;
  cfg.construction = harness::Construction::kVlink;
  cfg.object = harness::Object::kQueue;
  cfg.threads = 4;
  cfg.ops_each = 10;
  cfg.seed = 19;
  sim::FaultPlan fp;
  fp.seed = 23;
  fp.delay_permille = 100;
  fp.delay_min = 3;
  fp.delay_max = 40;
  cfg.faults = fp;
  const auto res = harness::record_history(cfg);
  ASSERT_TRUE(res.completed);
  const auto chk = harness::check_queue_fast(res.history);
  EXPECT_TRUE(chk.ok) << chk.reason;
}

TEST(VlinkHarness, RunCounterProducesThroughput) {
  harness::RunCfg cfg;
  cfg.machine = arch::MachineParams::tilegx_small(6, 6);
  cfg.app_threads = 8;
  cfg.warmup = 20'000;
  cfg.window = 50'000;
  cfg.reps = 2;
  const auto r = harness::run_counter(cfg, harness::Approach::kVlinkServer);
  EXPECT_GT(r.mops, 0.0);
  EXPECT_GT(r.total_ops, 0u);
  // The construction moved its requests over vlink frames, not the UDN.
  EXPECT_EQ(r.msgs_per_op, 0.0);
}

TEST(VlinkHarness, QueueAndStackVariantsRun) {
  harness::RunCfg cfg;
  cfg.machine = arch::MachineParams::tilegx_small(4, 2);
  cfg.app_threads = 4;
  cfg.warmup = 10'000;
  cfg.window = 30'000;
  cfg.reps = 2;
  const auto q = harness::run_queue(cfg, harness::QueueImpl::kVl1);
  EXPECT_GT(q.total_ops, 0u);
  const auto s = harness::run_stack(cfg, harness::StackImpl::kVl);
  EXPECT_GT(s.total_ops, 0u);
}

TEST(VlinkHarness, NamesRoundTrip) {
  harness::Construction c;
  ASSERT_TRUE(harness::construction_from_string("vlink", &c));
  EXPECT_EQ(c, harness::Construction::kVlink);
  EXPECT_STREQ(harness::to_string(harness::Construction::kVlink), "vlink");
  EXPECT_TRUE(harness::uses_server(harness::Construction::kVlink));
  EXPECT_TRUE(harness::supports_async(harness::Construction::kVlink));
  EXPECT_EQ(harness::server_threads(harness::Construction::kVlink, 4), 1u);
  EXPECT_STREQ(harness::approach_name(harness::Approach::kVlinkServer),
               "vlink-server");
  EXPECT_TRUE(harness::approach_needs_server(harness::Approach::kVlinkServer));
}

}  // namespace
}  // namespace hmps

// Reproduces Fig. 4a: stalled vs total CPU cycles per operation at the
// servicing thread, under maximum load (35 application threads).
//
// Following the paper's footnote 4, the combining algorithms run with a
// fixed combiner for the whole run (equivalent to MAX_OPS = infinity) so
// that one core's counters capture the servicing thread.
//
// Expected shape: the message-passing approaches (mp-server, HybComb) show
// a virtually unstalled servicing thread; the shared-memory approaches
// (shm-server, CC-Synch) spend >50% of their cycles stalled on coherence.
#include <cstdio>

#include "harness/report.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);

  harness::Table table(
      {"approach", "stalled(cyc/op)", "total(cyc/op)", "stall_share"});
  const Approach order[] = {Approach::kMpServer, Approach::kHybComb,
                            Approach::kShmServer, Approach::kCcSynch};
  for (Approach a : order) {
    harness::RunCfg cfg;
    cfg.app_threads = args.threads ? args.threads : 35;
    cfg.seed = args.seed;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    cfg.fixed_combiner =
        (a == Approach::kHybComb || a == Approach::kCcSynch);
    const auto r = harness::run_counter(cfg, a);
    table.add_row({harness::approach_name(a),
                   harness::fmt(r.serv_stall_per_op, 1),
                   harness::fmt(r.serv_total_per_op, 1),
                   harness::fmt(r.serv_total_per_op > 0
                                    ? r.serv_stall_per_op / r.serv_total_per_op
                                    : 0,
                                2)});
    std::fprintf(stderr, "[fig4a] %s done\n", harness::approach_name(a));
  }
  table.print("Fig. 4a: CPU stalls at the servicing thread (max load)");
  if (!args.csv.empty()) table.write_csv(args.csv);
  return 0;
}

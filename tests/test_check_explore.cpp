// Tests for the schedule-exploration harness (src/check, docs/TESTING.md):
// PCT perturbation determinism, scenario checking, the seeded-bug
// find+shrink pipeline, hmps-repro-v1 round-tripping, and the bounded
// complete checker.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "check/explore.hpp"
#include "check/gen.hpp"
#include "check/perturb.hpp"
#include "check/repro.hpp"
#include "harness/history.hpp"
#include "harness/record.hpp"

namespace hmps {
namespace {

using harness::Construction;
using harness::Object;

check::Scenario base_scenario() {
  check::Scenario s;
  s.cfg.construction = Construction::kCcSynch;
  s.cfg.object = Object::kQueue;
  s.cfg.seed = 71;
  s.cfg.threads = 4;
  s.cfg.ops_each = 6;
  s.cfg.max_ops = 4;
  s.cfg.think_max = 30;
  s.perturb.seed = 901;
  s.perturb.nthreads = 4;
  s.perturb.change_points = 2;
  s.perturb.change_interval = 40'000;
  s.perturb.resume_permille = 150;
  s.perturb.delay_unit = 300;
  s.perturb.point_permille = 250;
  s.perturb.point_delay_max = 4'000;
  check::clamp_cfg(s.cfg);
  return s;
}

// ---- PctPerturber ----

TEST(PctPerturber, SamePlanSameDecisionStream) {
  check::PerturbPlan plan;
  plan.seed = 42;
  plan.nthreads = 6;
  plan.change_points = 3;
  plan.change_interval = 1'000;
  plan.resume_permille = 400;
  plan.delay_unit = 50;
  plan.point_permille = 300;
  plan.point_delay_max = 700;
  check::PctPerturber a(plan), b(plan);
  for (std::uint32_t i = 0; i < 500; ++i) {
    const sim::Cycle t = i * 17;
    EXPECT_EQ(a.resume_delay(i % 6, t), b.resume_delay(i % 6, t)) << i;
    EXPECT_EQ(a.point_delay(i % 6, i % 4, "x", t),
              b.point_delay(i % 6, i % 4, "x", t))
        << i;
  }
  EXPECT_EQ(a.decisions(), b.decisions());
  EXPECT_EQ(a.decisions(), 1000u);
}

TEST(PctPerturber, DisabledPlanInjectsNothing) {
  check::PerturbPlan plan;  // all levers zero
  plan.nthreads = 4;
  EXPECT_FALSE(plan.enabled());
  check::PctPerturber p(plan);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(p.resume_delay(i % 4, i * 11), 0u);
    EXPECT_EQ(p.point_delay(i % 4, 0, "x", i * 11), 0u);
  }
}

// ---- record_history determinism under perturbation ----

TEST(RecordHistory, PerturbedRunReplaysBitIdentically) {
  const check::Scenario s = base_scenario();
  // Simulated timing is independent of host heap layout: line homes come
  // from dense first-touch ids and every simulated arena is cache-line
  // aligned (runtime/aligned.hpp) — before the arenas were aligned, the
  // queue arena's base mod 64 set the node/line packing and this test
  // flaked whenever the allocator returned differently-aligned arenas to
  // the two measured runs. The warm-up run and the pre-reserved comparison
  // buffer are kept anyway so the two runs also see identical allocator
  // state, keeping the test a tight bit-identical-replay check rather
  // than one that depends on malloc internals staying idempotent.
  check::PctPerturber warm(s.perturb), p1(s.perturb), p2(s.perturb);
  std::vector<harness::OpRecord> first;
  first.reserve(4096);
  harness::record_history(s.cfg, &warm);
  sim::Cycle end_a = 0;
  {
    const harness::RecordResult a = harness::record_history(s.cfg, &p1);
    ASSERT_TRUE(a.completed);
    ASSERT_LE(a.history.size(), first.capacity());
    end_a = a.end_time;
    first.assign(a.history.begin(), a.history.end());  // no reallocation
  }
  const harness::RecordResult b = harness::record_history(s.cfg, &p2);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(end_a, b.end_time);
  ASSERT_EQ(first.size(), b.history.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].thread, b.history[i].thread) << i;
    EXPECT_EQ(first[i].kind, b.history[i].kind) << i;
    EXPECT_EQ(first[i].arg, b.history[i].arg) << i;
    EXPECT_EQ(first[i].ret, b.history[i].ret) << i;
    EXPECT_EQ(first[i].invoke, b.history[i].invoke) << i;
    EXPECT_EQ(first[i].response, b.history[i].response) << i;
  }
}

TEST(RecordHistory, PerturbationActuallyChangesTheSchedule) {
  const check::Scenario s = base_scenario();
  check::PctPerturber p(s.perturb);
  const harness::RecordResult with = harness::record_history(s.cfg, &p);
  const harness::RecordResult without = harness::record_history(s.cfg);
  ASSERT_TRUE(with.completed);
  ASSERT_TRUE(without.completed);
  // The injected stalls must be visible in the timing (schedule changed).
  EXPECT_NE(with.end_time, without.end_time);
}

// ---- run_scenario ----

TEST(RunScenario, CleanConstructionHasNoViolation) {
  const check::Violation v = check::run_scenario(base_scenario());
  EXPECT_FALSE(v.found) << "[" << v.kind << "] " << v.detail;
}

TEST(RunScenario, TooSmallHorizonReportsHang) {
  check::Scenario s = base_scenario();
  s.cfg.horizon = 5'000;  // far too small for 4x6 ops
  const check::Violation v = check::run_scenario(s);
  ASSERT_TRUE(v.found);
  EXPECT_EQ(v.kind, "hang");
}

TEST(RunScenario, SeededHybCombBugIsDetected) {
  check::Scenario s = base_scenario();
  s.cfg.construction = Construction::kHybComb;
  s.cfg.object = Object::kCounter;
  s.cfg.threads = 4;
  s.cfg.ops_each = 8;
  s.cfg.hyb_bug_drop_every = 2;  // drop every 2nd combined request
  const check::Violation v = check::run_scenario(s);
  ASSERT_TRUE(v.found) << "lost updates must fail the counter checks";
  EXPECT_TRUE(v.kind == "counter" || v.kind == "lin") << v.kind;
}

// ---- explore + shrink end to end ----

TEST(Explore, FindsAndShrinksSeededBug) {
  check::ExploreCfg cfg;
  cfg.seed = 5;
  cfg.budget_seconds = 0;  // bounded by max_schedules only
  cfg.max_schedules = 300;
  cfg.constructions = {Construction::kHybComb};
  cfg.objects = {Object::kCounter};
  cfg.hyb_bug_drop_every = 3;
  const check::ExploreResult r = check::explore(cfg);
  ASSERT_TRUE(r.violation_found)
      << "seeded bug not found in " << r.schedules_run << " schedules";
  EXPECT_TRUE(r.shrunk_violation.found);
  EXPECT_LE(r.shrunk.cfg.threads, 4u);
  EXPECT_LE(r.shrunk.cfg.ops_each, 8u);
  EXPECT_GT(r.shrink_runs, 0u);
  // The shrunk scenario is a standalone deterministic repro.
  const check::Violation v1 = check::run_scenario(r.shrunk);
  const check::Violation v2 = check::run_scenario(r.shrunk);
  ASSERT_TRUE(v1.found);
  EXPECT_EQ(v1.kind, v2.kind);
  EXPECT_EQ(v1.detail, v2.detail);
}

TEST(Explore, CleanSubsetStaysClean) {
  check::ExploreCfg cfg;
  cfg.seed = 9;
  cfg.budget_seconds = 0;
  cfg.max_schedules = 40;
  cfg.constructions = {Construction::kCcSynch, Construction::kMcsLock};
  cfg.objects = {Object::kCounter, Object::kQueue};
  const check::ExploreResult r = check::explore(cfg);
  EXPECT_EQ(r.schedules_run, 40u);
  EXPECT_FALSE(r.violation_found)
      << "[" << r.violation.kind << "] " << r.violation.detail;
  EXPECT_GT(r.ops_checked, 0u);
}

// ---- hmps-repro-v1 ----

TEST(Repro, RoundTripPreservesScenario) {
  check::Scenario s = base_scenario();
  s.cfg.params = check::random_machine(77);  // non-default machine
  s.cfg.faults.seed = 99;
  s.cfg.faults.delay_permille = 120;
  s.cfg.faults.delay_min = 10;
  s.cfg.faults.delay_max = 500;
  s.cfg.hyb_bug_drop_every = 3;
  check::Violation v;
  v.found = true;
  v.kind = "counter";
  v.detail = "two increments returned the same value 7 (lost update)";

  const std::string json = check::repro_to_json(s, v);
  check::Scenario s2;
  check::Violation expect;
  std::string err;
  ASSERT_TRUE(check::repro_from_json(json, &s2, &expect, &err)) << err;

  EXPECT_EQ(s2.cfg.construction, s.cfg.construction);
  EXPECT_EQ(s2.cfg.object, s.cfg.object);
  EXPECT_EQ(s2.cfg.seed, s.cfg.seed);
  EXPECT_EQ(s2.cfg.threads, s.cfg.threads);
  EXPECT_EQ(s2.cfg.ops_each, s.cfg.ops_each);
  EXPECT_EQ(s2.cfg.max_ops, s.cfg.max_ops);
  EXPECT_EQ(s2.cfg.produce_permille, s.cfg.produce_permille);
  EXPECT_EQ(s2.cfg.think_max, s.cfg.think_max);
  EXPECT_EQ(s2.cfg.horizon, s.cfg.horizon);
  EXPECT_EQ(s2.cfg.hyb_bug_drop_every, s.cfg.hyb_bug_drop_every);
  EXPECT_EQ(s2.cfg.params.name, s.cfg.params.name);
  EXPECT_EQ(s2.cfg.params.mesh_w, s.cfg.params.mesh_w);
  EXPECT_EQ(s2.cfg.params.mesh_h, s.cfg.params.mesh_h);
  EXPECT_EQ(s2.cfg.params.udn_buf_words, s.cfg.params.udn_buf_words);
  EXPECT_EQ(s2.cfg.params.ctrl_op_cas, s.cfg.params.ctrl_op_cas);
  EXPECT_EQ(s2.cfg.params.posted_writes, s.cfg.params.posted_writes);
  EXPECT_EQ(s2.cfg.faults.seed, s.cfg.faults.seed);
  EXPECT_EQ(s2.cfg.faults.delay_permille, s.cfg.faults.delay_permille);
  EXPECT_EQ(s2.cfg.faults.delay_max, s.cfg.faults.delay_max);
  EXPECT_EQ(s2.perturb.seed, s.perturb.seed);
  EXPECT_EQ(s2.perturb.nthreads, s.perturb.nthreads);
  EXPECT_EQ(s2.perturb.change_points, s.perturb.change_points);
  EXPECT_EQ(s2.perturb.change_interval, s.perturb.change_interval);
  EXPECT_EQ(s2.perturb.resume_permille, s.perturb.resume_permille);
  EXPECT_EQ(s2.perturb.delay_unit, s.perturb.delay_unit);
  EXPECT_EQ(s2.perturb.point_permille, s.perturb.point_permille);
  EXPECT_EQ(s2.perturb.point_delay_max, s.perturb.point_delay_max);
  EXPECT_TRUE(expect.found);
  EXPECT_EQ(expect.kind, v.kind);
  EXPECT_EQ(expect.detail, v.detail);

  // Serializing the parsed scenario again is a fixed point.
  EXPECT_EQ(check::repro_to_json(s2, expect), json);
}

TEST(Repro, RejectsMalformedInput) {
  check::Scenario s;
  check::Violation expect;
  std::string err;
  EXPECT_FALSE(check::repro_from_json("{", &s, &expect, &err));
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(check::repro_from_json("[1,2,3]", &s, &expect, &err));
  err.clear();
  EXPECT_FALSE(check::repro_from_json(
      R"({"format":"hmps-repro-v99","workload":{}})", &s, &expect, &err));
  EXPECT_NE(err.find("hmps-repro-v1"), std::string::npos) << err;
}

// ---- workload clamping (shared generator rules) ----

TEST(ClampCfg, ServerKindsKeepServerCoreUniprogrammed) {
  harness::RecordCfg cfg;
  cfg.construction = Construction::kMpServer;
  cfg.object = Object::kCounter;
  cfg.params = arch::MachineParams::tilegx36();
  cfg.threads = 63;
  check::clamp_cfg(cfg);
  EXPECT_LE(cfg.threads, cfg.params.cores() - 1);
  EXPECT_GE(cfg.params.udn_buf_words, 3 * cfg.threads + 8);
  // Idempotent: a valid cfg is untouched.
  harness::RecordCfg again = cfg;
  check::clamp_cfg(again);
  EXPECT_EQ(again.threads, cfg.threads);
  EXPECT_EQ(again.params.udn_buf_words, cfg.params.udn_buf_words);
}

TEST(ClampCfg, DirectObjectsIgnoreTheServerRule) {
  harness::RecordCfg cfg;
  cfg.construction = Construction::kMpServer;  // ignored for direct objects
  cfg.object = Object::kLcrq;
  cfg.params = arch::MachineParams::tilegx36();
  cfg.threads = 20;
  check::clamp_cfg(cfg);
  EXPECT_EQ(cfg.threads, 20u);
}

// ---- bounded complete checker ----

TEST(LinearizableBudget, ExhaustionIsInconclusiveNotAVerdict) {
  using harness::OpKind;
  using harness::OpRecord;
  // Three fully overlapping increments: linearizable, but the DFS needs
  // more than one node to prove it.
  std::vector<OpRecord> h = {
      {0, OpKind::kInc, 0, 2, 0, 100},
      {1, OpKind::kInc, 0, 1, 0, 100},
      {2, OpKind::kInc, 0, 0, 0, 100},
  };
  const auto tight = harness::linearizable(h, harness::counter_spec(), 1);
  EXPECT_TRUE(tight.ok);
  EXPECT_TRUE(tight.inconclusive) << tight.reason;
  const auto roomy = harness::linearizable(h, harness::counter_spec(), 10'000);
  EXPECT_TRUE(roomy.ok);
  EXPECT_FALSE(roomy.inconclusive);
}

TEST(LinearizableBudget, RealViolationStillFailsWithinBudget) {
  using harness::OpKind;
  using harness::OpRecord;
  std::vector<OpRecord> lost = {
      {0, OpKind::kInc, 0, 0, 0, 10},
      {1, OpKind::kInc, 0, 0, 5, 15},  // same pre-value twice
  };
  const auto r = harness::linearizable(lost, harness::counter_spec(), 10'000);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.inconclusive);
}

}  // namespace
}  // namespace hmps

// Focused tests for the SimCtx cost accounting: prefetch latency hiding,
// posted-write buffering and same-line coalescing, fence draining, message
// send/receive attribution, and thread placement.
#include <gtest/gtest.h>

#include <atomic>

#include "arch/params.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"

namespace hmps::rt {
namespace {

using sim::Cycle;

struct alignas(kCacheLine) Line {
  Word a{0};
  Word b{0};
};

TEST(Prefetch, HidesMissLatencyWhenEarly) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  Line remote;
  Cycle with_pf = 0, without_pf = 0;
  ex.add_thread([&](SimCtx& ctx) {  // thread 0: dirty the line
    ctx.store(&remote.a, std::uint64_t{1});
  });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(200);
    // Cold load, no prefetch.
    Cycle t0 = ctx.now();
    (void)ctx.load(&remote.a);
    without_pf = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);

  SimExecutor ex2(p, 1);
  Line remote2;
  ex2.add_thread([&](SimCtx& ctx) {
    ctx.store(&remote2.a, std::uint64_t{1});
  });
  ex2.add_thread([&](SimCtx& ctx) {
    ctx.compute(200);
    ctx.prefetch(&remote2.a);
    ctx.compute(100);  // plenty of time for the prefetch to land
    Cycle t0 = ctx.now();
    (void)ctx.load(&remote2.a);
    with_pf = ctx.now() - t0;
  });
  ex2.run_until(sim::kCycleMax);

  EXPECT_GT(without_pf, 20u);
  EXPECT_LT(with_pf, 6u);  // hit + issue only
}

TEST(Prefetch, PartialOverlapStallsForRemainder) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  Line remote;
  Cycle lat = 0;
  ex.add_thread([&](SimCtx& ctx) {
    ctx.store(&remote.a, std::uint64_t{1});
  });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(200);
    ctx.prefetch(&remote.a);
    ctx.compute(5);  // much less than the miss latency
    Cycle t0 = ctx.now();
    (void)ctx.load(&remote.a);
    lat = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_GT(lat, 5u);    // some stall remains
  EXPECT_LT(lat, 60u);   // but less than a full miss + issue
}

TEST(PostedWrites, StoreMissDoesNotStall) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  Line remote;
  Cycle store_cost = 0;
  ex.add_thread([&](SimCtx& ctx) { (void)ctx.load(&remote.a); });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(100);
    Cycle t0 = ctx.now();
    ctx.store(&remote.a, std::uint64_t{7});  // upgrade RMR, posted
    store_cost = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_LE(store_cost, 3u);  // issue cost only; retire in background
}

TEST(PostedWrites, SecondMissStallsOnFullBuffer) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  Line x, y;  // two different lines
  Cycle second_cost = 0;
  ex.add_thread([&](SimCtx& ctx) {
    (void)ctx.load(&x.a);
    (void)ctx.load(&y.a);
  });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(100);
    ctx.store(&x.a, std::uint64_t{1});  // posted
    Cycle t0 = ctx.now();
    ctx.store(&y.a, std::uint64_t{2});  // buffer occupied -> stalls
    second_cost = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_GT(second_cost, 10u);
  EXPECT_GT(ex.machine().core(1).wb_stall, 0u);
}

TEST(PostedWrites, SameLineCoalesces) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  Line x;
  Cycle second_cost = 0;
  ex.add_thread([&](SimCtx& ctx) { (void)ctx.load(&x.a); });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(100);
    ctx.store(&x.a, std::uint64_t{1});  // posted miss
    Cycle t0 = ctx.now();
    ctx.store(&x.b, std::uint64_t{2});  // same line: coalesced, cheap
    second_cost = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_LE(second_cost, 2u);
}

TEST(Fence, DrainsWriteBuffer) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  Line x;
  Cycle fence_cost = 0;
  ex.add_thread([&](SimCtx& ctx) { (void)ctx.load(&x.a); });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(100);
    ctx.store(&x.a, std::uint64_t{1});  // posted, ~40+ cycles in flight
    Cycle t0 = ctx.now();
    ctx.fence();
    fence_cost = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_GT(fence_cost, 20u);  // waited for the drain
}

TEST(Fence, CheapWhenBufferEmpty) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  Cycle fence_cost = 0;
  ex.add_thread([&](SimCtx& ctx) {
    Cycle t0 = ctx.now();
    ctx.fence();
    fence_cost = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(fence_cost, p.fence_cost);
}

TEST(Messaging, ReceiveWaitIsIdleNotStall) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  ex.add_thread([&](SimCtx& ctx) {  // receiver waits first
    std::uint64_t w;
    ctx.receive(&w, 1);
  });
  ex.add_thread([&](SimCtx& ctx) {
    ctx.compute(1000);
    ctx.send(0, {42});
  });
  ex.run_until(sim::kCycleMax);
  const auto& c0 = ex.machine().core(0);
  EXPECT_GT(c0.idle, 500u);
  EXPECT_EQ(c0.stall, 0u);
}

TEST(Messaging, SendChargesInjectionOnly) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  Cycle send_cost = 0;
  ex.add_thread([&](SimCtx& ctx) {  // thread 0 on core 0
    ctx.compute(300);  // let the peer reach its far corner first
    Cycle t0 = ctx.now();
    ctx.send(1, {1, 2, 3});  // to the far-corner thread
    send_cost = ctx.now() - t0;
  });
  ex.add_thread([&](SimCtx& ctx) {  // thread 1: sits at the opposite corner
    ctx.migrate(35, 0, /*cost=*/0);
    std::uint64_t w[3];
    ctx.receive(w, 3);
  });
  ex.run_until(sim::kCycleMax);
  // The sender pays injection + word serialization only, not the wire.
  EXPECT_EQ(send_cost, p.udn_inject + 3 * p.udn_per_word_wire);
}

TEST(Placement, DefaultPinsThreadToCore) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  rt::Tid seen0 = 99, seen37 = 99;
  std::uint32_t q37 = 99;
  for (int i = 0; i < 38; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      if (i == 0) seen0 = ctx.core();
      if (i == 37) {
        seen37 = ctx.core();
        q37 = ctx.queue_of_thread(37);
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(seen0, 0u);
  EXPECT_EQ(seen37, 1u);  // 37 % 36
  EXPECT_EQ(q37, 1u);     // 37 / 36: second demux queue
}

TEST(Placement, MigrateMovesMessageIdentity) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  std::uint64_t got = 0;
  ex.add_thread([&](SimCtx& ctx) {
    ctx.migrate(17, 2);
    ctx.send(1, {ctx.tid()});     // tell the peer we are ready
    got = ctx.receive1();          // must arrive at core 17, queue 2
  });
  ex.add_thread([&](SimCtx& ctx) {
    const std::uint64_t who = ctx.receive1();
    ctx.send(static_cast<rt::Tid>(who), {777});
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(got, 777u);
}

TEST(Accounting, AtomicStallCounted) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  Word x{0};
  ex.add_thread([&](SimCtx& ctx) {
    for (int i = 0; i < 10; ++i) (void)ctx.faa(&x, 1);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_GT(ex.machine().core(0).atomic_stall, 100u);
  EXPECT_EQ(ex.machine().core(0).atomics, 10u);
}

TEST(Accounting, CasFailureCheaperThanSuccess) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  SimExecutor ex(p, 1);
  Word x{5};
  Cycle ok_cost = 0, fail_cost = 0;
  ex.add_thread([&](SimCtx& ctx) {
    Cycle t0 = ctx.now();
    EXPECT_TRUE(ctx.cas(&x, std::uint64_t{5}, std::uint64_t{6}));
    ok_cost = ctx.now() - t0;
    ctx.compute(200);
    t0 = ctx.now();
    EXPECT_FALSE(ctx.cas(&x, std::uint64_t{5}, std::uint64_t{7}));
    fail_cost = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_LT(fail_cost, ok_cost);
}

TEST(Accounting, XeonAtomicsStayLocal) {
  SimExecutor ex(arch::MachineParams::xeon10(), 1);
  Word x{0};
  Cycle second = 0;
  ex.add_thread([&](SimCtx& ctx) {
    (void)ctx.faa(&x, 1);
    Cycle t0 = ctx.now();
    (void)ctx.faa(&x, 1);  // line now owned locally: cheap RMW
    second = ctx.now() - t0;
  });
  ex.run_until(sim::kCycleMax);
  const auto& p = arch::MachineParams::xeon10();
  EXPECT_LE(second, p.l_hit + p.atomic_local_extra + 2 * p.issue_cost);
}

}  // namespace
}  // namespace hmps::rt

file(REMOVE_RECURSE
  "CMakeFiles/machine_probe.dir/machine_probe.cpp.o"
  "CMakeFiles/machine_probe.dir/machine_probe.cpp.o.d"
  "machine_probe"
  "machine_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Open-loop service harness tests (docs/SERVICE.md): deterministic arrival
// processes, Zipf popularity, admission control / shed accounting, exact
// tail-quantile reservoirs, svc-queue cycle attribution, and byte-identical
// artifacts between serial and pooled execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/run_pool.hpp"
#include "harness/service.hpp"
#include "obs/json.hpp"
#include "sim/stats.hpp"

namespace {

using namespace hmps;
using harness::Approach;
using harness::ArrivalGen;
using harness::ArrivalModel;
using harness::ServiceCfg;
using harness::ShedPolicy;
using harness::ZipfSampler;
using sim::Cycle;

ServiceCfg small_cfg() {
  ServiceCfg cfg;
  cfg.base.warmup = 10'000;
  cfg.base.window = 30'000;
  cfg.base.reps = 1;
  cfg.base.seed = 7;
  cfg.sessions = 3;
  cfg.objects = 4;
  return cfg;
}

// ---- arrival processes ----------------------------------------------------

TEST(ArrivalGen, SameSeedSameSchedule) {
  for (ArrivalModel m : {ArrivalModel::kPoisson, ArrivalModel::kMmpp}) {
    ServiceCfg cfg = small_cfg();
    cfg.arrival = m;
    cfg.offered_mops = 6.0;
    ArrivalGen a(cfg, 99), b(cfg, 99);
    Cycle ta = 0, tb = 0;
    for (int i = 0; i < 5'000; ++i) {
      ta = a.next(ta);
      tb = b.next(tb);
      ASSERT_EQ(ta, tb) << "arrival " << i;
      ASSERT_GT(ta, 0u);
    }
    // A different seed must give a different schedule.
    ArrivalGen c(cfg, 100);
    Cycle tc = 0;
    int same = 0;
    ta = 0;
    ArrivalGen a2(cfg, 99);
    for (int i = 0; i < 100; ++i) {
      ta = a2.next(ta);
      tc = c.next(tc);
      same += (ta == tc);
    }
    EXPECT_LT(same, 100);
  }
}

TEST(ArrivalGen, RealizedRateMatchesOfferedLoad) {
  // Long-run arrival rate must match the offered load for both models —
  // for the MMPP that checks the quiet/burst rate split against the
  // time-averaged target.
  for (ArrivalModel m : {ArrivalModel::kPoisson, ArrivalModel::kMmpp}) {
    ServiceCfg cfg = small_cfg();
    cfg.arrival = m;
    cfg.offered_mops = 4.0;  // 1 arrival per 300 cycles
    ArrivalGen g(cfg, 5);
    Cycle t = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) t = g.next(t);
    const double mean_gap = static_cast<double>(t) / n;
    EXPECT_NEAR(mean_gap, 300.0, 15.0) << arrival_model_name(m);
  }
}

TEST(ArrivalGen, MmppActuallyBursts) {
  // Inter-arrival gaps under the MMPP must show both regimes: many gaps far
  // below the Poisson mean (bursts) and a heavier tail of long quiet gaps.
  ServiceCfg cfg = small_cfg();
  cfg.arrival = ArrivalModel::kMmpp;
  cfg.offered_mops = 4.0;
  cfg.burst = 8.0;
  ArrivalGen g(cfg, 11);
  Cycle t = 0;
  int below_eighth = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const Cycle nt = g.next(t);
    below_eighth += (nt - t) * 8 < 300;
    t = nt;
  }
  // Under plain Poisson at mean 300, P(gap < 37.5) ~ 12%; the MMPP spends
  // its burst state at 8x the quiet rate, pushing that well above 20%.
  EXPECT_GT(below_eighth, n / 5);
}

// ---- Zipf popularity ------------------------------------------------------

TEST(ZipfSampler, SkewsTowardLowRanks) {
  const std::uint32_t n = 8;
  ZipfSampler z(n, 0.9);
  sim::Xoshiro256 rng(3);
  std::vector<int> hits(n, 0);
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) {
    const double u = ((rng() >> 11) + 1) * 0x1.0p-53;
    const std::uint32_t k = z.sample(u);
    ASSERT_LT(k, n);
    ++hits[k];
  }
  // Monotone popularity and the right head mass: p(0) = (1/1^0.9) / H ~ 29%.
  for (std::uint32_t k = 1; k < n; ++k) EXPECT_LE(hits[k], hits[k - 1]);
  EXPECT_NEAR(static_cast<double>(hits[0]) / draws, z.cdf(0), 0.01);
  EXPECT_GT(hits[0], 3 * hits[n - 1]);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  const std::uint32_t n = 4;
  ZipfSampler z(n, 0.0);
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(z.cdf(k), static_cast<double>(k + 1) / n, 1e-12);
  }
}

// ---- reservoir vs exact offline sort --------------------------------------

// Offline reference: linear interpolation between adjacent order
// statistics of a sorted vector (R type-7), same definition as
// Reservoir::quantile but computed from the full stream.
std::uint64_t offline_quantile(const std::vector<std::uint64_t>& sorted,
                               double q) {
  const double r = q * static_cast<double>(sorted.size() - 1);
  const std::size_t i = static_cast<std::size_t>(r);
  if (i >= sorted.size() - 1) return sorted.back();
  const double frac = r - static_cast<double>(i);
  const double lo = static_cast<double>(sorted[i]);
  const double hi = static_cast<double>(sorted[i + 1]);
  return static_cast<std::uint64_t>(lo + (hi - lo) * frac);
}

TEST(Reservoir, ExactQuantilesUnderCapacity) {
  // Below capacity the reservoir keeps every sample, so p50/p99/p999 must
  // equal the exact interpolated quantiles of an offline sort.
  sim::Reservoir res;
  std::vector<std::uint64_t> all;
  sim::Xoshiro256 rng(17);
  for (int i = 0; i < 20'000; ++i) {
    // Long-tailed synthetic sojourns.
    const std::uint64_t v = 50 + rng.below(200) + (rng.below(100) == 0
                                                       ? 10'000 + rng.below(5'000)
                                                       : 0);
    res.add(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(res.count(), all.size());
  EXPECT_EQ(res.kept(), all.size());
  EXPECT_EQ(res.quantile(0.5), offline_quantile(all, 0.5));
  EXPECT_EQ(res.quantile(0.99), offline_quantile(all, 0.99));
  EXPECT_EQ(res.quantile(0.999), offline_quantile(all, 0.999));
  EXPECT_EQ(res.quantile(1.0), all.back());
}

TEST(Reservoir, DecimationBoundaryMatchesOfflineSort) {
  // The regression this pins: at 2^16 + 1 arrivals the default-capacity
  // reservoir halves for the first time (32769 kept samples), and the old
  // nearest-rank rounding was off by one sample against the offline sort
  // whenever frac(q * (n - 1)) landed in [0.25, 0.5) — e.g. p99 of the
  // monotone stream 0..65536 came back 64880 instead of 64881 (the exact
  // rank is 64880.64). Interpolated quantiles of the stride-2 thinning
  // reproduce the offline interpolated quantiles exactly, at the boundary
  // sizes 2^16 - 1 (exact, no decimation), 2^16 (exactly full) and
  // 2^16 + 1 (first halving).
  for (const std::uint64_t n :
       {(std::uint64_t{1} << 16) - 1, std::uint64_t{1} << 16,
        (std::uint64_t{1} << 16) + 1}) {
    sim::Reservoir res;  // default capacity 2^16
    std::vector<std::uint64_t> all;
    all.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      res.add(i);  // monotone: every value is its own rank
      all.push_back(i);
    }
    EXPECT_EQ(res.count(), n);
    EXPECT_EQ(res.kept(), n <= (std::uint64_t{1} << 16)
                              ? static_cast<std::size_t>(n)
                              : std::size_t{32769});
    for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
      EXPECT_EQ(res.quantile(q), offline_quantile(all, q))
          << "n=" << n << " q=" << q;
    }
  }
}

TEST(Reservoir, DecimationStaysDeterministicAndClose) {
  // Past capacity the reservoir decimates systematically: still
  // deterministic (two identical streams agree exactly) and the p99 of the
  // kept subsequence tracks the exact p99 of the full stream.
  sim::Reservoir a(1 << 10), b(1 << 10);
  std::vector<std::uint64_t> all;
  sim::Xoshiro256 rng(23);
  for (int i = 0; i < 60'000; ++i) {
    const std::uint64_t v = 100 + rng.below(1'000);
    a.add(v);
    b.add(v);
    all.push_back(v);
  }
  EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
  EXPECT_LE(a.kept(), std::size_t{1} << 10);
  EXPECT_EQ(a.count(), all.size());
  std::sort(all.begin(), all.end());
  const std::uint64_t exact99 = all[static_cast<std::size_t>(
      0.99 * static_cast<double>(all.size() - 1) + 0.5)];
  EXPECT_NEAR(static_cast<double>(a.quantile(0.99)),
              static_cast<double>(exact99), 0.02 * exact99);
}

// ---- end-to-end service runs ----------------------------------------------

TEST(ServiceRun, SameSeedByteIdenticalResults) {
  ServiceCfg cfg = small_cfg();
  cfg.offered_mops = 6.0;
  for (Approach a : {Approach::kMpServer, Approach::kHybComb,
                     Approach::kShmServer, Approach::kCcSynch}) {
    const auto r1 = harness::run_service(cfg, a);
    const auto r2 = harness::run_service(cfg, a);
    EXPECT_EQ(r1.total_ops, r2.total_ops);
    EXPECT_EQ(r1.arrivals, r2.arrivals);
    EXPECT_EQ(r1.shed_ops, r2.shed_ops);
    EXPECT_EQ(r1.mops, r2.mops);
    EXPECT_EQ(r1.lat_p99, r2.lat_p99);
    EXPECT_EQ(r1.lat_p999, r2.lat_p999);
    EXPECT_EQ(r1.queue_delay_mean, r2.queue_delay_mean);
    EXPECT_EQ(r1.service_mean, r2.service_mean);
    EXPECT_GT(r1.total_ops, 0u) << harness::approach_name(a);
  }
}

TEST(ServiceRun, SojournSplitsIntoQueueDelayPlusService) {
  ServiceCfg cfg = small_cfg();
  cfg.offered_mops = 8.0;
  const auto r = harness::run_service(cfg, Approach::kMpServer);
  ASSERT_GT(r.total_ops, 0u);
  // Means are over the same completion population, so the split is exact
  // up to floating-point accumulation.
  EXPECT_NEAR(r.queue_delay_mean + r.service_mean, r.lat_mean,
              1e-6 * r.lat_mean + 1e-9);
  EXPECT_GE(r.lat_p999, r.lat_p99);
  EXPECT_GE(r.lat_p99, r.lat_p50);
  EXPECT_GE(r.lat_max, r.lat_p999);
}

TEST(ServiceRun, OverloadShedsAndDegradesTail) {
  // Push HybComb far past capacity with a small admission queue: arrivals
  // must be shed, and p99 must degrade versus a light load.
  ServiceCfg light = small_cfg();
  light.offered_mops = 2.0;
  ServiceCfg heavy = light;
  heavy.offered_mops = 40.0;
  heavy.queue_cap = 16;
  const auto rl = harness::run_service(light, Approach::kHybComb);
  const auto rh = harness::run_service(heavy, Approach::kHybComb);
  EXPECT_EQ(rl.shed_ops, 0u);
  EXPECT_GT(rh.shed_ops, 0u);
  EXPECT_GT(rh.lat_p99, rl.lat_p99);
  // Achieved throughput saturates below the offered load.
  EXPECT_LT(rh.mops, rh.offered_mops * 0.9);
}

TEST(ServiceRun, ShedPoliciesAccountEveryArrival) {
  ServiceCfg cfg = small_cfg();
  cfg.offered_mops = 40.0;
  cfg.queue_cap = 8;
  // Tail drop: every generated arrival is either admitted or shed.
  cfg.shed = ShedPolicy::kDropNewest;
  const auto rn = harness::run_service(cfg, Approach::kCcSynch);
  ASSERT_GT(rn.shed_ops, 0u);
  const double offered_n = rn.offered_mops * 30'000 / 1200.0;
  EXPECT_NEAR(static_cast<double>(rn.arrivals + rn.shed_ops), offered_n,
              1.0);
  // Drop-oldest admits everything (evicting backlog instead), so admitted
  // equals offered and the evictions show up in shed_ops.
  cfg.shed = ShedPolicy::kDropOldest;
  const auto ro = harness::run_service(cfg, Approach::kCcSynch);
  ASSERT_GT(ro.shed_ops, 0u);
  EXPECT_NEAR(static_cast<double>(ro.arrivals),
              ro.offered_mops * 30'000 / 1200.0, 1.0);
}

TEST(ServiceRun, SvcQueueBucketKeepsSumInvariant) {
  ServiceCfg cfg = small_cfg();
  cfg.offered_mops = 30.0;  // saturating: queueing delay must materialize
  obs::MetricsRegistry reg;
  ServiceCfg c = cfg;
  c.base.obs.metrics = &reg;
  c.base.obs.label = "svc";
  harness::run_service(c, Approach::kHybComb);
  const obs::JsonValue* runs = reg.root().find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items().size(), 1u);
  const obs::JsonValue& run = runs->items()[0];
  const obs::JsonValue* accts = run.find("cycle_accounts");
  ASSERT_NE(accts, nullptr);
  std::uint64_t svc_queue_total = 0;
  for (std::size_t i = 0; i < accts->items().size(); ++i) {
    const obs::JsonValue& acc = accts->items()[i];
    std::uint64_t sum = 0;
    for (const auto& [key, val] : acc.members()) {
      if (key != "total") sum += val.as_uint();
    }
    EXPECT_EQ(sum, acc.find("total")->as_uint()) << "core " << i;
    svc_queue_total += acc.find("svc-queue")->as_uint();
  }
  // At saturation the session cores spend real time on queued arrivals.
  EXPECT_GT(svc_queue_total, 0u);
}

// ---- serial vs pooled artifact identity -----------------------------------

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void run_service_sweep(const std::string& json, std::uint32_t jobs) {
  const char* argv[] = {const_cast<char*>("svc_sweep")};
  harness::BenchArgs args;
  args.json = json;
  harness::RunArtifacts art(args, "svc_sweep", 1, const_cast<char**>(argv));
  harness::RunPool pool(art, jobs);
  for (double load : {3.0, 9.0, 27.0}) {
    for (Approach a : {Approach::kMpServer, Approach::kHybComb}) {
      ServiceCfg cfg = small_cfg();
      cfg.offered_mops = load;
      pool.submit(std::string(harness::approach_name(a)) + "/o" +
                      std::to_string(static_cast<int>(load)),
                  [cfg, a](const harness::RunObs& obs) {
                    ServiceCfg c = cfg;
                    c.base.obs = obs;
                    return harness::run_service(c, a);
                  });
    }
  }
  pool.drain();
  art.finalize();
}

TEST(ServiceRun, PooledArtifactByteIdenticalToSerial) {
  const std::string sj = ::testing::TempDir() + "hmps_svc_serial.json";
  const std::string pj = ::testing::TempDir() + "hmps_svc_pool.json";
  run_service_sweep(sj, 1);
  run_service_sweep(pj, 4);
  const std::string serial = slurp(sj);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, slurp(pj));
}

}  // namespace

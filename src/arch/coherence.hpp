// Functional-timing directory cache-coherence model.
//
// The model maintains, per 64-byte line, the single-writer/multiple-reader
// invariant of Sorin et al. (the system model of the paper, Section 2):
// at any time either one core owns the line read-write (M) or a set of cores
// shares it read-only (S), with the authoritative copy otherwise at the
// line's home tile (H).
//
// There are no transient states: each access atomically updates the line
// state and returns the latency the requesting core observes. Per-line
// occupancy serializes back-to-back transactions on a hot line, which is
// what bounds the throughput of ping-ponging flags and contended CAS words.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/combining.hpp"
#include "arch/params.hpp"
#include "arch/profiler.hpp"
#include "arch/topology.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

using sim::Cycle;
using sim::Tid;

/// Atomic operation class: unconditional RMWs (fetch-and-add, exchange)
/// stream through the controller's update pipeline; CAS holds a slot for
/// its read-compare-write and is far more expensive under contention (the
/// false serialization of paper Section 5.4).
enum class AtomicKind { kFaa, kCasSuccess, kCasFail };

/// Per-access classification, used for core stall accounting and event
/// counters (Fig. 4a reproduces the stall share from these).
struct AccessCost {
  Cycle latency = 0;   ///< total cycles until the value is usable
  bool remote = false; ///< true iff this access was an RMR
};

class CoherenceModel {
 public:
  CoherenceModel(const MachineParams& p, const MeshTopology& topo)
      : p_(p), topo_(topo), combining_(p, topo) {
    keys_.assign(kInitialCap, kEmptyKey);
    slots_.resize(kInitialCap);
    mask_ = kInitialCap - 1;
  }

  /// Core `c` reads the line at address `addr` at time `now`.
  AccessCost read(Tid c, std::uint64_t addr, Cycle now);

  /// Core `c` writes the line (acquires read-write ownership).
  AccessCost write(Tid c, std::uint64_t addr, Cycle now);

  /// Core `c` executes an atomic RMW on the line. With atomics_at_ctrl the
  /// operation is shipped to the line's memory controller (TILE-Gx);
  /// otherwise it behaves as a write plus a local RMW penalty (x86-like).
  /// `ctrl_wait_out`, if non-null, receives the queueing delay spent waiting
  /// for the controller (false-serialization metric).
  AccessCost atomic(Tid c, std::uint64_t addr, Cycle now,
                    AtomicKind kind = AtomicKind::kCasSuccess,
                    Cycle* ctrl_wait_out = nullptr);

  /// Non-binding prefetch: performs the read transaction so a subsequent
  /// read hits, and reports when the data will have arrived.
  Cycle prefetch(Tid c, std::uint64_t addr, Cycle now) {
    return now + read(c, addr, now).latency;
  }

  /// Re-asserts read-write ownership without a transaction. Models a store
  /// buffer coalescing a second store into a line whose ownership
  /// acquisition is still in flight: an interleaved remote read is ordered
  /// after the drain, so the writer keeps the line (the reader will simply
  /// miss again).
  void own_silently(Tid c, std::uint64_t addr) {
    Line& l = line_at(addr);
    l.state = State::kModified;
    l.owner = c;
    l.sharers = 0;
  }

  std::uint64_t line_of(std::uint64_t addr) const {
    return addr / p_.line_bytes;
  }

  // --- event counters (global; reset per measurement window) ---
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t rmr_reads = 0;
    std::uint64_t rmr_writes = 0;
    std::uint64_t atomics = 0;
    std::uint64_t invalidations = 0;
    Cycle ctrl_wait_total = 0;
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  /// In-network combining fabric (active iff params.noc_combining; its
  /// counters stay zero otherwise). Exposed for metrics and tests.
  const CombiningFabric& combining() const { return combining_; }
  void reset_combining_counters() { combining_.reset_counters(); }

  /// Attaches a hot-line profiler (nullptr detaches). Not owned. The
  /// profiler's label() divisor is synced to this machine's line size so
  /// labels land on the same lines the model accounts to.
  void attach_profiler(CoherenceProfiler* p) {
    prof_ = p;
    if (p) p->set_line_bytes(p_.line_bytes);
  }
  CoherenceProfiler* profiler() { return prof_; }

  /// Drops all line state (fresh caches). Mostly for tests. First-touch
  /// home assignment restarts too, so a reset model replays identically.
  void reset_lines() {
    keys_.assign(keys_.size(), kEmptyKey);
    count_ = 0;
    memo_key_ = kEmptyKey;
    next_line_id_ = 0;
    for (auto& c : ctrl_busy_until_) c = 0;
  }

 private:
  enum class State : std::uint8_t { kHome, kShared, kModified };

  struct Line {
    State state = State::kHome;
    Tid owner = sim::kNoTid;      ///< valid when kModified
    std::uint64_t sharers = 0;    ///< bitmask over cores (<= 64 cores)
    Cycle busy_until = 0;         ///< line-occupancy serialization point
    Tid home = 0;                 ///< home tile, fixed at first touch
    std::uint32_t ctrl = 0;       ///< memory controller, fixed at first touch
  };

  /// Looks up (or creates) the line covering `addr`. Home tile and memory
  /// controller are hashed from a *dense first-touch id*, not from the raw
  /// line address: simulated addresses are host pointer addresses, so
  /// hashing them directly would let ASLR move lines between homes and make
  /// simulated timings vary run to run. First-touch order is fixed by the
  /// (deterministic) simulation itself, so this keeps the TILE-Gx
  /// hash-for-home spread while making coherence timing reproducible across
  /// processes.
  ///
  /// Storage is an insert-only open-addressing table (linear probing over a
  /// flat key array, values in a parallel array) with a one-entry memo for
  /// back-to-back accesses to the same line — this lookup runs once per
  /// simulated memory operation, and the std::unordered_map it replaced was
  /// one of the hottest functions of a full sweep. Lines are never erased
  /// (only reset wholesale), so probing needs no tombstones, and returned
  /// Line& references never outlive one access, so growth is safe.
  Line& line_at(std::uint64_t addr) {
    const std::uint64_t key = line_of(addr);
    if (key == memo_key_) return slots_[memo_idx_];
    std::size_t i = probe(key);
    if (keys_[i] != key) {  // first touch
      if ((count_ + 1) * 2 > keys_.size()) {
        grow();
        i = probe(key);
      }
      keys_[i] = key;
      slots_[i] = Line{};
      slots_[i].home = topo_.home_tile(next_line_id_);
      slots_[i].ctrl = topo_.home_ctrl(next_line_id_);
      ++next_line_id_;
      ++count_;
    }
    memo_key_ = key;
    memo_idx_ = i;
    return slots_[i];
  }

  /// First slot holding `key`, or the empty slot where it would insert.
  std::size_t probe(std::uint64_t key) const {
    std::size_t i =
        static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 32) & mask_;
    while (keys_[i] != key && keys_[i] != kEmptyKey) i = (i + 1) & mask_;
    return i;
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<Line> old_slots = std::move(slots_);
    const std::size_t cap = old_keys.size() * 2;
    keys_.assign(cap, kEmptyKey);
    slots_.assign(cap, Line{});
    mask_ = cap - 1;
    memo_key_ = kEmptyKey;
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == kEmptyKey) continue;
      const std::size_t i = probe(old_keys[j]);
      keys_[i] = old_keys[j];
      slots_[i] = old_slots[j];
    }
  }

  /// Serializes on the line and returns the queueing delay.
  Cycle acquire_line(Line& l, Cycle now) {
    const Cycle wait = l.busy_until > now ? l.busy_until - now : 0;
    l.busy_until = now + wait + p_.line_occupancy;
    return wait;
  }

  Cycle inval_cost(std::uint64_t sharers, Tid except);

  static constexpr std::size_t kInitialCap = 1024;  ///< power of two
  /// Host pointers are never within a line of the address-space top, so no
  /// real line number collides with the empty-slot sentinel.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  const MachineParams& p_;
  const MeshTopology& topo_;
  CoherenceProfiler* prof_ = nullptr;
  std::vector<std::uint64_t> keys_;  ///< open-addressing key array
  std::vector<Line> slots_;          ///< values, parallel to keys_
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
  std::uint64_t memo_key_ = kEmptyKey;  ///< last line looked up
  std::size_t memo_idx_ = 0;
  std::uint64_t next_line_id_ = 0;
  Cycle ctrl_busy_until_[8] = {};
  CombiningFabric combining_;
  Counters counters_;
};

}  // namespace hmps::arch

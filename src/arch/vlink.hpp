// Virtual-Link-style MPMC channel fabric (docs/MODEL.md §12).
//
// A third transport next to the UDN and plain shared memory, modeled after
// the Virtual-Link line of work (PAPERS.md): a memory-mapped many-to-many
// channel anchored at a "home" tile. Producers push frames toward the home
// ring and consumers pull frames out of it; neither side ever bounces a
// cache line off the other, so the coherence ping-pong of a shared-memory
// queue disappears without dedicating a hardware receive buffer per thread
// the way the UDN does.
//
// Model shape (mirrors arch::UdnModel so the two transports are directly
// comparable):
//   * Each channel owns a fixed-capacity word ring at its home tile.
//     Capacity is enforced with credits: a push blocks while the channel
//     cannot absorb the whole frame (frames are never dropped).
//   * push() stages the payload immediately and schedules a commit event at
//     the arrival time: injection + per-word wire serialization at the
//     producer, the NoC traversal to the home tile (through the shared
//     NocModel when link contention is modeled, so vlink traffic heats the
//     same links and heatmaps as UDN traffic), then ingress-port
//     serialization at the home ring. The producer itself pays only the
//     injection cost — pushes are asynchronous.
//   * pop() is frame-atomic: a consumer takes all `n` words of a frame or
//     blocks; concurrent consumers never interleave words of one frame.
//     Woken consumers have their words pre-claimed by the commit event, so
//     a burst of same-cycle wakeups cannot promise one frame twice. The
//     consumer pays a request trip to the home tile, egress-port
//     serialization, and the data trip back.
//   * Fault injection applies exactly as for the UDN: delivery delay and
//     link jitter on the push path (per-hop jitter moves into the NoC when
//     link contention is on).
//
// push()/pop() must run inside scheduler fibers; commits are ordinary
// discrete events.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "arch/noc.hpp"
#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "arch/udn.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

class VlinkFabric {
 public:
  using ChannelId = std::uint32_t;

  /// Shares the UDN's NocModel so both transports contend for (and account
  /// to) the same links.
  VlinkFabric(const MachineParams& p, const MeshTopology& topo,
              sim::Scheduler& sched, NocModel& noc)
      : p_(p), topo_(topo), sched_(sched), noc_(noc) {}

  /// Creates a channel anchored at `home` holding up to `capacity` words.
  ChannelId create_channel(Tid home, std::size_t capacity);

  /// Pushes an `n`-word frame. Blocks the calling fiber while the channel
  /// lacks capacity; otherwise costs injection + per-word serialization.
  void push(Tid src, ChannelId ch, const std::uint64_t* words, std::size_t n);

  /// Pops exactly `n` words (one frame), blocking until a whole frame is
  /// available. Frame-atomic across concurrent consumers.
  void pop(Tid dst, ChannelId ch, std::uint64_t* out, std::size_t n);

  /// True iff no words are visible to a new consumer.
  bool empty(ChannelId ch) const { return chans_[ch].ring.empty(); }

  std::size_t words_visible(ChannelId ch) const {
    return chans_[ch].ring.size();
  }

  /// Words currently holding credits (resident or in flight) — telemetry
  /// gauge, mirror of UdnModel::buffer_occupancy.
  std::size_t channel_occupancy(ChannelId ch) const {
    return chans_[ch].reserved;
  }

  void attach_faults(sim::FaultInjector* f) { faults_ = f; }

  struct Counters {
    std::uint64_t frames = 0;
    std::uint64_t words = 0;
    std::uint64_t producer_blocks = 0;  ///< pushes that hit backpressure
    std::uint64_t consumer_waits = 0;   ///< pops that found no whole frame
    std::uint64_t peak_occupancy = 0;   ///< max words credited to one channel
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 private:
  struct Waiter {
    sim::Scheduler::FiberId fiber;
    std::size_t need;
    /// Poppers only: destination for the frame. The commit event copies the
    /// words out at wake time — frames hand over in strict FIFO order and a
    /// racing fast-path pop can never split a blocked consumer's frame.
    std::uint64_t* out = nullptr;
  };

  /// Index-fronted FIFO, same zero-steady-state-allocation shape as the
  /// UDN's waiter pool.
  struct WaiterFifo {
    std::vector<Waiter> items;
    std::size_t head = 0;
    bool empty() const { return head == items.size(); }
    const Waiter& front() const { return items[head]; }
    void push_back(Waiter w) { items.push_back(w); }
    void pop_front() {
      if (++head == items.size()) {
        items.clear();
        head = 0;
      }
    }
  };

  struct Channel {
    Tid home = 0;
    std::size_t cap = 0;       ///< credit capacity in words
    WordRing ring;
    std::size_t reserved = 0;  ///< words staged, in flight, or resident
    Cycle enq_busy = 0;        ///< ingress-port serialization at the home
    Cycle deq_busy = 0;        ///< egress-port serialization at the home
    WaiterFifo push_waiters;
    WaiterFifo pop_waiters;
  };

  /// Hands whole frames to blocked consumers in FIFO order (copying the
  /// words out immediately) and wakes them; stops at the first consumer
  /// whose frame is still incomplete.
  void wake_poppers(Channel& c);

  /// Wakes blocked producers while credits suffice (woken producers
  /// re-check, as UDN senders do).
  void wake_pushers(Channel& c);

  const MachineParams& p_;
  const MeshTopology& topo_;
  sim::Scheduler& sched_;
  NocModel& noc_;
  sim::FaultInjector* faults_ = nullptr;
  /// Deque, NOT vector: push()/pop() hold a Channel& across fiber
  /// suspension, and constructions create channels lazily mid-run
  /// (VlinkServer reply channels) — growth must never invalidate a blocked
  /// fiber's reference.
  std::deque<Channel> chans_;
  Counters counters_;
};

}  // namespace hmps::arch

// Native (real-hardware) micro-benchmarks via google-benchmark: the cost of
// the primitives the algorithms are built from, on the host machine.
// Complements the simulator benches — these are the "message passing
// emulated over shared memory" costs the paper contrasts with hardware
// messaging. Single-threaded variants only, since this container exposes
// one hardware thread.
#include <benchmark/benchmark.h>

#include <atomic>

#include "ds/counter.hpp"
#include "ds/lcrq.hpp"
#include "ds/queue.hpp"
#include "ds/stack.hpp"
#include "runtime/mpsc_channel.hpp"
#include "runtime/native_context.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/locks.hpp"
#include "sync/universal.hpp"

using namespace hmps;
using rt::NativeCtx;

namespace {

rt::NativeEnv& env() {
  static rt::NativeEnv e(4);
  return e;
}

NativeCtx& ctx() {
  static NativeCtx c(env(), 0, 42);
  return c;
}

void BM_AtomicFaa(benchmark::State& state) {
  std::atomic<std::uint64_t> x{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.fetch_add(1, std::memory_order_acq_rel));
  }
}
BENCHMARK(BM_AtomicFaa);

void BM_AtomicCas(benchmark::State& state) {
  std::atomic<std::uint64_t> x{0};
  std::uint64_t v = 0;
  for (auto _ : state) {
    x.compare_exchange_strong(v, v + 1, std::memory_order_acq_rel);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AtomicCas);

void BM_ChannelSendRecv(benchmark::State& state) {
  rt::MpscChannel ch(64);
  const std::uint64_t msg[3] = {1, 2, 3};
  std::uint64_t out[rt::MpscChannel::kMaxWords];
  for (auto _ : state) {
    ch.send(msg, 3);
    benchmark::DoNotOptimize(ch.try_recv(out));
  }
}
BENCHMARK(BM_ChannelSendRecv);

void BM_CcSynchUncontended(benchmark::State& state) {
  ds::SeqCounter c;
  sync::CcSynch<NativeCtx> cc(&c, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cc.apply(ctx(), ds::counter_inc<NativeCtx>, 0));
  }
}
BENCHMARK(BM_CcSynchUncontended);

void BM_HybCombUncontended(benchmark::State& state) {
  ds::SeqCounter c;
  sync::HybComb<NativeCtx> hyb(&c, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hyb.apply(ctx(), ds::counter_inc<NativeCtx>, 0));
  }
}
BENCHMARK(BM_HybCombUncontended);

void BM_McsUncontended(benchmark::State& state) {
  ds::SeqCounter c;
  sync::LockUc<NativeCtx, sync::McsLock<NativeCtx>> mcs(&c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mcs.apply(ctx(), ds::counter_inc<NativeCtx>, 0));
  }
}
BENCHMARK(BM_McsUncontended);

void BM_LcrqEnqDeq(benchmark::State& state) {
  ds::Lcrq<NativeCtx> q(7, 64);
  for (auto _ : state) {
    q.enqueue(ctx(), 5);
    benchmark::DoNotOptimize(q.dequeue(ctx()));
  }
}
BENCHMARK(BM_LcrqEnqDeq);

void BM_TreiberPushPop(benchmark::State& state) {
  ds::TreiberStack<NativeCtx> s(64);
  for (auto _ : state) {
    s.push(ctx(), 5);
    benchmark::DoNotOptimize(s.pop(ctx()));
  }
}
BENCHMARK(BM_TreiberPushPop);

}  // namespace

BENCHMARK_MAIN();

#!/usr/bin/env bash
# Builds everything, runs the full test suite, every paper-figure bench and
# every example, capturing outputs under results/. This is the one-shot
# reproduction entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results

echo "== tests =="
ctest --test-dir build --output-on-failure 2>&1 | tee results/ctest.txt

echo "== benches =="
# stdout goes to bench_all.txt; stderr (progress lines, warnings) is kept
# visible AND captured — a silently swallowed bench failure here once cost a
# debugging session. Every hmps bench also drops its hmps-metrics-v1
# artifact next to the text output; the two google-benchmark binaries
# (native_micro, engine_micro) have their own CLI and are run bare.
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    name="$(basename "$b")"
    echo "### $name"
    case "$name" in
      native_micro|engine_micro) "$b" ;;
      *) "$b" --json "results/$name.json" ;;
    esac
    echo
  fi
done 2> >(tee results/bench_stderr.txt >&2) | tee results/bench_all.txt

echo "== examples =="
for e in build/examples/*; do
  if [ -f "$e" ] && [ -x "$e" ]; then
    echo "### $(basename "$e")"
    "$e"
    echo
  fi
done | tee results/examples.txt

echo "All outputs captured under results/."

#!/usr/bin/env bash
# Builds everything, runs the full test suite, every paper-figure bench and
# every example, capturing outputs under results/. This is the one-shot
# reproduction entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results

echo "== tests =="
ctest --test-dir build --output-on-failure 2>&1 | tee results/ctest.txt

echo "== benches =="
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "### $(basename "$b")"
    "$b"
    echo
  fi
done 2>/dev/null | tee results/bench_all.txt

echo "== examples =="
for e in build/examples/*; do
  if [ -f "$e" ] && [ -x "$e" ]; then
    echo "### $(basename "$e")"
    "$e"
    echo
  fi
done | tee results/examples.txt

echo "All outputs captured under results/."

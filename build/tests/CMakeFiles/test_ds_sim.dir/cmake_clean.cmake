file(REMOVE_RECURSE
  "CMakeFiles/test_ds_sim.dir/test_ds_sim.cpp.o"
  "CMakeFiles/test_ds_sim.dir/test_ds_sim.cpp.o.d"
  "test_ds_sim"
  "test_ds_sim.pdb"
  "test_ds_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

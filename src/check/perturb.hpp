// PCT-style schedule perturbation (Burckhardt et al., "A Randomized
// Scheduler with Probabilistic Guarantees of Finding Bugs", ASPLOS'10),
// adapted to the discrete-event simulator.
//
// Classic PCT runs threads by random priority and lowers the priority of
// the running thread at d-1 random change points. In an asynchronous-timing
// simulation the equivalent lever is *delay*: postponing a fiber's resume
// is indistinguishable from the OS descheduling it, and is always a legal
// execution of the modeled machine. PctPerturber therefore:
//
//  * assigns each fiber a random priority rank and, at `change_points`
//    evenly spaced simulated times, reshuffles the ranks (the change
//    points);
//  * scales random resume delays by the fiber's rank (lower priority =
//    longer delays), probability `resume_permille`;
//  * at named sync-layer yield points (sync::explore_point call sites:
//    publish/close/handoff windows), injects targeted stalls of up to
//    `point_delay_max` cycles with probability `point_permille`.
//
// Everything is drawn from one xoshiro stream seeded by the plan, and the
// simulation consults the perturber at deterministic points, so a plan
// replays bit-identically (the property hmps-repro-v1 relies on).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/perturb.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace hmps::check {

/// Declarative perturbation schedule; serialized in hmps-repro-v1.
struct PerturbPlan {
  std::uint64_t seed = 1;
  std::uint32_t nthreads = 0;        ///< fibers to rank (0 disables ranking)
  std::uint32_t change_points = 0;   ///< PCT priority reshuffles
  sim::Cycle change_interval = 0;    ///< simulated time between reshuffles
  std::uint32_t resume_permille = 0; ///< P(rank-scaled delay per resume)
  sim::Cycle delay_unit = 0;         ///< base resume-delay quantum
  std::uint32_t point_permille = 0;  ///< P(stall per sync-layer yield point)
  sim::Cycle point_delay_max = 0;    ///< max targeted-preemption stall

  bool enabled() const {
    return (resume_permille > 0 && delay_unit > 0) ||
           (point_permille > 0 && point_delay_max > 0);
  }
};

class PctPerturber final : public sim::Perturber {
 public:
  explicit PctPerturber(const PerturbPlan& plan)
      : plan_(plan), rng_(plan.seed ^ 0x50435421ULL /* "PCT!" */) {
    rank_.resize(plan_.nthreads);
    std::iota(rank_.begin(), rank_.end(), 0u);
    shuffle_ranks();
  }

  sim::Cycle resume_delay(std::uint32_t fiber, sim::Cycle t) override {
    maybe_reshuffle(t);
    ++decisions_;
    if (plan_.resume_permille == 0 || plan_.delay_unit == 0) return 0;
    if (rng_.below(1000) >= plan_.resume_permille) return 0;
    const std::uint64_t rank =
        rank_.empty() ? 0 : rank_[fiber % rank_.size()];
    return plan_.delay_unit * (1 + rank);
  }

  sim::Cycle point_delay(std::uint32_t /*tid*/, std::uint32_t /*core*/,
                         const char* /*where*/, sim::Cycle now) override {
    maybe_reshuffle(now);
    ++decisions_;
    if (plan_.point_permille == 0 || plan_.point_delay_max == 0) return 0;
    if (rng_.below(1000) >= plan_.point_permille) return 0;
    return rng_.between(1, plan_.point_delay_max);
  }

  /// Scheduling decisions consulted so far (observability for explore()).
  std::uint64_t decisions() const { return decisions_; }

 private:
  void shuffle_ranks() {
    for (std::size_t i = rank_.size(); i > 1; --i) {
      std::swap(rank_[i - 1], rank_[rng_.below(i)]);
    }
  }

  void maybe_reshuffle(sim::Cycle t) {
    while (shuffles_done_ < plan_.change_points &&
           plan_.change_interval > 0 &&
           t >= static_cast<sim::Cycle>(shuffles_done_ + 1) *
                    plan_.change_interval) {
      ++shuffles_done_;
      shuffle_ranks();
    }
  }

  PerturbPlan plan_;
  sim::Xoshiro256 rng_;
  std::vector<std::uint32_t> rank_;  ///< fiber -> priority (0 = highest)
  std::uint32_t shuffles_done_ = 0;
  std::uint64_t decisions_ = 0;
};

}  // namespace hmps::check

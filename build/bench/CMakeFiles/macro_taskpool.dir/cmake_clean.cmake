file(REMOVE_RECURSE
  "CMakeFiles/macro_taskpool.dir/macro_taskpool.cpp.o"
  "CMakeFiles/macro_taskpool.dir/macro_taskpool.cpp.o.d"
  "macro_taskpool"
  "macro_taskpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macro_taskpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

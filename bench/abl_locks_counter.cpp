// Ablation A3: classic locks vs the delegation/combining approaches on the
// contended counter (the Section 3 motivation). Locks execute the CS at the
// acquiring core, so the counter line ping-pongs between cores — even the
// O(1)-RMR queue locks (MCS/CLH) pay data-movement RMRs inside the CS that
// the server/combiner approaches avoid.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "abl_locks_counter", argc, argv);

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{1, 2, 5, 10, 15, 20, 25, 30, 35}
                : std::vector<std::uint32_t>{1, 5, 15, 35};
  if (args.threads) threads = {args.threads};

  const Approach order[] = {Approach::kMpServer,   Approach::kHybComb,
                            Approach::kMcsLock,    Approach::kClhLock,
                            Approach::kTicketLock, Approach::kTtasLock,
                            Approach::kTasLock};

  harness::Table table({"threads", "mp-server", "HybComb", "mcs", "clh",
                        "ticket", "ttas", "tas"});
  for (std::uint32_t t : threads) {
    harness::RunCfg cfg;
    cfg.app_threads = t;
    cfg.seed = args.seed;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    std::vector<std::string> row{std::to_string(t)};
    for (Approach a : order) {
      cfg.obs = art.next_run(std::string(harness::approach_name(a)) + "/t" +
                             std::to_string(t));
      row.push_back(harness::fmt(harness::run_counter(cfg, a).mops));
    }
    table.add_row(row);
    std::fprintf(stderr, "[abl-locks] threads=%u done\n", t);
  }
  table.print("Ablation A3: classic locks vs delegation on the counter "
              "(Mops/s)");
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

// Concurrent-history recording and linearizability checking.
//
// The simulator gives exact invoke/response timestamps for every operation,
// so histories are precise. Two levels of checking are provided:
//
//  1. Fast partial checks (sound, not complete): value uniqueness,
//     no-loss/no-dup, and the FIFO/real-time-order axioms that catch the
//     common linearizability bugs in queues and counters at any scale.
//  2. A complete Wing & Gong-style search (`linearizable()`), generic over
//     a sequential specification, with memoization on (linearized-set,
//     spec-state) — exponential in the worst case, intended for the small
//     windows used by the property tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace hmps::harness {

using sim::Cycle;

enum class OpKind : std::uint8_t {
  kEnq,
  kDeq,   ///< ret = value or kNothing (empty)
  kPush,
  kPop,   ///< ret = value or kNothing (empty)
  kInc,   ///< ret = pre-increment value
  kRead,
};

inline constexpr std::uint64_t kNothing = ~std::uint64_t{0};

struct OpRecord {
  std::uint32_t thread = 0;
  OpKind kind = OpKind::kEnq;
  std::uint64_t arg = 0;
  std::uint64_t ret = 0;
  Cycle invoke = 0;
  Cycle response = 0;
  /// Object id within a farm (sharded runs, docs/SHARDING.md); 0 for
  /// single-object histories. Checkers validate each object's sub-history
  /// independently — cross-object ops (queue_transfer) contribute one
  /// record per touched object sharing the same invoke/response bracket.
  /// Last field so pre-sharding aggregate initializers stay valid.
  std::uint32_t obj = 0;
};

/// Append-only history; one recorder is shared by all simulated threads
/// (single-host-thread simulator, so no synchronization needed).
class HistoryRecorder {
 public:
  void record(OpRecord op) { ops_.push_back(op); }
  const std::vector<OpRecord>& ops() const { return ops_; }
  void clear() { ops_.clear(); }

 private:
  std::vector<OpRecord> ops_;
};

/// Sequential specification: clone-free functional interface over an
/// explicit state vector (so the checker can hash/compare states).
struct SeqSpec {
  /// Applies `op` (kind/arg) to `state`; returns the expected result, or
  /// nullopt if the op is not enabled... all ops here are total, so this
  /// returns the result the sequential object would produce.
  std::function<std::uint64_t(std::vector<std::uint64_t>& state,
                              const OpRecord& op)>
      apply;
};

SeqSpec queue_spec();
SeqSpec stack_spec();
SeqSpec counter_spec();

struct CheckResult {
  bool ok = true;
  std::string reason;
  /// Set when a bounded complete search ran out of budget before either
  /// finding a linearization or exhausting the orders: ok is true but the
  /// history was not fully validated.
  bool inconclusive = false;
};

/// Fast, sound FIFO-queue checks on a (possibly large) history:
///  * every dequeued value was enqueued exactly once, dequeued at most once;
///  * deq(v) does not respond before enq(v) was invoked;
///  * real-time FIFO: enq(a) finishing before enq(b) starts implies deq(a)
///    cannot start strictly after deq(b) finished... i.e. b must not be
///    dequeued "entirely before" a.
CheckResult check_queue_fast(const std::vector<OpRecord>& history);

/// Fast counter checks: the multiset of returned pre-increment values of N
/// completed increments is exactly {base..base+N-1} for some base, and a
/// value cannot be returned before an increment producing it could have
/// linearized.
CheckResult check_counter_fast(const std::vector<OpRecord>& history);

/// Fast, sound stack checks (value conservation + causality): every popped
/// value was pushed exactly once and popped at most once, and a pop cannot
/// respond before its push was invoked. LIFO-order violations need the
/// complete checker (small windows).
CheckResult check_stack_fast(const std::vector<OpRecord>& history);

/// Complete linearizability check against `spec` (Wing & Gong with
/// memoization). History sizes beyond ~20 concurrent ops get slow; use for
/// property tests on small windows. `max_nodes` bounds the DFS (0 =
/// unlimited); an exhausted budget returns ok with `inconclusive` set
/// rather than guessing either way.
CheckResult linearizable(const std::vector<OpRecord>& history,
                         const SeqSpec& spec, std::uint64_t max_nodes = 0);

}  // namespace hmps::harness

// MP-SERVER (paper Section 4.1): the client/server (delegation) approach on
// top of hardware message passing.
//
// A dedicated server thread executes all critical sections of one object.
// Clients send a 3-word request over the message network and block on a
// 1-word response. Because the server's receive reads from its local
// hardware buffer and its send is asynchronous, no coherence-related stalls
// remain on the server's critical path (Fig. 2 of the paper).
#pragma once

#include <cstdint>

#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class MpServer {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  /// `server_tid`: the thread that will run serve(); `obj`: the concurrent
  /// object whose CSes this instance executes. `max_inflight` > 0 enables
  /// the Section 6 overflow guard: at most that many requests may be
  /// outstanding across all clients (credit acquired before the send,
  /// released after the response), which bounds the words resident in the
  /// server's hardware buffer to 4 * max_inflight regardless of client
  /// count or buffer size. 0 leaves the fast path untouched.
  MpServer(Tid server_tid, void* obj, std::uint64_t max_inflight = 0)
      : server_(server_tid), obj_(obj), max_inflight_(max_inflight) {}

  Tid server_tid() const { return server_; }
  void* object() const { return obj_; }

  /// Client side: executes `fn(obj, arg)` in mutual exclusion on the server
  /// and returns its result. Must not be called from the server thread.
  /// With async tickets outstanding the call is routed through the async
  /// path: a bare 1-word response would misframe behind the pending tagged
  /// reply pairs (docs/MODEL.md §9).
  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "MpServer::apply");
    if (async_[tid].outstanding > 0) {
      Ticket t = apply_async(ctx, fn, arg);
      return wait(ctx, t);
    }
    obs::Span<Ctx> span(ctx, "mp.request");
    explore_point(ctx, "mp.pre_send");
    if (max_inflight_ == 0) {
      ctx.send(server_, {tid, rt::to_word(fn), arg});
      return ctx.receive1();
    }
    acquire_credit(ctx, stats_[tid].s);
    ctx.send(server_, {tid, rt::to_word(fn), arg});
    const std::uint64_t ret = ctx.receive1();
    ctx.faa(&inflight_, ~std::uint64_t{0});  // release (+(-1))
    return ret;
  }

  /// Issues `fn(obj, arg)` without blocking on the response: the request is
  /// tagged and the matching 2-word reply is claimed later by wait() /
  /// wait_all(). A pending ticket holds its in-flight credit until the
  /// reply reaches this client (docs/MODEL.md §9).
  Ticket apply_async(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "MpServer::apply_async");
    SyncStats& st = stats_[tid].s;
    AsyncSt& a = async_[tid];
    obs::Span<Ctx> span(ctx, "mp.request");
    explore_point(ctx, "mp.async_issue");
    if (max_inflight_ != 0) acquire_credit_draining(ctx, st, a);
    const std::uint64_t tag = a.next_tag;
    a.next_tag = a.next_tag == kAsyncTagMask ? 1 : a.next_tag + 1;
    ctx.send(server_, {pack_request_id(tid, tag), rt::to_word(fn), arg});
    ++st.async_issued;
    ++a.outstanding;
    Ticket t{tag, 0, 0};
    t.issued = ctx.now();
    return t;
  }

  /// Reaps one ticket, returning its CS result. Must run on the issuing
  /// thread. Replies for other outstanding tickets arriving first are
  /// staged in the context for their own wait().
  std::uint64_t wait(Ctx& ctx, Ticket& t) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "MpServer::wait");
    AsyncSt& a = async_[tid];
    if (t.tag == 0) return t.value;  // completed inline
    explore_point(ctx, "mp.reap");
    std::uint64_t val;
    if (ctx.take_staged_reply(t.tag, &val)) {
      --a.outstanding;
      t.completed = ctx.now();
      return val;
    }
    for (;;) {
      std::uint64_t m[2];
      ctx.receive_async(m, 2);
      if (max_inflight_ != 0) ctx.faa(&inflight_, ~std::uint64_t{0});
      const std::uint64_t got = reply_tag(m[0]);
      if (got == t.tag) {
        --a.outstanding;
        t.completed = ctx.now();
        return m[1];
      }
      ctx.stage_reply(got, m[1]);
    }
  }

  /// Reaps every outstanding ticket of the calling thread, discarding the
  /// results (use wait() per ticket when the values matter).
  void wait_all(Ctx& ctx) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "MpServer::wait_all");
    AsyncSt& a = async_[tid];
    explore_point(ctx, "mp.reap");
    std::uint64_t tag, val;
    while (a.outstanding > 0) {
      if (ctx.take_any_staged_reply(&tag, &val)) {
        --a.outstanding;
        continue;
      }
      std::uint64_t m[2];
      ctx.receive_async(m, 2);
      if (max_inflight_ != 0) ctx.faa(&inflight_, ~std::uint64_t{0});
      --a.outstanding;
    }
  }

  /// Server side: serves requests until a stop request arrives (see
  /// request_stop). Runs forever under open-ended simulation windows.
  void serve(Ctx& ctx) {
    check_tid(ctx.tid(), kMaxThreads, "MpServer::serve");
    SyncStats& st = stats_[ctx.tid()].s;
    for (;;) {
      explore_point(ctx, "mp.serve");
      std::uint64_t m[3];
      ctx.receive(m, 3);
      if (m[1] == kStopWord) return;
      // CS + response phase on the server's critical path.
      obs::Span<Ctx> cs(ctx, "mp.cs");
      Fn fn = rt::from_word<std::remove_pointer_t<Fn>>(m[1]);
      const std::uint64_t ret = fn(ctx, obj_, m[2]);
      const std::uint64_t tag = request_tag(m[0]);
      if (tag != 0) {
        ctx.send(request_tid(m[0]), {kAsyncReplyMark | tag, ret});
      } else {
        ctx.send(request_tid(m[0]), {ret});
      }
      ++st.served;
    }
  }

  /// Asks the server loop to exit. Safe to call while requests from other
  /// clients are still queued ahead of the stop message; they are served
  /// first (FIFO hardware queue).
  void request_stop(Ctx& ctx) { ctx.send(server_, {0, kStopWord, 0}); }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "MpServer::stats");
    return stats_[t].s;
  }

  /// Requests currently holding an overflow-guard credit (0 when the guard
  /// is off). Telemetry gauge — a plain snapshot read, never synchronizing.
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };
  struct alignas(rt::kCacheLine) AsyncSt {
    std::uint64_t next_tag = 1;
    std::uint32_t outstanding = 0;  ///< issued minus reaped
  };

  /// Spin (through shared memory, so no message-buffer pressure) until an
  /// in-flight credit is free, then claim it with CAS.
  void acquire_credit(Ctx& ctx, SyncStats& st) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&inflight_);
      if (cur < max_inflight_ && ctx.cas(&inflight_, cur, cur + 1)) return;
      ++st.throttle_waits;
      ctx.cpu_relax();
    }
  }

  /// Async-issue variant: while spinning for a credit, drain replies that
  /// already arrived for this thread's own outstanding tickets into the
  /// context stash (each arrival releases its credit). Without the drain a
  /// thread whose unreaped tickets hold every credit would spin forever —
  /// the self-deadlock discussed in docs/MODEL.md §9.
  void acquire_credit_draining(Ctx& ctx, SyncStats& st, AsyncSt& a) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&inflight_);
      if (cur < max_inflight_ && ctx.cas(&inflight_, cur, cur + 1)) return;
      ++st.throttle_waits;
      if (a.outstanding > 0 && !ctx.queue_empty()) {
        std::uint64_t m[2];
        ctx.receive_async(m, 2);
        ctx.stage_reply(reply_tag(m[0]), m[1]);
        ctx.faa(&inflight_, ~std::uint64_t{0});
      } else {
        ctx.cpu_relax();
      }
    }
  }

  Tid server_;
  void* obj_;
  std::uint64_t max_inflight_;
  alignas(rt::kCacheLine) Word inflight_{0};
  PaddedStats stats_[kMaxThreads];
  AsyncSt async_[kMaxThreads];
};

}  // namespace hmps::sync

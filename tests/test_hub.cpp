// Tests for MP-SERVER-HUB: one server core serving many objects through
// the Section 5.2 opcode interface.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "ds/queue.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/mp_server_hub.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

TEST(MpServerHub, ServesMultipleCountersExactly) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 3);
  constexpr std::uint32_t kObjects = 5, kClients = 12;
  constexpr std::uint64_t kOps = 60;
  std::vector<std::unique_ptr<ds::SeqCounter>> objs;
  sync::MpServerHub<SimCtx> hub(0);
  std::vector<std::uint64_t> opcodes;
  for (std::uint32_t i = 0; i < kObjects; ++i) {
    objs.push_back(std::make_unique<ds::SeqCounter>());
    opcodes.push_back(hub.add_op(&ds::counter_inc<SimCtx>, objs[i].get()));
  }
  std::uint32_t done = 0;
  ex.add_thread([&](SimCtx& ctx) { hub.serve(ctx); });
  for (std::uint32_t c = 0; c < kClients; ++c) {
    ex.add_thread([&, c](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < kOps; ++k) {
        hub.apply(ctx, opcodes[(c + k) % kObjects], 0);
      }
      if (++done == kClients) hub.request_stop(ctx);
    });
  }
  ex.run_until(sim::kCycleMax);
  std::uint64_t total = 0;
  for (auto& o : objs) total += o->value.load();
  EXPECT_EQ(total, kClients * kOps);
  // Every object saw traffic.
  for (auto& o : objs) EXPECT_GT(o->value.load(), 0u);
  EXPECT_EQ(hub.stats(0).served, kClients * kOps);
}

TEST(MpServerHub, MixedObjectTypesThroughOneServer) {
  // A counter and a queue behind the same server core: opcodes dispatch to
  // different CS bodies and objects.
  SimExecutor ex(arch::MachineParams::tilegx36(), 5);
  ds::SeqCounter counter;
  ds::SeqQueue queue(512);
  sync::MpServerHub<SimCtx> hub(0);
  const auto op_inc = hub.add_op(&ds::counter_inc<SimCtx>, &counter);
  const auto op_enq = hub.add_op(&ds::q_enqueue<SimCtx>, &queue);
  const auto op_deq = hub.add_op(&ds::q_dequeue<SimCtx>, &queue);

  ex.add_thread([&](SimCtx& ctx) { hub.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    for (std::uint64_t k = 0; k < 50; ++k) {
      hub.apply(ctx, op_inc, 0);
      hub.apply(ctx, op_enq, 100 + k);
      EXPECT_EQ(hub.apply(ctx, op_deq, 0), 100 + k);
    }
    hub.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(counter.value.load(), 50u);
}

TEST(MpServerHub, OpcodeBoundsAssertedInDebug) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 7);
  sync::MpServerHub<SimCtx> hub(0);
  ds::SeqCounter c;
  const auto op = hub.add_op(&ds::counter_inc<SimCtx>, &c);
  EXPECT_EQ(op, 1u);
  EXPECT_EQ(hub.op_count(), 1u);
}

}  // namespace
}  // namespace hmps

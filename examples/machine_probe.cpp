// Machine datasheet + timeline trace: probes the simulated TILE-Gx-like
// machine's primitive costs (the numbers everything in EXPERIMENTS.md rests
// on) and records a Chrome-trace timeline of a short contended run.
//
//   $ ./examples/machine_probe [trace.json]
//
// Open the JSON in chrome://tracing or https://ui.perfetto.dev: one row per
// core; thread 0 (the MP-SERVER) shows the dense receive/CS/send rhythm,
// clients show long receive-waits — the visual form of Fig. 2 of the paper.
#include <cstdio>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/mp_server.hpp"

using namespace hmps;
using rt::SimCtx;
using sim::Cycle;

namespace {

struct alignas(rt::kCacheLine) ProbeLine {
  rt::Word w{0};
};

void datasheet() {
  std::printf("=== machine datasheet: %s ===\n",
              arch::MachineParams::tilegx36().name.c_str());
  rt::SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  static ProbeLine lines[8];
  static rt::Word atomic_word{0};

  ex.add_thread([&](SimCtx& ctx) {  // core 0: the prober
    auto timed = [&](auto&& fn) {
      const Cycle t0 = ctx.now();
      fn();
      return ctx.now() - t0;
    };
    // Warm a line, then hit it.
    (void)ctx.load(&lines[0].w);
    const Cycle hit = timed([&] { (void)ctx.load(&lines[0].w); });
    const Cycle cold = timed([&] { (void)ctx.load(&lines[1].w); });
    const Cycle store_posted = timed([&] {
      ctx.store(&lines[2].w, std::uint64_t{1});
    });
    const Cycle faa = timed([&] { (void)ctx.faa(&atomic_word, 1); });
    const Cycle cas_ok = timed([&] {
      (void)ctx.cas(&atomic_word, ctx.load(&atomic_word), std::uint64_t{9});
    });
    std::printf("  load hit            : %3llu cycles\n",
                static_cast<unsigned long long>(hit));
    std::printf("  load cold (at home) : %3llu cycles\n",
                static_cast<unsigned long long>(cold));
    std::printf("  store (posted)      : %3llu cycles at the core\n",
                static_cast<unsigned long long>(store_posted));
    std::printf("  fetch-and-add       : %3llu cycles (at mem controller)\n",
                static_cast<unsigned long long>(faa));
    std::printf("  CAS + hit load      : %3llu cycles\n",
                static_cast<unsigned long long>(cas_ok));
  });
  ex.run_until(sim::kCycleMax);

  // Message round trip by distance.
  std::printf("  message round trips (3-word request + 1-word reply):\n");
  for (rt::Tid peer : {1u, 5u, 35u}) {
    rt::SimExecutor ex2(arch::MachineParams::tilegx36(), 2);
    Cycle rtt = 0;
    ex2.add_thread([&](SimCtx& ctx) {  // echo server stand-in
      std::uint64_t m[3];
      ctx.receive(m, 3);
      ctx.send(static_cast<rt::Tid>(m[0]), {m[2]});
    });
    // Pad so the prober lands on thread/core `peer`.
    while (ex2.nthreads() < peer) {
      ex2.add_thread([](SimCtx&) {});
    }
    ex2.add_thread([&](SimCtx& ctx) {
      const Cycle t0 = ctx.now();
      ctx.send(0, {ctx.tid(), 1, 42});
      (void)ctx.receive1();
      rtt = ctx.now() - t0;
    });
    ex2.run_until(sim::kCycleMax);
    std::printf("    core 0 <-> core %-2u : %3llu cycles\n", peer,
                static_cast<unsigned long long>(rtt));
  }
}

void record_trace(const char* path) {
  rt::SimExecutor ex(arch::MachineParams::tilegx36(), 7);
  ex.machine().tracer().enable(200'000);
  static ds::SeqCounter counter;
  sync::MpServer<SimCtx> mp(0, &counter);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  for (int i = 0; i < 8; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (;;) {
        mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ctx.compute(2 * ctx.rand_below(51));
      }
    });
  }
  ex.run_until(5'000);
  ex.machine().tracer().write_chrome_json(path);
  std::printf("wrote %zu trace events to %s (load in chrome://tracing)\n",
              ex.machine().tracer().size(), path);
}

}  // namespace

int main(int argc, char** argv) {
  datasheet();
  record_trace(argc > 1 ? argv[1] : "/tmp/hmps_trace.json");
  return 0;
}

// Reproduces the Section 5.5 discussion: CC-SYNCH and SHM-SERVER (the two
// approaches that exist on pure shared-memory machines) on x86-like machine
// presets, compared with the TILE-Gx preset.
//
// Expected shape: peak throughput of both is significantly lower on the
// Xeon/Opteron presets than on the TILE-Gx, and the servicing thread shows
// proportionally more stall cycles per op — i.e. the headroom for hardware
// message passing is even larger on x86.
//
// A second table runs the same pair natively (real threads + std::atomic)
// on the host, mirroring the paper's actual x86 measurement. Note: this
// container exposes a single hardware thread, so native numbers measure
// correctness and order of magnitude, not scalability.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/counter.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"
#include "runtime/native_context.hpp"
#include "sync/ccsynch.hpp"
#include "sync/shm_server.hpp"

using namespace hmps;
using harness::Approach;

namespace {

// Native counter throughput with CC-SYNCH on real threads.
double native_ccsynch_mops(std::uint32_t nthreads, int millis) {
  rt::NativeEnv env(nthreads);
  ds::SeqCounter counter;
  sync::CcSynch<rt::NativeCtx> cc(&counter, 200);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(nthreads, 0);
  std::vector<std::thread> threads;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    threads.emplace_back([&, i] {
      rt::NativeCtx ctx(env, i, 1000 + i);
      while (!stop.load(std::memory_order_relaxed)) {
        cc.apply(ctx, ds::counter_inc<rt::NativeCtx>, 0);
        ++ops[i];
        ctx.compute(ctx.rand_below(51));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  stop.store(true);
  for (auto& t : threads) t.join();
  std::uint64_t total = 0;
  for (auto o : ops) total += o;
  return static_cast<double>(total) / (millis * 1e3);  // Mops/s
}

// Native counter throughput with SHM-SERVER (thread 0 = server).
double native_shmserver_mops(std::uint32_t nclients, int millis) {
  rt::NativeEnv env(nclients + 1);
  ds::SeqCounter counter;
  sync::ShmServer<rt::NativeCtx> shm(0, &counter);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(nclients, 0);
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    rt::NativeCtx ctx(env, 0, 999);
    shm.serve(ctx);
  });
  for (std::uint32_t i = 0; i < nclients; ++i) {
    threads.emplace_back([&, i] {
      rt::NativeCtx ctx(env, 1 + i, 2000 + i);
      while (!stop.load(std::memory_order_relaxed)) {
        shm.apply(ctx, ds::counter_inc<rt::NativeCtx>, 0);
        ++ops[i];
        ctx.compute(ctx.rand_below(51));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  stop.store(true);
  // Clients quiesce between ops; then shut the server down.
  for (std::uint32_t i = 1; i <= nclients; ++i) threads[i].join();
  {
    rt::NativeCtx ctx(env, 1, 3000);
    shm.request_stop(ctx);
  }
  threads[0].join();
  std::uint64_t total = 0;
  for (auto o : ops) total += o;
  return static_cast<double>(total) / (millis * 1e3);  // Mops/s
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);

  harness::Table table({"machine", "approach", "peak Mops/s",
                        "serv stall/op", "serv total/op"});
  struct Preset {
    const char* label;
    arch::MachineParams params;
    std::uint32_t threads;
  };
  const Preset presets[] = {
      {"TILE-Gx (36c)", arch::MachineParams::tilegx36(), 35},
      {"Xeon-like (10c)", arch::MachineParams::xeon10(), 9},
      {"Opteron-like (6c)", arch::MachineParams::opteron6(), 5},
  };
  for (const auto& p : presets) {
    for (Approach a : {Approach::kShmServer, Approach::kCcSynch}) {
      harness::RunCfg cfg;
      cfg.machine = p.params;
      cfg.app_threads = args.threads ? args.threads : p.threads;
      cfg.seed = args.seed;
      if (args.window) cfg.window = args.window;
      if (args.reps) cfg.reps = args.reps;
      // Per the paper's stall measurement, pin the servicing thread.
      cfg.fixed_combiner = (a == Approach::kCcSynch);
      const auto r = harness::run_counter(cfg, a);
      table.add_row({p.label, harness::approach_name(a),
                     harness::fmt(r.mops), harness::fmt(r.serv_stall_per_op, 1),
                     harness::fmt(r.serv_total_per_op, 1)});
      std::fprintf(stderr, "[sec55] %s/%s done\n", p.label,
                   harness::approach_name(a));
    }
  }
  table.print("Section 5.5: shared-memory approaches across machine models");

  harness::Table native({"impl", "app threads", "Mops/s (native host)"});
  const std::uint32_t hw = std::thread::hardware_concurrency();
  const std::uint32_t host_threads = std::min(4u, std::max(2u, hw));
  native.add_row({"CC-Synch", std::to_string(host_threads),
                  harness::fmt(native_ccsynch_mops(host_threads, 200))});
  if (hw >= 2) {
    // A dedicated-server approach needs real parallelism; on a single
    // hardware thread the server and its clients timeshare one core and
    // the number would only measure the OS scheduler.
    native.add_row({"shm-server", std::to_string(host_threads - 1),
                    harness::fmt(native_shmserver_mops(host_threads - 1,
                                                       200))});
  } else {
    native.add_row({"shm-server", "-", "skipped: 1 hardware thread"});
  }
  native.print("Section 5.5: native x86 spot check (host hardware)");
  if (!args.csv.empty()) table.write_csv(args.csv);
  return 0;
}

// Sequential FIFO queue + critical-section bodies for the paper's queue
// experiments (Section 5.4, Fig. 5a):
//
//  * one-lock MS-Queue: every enqueue/dequeue is a CS under one universal
//    construction instance — the variant that wins on the TILE-Gx;
//  * two-lock MS-Queue (Michael & Scott): enqueues touch only the tail,
//    dequeues only the head (with a dummy node), so the two CSes run under
//    two independent construction instances (two servers for MP-SERVER-2).
//    On a weakly ordered machine the bodies need memory fences to publish
//    node contents before linking — the cost the paper identifies as
//    outweighing the extra parallelism.
//
// Nodes come from a fixed ring arena recycled in FIFO order (a dequeue
// retires the old dummy exactly one arena step behind the enqueue cursor),
// so the hot path performs no dynamic allocation; capacity bounds the
// number of live elements.
#pragma once

#include <cassert>
#include <cstdint>

#include "runtime/aligned.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::ds {

using rt::Word;

/// Returned by dequeue when the queue is empty. Values must be < kQEmpty.
inline constexpr std::uint64_t kQEmpty = ~std::uint64_t{0};

class SeqQueue {
 public:
  struct Node {
    Word val{0};
    Word next{0};  // Node*
  };

  explicit SeqQueue(std::size_t capacity = 8192)
      : cap_(capacity), arena_(capacity) {
    // Dummy node: arena slot 0.
    head_.store(rt::to_word(&arena_[0]), std::memory_order_relaxed);
    tail_.store(rt::to_word(&arena_[0]), std::memory_order_relaxed);
    alloc_.store(1, std::memory_order_relaxed);
  }

  /// Next arena node for an enqueue. Only the enqueue CS calls this, so a
  /// plain bump-and-wrap through ctx suffices (it is lock-protected state).
  template <class Ctx>
  Node* alloc(Ctx& ctx) {
    const std::uint64_t i = ctx.load(&alloc_);
    ctx.store(&alloc_, (i + 1) % cap_);
    return &arena_[i];
  }

  std::size_t capacity() const { return cap_; }

  alignas(rt::kCacheLine) Word head_{0};
  alignas(rt::kCacheLine) Word tail_{0};
  alignas(rt::kCacheLine) Word alloc_{0};

 private:
  std::size_t cap_;
  rt::AlignedArray<Node> arena_;  // line packing independent of the heap
};

// ---- CS bodies: one-lock variant (no fences needed: one servicing
// thread/combiner executes every CS, so program order suffices) ----

template <class Ctx>
std::uint64_t q_enqueue(Ctx& ctx, void* obj, std::uint64_t v) {
  auto* q = static_cast<SeqQueue*>(obj);
  SeqQueue::Node* n = q->alloc(ctx);
  ctx.store(&n->val, v);
  ctx.store(&n->next, std::uint64_t{0});
  auto* tail = rt::from_word<SeqQueue::Node>(ctx.load(&q->tail_));
  ctx.store(&tail->next, rt::to_word(n));
  ctx.store(&q->tail_, rt::to_word(n));
  return 0;
}

template <class Ctx>
std::uint64_t q_dequeue(Ctx& ctx, void* obj, std::uint64_t /*unused*/) {
  auto* q = static_cast<SeqQueue*>(obj);
  auto* head = rt::from_word<SeqQueue::Node>(ctx.load(&q->head_));
  auto* next = rt::from_word<SeqQueue::Node>(ctx.load(&head->next));
  if (next == nullptr) return kQEmpty;
  const std::uint64_t v = ctx.load(&next->val);
  ctx.store(&q->head_, rt::to_word(next));  // old head retires to the arena
  return v;
}

// ---- CS bodies: two-lock (MS) variant. The enqueue and dequeue CSes run
// under *different* constructions concurrently, so node publication and
// consumption need fences on a weakly ordered machine (TILE-Gx). ----

template <class Ctx>
std::uint64_t q_enqueue_fenced(Ctx& ctx, void* obj, std::uint64_t v) {
  auto* q = static_cast<SeqQueue*>(obj);
  SeqQueue::Node* n = q->alloc(ctx);
  ctx.store(&n->val, v);
  ctx.store(&n->next, std::uint64_t{0});
  // Publish the node contents before it becomes reachable via tail->next.
  ctx.fence();
  auto* tail = rt::from_word<SeqQueue::Node>(ctx.load(&q->tail_));
  ctx.store(&tail->next, rt::to_word(n));
  // Make the link visible before the (enqueue-private) tail moves on.
  ctx.fence();
  ctx.store(&q->tail_, rt::to_word(n));
  return 0;
}

template <class Ctx>
std::uint64_t q_dequeue_fenced(Ctx& ctx, void* obj, std::uint64_t /*u*/) {
  auto* q = static_cast<SeqQueue*>(obj);
  auto* head = rt::from_word<SeqQueue::Node>(ctx.load(&q->head_));
  auto* next = rt::from_word<SeqQueue::Node>(ctx.load(&head->next));
  if (next == nullptr) return kQEmpty;
  // Order the link read before the value read (data is written by the
  // other CS's servicing thread).
  ctx.fence();
  const std::uint64_t v = ctx.load(&next->val);
  ctx.store(&q->head_, rt::to_word(next));
  return v;
}

/// Convenience wrapper: a FIFO queue whose operations go through one
/// universal construction (the "-1" single-lock variants of Fig. 5a).
template <class Ctx, class UC>
class UcQueue {
 public:
  UcQueue(SeqQueue& q, UC& uc) : q_(&q), uc_(&uc) {}

  void enqueue(Ctx& ctx, std::uint64_t v) {
    assert(v < kQEmpty);
    uc_->apply(ctx, &q_enqueue<Ctx>, v);
  }
  std::uint64_t dequeue(Ctx& ctx) { return uc_->apply(ctx, &q_dequeue<Ctx>, 0); }

 private:
  SeqQueue* q_;
  UC* uc_;
};

/// Two-lock MS-Queue: enqueues through `enq_uc`, dequeues through `deq_uc`.
template <class Ctx, class UC>
class TwoLockQueue {
 public:
  TwoLockQueue(SeqQueue& q, UC& enq_uc, UC& deq_uc)
      : q_(&q), enq_(&enq_uc), deq_(&deq_uc) {}

  void enqueue(Ctx& ctx, std::uint64_t v) {
    assert(v < kQEmpty);
    enq_->apply(ctx, &q_enqueue_fenced<Ctx>, v);
  }
  std::uint64_t dequeue(Ctx& ctx) {
    return deq_->apply(ctx, &q_dequeue_fenced<Ctx>, 0);
  }

 private:
  SeqQueue* q_;
  UC* enq_;
  UC* deq_;
};

}  // namespace hmps::ds

// Edge-case and failure-injection tests for the data structures: arena
// recycling, ring turnover, sentinel handling, capacity boundaries, and
// long deterministic stress runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "ds/lcrq.hpp"
#include "ds/queue.hpp"
#include "ds/stack.hpp"
#include "harness/history.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

TEST(SeqQueueEdge, ArenaRecyclesManyTimesOver) {
  // Push far more elements through than the arena holds; FIFO order must
  // survive the wraparound as long as few elements are live at once.
  SimExecutor ex(arch::MachineParams::tilegx_small(), 1);
  ds::SeqQueue q(64);  // tiny arena
  sync::CcSynch<SimCtx> cc(&q, 8);
  bool ok = true;
  ex.add_thread([&](SimCtx& ctx) {
    std::uint64_t next_out = 0;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      cc.apply(ctx, ds::q_enqueue<SimCtx>, i);
      if (i % 3 != 0) {  // keep the queue shallow but non-empty
        const std::uint64_t v = cc.apply(ctx, ds::q_dequeue<SimCtx>, 0);
        if (v != next_out++) ok = false;
      }
      if (i % 3 == 2) {  // drain the extra element
        const std::uint64_t v = cc.apply(ctx, ds::q_dequeue<SimCtx>, 0);
        if (v != next_out++) ok = false;
      }
    }
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_TRUE(ok);
}

TEST(SeqQueueEdge, DequeueEmptyReturnsSentinelRepeatedly) {
  SimExecutor ex(arch::MachineParams::tilegx_small(), 1);
  ds::SeqQueue q(64);
  sync::CcSynch<SimCtx> cc(&q, 8);
  ex.add_thread([&](SimCtx& ctx) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(cc.apply(ctx, ds::q_dequeue<SimCtx>, 0), ds::kQEmpty);
    }
    cc.apply(ctx, ds::q_enqueue<SimCtx>, 9);
    EXPECT_EQ(cc.apply(ctx, ds::q_dequeue<SimCtx>, 0), 9u);
    EXPECT_EQ(cc.apply(ctx, ds::q_dequeue<SimCtx>, 0), ds::kQEmpty);
  });
  ex.run_until(sim::kCycleMax);
}

TEST(SeqStackEdge, FreeListExhaustionAndReuse) {
  SimExecutor ex(arch::MachineParams::tilegx_small(), 1);
  ds::SeqStack st(128);
  sync::CcSynch<SimCtx> cc(&st, 8);
  ex.add_thread([&](SimCtx& ctx) {
    // Fill to near capacity, drain, refill — nodes must recycle.
    for (int round = 0; round < 5; ++round) {
      for (std::uint64_t v = 0; v < 120; ++v) {
        cc.apply(ctx, ds::s_push<SimCtx>, v);
      }
      for (int v = 119; v >= 0; --v) {
        EXPECT_EQ(cc.apply(ctx, ds::s_pop<SimCtx>, 0),
                  static_cast<std::uint64_t>(v));
      }
      EXPECT_EQ(cc.apply(ctx, ds::s_pop<SimCtx>, 0), ds::kStackEmpty);
    }
  });
  ex.run_until(sim::kCycleMax);
}

TEST(LcrqEdge, RingCloseUnderFill) {
  // Ring of 8 cells, enqueue 100 without dequeuing: rings must close and
  // chain; then everything drains in order.
  SimExecutor ex(arch::MachineParams::tilegx_small(), 1);
  ds::Lcrq<SimCtx> q(3, 256);
  ex.add_thread([&](SimCtx& ctx) {
    for (std::uint32_t v = 0; v < 100; ++v) q.enqueue(ctx, v);
    for (std::uint32_t v = 0; v < 100; ++v) EXPECT_EQ(q.dequeue(ctx), v);
    EXPECT_EQ(q.dequeue(ctx), ds::kLcrqEmpty);
  });
  ex.run_until(sim::kCycleMax);
}

TEST(LcrqEdge, AlternatingNearEmpty) {
  // The empty-transition path (dequeuers overshooting tail) is the
  // trickiest part of CRQ; hammer it.
  SimExecutor ex(arch::MachineParams::tilegx_small(), 2);
  ds::Lcrq<SimCtx> q(3, 512);
  for (int t = 0; t < 4; ++t) {
    ex.add_thread([&, t](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < 300; ++k) {
        // Deliberate imbalance: twice as many dequeues as enqueues.
        if (k % 3 == 0) q.enqueue(ctx, static_cast<std::uint32_t>(t * 1000 + k));
        else (void)q.dequeue(ctx);
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  // Drain and count: enqueued = 4 * 100; each value distinct.
  std::vector<std::uint32_t> rest;
  SimExecutor ex2(arch::MachineParams::tilegx_small(), 3);
  // (queue object persists; just pop from a fresh context)
  ex2.add_thread([&](SimCtx& ctx) {
    for (;;) {
      const std::uint32_t v = q.dequeue(ctx);
      if (v == ds::kLcrqEmpty) break;
      rest.push_back(v);
    }
  });
  ex2.run_until(sim::kCycleMax);
  SUCCEED();  // invariants are enforced inside Lcrq via asserts
}

TEST(LcrqEdge, EmptyDequeueAcrossRingWraparound) {
  // Tiny ring (order 2 => 4 cells): a few ops per round wrap the ring
  // indices, and the queue transitions empty -> nonempty -> empty every
  // round. FIFO and the empty sentinel must hold across every wrap.
  SimExecutor ex(arch::MachineParams::tilegx_small(), 11);
  ds::Lcrq<SimCtx> q(2, 2048);
  ex.add_thread([&](SimCtx& ctx) {
    std::uint32_t next_in = 0, next_out = 0;
    for (int round = 0; round < 300; ++round) {
      EXPECT_EQ(q.dequeue(ctx), ds::kLcrqEmpty);
      const std::uint32_t burst = 1 + (round % 3);
      for (std::uint32_t b = 0; b < burst; ++b) q.enqueue(ctx, next_in++);
      for (std::uint32_t b = 0; b < burst; ++b) {
        EXPECT_EQ(q.dequeue(ctx), next_out++);
      }
    }
    EXPECT_EQ(q.dequeue(ctx), ds::kLcrqEmpty);
  });
  ex.run_until(sim::kCycleMax);
}

TEST(LcrqEdge, ConcurrentEmptyDequeuesStayFifo) {
  // Dequeuers racing past an almost-always-empty tiny ring must still see a
  // real-time FIFO history: check the full recorded history rather than
  // just conservation counts.
  SimExecutor ex(arch::MachineParams::tilegx_small(), 23);
  ds::Lcrq<SimCtx> q(2, 2048);
  harness::HistoryRecorder rec;
  const std::uint32_t nthreads = 4;
  const std::uint32_t ops = 120;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < ops; ++k) {
        harness::OpRecord r;
        r.thread = i;
        r.invoke = ctx.now();
        if (k % 3 == 0) {  // dequeue-heavy: hammer the empty transition
          r.kind = harness::OpKind::kEnq;
          r.arg = (static_cast<std::uint64_t>(i) << 16) | k;
          q.enqueue(ctx, static_cast<std::uint32_t>(r.arg));
          r.ret = 0;
        } else {
          r.kind = harness::OpKind::kDeq;
          const std::uint64_t v = q.dequeue(ctx);
          r.ret = (v == ds::kLcrqEmpty) ? harness::kNothing : v;
        }
        r.response = ctx.now();
        rec.record(r);
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  const auto res = harness::check_queue_fast(rec.ops());
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST(TwoLockQueueEdge, ConcurrentEnqDeqConservesFifo) {
  // Separate enqueuer and dequeuer thread pools through the two
  // independent locks of the two-lock MS-queue: the recorded history must
  // be loss-free, duplicate-free, and real-time FIFO.
  SimExecutor ex(arch::MachineParams::tilegx36(), 17);
  ds::SeqQueue q(8192);
  sync::CcSynch<SimCtx> enq_uc(&q, 8);
  sync::CcSynch<SimCtx> deq_uc(&q, 8);
  ds::TwoLockQueue<SimCtx, sync::CcSynch<SimCtx>> tlq(q, enq_uc, deq_uc);
  harness::HistoryRecorder rec;
  const std::uint32_t nproducers = 3, nconsumers = 3;
  const std::uint32_t ops = 50;
  const std::uint64_t total = nproducers * ops;
  std::uint64_t popped = 0;  // single-host-thread simulator: plain counter
  for (std::uint32_t i = 0; i < nproducers; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < ops; ++k) {
        harness::OpRecord r;
        r.thread = i;
        r.kind = harness::OpKind::kEnq;
        r.arg = (static_cast<std::uint64_t>(i) << 32) | k;
        r.invoke = ctx.now();
        tlq.enqueue(ctx, r.arg);
        r.response = ctx.now();
        rec.record(r);
        ctx.compute(ctx.rand_below(30));
      }
    });
  }
  for (std::uint32_t i = 0; i < nconsumers; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      while (popped < total) {
        harness::OpRecord r;
        r.thread = nproducers + i;
        r.kind = harness::OpKind::kDeq;
        r.invoke = ctx.now();
        const std::uint64_t v = tlq.dequeue(ctx);
        r.response = ctx.now();
        if (v == ds::kQEmpty) {
          ctx.compute(40);  // back off instead of recording empty spins
          continue;
        }
        ++popped;
        r.ret = v;
        rec.record(r);
        ctx.compute(ctx.rand_below(30));
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(popped, total);
  const auto res = harness::check_queue_fast(rec.ops());
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_EQ(rec.ops().size(), 2 * total);
}

TEST(TreiberEdge, PopEmptyThenReuse) {
  SimExecutor ex(arch::MachineParams::tilegx_small(), 1);
  ds::TreiberStack<SimCtx> st(16);
  ex.add_thread([&](SimCtx& ctx) {
    EXPECT_EQ(st.pop(ctx), ds::kStackEmpty);
    for (int round = 0; round < 50; ++round) {
      st.push(ctx, 100 + round);
      st.push(ctx, 200 + round);
      EXPECT_EQ(st.pop(ctx), 200u + round);
      EXPECT_EQ(st.pop(ctx), 100u + round);
      EXPECT_EQ(st.pop(ctx), ds::kStackEmpty);
    }
  });
  ex.run_until(sim::kCycleMax);
}

TEST(HybCombEdge, NodeRecyclingSurvivesManyTenures) {
  // Force extremely frequent combiner changes (MAX_OPS = 1) for a long
  // deterministic run: the departed_combiner node exchange must never lose
  // or duplicate a node.
  SimExecutor ex(arch::MachineParams::tilegx_small(), 4);
  ds::SeqCounter c;
  sync::HybComb<SimCtx> hyb(&c, 1);
  const std::uint32_t nthreads = 6;
  const std::uint64_t ops = 400;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops; ++k) {
        hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), nthreads * ops);
}

TEST(HybCombEdge, UnfortunateInterleavingWindowIsHarmless) {
  // Section 4.2 "additional comments": a FAA landing between a CAS at line
  // 17 and the n_ops reset at line 18 merely costs performance. Under tiny
  // MAX_OPS and many threads this window is hit constantly; correctness
  // must hold.
  SimExecutor ex(arch::MachineParams::tilegx36(), 21);
  ds::SeqCounter c;
  sync::HybComb<SimCtx> hyb(&c, 2);
  const std::uint32_t nthreads = 32;
  const std::uint64_t ops = 60;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops; ++k) {
        hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), nthreads * ops);
}

TEST(StressDeterministic, LongMixedRunCompletes) {
  // A longer mixed workload (queue + stack + counter through different
  // constructions simultaneously) as a smoke/stress test.
  SimExecutor ex(arch::MachineParams::tilegx36(), 1234);
  ds::SeqCounter c;
  ds::SeqQueue q(8192);
  ds::SeqStack s(8192);
  sync::HybComb<SimCtx> uc_c(&c, 50);
  sync::CcSynch<SimCtx> uc_q(&q, 50);
  sync::HybComb<SimCtx> uc_s(&s, 50);
  const std::uint32_t nthreads = 18;
  const std::uint64_t ops = 300;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint64_t k = 0; k < ops; ++k) {
        switch ((i + k) % 3) {
          case 0: uc_c.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
          case 1:
            uc_q.apply(ctx, ds::q_enqueue<SimCtx>, k);
            uc_q.apply(ctx, ds::q_dequeue<SimCtx>, 0);
            break;
          case 2:
            uc_s.apply(ctx, ds::s_push<SimCtx>, k);
            uc_s.apply(ctx, ds::s_pop<SimCtx>, 0);
            break;
        }
        ctx.compute(ctx.rand_below(30));
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(c.value.load(), nthreads * ops / 3);
}

}  // namespace
}  // namespace hmps

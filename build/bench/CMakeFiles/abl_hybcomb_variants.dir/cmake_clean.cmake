file(REMOVE_RECURSE
  "CMakeFiles/abl_hybcomb_variants.dir/abl_hybcomb_variants.cpp.o"
  "CMakeFiles/abl_hybcomb_variants.dir/abl_hybcomb_variants.cpp.o.d"
  "abl_hybcomb_variants"
  "abl_hybcomb_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hybcomb_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Sharded service bench (docs/SHARDING.md): aggregate throughput and p99
// sojourn of a sync::ShardedServer fleet vs shard count on a big mesh.
//
// One MP-SERVER saturates near 100 Mops/s on this farm — the serving core
// is the bottleneck, not the interconnect. Sharding the object farm across a
// fleet multiplies the serving capacity: with objects spread by rendezvous
// hashing and sessions routing each op to its home shard, aggregate
// throughput under a saturating offered load should scale with the fleet
// until sessions or the mesh run out. The headline check is >= 2.5x
// aggregate throughput at 8 shards vs 1 on a 16x16 mesh (counter farm,
// uniform object popularity; Zipf skew concentrates load on the hot
// object's home shard and flattens the curve — sweep zipf_s to see it).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/service.hpp"

using namespace hmps;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "service_sharded", argc, argv);

  // Offered loads in Mops/s at the 1.2 GHz clock. The top loads sit far
  // past a single server's capacity, so the shard sweep measures capacity
  // scaling rather than arrival-limited throughput.
  std::vector<double> loads{32, 128, 384};
  if (args.full) loads = {16, 32, 64, 128, 256, 384, 512};
  if (args.quick) loads = {32, 384};

  std::vector<std::uint32_t> shard_counts{1, 2, 4, 8};
  if (args.quick) shard_counts = {1, 8};

  harness::ServiceCfg base;
  base.base.seed = args.seed;
  base.base.warmup = args.quick ? 20'000 : 60'000;
  base.base.window =
      args.window ? args.window : (args.quick ? 80'000 : 400'000);
  base.base.reps = args.reps ? args.reps : 1;
  base.base.telemetry_window = args.telemetry_window;
  base.base.machine.model_link_contention |= args.noc;
  // A big mesh by default: the fleet and its clients want room.
  base.base.machine.mesh_w = args.mesh_w ? args.mesh_w : 16;
  base.base.machine.mesh_h = args.mesh_h ? args.mesh_h : 16;
  base.sessions = args.threads ? args.threads : 40;
  base.objects = 64;
  base.zipf_s = 0.0;  // uniform popularity: the pure capacity-scaling case

  harness::RunPool pool(art, args.jobs);
  for (double load : loads) {
    for (std::uint32_t shards : shard_counts) {
      harness::ServiceCfg cfg = base;
      cfg.offered_mops = load;
      cfg.shards = shards;
      pool.submit("s" + std::to_string(shards) + "/o" +
                      harness::fmt(load, 0),
                  [cfg](const harness::RunObs& obs) {
                    harness::ServiceCfg c = cfg;
                    c.base.obs = obs;
                    const auto r = harness::run_service_sharded(c);
                    std::fprintf(stderr, "[service_sharded] %s done\n",
                                 obs.label);
                    return r;
                  });
    }
  }
  const auto& results = pool.drain();

  std::vector<std::string> cols{"offered"};
  for (std::uint32_t shards : shard_counts) {
    cols.push_back("s" + std::to_string(shards) + " ach");
    cols.push_back("s" + std::to_string(shards) + " p99");
    cols.push_back("s" + std::to_string(shards) + " shed");
  }
  harness::Table table(cols);
  std::size_t idx = 0;
  double ach_first = 0, ach_last = 0;  // top load: fewest vs most shards
  for (double load : loads) {
    std::vector<std::string> row{harness::fmt(load, 0)};
    for (std::size_t si = 0; si < shard_counts.size(); ++si) {
      const auto& r = results[idx++];
      row.push_back(harness::fmt(r.mops));
      row.push_back(harness::fmt(r.lat_p99, 0));
      row.push_back(std::to_string(r.shed_ops));
      if (load == loads.back()) {
        if (si == 0) ach_first = r.mops;
        if (si == shard_counts.size() - 1) ach_last = r.mops;
      }
    }
    table.add_row(row);
  }
  table.print("Sharded counter service on " +
              std::to_string(base.base.machine.mesh_w) + "x" +
              std::to_string(base.base.machine.mesh_h) +
              ": aggregate Mops/s, p99 sojourn (cycles) and shed arrivals "
              "vs offered load (" +
              std::to_string(base.sessions) + " sessions, uniform objects)");
  const double scaling = ach_first > 0 ? ach_last / ach_first : 0;
  std::printf("aggregate scaling at offered %s Mops/s: %u shards / %u "
              "shard = %.2fx (>= 2.5x expected)\n",
              harness::fmt(loads.back(), 0).c_str(), shard_counts.back(),
              shard_counts.front(), scaling);
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return scaling >= 2.5 ? 0 : 1;
}

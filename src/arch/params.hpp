// Machine timing/structure parameters with presets for the platforms the
// paper discusses.
//
// All latencies are in core clock cycles. The TILE-Gx preset is calibrated
// against the cycle numbers reported in the paper (PPoPP'14, Section 5):
//   - MP-SERVER executes a counter CS in ~11 cycles at the server
//     (110 Mops/s @ 1.2 GHz, Fig. 3a),
//   - SHM-SERVER/CC-SYNCH spend ~30 of ~50+ cycles per op stalled on
//     coherence misses (Fig. 4a),
//   - a typical remote-dirty cache-line fetch (RMR) therefore costs ~40
//     cycles on the 6x6 mesh,
//   - atomics execute at one of two memory controllers (Section 5.4), with
//     moderate issue occupancy, so independent atomics can falsely
//     serialize.
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace hmps::arch {

using sim::Cycle;

struct MachineParams {
  std::string name = "tilegx36";

  // --- structure ---
  std::uint32_t mesh_w = 6;
  std::uint32_t mesh_h = 6;
  std::uint32_t n_mem_ctrls = 2;
  std::uint32_t line_bytes = 64;

  // --- core ---
  Cycle l_hit = 2;           ///< private-cache hit latency
  Cycle issue_cost = 1;      ///< base cost of issuing any memory op
  bool posted_writes = true; ///< weak ordering: stores retire via write buffer
  std::uint32_t wb_depth = 1;     ///< outstanding posted store misses
  bool allow_prefetch = true;     ///< non-binding software prefetch slot

  // --- interconnect ---
  Cycle hop = 2;             ///< per-mesh-hop latency
  Cycle router = 2;          ///< fixed per-message router/injection overhead

  // --- coherence (directory at the line's home tile) ---
  Cycle dir_lookup = 6;      ///< directory access at the home tile
  Cycle home_mem = 8;        ///< data access at home (distributed L3-like)
  Cycle fwd_cost = 4;        ///< forwarding a request to the dirty owner
  Cycle xfer = 4;            ///< cache-line payload transfer serialization
  Cycle inval_base = 2;      ///< invalidation round base cost
  Cycle inval_per_sharer = 1;
  Cycle line_occupancy = 4;  ///< min spacing of transactions on one line

  // --- atomics ---
  bool atomics_at_ctrl = true; ///< TILE-Gx: RMW ops execute at mem ctrls
  /// Controller occupancy per unconditional RMW (fetch-and-add, exchange):
  /// a pipelined ALU update at the controller; fast and scalable (paper
  /// Section 5.5 singles FAA out).
  Cycle ctrl_op_faa = 6;
  /// Controller occupancy per successful CAS: the read-compare-write holds
  /// the controller slot through the update, the source of the false
  /// serialization that caps LCRQ and Treiber (paper Section 5.4).
  Cycle ctrl_op_cas = 40;
  /// Controller occupancy per failed CAS: the compare misses, no write
  /// stage, the slot frees early.
  Cycle ctrl_op_cas_fail = 6;
  Cycle atomic_local_extra = 4; ///< x86-style in-cache RMW extra cost
  /// In-network combining of unconditional RMWs (NYU-Ultracomputer style):
  /// fetch-and-add/exchange messages to the same word that overlap at a
  /// router on the way to the memory controller merge into one downstream
  /// message, and the combined reply fans back out on the return path
  /// (docs/MODEL.md §11). Requires atomics_at_ctrl; off by default — every
  /// knob-off trace stays bit-identical.
  bool noc_combining = false;

  // --- hardware message passing (UDN) ---
  bool has_udn = true;
  std::uint32_t udn_buf_words = 118; ///< per-core hardware buffer capacity
  std::uint32_t udn_queues = 4;      ///< demux queues per core buffer
  Cycle udn_inject = 1;              ///< sender-side cost per message
  Cycle udn_per_word_wire = 1;       ///< per-word serialization on the wire
  Cycle udn_recv_word = 1;           ///< receiver cost to pop one word
  /// Model per-link occupancy along the XY route of every message (wormhole
  /// approximation); off by default — destination-port serialization
  /// already captures the paper's effects.
  bool model_link_contention = false;
  Cycle fence_cost = 3;              ///< local cost of a full memory fence

  // --- multi-chip topology ---
  // Beyond one die: the global mesh_w × mesh_h mesh is tiled by a grid of
  // chips_x × chips_y chips, each chip owning an equal rectangle of tiles.
  // Links that cross a chip boundary (SerDes + package crossing) pay
  // chip_hop_extra cycles on top of the normal per-hop latency. The
  // defaults (1×1 grid) describe a single chip and add nothing, keeping
  // every single-chip trace and artifact bit-identical. A chip grid that
  // does not evenly divide the mesh is treated as 1×1 on that axis.
  std::uint32_t chips_x = 1;   ///< chip-grid columns (must divide mesh_w)
  std::uint32_t chips_y = 1;   ///< chip-grid rows (must divide mesh_h)
  Cycle chip_hop_extra = 20;   ///< extra latency per inter-chip link crossing

  std::uint32_t cores() const { return mesh_w * mesh_h; }
  std::uint32_t chips() const { return chips_x * chips_y; }

  /// Tiles per chip along X, honoring the divisibility rule.
  std::uint32_t chip_w() const {
    return (chips_x > 1 && mesh_w % chips_x == 0) ? mesh_w / chips_x : mesh_w;
  }
  /// Tiles per chip along Y.
  std::uint32_t chip_h() const {
    return (chips_y > 1 && mesh_h % chips_y == 0) ? mesh_h / chips_y : mesh_h;
  }

  /// Tilera TILE-Gx8036: the paper's platform. 36 cores, hybrid.
  static MachineParams tilegx36() { return MachineParams{}; }

  /// A small TILE-Gx-like hybrid machine, handy for fast tests.
  static MachineParams tilegx_small(std::uint32_t w = 4, std::uint32_t h = 2) {
    MachineParams p;
    p.name = "tilegx_small";
    p.mesh_w = w;
    p.mesh_h = h;
    return p;
  }

  /// Intel Xeon E7-L8867-like preset (Section 5.5 discussion): no hardware
  /// message passing, in-cache atomics, pricier coherence misses (bigger
  /// uncore round trips relative to the core clock), stronger ordering.
  static MachineParams xeon10() {
    MachineParams p;
    p.name = "xeon10";
    p.mesh_w = 5;
    p.mesh_h = 2;
    p.has_udn = false;
    p.atomics_at_ctrl = false;
    p.atomic_local_extra = 12;
    p.hop = 3;
    p.dir_lookup = 12;
    p.home_mem = 14;
    p.fwd_cost = 8;
    p.xfer = 6;
    p.line_occupancy = 14;
    p.posted_writes = false;  // TSO retirement: store misses stall sooner
    p.fence_cost = 20;
    return p;
  }

  /// AMD Opteron 6176-like preset (Section 5.5 discussion).
  static MachineParams opteron6() {
    MachineParams p = xeon10();
    p.name = "opteron6";
    p.mesh_w = 3;
    p.mesh_h = 2;
    p.dir_lookup = 16;
    p.home_mem = 18;
    p.line_occupancy = 18;
    return p;
  }
};

}  // namespace hmps::arch

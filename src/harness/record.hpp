// Uniform history capture for the schedule-exploration harness
// (docs/TESTING.md): runs one bounded workload — any universal construction
// (or the concurrent LCRQ / elimination-stack structures) driving one
// concurrent object on the simulator — and returns the precise
// invoke/response history for the linearizability checkers in history.hpp.
//
// The same RecordCfg + seed (+ optional sim::Perturber with the same plan)
// reproduces the same history bit for bit from the same heap state: the
// recording loop draws all of its randomness from the simulator's
// per-thread deterministic streams, and the coherence model virtualizes
// home assignment, but which simulated variables share a cache line still
// follows host addresses. A fresh process therefore always reproduces a
// repro file exactly, while the first run inside a long-lived process may
// differ from later ones by a few stall cycles (docs/TESTING.md).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/params.hpp"
#include "harness/history.hpp"
#include "sim/fault.hpp"

namespace hmps::sim {
class Perturber;
}

namespace hmps::harness {

/// Every synchronization construction the repo implements (ROADMAP.md).
enum class Construction : std::uint8_t {
  kMpServer,
  kHybComb,
  kShmServer,
  kCcSynch,
  kDsmSynch,
  kFlatCombining,
  kHSynch,
  kOyama,
  kMcsLock,
  kMpServerHub,
  kSharded,  ///< multi-server object farm (docs/SHARDING.md)
  kVlink,    ///< delegation over the Virtual-Link MPMC channel (MODEL.md §12)
};
inline constexpr std::uint32_t kNumConstructions = 12;

/// Concurrent objects the harness can drive. Counter/queue/stack run their
/// sequential bodies under the chosen construction; LCRQ and the
/// elimination stack are concurrent structures in their own right, so for
/// them the construction field is ignored.
enum class Object : std::uint8_t {
  kCounter,
  kQueue,
  kStack,
  kLcrq,
  kElimStack,
};
inline constexpr std::uint32_t kNumObjects = 5;

const char* to_string(Construction c);
const char* to_string(Object o);
bool construction_from_string(std::string_view s, Construction* out);
bool object_from_string(std::string_view s, Object* out);

/// True for the client/server approaches, which dedicate one extra thread
/// (tid 0) to the server loop.
bool uses_server(Construction c);

/// Server threads a construction dedicates ahead of the clients: 0 for the
/// shared-memory approaches, 1 for the single-server ones, `shards` for the
/// sharded fleet (tids [0, shards)).
std::uint32_t server_threads(Construction c, std::uint32_t shards);

/// True for constructions exposing the async ticket API (docs/MODEL.md §9),
/// i.e. those RecordCfg::async_depth applies to.
bool supports_async(Construction c);

/// One recorded run, fully described (hmps-repro-v1 serializes exactly
/// these fields plus a PerturbPlan — src/check/repro.hpp).
struct RecordCfg {
  arch::MachineParams params = arch::MachineParams::tilegx36();
  std::uint64_t seed = 1;
  Construction construction = Construction::kHybComb;
  Object object = Object::kCounter;
  std::uint32_t threads = 4;          ///< client threads (a server adds one)
  std::uint32_t ops_each = 8;
  std::uint64_t max_ops = 8;          ///< combining MAX_OPS / FC passes
  std::uint32_t produce_permille = 500;  ///< enq/push share for queue/stack
  sim::Cycle think_max = 40;          ///< random compute between ops
  sim::Cycle horizon = 50'000'000;    ///< hard stop; shorter under explore
  sim::FaultPlan faults;              ///< installed iff faults.enabled()
  /// Test-only seeded defect (sync::HybComb::Options::bug_drop_every); used
  /// by the exploration selftest, 0 everywhere else.
  std::uint64_t hyb_bug_drop_every = 0;
  /// >= 2: clients issue trains of this many apply_async() tickets and reap
  /// them in reverse order (invocation recorded at issue, response at reap —
  /// docs/MODEL.md §9). Only meaningful for supports_async() constructions
  /// on counter/queue/stack; 0/1 = classic synchronous loop.
  std::uint32_t async_depth = 0;
  /// kSharded only: server fleet size (tids [0, shards)); clients drive a
  /// farm of 8 objects partitioned by rendezvous hashing, and queue runs
  /// mix in cross-shard queue_transfer ops (docs/SHARDING.md). Ignored —
  /// and clamped to 1 — for every other construction.
  std::uint32_t shards = 1;
};

struct RecordResult {
  std::vector<OpRecord> history;
  std::uint32_t total_client_threads = 0;
  std::uint32_t finished_threads = 0;
  bool completed = false;  ///< all client threads finished before horizon
  Cycle end_time = 0;
};

/// Runs the configured workload to completion (or cfg.horizon) and returns
/// its history. `perturber`, when non-null, is installed on the simulation
/// scheduler for the duration of the run.
RecordResult record_history(const RecordCfg& cfg,
                            sim::Perturber* perturber = nullptr);

}  // namespace hmps::harness

#include "check/explore.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "check/gen.hpp"
#include "harness/run_pool.hpp"
#include "sim/rng.hpp"

namespace hmps::check {

namespace {

using harness::Construction;
using harness::Object;

/// Complete-checker cutoff: Wing & Gong is exponential; histories beyond
/// this many ops only get the fast sound checks. Within the cutoff the DFS
/// is additionally node-bounded — a pathological history returns
/// inconclusive in bounded time instead of stalling the exploration loop.
constexpr std::size_t kCompleteMax = 48;
constexpr std::uint64_t kCompleteNodeBudget = 400'000;

Violation check_history(const Scenario& s,
                        const harness::RecordResult& res) {
  using harness::CheckResult;
  if (!res.completed) {
    return {true, "hang",
            std::to_string(res.total_client_threads - res.finished_threads) +
                " of " + std::to_string(res.total_client_threads) +
                " threads did not finish by cycle " +
                std::to_string(s.cfg.horizon)};
  }
  const char* kind = "";
  harness::CheckResult (*fast_check)(const std::vector<harness::OpRecord>&) =
      nullptr;
  harness::SeqSpec spec;
  switch (s.cfg.object) {
    case Object::kCounter:
      fast_check = harness::check_counter_fast;
      kind = "counter";
      spec = harness::counter_spec();
      break;
    case Object::kQueue:
    case Object::kLcrq:
      fast_check = harness::check_queue_fast;
      kind = "queue";
      spec = harness::queue_spec();
      break;
    case Object::kStack:
    case Object::kElimStack:
      fast_check = harness::check_stack_fast;
      kind = "stack";
      spec = harness::stack_spec();
      break;
  }
  // Histories are checked per object: single-object runs have every record
  // at obj 0 (one partition, the original behavior); sharded farm runs
  // split into per-object sub-histories, each of which must be
  // linearizable on its own (a cross-shard queue_transfer contributes a
  // deq record to the source object and an enq record to the destination,
  // both spanning the transfer's full bracket — docs/MODEL.md §10).
  std::vector<std::uint32_t> ids;
  for (const auto& op : res.history) {
    if (std::find(ids.begin(), ids.end(), op.obj) == ids.end()) {
      ids.push_back(op.obj);
    }
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t id : ids) {
    std::vector<harness::OpRecord> h;
    for (const auto& op : res.history) {
      if (op.obj == id) h.push_back(op);
    }
    const CheckResult fast = fast_check(h);
    if (!fast.ok) {
      return {true, kind, "obj " + std::to_string(id) + ": " + fast.reason};
    }
    if (h.size() <= kCompleteMax) {
      const CheckResult full =
          harness::linearizable(h, spec, kCompleteNodeBudget);
      if (!full.ok) {
        return {true, "lin", "obj " + std::to_string(id) + ": " + full.reason};
      }
    }
  }
  return {};
}

/// Draws a random scenario from the exploration RNG. The per-scenario seed
/// spaces are disjoint from the master stream so a scenario replays without
/// the surrounding exploration state.
Scenario draw_scenario(sim::Xoshiro256& r, const ExploreCfg& ecfg,
                       const std::vector<Construction>& cons,
                       const std::vector<Object>& objs,
                       std::uint64_t iteration) {
  Scenario s;
  s.cfg.construction = cons[r.below(cons.size())];
  s.cfg.object = objs[r.below(objs.size())];
  s.cfg.seed = ecfg.seed * 0x9E3779B97F4A7C15ULL + iteration;
  if (ecfg.fuzz_machines && r.below(2) == 0) {
    s.cfg.params = random_machine(s.cfg.seed ^ 0xFACADE);
  }
  s.cfg.threads = static_cast<std::uint32_t>(r.between(2, 6));
  s.cfg.ops_each = static_cast<std::uint32_t>(r.between(2, 8));
  s.cfg.max_ops = r.between(1, 16);
  s.cfg.produce_permille = static_cast<std::uint32_t>(r.between(300, 700));
  s.cfg.think_max = r.between(0, 80);
  s.cfg.horizon = 20'000'000;  // generous: unperturbed runs finish in ~1M
  s.cfg.hyb_bug_drop_every = ecfg.hyb_bug_drop_every;
  // ~1/3 of scenarios exercise the async ticket path with out-of-order
  // reaps (clamp_cfg zeroes the depth for constructions/objects without
  // it). Both values are always drawn so the stream stays aligned.
  const std::uint64_t async_roll = r.below(3);
  const std::uint64_t async_depth = r.between(2, 4);
  s.cfg.async_depth =
      async_roll == 0 ? static_cast<std::uint32_t>(async_depth) : 0;
  // Shard count is always drawn (stream alignment); clamp_cfg resets it to
  // 1 for every non-sharded construction.
  s.cfg.shards = static_cast<std::uint32_t>(r.between(2, 4));

  // Occasional fault-window sweep on top of the schedule perturbation.
  if (r.below(4) == 0) {
    s.cfg.faults.seed = s.cfg.seed ^ 0xFA0175;
    switch (r.below(3)) {
      case 0:
        s.cfg.faults.delay_permille = static_cast<std::uint32_t>(r.between(50, 300));
        s.cfg.faults.delay_min = 10;
        s.cfg.faults.delay_max = r.between(100, 4000);
        break;
      case 1:
        s.cfg.faults.jitter_permille = static_cast<std::uint32_t>(r.between(50, 400));
        s.cfg.faults.jitter_max = r.between(5, 200);
        break;
      case 2:
        s.cfg.faults.preempt_period = r.between(20'000, 200'000);
        s.cfg.faults.preempt_duration = r.between(1'000, 30'000);
        break;
    }
  }

  s.perturb.seed = s.cfg.seed ^ 0x5C4ED;
  s.perturb.nthreads =
      s.cfg.threads +
      harness::server_threads(s.cfg.construction, s.cfg.shards);
  s.perturb.change_points = static_cast<std::uint32_t>(r.between(0, 4));
  s.perturb.change_interval = r.between(10'000, 200'000);
  s.perturb.resume_permille = static_cast<std::uint32_t>(r.between(0, 250));
  s.perturb.delay_unit = r.between(10, 2'000);
  s.perturb.point_permille = static_cast<std::uint32_t>(r.between(0, 400));
  s.perturb.point_delay_max = r.between(100, 20'000);
  clamp_cfg(s.cfg);
  return s;
}

}  // namespace

Violation run_scenario(const Scenario& s) {
  PctPerturber p(s.perturb);
  const harness::RecordResult res = harness::record_history(
      s.cfg, s.perturb.enabled() ? &p : nullptr);
  return check_history(s, res);
}

Scenario shrink(const Scenario& failing, Violation* out_violation,
                std::uint64_t* runs) {
  Scenario best = failing;
  std::uint64_t n = 0;

  // Keeps `cand` as the new best iff it still violates. Any violation kind
  // counts: a shrink step may legally transmute e.g. a lin failure into a
  // fast-check failure of the same underlying bug.
  auto still_fails = [&](const Scenario& cand) -> bool {
    ++n;
    Violation v = run_scenario(cand);
    if (!v.found) return false;
    best = cand;
    *out_violation = v;
    return true;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    // 1. Fewer threads (bisect, floor 2).
    while (best.cfg.threads > 2) {
      Scenario cand = best;
      cand.cfg.threads = std::max<std::uint32_t>(2, best.cfg.threads / 2);
      if (cand.cfg.threads == best.cfg.threads) {
        cand.cfg.threads = best.cfg.threads - 1;
      }
      cand.perturb.nthreads =
          cand.cfg.threads +
          harness::server_threads(cand.cfg.construction, cand.cfg.shards);
      if (!still_fails(cand)) break;
      progress = true;
    }
    // 1b. Fewer shards (sharded fleet only; floor 2 keeps the cross-shard
    // paths — dropping to 1 would shrink away the bug class under test).
    while (best.cfg.shards > 2) {
      Scenario cand = best;
      cand.cfg.shards = best.cfg.shards - 1;
      cand.perturb.nthreads =
          cand.cfg.threads +
          harness::server_threads(cand.cfg.construction, cand.cfg.shards);
      if (!still_fails(cand)) break;
      progress = true;
    }
    // 2. Fewer ops per thread (bisect, floor 1).
    while (best.cfg.ops_each > 1) {
      Scenario cand = best;
      cand.cfg.ops_each = std::max<std::uint32_t>(1, best.cfg.ops_each / 2);
      if (cand.cfg.ops_each == best.cfg.ops_each) {
        cand.cfg.ops_each = best.cfg.ops_each - 1;
      }
      if (!still_fails(cand)) break;
      progress = true;
    }
    // 3. Drop the fault plan.
    if (best.cfg.faults.enabled()) {
      Scenario cand = best;
      cand.cfg.faults = sim::FaultPlan{};
      if (still_fails(cand)) progress = true;
    }
    // 4. Weaken the perturbation (each lever independently).
    if (best.perturb.resume_permille > 0) {
      Scenario cand = best;
      cand.perturb.resume_permille = 0;
      if (still_fails(cand)) progress = true;
    }
    if (best.perturb.point_permille > 0) {
      Scenario cand = best;
      cand.perturb.point_permille = 0;
      if (still_fails(cand)) progress = true;
    }
    if (best.perturb.change_points > 0) {
      Scenario cand = best;
      cand.perturb.change_points = 0;
      if (still_fails(cand)) progress = true;
    }
    // 5. No think time (denser histories shrink the search window).
    if (best.cfg.think_max > 0) {
      Scenario cand = best;
      cand.cfg.think_max = 0;
      if (still_fails(cand)) progress = true;
    }
    // 6. Back to the synchronous loop (isolates async-plumbing failures).
    if (best.cfg.async_depth != 0) {
      Scenario cand = best;
      cand.cfg.async_depth = 0;
      if (still_fails(cand)) progress = true;
    }
  }

  // Determinism check: the shrunk repro must fail identically twice.
  const Violation v1 = run_scenario(best);
  const Violation v2 = run_scenario(best);
  n += 2;
  if (!v1.found || v1.kind != v2.kind || v1.detail != v2.detail) {
    // Should be impossible (the simulator is deterministic); surface it
    // loudly rather than emit a repro that does not replay.
    std::fprintf(stderr,
                 "check: WARNING: shrunk scenario is not deterministic\n");
  } else {
    *out_violation = v1;
  }
  *runs = n;
  return best;
}

ExploreResult explore(const ExploreCfg& ecfg) {
  ExploreResult out;
  std::vector<Construction> cons = ecfg.constructions;
  if (cons.empty()) {
    for (std::uint32_t i = 0; i < harness::kNumConstructions; ++i) {
      cons.push_back(static_cast<Construction>(i));
    }
  }
  std::vector<Object> objs = ecfg.objects;
  if (objs.empty()) {
    for (std::uint32_t i = 0; i < harness::kNumObjects; ++i) {
      objs.push_back(static_cast<Object>(i));
    }
  }

  sim::Xoshiro256 r(ecfg.seed);
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  // Scenario execution runs on the task pool; drawing stays serial on this
  // thread so the master RNG stream — and therefore scenario `it` ->
  // Scenario mapping — is identical for every jobs value. With jobs <= 1
  // the batch size is 1 and submit() runs inline: byte-for-byte the
  // original serial loop. With workers, batches of 2*jobs scenarios run
  // concurrently (sound for the same reason the run pool is: every
  // record_history builds its own machine, and the fiber layer is
  // thread_local — see harness/run_pool.hpp). Because iterations are
  // assigned to batches in order and the first violation is picked by
  // lowest iteration within the stopping batch, the failing scenario is
  // the globally-earliest violating iteration regardless of jobs.
  harness::TaskPool pool(ecfg.jobs);
  const std::size_t batch_size =
      pool.jobs() <= 1 ? 1 : static_cast<std::size_t>(pool.jobs()) * 2;

  struct Slot {
    Violation v;
    std::uint64_t ops = 0;
    sim::Cycle end_time = 0;
    double seconds = 0;
  };

  std::uint64_t it = 0;
  for (;;) {
    if (ecfg.max_schedules > 0 && out.schedules_run >= ecfg.max_schedules) {
      break;
    }
    if (ecfg.max_schedules == 0 && elapsed() >= ecfg.budget_seconds) break;
    if (ecfg.max_schedules > 0 && ecfg.budget_seconds > 0 &&
        elapsed() >= ecfg.budget_seconds) {
      break;
    }

    std::size_t n = batch_size;
    if (ecfg.max_schedules > 0) {
      const std::uint64_t left = ecfg.max_schedules - out.schedules_run;
      if (left < n) n = static_cast<std::size_t>(left);
    }
    std::vector<Scenario> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(draw_scenario(r, ecfg, cons, objs, it++));
    }
    std::vector<Slot> slots(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      pool.submit([&batch, &slots, i] {
        const Scenario& s = batch[i];
        const auto rt0 = std::chrono::steady_clock::now();
        PctPerturber p(s.perturb);
        const harness::RecordResult res = harness::record_history(
            s.cfg, s.perturb.enabled() ? &p : nullptr);
        Slot& slot = slots[i];
        slot.ops = res.history.size();
        slot.end_time = res.end_time;
        slot.v = check_history(s, res);
        slot.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - rt0)
                           .count();
      });
    }
    pool.wait();

    bool stop = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Scenario& s = batch[i];
      const Slot& slot = slots[i];
      ++out.schedules_run;
      out.ops_checked += slot.ops;
      if (ecfg.verbose && slot.seconds > 0.5) {
        std::fprintf(stderr,
                     "check: slow schedule (%.1fs): %s on %s, %u thr x %u "
                     "ops, end_time %llu, faults %d\n",
                     slot.seconds, harness::to_string(s.cfg.construction),
                     harness::to_string(s.cfg.object), s.cfg.threads,
                     s.cfg.ops_each,
                     static_cast<unsigned long long>(slot.end_time),
                     s.cfg.faults.enabled() ? 1 : 0);
      }
      if (ecfg.verbose && out.schedules_run % 200 == 0) {
        std::fprintf(stderr, "check: %llu schedules, %.1fs elapsed\n",
                     static_cast<unsigned long long>(out.schedules_run),
                     elapsed());
      }
      if (slot.v.found) {
        out.violation_found = true;
        out.failing = s;
        out.violation = slot.v;
        if (ecfg.stop_on_violation) {
          // Lowest iteration in the stopping batch: later violations in
          // this batch are ignored exactly like the serial loop never
          // reaching them.
          stop = true;
          break;
        }
      }
    }
    if (stop) break;
  }

  if (out.violation_found) {
    out.shrunk_violation = out.violation;
    out.shrunk = shrink(out.failing, &out.shrunk_violation, &out.shrink_runs);
  }
  return out;
}

}  // namespace hmps::check

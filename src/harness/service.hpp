// Open-loop service harness (docs/SERVICE.md): drives the universal
// constructions with an *offered* load the system does not control, and
// reports what the closed-loop benches cannot — sojourn time (arrival to
// completion) under that load, split into queueing delay and service time.
//
// The closed-loop drivers (harness/workload.hpp) let N clients re-issue as
// soon as the previous operation completes, so the measured latency is
// conditioned on the system keeping up. Here a deterministic arrival
// process (Poisson, or bursty via a two-state Markov-modulated Poisson
// process) generates operations on the simulation's event queue; client
// session fibers drain a bounded pending-arrivals queue and issue the
// operations through the PR 5 ticket API (sync::Ticket issue/completion
// stamps). When offered load exceeds capacity the pending queue fills and
// admission control sheds arrivals (SyncStats::shed_ops), so the reported
// percentiles describe the *admitted* traffic — the standard open-loop
// methodology.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "harness/workload.hpp"
#include "sim/rng.hpp"

namespace hmps::harness {

/// Arrival processes. Both are seeded from ServiceCfg::base.seed and fully
/// deterministic.
enum class ArrivalModel {
  kPoisson,  ///< exponential inter-arrival times at the offered rate
  kMmpp,     ///< two-state MMPP: a quiet state and a burst state whose rate
             ///< is `burst` times higher, exponentially distributed dwell
             ///< times; time-averaged rate equals the offered rate
};
const char* arrival_model_name(ArrivalModel m);

/// What to do with an arrival when the pending queue is full.
enum class ShedPolicy {
  kDropNewest,  ///< refuse the incoming arrival (tail drop)
  kDropOldest,  ///< evict the longest-waiting arrival, admit the new one
};
const char* shed_policy_name(ShedPolicy p);

struct ServiceCfg {
  /// Machine, warmup, window, seed, async_batch, max_inflight, max_ops,
  /// stall_timeout and observability sinks are taken from here. The
  /// measurement window is base.window * max(base.reps, 1) cycles (one
  /// continuous window: percentiles need the whole completion stream).
  RunCfg base{};

  std::uint32_t sessions = 4;  ///< client session fibers (one core each)
  std::uint32_t objects = 4;   ///< object instances behind one construction
  double zipf_s = 0.9;         ///< Zipf exponent for object popularity
                               ///< (0 = uniform)

  ArrivalModel arrival = ArrivalModel::kPoisson;
  double offered_mops = 2.0;   ///< offered load, Mops/s at 1.2 GHz
  double burst = 8.0;          ///< MMPP burst-state rate multiplier
  sim::Cycle dwell_quiet = 50'000;  ///< MMPP mean dwell, quiet state
  sim::Cycle dwell_burst = 12'500;  ///< MMPP mean dwell, burst state

  std::uint32_t queue_cap = 64;     ///< pending arrivals per session
  ShedPolicy shed = ShedPolicy::kDropNewest;

  bool queue_object = false;   ///< false: counter farm; true: MS-queue farm

  /// run_service_sharded() only: MP-SERVER fleet size (tids [0, shards)),
  /// objects partitioned across the fleet by rendezvous hashing
  /// (docs/SHARDING.md). Ignored by run_service().
  std::uint32_t shards = 1;
};

/// Zipf(s) sampler over {0, ..., n-1} by inverse CDF: p(rank k) ~ 1/k^s.
/// Deterministic given the caller's RNG stream; s = 0 is uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s) : cdf_(n) {
    double sum = 0;
    for (std::uint32_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Maps a uniform u in (0, 1] to an object rank (0 = most popular).
  std::uint32_t sample(double u) const {
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint32_t>(
        it == cdf_.end() ? cdf_.size() - 1 : it - cdf_.begin());
  }

  /// Cumulative probability of ranks 0..k (for sanity tests).
  double cdf(std::uint32_t k) const { return cdf_[k]; }

 private:
  std::vector<double> cdf_;
};

/// Arrival-time generator: Poisson, or a two-state MMPP whose quiet/burst
/// sojourns are exponential and whose time-averaged rate equals the
/// offered rate. All sampling comes from one private xoshiro stream, so
/// the arrival schedule is a pure function of (seed, config).
class ArrivalGen {
 public:
  ArrivalGen(const ServiceCfg& cfg, std::uint64_t seed)
      : rng_(seed), bursty_(cfg.arrival == ArrivalModel::kMmpp) {
    // Offered load in arrivals per cycle (Mops/s at the 1.2 GHz clock).
    const double rate = std::max(cfg.offered_mops, 1e-6) / 1200.0;
    if (!bursty_) {
      mean_quiet_ = 1.0 / rate;
      return;
    }
    const double dq = static_cast<double>(cfg.dwell_quiet);
    const double db = static_cast<double>(cfg.dwell_burst);
    const double burst = std::max(cfg.burst, 1.0);
    // rate_quiet * dq + rate_quiet * burst * db == rate * (dq + db)
    const double rate_quiet = rate * (dq + db) / (dq + burst * db);
    mean_quiet_ = 1.0 / rate_quiet;
    mean_burst_ = mean_quiet_ / burst;
    dwell_quiet_ = dq;
    dwell_burst_ = db;
    state_end_ = step(exp_sample(dwell_quiet_));
  }

  /// Next arrival strictly after `t`.
  sim::Cycle next(sim::Cycle t) {
    if (!bursty_) return t + step(exp_sample(mean_quiet_));
    for (;;) {
      const double mean = in_burst_ ? mean_burst_ : mean_quiet_;
      const sim::Cycle cand = t + step(exp_sample(mean));
      if (cand <= state_end_) return cand;
      // Crossed a modulation boundary: restart the (memoryless) arrival
      // clock in the next state.
      t = state_end_;
      in_burst_ = !in_burst_;
      state_end_ =
          t + step(exp_sample(in_burst_ ? dwell_burst_ : dwell_quiet_));
    }
  }

  /// Uniform double in (0, 1] from the same stream (for Zipf/session/mix
  /// draws, keeping the whole arrival record one stream).
  double uniform() { return u01(); }
  std::uint64_t below(std::uint64_t n) { return rng_.below(n); }

 private:
  double u01() { return ((rng_() >> 11) + 1) * 0x1.0p-53; }
  double exp_sample(double mean) { return -std::log(u01()) * mean; }
  static sim::Cycle step(double d) {
    return d < 1.0 ? 1 : static_cast<sim::Cycle>(d);
  }

  sim::Xoshiro256 rng_;
  bool bursty_;
  bool in_burst_ = false;
  double mean_quiet_ = 1.0;
  double mean_burst_ = 1.0;
  double dwell_quiet_ = 1.0;
  double dwell_burst_ = 1.0;
  sim::Cycle state_end_ = 0;
};

/// Runs the open-loop service workload under construction `a` (kMpServer,
/// kHybComb, kShmServer or kCcSynch) and returns the standard RunResult
/// with the service fields filled. With base.obs.metrics set, the run
/// entry additionally carries a "service" block (docs/SERVICE.md).
RunResult run_service(const ServiceCfg& cfg, Approach a);

/// Runs the open-loop service workload against a sync::ShardedServer fleet
/// of cfg.shards MP-SERVER instances: session fibers resolve each arrival's
/// object to its home shard client-side and issue through the fleet's
/// ticket API, so one session keeps ops in flight against several shards at
/// once. Reports the same RunResult / "service" metrics block as
/// run_service() plus the shard count (docs/SHARDING.md).
RunResult run_service_sharded(const ServiceCfg& cfg);

}  // namespace hmps::harness

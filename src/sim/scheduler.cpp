#include "sim/scheduler.hpp"

namespace hmps::sim {

Scheduler::FiberId Scheduler::spawn(std::function<void()> fn, Cycle start,
                                    std::size_t stack_bytes) {
  const FiberId id = static_cast<FiberId>(fibers_.size());
  fibers_.push_back(std::make_unique<Fiber>(std::move(fn), stack_bytes));
  schedule_resume(id, start);
  return id;
}

void Scheduler::schedule_resume(FiberId id, Cycle t) {
  if (perturber_ != nullptr) [[unlikely]] {
    t += perturber_->resume_delay(id, t);
  }
  queue_.schedule(t, [this, id] {
    Fiber& f = *fibers_[id];
    if (f.finished()) return;
    const FiberId prev = current_;
    current_ = id;
    f.resume();
    current_ = prev;
  });
}

Cycle Scheduler::run(Cycle horizon) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > horizon) {
      now_ = horizon;
      break;
    }
    Cycle t;
    EventQueue::Callback cb = queue_.pop(&t);
    now_ = t;
    cb();
  }
  return now_;
}

void Scheduler::wait_until(Cycle t) {
  assert(in_fiber());
  const FiberId id = current_;
  Fiber& f = *fibers_[id];
  schedule_resume(id, t < now_ ? now_ : t);
  f.set_state(Fiber::State::kBlocked);
  f.yield();
}

void Scheduler::suspend() {
  assert(in_fiber());
  Fiber& f = *fibers_[current_];
  f.set_state(Fiber::State::kBlocked);
  f.yield();
}

void Scheduler::wake(FiberId id, Cycle t) {
  schedule_resume(id, t < now_ ? now_ : t);
}

}  // namespace hmps::sim

// Common critical-section plumbing shared by all universal constructions.
//
// Every construction serves one concurrent object (the paper's footnote 2:
// the object a CS executes on is implicit). A critical section is a plain
// function taking the execution context, the object, and one 64-bit
// argument, returning one 64-bit result — which is exactly what fits the
// paper's 3-word request / 1-word response message format:
//     request  = { sender_id, fn, arg }
//     response = { retval }
//
// The fn word doubles as the paper's Section 5.2 "opcode" optimization:
// since it is a direct function pointer, the servicing thread's dispatch is
// a single indirect call (the inlining effect the paper exploits).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "runtime/context.hpp"

namespace hmps::sync {

using rt::Cycle;
using rt::Tid;
using rt::Word;

/// Critical-section body type for a given execution context.
template <class Ctx>
using CsFn = std::uint64_t (*)(Ctx&, void* obj, std::uint64_t arg);

/// fn == kStopWord in a request shuts a server loop down (never a valid
/// function pointer).
inline constexpr std::uint64_t kStopWord = 0;

// ---- asynchronous delegation (docs/MODEL.md §9) ----
//
// An async request reuses the 3-word request format but packs a per-thread
// tag into the high half of the sender word:
//     request  = { tid | (tag << 32), fn, arg }        tag in [1, 2^31)
//     response = { kAsyncReplyMark | tag, retval }     (+ a pad word where
//                                                       frames must stay
//                                                       3 words, HybComb)
// tag == 0 marks a synchronous request and keeps the classic 1-word
// response, so the wire format is backward compatible. Bit 63 of a frame's
// first word distinguishes reply frames from request frames (a request's
// first word has a 31-bit tag at most, so bit 63 is always clear), which is
// what lets a HybComb combiner demux stray replies to its own outstanding
// tickets out of its request stream.

/// Reply-frame mark (bit 63 of the first reply word).
inline constexpr std::uint64_t kAsyncReplyMark = std::uint64_t{1} << 63;
/// Tags are 31-bit, nonzero, per-thread monotonic (wrapping).
inline constexpr std::uint64_t kAsyncTagMask = 0x7FFFFFFF;

inline constexpr std::uint64_t pack_request_id(Tid tid, std::uint64_t tag) {
  return static_cast<std::uint64_t>(tid) | (tag << 32);
}
inline constexpr Tid request_tid(std::uint64_t w0) {
  return static_cast<Tid>(w0 & 0xFFFFFFFFu);
}
inline constexpr std::uint64_t request_tag(std::uint64_t w0) {
  return (w0 >> 32) & kAsyncTagMask;
}
inline constexpr bool is_reply_frame(std::uint64_t w0) {
  return (w0 & kAsyncReplyMark) != 0;
}
inline constexpr std::uint64_t reply_tag(std::uint64_t w0) {
  return w0 & kAsyncTagMask;
}

/// Future for one asynchronous critical-section application. tag == 0 means
/// the operation already completed inline (e.g. the HybComb caller became
/// the combiner) and `value` holds the result; otherwise the ticket must be
/// reaped with the issuing construction's wait()/wait_all() by the issuing
/// thread. A pending ticket holds its Section 6 in-flight credit until the
/// reply reaches the client (docs/MODEL.md §9).
struct Ticket {
  std::uint64_t tag = 0;
  std::uint64_t value = 0;  ///< result, valid iff tag == 0
  std::uint32_t aux = 0;    ///< construction-private (e.g. ShmServer slot)
  // Latency accounting (docs/SERVICE.md): stamped by the issuing
  // construction. `issued` is the cycle apply_async() accepted the op;
  // `completed` is the cycle the result became available to the client
  // (inline completion stamps both at issue; wait()/wait_all() stamp
  // `completed` when the reply is reaped). Sojourn time for an open-loop
  // arrival is completed - arrival, of which completed - issued is the
  // in-construction share.
  Cycle issued = 0;
  Cycle completed = 0;
};

/// Per-construction counters, exposed uniformly so the harness can report
/// the paper's Fig. 4b / Section 5.3 metrics.
struct SyncStats {
  std::uint64_t ops = 0;             ///< apply() calls completed
  std::uint64_t served = 0;          ///< CSes executed while servicing
  std::uint64_t tenures = 0;         ///< combining rounds (combiners only)
  std::uint64_t cas_attempts = 0;    ///< CAS executions (HybComb Fig. 5.3)
  std::uint64_t cas_failures = 0;
  // Section 6 robustness paths (docs/ROBUSTNESS.md):
  std::uint64_t throttle_waits = 0;  ///< waits for an in-flight credit
  std::uint64_t stall_timeouts = 0;  ///< combiner-stall timeouts observed
  // Asynchronous delegation (docs/MODEL.md §9):
  std::uint64_t async_issued = 0;    ///< apply_async() tickets issued
  std::uint64_t async_batched = 0;   ///< async ops sent in trains of >= 2
  // Open-loop admission control (docs/SERVICE.md):
  std::uint64_t shed_ops = 0;        ///< arrivals dropped by admission control

  void reset() { *this = SyncStats{}; }

  /// Field-wise accumulation (the harness sums per-thread slots).
  void add(const SyncStats& o) {
    ops += o.ops;
    served += o.served;
    tenures += o.tenures;
    cas_attempts += o.cas_attempts;
    cas_failures += o.cas_failures;
    throttle_waits += o.throttle_waits;
    stall_timeouts += o.stall_timeouts;
    async_issued += o.async_issued;
    async_batched += o.async_batched;
    shed_ops += o.shed_ops;
  }

  /// Average requests executed per combining round (Fig. 4b).
  double combining_rate() const {
    return tenures ? static_cast<double>(served) / static_cast<double>(tenures)
                   : 0.0;
  }
};

/// Exploration yield point at a named sync-layer boundary (`where` must
/// have static storage duration). Compiles to nothing for contexts without
/// schedule exploration (NativeCtx); for SimCtx it is one predicted branch
/// unless a sim::Perturber is installed, which may stall the thread here as
/// if it were descheduled — the targeted-preemption lever of the
/// src/check schedule-exploration harness (docs/TESTING.md).
template <class Ctx>
inline void explore_point(Ctx& ctx, const char* where) {
  if constexpr (requires { ctx.explore_point(where); }) {
    ctx.explore_point(where);
  }
}

/// Hard capacity check for the fixed per-thread pools every construction
/// keeps (nodes, channels, stats). A run configured with more threads than
/// kMaxThreads used to index silently past those arrays; now it dies with a
/// diagnosis instead of corrupting memory.
inline void check_tid(Tid tid, std::uint32_t capacity, const char* who) {
  if (tid >= capacity) [[unlikely]] {
    std::fprintf(stderr,
                 "hmps fatal: %s: thread id %u exceeds the construction's "
                 "fixed capacity of %u threads (kMaxThreads)\n",
                 who, static_cast<unsigned>(tid),
                 static_cast<unsigned>(capacity));
    std::abort();
  }
}

}  // namespace hmps::sync

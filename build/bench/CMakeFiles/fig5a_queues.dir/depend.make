# Empty dependencies file for fig5a_queues.
# This may be replaced when dependencies are built.

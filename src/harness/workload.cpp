#include "harness/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

#include "ds/counter.hpp"
#include "ds/lcrq.hpp"
#include "ds/queue.hpp"
#include "ds/stack.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/async_batcher.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/locks.hpp"
#include "sync/mp_server.hpp"
#include "sync/shm_server.hpp"
#include "sync/universal.hpp"
#include "sync/vlink_server.hpp"

#include <optional>

namespace hmps::harness {

using rt::SimCtx;
using rt::SimExecutor;
using sim::Cycle;
using sync::SyncStats;

const char* approach_name(Approach a) {
  switch (a) {
    case Approach::kMpServer: return "mp-server";
    case Approach::kHybComb: return "HybComb";
    case Approach::kShmServer: return "shm-server";
    case Approach::kCcSynch: return "CC-Synch";
    case Approach::kMcsLock: return "mcs";
    case Approach::kClhLock: return "clh";
    case Approach::kTicketLock: return "ticket";
    case Approach::kTasLock: return "tas";
    case Approach::kTtasLock: return "ttas";
    case Approach::kVlinkServer: return "vlink-server";
  }
  return "?";
}

bool approach_needs_server(Approach a) {
  return a == Approach::kMpServer || a == Approach::kShmServer ||
         a == Approach::kVlinkServer;
}

const char* queue_name(QueueImpl q) {
  switch (q) {
    case QueueImpl::kMp1: return "mp-server-1";
    case QueueImpl::kHyb1: return "HybComb-1";
    case QueueImpl::kShm1: return "shm-server-1";
    case QueueImpl::kCc1: return "CC-Synch-1";
    case QueueImpl::kMp2: return "mp-server-2";
    case QueueImpl::kLcrq: return "LCRQ";
    case QueueImpl::kVl1: return "vlink-1";
  }
  return "?";
}

const char* stack_name(StackImpl s) {
  switch (s) {
    case StackImpl::kMp: return "mp-server";
    case StackImpl::kHyb: return "HybComb";
    case StackImpl::kShm: return "shm-server";
    case StackImpl::kCc: return "CC-Synch";
    case StackImpl::kTreiber: return "Treiber";
    case StackImpl::kVl: return "vlink";
  }
  return "?";
}

namespace {

// Everything the generic runner snapshots at window boundaries.
struct Snapshot {
  std::vector<std::uint64_t> ops;
  std::vector<double> latsum;
  SyncStats stats;           // summed over threads
  Cycle core0_busy = 0, core0_stall = 0;
  std::uint64_t served = 0;  // CSes executed by the servicing thread(s)
  std::uint64_t msgs = 0;
  Cycle ctrl_wait = 0;
  // Settled per-core cycle accounts (monotonic; windows are diffs).
  std::vector<obs::CycleAccount> accounts;
};

struct DriverHooks {
  // Called once with the freshly built executor, before any thread is
  // added. Constructions that need a machine model reference at
  // construction time (the Virtual-Link fabric lives inside the executor's
  // Machine) are created here into optionals on the caller's frame; the
  // closures below then dereference them. May be empty.
  std::function<void(SimExecutor&)> init;
  // One application operation (op index k for alternation). Runs on an app
  // thread's context. Returns the number of operations COMPLETED by the
  // call: 1 for synchronous apply, 0 while an async batcher is buffering,
  // and the train length when a train is issued and reaped.
  std::function<std::uint64_t(SimCtx&, std::uint64_t)> op;
  // Server bodies (run on threads 0..n_servers-1); empty = no servers.
  std::vector<std::function<void(SimCtx&)>> servers;
  // Sums construction stats over all thread slots.
  std::function<SyncStats()> sum_stats;
  // Registers construction-specific telemetry gauges (server inflight
  // credits, combiner queue length). Called once before the warmup when
  // cfg.telemetry_window > 0; may be empty.
  std::function<void(obs::Telemetry&)> register_telemetry;
};

RunResult drive(const RunCfg& cfg, DriverHooks hooks) {
  SimExecutor ex(cfg.machine, cfg.seed);
  // Install the fault plan before any thread starts so its first windows
  // land deterministically; a disabled plan leaves the machine untouched
  // (and the golden traces byte-identical).
  if (cfg.faults.enabled()) ex.machine().install_faults(cfg.faults);
  // Tracing only observes — recording never advances simulated time, so
  // runs with and without a trace sink produce identical timings (pinned by
  // tests/test_obs.cpp).
  const bool tracing = cfg.obs.trace != nullptr;
  if (tracing) {
    ex.machine().tracer().enable(cfg.obs.trace_max_events);
    ex.machine().tracer().set_process(cfg.obs.pid, cfg.obs.label);
  }
  if (hooks.init) hooks.init(ex);
  const std::uint32_t ns = static_cast<std::uint32_t>(hooks.servers.size());
  const std::uint32_t na = cfg.app_threads;

  std::vector<std::uint64_t> ops(na, 0);
  std::vector<double> latsum(na, 0.0);
  bool measuring = false;  // set once warmup completes
  sim::Histogram lat_hist(/*bucket_width=*/8, /*nbuckets=*/4096);

  for (std::uint32_t s = 0; s < ns; ++s) {
    ex.add_thread(hooks.servers[s]);
  }
  for (std::uint32_t i = 0; i < na; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      std::uint64_t k = 0;
      for (;;) {
        const Cycle t0 = ctx.now();
        const std::uint64_t done = hooks.op(ctx, k++);
        const Cycle lat = ctx.now() - t0;
        // latsum accumulates all time spent inside op() (including calls
        // that only buffered), so lat_mean stays time-per-completed-op
        // under batching; the histogram records the train's mean.
        ops[i] += done;
        latsum[i] += static_cast<double>(lat);
        if (measuring && done > 0) lat_hist.add(lat / done);
        // Section 5.2: up to think_iters_max empty loop iterations.
        ctx.compute(cfg.think_iter_cost *
                    ctx.rand_below(cfg.think_iters_max + 1));
      }
    });
  }

  auto snap = [&]() {
    Snapshot s;
    s.ops = ops;
    s.latsum = latsum;
    s.stats = hooks.sum_stats ? hooks.sum_stats() : SyncStats{};
    s.core0_busy = ex.machine().core(0).busy;
    s.core0_stall = ex.machine().core(0).stall;
    s.served = s.stats.served;
    s.msgs = ex.machine().udn().counters().messages;
    s.ctrl_wait = ex.machine().coherence().counters().ctrl_wait_total;
    ex.machine().settle_accounts();
    s.accounts.reserve(ex.machine().cores());
    for (std::uint32_t c = 0; c < ex.machine().cores(); ++c) {
      s.accounts.push_back(ex.machine().core(c).account);
    }
    return s;
  };

  obs::Telemetry tel(ex.machine(), {cfg.telemetry_window});
  if (tel.enabled() && hooks.register_telemetry) hooks.register_telemetry(tel);

  ex.run_until(cfg.warmup);
  measuring = true;
  const Snapshot first = snap();
  Snapshot prev = first;
  // Baseline right after the run-level snapshot (snap() settled the
  // accounts), so per-bucket window sums telescope to exactly the
  // run-level cycle_accounts deltas below.
  tel.start(ex.sched().now(), ex.sched().now() + cfg.reps * cfg.window);

  RunResult r;
  std::vector<double> rep_mops;
  double lat_n = 0, lat_sum = 0;
  double serv_busy = 0, serv_stall = 0, serv_ops = 0;
  double fair_max = 0, fair_min = 0;
  SyncStats stat_delta{};
  std::uint64_t msgs = 0;
  double ctrl_wait = 0;

  for (std::uint32_t rep = 0; rep < cfg.reps; ++rep) {
    ex.run_until(ex.sched().now() + cfg.window);
    Snapshot cur = snap();

    std::uint64_t dops = 0, dmax = 0, dmin = ~std::uint64_t{0};
    double dlat = 0;
    for (std::uint32_t i = 0; i < na; ++i) {
      const std::uint64_t d = cur.ops[i] - prev.ops[i];
      dops += d;
      dlat += cur.latsum[i] - prev.latsum[i];
      // The fixed combiner (thread 0) completes no application ops; skip
      // zero-op threads in the fairness ratio.
      if (d > 0) {
        dmax = std::max(dmax, d);
        dmin = std::min(dmin, d);
      }
    }
    rep_mops.push_back(static_cast<double>(dops) /
                       static_cast<double>(cfg.window) * 1200.0);
    lat_sum += dlat;
    lat_n += static_cast<double>(dops);
    fair_max += static_cast<double>(dmax);
    fair_min += static_cast<double>(dmin == ~std::uint64_t{0} ? 0 : dmin);

    serv_busy += static_cast<double>(cur.core0_busy - prev.core0_busy);
    serv_stall += static_cast<double>(cur.core0_stall - prev.core0_stall);
    const std::uint64_t dserved = cur.served - prev.served;
    serv_ops += static_cast<double>(dserved ? dserved : dops);

    stat_delta.ops += cur.stats.ops - prev.stats.ops;
    stat_delta.served += cur.stats.served - prev.stats.served;
    stat_delta.tenures += cur.stats.tenures - prev.stats.tenures;
    stat_delta.cas_attempts += cur.stats.cas_attempts - prev.stats.cas_attempts;
    stat_delta.cas_failures += cur.stats.cas_failures - prev.stats.cas_failures;
    stat_delta.throttle_waits +=
        cur.stats.throttle_waits - prev.stats.throttle_waits;
    stat_delta.stall_timeouts +=
        cur.stats.stall_timeouts - prev.stats.stall_timeouts;
    stat_delta.async_issued += cur.stats.async_issued - prev.stats.async_issued;
    stat_delta.async_batched +=
        cur.stats.async_batched - prev.stats.async_batched;
    msgs += cur.msgs - prev.msgs;
    ctrl_wait += static_cast<double>(cur.ctrl_wait - prev.ctrl_wait);

    r.total_ops += dops;
    prev = cur;
  }
  // The last snap() settled the accounts at the final window boundary;
  // close telemetry's final window against those same values.
  tel.flush(ex.sched().now());

  double mean = 0;
  for (double m : rep_mops) mean += m;
  mean /= static_cast<double>(rep_mops.size());
  double var = 0;
  for (double m : rep_mops) var += (m - mean) * (m - mean);
  var /= static_cast<double>(rep_mops.size());

  r.mops = mean;
  r.mops_std = std::sqrt(var);
  r.lat_mean = lat_n > 0 ? lat_sum / lat_n : 0;
  r.lat_p50 = static_cast<double>(lat_hist.quantile(0.50));
  r.lat_p99 = static_cast<double>(lat_hist.quantile(0.99));
  r.serv_total_per_op = serv_ops > 0 ? (serv_busy + serv_stall) / serv_ops : 0;
  r.serv_stall_per_op = serv_ops > 0 ? serv_stall / serv_ops : 0;
  r.combining_rate = stat_delta.combining_rate();
  const double napply = static_cast<double>(r.total_ops);
  r.cas_per_op = napply > 0 ? static_cast<double>(stat_delta.cas_attempts) /
                                  napply
                            : 0;
  r.fairness = fair_min > 0 ? fair_max / fair_min : 0;
  r.msgs_per_op = napply > 0 ? static_cast<double>(msgs) / napply : 0;
  r.ctrl_wait_per_op = napply > 0 ? ctrl_wait / napply : 0;
  r.cycles_per_op = r.mops > 0 ? 1200.0 / r.mops : 0;
  r.throttle_waits = stat_delta.throttle_waits;
  r.stall_timeouts = stat_delta.stall_timeouts;
  for (std::uint32_t c = 0; c < ex.machine().cores(); ++c) {
    r.preemptions += ex.machine().core(c).preemptions;
  }
  // Exact attribution of the servicing core over the measurement windows.
  // Both endpoints are settled, so the buckets sum to reps * window.
  r.serv_account = prev.accounts[0].diff_since(first.accounts[0]);
  r.serv_ops = serv_ops;

  if (cfg.obs.metrics != nullptr) {
    using obs::JsonValue;
    using obs::MetricsRegistry;
    JsonValue& run = cfg.obs.metrics->add_run(cfg.obs.label);
    JsonValue& c = run["config"];
    c["app_threads"] = JsonValue(std::uint64_t{cfg.app_threads});
    c["servers"] = JsonValue(std::uint64_t{ns});
    c["warmup"] = JsonValue(std::uint64_t{cfg.warmup});
    c["window"] = JsonValue(std::uint64_t{cfg.window});
    c["reps"] = JsonValue(std::uint64_t{cfg.reps});
    c["seed"] = JsonValue(cfg.seed);
    c["max_ops"] = JsonValue(cfg.max_ops);
    c["think_iters_max"] = JsonValue(std::uint64_t{cfg.think_iters_max});
    c["think_iter_cost"] = JsonValue(std::uint64_t{cfg.think_iter_cost});
    c["cs_iters"] = JsonValue(cfg.cs_iters);
    c["fixed_combiner"] = JsonValue(cfg.fixed_combiner);
    c["max_inflight"] = JsonValue(cfg.max_inflight);
    c["stall_timeout"] = JsonValue(std::uint64_t{cfg.stall_timeout});
    c["async_batch"] = JsonValue(std::uint64_t{cfg.async_batch});
    c["faults_enabled"] = JsonValue(cfg.faults.enabled());
    JsonValue& res = run["results"];
    res["mops"] = JsonValue(r.mops);
    res["mops_std"] = JsonValue(r.mops_std);
    res["lat_mean"] = JsonValue(r.lat_mean);
    res["lat_p50"] = JsonValue(r.lat_p50);
    res["lat_p99"] = JsonValue(r.lat_p99);
    res["serv_total_per_op"] = JsonValue(r.serv_total_per_op);
    res["serv_stall_per_op"] = JsonValue(r.serv_stall_per_op);
    res["combining_rate"] = JsonValue(r.combining_rate);
    res["cas_per_op"] = JsonValue(r.cas_per_op);
    res["fairness"] = JsonValue(r.fairness);
    res["msgs_per_op"] = JsonValue(r.msgs_per_op);
    res["ctrl_wait_per_op"] = JsonValue(r.ctrl_wait_per_op);
    res["cycles_per_op"] = JsonValue(r.cycles_per_op);
    res["total_ops"] = JsonValue(r.total_ops);
    res["throttle_waits"] = JsonValue(r.throttle_waits);
    res["stall_timeouts"] = JsonValue(r.stall_timeouts);
    res["preemptions"] = JsonValue(r.preemptions);
    res["serv_ops"] = JsonValue(r.serv_ops);
    run["machine_params"] = MetricsRegistry::params_json(cfg.machine);
    run["sync_stats"] = MetricsRegistry::sync_stats_json(stat_delta);
    run["machine"] = MetricsRegistry::machine_json(ex.machine());
    // Windowed (post-warmup) per-core attribution; [0] is the servicing
    // core for the server/combiner constructions.
    JsonValue& accts = run["cycle_accounts"];
    for (std::size_t core = 0; core < prev.accounts.size(); ++core) {
      accts.push_back(MetricsRegistry::cycle_account_json(
          prev.accounts[core].diff_since(first.accounts[core])));
    }
    if (tel.enabled()) {
      run["telemetry"] = tel.to_json();
    }
    if (tracing) {
      run["trace"] = MetricsRegistry::tracer_json(ex.machine().tracer());
    }
  }
  if (tracing) {
    cfg.obs.trace->merge_from(ex.machine().tracer());
  }
  return r;
}

}  // namespace

RunResult run_counter(const RunCfg& cfg, Approach a) {
  // Objects outlive the executor inside drive(); keep them on this frame.
  ds::SeqCounter counter;
  ds::ArrayObject array;
  void* obj = cfg.cs_iters > 0 ? static_cast<void*>(&array)
                               : static_cast<void*>(&counter);
  const sync::CsFn<SimCtx> fn = cfg.cs_iters > 0 ? &ds::array_inc_loop<SimCtx>
                                                 : &ds::counter_inc<SimCtx>;
  const std::uint64_t arg = cfg.cs_iters;

  sync::MpServer<SimCtx> mp(0, obj, cfg.max_inflight);
  sync::ShmServer<SimCtx> shm(0, obj, sync::ShmServer<SimCtx>::kMaxThreads,
                              cfg.async_batch);
  sync::HybComb<SimCtx>::Options hopts;
  hopts.stall_timeout = cfg.stall_timeout;
  hopts.max_inflight = cfg.max_inflight;
  sync::HybComb<SimCtx> hyb(obj, cfg.max_ops, cfg.fixed_combiner, hopts);

  // The Virtual-Link construction needs the executor's fabric at
  // construction time; DriverHooks::init fills the optional once the
  // executor exists (before any thread runs).
  std::optional<sync::VlinkServer<SimCtx>> vl;

  // Per-thread request batchers for the async-capable constructions
  // (indexed by ctx.tid(); unused entries are inert).
  using MpBatch = sync::AsyncBatcher<SimCtx, sync::MpServer<SimCtx>>;
  using HybBatch = sync::AsyncBatcher<SimCtx, sync::HybComb<SimCtx>>;
  using ShmBatch = sync::AsyncBatcher<SimCtx, sync::ShmServer<SimCtx>>;
  using VlBatch = sync::AsyncBatcher<SimCtx, sync::VlinkServer<SimCtx>>;
  std::vector<MpBatch> mpb;
  std::vector<HybBatch> hybb;
  std::vector<ShmBatch> shmb;
  std::vector<VlBatch> vlb;
  const bool batching =
      cfg.async_batch >= 2 &&
      (a == Approach::kMpServer || a == Approach::kHybComb ||
       a == Approach::kShmServer || a == Approach::kVlinkServer);
  if (batching) {
    mpb.reserve(64);
    hybb.reserve(64);
    shmb.reserve(64);
    for (std::uint32_t t = 0; t < 64; ++t) {
      mpb.emplace_back(mp, cfg.async_batch);
      hybb.emplace_back(hyb, cfg.async_batch);
      shmb.emplace_back(shm, cfg.async_batch);
    }
  }
  sync::CcSynch<SimCtx> cc(obj, static_cast<std::uint32_t>(cfg.max_ops),
                           cfg.fixed_combiner);
  sync::LockUc<SimCtx, sync::McsLock<SimCtx>> mcs(obj);
  sync::LockUc<SimCtx, sync::ClhLock<SimCtx>> clh(obj);
  sync::LockUc<SimCtx, sync::TicketLock<SimCtx>> ticket(obj);
  sync::LockUc<SimCtx, sync::TasLock<SimCtx>> tas(obj);
  sync::LockUc<SimCtx, sync::TtasLock<SimCtx>> ttas(obj);

  DriverHooks hooks;
  if (a == Approach::kVlinkServer) {
    hooks.init = [&](SimExecutor& ex) {
      vl.emplace(ex.machine().vlink(), /*server_core=*/0, obj,
                 cfg.max_inflight);
      if (batching) {
        vlb.reserve(64);
        for (std::uint32_t t = 0; t < 64; ++t) {
          vlb.emplace_back(*vl, cfg.async_batch);
        }
      }
    };
  }
  if (approach_needs_server(a)) {
    hooks.servers.push_back([&, a](SimCtx& ctx) {
      if (a == Approach::kMpServer) {
        mp.serve(ctx);
      } else if (a == Approach::kVlinkServer) {
        vl->serve(ctx);
      } else {
        shm.serve(ctx);
      }
    });
  }
  if (batching) {
    hooks.op = [&, a, fn, arg](SimCtx& ctx, std::uint64_t) -> std::uint64_t {
      switch (a) {
        case Approach::kMpServer: return mpb[ctx.tid()].add(ctx, fn, arg);
        case Approach::kHybComb: return hybb[ctx.tid()].add(ctx, fn, arg);
        case Approach::kVlinkServer: return vlb[ctx.tid()].add(ctx, fn, arg);
        default: return shmb[ctx.tid()].add(ctx, fn, arg);
      }
    };
  } else {
    hooks.op = [&, a, fn, arg](SimCtx& ctx, std::uint64_t) -> std::uint64_t {
      switch (a) {
        case Approach::kMpServer: mp.apply(ctx, fn, arg); break;
        case Approach::kHybComb: hyb.apply(ctx, fn, arg); break;
        case Approach::kShmServer: shm.apply(ctx, fn, arg); break;
        case Approach::kCcSynch: cc.apply(ctx, fn, arg); break;
        case Approach::kMcsLock: mcs.apply(ctx, fn, arg); break;
        case Approach::kClhLock: clh.apply(ctx, fn, arg); break;
        case Approach::kTicketLock: ticket.apply(ctx, fn, arg); break;
        case Approach::kTasLock: tas.apply(ctx, fn, arg); break;
        case Approach::kTtasLock: ttas.apply(ctx, fn, arg); break;
        case Approach::kVlinkServer: vl->apply(ctx, fn, arg); break;
      }
      return 1;
    };
  }
  hooks.register_telemetry = [&, a](obs::Telemetry& tel) {
    if (a == Approach::kMpServer) {
      tel.add_gauge("server_inflight", [&mp] { return mp.inflight(); });
    } else if (a == Approach::kVlinkServer) {
      tel.add_gauge("server_inflight", [&vl] { return vl->inflight(); });
    } else if (a == Approach::kHybComb) {
      tel.add_gauge("combiner_inflight",
                    [&hyb] { return hyb.combiner_inflight(); });
    }
  };
  hooks.sum_stats = [&, a]() {
    SyncStats sum;
    for (std::uint32_t t = 0; t < 64; ++t) {
      const SyncStats* s = nullptr;
      switch (a) {
        case Approach::kMpServer: s = &mp.stats(t); break;
        case Approach::kHybComb: s = &hyb.stats(t); break;
        case Approach::kShmServer: s = &shm.stats(t); break;
        case Approach::kCcSynch: s = &cc.stats(t); break;
        case Approach::kMcsLock: s = &mcs.stats(t); break;
        case Approach::kClhLock: s = &clh.stats(t); break;
        case Approach::kTicketLock: s = &ticket.stats(t); break;
        case Approach::kTasLock: s = &tas.stats(t); break;
        case Approach::kTtasLock: s = &ttas.stats(t); break;
        case Approach::kVlinkServer: s = &vl->stats(t); break;
      }
      sum.add(*s);
    }
    return sum;
  };
  return drive(cfg, std::move(hooks));
}

double ideal_cs_cycles(const RunCfg& cfg) {
  SimExecutor ex(cfg.machine, cfg.seed);
  ds::ArrayObject array;
  double per_op = 0;
  const std::uint64_t iters = cfg.cs_iters;
  ex.add_thread([&](SimCtx& ctx) {
    // Warm the cache, then time the body.
    ds::array_inc_loop<SimCtx>(ctx, &array, iters);
    const Cycle t0 = ctx.now();
    constexpr int kReps = 50;
    for (int i = 0; i < kReps; ++i) {
      ds::array_inc_loop<SimCtx>(ctx, &array, iters);
    }
    per_op = static_cast<double>(ctx.now() - t0) / kReps;
  });
  ex.run_until(sim::kCycleMax);
  return per_op;
}

RunResult run_queue(const RunCfg& cfg, QueueImpl qi) {
  ds::SeqQueue q(16384);
  ds::Lcrq<SimCtx> lcrq(7, 8192);

  sync::MpServer<SimCtx> mp1(0, &q, cfg.max_inflight);
  sync::HybComb<SimCtx>::Options hopts;
  hopts.stall_timeout = cfg.stall_timeout;
  hopts.max_inflight = cfg.max_inflight;
  sync::HybComb<SimCtx> hyb(&q, cfg.max_ops, /*fixed_combiner=*/false, hopts);
  sync::ShmServer<SimCtx> shm(0, &q);
  sync::CcSynch<SimCtx> cc(&q, static_cast<std::uint32_t>(cfg.max_ops));
  sync::MpServer<SimCtx> mp2e(0, &q, cfg.max_inflight);
  sync::MpServer<SimCtx> mp2d(1, &q, cfg.max_inflight);
  std::optional<sync::VlinkServer<SimCtx>> vl1;

  DriverHooks hooks;
  switch (qi) {
    case QueueImpl::kMp1:
      hooks.servers.push_back([&](SimCtx& ctx) { mp1.serve(ctx); });
      break;
    case QueueImpl::kVl1:
      hooks.init = [&](SimExecutor& ex) {
        vl1.emplace(ex.machine().vlink(), /*server_core=*/0, &q,
                    cfg.max_inflight);
      };
      hooks.servers.push_back([&](SimCtx& ctx) { vl1->serve(ctx); });
      break;
    case QueueImpl::kShm1:
      hooks.servers.push_back([&](SimCtx& ctx) { shm.serve(ctx); });
      break;
    case QueueImpl::kMp2:
      hooks.servers.push_back([&](SimCtx& ctx) { mp2e.serve(ctx); });
      hooks.servers.push_back([&](SimCtx& ctx) { mp2d.serve(ctx); });
      break;
    case QueueImpl::kHyb1:
    case QueueImpl::kCc1:
    case QueueImpl::kLcrq:
      break;  // combiner/lock-free queues run without dedicated servers
    default:
      // A silently-skipped enumerator here used to run the benchmark with
      // no server thread and hang the clients; die with a diagnosis.
      std::fprintf(stderr,
                   "hmps fatal: run_queue: unhandled QueueImpl %d in server "
                   "dispatch\n",
                   static_cast<int>(qi));
      std::abort();
  }
  // Async batching for the single-server message-passing queue (the other
  // impls stay synchronous; combiner/lock-free queues have no server to
  // pipeline against a second request).
  using Mp1Batch = sync::AsyncBatcher<SimCtx, sync::MpServer<SimCtx>>;
  std::vector<Mp1Batch> mp1b;
  if (cfg.async_batch >= 2 && qi == QueueImpl::kMp1) {
    mp1b.reserve(64);
    for (std::uint32_t t = 0; t < 64; ++t) {
      mp1b.emplace_back(mp1, cfg.async_batch);
    }
    hooks.op = [&](SimCtx& ctx, std::uint64_t k) -> std::uint64_t {
      const bool enq = (k & 1) == 0;
      const std::uint64_t v = 1 + (k & 0xFFFF);
      return enq ? mp1b[ctx.tid()].add(ctx, ds::q_enqueue<SimCtx>, v)
                 : mp1b[ctx.tid()].add(ctx, ds::q_dequeue<SimCtx>, 0);
    };
    hooks.sum_stats = [&]() {
      SyncStats sum;
      for (std::uint32_t t = 0; t < 64; ++t) sum.add(mp1.stats(t));
      return sum;
    };
    return drive(cfg, std::move(hooks));
  }
  hooks.op = [&, qi](SimCtx& ctx, std::uint64_t k) -> std::uint64_t {
    const bool enq = (k & 1) == 0;
    const std::uint64_t v = 1 + (k & 0xFFFF);
    switch (qi) {
      case QueueImpl::kMp1:
        enq ? (void)mp1.apply(ctx, ds::q_enqueue<SimCtx>, v)
            : (void)mp1.apply(ctx, ds::q_dequeue<SimCtx>, 0);
        break;
      case QueueImpl::kHyb1:
        enq ? (void)hyb.apply(ctx, ds::q_enqueue<SimCtx>, v)
            : (void)hyb.apply(ctx, ds::q_dequeue<SimCtx>, 0);
        break;
      case QueueImpl::kShm1:
        enq ? (void)shm.apply(ctx, ds::q_enqueue<SimCtx>, v)
            : (void)shm.apply(ctx, ds::q_dequeue<SimCtx>, 0);
        break;
      case QueueImpl::kCc1:
        enq ? (void)cc.apply(ctx, ds::q_enqueue<SimCtx>, v)
            : (void)cc.apply(ctx, ds::q_dequeue<SimCtx>, 0);
        break;
      case QueueImpl::kMp2:
        enq ? (void)mp2e.apply(ctx, ds::q_enqueue_fenced<SimCtx>, v)
            : (void)mp2d.apply(ctx, ds::q_dequeue_fenced<SimCtx>, 0);
        break;
      case QueueImpl::kLcrq:
        enq ? lcrq.enqueue(ctx, static_cast<std::uint32_t>(v))
            : (void)lcrq.dequeue(ctx);
        break;
      case QueueImpl::kVl1:
        enq ? (void)vl1->apply(ctx, ds::q_enqueue<SimCtx>, v)
            : (void)vl1->apply(ctx, ds::q_dequeue<SimCtx>, 0);
        break;
    }
    return 1;
  };
  hooks.sum_stats = [&, qi]() {
    SyncStats sum;
    auto acc = [&sum](const SyncStats& s) { sum.add(s); };
    for (std::uint32_t t = 0; t < 64; ++t) {
      switch (qi) {
        case QueueImpl::kMp1: acc(mp1.stats(t)); break;
        case QueueImpl::kHyb1: acc(hyb.stats(t)); break;
        case QueueImpl::kShm1: acc(shm.stats(t)); break;
        case QueueImpl::kCc1: acc(cc.stats(t)); break;
        case QueueImpl::kMp2:
          acc(mp2e.stats(t));
          acc(mp2d.stats(t));
          break;
        case QueueImpl::kLcrq: break;
        case QueueImpl::kVl1: acc(vl1->stats(t)); break;
      }
    }
    return sum;
  };
  return drive(cfg, std::move(hooks));
}

RunResult run_stack(const RunCfg& cfg, StackImpl si) {
  ds::SeqStack st(16384);
  ds::TreiberStack<SimCtx> tr(2048);

  sync::MpServer<SimCtx> mp(0, &st, cfg.max_inflight);
  sync::HybComb<SimCtx>::Options hopts;
  hopts.stall_timeout = cfg.stall_timeout;
  hopts.max_inflight = cfg.max_inflight;
  sync::HybComb<SimCtx> hyb(&st, cfg.max_ops, /*fixed_combiner=*/false, hopts);
  sync::ShmServer<SimCtx> shm(0, &st);
  sync::CcSynch<SimCtx> cc(&st, static_cast<std::uint32_t>(cfg.max_ops));
  std::optional<sync::VlinkServer<SimCtx>> vl;

  DriverHooks hooks;
  if (si == StackImpl::kMp) {
    hooks.servers.push_back([&](SimCtx& ctx) { mp.serve(ctx); });
  } else if (si == StackImpl::kShm) {
    hooks.servers.push_back([&](SimCtx& ctx) { shm.serve(ctx); });
  } else if (si == StackImpl::kVl) {
    hooks.init = [&](SimExecutor& ex) {
      vl.emplace(ex.machine().vlink(), /*server_core=*/0, &st,
                 cfg.max_inflight);
    };
    hooks.servers.push_back([&](SimCtx& ctx) { vl->serve(ctx); });
  }
  hooks.op = [&, si](SimCtx& ctx, std::uint64_t k) -> std::uint64_t {
    const bool push = (k & 1) == 0;
    const std::uint64_t v = 1 + (k & 0xFFFF);
    switch (si) {
      case StackImpl::kMp:
        push ? (void)mp.apply(ctx, ds::s_push<SimCtx>, v)
             : (void)mp.apply(ctx, ds::s_pop<SimCtx>, 0);
        break;
      case StackImpl::kHyb:
        push ? (void)hyb.apply(ctx, ds::s_push<SimCtx>, v)
             : (void)hyb.apply(ctx, ds::s_pop<SimCtx>, 0);
        break;
      case StackImpl::kShm:
        push ? (void)shm.apply(ctx, ds::s_push<SimCtx>, v)
             : (void)shm.apply(ctx, ds::s_pop<SimCtx>, 0);
        break;
      case StackImpl::kCc:
        push ? (void)cc.apply(ctx, ds::s_push<SimCtx>, v)
             : (void)cc.apply(ctx, ds::s_pop<SimCtx>, 0);
        break;
      case StackImpl::kTreiber:
        push ? tr.push(ctx, v) : (void)tr.pop(ctx);
        break;
      case StackImpl::kVl:
        push ? (void)vl->apply(ctx, ds::s_push<SimCtx>, v)
             : (void)vl->apply(ctx, ds::s_pop<SimCtx>, 0);
        break;
    }
    return 1;
  };
  hooks.sum_stats = [&, si]() {
    SyncStats sum;
    auto acc = [&sum](const SyncStats& s) { sum.add(s); };
    for (std::uint32_t t = 0; t < 64; ++t) {
      switch (si) {
        case StackImpl::kMp: acc(mp.stats(t)); break;
        case StackImpl::kHyb: acc(hyb.stats(t)); break;
        case StackImpl::kShm: acc(shm.stats(t)); break;
        case StackImpl::kCc: acc(cc.stats(t)); break;
        case StackImpl::kTreiber: {
          sum.cas_attempts += tr.stats(t).cas_failures;
          break;
        }
        case StackImpl::kVl: acc(vl->stats(t)); break;
      }
    }
    return sum;
  };
  return drive(cfg, std::move(hooks));
}

}  // namespace hmps::harness

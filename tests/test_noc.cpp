// Tests for the optional link-contention NoC model and its integration
// with the UDN.
#include <gtest/gtest.h>

#include "arch/machine.hpp"
#include "arch/noc.hpp"
#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "ds/counter.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/mp_server.hpp"

namespace hmps::arch {
namespace {

class NocTest : public ::testing::Test {
 protected:
  NocTest() : p_(MachineParams::tilegx36()), topo_(p_), noc_(p_, topo_) {}
  MachineParams p_;
  MeshTopology topo_;
  NocModel noc_;
};

TEST_F(NocTest, UncontendedMatchesWireFormula) {
  // A lone message's route time equals router + hop * distance.
  const Cycle t = noc_.route(0, 35, 1000, 3);
  EXPECT_EQ(t, 1000 + topo_.wire(0, 35));
  EXPECT_EQ(noc_.counters().link_wait, 0u);
  EXPECT_EQ(noc_.counters().hops, topo_.hops(0, 35));
}

TEST_F(NocTest, SameSourceBackToBackQueues) {
  // Two messages leaving core 0 eastward at the same time share the first
  // link: the second one waits for the first one's flits.
  const Cycle a = noc_.route(0, 5, 1000, 3);
  const Cycle b = noc_.route(0, 5, 1000, 3);
  EXPECT_GT(b, a);
  EXPECT_GT(noc_.counters().link_wait, 0u);
}

TEST_F(NocTest, DisjointPathsDoNotInterfere) {
  // Rows 0 and 5 never share a link under XY routing.
  const Cycle a = noc_.route(0, 5, 1000, 3);   // row 0 eastward
  const Cycle b = noc_.route(30, 35, 1000, 3); // row 5 eastward
  EXPECT_EQ(a, 1000 + topo_.wire(0, 5));
  EXPECT_EQ(b, 1000 + topo_.wire(30, 35));
  EXPECT_EQ(noc_.counters().link_wait, 0u);
}

TEST_F(NocTest, XyRoutingGoesXFirst) {
  // 0 -> 35 takes 5 east hops then 5 south hops; the east links of row 0
  // must be reserved (observable by a second message through them).
  noc_.route(0, 35, 1000, 4);
  const Cycle t = noc_.route(0, 5, 1000, 1);  // same row-0 east links
  EXPECT_GT(t, 1000 + topo_.wire(0, 5));
}

TEST_F(NocTest, ZeroHopRouteIsRouterOnly) {
  const Cycle t = noc_.route(7, 7, 500, 3);
  EXPECT_EQ(t, 500 + p_.router);
}

TEST(NocIntegration, ManyToOneSlowsDeliveryUnderContention) {
  using rt::SimCtx;
  // 35 clients hammer one server with and without link modeling; with the
  // wormhole model enabled, total served throughput must not increase and
  // the NoC must report queueing.
  auto run = [](bool contention) {
    arch::MachineParams p = arch::MachineParams::tilegx36();
    p.model_link_contention = contention;
    rt::SimExecutor ex(p, 17);
    static ds::SeqCounter counter;  // fresh value below
    counter.value.store(0);
    sync::MpServer<SimCtx> mp(0, &counter);
    ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
    for (int i = 0; i < 35; ++i) {
      ex.add_thread([&](SimCtx& ctx) {
        for (;;) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
      });
    }
    ex.run_until(150'000);
    return std::pair<std::uint64_t, Cycle>(
        counter.value.load(),
        ex.machine().udn().noc().counters().link_wait);
  };
  const auto [ops_plain, wait_plain] = run(false);
  const auto [ops_noc, wait_noc] = run(true);
  EXPECT_EQ(wait_plain, 0u);        // model off: never consulted
  EXPECT_GT(wait_noc, 0u);          // model on: real queueing observed
  EXPECT_LE(ops_noc, ops_plain);    // contention cannot speed things up
  EXPECT_GT(ops_noc, ops_plain / 2);  // ...and is a second-order effect
}

}  // namespace
}  // namespace hmps::arch

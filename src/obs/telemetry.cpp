#include "obs/telemetry.hpp"

#include <utility>

namespace hmps::obs {

Telemetry::Telemetry(arch::Machine& m, Config cfg) : m_(m), cfg_(cfg) {
  if (enabled()) {
    // Per-link accumulation is a read-side add on the routing loop; it
    // never changes a delivery time, so switching it on here keeps the
    // zero-observer-effect bar.
    m_.udn().noc().enable_link_stats();
  }
}

void Telemetry::add_gauge(std::string name, GaugeFn fn) {
  if (!enabled()) return;
  gauges_.push_back(Track{std::move(name), std::move(fn), nullptr, 0});
}

void Telemetry::add_counter(std::string name, GaugeFn fn) {
  if (!enabled()) return;
  counters_.push_back(Track{std::move(name), std::move(fn), nullptr, 0});
}

void Telemetry::record_completion(sim::Cycle sojourn) {
  if (!enabled() || !completion_stream_) return;
  ++win_completions_;
  sojourn_.add(sojourn);
  if (sojourn > win_max_sojourn_) win_max_sojourn_ = sojourn;
}

void Telemetry::start(sim::Cycle t0, sim::Cycle t_end) {
  if (!enabled() || started_) return;
  started_ = true;
  start_ = last_close_ = t0;
  end_ = t_end;

  const std::uint32_t n = m_.cores();
  prev_accounts_.clear();
  prev_accounts_.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    prev_accounts_.push_back(m_.core(c).account);
  }
  const auto& nc = m_.udn().noc().counters();
  prev_noc_messages_ = nc.messages;
  prev_noc_link_wait_ = nc.link_wait;
  prev_noc_combines_ = m_.coherence().combining().counters().combines;
  base_link_busy_ = m_.udn().noc().link_busy();
  base_link_wait_ = m_.udn().noc().link_wait();
  for (auto& c : counters_) c.prev = c.fn();
  sojourn_ = sim::Reservoir(cfg_.reservoir_cap);
  win_completions_ = 0;
  win_max_sojourn_ = 0;

  // Resolve every counter-track name once; ticks then record pointers only.
  sim::Tracer& tr = m_.tracer();
  for (int b = 0; b < CycleAccount::kNumBuckets; ++b) {
    trk_bucket_[b] = tr.intern(
        std::string("tel.bucket.") +
        CycleAccount::bucket_name(static_cast<CycleAccount::Bucket>(b)));
  }
  trk_rx_words_ = tr.intern("tel.udn.rx_words");
  trk_link_wait_ = tr.intern("tel.noc.link_wait");
  trk_throughput_ = tr.intern("tel.throughput");
  trk_p99_ = tr.intern("tel.sojourn.p99");
  for (auto& g : gauges_) g.track_name = tr.intern("tel.gauge." + g.name);
  for (auto& c : counters_) c.track_name = tr.intern("tel.ctr." + c.name);

  if (t0 + cfg_.window < end_) arm(t0 + cfg_.window);
}

void Telemetry::arm(sim::Cycle t) {
  m_.sched().at(t, [this, t] {
    close_window(t);
    const sim::Cycle next = t + cfg_.window;
    if (next < end_) arm(next);
  });
}

void Telemetry::flush(sim::Cycle t_end) {
  if (!enabled() || !started_ || flushed_) return;
  flushed_ = true;
  // The armed ticks stop strictly before end_, so the final (possibly
  // partial) window is always closed here — after the harness settled or
  // finalized the accounts, which is what makes the window sums telescope
  // to the run-level totals.
  if (t_end > last_close_) close_window(t_end);
}

void Telemetry::close_window(sim::Cycle t) {
  Window w;
  w.end = t;
  const std::uint32_t n = m_.cores();
  for (std::uint32_t c = 0; c < n; ++c) {
    // Snapshot as-is: no settle (see file comment in telemetry.hpp). The
    // wrapping unsigned diff is reinterpreted as signed, so retroactive
    // reclassification (service queue-delay carving) shows up as a
    // negative delta instead of a wrapped giant.
    const CycleAccount cur = m_.core(c).account;
    const CycleAccount d = cur.diff_since(prev_accounts_[c]);
    for (int b = 0; b < CycleAccount::kNumBuckets; ++b) {
      const auto v = static_cast<std::int64_t>(
          d.bucket(static_cast<CycleAccount::Bucket>(b)));
      w.buckets[b] += v;
      if (c == 0) w.core0[b] = v;
    }
    prev_accounts_[c] = cur;
    w.rx_words += m_.udn().buffer_occupancy(c);
  }

  const auto& nc = m_.udn().noc().counters();
  w.noc_messages = nc.messages - prev_noc_messages_;
  w.noc_link_wait = nc.link_wait - prev_noc_link_wait_;
  prev_noc_messages_ = nc.messages;
  prev_noc_link_wait_ = nc.link_wait;
  const std::uint64_t combines =
      m_.coherence().combining().counters().combines;
  w.noc_combines = combines - prev_noc_combines_;
  prev_noc_combines_ = combines;

  w.gauges.reserve(gauges_.size());
  for (auto& g : gauges_) w.gauges.push_back(g.fn());
  w.counters.reserve(counters_.size());
  for (auto& c : counters_) {
    const std::uint64_t cur = c.fn();
    w.counters.push_back(cur - c.prev);
    c.prev = cur;
  }

  if (completion_stream_) {
    w.completions = win_completions_;
    w.p50 = sojourn_.quantile(0.5);
    w.p99 = sojourn_.quantile(0.99);
    w.max = win_max_sojourn_;
    win_completions_ = 0;
    win_max_sojourn_ = 0;
    sojourn_ = sim::Reservoir(cfg_.reservoir_cap);
  }

  // Perfetto counter samples, one per track per window (no-ops while the
  // tracer is disabled). tid 0 keeps the tracks under the run's process.
  sim::Tracer& tr = m_.tracer();
  for (int b = 0; b < CycleAccount::kNumBuckets; ++b) {
    tr.counter(0, trk_bucket_[b], t,
               static_cast<std::uint64_t>(w.buckets[b]));
  }
  tr.counter(0, trk_rx_words_, t, w.rx_words);
  tr.counter(0, trk_link_wait_, t, w.noc_link_wait);
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    tr.counter(0, gauges_[i].track_name, t, w.gauges[i]);
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    tr.counter(0, counters_[i].track_name, t, w.counters[i]);
  }
  if (completion_stream_) {
    tr.counter(0, trk_throughput_, t, w.completions);
    tr.counter(0, trk_p99_, t, w.p99);
  }

  last_close_ = t;
  windows_.push_back(std::move(w));
}

JsonValue Telemetry::to_json() const {
  JsonValue out = JsonValue::object();
  out["window"] = JsonValue(cfg_.window);
  out["start"] = JsonValue(start_);
  out["end"] = JsonValue(last_close_);
  out["n_windows"] = JsonValue(static_cast<std::uint64_t>(windows_.size()));

  JsonValue ends = JsonValue::array();
  for (const Window& w : windows_) ends.push_back(JsonValue(w.end));
  out["ends"] = std::move(ends);

  auto bucket_series = [&](bool core0) {
    JsonValue obj = JsonValue::object();
    for (int b = 0; b < CycleAccount::kNumBuckets; ++b) {
      JsonValue arr = JsonValue::array();
      for (const Window& w : windows_) {
        arr.push_back(JsonValue(core0 ? w.core0[b] : w.buckets[b]));
      }
      obj[CycleAccount::bucket_name(static_cast<CycleAccount::Bucket>(b))] =
          std::move(arr);
    }
    return obj;
  };
  out["buckets"] = bucket_series(false);
  out["core0_buckets"] = bucket_series(true);

  JsonValue rx = JsonValue::array();
  for (const Window& w : windows_) rx.push_back(JsonValue(w.rx_words));
  out["udn_rx_words"] = std::move(rx);

  JsonValue noc = JsonValue::object();
  JsonValue msgs = JsonValue::array();
  JsonValue lw = JsonValue::array();
  JsonValue cmb = JsonValue::array();
  for (const Window& w : windows_) {
    msgs.push_back(JsonValue(w.noc_messages));
    lw.push_back(JsonValue(w.noc_link_wait));
    cmb.push_back(JsonValue(w.noc_combines));
  }
  noc["messages"] = std::move(msgs);
  noc["link_wait"] = std::move(lw);
  noc["combines"] = std::move(cmb);
  out["noc"] = std::move(noc);

  if (!gauges_.empty()) {
    JsonValue g = JsonValue::object();
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
      JsonValue arr = JsonValue::array();
      for (const Window& w : windows_) arr.push_back(JsonValue(w.gauges[i]));
      g[gauges_[i].name] = std::move(arr);
    }
    out["gauges"] = std::move(g);
  }
  if (!counters_.empty()) {
    JsonValue c = JsonValue::object();
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      JsonValue arr = JsonValue::array();
      for (const Window& w : windows_) arr.push_back(JsonValue(w.counters[i]));
      c[counters_[i].name] = std::move(arr);
    }
    out["counters"] = std::move(c);
  }

  if (completion_stream_) {
    JsonValue th = JsonValue::array();
    JsonValue p50 = JsonValue::array();
    JsonValue p99 = JsonValue::array();
    JsonValue mx = JsonValue::array();
    for (const Window& w : windows_) {
      th.push_back(JsonValue(w.completions));
      p50.push_back(JsonValue(w.p50));
      p99.push_back(JsonValue(w.p99));
      mx.push_back(JsonValue(w.max));
    }
    out["throughput"] = std::move(th);
    out["sojourn_p50"] = std::move(p50);
    out["sojourn_p99"] = std::move(p99);
    out["sojourn_max"] = std::move(mx);
  }

  // Run-level per-link utilization grid for plot_ascii.py --heatmap:
  // hold (busy) and wait cycles per directed link since start(), indexed
  // link = (y * mesh_w + x) * 4 + dir (E,W,N,S). All zeros unless the run
  // models link contention (--noc / MachineParams::model_link_contention).
  const auto& nm = m_.udn().noc();
  JsonValue grid = JsonValue::object();
  grid["mesh_w"] = JsonValue(nm.mesh_w());
  grid["mesh_h"] = JsonValue(nm.mesh_h());
  grid["elapsed"] = JsonValue(last_close_ - start_);
  JsonValue busy = JsonValue::array();
  JsonValue wait = JsonValue::array();
  const auto& lb = nm.link_busy();
  const auto& lww = nm.link_wait();
  for (std::size_t i = 0; i < lb.size(); ++i) {
    busy.push_back(JsonValue(lb[i] - base_link_busy_[i]));
    wait.push_back(JsonValue(lww[i] - base_link_wait_[i]));
  }
  grid["busy"] = std::move(busy);
  grid["wait"] = std::move(wait);

  // Multi-chip machines additionally get a per-chip aggregate: chip (cx,
  // cy) at index cy * chips_x + cx sums the busy/wait of every directed
  // link whose source router sits on that chip, so the chip series
  // telescopes exactly to the sums of the global grid
  // (tests/test_telemetry.cpp pins the invariant).
  const arch::MachineParams& mp = m_.params();
  grid["chips_x"] = JsonValue(mp.chips_x);
  grid["chips_y"] = JsonValue(mp.chips_y);
  if (mp.chips() > 1) {
    const std::uint32_t cw = mp.chip_w(), ch = mp.chip_h();
    std::vector<std::uint64_t> cb(mp.chips(), 0), cwt(mp.chips(), 0);
    const auto& lb2 = nm.link_busy();
    const auto& lw2 = nm.link_wait();
    for (std::size_t i = 0; i < lb2.size(); ++i) {
      const std::size_t router = i / 4;  // link = router * kDirs + dir
      const std::uint32_t x = static_cast<std::uint32_t>(router % mp.mesh_w);
      const std::uint32_t y = static_cast<std::uint32_t>(router / mp.mesh_w);
      const std::size_t chip = (y / ch) * mp.chips_x + (x / cw);
      cb[chip] += lb2[i] - base_link_busy_[i];
      cwt[chip] += lw2[i] - base_link_wait_[i];
    }
    JsonValue cbj = JsonValue::array();
    JsonValue cwj = JsonValue::array();
    for (std::size_t c = 0; c < cb.size(); ++c) {
      cbj.push_back(JsonValue(cb[c]));
      cwj.push_back(JsonValue(cwt[c]));
    }
    grid["chip_busy"] = std::move(cbj);
    grid["chip_wait"] = std::move(cwj);
  }
  out["link_grid"] = std::move(grid);

  return out;
}

}  // namespace hmps::obs

// Reproduces Fig. 4b: actual combining rate (requests executed per
// combining round) vs number of application threads, MAX_OPS = 200.
//
// Expected shape: the rate first grows roughly as (threads - 1), then jumps
// sharply once requests arrive faster than rounds close (the "circular
// effect" behind the Fig. 3b latency dip). At high concurrency CC-SYNCH
// reaches MAX_OPS while HYBCOMB sits slightly below it (the non-atomic
// registration window of Section 4.2 occasionally leaves a combiner with
// little work).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig4b_combining_rate", argc, argv);

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{2, 4, 6, 8, 10, 12, 14, 16, 18,
                                             20, 22, 24, 26, 28, 30, 32, 34,
                                             35}
                : std::vector<std::uint32_t>{2, 5, 10, 15, 20, 25, 30, 35};
  if (args.threads) threads = {args.threads};

  harness::Table table({"threads", "HybComb", "CC-Synch"});
  for (std::uint32_t t : threads) {
    harness::RunCfg cfg;
    cfg.app_threads = t;
    cfg.seed = args.seed;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    cfg.obs = art.next_run("HybComb/t" + std::to_string(t));
    const auto hyb = harness::run_counter(cfg, Approach::kHybComb);
    cfg.obs = art.next_run("CC-Synch/t" + std::to_string(t));
    const auto cc = harness::run_counter(cfg, Approach::kCcSynch);
    table.add_row({std::to_string(t), harness::fmt(hyb.combining_rate, 1),
                   harness::fmt(cc.combining_rate, 1)});
    std::fprintf(stderr, "[fig4b] threads=%u done\n", t);
  }
  table.print("Fig. 4b: actual combining rate vs threads (MAX_OPS=200)");
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

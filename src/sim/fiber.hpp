// Cooperative fibers (stackful coroutines).
//
// Each simulated hardware thread runs as one fiber; the discrete-event
// scheduler switches between fibers on a single host thread, which is what
// makes the whole simulation deterministic and data-race-free by
// construction.
//
// On x86-64 ELF targets the switch is a hand-rolled, ABI-minimal context
// swap (callee-saved registers only — no kernel entry); everywhere else it
// falls back to POSIX ucontext, whose swapcontext pays a signal-mask syscall
// pair per switch. Fiber stacks are recycled through a thread-local pool so
// steady-state fiber creation allocates nothing. See docs/ENGINE.md.
//
// Lifetime note: a simulation window may end while fibers are blocked
// (e.g. in a message receive). Such fibers are never resumed again and their
// stack frames are reclaimed WITHOUT unwinding — destructors of locals on a
// blocked fiber's stack do not run. Simulation code therefore keeps only
// trivially-destructible state (or state owned outside the fiber) on fiber
// stacks.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>

#if !(defined(__x86_64__) && defined(__ELF__))
#define HMPS_FIBER_UCONTEXT 1
#include <ucontext.h>
#else
#define HMPS_FIBER_UCONTEXT 0
#endif

#if defined(__SANITIZE_ADDRESS__)
#define HMPS_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HMPS_FIBER_ASAN 1
#endif
#endif
#ifndef HMPS_FIBER_ASAN
#define HMPS_FIBER_ASAN 0
#endif

#if HMPS_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

#if !HMPS_FIBER_UCONTEXT
extern "C" void hmps_fiber_entry();
/// Saves the callee-saved register state on the current stack, parks the
/// stack pointer in *save_sp, and switches to load_sp. Defined (as inline
/// asm) in fiber.cpp.
extern "C" void hmps_ctx_switch(void** save_sp, void* load_sp);
#endif

namespace hmps::sim {

class Fiber {
 public:
  enum class State { kReady, kRunning, kBlocked, kFinished };

  /// `fn` is the fiber body; it runs when the fiber is first resumed.
  Fiber(std::function<void()> fn, std::size_t stack_bytes = kDefaultStack);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  /// Transfers control from the calling (host/scheduler) context into the
  /// fiber. Returns when the fiber yields or finishes. Inline on the asm
  /// path: this runs once per simulated event, so the call overhead of an
  /// out-of-line definition is measurable across a sweep.
  void resume();

  /// Transfers control from inside the fiber back to whoever resumed it.
  /// Must only be called on the currently running fiber.
  void yield();

  /// Transfers control directly from this fiber (which must be the one
  /// currently running) into `next`, without bouncing through the scheduler
  /// context: one context switch instead of the yield+resume pair. The
  /// parked scheduler continuation travels along the switch chain, so
  /// whichever fiber eventually yields returns to the original resume()
  /// call, exactly as if the scheduler had interleaved the two fibers.
  void switch_to(Fiber& next);

  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }

  void set_state(State s) { state_ = s; }

  static constexpr std::size_t kDefaultStack = 256 * 1024;

  /// Stacks reused from the thread-local pool instead of freshly allocated
  /// (observability for the zero-allocation tests and BENCH_engine.json).
  static std::uint64_t stack_pool_hits();

 private:
#if !HMPS_FIBER_UCONTEXT
  friend void ::hmps_fiber_entry();
#endif

  static void trampoline();

  std::function<void()> fn_;
  char* stack_;  ///< owned; recycled through a thread-local stack pool
  std::size_t stack_bytes_;
#if HMPS_FIBER_UCONTEXT
  ucontext_t ctx_{};
  ucontext_t caller_{};
#else
  void* ctx_sp_ = nullptr;     ///< fiber's parked stack pointer
  void* caller_sp_ = nullptr;  ///< resumer's parked stack pointer
#if HMPS_FIBER_ASAN
  void* asan_fake_ = nullptr;
  const void* asan_caller_bottom_ = nullptr;
  std::size_t asan_caller_size_ = 0;

  /// finish_switch_fiber + caller-bounds bookkeeping at a park site (yield
  /// or switch_to): the waker is either resume() — take the bounds ASan
  /// reports — or switch_to(), which staged the scheduler-stack bounds it
  /// inherited (detail::g_xfer_*), since its own stack is NOT where this
  /// fiber's next yield will land.
  void asan_on_wake();
#endif
#endif
  State state_ = State::kReady;
  bool started_ = false;
};

namespace detail {
/// Slots the switch primitives communicate through (the context-switch
/// cannot portably carry a pointer argument). thread_local, not plain
/// globals: each simulation is single-host-threaded, but the run pool
/// (harness/run_pool.hpp) drives independent simulations on separate host
/// threads, and a fiber is always resumed/yielded on the host thread that
/// owns its scheduler. Defined in fiber.cpp.
/// constinit matters beyond style: it removes the thread_local init-wrapper
/// (the `_ZTH` weak-symbol test) from every access. That test sits on the
/// hottest edge in the engine, and under -fsanitize=null GCC 12 fuses the
/// wrapper's flags into the null-check branch for the TLS address itself,
/// producing a bogus "store to null pointer" report on every fiber switch.
extern constinit thread_local Fiber* g_starting;
extern constinit thread_local Fiber* g_current;
#if !HMPS_FIBER_UCONTEXT && HMPS_FIBER_ASAN
/// Scheduler-stack bounds staged by switch_to() for the fiber it wakes
/// (see Fiber::asan_on_wake).
extern constinit thread_local const void* g_xfer_bottom;
extern constinit thread_local std::size_t g_xfer_size;
extern constinit thread_local bool g_xfer_pending;
#endif
}  // namespace detail

#if !HMPS_FIBER_UCONTEXT

inline void Fiber::resume() {
  assert(state_ != State::kFinished && "resuming a finished fiber");
  Fiber* prev = detail::g_current;
  detail::g_current = this;
  state_ = State::kRunning;
  if (!started_) {
    started_ = true;
    detail::g_starting = this;
  }
#if HMPS_FIBER_ASAN
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, stack_, stack_bytes_);
#endif
  hmps_ctx_switch(&caller_sp_, ctx_sp_);
#if HMPS_FIBER_ASAN
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
  detail::g_current = prev;
  if (state_ == State::kRunning) state_ = State::kReady;
}

inline void Fiber::yield() {
  assert(detail::g_current == this && "yield called off-fiber");
#if HMPS_FIBER_ASAN
  __sanitizer_start_switch_fiber(&asan_fake_, asan_caller_bottom_,
                                 asan_caller_size_);
#endif
  hmps_ctx_switch(&ctx_sp_, caller_sp_);
#if HMPS_FIBER_ASAN
  asan_on_wake();
#endif
}

inline void Fiber::switch_to(Fiber& next) {
  assert(detail::g_current == this && "switch_to called off-fiber");
  assert(&next != this && "switch_to self");
  assert(next.state_ != State::kFinished && "switching to a finished fiber");
  // The scheduler continuation this fiber holds moves to `next`: when the
  // switch chain ends (some fiber yields), control lands back in the run
  // loop's resume() call.
  next.caller_sp_ = caller_sp_;
  detail::g_current = &next;
  next.state_ = State::kRunning;
  if (!next.started_) {
    next.started_ = true;
    detail::g_starting = &next;
  }
#if HMPS_FIBER_ASAN
  detail::g_xfer_bottom = asan_caller_bottom_;
  detail::g_xfer_size = asan_caller_size_;
  detail::g_xfer_pending = true;
  __sanitizer_start_switch_fiber(&asan_fake_, next.stack_, next.stack_bytes_);
#endif
  hmps_ctx_switch(&ctx_sp_, next.ctx_sp_);
#if HMPS_FIBER_ASAN
  asan_on_wake();
#endif
}

#endif  // !HMPS_FIBER_UCONTEXT

}  // namespace hmps::sim

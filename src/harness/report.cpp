#include "harness/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

namespace hmps::harness {

void Table::print(const std::string& title) const {
  std::vector<std::size_t> w(cols_.size());
  for (std::size_t c = 0; c < cols_.size(); ++c) w[c] = cols_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < w.size(); ++c) {
      if (r[c].size() > w[c]) w[c] = r[c].size();
    }
  }
  std::cout << "== " << title << " ==\n";
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      std::cout << "  " << s;
      for (std::size_t k = s.size(); k < w[c]; ++k) std::cout << ' ';
    }
    std::cout << '\n';
  };
  line(cols_);
  std::vector<std::string> dashes;
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    dashes.push_back(std::string(w[c], '-'));
  }
  line(dashes);
  for (const auto& r : rows_) line(r);
  std::cout.flush();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  auto row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) f << ',';
      f << cells[c];
    }
    f << '\n';
  };
  row(cols_);
  for (const auto& r : rows_) row(r);
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs a;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(s, "--full") == 0) {
      a.full = true;
    } else if (std::strcmp(s, "--quick") == 0) {
      a.quick = true;
    } else if (std::strcmp(s, "--csv") == 0) {
      a.csv = next();
    } else if (std::strcmp(s, "--json") == 0) {
      a.json = next();
    } else if (std::strcmp(s, "--trace") == 0) {
      a.trace = next();
    } else if (std::strcmp(s, "--threads") == 0) {
      a.threads = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(s, "--window") == 0) {
      a.window = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(s, "--reps") == 0) {
      a.reps = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(s, "--seed") == 0) {
      a.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(s, "--jobs") == 0) {
      a.jobs = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(s, "--telemetry-window") == 0) {
      a.telemetry_window = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(s, "--noc") == 0) {
      a.noc = true;
    } else if (std::strcmp(s, "--noc-combining") == 0) {
      a.noc_combining = true;
    } else if (std::strcmp(s, "--mesh") == 0) {
      const char* v = next();
      char* end = nullptr;
      a.mesh_w = static_cast<std::uint32_t>(std::strtoul(v, &end, 10));
      a.mesh_h = (end && *end == 'x')
                     ? static_cast<std::uint32_t>(
                           std::strtoul(end + 1, nullptr, 10))
                     : 0;
      if (a.mesh_w == 0 || a.mesh_h == 0) {
        std::cerr << "bad --mesh value (want WxH, e.g. 16x16)\n";
        std::exit(2);
      }
    } else if (std::strcmp(s, "--help") == 0) {
      std::cout << "flags: [--full] [--quick] [--csv FILE] [--json FILE] "
                   "[--trace FILE] [--threads N] [--window CYCLES] [--reps N] "
                   "[--seed N] [--jobs N] [--mesh WxH] "
                   "[--telemetry-window CYCLES] [--noc] [--noc-combining]\n";
      std::exit(0);
    }
  }
  return a;
}

}  // namespace hmps::harness

// Native-mode example: the same algorithm templates running on REAL
// threads (NativeCtx) instead of the simulator — message passing emulated
// over shared memory with per-thread MPSC channels, as in the paper's
// related work (RCL, CPHASH).
//
// A two-stage pipeline: producers submit log records to a shared journal
// (a coarse-locked sequential queue under CC-SYNCH — no dedicated core),
// and a drainer thread batches them out. Run it with:
//
//   $ ./examples/native_pipeline
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/queue.hpp"
#include "runtime/native_context.hpp"
#include "sync/ccsynch.hpp"

using namespace hmps;
using rt::NativeCtx;

int main() {
  constexpr std::uint32_t kProducers = 3;
  constexpr std::uint64_t kRecordsEach = 20000;

  rt::NativeEnv env(kProducers + 1);
  ds::SeqQueue journal(1 << 17);  // > total records: arena never wraps onto live nodes
  sync::CcSynch<NativeCtx> uc(&journal, 64);

  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> drained{0};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      NativeCtx ctx(env, p, 7 + p);
      for (std::uint64_t i = 0; i < kRecordsEach; ++i) {
        // Record: {producer | sequence}.
        uc.apply(ctx, ds::q_enqueue<NativeCtx>,
                 (static_cast<std::uint64_t>(p) << 32) | i);
        produced.fetch_add(1, std::memory_order_relaxed);
        ctx.compute(ctx.rand_below(64));
      }
    });
  }
  threads.emplace_back([&] {
    NativeCtx ctx(env, kProducers, 99);
    std::vector<std::int64_t> last_seq(kProducers, -1);
    bool order_ok = true;
    for (;;) {
      const std::uint64_t v = uc.apply(ctx, ds::q_dequeue<NativeCtx>, 0);
      if (v == ds::kQEmpty) {
        if (producers_done.load(std::memory_order_acquire) &&
            drained.load(std::memory_order_relaxed) ==
                kProducers * kRecordsEach) {
          break;
        }
        rt::MpscChannel::cpu_pause();
        continue;
      }
      const auto who = static_cast<std::uint32_t>(v >> 32);
      const auto seq = static_cast<std::int64_t>(v & 0xFFFFFFFF);
      if (seq != last_seq[who] + 1) order_ok = false;  // per-producer FIFO
      last_seq[who] = seq;
      drained.fetch_add(1, std::memory_order_relaxed);
    }
    std::printf("per-producer FIFO order: %s\n",
                order_ok ? "preserved" : "VIOLATED");
  });

  for (std::uint32_t p = 0; p < kProducers; ++p) threads[p].join();
  producers_done.store(true, std::memory_order_release);
  threads.back().join();

  std::printf("produced=%llu drained=%llu\n",
              static_cast<unsigned long long>(produced.load()),
              static_cast<unsigned long long>(drained.load()));
  return produced.load() == drained.load() ? 0 : 1;
}

// Deterministic fault injection for the discrete-event machine model.
//
// The paper's Section 6 argues that message-passing synchronization is only
// practical if the unhappy paths — buffer overflow and unlucky scheduling —
// are handled. This layer lets a scenario *exercise* those paths on demand:
// a seeded FaultPlan describes which faults to inject (UDN buffer pressure,
// core preemption windows, delivery delays, NoC link jitter) and the
// FaultInjector realizes them as ordinary discrete events on the simulation
// scheduler. Everything is drawn from per-category xoshiro streams derived
// from the plan seed, so the same seed reproduces the same fault timeline —
// and the same overall event trace — bit for bit (see docs/ROBUSTNESS.md).
//
// With no plan installed the injector is inert: every hook returns its
// neutral value without consuming randomness or scheduling events, so
// faults-off runs are byte-identical to a build without this layer (the
// golden-trace tests in tests/test_determinism.cpp pin this down).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace hmps::sim {

/// Declarative description of the faults a scenario wants injected. All
/// categories are independent; a zero period (or 100% credit) disables the
/// category. Windows and delays are drawn from streams seeded by `seed`.
struct FaultPlan {
  std::uint64_t seed = 1;

  // --- UDN buffer pressure (shrunk credit windows) ---
  // Periodically, for `credit_duration` cycles, the effective per-buffer
  // credit capacity shrinks to credit_pct% of udn_buf_words (but never
  // below credit_floor_words, so the paper's 3-word requests keep
  // trickling). Models transient congestion backing messages into the
  // network.
  Cycle credit_period = 0;        ///< mean gap between windows; 0 = off
  Cycle credit_duration = 0;      ///< window length, cycles
  std::uint32_t credit_pct = 25;  ///< effective capacity during a window
  std::uint32_t credit_floor_words = 6;

  // --- delayed deliveries ---
  // Each message is delayed with probability delay_permille/1000 by a
  // uniform draw in [delay_min, delay_max] cycles, applied before ingress-
  // port serialization (so per-buffer delivery order is preserved).
  std::uint32_t delay_permille = 0;  ///< 0 = off
  Cycle delay_min = 0;
  Cycle delay_max = 0;

  // --- jittered NoC link latencies ---
  // Per-message (default UDN timing) or per-hop (link-contention model)
  // extra latency of up to jitter_max cycles, with probability
  // jitter_permille/1000 per draw.
  std::uint32_t jitter_permille = 0;  ///< 0 = off
  Cycle jitter_max = 0;

  // --- core stalls / preemption windows ---
  // Periodically a core from `preempt_cores` (all cores when empty) is
  // preempted for `preempt_duration` cycles: fibers on it make no progress
  // past their next operation boundary until the window ends. This is the
  // paper's "combiner gets descheduled" scenario (Section 6 / Fig. 4a
  // discussion) made reproducible.
  Cycle preempt_period = 0;    ///< mean gap between windows; 0 = off
  Cycle preempt_duration = 0;  ///< window length, cycles
  std::vector<Tid> preempt_cores;

  bool enabled() const {
    return (credit_period > 0 && credit_duration > 0 && credit_pct < 100) ||
           (delay_permille > 0 && delay_max > 0) ||
           (jitter_permille > 0 && jitter_max > 0) ||
           (preempt_period > 0 && preempt_duration > 0);
  }
};

/// Realizes a FaultPlan on a scheduler and answers the model hooks. Owned by
/// arch::Machine; the UDN/NoC/context models query it on their hot paths
/// (one branch on `active()` when no plan is installed).
class FaultInjector {
 public:
  explicit FaultInjector(Scheduler& sched)
      : sched_(sched), rng_credit_(0), rng_delay_(0), rng_jitter_(0),
        rng_preempt_(0) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs `plan` for a machine with `ncores` cores. Must be called
  /// before the simulation starts (events are scheduled relative to now).
  /// Installing a plan with no category enabled leaves the injector inert.
  void install(const FaultPlan& plan, std::uint32_t ncores);

  bool active() const { return active_; }

  /// Invoked when a credit-pressure window opens or closes; the machine
  /// wires this to the UDN so blocked senders re-check their credits.
  void set_credit_changed(std::function<void()> cb) {
    credit_changed_ = std::move(cb);
  }

  // ---- model hooks (neutral when inactive) ----

  /// Effective credit capacity for a buffer whose hardware capacity is
  /// `base` words.
  std::size_t credit_limit(std::size_t base) const {
    if (!credit_shrunk_) return base;
    std::size_t limit = base * plan_.credit_pct / 100;
    if (limit < plan_.credit_floor_words) limit = plan_.credit_floor_words;
    return limit < base ? limit : base;
  }

  /// Extra delivery latency for one message (consumes randomness only when
  /// the category is enabled).
  Cycle delivery_delay() {
    if (plan_.delay_permille == 0 || plan_.delay_max == 0) return 0;
    if (rng_delay_.below(1000) >= plan_.delay_permille) return 0;
    ++counters_.delayed_messages;
    return plan_.delay_min +
           rng_delay_.below(plan_.delay_max - plan_.delay_min + 1);
  }

  /// Extra wire latency for one message (default UDN timing path).
  Cycle link_jitter() {
    if (plan_.jitter_permille == 0 || plan_.jitter_max == 0) return 0;
    if (rng_jitter_.below(1000) >= plan_.jitter_permille) return 0;
    ++counters_.jittered;
    return 1 + rng_jitter_.below(plan_.jitter_max);
  }

  /// Extra latency for one mesh hop (link-contention model path). Same
  /// stream and knobs as link_jitter, applied at finer granularity.
  Cycle hop_jitter() { return link_jitter(); }

  /// Cycle until which `core` is preempted (0 when it is not).
  Cycle preempt_until(Tid core) const {
    return core < preempt_until_.size() ? preempt_until_[core] : 0;
  }

  struct Counters {
    std::uint64_t credit_windows = 0;    ///< pressure windows opened
    std::uint64_t delayed_messages = 0;  ///< deliveries given extra latency
    std::uint64_t jittered = 0;          ///< link/hop jitter draws that hit
    std::uint64_t preemptions = 0;       ///< preemption windows opened
  };
  const Counters& counters() const { return counters_; }

 private:
  void schedule_credit_window();
  void schedule_preemption();

  /// Next window start: half the period plus a uniform draw, so windows are
  /// aperiodic but the mean gap is ~`period`.
  static Cycle next_gap(Xoshiro256& rng, Cycle period) {
    return period / 2 + rng.below(period + 1);
  }

  Scheduler& sched_;
  FaultPlan plan_;
  bool active_ = false;
  bool credit_shrunk_ = false;
  std::vector<Cycle> preempt_until_;
  std::function<void()> credit_changed_;
  Xoshiro256 rng_credit_, rng_delay_, rng_jitter_, rng_preempt_;
  Counters counters_;
};

}  // namespace hmps::sim

# Empty compiler generated dependencies file for hmps_arch.
# This may be replaced when dependencies are built.

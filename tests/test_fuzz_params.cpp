// Machine-parameter fuzzing: the synchronization algorithms must stay
// correct on ANY sane machine (random mesh shapes, latencies, occupancies,
// buffer sizes, feature flags) — correctness may not depend on timing.
// Each seed derives a pseudo-random machine + workload (via the shared
// generator in check/gen.hpp); invariants are checked for every
// construction.
#include <gtest/gtest.h>

#include <cstdint>

#include "arch/params.hpp"
#include "check/gen.hpp"
#include "ds/counter.hpp"
#include "ds/lcrq.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/rng.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"
#include "sync/shm_server.hpp"

namespace hmps {
namespace {

using check::random_machine;
using rt::SimCtx;
using rt::SimExecutor;

class ParamFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParamFuzz, AllConstructionsStayCorrect) {
  const std::uint64_t seed = GetParam();
  const arch::MachineParams mp = random_machine(seed);
  sim::Xoshiro256 r(seed ^ 0xABCDEF);
  const std::uint32_t cores = mp.cores();
  // Up to 3 threads per core via the demux queues, at least 2 app threads.
  const std::uint32_t max_threads =
      std::min<std::uint32_t>(3 * cores, 40);
  const std::uint32_t nclients = static_cast<std::uint32_t>(
      r.between(2, max_threads > 3 ? max_threads - 1 : 2));
  const std::uint64_t ops_each = 30;
  const std::uint64_t max_ops = r.between(1, 64);

  for (int kind = 0; kind < 4; ++kind) {
    arch::MachineParams kp = mp;
    std::uint32_t clients = nclients;
    if (kind < 2) {
      // Server approaches: keep the server's core uniprogrammed (the
      // paper's configuration). A client sharing the server's core with a
      // request-filled buffer deadlocks the response send — a real Section
      // 6 hazard, demonstrated in test_sec6_practical.cpp.
      clients = std::min<std::uint32_t>(clients,
                                        cores > 2 ? cores - 1 : 2);
    } else if (clients + (kind < 2 ? 1 : 0) > cores) {
      // Combiners with oversubscribed cores: the servicing thread shares
      // its core buffer with up to 3 client queues, so size the buffer for
      // one request per client plus responses (Section 6 sizing rule).
      kp.udn_buf_words =
          std::max<std::uint32_t>(kp.udn_buf_words, 3 * clients + 8);
    }
    SimExecutor ex(kp, seed + kind);
    ds::SeqCounter counter;
    sync::MpServer<SimCtx> mps(0, &counter);
    sync::ShmServer<SimCtx> shm(0, &counter);
    sync::HybComb<SimCtx> hyb(&counter, max_ops);
    sync::CcSynch<SimCtx> cc(&counter,
                             static_cast<std::uint32_t>(max_ops));
    const bool server = kind < 2;
    std::uint32_t done = 0;
    if (server) {
      ex.add_thread([&, kind](SimCtx& ctx) {
        if (kind == 0) {
          mps.serve(ctx);
        } else {
          shm.serve(ctx);
        }
      });
    }
    for (std::uint32_t i = 0; i < clients; ++i) {
      ex.add_thread([&, kind](SimCtx& ctx) {
        for (std::uint64_t k = 0; k < ops_each; ++k) {
          switch (kind) {
            case 0: mps.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
            case 1: shm.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
            case 2: hyb.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
            case 3: cc.apply(ctx, ds::counter_inc<SimCtx>, 0); break;
          }
          ctx.compute(ctx.rand_below(60));
        }
        if (++done == clients && server) {
          if (kind == 0) {
            mps.request_stop(ctx);
          } else {
            shm.request_stop(ctx);
          }
        }
      });
    }
    ex.run_until(sim::kCycleMax);
    EXPECT_EQ(counter.value.load(), clients * ops_each)
        << "machine seed " << seed << " kind " << kind << " clients "
        << clients << " max_ops " << max_ops;
  }
}

TEST_P(ParamFuzz, LcrqConservesValues) {
  const std::uint64_t seed = GetParam();
  const arch::MachineParams mp = random_machine(seed * 31 + 7);
  SimExecutor ex(mp, seed);
  ds::Lcrq<SimCtx> q(4, 2048);
  const std::uint32_t nthreads =
      std::min<std::uint32_t>(mp.cores(), 12);
  std::uint64_t pushed = 0, popped = 0;  // single-host-thread counters
  std::uint32_t done = 0;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < 40; ++k) {
        if (ctx.rand_below(2) == 0) {
          q.enqueue(ctx, static_cast<std::uint32_t>((i << 16) | k));
          ++pushed;
        } else if (q.dequeue(ctx) != ds::kLcrqEmpty) {
          ++popped;
        }
      }
      if (++done == nthreads) {
        while (q.dequeue(ctx) != ds::kLcrqEmpty) ++popped;
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(pushed, popped) << "machine seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParamFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u, 144u, 233u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hmps

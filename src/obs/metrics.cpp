#include "obs/metrics.hpp"

#include <fstream>

#include "arch/machine.hpp"
#include "arch/params.hpp"
#include "sim/trace.hpp"
#include "sync/cs.hpp"

// Reproducibility stamp, injected by the build (src/obs/CMakeLists.txt);
// fall back to placeholders for non-CMake builds.
#ifndef HMPS_GIT_DESCRIBE
#define HMPS_GIT_DESCRIBE "unknown"
#endif
#ifndef HMPS_BUILD_FLAGS
#define HMPS_BUILD_FLAGS "unknown"
#endif

namespace hmps::obs {

MetricsRegistry::MetricsRegistry() {
  root_ = JsonValue::object();
  // v2 (this PR): adds machine.noc counters and the optional per-run
  // telemetry block. Readers stay tolerant of v1 (docs/OBSERVABILITY.md).
  root_["schema"] = JsonValue("hmps-metrics-v2");
}

void MetricsRegistry::stamp(const std::string& bench, int argc, char** argv) {
  root_["bench"] = JsonValue(bench);
  JsonValue args = JsonValue::array();
  for (int i = 0; i < argc; ++i) args.push_back(JsonValue(argv[i]));
  root_["argv"] = std::move(args);
  root_["git"] = JsonValue(HMPS_GIT_DESCRIBE);
  root_["build_flags"] = JsonValue(HMPS_BUILD_FLAGS);
  root_["runs"] = JsonValue::array();
}

JsonValue& MetricsRegistry::add_run(const std::string& label) {
  JsonValue& runs = root_["runs"];
  JsonValue run = JsonValue::object();
  run["label"] = JsonValue(label);
  runs.push_back(std::move(run));
  return runs.items().back();
}

bool MetricsRegistry::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  root_.write(f, 0);
  f << '\n';
  return f.good();
}

JsonValue MetricsRegistry::params_json(const arch::MachineParams& p) {
  JsonValue j = JsonValue::object();
  j["name"] = JsonValue(p.name);
  j["mesh_w"] = JsonValue(p.mesh_w);
  j["mesh_h"] = JsonValue(p.mesh_h);
  j["n_mem_ctrls"] = JsonValue(p.n_mem_ctrls);
  j["line_bytes"] = JsonValue(p.line_bytes);
  j["l_hit"] = JsonValue(p.l_hit);
  j["issue_cost"] = JsonValue(p.issue_cost);
  j["posted_writes"] = JsonValue(p.posted_writes);
  j["wb_depth"] = JsonValue(p.wb_depth);
  j["allow_prefetch"] = JsonValue(p.allow_prefetch);
  j["hop"] = JsonValue(p.hop);
  j["router"] = JsonValue(p.router);
  j["dir_lookup"] = JsonValue(p.dir_lookup);
  j["home_mem"] = JsonValue(p.home_mem);
  j["fwd_cost"] = JsonValue(p.fwd_cost);
  j["xfer"] = JsonValue(p.xfer);
  j["inval_base"] = JsonValue(p.inval_base);
  j["inval_per_sharer"] = JsonValue(p.inval_per_sharer);
  j["line_occupancy"] = JsonValue(p.line_occupancy);
  j["atomics_at_ctrl"] = JsonValue(p.atomics_at_ctrl);
  j["ctrl_op_faa"] = JsonValue(p.ctrl_op_faa);
  j["ctrl_op_cas"] = JsonValue(p.ctrl_op_cas);
  j["ctrl_op_cas_fail"] = JsonValue(p.ctrl_op_cas_fail);
  j["atomic_local_extra"] = JsonValue(p.atomic_local_extra);
  j["noc_combining"] = JsonValue(p.noc_combining);
  j["has_udn"] = JsonValue(p.has_udn);
  j["udn_buf_words"] = JsonValue(p.udn_buf_words);
  j["udn_queues"] = JsonValue(p.udn_queues);
  j["udn_inject"] = JsonValue(p.udn_inject);
  j["udn_per_word_wire"] = JsonValue(p.udn_per_word_wire);
  j["udn_recv_word"] = JsonValue(p.udn_recv_word);
  j["model_link_contention"] = JsonValue(p.model_link_contention);
  j["fence_cost"] = JsonValue(p.fence_cost);
  j["chips_x"] = JsonValue(p.chips_x);
  j["chips_y"] = JsonValue(p.chips_y);
  j["chip_hop_extra"] = JsonValue(p.chip_hop_extra);
  return j;
}

JsonValue MetricsRegistry::machine_json(arch::Machine& m) {
  JsonValue j = JsonValue::object();

  const auto& ec = m.sched().engine_counters();
  JsonValue eng = JsonValue::object();
  eng["scheduled"] = JsonValue(ec.scheduled);
  eng["executed"] = JsonValue(ec.executed);
  eng["spill_allocs"] = JsonValue(ec.spill_allocs);
  eng["heap_grows"] = JsonValue(ec.heap_grows);
  eng["peak_depth"] = JsonValue(ec.peak_depth);
  eng["fast_forwards"] = JsonValue(ec.fast_forwards);
  j["engine"] = std::move(eng);

  const auto& cc = m.coherence().counters();
  JsonValue coh = JsonValue::object();
  coh["hits"] = JsonValue(cc.hits);
  coh["rmr_reads"] = JsonValue(cc.rmr_reads);
  coh["rmr_writes"] = JsonValue(cc.rmr_writes);
  coh["atomics"] = JsonValue(cc.atomics);
  coh["invalidations"] = JsonValue(cc.invalidations);
  coh["ctrl_wait_total"] = JsonValue(cc.ctrl_wait_total);
  j["coherence"] = std::move(coh);

  const auto& uc = m.udn().counters();
  JsonValue udn = JsonValue::object();
  udn["messages"] = JsonValue(uc.messages);
  udn["words"] = JsonValue(uc.words);
  udn["sender_blocks"] = JsonValue(uc.sender_blocks);
  udn["peak_occupancy"] = JsonValue(uc.peak_occupancy);
  j["udn"] = std::move(udn);

  const auto& vc = m.vlink().counters();
  JsonValue vl = JsonValue::object();
  vl["frames"] = JsonValue(vc.frames);
  vl["words"] = JsonValue(vc.words);
  vl["producer_blocks"] = JsonValue(vc.producer_blocks);
  vl["consumer_waits"] = JsonValue(vc.consumer_waits);
  vl["peak_occupancy"] = JsonValue(vc.peak_occupancy);
  j["vlink"] = std::move(vl);

  const auto& nc = m.udn().noc().counters();
  JsonValue noc = JsonValue::object();
  noc["messages"] = JsonValue(nc.messages);
  noc["hops"] = JsonValue(nc.hops);
  noc["link_wait"] = JsonValue(nc.link_wait);
  const auto& cmb = m.coherence().combining().counters();
  noc["combines"] = JsonValue(cmb.combines);
  noc["decombines"] = JsonValue(cmb.decombines);
  j["noc"] = std::move(noc);

  const auto& fc = m.faults().counters();
  JsonValue faults = JsonValue::object();
  faults["credit_windows"] = JsonValue(fc.credit_windows);
  faults["delayed_messages"] = JsonValue(fc.delayed_messages);
  faults["jittered"] = JsonValue(fc.jittered);
  faults["preemptions"] = JsonValue(fc.preemptions);
  j["faults"] = std::move(faults);

  if (arch::CoherenceProfiler* prof = m.coherence().profiler()) {
    JsonValue lines = JsonValue::array();
    for (const auto& ls : prof->top_lines(8)) {
      JsonValue l = JsonValue::object();
      l["line"] = JsonValue(ls.line);
      l["label"] = JsonValue(ls.label);
      l["hits"] = JsonValue(ls.hits);
      l["rmr_reads"] = JsonValue(ls.rmr_reads);
      l["rmr_writes"] = JsonValue(ls.rmr_writes);
      l["atomics"] = JsonValue(ls.atomics);
      l["latency_sum"] = JsonValue(ls.latency_sum);
      lines.push_back(std::move(l));
    }
    j["hot_lines"] = std::move(lines);
  }
  return j;
}

JsonValue MetricsRegistry::sync_stats_json(const sync::SyncStats& s) {
  JsonValue j = JsonValue::object();
  j["ops"] = JsonValue(s.ops);
  j["served"] = JsonValue(s.served);
  j["tenures"] = JsonValue(s.tenures);
  j["cas_attempts"] = JsonValue(s.cas_attempts);
  j["cas_failures"] = JsonValue(s.cas_failures);
  j["throttle_waits"] = JsonValue(s.throttle_waits);
  j["stall_timeouts"] = JsonValue(s.stall_timeouts);
  j["async_issued"] = JsonValue(s.async_issued);
  j["async_batched"] = JsonValue(s.async_batched);
  j["shed_ops"] = JsonValue(s.shed_ops);
  return j;
}

JsonValue MetricsRegistry::cycle_account_json(const CycleAccount& a) {
  JsonValue j = JsonValue::object();
  for (int b = 0; b < CycleAccount::kNumBuckets; ++b) {
    const auto bucket = static_cast<CycleAccount::Bucket>(b);
    j[CycleAccount::bucket_name(bucket)] = JsonValue(a.bucket(bucket));
  }
  j["total"] = JsonValue(a.total());
  return j;
}

JsonValue MetricsRegistry::tracer_json(const sim::Tracer& t) {
  JsonValue j = JsonValue::object();
  j["events"] = JsonValue(static_cast<std::uint64_t>(t.size()));
  j["dropped"] = JsonValue(t.dropped());
  return j;
}

}  // namespace hmps::obs

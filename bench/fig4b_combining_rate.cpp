// Reproduces Fig. 4b: actual combining rate (requests executed per
// combining round) vs number of application threads, MAX_OPS = 200.
//
// Expected shape: the rate first grows roughly as (threads - 1), then jumps
// sharply once requests arrive faster than rounds close (the "circular
// effect" behind the Fig. 3b latency dip). At high concurrency CC-SYNCH
// reaches MAX_OPS while HYBCOMB sits slightly below it (the non-atomic
// registration window of Section 4.2 occasionally leaves a combiner with
// little work).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig4b_combining_rate", argc, argv);

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{2, 4, 6, 8, 10, 12, 14, 16, 18,
                                             20, 22, 24, 26, 28, 30, 32, 34,
                                             35}
                : std::vector<std::uint32_t>{2, 5, 10, 15, 20, 25, 30, 35};
  if (args.threads) threads = {args.threads};

  harness::RunPool pool(art, args.jobs);
  for (std::uint32_t t : threads) {
    harness::RunCfg cfg;
    cfg.app_threads = t;
    cfg.seed = args.seed;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    const Approach order[] = {Approach::kHybComb, Approach::kCcSynch};
    const char* names[] = {"HybComb", "CC-Synch"};
    for (std::size_t i = 0; i < 2; ++i) {
      const Approach a = order[i];
      pool.submit(std::string(names[i]) + "/t" + std::to_string(t),
                  [cfg, a](const harness::RunObs& obs) {
                    harness::RunCfg c = cfg;
                    c.obs = obs;
                    const auto r = harness::run_counter(c, a);
                    std::fprintf(stderr, "[fig4b] %s done\n", obs.label);
                    return r;
                  });
    }
  }
  const auto& results = pool.drain();

  harness::Table table({"threads", "HybComb", "CC-Synch"});
  std::size_t idx = 0;
  for (std::uint32_t t : threads) {
    const auto& hyb = results[idx++];
    const auto& cc = results[idx++];
    table.add_row({std::to_string(t), harness::fmt(hyb.combining_rate, 1),
                   harness::fmt(cc.combining_rate, 1)});
  }
  table.print("Fig. 4b: actual combining rate vs threads (MAX_OPS=200)");
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

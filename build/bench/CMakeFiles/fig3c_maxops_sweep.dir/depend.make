# Empty dependencies file for fig3c_maxops_sweep.
# This may be replaced when dependencies are built.

// Random machine/workload generation for correctness fuzzing, shared by the
// schedule-exploration harness (src/check/explore.cpp) and the parameter
// fuzz tests (tests/test_fuzz_params.cpp).
//
// The synchronization algorithms must stay correct on ANY sane machine —
// random mesh shapes, latencies, occupancies, buffer sizes, feature flags —
// because correctness may never depend on timing. random_machine() derives
// such a machine deterministically from a seed; clamp_cfg() applies the two
// configuration rules a *valid* workload must respect (documented in
// docs/ROBUSTNESS.md and exercised by tests/test_sec6_practical.cpp):
//
//  1. server approaches keep the server's core uniprogrammed — a client
//     sharing it can deadlock the response send under a full buffer;
//  2. combiners with oversubscribed cores need the per-core UDN buffer
//     sized for one request per client plus responses (3*clients + 8).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "arch/params.hpp"
#include "harness/record.hpp"
#include "sim/rng.hpp"

namespace hmps::check {

/// Pseudo-random but sane MachineParams, fully determined by `seed`.
inline arch::MachineParams random_machine(std::uint64_t seed) {
  sim::Xoshiro256 r(seed);
  arch::MachineParams p;
  p.name = "fuzz-" + std::to_string(seed);
  p.mesh_w = static_cast<std::uint32_t>(r.between(2, 8));
  p.mesh_h = static_cast<std::uint32_t>(r.between(1, 8));
  p.n_mem_ctrls = static_cast<std::uint32_t>(r.between(1, 4));
  p.l_hit = r.between(1, 4);
  p.hop = r.between(1, 4);
  p.router = r.between(1, 4);
  p.dir_lookup = r.between(2, 20);
  p.home_mem = r.between(2, 20);
  p.fwd_cost = r.between(1, 10);
  p.xfer = r.between(1, 10);
  p.inval_base = r.between(1, 6);
  p.inval_per_sharer = r.between(0, 4);
  p.line_occupancy = r.between(1, 16);
  p.ctrl_op_faa = r.between(2, 20);
  p.ctrl_op_cas = r.between(2, 80);
  p.ctrl_op_cas_fail = r.between(1, 20);
  p.udn_buf_words = static_cast<std::uint32_t>(r.between(8, 200));
  p.udn_inject = r.between(1, 4);
  p.udn_per_word_wire = r.between(1, 3);
  p.udn_recv_word = r.between(1, 4);
  p.fence_cost = r.between(1, 30);
  p.posted_writes = r.below(2) == 0;
  p.allow_prefetch = r.below(2) == 0;
  p.atomics_at_ctrl = r.below(4) != 0;  // mostly TILE-style
  p.model_link_contention = r.below(2) == 0;
  // In-network combining of unconditional RMWs (docs/MODEL.md §11). Drawn
  // LAST so machines for seeds that predate the knob keep every other
  // parameter unchanged; correctness must hold with the NoC merging FAAs.
  p.noc_combining = r.below(2) == 0;
  return p;
}

/// Makes `cfg` a valid workload for its machine: clamps client counts and
/// buffer sizes per the Section 6 configuration rules above. Idempotent.
inline void clamp_cfg(harness::RecordCfg& cfg) {
  const std::uint32_t cores = cfg.params.cores();
  if (cfg.threads < 2) cfg.threads = 2;
  // The sharded fleet drives a farm of CS objects only: the direct
  // concurrent structures map to their CS-driven cousins, and the shard
  // count stays in [2, 8] (2 keeps cross-shard transfers reachable, 8 is
  // plenty against the <= 8x8 fuzz meshes).
  if (cfg.construction == harness::Construction::kSharded) {
    if (cfg.object == harness::Object::kLcrq) {
      cfg.object = harness::Object::kQueue;
    }
    if (cfg.object == harness::Object::kElimStack) {
      cfg.object = harness::Object::kStack;
    }
    cfg.shards = std::clamp<std::uint32_t>(cfg.shards, 2, 8);
  } else {
    cfg.shards = 1;
  }
  const bool server = harness::uses_server(cfg.construction) &&
                      cfg.object != harness::Object::kLcrq &&
                      cfg.object != harness::Object::kElimStack;
  const std::uint32_t nsrv =
      server ? harness::server_threads(cfg.construction, cfg.shards) : 0;
  if (server) {
    cfg.threads = std::min<std::uint32_t>(
        cfg.threads, cores > nsrv + 1 ? cores - nsrv : 2);
  }
  // Async trains only exist for the ticket-API constructions on CS-driven
  // objects; everything else runs the classic synchronous loop.
  if (!harness::supports_async(cfg.construction) ||
      cfg.object == harness::Object::kLcrq ||
      cfg.object == harness::Object::kElimStack) {
    cfg.async_depth = 0;
  }
  cfg.async_depth = std::min<std::uint32_t>(cfg.async_depth, 16);
  const std::uint32_t total = cfg.threads + nsrv;
  if (total > cores || server || cfg.async_depth >= 2) {
    // Oversubscribed cores share one hardware buffer between up to 3 demux
    // queues; size it for one request per client plus responses. Async
    // trains multiply the resident requests per client by the train depth —
    // and they extend the rule to HybComb even with a core per thread: a
    // waiting next-combiner parks in spin_combining_done() with up to
    // 3*depth words of undrained replies in its buffer while its
    // registrants' request sends push against the remainder, so a buffer
    // sized for the synchronous protocol can wedge the active combiner's
    // reply send (three-way cycle, found by exploration).
    // The sharded fleet triples the bound: on top of every client's
    // requests, a shard's buffer may hold one forwarded enqueue and one
    // ack per outstanding cross-shard transfer (bounded by the same
    // outstanding-ops count), so worst-case residency per client is
    // request + forward + ack frames (docs/SHARDING.md).
    const std::uint32_t per_client =
        3 * std::max<std::uint32_t>(1, cfg.async_depth) *
        (cfg.construction == harness::Construction::kSharded ? 3 : 1);
    cfg.params.udn_buf_words = std::max<std::uint32_t>(
        cfg.params.udn_buf_words, per_client * cfg.threads + 8);
  }
  // The fixed per-thread pools cap every construction at 64 threads.
  cfg.threads = std::min<std::uint32_t>(cfg.threads, 63);
}

}  // namespace hmps::check

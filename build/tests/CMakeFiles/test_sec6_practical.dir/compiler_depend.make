# Empty compiler generated dependencies file for test_sec6_practical.
# This may be replaced when dependencies are built.

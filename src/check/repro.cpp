#include "check/repro.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace hmps::check {

namespace {

using obs::JsonValue;

JsonValue faults_json(const sim::FaultPlan& f) {
  JsonValue j = JsonValue::object();
  j["seed"] = JsonValue(f.seed);
  j["credit_period"] = JsonValue(f.credit_period);
  j["credit_duration"] = JsonValue(f.credit_duration);
  j["credit_pct"] = JsonValue(f.credit_pct);
  j["credit_floor_words"] = JsonValue(f.credit_floor_words);
  j["delay_permille"] = JsonValue(f.delay_permille);
  j["delay_min"] = JsonValue(f.delay_min);
  j["delay_max"] = JsonValue(f.delay_max);
  j["jitter_permille"] = JsonValue(f.jitter_permille);
  j["jitter_max"] = JsonValue(f.jitter_max);
  j["preempt_period"] = JsonValue(f.preempt_period);
  j["preempt_duration"] = JsonValue(f.preempt_duration);
  JsonValue cores = JsonValue::array();
  for (auto c : f.preempt_cores) cores.push_back(JsonValue(c));
  j["preempt_cores"] = std::move(cores);
  return j;
}

JsonValue perturb_json(const PerturbPlan& p) {
  JsonValue j = JsonValue::object();
  j["seed"] = JsonValue(p.seed);
  j["nthreads"] = JsonValue(p.nthreads);
  j["change_points"] = JsonValue(p.change_points);
  j["change_interval"] = JsonValue(p.change_interval);
  j["resume_permille"] = JsonValue(p.resume_permille);
  j["delay_unit"] = JsonValue(p.delay_unit);
  j["point_permille"] = JsonValue(p.point_permille);
  j["point_delay_max"] = JsonValue(p.point_delay_max);
  return j;
}

// --- parsing helpers: missing fields keep the default already in *out ---

bool get_u64(const JsonValue& j, const char* key, std::uint64_t* out) {
  const JsonValue* v = j.find(key);
  if (v == nullptr || !v->is_number()) return v == nullptr;
  *out = v->as_uint();
  return true;
}

bool get_u32(const JsonValue& j, const char* key, std::uint32_t* out) {
  std::uint64_t v = *out;
  if (!get_u64(j, key, &v)) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool get_bool(const JsonValue& j, const char* key, bool* out) {
  const JsonValue* v = j.find(key);
  if (v == nullptr) return true;
  if (v->kind() != JsonValue::Kind::kBool) return false;
  *out = v->as_bool();
  return true;
}

bool machine_from_json(const JsonValue& j, arch::MachineParams* p,
                       std::string* err) {
  auto fail = [&](const char* what) {
    if (err != nullptr) *err = std::string("machine: bad field ") + what;
    return false;
  };
  if (const JsonValue* n = j.find("name"); n != nullptr && n->is_string()) {
    p->name = n->as_string();
  }
  bool ok = true;
  ok &= get_u32(j, "mesh_w", &p->mesh_w);
  ok &= get_u32(j, "mesh_h", &p->mesh_h);
  ok &= get_u32(j, "n_mem_ctrls", &p->n_mem_ctrls);
  ok &= get_u32(j, "line_bytes", &p->line_bytes);
  ok &= get_u64(j, "l_hit", &p->l_hit);
  ok &= get_u64(j, "issue_cost", &p->issue_cost);
  ok &= get_bool(j, "posted_writes", &p->posted_writes);
  ok &= get_u32(j, "wb_depth", &p->wb_depth);
  ok &= get_bool(j, "allow_prefetch", &p->allow_prefetch);
  ok &= get_u64(j, "hop", &p->hop);
  ok &= get_u64(j, "router", &p->router);
  ok &= get_u64(j, "dir_lookup", &p->dir_lookup);
  ok &= get_u64(j, "home_mem", &p->home_mem);
  ok &= get_u64(j, "fwd_cost", &p->fwd_cost);
  ok &= get_u64(j, "xfer", &p->xfer);
  ok &= get_u64(j, "inval_base", &p->inval_base);
  ok &= get_u64(j, "inval_per_sharer", &p->inval_per_sharer);
  ok &= get_u64(j, "line_occupancy", &p->line_occupancy);
  ok &= get_bool(j, "atomics_at_ctrl", &p->atomics_at_ctrl);
  ok &= get_u64(j, "ctrl_op_faa", &p->ctrl_op_faa);
  ok &= get_u64(j, "ctrl_op_cas", &p->ctrl_op_cas);
  ok &= get_u64(j, "ctrl_op_cas_fail", &p->ctrl_op_cas_fail);
  ok &= get_u64(j, "atomic_local_extra", &p->atomic_local_extra);
  ok &= get_bool(j, "noc_combining", &p->noc_combining);
  ok &= get_bool(j, "has_udn", &p->has_udn);
  ok &= get_u32(j, "udn_buf_words", &p->udn_buf_words);
  ok &= get_u32(j, "udn_queues", &p->udn_queues);
  ok &= get_u64(j, "udn_inject", &p->udn_inject);
  ok &= get_u64(j, "udn_per_word_wire", &p->udn_per_word_wire);
  ok &= get_u64(j, "udn_recv_word", &p->udn_recv_word);
  ok &= get_bool(j, "model_link_contention", &p->model_link_contention);
  ok &= get_u64(j, "fence_cost", &p->fence_cost);
  ok &= get_u32(j, "chips_x", &p->chips_x);
  ok &= get_u32(j, "chips_y", &p->chips_y);
  ok &= get_u64(j, "chip_hop_extra", &p->chip_hop_extra);
  if (!ok) return fail("(type mismatch)");
  return true;
}

bool faults_from_json(const JsonValue& j, sim::FaultPlan* f) {
  bool ok = true;
  ok &= get_u64(j, "seed", &f->seed);
  ok &= get_u64(j, "credit_period", &f->credit_period);
  ok &= get_u64(j, "credit_duration", &f->credit_duration);
  ok &= get_u32(j, "credit_pct", &f->credit_pct);
  ok &= get_u32(j, "credit_floor_words", &f->credit_floor_words);
  ok &= get_u32(j, "delay_permille", &f->delay_permille);
  ok &= get_u64(j, "delay_min", &f->delay_min);
  ok &= get_u64(j, "delay_max", &f->delay_max);
  ok &= get_u32(j, "jitter_permille", &f->jitter_permille);
  ok &= get_u64(j, "jitter_max", &f->jitter_max);
  ok &= get_u64(j, "preempt_period", &f->preempt_period);
  ok &= get_u64(j, "preempt_duration", &f->preempt_duration);
  if (const JsonValue* cores = j.find("preempt_cores");
      cores != nullptr && cores->is_array()) {
    f->preempt_cores.clear();
    for (const JsonValue& c : cores->items()) {
      f->preempt_cores.push_back(static_cast<sim::Tid>(c.as_uint()));
    }
  }
  return ok;
}

bool perturb_from_json(const JsonValue& j, PerturbPlan* p) {
  bool ok = true;
  ok &= get_u64(j, "seed", &p->seed);
  ok &= get_u32(j, "nthreads", &p->nthreads);
  ok &= get_u32(j, "change_points", &p->change_points);
  ok &= get_u64(j, "change_interval", &p->change_interval);
  ok &= get_u32(j, "resume_permille", &p->resume_permille);
  ok &= get_u64(j, "delay_unit", &p->delay_unit);
  ok &= get_u32(j, "point_permille", &p->point_permille);
  ok &= get_u64(j, "point_delay_max", &p->point_delay_max);
  return ok;
}

}  // namespace

std::string repro_to_json(const Scenario& s, const Violation& v) {
  JsonValue j = JsonValue::object();
  j["format"] = JsonValue(kReproFormat);
  JsonValue viol = JsonValue::object();
  viol["kind"] = JsonValue(v.kind);
  viol["detail"] = JsonValue(v.detail);
  j["violation"] = std::move(viol);

  JsonValue wl = JsonValue::object();
  wl["construction"] = JsonValue(harness::to_string(s.cfg.construction));
  wl["object"] = JsonValue(harness::to_string(s.cfg.object));
  wl["seed"] = JsonValue(s.cfg.seed);
  wl["threads"] = JsonValue(s.cfg.threads);
  wl["ops_each"] = JsonValue(s.cfg.ops_each);
  wl["max_ops"] = JsonValue(s.cfg.max_ops);
  wl["produce_permille"] = JsonValue(s.cfg.produce_permille);
  wl["think_max"] = JsonValue(s.cfg.think_max);
  wl["horizon"] = JsonValue(s.cfg.horizon);
  wl["hyb_bug_drop_every"] = JsonValue(s.cfg.hyb_bug_drop_every);
  wl["async_depth"] = JsonValue(s.cfg.async_depth);
  wl["shards"] = JsonValue(s.cfg.shards);
  j["workload"] = std::move(wl);

  j["machine"] = obs::MetricsRegistry::params_json(s.cfg.params);
  j["faults"] = faults_json(s.cfg.faults);
  j["perturb"] = perturb_json(s.perturb);
  return j.dump() + "\n";
}

bool repro_from_json(const std::string& text, Scenario* out,
                     Violation* expect, std::string* err) {
  JsonValue j;
  if (!JsonValue::parse(text, &j, err)) return false;
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what;
    return false;
  };
  const JsonValue* fmt = j.find("format");
  if (fmt == nullptr || !fmt->is_string() ||
      fmt->as_string() != kReproFormat) {
    return fail("not an hmps-repro-v1 file");
  }

  Scenario s;
  const JsonValue* wl = j.find("workload");
  if (wl == nullptr || !wl->is_object()) return fail("missing workload");
  const JsonValue* cons = wl->find("construction");
  const JsonValue* obj = wl->find("object");
  if (cons == nullptr || !cons->is_string() ||
      !harness::construction_from_string(cons->as_string(),
                                         &s.cfg.construction)) {
    return fail("workload: unknown construction");
  }
  if (obj == nullptr || !obj->is_string() ||
      !harness::object_from_string(obj->as_string(), &s.cfg.object)) {
    return fail("workload: unknown object");
  }
  bool ok = true;
  ok &= get_u64(*wl, "seed", &s.cfg.seed);
  ok &= get_u32(*wl, "threads", &s.cfg.threads);
  ok &= get_u32(*wl, "ops_each", &s.cfg.ops_each);
  ok &= get_u64(*wl, "max_ops", &s.cfg.max_ops);
  ok &= get_u32(*wl, "produce_permille", &s.cfg.produce_permille);
  ok &= get_u64(*wl, "think_max", &s.cfg.think_max);
  ok &= get_u64(*wl, "horizon", &s.cfg.horizon);
  ok &= get_u64(*wl, "hyb_bug_drop_every", &s.cfg.hyb_bug_drop_every);
  ok &= get_u32(*wl, "async_depth", &s.cfg.async_depth);
  // Absent in pre-sharding repro files: the default (1) reproduces them
  // exactly (hmps-repro-v1 keeps defaults for missing fields).
  ok &= get_u32(*wl, "shards", &s.cfg.shards);
  if (!ok) return fail("workload: bad field type");

  if (const JsonValue* m = j.find("machine"); m != nullptr && m->is_object()) {
    if (!machine_from_json(*m, &s.cfg.params, err)) return false;
  }
  if (const JsonValue* f = j.find("faults"); f != nullptr && f->is_object()) {
    if (!faults_from_json(*f, &s.cfg.faults)) return fail("faults: bad field");
  }
  if (const JsonValue* p = j.find("perturb"); p != nullptr && p->is_object()) {
    if (!perturb_from_json(*p, &s.perturb)) return fail("perturb: bad field");
  }
  if (expect != nullptr) {
    *expect = Violation{};
    if (const JsonValue* v = j.find("violation");
        v != nullptr && v->is_object()) {
      if (const JsonValue* k = v->find("kind"); k != nullptr && k->is_string()) {
        expect->kind = k->as_string();
        expect->found = !expect->kind.empty();
      }
      if (const JsonValue* d = v->find("detail");
          d != nullptr && d->is_string()) {
        expect->detail = d->as_string();
      }
    }
  }
  *out = s;
  return true;
}

bool write_repro_file(const std::string& path, const Scenario& s,
                      const Violation& v, std::string* err) {
  std::ofstream os(path);
  if (!os) {
    if (err != nullptr) *err = "cannot open " + path + " for writing";
    return false;
  }
  os << repro_to_json(s, v);
  return static_cast<bool>(os);
}

bool read_repro_file(const std::string& path, Scenario* out,
                     Violation* expect, std::string* err) {
  std::ifstream is(path);
  if (!is) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return repro_from_json(ss.str(), out, expect, err);
}

}  // namespace hmps::check

// HYBCOMB (paper Section 4.2, Algorithm 1): the hybrid combining
// construction and the paper's central contribution.
//
// Hardware message passing carries requests/responses between clients and
// the current combiner (as in MP-SERVER), while coherent shared memory
// manages combiner identity: a CAS on `last_registered_combiner` builds a
// logical queue of would-be combiners (CSqueue), each spinning on its
// predecessor's `combining_done` flag.
//
// Line numbers in comments refer to Algorithm 1 in the paper. The
// implementation keeps the algorithm's subtle points faithfully:
//  * registration is a FAA on the last registered combiner's n_ops; a
//    result >= MAX_OPS means the combiner is closed (or not yet open) and
//    the caller competes to become the next combiner (lines 9-21);
//  * a combiner first drains its message queue opportunistically (lines
//    25-28, optional for correctness, good for combining potential), then
//    closes registration with a SWAP of n_ops to MAX_OPS and serves exactly
//    the remaining registered requests (lines 30-37);
//  * a departing combiner exchanges its node with the single spare node
//    (departed_combiner), so n_ops of the node it leaves behind stays at
//    MAX_OPS until the node is reused and re-opened at line 18 (lines
//    38-42 and the "additional comments" paragraph).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class HybComb {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;
  static constexpr std::uint64_t kNoThread = ~std::uint64_t{0};

  /// Design-space options discussed in Section 4.2 ("additional comments");
  /// the defaults are the paper's Algorithm 1.
  struct Options {
    /// Register as combiner with SWAP instead of CAS: registration always
    /// succeeds, building a CLH-style chain of combiners, but some of them
    /// end up combining only their own request (the paper's argument for
    /// CAS).
    bool swap_registration = false;
    /// Run the opportunistic drain loop (lines 25-28) before closing
    /// registration; not needed for correctness, good for combining
    /// potential.
    bool eager_drain = true;
    /// Combiner-stall detection (Section 6 robustness): a would-be combiner
    /// spinning on its predecessor's combining_done for more than this many
    /// cycles records a stall_timeout and backs off coarsely. Detection
    /// only — takeover is impossible because the stalled combiner's pending
    /// requests sit in its private hardware queue. 0 disables.
    Cycle stall_timeout = 0;
    /// Section 6 overflow guard: bound the requests in flight *per
    /// combiner* (credit before send, released when the combiner SERVES
    /// the request), keeping a combiner's hardware buffer from overflowing
    /// under pressure. The credit counter lives in the combiner's node:
    /// registrants of a not-yet-active successor combiner draw from a
    /// different pool, so they can never starve the active combiner's
    /// registrants into a cross-generation deadlock. Unlike the server
    /// constructions (which release at reply arrival, docs/MODEL.md §9),
    /// release happens on the combiner side: a combiner blocks waiting for
    /// specific registrants' frames, so liveness must never depend on some
    /// third client draining its replies — a credit holder parked in
    /// spin_combining_done() cannot drain (its queue may already hold its
    /// successor-tenure request frames). 0 disables (the paper's unbounded
    /// behavior).
    std::uint64_t max_inflight = 0;
    /// TEST-ONLY seeded defect for the src/check schedule-exploration
    /// harness (docs/TESTING.md): the combiner drops the CS execution of
    /// every Nth message-served request — it consumes the request but
    /// replies with the previous retval without running fn, a lost update
    /// that only manifests under combining. 0 (the default) disables it;
    /// never set outside exploration selftests.
    std::uint64_t bug_drop_every = 0;
  };

  /// `max_ops` is MAX_OPS of Algorithm 1. `fixed_combiner` reproduces the
  /// Fig. 4a measurement variant (MAX_OPS = infinity, one combiner for the
  /// whole run: the first thread to combine never departs).
  HybComb(void* obj, std::uint64_t max_ops = 200, bool fixed_combiner = false,
          Options opts = Options{})
      : obj_(obj),
        // Fixed-combiner mode IS "MAX_OPS = infinity" (paper footnote 4):
        // registration must never close, or clients wedge behind a combiner
        // that never departs.
        max_ops_(fixed_combiner ? (std::uint64_t{1} << 62) : max_ops),
        fixed_(fixed_combiner), opts_(opts),
        pool_(new Node[kMaxThreads + 1]) {
    // Line 3: departed_combiner <- {bottom, MAX_OPS, true}
    Node* dep = &pool_[kMaxThreads];
    dep->thread_id.store(kNoThread, std::memory_order_relaxed);
    dep->n_ops.store(max_ops_, std::memory_order_relaxed);
    dep->combining_done.store(1, std::memory_order_relaxed);
    departed_.store(rt::to_word(dep), std::memory_order_relaxed);
    // Line 4: last_registered_combiner <- departed_combiner
    lrc_.store(rt::to_word(dep), std::memory_order_relaxed);
    // Line 5: my_node <- {id, MAX_OPS, false}
    for (std::uint32_t t = 0; t < kMaxThreads; ++t) {
      pool_[t].thread_id.store(t, std::memory_order_relaxed);
      pool_[t].n_ops.store(max_ops_, std::memory_order_relaxed);
      pool_[t].combining_done.store(0, std::memory_order_relaxed);
      my_[t].node = &pool_[t];
    }
  }

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "HybComb::apply");
    // With async tickets outstanding the synchronous 1-word response would
    // misframe behind the pending 3-word tagged replies; route through the
    // async path instead (docs/MODEL.md §9).
    if (async_[tid].outstanding > 0) {
      Ticket t = apply_async(ctx, fn, arg);
      return wait(ctx, t);
    }
    SyncStats& st = stats_[tid].s;
    Node* reg = nullptr;
    if (try_register_send(ctx, fn, arg, /*tag=*/0, st, &reg)) {
      // Lines 12-14 tail: await the response (the combiner released our
      // credit when it served the request).
      return ctx.receive1();
    }
    return combine_section(ctx, fn, arg, st);
  }

  /// Issues `fn(obj, arg)` without blocking on the response. When the
  /// request registers with an active combiner the ticket is pending (reap
  /// with wait()/wait_all() on this thread); when registration is closed
  /// everywhere the caller becomes the combiner exactly as in apply() and
  /// the ticket completes inline — the combiner transition cannot be
  /// deferred, its pending requests sit in this thread's hardware queue.
  Ticket apply_async(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "HybComb::apply_async");
    SyncStats& st = stats_[tid].s;
    AsyncSt& a = async_[tid];
    explore_point(ctx, "hyb.async_issue");
    const std::uint64_t tag = a.next_tag;
    const Cycle issued = ctx.now();
    Node* reg = nullptr;
    if (try_register_send(ctx, fn, arg, tag, st, &reg)) {
      a.next_tag = a.next_tag == kAsyncTagMask ? 1 : a.next_tag + 1;
      ++st.async_issued;
      ++a.outstanding;
      Ticket t{tag, 0, 0};
      t.issued = issued;
      return t;
    }
    ++st.async_issued;
    Ticket t{0, combine_section(ctx, fn, arg, st), 0};
    t.issued = issued;
    t.completed = ctx.now();
    return t;
  }

  /// Reaps one ticket, returning its CS result. Must run on the issuing
  /// thread. Replies for other outstanding tickets arriving first are
  /// staged in the context (credits were already released combiner-side at
  /// serve time).
  std::uint64_t wait(Ctx& ctx, Ticket& t) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "HybComb::wait");
    AsyncSt& a = async_[tid];
    if (t.tag == 0) return t.value;  // completed inline (combiner path)
    explore_point(ctx, "hyb.reap");
    std::uint64_t val;
    if (ctx.take_staged_reply(t.tag, &val)) {
      --a.outstanding;
      t.completed = ctx.now();
      return val;
    }
    for (;;) {
      std::uint64_t m[3];
      ctx.receive_async(m, 3);
      // Only replies can land here: requests go to registered combiners,
      // and a thread inside wait() is never one.
      assert(is_reply_frame(m[0]));
      const std::uint64_t got = reply_tag(m[0]);
      if (got == t.tag) {
        --a.outstanding;
        t.completed = ctx.now();
        return m[1];
      }
      ctx.stage_reply(got, m[1]);
    }
  }

  /// Reaps every outstanding ticket of the calling thread, discarding the
  /// results.
  void wait_all(Ctx& ctx) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "HybComb::wait_all");
    AsyncSt& a = async_[tid];
    explore_point(ctx, "hyb.reap");
    std::uint64_t tag, val;
    while (a.outstanding > 0) {
      if (ctx.take_any_staged_reply(&tag, &val)) {
        --a.outstanding;
        continue;
      }
      std::uint64_t m[3];
      ctx.receive_async(m, 3);
      assert(is_reply_frame(m[0]));
      --a.outstanding;
    }
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "HybComb::stats");
    return stats_[t].s;
  }

  /// Credits held against the last registered combiner's node — a proxy for
  /// the active combiner's queue length (0 when the overflow guard is off).
  /// Telemetry gauge: plain snapshot reads, never synchronizing.
  std::uint64_t combiner_inflight() const {
    const Node* n = rt::from_word<Node>(lrc_.load(std::memory_order_relaxed));
    return n ? n->inflight.load(std::memory_order_relaxed) : 0;
  }

 private:
  // Line 2: Node{thread_id, n_ops, combining_done}. One cache line each;
  // n_ops is the FAA hot word.
  struct alignas(rt::kCacheLine) Node {
    Word thread_id{0};
    Word n_ops{0};
    Word combining_done{0};
    Word inflight{0};  ///< Section 6 per-combiner credits (max_inflight)
  };
  static_assert(sizeof(Node) == rt::kCacheLine);

  struct alignas(rt::kCacheLine) PerThread {
    Node* node = nullptr;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  /// Lines 19-20: wait for the predecessor combiner to depart, optionally
  /// detecting a stalled one (Options::stall_timeout).
  void spin_combining_done(Ctx& ctx, Node* pred, SyncStats& st) {
    if (opts_.stall_timeout == 0) {
      while (!ctx.load(&pred->combining_done)) ctx.cpu_relax();
      return;
    }
    Cycle t0 = ctx.now();
    while (!ctx.load(&pred->combining_done)) {
      if (ctx.now() - t0 >= opts_.stall_timeout) {
        ++st.stall_timeouts;
        // Coarse backoff: the predecessor is preempted/stalled, so burning
        // cycles polling its flag only adds contention on the line.
        ctx.compute(opts_.stall_timeout / 4 + 1);
        t0 = ctx.now();
      } else {
        ctx.cpu_relax();
      }
    }
  }

  /// Spin (through shared memory) until one of `node`'s in-flight credits
  /// is free. Liveness: the active combiner's registrants release credits
  /// as they are served, so the combiner is never starved of requests.
  void acquire_credit(Ctx& ctx, Node* node, SyncStats& st) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&node->inflight);
      if (cur < opts_.max_inflight &&
          ctx.cas(&node->inflight, cur, cur + 1)) {
        return;
      }
      ++st.throttle_waits;
      ctx.cpu_relax();
    }
  }

  struct alignas(rt::kCacheLine) AsyncSt {
    std::uint64_t next_tag = 1;
    std::uint32_t outstanding = 0;  ///< issued minus reaped
  };

  /// Registration phase (Algorithm 1 lines 8-21). Returns true when the
  /// request registered with a combiner and was sent (`*out_reg` is the
  /// node whose credit pool it drew from); false when the caller became the
  /// next combiner (run combine_section()). `tag` == 0 marks a synchronous
  /// request.
  bool try_register_send(Ctx& ctx, Fn fn, std::uint64_t arg,
                         std::uint64_t tag, SyncStats& st, Node** out_reg) {
    const Tid tid = ctx.tid();
    for (;;) {  // line 8
      explore_point(ctx, "hyb.register");
      Node* last_reg = rt::from_word<Node>(ctx.load(&lrc_));  // line 9
      // Line 11: try to register with the last registered combiner.
      if (ctx.faa(&last_reg->n_ops, 1) < max_ops_) {
        // Lines 12-13: success; send the request.
        obs::Span<Ctx> req(ctx, "hyb.request");
        const Tid comb =
            static_cast<Tid>(ctx.load(&last_reg->thread_id));
        if (opts_.max_inflight) {
          if (tag == 0) {
            acquire_credit(ctx, last_reg, st);
          } else {
            acquire_credit_draining(ctx, last_reg, st, async_[tid]);
          }
        }
        explore_point(ctx, "hyb.pre_send");
        ctx.send(comb, {pack_request_id(tid, tag), rt::to_word(fn), arg});
        ++st.ops;
        *out_reg = last_reg;
        return true;
      }
      // Lines 16-21: failure; try to register as the next combiner.
      Node* my_node = my_[tid].node;
      if (opts_.swap_registration) {
        // Ablation: SWAP always succeeds; combiners form a CLH-style chain
        // (every candidate becomes a combiner, possibly for its own request
        // only).
        last_reg = rt::from_word<Node>(
            ctx.exchange(&lrc_, rt::to_word(my_node)));
        ctx.store(&my_node->n_ops, std::uint64_t{0});
        spin_combining_done(ctx, last_reg, st);
        return false;
      }
      ++st.cas_attempts;
      if (ctx.cas(&lrc_, rt::to_word(last_reg), rt::to_word(my_node))) {
        ctx.store(&my_node->n_ops, std::uint64_t{0});  // line 18
        spin_combining_done(ctx, last_reg, st);        // lines 19-20
        return false;  // line 21
      }
      ++st.cas_failures;
    }
  }

  /// Combiner section (Algorithm 1 lines 23-43, in mutual exclusion): run
  /// the own op, drain/serve registered requests, depart.
  std::uint64_t combine_section(Ctx& ctx, Fn fn, std::uint64_t arg,
                                SyncStats& st) {
    const Tid tid = ctx.tid();
    Node* my_node = my_[tid].node;
    std::uint64_t ops_completed = 0;  // line 7
    obs::Span<Ctx> combine(ctx, "hyb.combine");
    ++st.tenures;
    const std::uint64_t retval = fn(ctx, obj_, arg);  // line 23
    ++st.ops;
    ++st.served;

    // Lines 25-28: drain the message queue while it is non-empty. Stray
    // reply frames (serve_frame() returning false) do not count toward
    // ops_completed — only registered requests do.
    if (opts_.eager_drain) {
      while (!ctx.queue_empty()) {
        if (serve_frame(ctx, st)) ++ops_completed;
      }
    }
    if (fixed_) {
      // Fig. 4a variant: equivalent to MAX_OPS = infinity; never depart.
      for (;;) {
        serve_frame(ctx, st);
      }
    }

    // Line 30: close combining for new requests.
    explore_point(ctx, "hyb.close");
    std::uint64_t total_ops = ctx.exchange(&my_node->n_ops, max_ops_);
    if (total_ops > max_ops_) total_ops = max_ops_;  // lines 31-32

    // Lines 34-37: serve the remaining registered requests.
    while (ops_completed < total_ops) {
      if (serve_frame(ctx, st)) ++ops_completed;
    }

    // Lines 39-42: exchange our node with the spare, inform the next
    // combiner, and return. These run in mutual exclusion (footnote 3), so
    // plain read+write stands in for the paper's SWAP.
    explore_point(ctx, "hyb.depart");
    Node* spare = rt::from_word<Node>(ctx.load(&departed_));
    ctx.store(&departed_, rt::to_word(my_node));
    Node* old_node = my_node;
    my_node = spare;
    my_[tid].node = my_node;
    ctx.store(&my_node->combining_done, std::uint64_t{0});   // line 40
    ctx.store(&my_node->thread_id, std::uint64_t{tid});      // line 41
    ctx.store(&old_node->combining_done, std::uint64_t{1});  // line 42
    return retval;  // line 43
  }

  /// Pops exactly one 3-word frame from the combiner's queue. Request
  /// frames run their CS and are answered (returns true); stray reply
  /// frames — responses to the combiner's own still-outstanding async
  /// tickets, possible because a thread with pending tickets can become a
  /// combiner — are staged for their wait() and return false. The demux is
  /// safe because async replies are padded to the same 3-word framing as
  /// requests and marked with bit 63.
  bool serve_frame(Ctx& ctx, SyncStats& st) {
    std::uint64_t m[3];  // {sender_id|tag, fptr, fargs} — lines 26/35
    ctx.receive(m, 3);
    if (is_reply_frame(m[0])) {
      ctx.stage_reply(reply_tag(m[0]), m[1]);
      return false;
    }
    // The request no longer occupies this combiner's hardware queue:
    // release its credit. Every request frame served in a tenure drew from
    // the serving thread's current node (registration with it closes before
    // the node is recycled, and its registered ops are all served before
    // depart), so the release node is simply my_[tid].node.
    if (opts_.max_inflight) {
      ctx.faa(&my_[ctx.tid()].node->inflight, ~std::uint64_t{0});
    }
    obs::Span<Ctx> cs(ctx, "hyb.cs");
    const Tid dst = static_cast<Tid>(request_tid(m[0]));
    const std::uint64_t tag = request_tag(m[0]);
    if (opts_.bug_drop_every != 0) [[unlikely]] {
      if (++bug_serves_ % opts_.bug_drop_every == 0) {
        // Seeded bug (Options::bug_drop_every): skip the CS, reply stale.
        reply(ctx, dst, tag, bug_last_ret_);
        ++st.served;
        return true;
      }
    }
    Fn f = rt::from_word<std::remove_pointer_t<Fn>>(m[1]);
    const std::uint64_t ret = f(ctx, obj_, m[2]);
    bug_last_ret_ = ret;
    reply(ctx, dst, tag, ret);  // lines 27/36
    ++st.served;
    return true;
  }

  /// Async replies are padded to 3 words so a combiner's queue keeps
  /// uniform framing (see serve_frame()).
  void reply(Ctx& ctx, Tid dst, std::uint64_t tag, std::uint64_t ret) {
    if (tag != 0) {
      ctx.send(dst, {kAsyncReplyMark | tag, ret, 0});
    } else {
      ctx.send(dst, {ret});
    }
  }

  /// Async-issue credit acquire. Liveness needs no drain here — credits
  /// release through the combiner's own serving progress — but replies that
  /// already arrived for this thread's outstanding tickets are moved to the
  /// stash anyway, so an issuer parked on a credit never lets its hardware
  /// queue fill up with undrained replies (which would eventually block the
  /// combiner's reply sends on small buffers).
  void acquire_credit_draining(Ctx& ctx, Node* node, SyncStats& st,
                               AsyncSt& a) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&node->inflight);
      if (cur < opts_.max_inflight &&
          ctx.cas(&node->inflight, cur, cur + 1)) {
        return;
      }
      ++st.throttle_waits;
      if (a.outstanding > 0 && !ctx.queue_empty()) {
        std::uint64_t m[3];
        ctx.receive_async(m, 3);
        assert(is_reply_frame(m[0]));
        ctx.stage_reply(reply_tag(m[0]), m[1]);
      } else {
        ctx.cpu_relax();
      }
    }
  }

  void* obj_;
  std::uint64_t max_ops_;
  bool fixed_;
  Options opts_;
  std::unique_ptr<Node[]> pool_;
  alignas(rt::kCacheLine) Word lrc_{0};        ///< last_registered_combiner
  alignas(rt::kCacheLine) Word departed_{0};   ///< departed_combiner
  PerThread my_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
  AsyncSt async_[kMaxThreads];
  // Seeded-bug state (Options::bug_drop_every); only touched inside the
  // combiner section, i.e. in mutual exclusion.
  std::uint64_t bug_serves_ = 0;
  std::uint64_t bug_last_ret_ = 0;
};

}  // namespace hmps::sync

file(REMOVE_RECURSE
  "CMakeFiles/test_hub.dir/test_hub.cpp.o"
  "CMakeFiles/test_hub.dir/test_hub.cpp.o.d"
  "test_hub"
  "test_hub.pdb"
  "test_hub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// DSM-SYNCH (Fatourou & Kallimanis, PPoPP'12 — the paper's reference [11],
// Algorithm 2): the sibling of CC-SYNCH for machines without efficient
// remote spinning. Each thread spins on its OWN node (DSM-style local
// spinning), at the cost of one CAS on the tail during combiner
// termination and a two-node toggle per thread.
//
// Included as an extension baseline: on the simulated cache-coherent mesh
// it behaves like CC-SYNCH with slightly higher combiner costs, matching
// the original paper's findings on CC machines.
#pragma once

#include <cstdint>
#include <memory>

#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class DsmSynch {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  explicit DsmSynch(void* obj, std::uint32_t max_ops = 200)
      : obj_(obj), max_ops_(max_ops),
        pool_(new Node[2 * kMaxThreads]) {}

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "DsmSynch::apply");
    SyncStats& st = stats_[tid].s;
    PerThread& me = my_[tid];
    Node* node = &pool_[2 * tid + me.toggle];
    me.toggle ^= 1;

    ctx.store(&node->next, std::uint64_t{0});
    ctx.store(&node->wait, std::uint64_t{1});
    ctx.store(&node->completed, std::uint64_t{0});
    ctx.store(&node->fn, rt::to_word(fn));
    ctx.store(&node->arg, arg);

    explore_point(ctx, "dsm.enqueue");
    Node* pred = rt::from_word<Node>(ctx.exchange(&tail_, rt::to_word(node)));
    if (pred != nullptr) {
      ctx.store(&pred->next, rt::to_word(node));
      while (ctx.load(&node->wait)) ctx.cpu_relax();  // spin on OWN node
      ++st.ops;
      if (ctx.load(&node->completed)) return ctx.load(&node->ret);
    } else {
      ++st.ops;
    }

    // Combiner.
    ++st.tenures;
    std::uint32_t counter = 0;
    Node* tmp = node;
    for (;;) {
      ++counter;
      Fn f = rt::from_word<std::remove_pointer_t<Fn>>(ctx.load(&tmp->fn));
      ctx.store(&tmp->ret, f(ctx, obj_, ctx.load(&tmp->arg)));
      ctx.store(&tmp->completed, std::uint64_t{1});
      ctx.store(&tmp->wait, std::uint64_t{0});
      ++st.served;
      Node* next = rt::from_word<Node>(ctx.load(&tmp->next));
      if (next == nullptr || counter >= max_ops_) break;
      // Stop early if the next node is the last and still being linked, to
      // keep the termination CAS window small (original Algorithm 2).
      ctx.prefetch(next);
      tmp = next;
    }

    // Termination: detach or hand the combiner role over.
    explore_point(ctx, "dsm.terminate");
    if (ctx.load(&tmp->next) == 0) {
      ++st.cas_attempts;
      if (ctx.cas(&tail_, rt::to_word(tmp), std::uint64_t{0})) {
        return ctx.load(&node->ret);
      }
      ++st.cas_failures;
      // A successor is linking itself in; wait for the pointer.
      while (ctx.load(&tmp->next) == 0) ctx.cpu_relax();
    }
    Node* next = rt::from_word<Node>(ctx.load(&tmp->next));
    ctx.store(&next->wait, std::uint64_t{0});  // hand off (completed == 0)
    return ctx.load(&node->ret);
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "DsmSynch::stats");
    return stats_[t].s;
  }

 private:
  struct alignas(rt::kCacheLine) Node {
    Word fn{0};
    Word arg{0};
    Word ret{0};
    Word wait{0};
    Word completed{0};
    Word next{0};
  };
  struct alignas(rt::kCacheLine) PerThread {
    std::uint32_t toggle = 0;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  void* obj_;
  std::uint32_t max_ops_;
  std::unique_ptr<Node[]> pool_;
  alignas(rt::kCacheLine) Word tail_{0};
  PerThread my_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::sync

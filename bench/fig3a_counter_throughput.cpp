// Reproduces Fig. 3a: throughput of a concurrent counter implemented with
// mp-server, HybComb, shm-server and CC-Synch, as a function of the number
// of application threads.
//
// Expected shape (paper, Section 5.3): MP-SERVER fastest at every
// concurrency level, peaking ~4.3x above SHM-SERVER; HYBCOMB second,
// ~2.5x above CC-SYNCH at high concurrency; CC-SYNCH and SHM-SERVER
// closely matched.
//
// Extensions beyond the paper: a vlink-server column (delegation over the
// Virtual-Link MPMC channel, docs/MODEL.md §12) so all three transports —
// UDN, vlink, plain shared memory — run side by side, and a
// --noc-combining flag that turns on in-network RMW combining
// (docs/MODEL.md §11) to ask whether HybComb's endpoint combining still
// pays once the network combines for it.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig3a_counter_throughput", argc, argv);

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{1, 2, 4, 6, 8, 10, 12, 14, 16,
                                             18, 20, 22, 24, 26, 28, 30, 32,
                                             34, 35}
                : std::vector<std::uint32_t>{1, 5, 10, 15, 20, 25, 30, 35};
  if (args.threads) threads = {args.threads};

  const Approach order[] = {Approach::kMpServer, Approach::kHybComb,
                            Approach::kShmServer, Approach::kCcSynch,
                            Approach::kVlinkServer};

  harness::RunPool pool(art, args.jobs);
  for (std::uint32_t t : threads) {
    harness::RunCfg cfg;
    cfg.app_threads = t;
    cfg.seed = args.seed;
    cfg.machine.noc_combining = args.noc_combining;
    if (args.mesh_w) {  // e.g. --mesh 16x16: the 256-core profiling shape
      cfg.machine.mesh_w = args.mesh_w;
      cfg.machine.mesh_h = args.mesh_h;
    }
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    for (Approach a : order) {
      pool.submit(std::string(harness::approach_name(a)) + "/t" +
                      std::to_string(t),
                  [cfg, a](const harness::RunObs& obs) {
                    harness::RunCfg c = cfg;
                    c.obs = obs;
                    const auto r = harness::run_counter(c, a);
                    std::fprintf(stderr, "[fig3a] %s done\n", obs.label);
                    return r;
                  });
    }
  }
  const auto& results = pool.drain();

  harness::Table table({"threads", "mp-server", "HybComb", "shm-server",
                        "CC-Synch", "vlink-server"});
  std::size_t idx = 0;
  for (std::uint32_t t : threads) {
    std::vector<std::string> row{std::to_string(t)};
    for (std::size_t a = 0; a < 5; ++a)
      row.push_back(harness::fmt(results[idx++].mops));
    table.add_row(row);
  }
  std::string title =
      "Fig. 3a: counter throughput (Mops/s) vs application threads";
  if (args.noc_combining) title += " [noc-combining on]";
  table.print(title);
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

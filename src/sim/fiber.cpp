#include "sim/fiber.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace hmps::sim {
namespace {

// makecontext() cannot pass pointers portably (its varargs are ints), so the
// fiber being started is published through this slot just before the switch.
// The simulator is single-host-threaded, so a plain global is fine.
Fiber* g_starting = nullptr;
Fiber* g_current = nullptr;

}  // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(new char[stack_bytes]) {
  if (getcontext(&ctx_) != 0) {
    std::perror("getcontext");
    std::abort();
  }
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = &caller_;  // falling off the end returns to the resumer
  makecontext(&ctx_, &Fiber::trampoline, 0);
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  self->fn_();
  self->state_ = State::kFinished;
  // uc_link takes control back to caller_.
}

void Fiber::resume() {
  assert(state_ != State::kFinished && "resuming a finished fiber");
  Fiber* prev = g_current;
  g_current = this;
  state_ = State::kRunning;
  if (!started_) {
    started_ = true;
    g_starting = this;
  }
  swapcontext(&caller_, &ctx_);
  g_current = prev;
  if (state_ == State::kRunning) state_ = State::kReady;
}

void Fiber::yield() {
  assert(g_current == this && "yield called off-fiber");
  swapcontext(&ctx_, &caller_);
}

}  // namespace hmps::sim

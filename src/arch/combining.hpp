// In-network combining of unconditional RMWs (docs/MODEL.md §11).
//
// The NYU Ultracomputer line of work (see PAPERS.md) merges fetch-and-add
// messages to the same word inside the network switches: when a request
// reaches a router that an earlier same-word request has already passed —
// and whose reply has not yet come back through — the two combine into the
// one downstream message already in flight, and the router's wait buffer
// holds enough state to fan the combined reply back out on the return path.
// Combined requests never reach the directory or the memory controller, so
// a hot fetch-and-add word stops serializing on controller occupancy.
//
// This model is analytical, like the controller-occupancy model it
// bypasses: no scheduler events, no RNG. Dimension-ordered XY routes to a
// common destination form a tree (once two routes meet they coincide), so
// the merge point of a candidate request is the first router of its route
// that lies on a live root request's route while that root's combining
// window — (root passes the router, root's reply re-crosses the router) —
// is open. Roots register their route parameters; candidates walk their own
// route tile by tile (<= mesh_w + mesh_h steps) testing membership in O(1).
//
// Enabled by MachineParams::noc_combining (requires atomics_at_ctrl). With
// the knob off the coherence model never calls into this class, keeping
// every existing trace bit-identical. Every merge fans back out exactly
// once, so counters().combines == counters().decombines always (the CI
// telescoping check).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

using sim::Cycle;
using sim::Tid;

class CombiningFabric {
 public:
  CombiningFabric(const MachineParams& p, const MeshTopology& topo)
      : p_(p), topo_(topo) {}

  /// Result of a merge attempt: when `combined`, the request completes at
  /// `done` (fan-out at the merge router + return trip) without touching
  /// the line, the directory, or the controller.
  struct MergeResult {
    bool combined = false;
    Cycle done = 0;
  };

  /// Tries to merge a fetch-and-add/exchange by core `c` on `word`,
  /// departing the core at `depart`. Expired roots for the word are pruned
  /// as a side effect.
  MergeResult try_combine(Tid c, std::uint64_t word, Cycle depart);

  /// Registers a request that reached the controller as a combining root:
  /// its request passes router R at depart + wire(src, R), and its reply
  /// re-crosses R at reply_depart + wire(ctrl, R) — the window in which
  /// later same-word requests merge at R. `done` (reply back at the
  /// source) bounds the root's lifetime for pruning.
  void register_root(Tid c, std::uint64_t word, std::uint32_t ctrl,
                     Cycle depart, Cycle reply_depart, Cycle done);

  struct Counters {
    std::uint64_t combines = 0;    ///< requests merged at a router
    std::uint64_t decombines = 0;  ///< replies fanned back out (== combines)
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 private:
  struct Root {
    std::uint64_t word = 0;
    Coord src{};           ///< source tile
    Coord ctrl{};          ///< controller attach coordinate
    Cycle depart = 0;      ///< request leaves the source
    Cycle reply_depart = 0;///< reply leaves the controller
    Cycle done = 0;        ///< reply back at the source (lifetime bound)
  };

  /// True iff tile `t` lies on the XY (X-then-Y) route src -> dst.
  static bool on_route(Coord t, Coord src, Coord dst) {
    const auto between = [](std::int32_t v, std::int32_t a, std::int32_t b) {
      return a <= b ? (a <= v && v <= b) : (b <= v && v <= a);
    };
    return (t.y == src.y && between(t.x, src.x, dst.x)) ||
           (t.x == dst.x && between(t.y, src.y, dst.y));
  }

  const MachineParams& p_;
  const MeshTopology& topo_;
  std::vector<Root> roots_;  ///< live roots, all words (short: pruned often)
  Counters counters_;
};

}  // namespace hmps::arch

// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence): two events scheduled for
// the same cycle fire in the order they were scheduled. This total order is
// what makes whole simulations bit-reproducible across runs.
//
// Engine hot path: every simulated cycle flows through schedule()/pop(), so
// events avoid the heap entirely in steady state. Callbacks live inline in
// pooled slots (EventFn below, 48 bytes of storage — every callback the
// simulator itself schedules fits) and NEVER move while pending; ordering is
// done on small POD nodes (time, seq, slot index) by a bucket timing wheel
// with an overflow heap (see EventQueue below), giving O(1) schedule and pop
// for the near-term deltas cycle-level models produce. Slots are recycled
// through a free list; once pool, buckets, and heap have grown to the
// high-water mark of a run, scheduling allocates nothing. EngineCounters
// (sim/stats.hpp) track the two escape hatches — oversized callbacks
// spilling to the heap and pool growth — so tests can assert the
// zero-allocation contract instead of assuming it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace hmps::sim {

/// Move-only callable with small-buffer storage, sized so every callback on
/// the simulator's critical path (fiber resumes, UDN deliveries, model
/// timers) stays inline. Larger callables still work; they spill to a heap
/// allocation, which the event queue counts.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  template <class F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= kInlineBytes &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  EventFn() = default;

  template <class F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>, int> = 0>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Constructs the callable directly in this object's storage (destroying
  /// any current one) — the hot path uses this to build callbacks in their
  /// pool slot with no temporary and no relocate call.
  template <class F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if (ops_ && ops_->destroy) ops_->destroy(buf_);
    if constexpr (fits_inline<F> && std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      // The common case: captures are pointers and integers. Null
      // relocate/destroy mark "move = memcpy, destroy = no-op", so the only
      // indirect call such an event ever pays is the invoke itself.
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kTrivialOps<D>;
    } else if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_) {
      if (ops_->relocate == nullptr) {
        __builtin_memcpy(buf_, o.buf_, kInlineBytes);
      } else {
        ops_->relocate(buf_, o.buf_);
      }
      o.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      if (ops_ && ops_->destroy) ops_->destroy(buf_);
      ops_ = o.ops_;
      if (ops_) {
        if (ops_->relocate == nullptr) {
          __builtin_memcpy(buf_, o.buf_, kInlineBytes);
        } else {
          ops_->relocate(buf_, o.buf_);
        }
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  ~EventFn() {
    if (ops_ && ops_->destroy) ops_->destroy(buf_);
  }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable at `dst` from `src` and destroys `src`.
    /// nullptr means "memcpy the whole buffer" (trivially-copyable inline).
    void (*relocate)(void* dst, void* src);
    /// nullptr means "no-op" (trivially-destructible inline).
    void (*destroy)(void*);
  };

  template <class D>
  static constexpr Ops kTrivialOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      nullptr,
      nullptr,
  };

  template <class D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <class D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**reinterpret_cast<D**>(p))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* p) { delete *reinterpret_cast<D**>(p); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Bucket timing wheel with an overflow heap.
///
/// Near-term events (delta < kWheel cycles, i.e. essentially everything a
/// cycle-level model schedules) go into the wheel bucket `time % kWheel` in
/// O(1). Because simulated time is monotonic and every wheel entry satisfied
/// `t - now < kWheel` when inserted, all live entries of one bucket share a
/// single time value — so a bucket is a plain FIFO and its append order IS
/// seq order. Far-future events go to a small 4-ary min-heap and compete
/// with the wheel head by (time, seq) at pop, which preserves the global
/// total order exactly. An occupancy bitmap makes "find the next non-empty
/// bucket" a couple of word scans.
class EventQueue {
 public:
  using Callback = EventFn;

  /// Schedules `cb` to fire at absolute time `t`. A `t` earlier than the
  /// last popped event's time fires "now" (the scheduler never passes one).
  template <class F>
  void schedule(Cycle t, F&& cb) {
    if constexpr (!EventFn::fits_inline<F>) ++counters_.spill_allocs;
    if (t < floor_) t = floor_;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if (pool_.size() == pool_.capacity()) ++counters_.heap_grows;
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    pool_[slot].emplace(std::forward<F>(cb));
    const Node n{t, next_seq_++, slot};
    if (t - floor_ < kWheel) {
      Bucket& b = buckets_[t & (kWheel - 1)];
      if (b.items.size() == b.items.capacity()) ++counters_.heap_grows;
      b.items.push_back(n);
      occ_[(t & (kWheel - 1)) / 64] |= 1ull << (t % 64);
      ++wheel_count_;
    } else {
      if (overflow_.size() == overflow_.capacity()) ++counters_.heap_grows;
      overflow_.push_back(n);
      sift_up(overflow_.size() - 1);
    }
    ++size_;
    ++counters_.scheduled;
    if (size_ > counters_.peak_depth) counters_.peak_depth = size_;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest pending event. Precondition: !empty().
  Cycle next_time() const { return peek().time; }

  /// Pops and returns the earliest event's callback, advancing `now` out.
  Callback pop(Cycle* now) {
    const Node n = peek();
    if (!overflow_.empty() && overflow_.front().seq == n.seq) {
      pop_overflow();
    } else {
      Bucket& b = buckets_[n.time & (kWheel - 1)];
      if (++b.head == b.items.size()) {
        b.items.clear();
        b.head = 0;
        occ_[(n.time & (kWheel - 1)) / 64] &= ~(1ull << (n.time % 64));
      }
      --wheel_count_;
    }
    floor_ = n.time;
    *now = n.time;
    Callback cb = std::move(pool_[n.slot]);
    free_slots_.push_back(n.slot);
    --size_;
    ++counters_.executed;
    return cb;
  }

  /// Drops all pending events in O(n + wheel size).
  void clear() {
    for (Bucket& b : buckets_) {
      b.items.clear();
      b.head = 0;
    }
    occ_.fill(0);
    overflow_.clear();
    pool_.clear();
    free_slots_.clear();
    wheel_count_ = 0;
    size_ = 0;
  }

  /// Pre-sizes the callable pool so the first `n` concurrent events never
  /// grow the heap.
  void reserve(std::size_t n) {
    pool_.reserve(n);
    free_slots_.reserve(n);
  }

  const EngineCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 private:
  /// Wheel buckets per revolution. Covers every delta a cycle-level model
  /// produces (wire latencies, think times); longer timers take the
  /// overflow-heap path, which is merely O(log n), not wrong.
  static constexpr std::size_t kWheel = 1024;

  struct Node {
    Cycle time;
    std::uint64_t seq;
    std::uint32_t slot;  ///< index of the callable in pool_
  };

  /// FIFO of same-time events; `head` fronts the vector so steady-state
  /// drain/refill cycles never shift or reallocate.
  struct Bucket {
    std::vector<Node> items;
    std::size_t head = 0;
  };

  /// Earliest pending event by (time, seq): the first entry of the next
  /// occupied bucket at or after floor_, unless the overflow root beats it.
  Node peek() const {
    const Node* best = nullptr;
    if (wheel_count_ > 0) {
      const std::size_t start = floor_ & (kWheel - 1);
      std::size_t w = start / 64;
      std::uint64_t word = occ_[w] & (~0ull << (start % 64));
      for (;;) {
        if (word != 0) {
          const std::size_t bit =
              static_cast<std::size_t>(__builtin_ctzll(word));
          const Bucket& b = buckets_[w * 64 + bit];
          best = &b.items[b.head];
          break;
        }
        w = (w + 1) % (kWheel / 64);
        word = occ_[w];
        // wheel_count_ > 0 guarantees termination within one revolution.
      }
    }
    if (!overflow_.empty()) {
      const Node& o = overflow_.front();
      if (best == nullptr || o.time < best->time ||
          (o.time == best->time && o.seq < best->seq)) {
        return o;
      }
    }
    return *best;
  }

  // Strict ordering of the (time, seq) pair; seq values are unique, so this
  // is a total order.
  static bool earlier(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Overflow heap: 4-ary min-heap, children of i are 4i+1..4i+4. Only
  // far-future events (delta >= kWheel) ever live here.
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    const Node e = overflow_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(e, overflow_[parent])) break;
      overflow_[i] = overflow_[parent];
      i = parent;
    }
    overflow_[i] = e;
  }

  void pop_overflow() {
    const Node last = overflow_.back();
    overflow_.pop_back();
    if (overflow_.empty()) return;
    // Walk the root hole down to `last`'s final position.
    const std::size_t n = overflow_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + kArity < n ? first + kArity : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(overflow_[c], overflow_[best])) best = c;
      }
      if (!earlier(overflow_[best], last)) break;
      overflow_[i] = overflow_[best];
      i = best;
    }
    overflow_[i] = last;
  }

  std::array<Bucket, kWheel> buckets_;
  std::array<std::uint64_t, kWheel / 64> occ_{};  ///< bucket occupancy bits
  std::vector<Node> overflow_;             ///< heap of far-future events
  std::vector<EventFn> pool_;              ///< slot-indexed callable storage
  std::vector<std::uint32_t> free_slots_;  ///< recycled pool slots
  std::size_t wheel_count_ = 0;  ///< events resident in wheel buckets
  std::size_t size_ = 0;
  Cycle floor_ = 0;  ///< time of the last popped event
  std::uint64_t next_seq_ = 0;
  EngineCounters counters_;
};

}  // namespace hmps::sim

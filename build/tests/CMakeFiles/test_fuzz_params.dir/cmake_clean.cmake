file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_params.dir/test_fuzz_params.cpp.o"
  "CMakeFiles/test_fuzz_params.dir/test_fuzz_params.cpp.o.d"
  "test_fuzz_params"
  "test_fuzz_params.pdb"
  "test_fuzz_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

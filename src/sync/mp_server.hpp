// MP-SERVER (paper Section 4.1): the client/server (delegation) approach on
// top of hardware message passing.
//
// A dedicated server thread executes all critical sections of one object.
// Clients send a 3-word request over the message network and block on a
// 1-word response. Because the server's receive reads from its local
// hardware buffer and its send is asynchronous, no coherence-related stalls
// remain on the server's critical path (Fig. 2 of the paper).
#pragma once

#include <cstdint>

#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class MpServer {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  /// `server_tid`: the thread that will run serve(); `obj`: the concurrent
  /// object whose CSes this instance executes. `max_inflight` > 0 enables
  /// the Section 6 overflow guard: at most that many requests may be
  /// outstanding across all clients (credit acquired before the send,
  /// released after the response), which bounds the words resident in the
  /// server's hardware buffer to 4 * max_inflight regardless of client
  /// count or buffer size. 0 leaves the fast path untouched.
  MpServer(Tid server_tid, void* obj, std::uint64_t max_inflight = 0)
      : server_(server_tid), obj_(obj), max_inflight_(max_inflight) {}

  Tid server_tid() const { return server_; }
  void* object() const { return obj_; }

  /// Client side: executes `fn(obj, arg)` in mutual exclusion on the server
  /// and returns its result. Must not be called from the server thread.
  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "MpServer::apply");
    obs::Span<Ctx> span(ctx, "mp.request");
    explore_point(ctx, "mp.pre_send");
    if (max_inflight_ == 0) {
      ctx.send(server_, {tid, rt::to_word(fn), arg});
      return ctx.receive1();
    }
    acquire_credit(ctx, stats_[tid].s);
    ctx.send(server_, {tid, rt::to_word(fn), arg});
    const std::uint64_t ret = ctx.receive1();
    ctx.faa(&inflight_, ~std::uint64_t{0});  // release (+(-1))
    return ret;
  }

  /// Server side: serves requests until a stop request arrives (see
  /// request_stop). Runs forever under open-ended simulation windows.
  void serve(Ctx& ctx) {
    check_tid(ctx.tid(), kMaxThreads, "MpServer::serve");
    SyncStats& st = stats_[ctx.tid()].s;
    for (;;) {
      explore_point(ctx, "mp.serve");
      std::uint64_t m[3];
      ctx.receive(m, 3);
      if (m[1] == kStopWord) return;
      // CS + response phase on the server's critical path.
      obs::Span<Ctx> cs(ctx, "mp.cs");
      Fn fn = rt::from_word<std::remove_pointer_t<Fn>>(m[1]);
      const std::uint64_t ret = fn(ctx, obj_, m[2]);
      ctx.send(static_cast<Tid>(m[0]), {ret});
      ++st.served;
    }
  }

  /// Asks the server loop to exit. Safe to call while requests from other
  /// clients are still queued ahead of the stop message; they are served
  /// first (FIFO hardware queue).
  void request_stop(Ctx& ctx) { ctx.send(server_, {0, kStopWord, 0}); }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "MpServer::stats");
    return stats_[t].s;
  }

 private:
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  /// Spin (through shared memory, so no message-buffer pressure) until an
  /// in-flight credit is free, then claim it with CAS.
  void acquire_credit(Ctx& ctx, SyncStats& st) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&inflight_);
      if (cur < max_inflight_ && ctx.cas(&inflight_, cur, cur + 1)) return;
      ++st.throttle_waits;
      ctx.cpu_relax();
    }
  }

  Tid server_;
  void* obj_;
  std::uint64_t max_inflight_;
  alignas(rt::kCacheLine) Word inflight_{0};
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::sync

#include "arch/vlink.hpp"

#include <bit>

namespace hmps::arch {

VlinkFabric::ChannelId VlinkFabric::create_channel(Tid home,
                                                   std::size_t capacity) {
  assert(home < topo_.cores());
  Channel c;
  c.home = home;
  c.cap = capacity < 2 ? 2 : capacity;
  c.ring.init(std::bit_ceil(c.cap));
  chans_.push_back(std::move(c));
  return static_cast<ChannelId>(chans_.size() - 1);
}

void VlinkFabric::push(Tid src, ChannelId ch, const std::uint64_t* words,
                       std::size_t n) {
  assert(ch < chans_.size());
  Channel& c = chans_[ch];
  assert(n > 0 && n <= c.cap && "frame larger than the whole channel");

  // Credit check: frames are never dropped; a full channel backs the
  // producer up. The condition is re-read on every wakeup (several pushers
  // can be woken for the same freed space).
  while (c.reserved + n > c.cap) {
    ++counters_.producer_blocks;
    c.push_waiters.push_back(Waiter{sched_.current(), n});
    sched_.suspend();
  }
  c.reserved += n;
  if (c.reserved > counters_.peak_occupancy) {
    counters_.peak_occupancy = c.reserved;
  }
  ++counters_.frames;
  counters_.words += n;

  // Arrival at the home ring: injection + per-word wire at the producer,
  // NoC traversal, fault-injected latency, then ingress serialization.
  const Cycle now = sched_.now();
  const Cycle inject_done =
      now + p_.udn_inject + p_.udn_per_word_wire * static_cast<Cycle>(n);
  Cycle arrive_base =
      p_.model_link_contention
          ? noc_.route(src, c.home, inject_done, static_cast<std::uint32_t>(n))
          : inject_done + topo_.wire(src, c.home);
  if (faults_ && faults_->active()) {
    // Same ordering contract as UdnModel::send: injected latency lands
    // before port serialization so commit times per channel stay
    // non-decreasing in push order (the staging fast path relies on it).
    arrive_base += faults_->delivery_delay();
    if (!p_.model_link_contention) arrive_base += faults_->link_jitter();
  }
  const Cycle commit_at =
      (c.enq_busy > arrive_base ? c.enq_busy : arrive_base) +
      p_.udn_per_word_wire * static_cast<Cycle>(n);
  c.enq_busy = commit_at;

  c.ring.stage(words, n);
  sched_.at(commit_at, [this, ch, n] {
    Channel& chan = chans_[ch];
    chan.ring.commit(n);
    wake_poppers(chan);
  });

  // Asynchronous push: the producer only pays its injection cost.
  sched_.wait_until(inject_done);
}

void VlinkFabric::pop(Tid dst, ChannelId ch, std::uint64_t* out,
                      std::size_t n) {
  assert(ch < chans_.size());
  Channel& c = chans_[ch];
  assert(n > 0 && n <= c.cap);

  // Frame atomicity: take the whole frame or none of it. The fast path is
  // only open while no consumer is queued — otherwise this pop would
  // overtake a blocked one and take words off the head of its frame.
  if (c.pop_waiters.empty() && c.ring.size() >= n) {
    c.ring.pop(out, n);
    assert(c.reserved >= n);
    c.reserved -= n;
    wake_pushers(c);
  } else {
    ++counters_.consumer_waits;
    c.pop_waiters.push_back(Waiter{sched_.current(), n, out});
    sched_.suspend();
    // The commit event already copied our frame into `out`, released the
    // credits, and woke the pushers (wake_poppers()).
  }

  // Request trip to the home, egress-port serialization of the frame, data
  // trip back. Only the serialization occupies the port; the wire legs
  // pipeline.
  const Cycle at_home = sched_.now() + topo_.wire(dst, c.home);
  const Cycle egress_start = c.deq_busy > at_home ? c.deq_busy : at_home;
  const Cycle egress_end =
      egress_start + p_.udn_per_word_wire * static_cast<Cycle>(n);
  c.deq_busy = egress_end;
  const Cycle done = egress_end + topo_.wire(c.home, dst) +
                     p_.udn_recv_word * static_cast<Cycle>(n);
  sched_.wait_until(done);
}

void VlinkFabric::wake_poppers(Channel& c) {
  // FIFO handover: copy each satisfied waiter's frame out as it is woken.
  // Stops at the first waiter whose frame is still incomplete — frames
  // commit in push order, so skipping ahead would reorder consumers for no
  // modeling gain.
  while (!c.pop_waiters.empty() && c.ring.size() >= c.pop_waiters.front().need) {
    const Waiter& w = c.pop_waiters.front();
    c.ring.pop(w.out, w.need);
    assert(c.reserved >= w.need);
    c.reserved -= w.need;
    sched_.wake_now(w.fiber);
    c.pop_waiters.pop_front();
    wake_pushers(c);
  }
}

void VlinkFabric::wake_pushers(Channel& c) {
  std::size_t budget = c.cap > c.reserved ? c.cap - c.reserved : 0;
  while (!c.push_waiters.empty() && c.push_waiters.front().need <= budget) {
    budget -= c.push_waiters.front().need;
    sched_.wake_now(c.push_waiters.front().fiber);
    c.push_waiters.pop_front();
  }
}

}  // namespace hmps::arch

# Empty dependencies file for ext_combiners.
# This may be replaced when dependencies are built.

#include "sim/scheduler.hpp"

namespace hmps::sim {

Scheduler::FiberId Scheduler::spawn(std::function<void()> fn, Cycle start,
                                    std::size_t stack_bytes) {
  const FiberId id = static_cast<FiberId>(fibers_.size());
  fibers_.push_back(std::make_unique<Fiber>(std::move(fn), stack_bytes));
  schedule_resume(id, start);
  return id;
}

void Scheduler::schedule_resume(FiberId id, Cycle t) {
  if (perturber_ != nullptr) [[unlikely]] {
    t += perturber_->resume_delay(id, t);
  }
  schedule_resume_at(id, t);
}

void Scheduler::schedule_resume_at(FiberId id, Cycle t) {
  queue_.schedule_resume(t, id);
}

Cycle Scheduler::run(Cycle horizon) {
  stop_requested_ = false;
  horizon_ = horizon;
  while (!queue_.empty() && !stop_requested_) {
    Cycle t;
    const std::uint32_t e = queue_.pop_entry(horizon, &t);
    if (e == EventQueue::kNoEvent) {  // earliest event lies past the horizon
      now_ = horizon;
      break;
    }
    now_ = t;
    if (EventQueue::is_resume(e)) {
      Fiber& f = *fibers_[EventQueue::resume_fiber(e)];
      if (f.finished()) continue;  // resume raced the fiber's exit
      const FiberId prev = current_;
      current_ = EventQueue::resume_fiber(e);
      f.resume();
      current_ = prev;
    } else {
      EventQueue::Callback cb = queue_.claim(e);
      cb();
    }
  }
  return now_;
}

void Scheduler::wait_until(Cycle t) {
  assert(in_fiber());
  const FiberId id = current_;
  if (t < now_) t = now_;
  if (perturber_ != nullptr) [[unlikely]] {
    t += perturber_->resume_delay(id, t);
  }
  // Fast path: if no other event fires at or before t, the serial course of
  // events is "pop this fiber's resume at t" with nothing in between — so
  // skip the schedule + pop + two context switches and just advance the
  // clock. Disallowed after stop() (the fiber must yield so run() can
  // return) and past the run() horizon (run() must regain control there).
  if (fast_forward_enabled_ && !stop_requested_ && t <= horizon_ &&
      queue_.fast_forward(t)) {
    now_ = t;
    return;
  }
  Fiber& f = *fibers_[id];
  schedule_resume_at(id, t);  // perturber already applied above
  park_and_dispatch(f);
}

void Scheduler::park_and_dispatch(Fiber& f) {
  f.set_state(Fiber::State::kBlocked);
  if (!stop_requested_) {
    while (!queue_.empty()) {
      Cycle t;
      const std::uint32_t e = queue_.pop_resume(horizon_, &t);
      if (e == EventQueue::kNoEvent) break;  // callback next, or past horizon
      now_ = t;
      Fiber& nf = *fibers_[EventQueue::resume_fiber(e)];
      if (nf.finished()) continue;  // stale resume, same skip as the run loop
      current_ = EventQueue::resume_fiber(e);
      f.switch_to(nf);
      return;
    }
  }
  f.yield();
}

void Scheduler::suspend() {
  assert(in_fiber());
  park_and_dispatch(*fibers_[current_]);
}

void Scheduler::wake(FiberId id, Cycle t) {
  schedule_resume(id, t < now_ ? now_ : t);
}

}  // namespace hmps::sim

file(REMOVE_RECURSE
  "CMakeFiles/hmps_sim.dir/fiber.cpp.o"
  "CMakeFiles/hmps_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/hmps_sim.dir/scheduler.cpp.o"
  "CMakeFiles/hmps_sim.dir/scheduler.cpp.o.d"
  "libhmps_sim.a"
  "libhmps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

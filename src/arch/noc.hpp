// Optional link-level NoC contention model for the message network.
//
// The default UDN timing charges wire latency plus destination-port
// serialization, which captures the paper's effects. This model adds
// per-link occupancy along the XY (dimension-ordered) route — a wormhole
// approximation where each hop's link is reserved for the message's flits —
// so heavy many-to-one traffic also queues inside the mesh, not just at the
// receiver. Enable with MachineParams::model_link_contention.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

using sim::Cycle;
using sim::Tid;

class NocModel {
 public:
  NocModel(const MachineParams& p, const MeshTopology& topo);

  /// Arrival time at `dst` of an `words`-word message injected at `src` at
  /// `inject_time`, after queueing on every link of the XY route.
  Cycle route(Tid src, Tid dst, Cycle inject_time, std::uint32_t words);

  struct Counters {
    std::uint64_t messages = 0;
    std::uint64_t hops = 0;
    Cycle link_wait = 0;  ///< total cycles spent queued on busy links
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 private:
  // Directions out of each router.
  enum Dir : std::uint32_t { kEast, kWest, kNorth, kSouth, kDirs };

  std::size_t link_index(std::uint32_t x, std::uint32_t y, Dir d) const {
    return (static_cast<std::size_t>(y) * w_ + x) * kDirs + d;
  }

  const MachineParams& p_;
  const MeshTopology& topo_;
  std::uint32_t w_, h_;
  std::vector<Cycle> busy_;  ///< per-link reservation horizon
  Counters counters_;
};

}  // namespace hmps::arch

// Tests for the execution tracer.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "obs/json.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/trace.hpp"
#include "sync/mp_server.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

// Renders a tracer to its Chrome JSON and parses it back; fails the test on
// invalid JSON.
obs::JsonValue parse_trace(const sim::Tracer& t) {
  std::stringstream ss;
  t.write_chrome_json(ss);
  obs::JsonValue doc;
  std::string err;
  EXPECT_TRUE(obs::JsonValue::parse(ss.str(), &doc, &err)) << err;
  return doc;
}

TEST(Tracer, DisabledCollectsNothing) {
  sim::Tracer t;
  t.event(0, "x", 0, 5);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, CollectsAndCaps) {
  sim::Tracer t;
  t.enable(3);
  for (int i = 0; i < 10; ++i) t.event(0, "e", i, 1);
  EXPECT_EQ(t.size(), 3u);
}

TEST(Tracer, WritesValidChromeJson) {
  sim::Tracer t;
  t.enable();
  t.event(2, "load-miss", 100, 40);
  t.event(3, "compute", 140, 7);
  const std::string path = "/tmp/hmps_tracer_test.json";
  t.write_chrome_json(path);
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string s = ss.str();
  EXPECT_NE(s.find("\"name\":\"load-miss\""), std::string::npos);
  EXPECT_NE(s.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(s.find("\"ts\":100"), std::string::npos);
  // The file is one JSON object: {"traceEvents": [...], "hmps": {...}}.
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::JsonValue::parse(s, &doc, &err)) << err;
  ASSERT_TRUE(doc.is_object());
  const obs::JsonValue* ev = doc.find("traceEvents");
  ASSERT_NE(ev, nullptr);
  ASSERT_TRUE(ev->is_array());
  const obs::JsonValue* footer = doc.find("hmps");
  ASSERT_NE(footer, nullptr);
  EXPECT_EQ(footer->find("events")->as_uint(), 2u);
  EXPECT_EQ(footer->find("dropped")->as_uint(), 0u);
  EXPECT_FALSE(footer->has("warning"));
}

TEST(Tracer, ZeroEventsIsValidJson) {
  sim::Tracer t;  // never enabled, nothing recorded
  const obs::JsonValue doc = parse_trace(t);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("traceEvents")->size(), 0u);
  EXPECT_EQ(doc.find("hmps")->find("events")->as_uint(), 0u);
}

TEST(Tracer, EscapesNamesInJson) {
  sim::Tracer t;
  t.enable();
  t.set_process(0, "run \"A\"\\1\n");
  t.event(0, "ev\"il\\name\t", 0, 1);
  const obs::JsonValue doc = parse_trace(t);
  bool found_event = false, found_proc = false;
  for (const obs::JsonValue& e : doc.find("traceEvents")->items()) {
    const std::string& name = e.find("args") && e.find("args")->has("name")
                                  ? e.find("args")->find("name")->as_string()
                                  : e.find("name")->as_string();
    if (name == "ev\"il\\name\t") found_event = true;
    if (name == "run \"A\"\\1\n") found_proc = true;
  }
  EXPECT_TRUE(found_event);
  EXPECT_TRUE(found_proc);
}

TEST(Tracer, CountsDropsAndWarnsInFooter) {
  sim::Tracer t;
  t.enable(/*max_events=*/2);
  for (int i = 0; i < 7; ++i) t.event(0, "e", i, 1);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 5u);
  const obs::JsonValue doc = parse_trace(t);
  const obs::JsonValue* footer = doc.find("hmps");
  EXPECT_EQ(footer->find("dropped")->as_uint(), 5u);
  ASSERT_TRUE(footer->has("warning"));
  EXPECT_NE(footer->find("warning")->as_string().find("dropped"),
            std::string::npos);
}

TEST(Tracer, MergeRemapsFlowIdsWithoutCollisions) {
  sim::Tracer a, b;
  a.enable();
  b.enable();
  const std::uint64_t fa = a.next_flow_id();
  a.flow_start(0, "m", 10, fa);
  a.flow_end(1, "m", 20, fa);
  const std::uint64_t fb = b.next_flow_id();  // same numeric id as fa
  EXPECT_EQ(fa, fb);
  b.flow_start(2, "m", 30, fb);
  b.flow_end(3, "m", 45, fb);

  sim::Tracer sink;
  sink.merge_from(a);
  sink.merge_from(b);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(a.size(), 0u);  // drained
  const obs::JsonValue doc = parse_trace(sink);
  std::map<std::uint64_t, int> starts, ends;
  for (const obs::JsonValue& e : doc.find("traceEvents")->items()) {
    const obs::JsonValue* ph = e.find("ph");
    if (ph && ph->as_string() == "s") starts[e.find("id")->as_uint()]++;
    if (ph && ph->as_string() == "f") ends[e.find("id")->as_uint()]++;
  }
  EXPECT_EQ(starts.size(), 2u);  // distinct ids after the remap
  EXPECT_EQ(starts, ends);
}

TEST(Tracer, SimulationEmitsEventsWhenEnabled) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ex.machine().tracer().enable();
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    for (int k = 0; k < 10; ++k) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_GT(ex.machine().tracer().size(), 40u);  // sends/receives/loads...
}

TEST(Tracer, EverySimulatedFlowStartHasMatchingEnd) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ex.machine().tracer().enable();
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    for (int k = 0; k < 10; ++k) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  const obs::JsonValue doc = parse_trace(ex.machine().tracer());
  std::map<std::uint64_t, int> starts, ends;
  std::uint64_t client_to_server = 0;
  for (const obs::JsonValue& e : doc.find("traceEvents")->items()) {
    const obs::JsonValue* ph = e.find("ph");
    if (!ph) continue;
    if (ph->as_string() == "s") {
      starts[e.find("id")->as_uint()]++;
      EXPECT_EQ(e.find("cat")->as_string(), "udn");
      // Client (core 1) -> server (core 0) requests show up as flows.
      if (e.find("tid")->as_uint() == 1) ++client_to_server;
    } else if (ph->as_string() == "f") {
      ends[e.find("id")->as_uint()]++;
    }
  }
  EXPECT_GE(starts.size(), 10u);  // one per UDN message, >= one per apply
  EXPECT_GE(client_to_server, 10u);
  EXPECT_EQ(starts, ends);  // every "s" paired with exactly one "f"
  for (const auto& [id, n] : starts) EXPECT_EQ(n, 1) << "flow id " << id;
}

TEST(Tracer, NoOverheadPathWhenDisabled) {
  // Behavioral check: identical op counts with tracer on/off.
  auto run = [](bool trace) {
    SimExecutor ex(arch::MachineParams::tilegx36(), 1);
    if (trace) ex.machine().tracer().enable();
    ds::SeqCounter c;
    sync::MpServer<SimCtx> mp(0, &c);
    ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 25; ++k) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
      mp.request_stop(ctx);
    });
    ex.run_until(sim::kCycleMax);
    return std::pair<std::uint64_t, sim::Cycle>(c.value.load(),
                                                ex.sched().now());
  };
  const auto a = run(false);
  const auto b = run(true);
  EXPECT_EQ(a.first, b.first);
  // Timing identical: tracing must not perturb the simulation.
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace hmps

// Per-binary plumbing for the machine-readable run artifacts
// (docs/OBSERVABILITY.md): one RunArtifacts per bench main() owns the
// MetricsRegistry behind --json and the merged trace sink behind --trace,
// and hands every benchmark run a RunObs with a unique Chrome-trace pid so
// runs land on separate tracks in the merged file.
//
// With neither flag given every sink is null and the benches behave exactly
// as before; call finalize() once after the last run to write the files.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "harness/report.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace hmps::harness {

class RunArtifacts {
 public:
  /// `bench` names the binary in the artifact header; argv is recorded
  /// verbatim for reproducibility.
  RunArtifacts(const BenchArgs& args, const std::string& bench, int argc,
               char** argv);

  /// True when --json or --trace was given (callers may skip labeling work
  /// otherwise, though next_run() is always safe).
  bool active() const { return !json_path_.empty() || !trace_path_.empty(); }

  /// Observability sinks for the next benchmark run. The label is kept
  /// alive by this object (RunObs::label is a borrowed pointer).
  RunObs next_run(std::string label);

  obs::MetricsRegistry& metrics() { return metrics_; }
  sim::Tracer& trace() { return trace_; }

  /// Writes the requested artifact files (no-op for flags not given) and
  /// prints one confirmation line per file.
  void finalize();

 private:
  std::string json_path_;
  std::string trace_path_;
  obs::MetricsRegistry metrics_;
  sim::Tracer trace_;  ///< merged destination; stays disabled (sink only)
  std::deque<std::string> labels_;  ///< stable storage for RunObs::label
  std::uint32_t next_pid_ = 0;
};

}  // namespace hmps::harness

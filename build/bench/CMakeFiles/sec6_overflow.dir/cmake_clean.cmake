file(REMOVE_RECURSE
  "CMakeFiles/sec6_overflow.dir/sec6_overflow.cpp.o"
  "CMakeFiles/sec6_overflow.dir/sec6_overflow.cpp.o.d"
  "sec6_overflow"
  "sec6_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "arch/noc.hpp"

#include <mutex>
#include <utility>

namespace hmps::arch {

namespace {

/// Builds the XY route table for a w x h mesh: the per-hop link indices of
/// every ordered (src, dst) pair, concatenated. Pure function of the mesh
/// dimensions — no machine state involved.
RouteTable build_route_table(std::uint32_t w, std::uint32_t h) {
  RouteTable rt;
  const std::size_t cores = static_cast<std::size_t>(w) * h;
  auto link_index = [&](std::uint32_t x, std::uint32_t y, NocModel::Dir d) {
    return (static_cast<std::size_t>(y) * w + x) * NocModel::kDirs + d;
  };
  rt.offs.reserve(cores * cores + 1);
  rt.offs.push_back(0);
  for (std::size_t src = 0; src < cores; ++src) {
    for (std::size_t dst = 0; dst < cores; ++dst) {
      Coord cur{static_cast<std::int32_t>(src % w),
                static_cast<std::int32_t>(src / w)};
      const Coord end{static_cast<std::int32_t>(dst % w),
                      static_cast<std::int32_t>(dst / w)};
      // Dimension-ordered: X first, then Y (TILE-Gx UDN routing).
      while (cur.x != end.x) {
        const bool east = cur.x < end.x;
        rt.links.push_back(static_cast<std::uint32_t>(
            link_index(static_cast<std::uint32_t>(cur.x),
                       static_cast<std::uint32_t>(cur.y),
                       east ? NocModel::kEast : NocModel::kWest)));
        cur.x += east ? 1 : -1;
      }
      while (cur.y != end.y) {
        const bool south = cur.y < end.y;
        rt.links.push_back(static_cast<std::uint32_t>(
            link_index(static_cast<std::uint32_t>(cur.x),
                       static_cast<std::uint32_t>(cur.y),
                       south ? NocModel::kSouth : NocModel::kNorth)));
        cur.y += south ? 1 : -1;
      }
      rt.offs.push_back(static_cast<std::uint32_t>(rt.links.size()));
    }
  }
  return rt;
}

}  // namespace

std::shared_ptr<const RouteTable> shared_route_table(std::uint32_t w,
                                                     std::uint32_t h) {
  // Process-wide registry keyed by mesh dimensions. Sweeps build thousands
  // of short-lived machines — and the run pool builds them concurrently on
  // several host threads — so the table for each mesh shape is derived once
  // and shared immutably. The handful of distinct shapes a process ever
  // sees (presets plus the fuzzer's <= 8x8 meshes) keeps the cache tiny.
  static std::mutex mu;
  static std::vector<std::pair<std::uint64_t, std::shared_ptr<const RouteTable>>>
      cache;
  const std::uint64_t key = (static_cast<std::uint64_t>(w) << 32) | h;
  {
    std::lock_guard<std::mutex> l(mu);
    for (const auto& [k, t] : cache) {
      if (k == key) return t;
    }
  }
  // Build outside the lock: table construction for a big mesh is the slow
  // part, and two threads racing to insert the same shape is harmless (one
  // copy wins, the other is dropped).
  auto table = std::make_shared<const RouteTable>(build_route_table(w, h));
  std::lock_guard<std::mutex> l(mu);
  for (const auto& [k, t] : cache) {
    if (k == key) return t;
  }
  cache.emplace_back(key, table);
  return table;
}

NocModel::NocModel(const MachineParams& p, const MeshTopology& topo)
    : p_(p), topo_(topo), w_(p.mesh_w), h_(p.mesh_h),
      busy_(static_cast<std::size_t>(w_) * h_ * kDirs, 0),
      routes_(shared_route_table(w_, h_)) {
  // Multi-chip machines pay chip_hop_extra on every link that crosses a
  // chip boundary. The route table stays a pure function of the mesh shape
  // (and shared process-wide); the per-link surcharge lives here, in a
  // per-machine vector indexed like the reservation array. Empty on a
  // single chip so route() skips the lookup entirely.
  if (p.chips() > 1 && p.chip_hop_extra > 0) {
    const std::uint32_t cw = p.chip_w(), ch = p.chip_h();
    link_extra_.assign(busy_.size(), 0);
    for (std::uint32_t y = 0; y < h_; ++y) {
      for (std::uint32_t x = 0; x < w_; ++x) {
        const std::size_t base =
            (static_cast<std::size_t>(y) * w_ + x) * kDirs;
        // East/west links cross when the column boundary between x and its
        // neighbor is a chip edge; north/south likewise for rows.
        if (x + 1 < w_ && (x + 1) % cw == 0)
          link_extra_[base + kEast] = p.chip_hop_extra;
        if (x > 0 && x % cw == 0) link_extra_[base + kWest] = p.chip_hop_extra;
        if (y + 1 < h_ && (y + 1) % ch == 0)
          link_extra_[base + kSouth] = p.chip_hop_extra;
        if (y > 0 && y % ch == 0) link_extra_[base + kNorth] = p.chip_hop_extra;
      }
    }
  }
}

Cycle NocModel::route(Tid src, Tid dst, Cycle inject_time,
                      std::uint32_t words) {
  ++counters_.messages;
  Cycle t = inject_time + p_.router;
  const Cycle hold = p_.udn_per_word_wire * static_cast<Cycle>(words);

  const std::size_t pair = static_cast<std::size_t>(src) * topo_.cores() + dst;
  const std::uint32_t* link = routes_->links.data() + routes_->offs[pair];
  const std::uint32_t* end = routes_->links.data() + routes_->offs[pair + 1];
  const bool jitter = faults_ && faults_->active();
  const bool chips = !link_extra_.empty();
  for (; link != end; ++link) {
    // Jitter slows the flit stream itself, not just the head: the extra
    // cycles extend the link hold, so later messages crossing this link
    // queue behind the jitter exactly like they queue behind the flits.
    const Cycle jit = jitter ? faults_->hop_jitter() : 0;
    Cycle& b = busy_[*link];
    const Cycle start = b > t ? b : t;
    counters_.link_wait += start - t;
    if (!link_busy_.empty()) {
      link_busy_[*link] += hold + jit;
      link_wait_[*link] += start - t;
    }
    // The link carries the message's flits back to back.
    b = start + hold + jit;
    t = start + p_.hop + jit;
    if (chips) t += link_extra_[*link];
    ++counters_.hops;
  }
  return t;
}

}  // namespace hmps::arch

// A parallelization-framework work queue — the use case the paper's
// introduction motivates ("fast synchronization on simple concurrent
// objects, such as queues, is key to the performance of parallelization
// frameworks").
//
// A fixed set of workers pulls task descriptors from a central FIFO queue
// and pushes newly spawned subtasks back (a fork/join-style task pool).
// The same workload runs over two queue implementations:
//   * the one-lock queue under MP-SERVER (a dedicated server core), and
//   * the one-lock queue under HYBCOMB (no dedicated core),
// printing makespan and queue-operation counts for both.
#include <cstdio>
#include <vector>

#include "arch/params.hpp"
#include "ds/queue.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"

using namespace hmps;
using rt::SimCtx;

namespace {

// A task descriptor packs {depth:8 | work:24 | id:32} into one word.
constexpr std::uint64_t make_task(std::uint32_t depth, std::uint32_t work,
                                  std::uint32_t id) {
  return (static_cast<std::uint64_t>(depth) << 56) |
         (static_cast<std::uint64_t>(work & 0xFFFFFF) << 32) | id;
}
constexpr std::uint32_t task_depth(std::uint64_t t) {
  return static_cast<std::uint32_t>(t >> 56);
}
constexpr std::uint32_t task_work(std::uint64_t t) {
  return static_cast<std::uint32_t>((t >> 32) & 0xFFFFFF);
}

struct Result {
  sim::Cycle makespan = 0;
  std::uint64_t executed = 0;
};

// Each task runs `work` cycles and spawns two children until depth runs
// out: a binary task tree of (2^(depth+1) - 1) tasks per root.
template <class UC>
Result run_pool(const char* label, std::uint32_t workers,
                std::uint32_t roots, std::uint32_t depth, bool dedicated) {
  rt::SimExecutor ex(arch::MachineParams::tilegx36(), 99);
  ds::SeqQueue q(1 << 16);
  UC uc = [&] {
    if constexpr (std::is_same_v<UC, sync::MpServer<SimCtx>>) {
      return UC(0, &q);
    } else {
      return UC(&q, 200);
    }
  }();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(roots) * ((1u << (depth + 1)) - 1);
  std::uint64_t executed = 0;
  std::uint64_t idle_workers = 0;
  sim::Cycle finished_at = 0;

  if (dedicated) {
    ex.add_thread([&](SimCtx& ctx) {
      if constexpr (std::is_same_v<UC, sync::MpServer<SimCtx>>) {
        uc.serve(ctx);
      }
    });
  }
  for (std::uint32_t w = 0; w < workers; ++w) {
    ex.add_thread([&, w](SimCtx& ctx) {
      // Worker 0 seeds the pool.
      if (w == 0) {
        for (std::uint32_t r = 0; r < roots; ++r) {
          uc.apply(ctx, ds::q_enqueue<SimCtx>, make_task(depth, 200, r));
        }
      }
      std::uint32_t spawned = 0;
      for (;;) {
        const std::uint64_t t = uc.apply(ctx, ds::q_dequeue<SimCtx>, 0);
        if (t == ds::kQEmpty) {
          if (executed >= expected) break;  // drained and done
          ctx.compute(50);                  // brief idle backoff
          continue;
        }
        ctx.compute(task_work(t));  // execute the task body
        ++executed;
        if (task_depth(t) > 0) {
          const std::uint64_t child =
              make_task(task_depth(t) - 1, task_work(t) / 2 + 10,
                        ++spawned);
          uc.apply(ctx, ds::q_enqueue<SimCtx>, child);
          uc.apply(ctx, ds::q_enqueue<SimCtx>, child);
        }
        if (executed >= expected && finished_at == 0) {
          finished_at = ctx.now();
        }
      }
      ++idle_workers;
      if (idle_workers == workers && dedicated) {
        if constexpr (std::is_same_v<UC, sync::MpServer<SimCtx>>) {
          uc.request_stop(ctx);
        }
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  std::printf("%-22s workers=%-2u tasks=%llu makespan=%llu cycles"
              " (%.2f tasks/kcycle)\n",
              label, workers, static_cast<unsigned long long>(executed),
              static_cast<unsigned long long>(finished_at),
              finished_at ? 1000.0 * static_cast<double>(executed) /
                                static_cast<double>(finished_at)
                          : 0.0);
  Result r;
  r.makespan = finished_at;
  r.executed = executed;
  return r;
}

}  // namespace

int main() {
  constexpr std::uint32_t kWorkers = 16, kRoots = 64, kDepth = 4;
  std::printf("task pool: %u roots, depth %u => %u tasks total\n", kRoots,
              kDepth, kRoots * ((1u << (kDepth + 1)) - 1));
  const Result mp = run_pool<sync::MpServer<SimCtx>>(
      "mp-server queue", kWorkers, kRoots, kDepth, /*dedicated=*/true);
  const Result hyb = run_pool<sync::HybComb<SimCtx>>(
      "HybComb queue", kWorkers, kRoots, kDepth, /*dedicated=*/false);
  const bool ok = mp.executed == hyb.executed && mp.executed > 0;
  std::printf("both variants executed the same %llu tasks: %s\n",
              static_cast<unsigned long long>(mp.executed),
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

#include "sim/fiber.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#if HMPS_FIBER_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace hmps::sim {

namespace detail {
// See the declaration in fiber.hpp for why these are thread_local.
constinit thread_local Fiber* g_starting = nullptr;
constinit thread_local Fiber* g_current = nullptr;
#if !HMPS_FIBER_UCONTEXT && HMPS_FIBER_ASAN
constinit thread_local const void* g_xfer_bottom = nullptr;
constinit thread_local std::size_t g_xfer_size = 0;
constinit thread_local bool g_xfer_pending = false;
#endif
}  // namespace detail

using detail::g_current;
using detail::g_starting;

namespace {

// Fresh fiber stacks are a large source of kernel time: each 256 KiB `new`
// becomes an mmap that is faulted in page by page and unmapped when the
// fiber dies, and benchmark sweeps build thousands of short-lived
// schedulers. Recycling stacks through a small thread-local pool keeps the
// pages warm. Stack memory is uninitialized either way, so reuse cannot
// change simulation behavior.
constexpr std::size_t kMaxPooledStacks = 256;

struct StackPool {
  std::vector<std::pair<std::size_t, char*>> free_list;
  std::uint64_t hits = 0;

  char* get(std::size_t bytes) {
    for (std::size_t i = free_list.size(); i-- > 0;) {
      if (free_list[i].first == bytes) {
        char* s = free_list[i].second;
        free_list[i] = free_list.back();
        free_list.pop_back();
        ++hits;
        return s;
      }
    }
    return new char[bytes];
  }

  void put(std::size_t bytes, char* stack) {
#if HMPS_FIBER_ASAN
    // Fibers abandoned while blocked are reclaimed without unwinding, so
    // scope-poison from their live frames is still in shadow memory. A
    // recycled stack bypasses the allocator (which would clear it), so the
    // next fiber's frames would trip false use-after-scope — scrub it here.
    __asan_unpoison_memory_region(stack, bytes);
#endif
    if (free_list.size() >= kMaxPooledStacks) {
      delete[] stack;
      return;
    }
    free_list.emplace_back(bytes, stack);
  }

  ~StackPool() {
    for (auto& [bytes, stack] : free_list) delete[] stack;
  }
};

StackPool& pool() {
  thread_local StackPool p;
  return p;
}

}  // namespace

std::uint64_t Fiber::stack_pool_hits() { return pool().hits; }

Fiber::~Fiber() { pool().put(stack_bytes_, stack_); }

#if HMPS_FIBER_UCONTEXT

// ---------------------------------------------------------------------------
// Portable fallback: POSIX ucontext. Correct everywhere but each switch pays
// a rt_sigprocmask syscall pair inside swapcontext.
// ---------------------------------------------------------------------------

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(pool().get(stack_bytes)),
      stack_bytes_(stack_bytes) {
  if (getcontext(&ctx_) != 0) {
    std::perror("getcontext");
    std::abort();
  }
  ctx_.uc_stack.ss_sp = stack_;
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = &caller_;  // falling off the end returns to the resumer
  makecontext(&ctx_, &Fiber::trampoline, 0);
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  self->fn_();
  self->state_ = State::kFinished;
  // uc_link takes control back to caller_.
}

void Fiber::resume() {
  assert(state_ != State::kFinished && "resuming a finished fiber");
  Fiber* prev = g_current;
  g_current = this;
  state_ = State::kRunning;
  if (!started_) {
    started_ = true;
    g_starting = this;
  }
  swapcontext(&caller_, &ctx_);
  g_current = prev;
  if (state_ == State::kRunning) state_ = State::kReady;
}

void Fiber::yield() {
  assert(g_current == this && "yield called off-fiber");
  swapcontext(&ctx_, &caller_);
}

void Fiber::switch_to(Fiber& next) {
  assert(g_current == this && "switch_to called off-fiber");
  assert(&next != this && "switch_to self");
  assert(next.state_ != State::kFinished && "switching to a finished fiber");
  next.caller_ = caller_;  // the scheduler continuation travels with the chain
  g_current = &next;
  next.state_ = State::kRunning;
  if (!next.started_) {
    next.started_ = true;
    g_starting = &next;
  }
  swapcontext(&ctx_, &next.ctx_);
}

#else  // !HMPS_FIBER_UCONTEXT

// ---------------------------------------------------------------------------
// x86-64 ELF fast path: a hand-rolled context switch saving exactly what the
// SysV ABI makes callee-saved (rbx, rbp, r12-r15, x87 control word, mxcsr).
// Unlike glibc's swapcontext this never enters the kernel — no signal-mask
// save/restore — which makes a fiber switch tens of cycles instead of a
// syscall pair. Simulated-thread switching is the single hottest edge in the
// engine, so this is where the events/sec of the whole simulator is decided.
// ---------------------------------------------------------------------------

// hmps_ctx_switch(save_sp, load_sp): pushes the callee-saved GPRs on the
// current stack, parks the stack pointer in *save_sp, switches to load_sp
// and pops the same state off it. The 56-byte frame layout (low to high) is
// [r15][r14][r13][r12][rbx][rbp][return address].
//
// The SysV ABI also makes the x87 control word and mxcsr callee-saved, but
// they are NOT switched here: nothing in the simulator (or in any code a
// fiber calls across a yield point) changes rounding/precision modes, so
// every context observes the process-default values, and the four control-
// word instructions the original frame carried were a measurable slice of
// the hottest edge in the engine. Code that does alter fp modes must
// restore them before the next Scheduler call.
asm(R"(
.text
.globl hmps_ctx_switch
.hidden hmps_ctx_switch
.type hmps_ctx_switch, @function
.align 16
hmps_ctx_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size hmps_ctx_switch, .-hmps_ctx_switch
)");

namespace {

#if HMPS_FIBER_ASAN
// AddressSanitizer must be told about every stack switch or its shadow
// memory bookkeeping (and fake-stack GC) misfires. Protocol: the side about
// to switch calls start_switch, the code that gains control calls finish.
void asan_start(void** fake, const void* bottom, std::size_t size) {
  __sanitizer_start_switch_fiber(fake, bottom, size);
}
void asan_finish(void* fake, const void** bottom, std::size_t* size) {
  __sanitizer_finish_switch_fiber(fake, bottom, size);
}
#endif

}  // namespace
}  // namespace hmps::sim

// No ASan instrumentation here: the compiler infers that trampoline() never
// returns and would plant an __asan_handle_no_return call in this function —
// running it on the raw fiber stack, before trampoline's
// __sanitizer_finish_switch_fiber handshake, corrupts ASan's stack
// bookkeeping.
extern "C"
#if HMPS_FIBER_ASAN
    __attribute__((no_sanitize_address))
#endif
    void
    hmps_fiber_entry() {
  hmps::sim::Fiber::trampoline();
  // trampoline() never returns: it switches back to the resumer for good.
  __builtin_unreachable();
}

namespace hmps::sim {

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(pool().get(stack_bytes)),
      stack_bytes_(stack_bytes) {
  // Build the initial switch frame at the stack top such that when
  // hmps_ctx_switch pops it and `ret`s into hmps_fiber_entry, the stack
  // pointer is congruent to 8 mod 16 — exactly as if the entry had been
  // `call`ed, which is what the ABI (and compiled code) expects.
  char* top = stack_ + stack_bytes;
  top -= reinterpret_cast<std::uintptr_t>(top) % 16;
  std::uint64_t* frame = reinterpret_cast<std::uint64_t*>(top) - 8;  // 64 B
  for (int i = 0; i <= 5; ++i) frame[i] = 0;  // r15 r14 r13 r12 rbx rbp
  frame[6] = reinterpret_cast<std::uint64_t>(&hmps_fiber_entry);
  ctx_sp_ = frame;
}

#if HMPS_FIBER_ASAN
void Fiber::asan_on_wake() {
  const void* bottom = nullptr;
  std::size_t size = 0;
  asan_finish(asan_fake_, &bottom, &size);
  if (detail::g_xfer_pending) {
    // Woken by switch_to(): the previous stack is the switching fiber's,
    // but the continuation we hold is the scheduler's — keep its bounds.
    detail::g_xfer_pending = false;
    asan_caller_bottom_ = detail::g_xfer_bottom;
    asan_caller_size_ = detail::g_xfer_size;
  } else {
    asan_caller_bottom_ = bottom;
    asan_caller_size_ = size;
  }
}
#endif

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
#if HMPS_FIBER_ASAN
  asan_finish(nullptr, &self->asan_caller_bottom_, &self->asan_caller_size_);
  if (detail::g_xfer_pending) {  // first entry came from switch_to()
    detail::g_xfer_pending = false;
    self->asan_caller_bottom_ = detail::g_xfer_bottom;
    self->asan_caller_size_ = detail::g_xfer_size;
  }
#endif
  self->fn_();
  self->state_ = State::kFinished;
#if HMPS_FIBER_ASAN
  // Passing nullptr releases this fiber's fake stack: it is dying.
  asan_start(nullptr, self->asan_caller_bottom_, self->asan_caller_size_);
#endif
  void* scratch;
  hmps_ctx_switch(&scratch, self->caller_sp_);
  __builtin_unreachable();
}

// resume()/yield() for this path are inline in fiber.hpp: they run twice
// per simulated event.

#endif  // HMPS_FIBER_UCONTEXT

}  // namespace hmps::sim

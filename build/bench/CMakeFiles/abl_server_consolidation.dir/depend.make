# Empty dependencies file for abl_server_consolidation.
# This may be replaced when dependencies are built.

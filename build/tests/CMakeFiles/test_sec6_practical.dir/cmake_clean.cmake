file(REMOVE_RECURSE
  "CMakeFiles/test_sec6_practical.dir/test_sec6_practical.cpp.o"
  "CMakeFiles/test_sec6_practical.dir/test_sec6_practical.cpp.o.d"
  "test_sec6_practical"
  "test_sec6_practical.pdb"
  "test_sec6_practical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sec6_practical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "arch/combining.hpp"

namespace hmps::arch {

CombiningFabric::MergeResult CombiningFabric::try_combine(Tid c,
                                                          std::uint64_t word,
                                                          Cycle depart) {
  // Prune roots whose reply is already home: reply_at(T) <= done for every
  // router T on the root's route, so done <= depart means every combining
  // window this root ever opened is closed.
  std::size_t w = 0;
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    if (roots_[i].done > depart) roots_[w++] = roots_[i];
  }
  roots_.resize(w);

  const Coord src = topo_.coord(c);
  MergeResult best;
  for (const Root& r : roots_) {
    if (r.word != word) continue;
    // Walk this request's own XY route toward the root's controller, X leg
    // then Y leg, and merge at the first router where the root's window is
    // open when the request arrives. Requests only ever wait for a reply
    // already in flight ahead of them — a request never stalls for a later
    // one — so the first (earliest) router that matches is the merge point.
    const Coord dst = r.ctrl;
    Coord t = src;
    const std::int32_t step_x = dst.x > src.x ? 1 : -1;
    const std::int32_t step_y = dst.y > src.y ? 1 : -1;
    while (true) {
      if (on_route(t, r.src, dst)) {
        const Cycle at = depart + topo_.wire_coord(src, t);
        const Cycle root_pass = r.depart + topo_.wire_coord(r.src, t);
        const Cycle reply_at = r.reply_depart + topo_.wire_coord(dst, t);
        if (root_pass <= at && at < reply_at) {
          // Wait at the router for the combined reply, pay one router
          // transit to peel off this request's slice, and head home.
          const Cycle done = reply_at + p_.router + topo_.wire_coord(t, src);
          if (!best.combined || done < best.done) {
            best.combined = true;
            best.done = done;
          }
          break;
        }
      }
      if (t.x != dst.x) {
        t.x += step_x;
      } else if (t.y != dst.y) {
        t.y += step_y;
      } else {
        break;
      }
    }
  }
  if (best.combined) {
    ++counters_.combines;
    // Each merged request is fanned back out of its merge router exactly
    // once, so the books balance at merge time (telescoping invariant).
    ++counters_.decombines;
  }
  return best;
}

void CombiningFabric::register_root(Tid c, std::uint64_t word,
                                    std::uint32_t ctrl, Cycle depart,
                                    Cycle reply_depart, Cycle done) {
  Root r;
  r.word = word;
  r.src = topo_.coord(c);
  r.ctrl = topo_.ctrl_coord(ctrl);
  r.depart = depart;
  r.reply_depart = reply_depart;
  r.done = done;
  roots_.push_back(r);
}

}  // namespace hmps::arch

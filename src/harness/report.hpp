// Table/CSV reporting for the benchmark binaries: each bench prints the
// rows/series of the paper figure it reproduces, in both a human-readable
// aligned table and an optional CSV file for plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hmps::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : cols_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders the aligned table to stdout with a title line.
  void print(const std::string& title) const;

  /// Writes the table as CSV to `path` (overwrites).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> cols_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` decimals.
std::string fmt(double v, int prec = 2);

/// Standard bench command line: [--full] [--csv FILE] [--json FILE]
/// [--trace FILE] [--threads N] [--window CYCLES] [--reps N] [--seed N]
/// [--jobs N] [--mesh WxH]. Benches scale their sweeps with `full`.
/// `--json` writes the machine-readable run artifact and `--trace` the
/// Chrome/Perfetto trace (docs/OBSERVABILITY.md); both are wired through
/// harness::RunArtifacts. `--jobs` sets the run-pool worker count for
/// sweep benches (harness/run_pool.hpp); 0 resolves through $HMPS_JOBS,
/// then hardware_concurrency. `--mesh` overrides the simulated mesh shape
/// (e.g. 16x16 = 256 cores; docs/ENGINE.md's profiling appendix) on the
/// benches that honor it. `--telemetry-window N` turns on the windowed
/// sampler (obs/telemetry.hpp) at an N-cycle cadence, and `--noc` enables
/// the link-contention NoC model so the telemetry heatmap has per-link
/// data (docs/OBSERVABILITY.md). `--noc-combining` turns on in-network
/// combining of unconditional RMWs (docs/MODEL.md §11) on the benches that
/// honor it, for combining-on/off transport comparisons.
struct BenchArgs {
  bool full = false;
  bool quick = false;  ///< CI smoke mode: shortest meaningful sweep
  std::string csv;
  std::string json;   ///< metrics artifact path ("" = off)
  std::string trace;  ///< Chrome trace-event JSON path ("" = off)
  std::uint32_t threads = 0;  // 0 = bench default
  std::uint64_t window = 0;   // 0 = bench default
  std::uint32_t reps = 0;     // 0 = bench default
  std::uint64_t seed = 1;
  std::uint32_t jobs = 0;     // run-pool workers; 0 = $HMPS_JOBS, then h/w
  std::uint32_t mesh_w = 0;   // 0 = bench default machine shape
  std::uint32_t mesh_h = 0;
  std::uint64_t telemetry_window = 0;  // sampler cadence, cycles; 0 = off
  bool noc = false;  // model link contention (per-link heatmap data)
  bool noc_combining = false;  // in-network RMW combining (MODEL.md §11)

  static BenchArgs parse(int argc, char** argv);
};

}  // namespace hmps::harness

# Empty compiler generated dependencies file for hmps_harness.
# This may be replaced when dependencies are built.

// Cache-line-aligned array storage for simulated shared memory.
//
// The coherence model maps host addresses to lines by `addr / line_bytes`
// (src/arch/coherence.hpp); home tiles are assigned by dense first-touch
// order, but WHICH words share a line is still a property of the host
// allocation base modulo the line size. Structures whose hot words carry
// `alignas(rt::kCacheLine)` are immune; bulk node arenas from plain
// `new T[n]` are not — a 16-byte-aligned arena base shifts the node/line
// packing with ASLR and with allocator state, which made queue/stack
// timings drift across processes and even between two runs in one process
// (tests/test_check_explore.cpp, RecordHistory). Every arena that backs
// simulated shared memory allocates through this wrapper so line packing
// is a property of the data structure, not of the host heap.
#pragma once

#include <cstddef>
#include <new>

#include "runtime/context.hpp"

namespace hmps::rt {

/// Fixed-size value-initialized array whose base is aligned to the
/// simulated cache-line size. Non-copyable; elements are destroyed in
/// reverse order.
template <class T>
class AlignedArray {
 public:
  explicit AlignedArray(std::size_t n)
      : n_(n),
        p_(static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t{kCacheLine}))) {
    for (std::size_t i = 0; i < n_; ++i) new (p_ + i) T();
  }
  ~AlignedArray() {
    for (std::size_t i = n_; i-- > 0;) p_[i].~T();
    ::operator delete(p_, std::align_val_t{kCacheLine});
  }
  AlignedArray(const AlignedArray&) = delete;
  AlignedArray& operator=(const AlignedArray&) = delete;

  T& operator[](std::size_t i) { return p_[i]; }
  const T& operator[](std::size_t i) const { return p_[i]; }

 private:
  std::size_t n_;
  T* p_;
};

}  // namespace hmps::rt

// Minimal JSON document model for machine-readable run artifacts.
//
// Design constraints (docs/OBSERVABILITY.md):
//   * dependency-free below everything else (sim::Tracer uses the escaper),
//   * objects keep insertion order, so two artifacts from the same code path
//     are byte-identical and diff cleanly,
//   * integers round-trip exactly (cycle counters exceed double's 53-bit
//     significand on long runs),
//   * a parser ships alongside the writer so tests can assert round-trips
//     without an external JSON library.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hmps::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Handles quote, backslash, and control characters.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// An ordered JSON value: null, bool, integer, double, string, array or
/// object. Objects are vectors of (key, value) pairs in insertion order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), b_(b) {}
  JsonValue(int v) : kind_(Kind::kInt), i_(v) {}
  JsonValue(long v) : kind_(Kind::kInt), i_(v) {}
  JsonValue(long long v) : kind_(Kind::kInt), i_(v) {}
  JsonValue(unsigned v) : kind_(Kind::kUint), u_(v) {}
  JsonValue(unsigned long v) : kind_(Kind::kUint), u_(v) {}
  JsonValue(unsigned long long v) : kind_(Kind::kUint), u_(v) {}
  JsonValue(double v) : kind_(Kind::kDouble), d_(v) {}
  JsonValue(const char* s) : kind_(Kind::kString), s_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), s_(std::move(s)) {}

  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }

  bool as_bool() const { return b_; }
  std::int64_t as_int() const {
    if (kind_ == Kind::kUint) return static_cast<std::int64_t>(u_);
    if (kind_ == Kind::kDouble) return static_cast<std::int64_t>(d_);
    return i_;
  }
  std::uint64_t as_uint() const {
    if (kind_ == Kind::kInt) return static_cast<std::uint64_t>(i_);
    if (kind_ == Kind::kDouble) return static_cast<std::uint64_t>(d_);
    return u_;
  }
  double as_double() const {
    if (kind_ == Kind::kInt) return static_cast<double>(i_);
    if (kind_ == Kind::kUint) return static_cast<double>(u_);
    return d_;
  }
  const std::string& as_string() const { return s_; }

  // --- object access ---

  /// Inserts or finds `key`; converts a null value into an object.
  JsonValue& operator[](const std::string& key) {
    if (kind_ == Kind::kNull) kind_ = Kind::kObject;
    for (auto& [k, v] : members_) {
      if (k == key) return v;
    }
    members_.emplace_back(key, JsonValue{});
    return members_.back().second;
  }

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool has(const std::string& key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // --- array access ---

  void push_back(JsonValue v) {
    if (kind_ == Kind::kNull) kind_ = Kind::kArray;
    items_.push_back(std::move(v));
  }
  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }
  std::size_t size() const {
    return kind_ == Kind::kObject ? members_.size() : items_.size();
  }

  // --- serialization ---

  /// Pretty-prints with two-space indentation when `indent >= 0` (pass a
  /// negative indent for compact single-line output).
  void write(std::ostream& os, int indent = 0) const {
    switch (kind_) {
      case Kind::kNull: os << "null"; return;
      case Kind::kBool: os << (b_ ? "true" : "false"); return;
      case Kind::kInt: os << i_; return;
      case Kind::kUint: os << u_; return;
      case Kind::kDouble: {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", d_);
        os << buf;
        return;
      }
      case Kind::kString: os << '"' << json_escape(s_) << '"'; return;
      case Kind::kArray: {
        if (items_.empty()) {
          os << "[]";
          return;
        }
        os << '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
          if (i) os << ',';
          newline(os, indent + 1);
          items_[i].write(os, child_indent(indent));
        }
        newline(os, indent);
        os << ']';
        return;
      }
      case Kind::kObject: {
        if (members_.empty()) {
          os << "{}";
          return;
        }
        os << '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
          if (i) os << ',';
          newline(os, indent + 1);
          os << '"' << json_escape(members_[i].first) << "\":";
          if (indent >= 0) os << ' ';
          members_[i].second.write(os, child_indent(indent));
        }
        newline(os, indent);
        os << '}';
        return;
      }
    }
  }

  std::string dump(int indent = 0) const;

  /// Recursive-descent parse of a complete JSON text. Returns false (and
  /// fills `err` if given) on any syntax error or trailing garbage.
  static bool parse(std::string_view text, JsonValue* out,
                    std::string* err = nullptr);

 private:
  static int child_indent(int indent) { return indent < 0 ? indent : indent + 1; }
  static void newline(std::ostream& os, int indent) {
    if (indent < 0) return;
    os << '\n';
    for (int i = 0; i < indent; ++i) os << "  ";
  }

  Kind kind_ = Kind::kNull;
  bool b_ = false;
  std::int64_t i_ = 0;
  std::uint64_t u_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> items_;
};

namespace detail {

class JsonParser {
 public:
  JsonParser(std::string_view t, std::string* err) : t_(t), err_(err) {}

  bool run(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != t_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const char* what) {
    if (err_) {
      *err_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < t_.size() &&
           (t_[pos_] == ' ' || t_[pos_] == '\t' || t_[pos_] == '\n' ||
            t_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < t_.size() && t_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (t_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool value(JsonValue* out) {
    if (pos_ >= t_.size()) return fail("unexpected end of input");
    switch (t_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        std::string s;
        if (!string(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue();
        return true;
      default: return number(out);
    }
  }

  bool object(JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::object();
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      (*out)[key] = std::move(v);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::array();
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (pos_ < t_.size()) {
      const char c = t_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= t_.size()) return fail("dangling escape");
      const char e = t_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > t_.size()) return fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = t_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported:
          // the writer never emits them for our ASCII-ish identifiers).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < t_.size() && t_[pos_] == '-') ++pos_;
    while (pos_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[pos_]))) ++pos_;
    if (pos_ < t_.size() && t_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[pos_]))) ++pos_;
    }
    if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < t_.size() && (t_[pos_] == '+' || t_[pos_] == '-')) ++pos_;
      while (pos_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[pos_]))) ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string tok(t_.substr(start, pos_ - start));
    if (tok == "-") return fail("bad number");
    if (is_double) {
      *out = JsonValue(std::strtod(tok.c_str(), nullptr));
    } else if (tok[0] == '-') {
      *out = JsonValue(static_cast<long long>(std::strtoll(tok.c_str(), nullptr, 10)));
    } else {
      *out = JsonValue(static_cast<unsigned long long>(
          std::strtoull(tok.c_str(), nullptr, 10)));
    }
    return true;
  }

  std::string_view t_;
  std::size_t pos_ = 0;
  std::string* err_;
};

}  // namespace detail

inline bool JsonValue::parse(std::string_view text, JsonValue* out,
                             std::string* err) {
  return detail::JsonParser(text, err).run(out);
}

inline std::string JsonValue::dump(int indent) const {
  std::ostringstream ss;
  write(ss, indent);
  return ss.str();
}

}  // namespace hmps::obs

#include "sim/fault.hpp"

namespace hmps::sim {

void FaultInjector::install(const FaultPlan& plan, std::uint32_t ncores) {
  plan_ = plan;
  if (!plan_.enabled()) return;
  active_ = true;

  // Independent streams per category: draws in one category never perturb
  // the timeline of another, so e.g. adding delivery delays to a scenario
  // leaves its preemption schedule untouched.
  SplitMix64 sm(plan_.seed);
  rng_credit_.reseed(sm.next());
  rng_delay_.reseed(sm.next());
  rng_jitter_.reseed(sm.next());
  rng_preempt_.reseed(sm.next());

  preempt_until_.assign(ncores, 0);
  if (plan_.preempt_cores.empty()) {
    for (Tid c = 0; c < ncores; ++c) plan_.preempt_cores.push_back(c);
  }

  if (plan_.credit_period > 0 && plan_.credit_duration > 0 &&
      plan_.credit_pct < 100) {
    sched_.at(sched_.now() + next_gap(rng_credit_, plan_.credit_period),
              [this] { schedule_credit_window(); });
  }
  if (plan_.preempt_period > 0 && plan_.preempt_duration > 0) {
    sched_.at(sched_.now() + next_gap(rng_preempt_, plan_.preempt_period),
              [this] { schedule_preemption(); });
  }
}

void FaultInjector::schedule_credit_window() {
  // Window opens now; close it after the configured duration, then arrange
  // the next one. Senders already blocked keep waiting (they re-check the
  // shrunk limit); the close callback releases them.
  credit_shrunk_ = true;
  ++counters_.credit_windows;
  if (credit_changed_) credit_changed_();
  sched_.at(sched_.now() + plan_.credit_duration, [this] {
    credit_shrunk_ = false;
    if (credit_changed_) credit_changed_();
    sched_.at(sched_.now() + next_gap(rng_credit_, plan_.credit_period),
              [this] { schedule_credit_window(); });
  });
}

void FaultInjector::schedule_preemption() {
  const Tid core = plan_.preempt_cores[static_cast<std::size_t>(
      rng_preempt_.below(plan_.preempt_cores.size()))];
  const Cycle until = sched_.now() + plan_.preempt_duration;
  // Overlapping windows on the same core extend, never shorten.
  if (until > preempt_until_[core]) preempt_until_[core] = until;
  ++counters_.preemptions;
  sched_.at(sched_.now() + next_gap(rng_preempt_, plan_.preempt_period),
            [this] { schedule_preemption(); });
}

}  // namespace hmps::sim

// Sharded delegation (docs/SHARDING.md): rendezvous-hash distribution
// bounds, per-object linearizability of concurrent multi-shard clients,
// queue_transfer conservation (no lost or duplicated elements) under fault
// injection, per-shard credit/stats scoping at the client-count ceiling,
// and serial-vs-pooled artifact byte identity for the sharded service
// sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "check/explore.hpp"
#include "check/repro.hpp"
#include "check/gen.hpp"
#include "ds/counter.hpp"
#include "ds/queue.hpp"
#include "harness/artifact.hpp"
#include "harness/record.hpp"
#include "harness/run_pool.hpp"
#include "harness/service.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/sharded.hpp"

namespace hmps {
namespace {

using harness::Construction;
using harness::Object;
using harness::OpKind;
using harness::OpRecord;
using harness::RecordCfg;
using rt::SimCtx;
using rt::SimExecutor;
using Sharded = sync::ShardedServer<SimCtx>;

// ---- rendezvous hashing -----------------------------------------------

TEST(ShardHash, RouteTableMatchesShardOfAndIsStable) {
  const auto table = sync::shard_route_table(512, 8);
  ASSERT_EQ(table.size(), 512u);
  for (std::uint64_t o = 0; o < 512; ++o) {
    EXPECT_LT(table[o], 8u);
    EXPECT_EQ(table[o], sync::shard_of(o, 8));
    EXPECT_EQ(sync::shard_of(o, 8), sync::shard_of(o, 8));
  }
}

TEST(ShardHash, RendezvousMinimalDisruption) {
  // Growing the fleet by one shard must only move objects *to* the new
  // shard — every object whose home changes lands on the added shard
  // (the defining property of rendezvous hashing).
  for (std::uint32_t shards = 2; shards < 8; ++shards) {
    for (std::uint64_t o = 0; o < 256; ++o) {
      const std::uint32_t before = sync::shard_of(o, shards);
      const std::uint32_t after = sync::shard_of(o, shards + 1);
      if (after != before) {
        EXPECT_EQ(after, shards);
      }
    }
  }
}

TEST(ShardHash, LoadBalanceWithinBound) {
  // ISSUE 9 acceptance: max/mean shard load <= 1.25 at 1k objects.
  for (std::uint32_t shards = 2; shards <= 8; ++shards) {
    const double ratio = sync::shard_load_max_over_mean(1000, shards);
    EXPECT_LE(ratio, 1.25) << "shards=" << shards;
    EXPECT_GE(ratio, 1.0) << "shards=" << shards;
  }
  // No shard may be starved either.
  const auto loads = sync::shard_load_counts(1000, 8);
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_GT(loads[s], 0u) << "shard " << s << " owns no objects";
  }
}

// ---- per-object linearizability of multi-shard clients ----------------

check::Scenario sharded_scenario(std::uint64_t seed, Object obj,
                                 std::uint32_t shards,
                                 std::uint32_t async_depth) {
  check::Scenario s;
  s.cfg.seed = seed;
  s.cfg.construction = Construction::kSharded;
  s.cfg.object = obj;
  s.cfg.shards = shards;
  s.cfg.threads = 6;
  s.cfg.ops_each = 10;
  s.cfg.async_depth = async_depth;
  check::clamp_cfg(s.cfg);
  s.perturb.nthreads =
      s.cfg.threads + harness::server_threads(s.cfg.construction, s.cfg.shards);
  return s;
}

TEST(ShardedLinearizability, CounterQueueStackAcrossSeeds) {
  for (const Object obj : {Object::kCounter, Object::kQueue, Object::kStack}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      for (const std::uint32_t depth : {0u, 3u}) {
        const check::Scenario s =
            sharded_scenario(seed * 7919, obj, 2 + seed % 7, depth);
        const check::Violation v = check::run_scenario(s);
        EXPECT_FALSE(v.found)
            << harness::to_string(obj) << " seed " << seed << " depth "
            << depth << ": [" << v.kind << "] " << v.detail;
      }
    }
  }
}

// ---- queue_transfer conservation under fault injection ----------------

// Replays the recorded history as per-object multiset accounting: every
// dequeued value must have been enqueued on that same object beforehand
// (transfers contribute the delegated enqueue on the destination), no
// value is dequeued more often than enqueued, and nothing is both.
void check_conservation(const std::vector<OpRecord>& hist,
                        std::uint64_t seed) {
  std::map<std::uint32_t, std::multiset<std::uint64_t>> enq, deq;
  for (const OpRecord& r : hist) {
    if (r.kind == OpKind::kEnq) {
      enq[r.obj].insert(r.arg);
    } else if (r.kind == OpKind::kDeq && r.ret != harness::kNothing) {
      deq[r.obj].insert(r.ret);
    }
  }
  for (const auto& [obj, values] : deq) {
    for (const std::uint64_t v : values) {
      EXPECT_LE(values.count(v), enq[obj].count(v))
          << "seed " << seed << " obj " << obj << ": value " << v
          << " dequeued more often than enqueued (duplicated element)";
    }
  }
  // Loss detection: total elements may legitimately remain in the queues
  // at the end of the run, but a value can never vanish from one object
  // and also fail to appear at its transfer destination — the transfer's
  // enqueue record is written iff the dequeue returned an element, so
  // every deq is covered above and every enq is either consumed or
  // residual. Residuals must not exceed what was enqueued.
  for (const auto& [obj, values] : enq) {
    EXPECT_GE(values.size(), deq[obj].size()) << "seed " << seed;
  }
}

TEST(ShardedTransfer, ConservationUnderFaultInjection) {
  // Many seeds, every fault family (delay, jitter, preemption), transfers
  // active (queue object). The exploration harness runs thousands more
  // schedules in CI; this is the directed conservation check.
  std::uint64_t transfers_seen = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    RecordCfg cfg;
    cfg.seed = seed * 104729;
    cfg.construction = Construction::kSharded;
    cfg.object = Object::kQueue;
    cfg.shards = 2 + static_cast<std::uint32_t>(seed % 7);
    cfg.threads = 5;
    cfg.ops_each = 12;
    cfg.async_depth = seed % 3 == 0 ? 3 : 0;
    cfg.faults.seed = cfg.seed ^ 0xFA0175;
    switch (seed % 3) {
      case 0:
        cfg.faults.delay_permille = 150;
        cfg.faults.delay_min = 10;
        cfg.faults.delay_max = 2000;
        break;
      case 1:
        cfg.faults.jitter_permille = 200;
        cfg.faults.jitter_max = 100;
        break;
      case 2:
        cfg.faults.preempt_period = 50'000;
        cfg.faults.preempt_duration = 5'000;
        break;
    }
    check::clamp_cfg(cfg);
    const auto res = harness::record_history(cfg);
    ASSERT_TRUE(res.completed) << "seed " << seed << " hung";
    check_conservation(res.history, seed);
    for (const OpRecord& r : res.history) {
      // A transfer's delegated enqueue shares its bracket with the
      // source dequeue; count enqueues recorded by consumer mix draws.
      if (r.kind == OpKind::kEnq) ++transfers_seen;
    }
  }
  EXPECT_GT(transfers_seen, 0u);
}

// ---- satellite 4: per-shard credits and stats at the client ceiling ---

TEST(ShardedCapacity, TwoShardsTimes64ClientsNoCapacityAbort) {
  // Regression: check_tid/stats arrays and max_inflight credits are scoped
  // per shard and indexed by client *slot* (tid - shards), so a 2-shard
  // fleet serves the full kMaxClients complement without tripping the
  // capacity guards that a global tid-indexed layout would hit.
  arch::MachineParams p = arch::MachineParams::tilegx36();
  p.mesh_w = 16;
  p.mesh_h = 16;
  p.udn_buf_words = 1024;  // 64 clients x 3-word frames on shared demux
  SimExecutor ex(p, 42);

  // 8 objects: under 2-shard rendezvous hashing ids {4, 6, 7} home on
  // shard 1, so both shards see traffic (4 objects would all land on 0).
  ds::SeqCounter counters[8];
  struct Farm {
    ds::SeqCounter* c;
  } farm{counters};
  struct Body {
    static std::uint64_t inc(SimCtx& ctx, void* o, std::uint64_t a) {
      auto* f = static_cast<Farm*>(o);
      return ds::counter_inc(ctx, &f->c[(a >> 32) % 8], 0);
    }
  };

  constexpr std::uint32_t kShards = 2;
  constexpr std::uint32_t kClients = Sharded::kMaxClients;  // 64
  // max_inflight 2: per-shard credits; a global pool would throttle to
  // starvation (or abort) with 64 clients x trains over 2 shards.
  Sharded sh(kShards, &farm, 8, /*max_inflight=*/2);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    ex.add_thread([&sh, s](SimCtx& ctx) { sh.serve(ctx, s); });
  }
  std::uint32_t done = 0;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    ex.add_thread([&, c](SimCtx& ctx) {
      sync::Ticket t[8];
      for (std::uint32_t j = 0; j < 8; ++j) {
        t[j] = sh.apply_async(ctx, &Body::inc, j, 0);
      }
      for (std::uint32_t j = 8; j-- > 0;) sh.wait(ctx, t[j]);
      sh.apply(ctx, &Body::inc, c % 8, 0);
      ++done;
      if (done == kClients) sh.request_stop(ctx);
    });
  }
  ex.run_until(100'000'000);
  EXPECT_EQ(done, kClients);
  std::uint64_t total = 0;
  for (std::uint32_t j = 0; j < 8; ++j) {
    total += counters[j].value.load(std::memory_order_relaxed);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kClients) * 9);
  // Per-shard serve accounting: both shards actually served requests.
  EXPECT_GT(sh.stats(0).served, 0u);
  EXPECT_GT(sh.stats(1).served, 0u);
  EXPECT_EQ(sh.inflight_total(), 0u);
}

// ---- tag-field hard bounds --------------------------------------------

struct OneCounterFarm {
  ds::SeqCounter* c;
  static std::uint64_t inc(SimCtx& ctx, void* o, std::uint64_t) {
    return ds::counter_inc(ctx, static_cast<OneCounterFarm*>(o)->c, 0);
  }
};

TEST(ShardedTagBounds, SeqWrapsCleanlyWithNothingOutstanding) {
  // Drive one client's per-shard sequence to the last representable value:
  // the next issue uses seq == kSeqMask, the one after wraps back to 1 —
  // legal because no ticket from the previous epoch is outstanding.
  arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
  SimExecutor ex(p, 5);
  ds::SeqCounter counter;
  OneCounterFarm farm{&counter};
  Sharded sh(2, &farm, 8);
  for (std::uint32_t s = 0; s < 2; ++s) {
    ex.add_thread([&sh, s](SimCtx& ctx) { sh.serve(ctx, s); });
  }
  std::vector<std::uint64_t> seqs;
  ex.add_thread([&](SimCtx& ctx) {
    const std::uint32_t shard = sh.shard_home(0);
    sh.debug_set_seq(0, shard, Sharded::kSeqMask);
    for (int i = 0; i < 3; ++i) {
      sync::Ticket t = sh.apply_async(ctx, &OneCounterFarm::inc, 0, 0);
      seqs.push_back(t.tag & Sharded::kSeqMask);
      sh.wait(ctx, t);  // reap before the next issue: the epoch is clean
    }
    sh.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], Sharded::kSeqMask) << "boundary value must be usable";
  EXPECT_EQ(seqs[1], 1u) << "wrap restarts at 1 (tags stay nonzero)";
  EXPECT_EQ(seqs[2], 2u);
  EXPECT_EQ(counter.value.load(), 3u);
}

using ShardedDeathTest = ::testing::Test;

TEST(ShardedDeathTest, MoreThanMaxShardsAborts) {
  // A 33rd shard would spill out of tag bits [30:26]; the constructor must
  // die instead of silently colliding credits in release builds.
  ds::SeqCounter c;
  OneCounterFarm farm{&c};
  EXPECT_DEATH(Sharded sh(Sharded::kMaxShards + 1, &farm, 8),
               "exceed the 32-shard tag field");
}

TEST(ShardedDeathTest, SeqWraparoundWithOutstandingTicketAborts) {
  // Wrapping the 26-bit sequence while a previous-epoch ticket is still
  // outstanding on the same shard would recycle a live tag.
  EXPECT_DEATH(
      {
        arch::MachineParams p = arch::MachineParams::tilegx_small(4, 2);
        SimExecutor ex(p, 5);
        ds::SeqCounter counter;
        OneCounterFarm farm{&counter};
        Sharded sh(2, &farm, 8);
        for (std::uint32_t s = 0; s < 2; ++s) {
          ex.add_thread([&sh, s](SimCtx& ctx) { sh.serve(ctx, s); });
        }
        ex.add_thread([&](SimCtx& ctx) {
          const std::uint32_t shard = sh.shard_home(0);
          (void)sh.apply_async(ctx, &OneCounterFarm::inc, 0, 0);
          sh.debug_set_seq(0, shard, Sharded::kSeqMask + 1);
          sh.apply_async(ctx, &OneCounterFarm::inc, 0, 0);  // must abort
          sh.wait_all(ctx);
          sh.request_stop(ctx);
        });
        ex.run_until(sim::kCycleMax);
      },
      "recycled tags would collide");
}

// ---- serial vs pooled artifact identity -------------------------------

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void run_sharded_sweep(const std::string& json, std::uint32_t jobs) {
  const char* argv[] = {const_cast<char*>("sharded_sweep")};
  harness::BenchArgs args;
  args.json = json;
  harness::RunArtifacts art(args, "sharded_sweep", 1,
                            const_cast<char**>(argv));
  harness::RunPool pool(art, jobs);
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    for (double load : {8.0, 64.0}) {
      harness::ServiceCfg cfg;
      cfg.base.seed = 7;
      cfg.base.warmup = 5'000;
      cfg.base.window = 20'000;
      cfg.base.machine.mesh_w = 8;
      cfg.base.machine.mesh_h = 8;
      cfg.sessions = 8;
      cfg.objects = 32;
      cfg.zipf_s = 0.0;
      cfg.shards = shards;
      cfg.offered_mops = load;
      pool.submit("s" + std::to_string(shards) + "/o" +
                      std::to_string(static_cast<int>(load)),
                  [cfg](const harness::RunObs& obs) {
                    harness::ServiceCfg c = cfg;
                    c.base.obs = obs;
                    return harness::run_service_sharded(c);
                  });
    }
  }
  pool.drain();
  art.finalize();
}

TEST(ShardedService, PooledArtifactByteIdenticalToSerial) {
  const std::string sj = ::testing::TempDir() + "hmps_sharded_serial.json";
  const std::string pj = ::testing::TempDir() + "hmps_sharded_pool.json";
  run_sharded_sweep(sj, 1);
  run_sharded_sweep(pj, 4);
  const std::string serial = slurp(sj);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, slurp(pj));
  // The service block carries the shard count (schema consumers key on it).
  EXPECT_NE(serial.find("\"shards\""), std::string::npos);
}

// ---- repro schema round-trip with shards ------------------------------

TEST(ShardedRepro, SchemaRoundTripsShardCount) {
  check::Scenario s = sharded_scenario(99, Object::kQueue, 5, 2);
  check::Violation v;
  v.found = true;
  v.kind = "queue";
  v.detail = "obj 3: synthetic";
  const std::string json = check::repro_to_json(s, v);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  check::Scenario back;
  check::Violation vback;
  std::string err;
  ASSERT_TRUE(check::repro_from_json(json, &back, &vback, &err)) << err;
  EXPECT_EQ(back.cfg.shards, s.cfg.shards);
  EXPECT_EQ(back.cfg.construction, Construction::kSharded);
  EXPECT_EQ(vback.detail, v.detail);
}

}  // namespace
}  // namespace hmps

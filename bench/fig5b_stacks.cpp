// Reproduces Fig. 5b: throughput of concurrent stacks under balanced load.
//
//   X        coarse-lock sequential stack made concurrent with approach X
//   Treiber  the classic nonblocking stack (CAS on top)
//
// Expected shape: mp-server and HybComb stacks lead, nearly matching the
// one-lock queue numbers of Fig. 5a (both are coarse-locked linked lists);
// Treiber trails every blocking implementation, as contended CAS retries on
// the top pointer dominate.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::StackImpl;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig5b_stacks", argc, argv);

  std::vector<std::uint32_t> threads =
      args.full ? std::vector<std::uint32_t>{1, 2, 4, 6, 8, 10, 12, 14, 16,
                                             18, 20, 22, 24, 26, 28, 30, 32,
                                             34}
                : std::vector<std::uint32_t>{1, 5, 10, 15, 20, 25, 30, 34};
  if (args.threads) threads = {args.threads};

  const StackImpl order[] = {StackImpl::kMp, StackImpl::kHyb, StackImpl::kShm,
                             StackImpl::kCc, StackImpl::kTreiber,
                             StackImpl::kVl};

  harness::RunPool pool(art, args.jobs);
  for (std::uint32_t t : threads) {
    harness::RunCfg cfg;
    cfg.app_threads = t;
    cfg.seed = args.seed;
    cfg.machine.noc_combining = args.noc_combining;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    for (StackImpl s : order) {
      pool.submit(std::string(harness::stack_name(s)) + "/t" +
                      std::to_string(t),
                  [cfg, s](const harness::RunObs& obs) {
                    harness::RunCfg c = cfg;
                    c.obs = obs;
                    const auto r = harness::run_stack(c, s);
                    std::fprintf(stderr, "[fig5b] %s done\n", obs.label);
                    return r;
                  });
    }
  }
  const auto& results = pool.drain();

  harness::Table table({"clients", "mp-server", "HybComb", "shm-server",
                        "CC-Synch", "Treiber", "vlink"});
  std::size_t idx = 0;
  for (std::uint32_t t : threads) {
    std::vector<std::string> row{std::to_string(t)};
    for (std::size_t s = 0; s < 6; ++s)
      row.push_back(harness::fmt(results[idx++].mops));
    table.add_row(row);
  }
  std::string title =
      "Fig. 5b: stack throughput (Mops/s) under balanced load";
  if (args.noc_combining) title += " [noc-combining on]";
  table.print(title);
  if (!args.csv.empty()) table.write_csv(args.csv);
  art.finalize();
  return 0;
}

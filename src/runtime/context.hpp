// The ExecutionContext concept: the single surface through which every
// synchronization algorithm and data structure in this library touches the
// machine. Algorithms are written once as templates over a Ctx and run
// unmodified on:
//
//   * SimCtx    — the deterministic TILE-Gx-like machine simulator, which
//                 charges modeled latencies (coherence RMRs, controller
//                 atomics, UDN messaging) and drives Fig. 3-5 reproduction;
//   * NativeCtx — real std::atomic operations plus a software MPSC channel
//                 ("message passing emulated over shared memory"), used for
//                 correctness testing under genuine hardware concurrency and
//                 for the Section 5.5 native x86 comparison.
//
// System-model mapping (paper Section 2):
//   load/store               read(a) / write(a,v) on 64-bit locations
//   faa/exchange/cas         FAA / SWAP / CAS
//   send/receive/queue_empty message-passing operations, FIFO per-thread
//                            queues of 64-bit values; send is asynchronous,
//                            receive(k) blocks for k words
//   fence                    full memory fence (TILE-Gx relaxed model)
//   compute(c)               c cycles of local work (the empty-loop think
//                            time of Section 5.2, CS bodies, etc.)
//   prefetch(p)              non-binding prefetch of the line holding p
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "sim/types.hpp"

namespace hmps::rt {

using sim::Cycle;
using sim::Tid;

template <class C>
concept ExecutionContext = requires(C c, std::atomic<std::uint64_t>* a,
                                    const std::atomic<std::uint64_t>* ca,
                                    std::uint64_t v, Tid t,
                                    const std::uint64_t* words,
                                    std::uint64_t* out, std::size_t n) {
  { c.tid() } -> std::convertible_to<Tid>;
  { c.nthreads() } -> std::convertible_to<std::uint32_t>;
  { c.load(ca) } -> std::convertible_to<std::uint64_t>;
  { c.store(a, v) };
  { c.faa(a, v) } -> std::convertible_to<std::uint64_t>;
  { c.exchange(a, v) } -> std::convertible_to<std::uint64_t>;
  { c.cas(a, v, v) } -> std::convertible_to<bool>;
  { c.fence() };
  { c.send(t, words, n) };
  { c.receive(out, n) };
  { c.queue_empty() } -> std::convertible_to<bool>;
  { c.compute(Cycle{1}) };
  { c.cpu_relax() };
  { c.prefetch(static_cast<const void*>(a)) };
  { c.now() } -> std::convertible_to<Cycle>;
  { c.rand_below(v) } -> std::convertible_to<std::uint64_t>;
};

/// Atomic word type used for all shared variables in the algorithms. Plain
/// 64-bit everywhere, per the paper's system model.
using Word = std::atomic<std::uint64_t>;

/// Helpers to round-trip pointers through 64-bit message/atomic words.
template <class T>
inline std::uint64_t to_word(T* p) {
  return reinterpret_cast<std::uint64_t>(p);
}
template <class T>
inline T* from_word(std::uint64_t w) {
  return reinterpret_cast<T*>(w);
}

inline constexpr std::size_t kCacheLine = 64;

}  // namespace hmps::rt

// Macro-benchmark: a fork/join task pool over a central queue — the
// workload class the paper's introduction motivates via OpenMP tasking
// (reference [4]: "fast synchronization on simple concurrent objects, such
// as queues, is key to the performance of parallelization frameworks").
//
// A binary task tree is executed by a fixed worker set pulling from one
// shared FIFO queue; the queue implementation varies. Reported: makespan
// (lower is better) and task throughput. Expected: the ranking of Fig. 5a
// carries over to end-to-end completion time, shrinking as per-task work
// grows (Amdahl).
#include <cstdio>
#include <vector>

#include "arch/params.hpp"
#include "ds/lcrq.hpp"
#include "ds/queue.hpp"
#include "harness/report.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"

using namespace hmps;
using rt::SimCtx;

namespace {

enum class Pool { kMp1, kHyb1, kCc1, kLcrq };

constexpr std::uint64_t make_task(std::uint32_t depth, std::uint32_t work) {
  return (static_cast<std::uint64_t>(depth) << 24) | work;
}
constexpr std::uint32_t task_depth(std::uint64_t t) {
  return static_cast<std::uint32_t>(t >> 24);
}
constexpr std::uint32_t task_work(std::uint64_t t) {
  return static_cast<std::uint32_t>(t & 0xFFFFFF);
}

sim::Cycle run(Pool pool, std::uint32_t workers, std::uint32_t roots,
               std::uint32_t depth, std::uint32_t work,
               std::uint64_t seed) {
  rt::SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  ds::SeqQueue q(1 << 16);
  ds::Lcrq<SimCtx> lcrq(8, 4096);
  sync::MpServer<SimCtx> mp(0, &q);
  sync::HybComb<SimCtx> hyb(&q, 200);
  sync::CcSynch<SimCtx> cc(&q, 200);

  const std::uint64_t expected =
      static_cast<std::uint64_t>(roots) * ((1u << (depth + 1)) - 1);
  std::uint64_t executed = 0;
  sim::Cycle finished_at = 0;
  std::uint32_t idle = 0;
  const bool dedicated = pool == Pool::kMp1;

  auto enq = [&](SimCtx& ctx, std::uint64_t t) {
    switch (pool) {
      case Pool::kMp1: mp.apply(ctx, ds::q_enqueue<SimCtx>, t); break;
      case Pool::kHyb1: hyb.apply(ctx, ds::q_enqueue<SimCtx>, t); break;
      case Pool::kCc1: cc.apply(ctx, ds::q_enqueue<SimCtx>, t); break;
      case Pool::kLcrq:
        lcrq.enqueue(ctx, static_cast<std::uint32_t>(t));
        break;
    }
  };
  auto deq = [&](SimCtx& ctx) -> std::uint64_t {
    switch (pool) {
      case Pool::kMp1: return mp.apply(ctx, ds::q_dequeue<SimCtx>, 0);
      case Pool::kHyb1: return hyb.apply(ctx, ds::q_dequeue<SimCtx>, 0);
      case Pool::kCc1: return cc.apply(ctx, ds::q_dequeue<SimCtx>, 0);
      case Pool::kLcrq: {
        const std::uint32_t v = lcrq.dequeue(ctx);
        return v == ds::kLcrqEmpty ? ds::kQEmpty : v;
      }
    }
    return ds::kQEmpty;
  };

  if (dedicated) {
    ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  }
  for (std::uint32_t w = 0; w < workers; ++w) {
    ex.add_thread([&, w](SimCtx& ctx) {
      if (w == 0) {
        for (std::uint32_t r = 0; r < roots; ++r) {
          enq(ctx, make_task(depth, work));
        }
      }
      for (;;) {
        const std::uint64_t t = deq(ctx);
        if (t == ds::kQEmpty) {
          if (executed >= expected) break;
          ctx.compute(40);
          continue;
        }
        ctx.compute(task_work(t));
        ++executed;
        if (task_depth(t) > 0) {
          const std::uint64_t child =
              make_task(task_depth(t) - 1, task_work(t));
          enq(ctx, child);
          enq(ctx, child);
        }
        if (executed >= expected && finished_at == 0) {
          finished_at = ctx.now();
        }
      }
      if (++idle == workers && dedicated) mp.request_stop(ctx);
    });
  }
  ex.run_until(sim::kCycleMax);
  return finished_at;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  const std::uint32_t workers = args.threads ? args.threads : 16;
  const std::uint32_t roots = 64, depth = 4;

  std::vector<std::uint32_t> work_sizes =
      args.full ? std::vector<std::uint32_t>{0, 25, 50, 100, 200, 400, 800}
                : std::vector<std::uint32_t>{0, 50, 200, 800};

  harness::Table table({"task work (cyc)", "mp-server-1", "HybComb-1",
                        "CC-Synch-1", "LCRQ"});
  for (std::uint32_t w : work_sizes) {
    std::vector<std::string> row{std::to_string(w)};
    for (Pool p : {Pool::kMp1, Pool::kHyb1, Pool::kCc1, Pool::kLcrq}) {
      const sim::Cycle m = run(p, workers, roots, depth, w, args.seed);
      row.push_back(std::to_string(m));
    }
    table.add_row(row);
    std::fprintf(stderr, "[taskpool] work=%u done\n", w);
  }
  table.print("Macro: task-pool makespan in cycles (" +
              std::to_string(roots * ((1u << (depth + 1)) - 1)) +
              " tasks, " + std::to_string(workers) + " workers; lower is "
              "better)");
  if (!args.csv.empty()) table.write_csv(args.csv);
  return 0;
}

#include "arch/udn.hpp"

#include <bit>
#include <cassert>

namespace hmps::arch {

UdnModel::UdnModel(const MachineParams& p, const MeshTopology& topo,
                   sim::Scheduler& sched)
    : p_(p), topo_(topo), noc_(p, topo), sched_(sched), nq_(p.udn_queues),
      bufs_(topo.cores()) {
  // Each ring holds a whole buffer's worth of words: credits cap resident +
  // in-flight words per buffer at udn_buf_words, so any single queue can see
  // at most that many staged words.
  const std::size_t cap = std::bit_ceil(
      static_cast<std::size_t>(p.udn_buf_words ? p.udn_buf_words : 1));
  for (auto& b : bufs_) {
    b.queues.resize(nq_);
    for (auto& q : b.queues) q.init(cap);
    b.q_recv_waiters.resize(nq_);
  }
}

void UdnModel::attach_faults(sim::FaultInjector* f) {
  faults_ = f;
  noc_.attach_faults(f);
  // A pressure-window transition changes the credit budget with no receive
  // involved; blocked senders must be re-checked or a window that outlives
  // all in-flight receives would strand them forever.
  f->set_credit_changed([this] { release_all_senders(); });
}

void UdnModel::send(Tid src, Tid dst, std::uint32_t queue,
                    const std::uint64_t* words, std::size_t n) {
  assert(dst < bufs_.size() && queue < nq_);
  assert(n <= p_.udn_buf_words && "message larger than a whole buffer");
  Buffer& b = bufs_[dst];

  // Credit check: messages are never dropped, so if the destination buffer
  // cannot accommodate the message the sender backs up (paper Section 5.1).
  // The window is re-read on every wakeup: fault injection can shrink it
  // mid-run (and restore it, which also wakes the waiters).
  while (b.reserved + n > effective_credits()) {
    ++counters_.sender_blocks;
    b.send_waiters.push_back(Waiter{sched_.current(), n});
    sched_.suspend();
  }
  b.reserved += n;
  if (b.reserved > counters_.peak_occupancy) {
    counters_.peak_occupancy = b.reserved;
  }
  ++counters_.messages;
  counters_.words += n;

  // Wire + ingress-port serialization determine the delivery time; the
  // sender itself only pays injection cost (asynchronous send).
  const Cycle now = sched_.now();
  const Cycle inject_done =
      now + p_.udn_inject + p_.udn_per_word_wire * static_cast<Cycle>(n);
  Cycle arrive_base =
      p_.model_link_contention
          ? noc_.route(src, dst, inject_done,
                       static_cast<std::uint32_t>(n))
          : inject_done + topo_.wire(src, dst);
  if (faults_ && faults_->active()) {
    // Injected latency lands BEFORE ingress-port serialization, so delivery
    // times per buffer stay non-decreasing in send order and the staging/
    // commit fast path keeps its ordering invariant. Per-hop jitter is the
    // NoC model's job when link contention is on.
    arrive_base += faults_->delivery_delay();
    if (!p_.model_link_contention) arrive_base += faults_->link_jitter();
  }
  const Cycle deliver =
      (b.port_busy > arrive_base ? b.port_busy : arrive_base) +
      p_.udn_per_word_wire * static_cast<Cycle>(n);
  b.port_busy = deliver;

  // Flow-event pair for the trace: the delivery time is already known, so
  // both halves are recorded here rather than growing the delivery event's
  // capture (which must stay within the queue's inline storage). Chrome
  // trace JSON does not require timestamp order; the viewer sorts.
  if (tracer_ && tracer_->enabled()) {
    const std::uint64_t fid = tracer_->next_flow_id();
    tracer_->flow_start(src, "udn-msg", now, fid);
    tracer_->flow_end(dst, "udn-msg", deliver, fid);
  }

  // Bulk-copy the payload into the destination ring now (the credit reserve
  // above guarantees space) and schedule a small delivery event that only
  // publishes the words. Staging order matches delivery order: deliver times
  // per buffer are non-decreasing in send order via port_busy, and the event
  // queue breaks ties in schedule order.
  b.queues[queue].stage(words, n);
  sched_.at(deliver, [this, dst, queue, n] {
    Buffer& buf = bufs_[dst];
    auto& q = buf.queues[queue];
    q.commit(n);
    // Wake the receiver if its demand is now satisfied.
    auto& waiters = buf.q_recv_waiters[queue];
    if (!waiters.empty() && q.size() >= waiters.front().need) {
      const auto fiber = waiters.front().fiber;
      waiters.pop_front();
      sched_.wake_now(fiber);
    }
  });

  // The sender's own cost: occupy the core while serializing into the NoC.
  sched_.wait_until(inject_done);
}

void UdnModel::receive(Tid dst, std::uint32_t queue, std::uint64_t* out,
                       std::size_t n) {
  assert(dst < bufs_.size() && queue < nq_);
  Buffer& b = bufs_[dst];
  auto& q = b.queues[queue];
  while (q.size() < n) {
    b.q_recv_waiters[queue].push_back(Waiter{sched_.current(), n});
    sched_.suspend();
  }
  q.pop(out, n);
  assert(b.reserved >= n);
  b.reserved -= n;
  try_release_senders(b);
  // Popping words from the local hardware buffer is a register read; the
  // per-word cost is charged here.
  sched_.wait_for(p_.udn_recv_word * static_cast<Cycle>(n));
}

void UdnModel::try_release_senders(Buffer& b) {
  // FIFO release: wake blocked senders while credits suffice. A woken
  // sender re-checks the credit condition itself (it may race with other
  // wakeups in the same cycle). During an injected pressure window the
  // buffer may hold more than the shrunk limit; the budget clamps at zero.
  const std::size_t limit = effective_credits();
  std::size_t budget = limit > b.reserved ? limit - b.reserved : 0;
  while (!b.send_waiters.empty() && b.send_waiters.front().need <= budget) {
    budget -= b.send_waiters.front().need;
    sched_.wake_now(b.send_waiters.front().fiber);
    b.send_waiters.pop_front();
  }
}

}  // namespace hmps::arch

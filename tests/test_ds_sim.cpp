// Data-structure correctness on the simulator: queues (one-lock, two-lock,
// LCRQ) and stacks (coarse-lock, Treiber). Checks completeness (no lost or
// duplicated elements), per-producer FIFO order for queues, and LIFO
// plausibility for stacks, across thread counts and seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "arch/params.hpp"
#include "ds/lcrq.hpp"
#include "ds/queue.hpp"
#include "ds/stack.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"
#include "sync/shm_server.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

// Tag scheme: value = producer << 20 | seq (fits LCRQ's 32-bit values too).
constexpr std::uint64_t tag(std::uint32_t who, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(who) << 20) | seq;
}
constexpr std::uint32_t tag_who(std::uint64_t v) {
  return static_cast<std::uint32_t>(v >> 20);
}
constexpr std::uint32_t tag_seq(std::uint64_t v) {
  return static_cast<std::uint32_t>(v & 0xFFFFF);
}

struct Drained {
  std::vector<std::uint64_t> popped;                 // union over consumers
  std::vector<std::vector<std::uint64_t>> by_consumer;  // per-consumer order
  std::uint64_t produced = 0;
};

void check_queue_invariants(const Drained& d, std::uint32_t nproducers,
                            bool fifo_per_producer) {
  // Completeness: nothing lost, nothing duplicated.
  std::vector<std::uint64_t> sorted = d.popped;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted.size(), d.produced);
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end())
      << "duplicate element";
  if (fifo_per_producer) {
    // A linearizable FIFO queue guarantees that any single consumer's
    // dequeue sequence preserves each producer's enqueue order. (The
    // interleaving *across* consumers is unordered by local observation.)
    for (const auto& seq : d.by_consumer) {
      std::vector<std::int64_t> last(nproducers, -1);
      for (std::uint64_t v : seq) {
        const auto who = tag_who(v);
        ASSERT_LT(who, nproducers);
        EXPECT_GT(static_cast<std::int64_t>(tag_seq(v)), last[who])
            << "per-producer FIFO order violated at one consumer";
        last[who] = tag_seq(v);
      }
    }
  }
}

// ---- one-lock queue under each UC ----

enum class QueueKind { kMp1, kHyb1, kShm1, kCc1, kMp2, kLcrq };

Drained run_queue(QueueKind kind, std::uint32_t nthreads,
                  std::uint32_t ops_each, std::uint64_t seed) {
  SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  ds::SeqQueue q(16384);
  ds::Lcrq<SimCtx> lcrq(6, 1024);

  sync::MpServer<SimCtx> mp1(0, &q);
  sync::HybComb<SimCtx> hyb(&q, 16);
  sync::ShmServer<SimCtx> shm(0, &q);
  sync::CcSynch<SimCtx> cc(&q, 16);
  sync::MpServer<SimCtx> mp2_enq(0, &q);
  sync::MpServer<SimCtx> mp2_deq(1, &q);

  Drained out;
  std::vector<std::vector<std::uint64_t>> popped(nthreads);
  std::uint32_t done = 0;

  const std::uint32_t nservers =
      (kind == QueueKind::kMp1 || kind == QueueKind::kShm1) ? 1
      : kind == QueueKind::kMp2                             ? 2
                                                            : 0;

  auto enq = [&](SimCtx& ctx, std::uint64_t v) {
    switch (kind) {
      case QueueKind::kMp1: mp1.apply(ctx, ds::q_enqueue<SimCtx>, v); break;
      case QueueKind::kHyb1: hyb.apply(ctx, ds::q_enqueue<SimCtx>, v); break;
      case QueueKind::kShm1: shm.apply(ctx, ds::q_enqueue<SimCtx>, v); break;
      case QueueKind::kCc1: cc.apply(ctx, ds::q_enqueue<SimCtx>, v); break;
      case QueueKind::kMp2:
        mp2_enq.apply(ctx, ds::q_enqueue_fenced<SimCtx>, v);
        break;
      case QueueKind::kLcrq:
        lcrq.enqueue(ctx, static_cast<std::uint32_t>(v));
        break;
    }
  };
  auto deq = [&](SimCtx& ctx) -> std::uint64_t {
    switch (kind) {
      case QueueKind::kMp1: return mp1.apply(ctx, ds::q_dequeue<SimCtx>, 0);
      case QueueKind::kHyb1: return hyb.apply(ctx, ds::q_dequeue<SimCtx>, 0);
      case QueueKind::kShm1: return shm.apply(ctx, ds::q_dequeue<SimCtx>, 0);
      case QueueKind::kCc1: return cc.apply(ctx, ds::q_dequeue<SimCtx>, 0);
      case QueueKind::kMp2:
        return mp2_deq.apply(ctx, ds::q_dequeue_fenced<SimCtx>, 0);
      case QueueKind::kLcrq: {
        const std::uint32_t v = lcrq.dequeue(ctx);
        return v == ds::kLcrqEmpty ? ds::kQEmpty : v;
      }
    }
    return ds::kQEmpty;
  };

  for (std::uint32_t s = 0; s < nservers; ++s) {
    ex.add_thread([&, s](SimCtx& ctx) {
      if (kind == QueueKind::kShm1) {
        shm.serve(ctx);
      } else if (kind == QueueKind::kMp2) {
        (s == 0 ? mp2_enq : mp2_deq).serve(ctx);
      } else {
        mp1.serve(ctx);
      }
    });
  }
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      // Balanced load: alternate enqueue/dequeue, as in Section 5.4.
      for (std::uint32_t k = 0; k < ops_each; ++k) {
        enq(ctx, tag(i, k));
        ctx.compute(ctx.rand_below(30));
        const std::uint64_t v = deq(ctx);
        if (v != ds::kQEmpty) popped[i].push_back(v);
        ctx.compute(ctx.rand_below(30));
      }
      // Drain phase: one thread empties the leftovers at the end.
      ++done;
      if (done == nthreads) {
        for (;;) {
          const std::uint64_t v = deq(ctx);
          if (v == ds::kQEmpty) break;
          popped[i].push_back(v);
        }
        if (kind == QueueKind::kMp1) mp1.request_stop(ctx);
        if (kind == QueueKind::kShm1) shm.request_stop(ctx);
        if (kind == QueueKind::kMp2) {
          mp2_enq.request_stop(ctx);
          mp2_deq.request_stop(ctx);
        }
      }
    });
  }
  ex.run_until(sim::kCycleMax);

  out.produced = static_cast<std::uint64_t>(nthreads) * ops_each;
  for (auto& v : popped) {
    out.popped.insert(out.popped.end(), v.begin(), v.end());
  }
  out.by_consumer = popped;
  return out;
}

class QueueCorrectness
    : public ::testing::TestWithParam<std::tuple<QueueKind, std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(QueueCorrectness, NoLossNoDup) {
  const auto [kind, nthreads, seed] = GetParam();
  const Drained d = run_queue(kind, nthreads, 50, seed);
  check_queue_invariants(d, nthreads, /*fifo_per_producer=*/false);
}

std::string QueueCaseName(
    const ::testing::TestParamInfo<std::tuple<QueueKind, std::uint32_t,
                                              std::uint64_t>>& info) {
  static const char* names[] = {"Mp1", "Hyb1", "Shm1", "Cc1", "Mp2", "Lcrq"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
         "_t" + std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Queues, QueueCorrectness,
    ::testing::Combine(::testing::Values(QueueKind::kMp1, QueueKind::kHyb1,
                                         QueueKind::kShm1, QueueKind::kCc1,
                                         QueueKind::kMp2, QueueKind::kLcrq),
                       ::testing::Values(2u, 8u, 24u),
                       ::testing::Values(3u, 77u)),
    QueueCaseName);

TEST(QueueFifo, SingleProducerSingleConsumerOrder) {
  // With one producer and one consumer, total FIFO order must hold for
  // every queue kind, including LCRQ.
  for (QueueKind kind : {QueueKind::kMp1, QueueKind::kHyb1, QueueKind::kShm1,
                         QueueKind::kCc1, QueueKind::kMp2, QueueKind::kLcrq}) {
    const Drained d = run_queue(kind, 1, 200, 9);
    check_queue_invariants(d, 1, /*fifo_per_producer=*/true);
  }
}

TEST(QueueFifo, PerProducerOrderUnderConcurrency) {
  for (QueueKind kind : {QueueKind::kHyb1, QueueKind::kLcrq}) {
    const Drained d = run_queue(kind, 12, 60, 5);
    check_queue_invariants(d, 12, /*fifo_per_producer=*/true);
  }
}

// ---- stacks ----

enum class StackKind { kMp, kHyb, kShm, kCc, kTreiber };

Drained run_stack(StackKind kind, std::uint32_t nthreads,
                  std::uint32_t ops_each, std::uint64_t seed) {
  SimExecutor ex(arch::MachineParams::tilegx36(), seed);
  ds::SeqStack st(16384);
  ds::TreiberStack<SimCtx> tr(1024);

  sync::MpServer<SimCtx> mp(0, &st);
  sync::HybComb<SimCtx> hyb(&st, 16);
  sync::ShmServer<SimCtx> shm(0, &st);
  sync::CcSynch<SimCtx> cc(&st, 16);

  Drained out;
  std::vector<std::vector<std::uint64_t>> popped(nthreads);
  std::uint32_t done = 0;

  const bool has_server = (kind == StackKind::kMp || kind == StackKind::kShm);

  auto push = [&](SimCtx& ctx, std::uint64_t v) {
    switch (kind) {
      case StackKind::kMp: mp.apply(ctx, ds::s_push<SimCtx>, v); break;
      case StackKind::kHyb: hyb.apply(ctx, ds::s_push<SimCtx>, v); break;
      case StackKind::kShm: shm.apply(ctx, ds::s_push<SimCtx>, v); break;
      case StackKind::kCc: cc.apply(ctx, ds::s_push<SimCtx>, v); break;
      case StackKind::kTreiber: tr.push(ctx, v); break;
    }
  };
  auto pop = [&](SimCtx& ctx) -> std::uint64_t {
    switch (kind) {
      case StackKind::kMp: return mp.apply(ctx, ds::s_pop<SimCtx>, 0);
      case StackKind::kHyb: return hyb.apply(ctx, ds::s_pop<SimCtx>, 0);
      case StackKind::kShm: return shm.apply(ctx, ds::s_pop<SimCtx>, 0);
      case StackKind::kCc: return cc.apply(ctx, ds::s_pop<SimCtx>, 0);
      case StackKind::kTreiber: {
        const std::uint64_t v = tr.pop(ctx);
        return v == ds::kStackEmpty ? ds::kQEmpty : v;
      }
    }
    return ds::kQEmpty;
  };

  if (has_server) {
    ex.add_thread([&](SimCtx& ctx) {
      if (kind == StackKind::kMp) {
        mp.serve(ctx);
      } else {
        shm.serve(ctx);
      }
    });
  }
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < ops_each; ++k) {
        push(ctx, tag(i, k));
        ctx.compute(ctx.rand_below(30));
        const std::uint64_t v = pop(ctx);
        if (v != ds::kQEmpty) popped[i].push_back(v);
        ctx.compute(ctx.rand_below(30));
      }
      ++done;
      if (done == nthreads) {
        for (;;) {
          const std::uint64_t v = pop(ctx);
          if (v == ds::kQEmpty) break;
          popped[i].push_back(v);
        }
        if (kind == StackKind::kMp) mp.request_stop(ctx);
        if (kind == StackKind::kShm) shm.request_stop(ctx);
      }
    });
  }
  ex.run_until(sim::kCycleMax);

  out.produced = static_cast<std::uint64_t>(nthreads) * ops_each;
  for (auto& v : popped) {
    out.popped.insert(out.popped.end(), v.begin(), v.end());
  }
  return out;
}

class StackCorrectness
    : public ::testing::TestWithParam<std::tuple<StackKind, std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(StackCorrectness, NoLossNoDup) {
  const auto [kind, nthreads, seed] = GetParam();
  const Drained d = run_stack(kind, nthreads, 50, seed);
  std::vector<std::uint64_t> sorted = d.popped;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted.size(), d.produced);
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

std::string StackCaseName(
    const ::testing::TestParamInfo<std::tuple<StackKind, std::uint32_t,
                                              std::uint64_t>>& info) {
  static const char* names[] = {"Mp", "Hyb", "Shm", "Cc", "Treiber"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
         "_t" + std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, StackCorrectness,
    ::testing::Combine(::testing::Values(StackKind::kMp, StackKind::kHyb,
                                         StackKind::kShm, StackKind::kCc,
                                         StackKind::kTreiber),
                       ::testing::Values(2u, 8u, 24u),
                       ::testing::Values(3u, 77u)),
    StackCaseName);

TEST(StackLifo, SequentialLifoOrder) {
  // Single thread: pop must return values in reverse push order.
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ds::SeqStack st;
  sync::CcSynch<SimCtx> cc(&st, 16);
  std::vector<std::uint64_t> got;
  ex.add_thread([&](SimCtx& ctx) {
    for (std::uint64_t v = 0; v < 20; ++v) cc.apply(ctx, ds::s_push<SimCtx>, v);
    for (int i = 0; i < 20; ++i) got.push_back(cc.apply(ctx, ds::s_pop<SimCtx>, 0));
  });
  ex.run_until(sim::kCycleMax);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[i], static_cast<std::uint64_t>(19 - i));
}

TEST(LcrqBasics, SequentialFifoAndEmpty) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ds::Lcrq<SimCtx> q(4, 64);  // tiny rings: exercise ring turnover
  std::vector<std::uint32_t> got;
  ex.add_thread([&](SimCtx& ctx) {
    EXPECT_EQ(q.dequeue(ctx), ds::kLcrqEmpty);
    for (std::uint32_t v = 0; v < 100; ++v) q.enqueue(ctx, v);
    for (int i = 0; i < 100; ++i) got.push_back(q.dequeue(ctx));
    EXPECT_EQ(q.dequeue(ctx), ds::kLcrqEmpty);
    // Interleaved use after drain.
    q.enqueue(ctx, 555);
    EXPECT_EQ(q.dequeue(ctx), 555u);
  });
  ex.run_until(sim::kCycleMax);
  ASSERT_EQ(got.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
}

TEST(LcrqStress, TinyRingsManyThreads) {
  // Ring size 8 with 16 threads forces constant ring closing/appending.
  SimExecutor ex(arch::MachineParams::tilegx36(), 11);
  ds::Lcrq<SimCtx> q(3, 4096);
  const std::uint32_t nthreads = 16, ops = 40;
  std::vector<std::vector<std::uint64_t>> popped(nthreads);
  std::uint32_t done = 0;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (std::uint32_t k = 0; k < ops; ++k) {
        q.enqueue(ctx, static_cast<std::uint32_t>(tag(i, k)));
        const std::uint32_t v = q.dequeue(ctx);
        if (v != ds::kLcrqEmpty) popped[i].push_back(v);
      }
      ++done;
      if (done == nthreads) {
        for (;;) {
          const std::uint32_t v = q.dequeue(ctx);
          if (v == ds::kLcrqEmpty) break;
          popped[i].push_back(v);
        }
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  std::vector<std::uint64_t> all;
  for (auto& v : popped) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(nthreads) * ops);
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

TEST(TwoLockQueue, EnqDeqRunOnDistinctServers) {
  // Sanity: with MP-SERVER-2, the enqueue server never executes dequeues
  // and vice versa (they are separate constructions).
  const Drained d = run_queue(QueueKind::kMp2, 6, 60, 21);
  check_queue_invariants(d, 6, /*fifo_per_producer=*/false);
}

}  // namespace
}  // namespace hmps

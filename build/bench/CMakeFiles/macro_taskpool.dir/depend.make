# Empty dependencies file for macro_taskpool.
# This may be replaced when dependencies are built.

// MP-SERVER-HUB: one dedicated server core serving MANY concurrent objects
// through the paper's Section 5.2 opcode interface.
//
// Instead of a function pointer, requests carry a small opcode indexing a
// registered (function, object) pair — the interface the paper used to let
// the compiler inline CS bodies at the servicing thread. The hub form also
// addresses the intro's observation that "dedicating cores is less
// feasible if an application includes a large number of potentially
// contended concurrent objects": k objects share one server core, trading
// per-object throughput for core economy (see the
// abl_server_consolidation bench).
//
// The client path carries the same Section 6 overflow guard, capacity
// checks and obs::Span / explore_point instrumentation as MpServer — a hub
// with many clients can wedge the UDN exactly as bench/sec6_overflow
// demonstrates for unguarded servers — plus the async ticket API of
// docs/MODEL.md §9.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class MpServerHub {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  /// `max_inflight` > 0 enables the Section 6 overflow guard: at most that
  /// many requests outstanding across all clients and all registered
  /// objects (one hardware buffer serves them all, so one credit pool
  /// bounds it). 0 leaves the fast path untouched.
  explicit MpServerHub(Tid server_tid, std::uint64_t max_inflight = 0)
      : server_(server_tid), max_inflight_(max_inflight) {}

  /// Registers a critical-section body bound to an object; returns its
  /// opcode. All registrations must happen before serve() starts.
  std::uint64_t add_op(Fn fn, void* obj) {
    ops_.push_back(Entry{fn, obj});
    return ops_.size();  // opcode 0 is the stop word
  }

  Tid server_tid() const { return server_; }
  std::size_t op_count() const { return ops_.size(); }

  /// Client side: executes the CS registered under `opcode`. With async
  /// tickets outstanding the call is routed through the async path to keep
  /// the reply stream framed (docs/MODEL.md §9).
  std::uint64_t apply(Ctx& ctx, std::uint64_t opcode, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "MpServerHub::apply");
    assert(opcode >= 1 && opcode <= ops_.size());
    if (async_[tid].outstanding > 0) {
      Ticket t = apply_async(ctx, opcode, arg);
      return wait(ctx, t);
    }
    obs::Span<Ctx> span(ctx, "hub.request");
    explore_point(ctx, "hub.pre_send");
    if (max_inflight_ == 0) {
      ctx.send(server_, {tid, opcode, arg});
      return ctx.receive1();
    }
    acquire_credit(ctx, stats_[tid].s);
    ctx.send(server_, {tid, opcode, arg});
    const std::uint64_t ret = ctx.receive1();
    ctx.faa(&inflight_, ~std::uint64_t{0});  // release (+(-1))
    return ret;
  }

  /// Issues the CS registered under `opcode` without blocking on the
  /// response; reap with wait() / wait_all() on the issuing thread.
  Ticket apply_async(Ctx& ctx, std::uint64_t opcode, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "MpServerHub::apply_async");
    assert(opcode >= 1 && opcode <= ops_.size());
    SyncStats& st = stats_[tid].s;
    AsyncSt& a = async_[tid];
    obs::Span<Ctx> span(ctx, "hub.request");
    explore_point(ctx, "hub.async_issue");
    if (max_inflight_ != 0) acquire_credit_draining(ctx, st, a);
    const std::uint64_t tag = a.next_tag;
    a.next_tag = a.next_tag == kAsyncTagMask ? 1 : a.next_tag + 1;
    ctx.send(server_, {pack_request_id(tid, tag), opcode, arg});
    ++st.async_issued;
    ++a.outstanding;
    Ticket t{tag, 0, 0};
    t.issued = ctx.now();
    return t;
  }

  /// Reaps one ticket, returning its CS result (issuing thread only).
  std::uint64_t wait(Ctx& ctx, Ticket& t) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "MpServerHub::wait");
    AsyncSt& a = async_[tid];
    if (t.tag == 0) return t.value;  // completed inline
    explore_point(ctx, "hub.reap");
    std::uint64_t val;
    if (ctx.take_staged_reply(t.tag, &val)) {
      --a.outstanding;
      t.completed = ctx.now();
      return val;
    }
    for (;;) {
      std::uint64_t m[2];
      ctx.receive_async(m, 2);
      if (max_inflight_ != 0) ctx.faa(&inflight_, ~std::uint64_t{0});
      const std::uint64_t got = reply_tag(m[0]);
      if (got == t.tag) {
        --a.outstanding;
        t.completed = ctx.now();
        return m[1];
      }
      ctx.stage_reply(got, m[1]);
    }
  }

  /// Reaps every outstanding ticket of the calling thread, discarding the
  /// results.
  void wait_all(Ctx& ctx) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "MpServerHub::wait_all");
    AsyncSt& a = async_[tid];
    explore_point(ctx, "hub.reap");
    std::uint64_t tag, val;
    while (a.outstanding > 0) {
      if (ctx.take_any_staged_reply(&tag, &val)) {
        --a.outstanding;
        continue;
      }
      std::uint64_t m[2];
      ctx.receive_async(m, 2);
      if (max_inflight_ != 0) ctx.faa(&inflight_, ~std::uint64_t{0});
      --a.outstanding;
    }
  }

  /// Server side: serves all registered objects until a stop request.
  void serve(Ctx& ctx) {
    check_tid(ctx.tid(), kMaxThreads, "MpServerHub::serve");
    SyncStats& st = stats_[ctx.tid()].s;
    for (;;) {
      explore_point(ctx, "hub.serve");
      std::uint64_t m[3];
      ctx.receive(m, 3);
      if (m[1] == kStopWord) return;
      obs::Span<Ctx> cs(ctx, "hub.cs");
      const Entry& e = ops_[m[1] - 1];
      const std::uint64_t ret = e.fn(ctx, e.obj, m[2]);
      const std::uint64_t tag = request_tag(m[0]);
      if (tag != 0) {
        ctx.send(request_tid(m[0]), {kAsyncReplyMark | tag, ret});
      } else {
        ctx.send(request_tid(m[0]), {ret});
      }
      ++st.served;
    }
  }

  void request_stop(Ctx& ctx) { ctx.send(server_, {0, kStopWord, 0}); }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "MpServerHub::stats");
    return stats_[t].s;
  }

 private:
  struct Entry {
    Fn fn;
    void* obj;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };
  struct alignas(rt::kCacheLine) AsyncSt {
    std::uint64_t next_tag = 1;
    std::uint32_t outstanding = 0;  ///< issued minus reaped
  };

  /// Spin (through shared memory, so no message-buffer pressure) until an
  /// in-flight credit is free, then claim it with CAS.
  void acquire_credit(Ctx& ctx, SyncStats& st) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&inflight_);
      if (cur < max_inflight_ && ctx.cas(&inflight_, cur, cur + 1)) return;
      ++st.throttle_waits;
      ctx.cpu_relax();
    }
  }

  /// Async-issue variant: drains this thread's already-arrived replies
  /// while spinning so unreaped tickets can never hold every credit against
  /// their own issuer (docs/MODEL.md §9).
  void acquire_credit_draining(Ctx& ctx, SyncStats& st, AsyncSt& a) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&inflight_);
      if (cur < max_inflight_ && ctx.cas(&inflight_, cur, cur + 1)) return;
      ++st.throttle_waits;
      if (a.outstanding > 0 && !ctx.queue_empty()) {
        std::uint64_t m[2];
        ctx.receive_async(m, 2);
        ctx.stage_reply(reply_tag(m[0]), m[1]);
        ctx.faa(&inflight_, ~std::uint64_t{0});
      } else {
        ctx.cpu_relax();
      }
    }
  }

  Tid server_;
  std::uint64_t max_inflight_;
  std::vector<Entry> ops_;
  alignas(rt::kCacheLine) Word inflight_{0};
  PaddedStats stats_[kMaxThreads];
  AsyncSt async_[kMaxThreads];
};

}  // namespace hmps::sync

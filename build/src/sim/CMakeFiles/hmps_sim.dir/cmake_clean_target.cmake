file(REMOVE_RECURSE
  "libhmps_sim.a"
)

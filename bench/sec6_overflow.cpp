// Reproduces the Section 6 analysis: hardware message-queue occupancy and
// deadlock freedom.
//
//   * With MP-SERVER, a client/non-combiner queue holds at most one message
//     (its response), so the servicing thread never blocks on send.
//   * The servicing thread's queue holds at most one 3-word request per
//     application thread: 35 * 3 = 105 words, which fits the 118-word
//     buffer. The bench reports the observed peak occupancy.
//   * With more threads than the buffer can cover (oversubscription via the
//     4-way demux queues, Section 6), senders block on backpressure but the
//     system keeps making progress because every send is followed by a
//     blocking receive.
//   * The fault-injection scenarios (second table) run MP-SERVER and
//     HYBCOMB under deterministic buffer pressure + combiner preemption
//     (sim/fault.hpp) with and without the Section 6 overflow guards
//     (credit-based in-flight throttling, combiner-stall detection); see
//     docs/ROBUSTNESS.md.
#include <cstdio>
#include <string>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/fault.hpp"
#include "sync/mp_server.hpp"

using namespace hmps;
using rt::SimCtx;

namespace {

struct Outcome {
  std::uint64_t peak = 0;
  std::uint64_t blocks = 0;
  std::uint64_t ops = 0;
};

Outcome run(std::uint32_t app_threads, std::uint32_t buf_words,
            sim::Cycle horizon, std::uint64_t max_inflight = 0) {
  arch::MachineParams p = arch::MachineParams::tilegx36();
  p.udn_buf_words = buf_words;
  rt::SimExecutor ex(p, 7);
  ds::SeqCounter c;
  sync::MpServer<SimCtx> mp(0, &c, max_inflight);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  for (std::uint32_t i = 0; i < app_threads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (;;) {
        mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
        // No think time: worst-case pressure on the server queue.
      }
    });
  }
  ex.run_until(horizon);
  Outcome o;
  o.peak = ex.machine().udn().counters().peak_occupancy;
  o.blocks = ex.machine().udn().counters().sender_blocks;
  o.ops = mp.stats(0).served;
  return o;
}

// Deterministic pressure + preemption plan shared by the fault scenarios.
sim::FaultPlan fault_plan(std::uint64_t seed) {
  sim::FaultPlan fp;
  fp.seed = seed;
  fp.credit_period = 20'000;    // UDN pressure: credits shrink to 25%
  fp.credit_duration = 5'000;
  fp.credit_pct = 25;
  fp.preempt_period = 15'000;   // cores (combiners included) lose the CPU
  fp.preempt_duration = 2'000;
  return fp;
}

void fault_scenarios(harness::Table& table, const harness::BenchArgs& args,
                     harness::RunArtifacts& art) {
  harness::RunCfg cfg;
  cfg.app_threads = args.threads ? args.threads : 16;
  cfg.window = args.window ? args.window : 150'000;
  cfg.reps = args.reps ? args.reps : 2;
  cfg.seed = args.seed;
  cfg.telemetry_window = args.telemetry_window;
  cfg.machine.model_link_contention |= args.noc;
  cfg.faults = fault_plan(args.seed);

  struct Scenario {
    harness::Approach a;
    std::uint64_t max_inflight;
    sim::Cycle stall_timeout;
  };
  const Scenario scenarios[] = {
      {harness::Approach::kMpServer, 0, 0},
      {harness::Approach::kMpServer, 8, 0},
      {harness::Approach::kHybComb, 0, 0},
      // stall_timeout below preempt_duration (2'000), so a would-be
      // combiner spinning through its predecessor's preemption window
      // records the detection.
      {harness::Approach::kHybComb, 8, 1'500},
  };
  harness::RunPool pool(art, args.jobs);
  for (const Scenario& sc : scenarios) {
    harness::RunCfg c = cfg;
    c.max_inflight = sc.max_inflight;
    c.stall_timeout = sc.stall_timeout;
    pool.submit(std::string(harness::approach_name(sc.a)) + "/inflight" +
                    std::to_string(sc.max_inflight) + "/stall" +
                    std::to_string(sc.stall_timeout),
                [c, sc](const harness::RunObs& obs) {
                  harness::RunCfg rc = c;
                  rc.obs = obs;
                  const auto r = harness::run_counter(rc, sc.a);
                  std::fprintf(stderr, "[sec6] faults %s done\n", obs.label);
                  return r;
                });
  }
  const auto& results = pool.drain();
  for (std::size_t i = 0; i < 4; ++i) {
    const Scenario& sc = scenarios[i];
    const harness::RunResult& r = results[i];
    table.add_row({harness::approach_name(sc.a),
                   std::to_string(sc.max_inflight),
                   std::to_string(sc.stall_timeout), harness::fmt(r.mops),
                   std::to_string(r.total_ops),
                   std::to_string(r.throttle_waits),
                   std::to_string(r.stall_timeouts),
                   std::to_string(r.preemptions),
                   r.total_ops > 0 ? "live" : "STALLED"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "sec6_overflow", argc, argv);
  const sim::Cycle horizon = args.window ? args.window : 300'000;

  harness::Table table({"app_threads", "buffer(words)", "max_inflight",
                        "peak occupancy", "sender blocks", "ops served",
                        "verdict"});
  struct Case {
    std::uint32_t threads, buf;
    std::uint64_t inflight;
  };
  // 35 clients fit (105 <= 118). The oversubscribed cases push more
  // request words than the buffer holds (63 * 3 = 189 > 118) and place two
  // threads on some cores (63 clients + server on 36 cores), exercising the
  // 4-way demux sharing — while staying within the constructions' fixed
  // 64-thread capacity, which is now a hard runtime check. The {63, 48}
  // pair is the Section 6 hazard made real: unthrottled it wedges (clients
  // sharing the server's buffer fill it so the response send blocks);
  // credit-based throttling (max_inflight) makes the same machine live.
  const Case cases[] = {
      {35, 118, 0}, {35, 24, 0}, {63, 118, 0}, {63, 48, 0}, {63, 48, 8}};
  constexpr std::size_t kCases = sizeof(cases) / sizeof(cases[0]);
  // The occupancy probes have no artifact output, so a bare TaskPool with
  // indexed result slots is enough to run them concurrently.
  Outcome outcomes[kCases];
  {
    harness::TaskPool tp(harness::resolve_jobs(args.jobs));
    for (std::size_t i = 0; i < kCases; ++i) {
      const Case cs = cases[i];
      tp.submit([&outcomes, i, cs, horizon] {
        outcomes[i] = run(cs.threads, cs.buf, horizon, cs.inflight);
        std::fprintf(stderr, "[sec6] threads=%u buf=%u inflight=%llu done\n",
                     cs.threads, cs.buf,
                     static_cast<unsigned long long>(cs.inflight));
      });
    }
    tp.wait();
  }
  for (std::size_t i = 0; i < kCases; ++i) {
    const Case& cs = cases[i];
    const Outcome& o = outcomes[i];
    const bool fits = o.peak <= cs.buf;
    const bool progressed = o.ops > 1000;
    table.add_row({std::to_string(cs.threads), std::to_string(cs.buf),
                   std::to_string(cs.inflight), std::to_string(o.peak),
                   std::to_string(o.blocks), std::to_string(o.ops),
                   progressed ? (fits ? "no overflow, live"
                                      : "backpressure, live")
                              : "STALLED"});
  }
  table.print("Section 6: message-queue occupancy and deadlock freedom");
  if (!args.csv.empty()) table.write_csv(args.csv);

  harness::Table ftable({"approach", "max_inflight", "stall_timeout", "mops",
                         "total_ops", "throttle_waits", "stall_timeouts",
                         "preemptions", "verdict"});
  fault_scenarios(ftable, args, art);
  ftable.print(
      "Section 6: buffer pressure + combiner preemption (fault injection)");
  if (!args.csv.empty()) ftable.write_csv(args.csv + ".faults.csv");
  art.finalize();
  return 0;
}

# Empty compiler generated dependencies file for hmps_sim.
# This may be replaced when dependencies are built.

# Empty dependencies file for sec55_discussion.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4a_stall_breakdown.dir/fig4a_stall_breakdown.cpp.o"
  "CMakeFiles/fig4a_stall_breakdown.dir/fig4a_stall_breakdown.cpp.o.d"
  "fig4a_stall_breakdown"
  "fig4a_stall_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_stall_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

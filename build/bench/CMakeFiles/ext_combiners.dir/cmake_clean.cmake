file(REMOVE_RECURSE
  "CMakeFiles/ext_combiners.dir/ext_combiners.cpp.o"
  "CMakeFiles/ext_combiners.dir/ext_combiners.cpp.o.d"
  "ext_combiners"
  "ext_combiners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_combiners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_stress_engine.dir/test_stress_engine.cpp.o"
  "CMakeFiles/test_stress_engine.dir/test_stress_engine.cpp.o.d"
  "test_stress_engine"
  "test_stress_engine.pdb"
  "test_stress_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

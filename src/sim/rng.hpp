// Deterministic pseudo-random number generation for simulations.
//
// We use xoshiro256** (Blackman & Vigna): fast, high quality, and — unlike
// std::mt19937 — with a representation-stable output sequence across
// standard library implementations, which matters because tests pin exact
// simulation outcomes to seeds.
#pragma once

#include <cstdint>

namespace hmps::sim {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    // All-zero state is invalid; splitmix cannot produce 4 zero outputs from
    // any seed, but keep the guard for safety.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire-style multiply-shift; slight modulo bias is irrelevant for
    // workload think times but the method is branch-light and fast.
    unsigned __int128 m = static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace hmps::sim

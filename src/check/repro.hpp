// hmps-repro-v1: the replayable failure format emitted by the schedule-
// exploration harness (docs/TESTING.md).
//
// A repro file is a single JSON object holding everything a run depends on
// — MachineParams, workload shape, fault plan, perturbation plan, seeds —
// so `check_explore --replay file.json` re-executes the failing schedule
// byte-identically on any build of the simulator. The `violation` block is
// informational: replay recomputes it and compares.
#pragma once

#include <string>

#include "check/explore.hpp"

namespace hmps::check {

inline constexpr const char* kReproFormat = "hmps-repro-v1";

/// Serializes scenario + observed violation as hmps-repro-v1 JSON text.
std::string repro_to_json(const Scenario& s, const Violation& v);

/// Parses hmps-repro-v1 text. Returns false and fills `err` on malformed
/// input or an unknown format tag. Unknown machine fields are rejected
/// (a repro must describe the machine exactly); `expect` receives the
/// violation block recorded at capture time (may be empty).
bool repro_from_json(const std::string& text, Scenario* out,
                     Violation* expect, std::string* err);

/// Writes repro JSON to `path`; returns false on I/O error.
bool write_repro_file(const std::string& path, const Scenario& s,
                      const Violation& v, std::string* err);

/// Reads and parses a repro file.
bool read_repro_file(const std::string& path, Scenario* out,
                     Violation* expect, std::string* err);

}  // namespace hmps::check

// Correctness of the algorithms under REAL hardware concurrency via
// NativeCtx: the same templates that run on the simulator, backed by
// std::atomic and software MPSC channels. This container exposes a single
// hardware thread, so these tests exercise preemption-driven interleavings
// rather than parallelism — still a meaningful, different adversary from
// the deterministic simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "ds/counter.hpp"
#include "ds/lcrq.hpp"
#include "ds/queue.hpp"
#include "ds/stack.hpp"
#include "runtime/mpsc_channel.hpp"
#include "runtime/native_context.hpp"
#include "sync/ccsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/locks.hpp"
#include "sync/mp_server.hpp"
#include "sync/shm_server.hpp"
#include "sync/universal.hpp"

namespace hmps {
namespace {

using rt::MpscChannel;
using rt::NativeCtx;
using rt::NativeEnv;

TEST(MpscChannel, SingleThreadRoundTrip) {
  MpscChannel ch(8);
  const std::uint64_t msg[3] = {7, 8, 9};
  ASSERT_TRUE(ch.try_send(msg, 3));
  std::uint64_t out[MpscChannel::kMaxWords];
  ASSERT_EQ(ch.try_recv(out), 3u);
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(out[2], 9u);
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.try_recv(out), 0u);
}

TEST(MpscChannel, FillsAndReportsFull) {
  MpscChannel ch(4);
  const std::uint64_t w = 1;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ch.try_send(&w, 1));
  EXPECT_FALSE(ch.try_send(&w, 1));
  std::uint64_t out[MpscChannel::kMaxWords];
  EXPECT_EQ(ch.try_recv(out), 1u);
  EXPECT_TRUE(ch.try_send(&w, 1));  // slot freed
}

TEST(MpscChannel, MultiProducerNoLossNoDup) {
  MpscChannel ch(256);
  constexpr int kProducers = 4, kEach = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kEach; ++i) {
        const std::uint64_t w =
            (static_cast<std::uint64_t>(p) << 32) | static_cast<std::uint32_t>(i);
        ch.send(&w, 1);
      }
    });
  }
  std::vector<std::uint64_t> got;
  std::uint64_t out[MpscChannel::kMaxWords];
  while (got.size() < kProducers * kEach) {
    if (ch.try_recv(out)) got.push_back(out[0]);
  }
  for (auto& t : producers) t.join();
  std::sort(got.begin(), got.end());
  EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
  // Per-producer FIFO: values of one producer arrive in order.
  std::vector<std::int64_t> last(kProducers, -1);
  // (after sort this is trivially true; recheck on the unsorted copy below)
}

TEST(MpscChannel, PerProducerFifo) {
  MpscChannel ch(64);
  constexpr int kEach = 3000;
  std::thread producer([&ch] {
    for (int i = 0; i < kEach; ++i) {
      const std::uint64_t w = static_cast<std::uint64_t>(i);
      ch.send(&w, 1);
    }
  });
  std::uint64_t expect = 0;
  std::uint64_t out[MpscChannel::kMaxWords];
  while (expect < kEach) {
    if (ch.try_recv(out)) {
      ASSERT_EQ(out[0], expect);
      ++expect;
    }
  }
  producer.join();
}

// A ring much smaller than the message count: every producer laps the ring
// hundreds of times, so the per-slot sequence numbers must stay coherent
// across wraparounds under contention.
TEST(MpscChannel, MultiProducerWraparound) {
  MpscChannel ch(8);
  constexpr int kProducers = 4, kEach = 4000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kEach; ++i) {
        const std::uint64_t w = (static_cast<std::uint64_t>(p) << 32) |
                                static_cast<std::uint32_t>(i);
        ch.send(&w, 1);
      }
    });
  }
  std::vector<std::uint64_t> got;
  std::uint64_t out[MpscChannel::kMaxWords];
  while (got.size() < static_cast<std::size_t>(kProducers) * kEach) {
    if (ch.try_recv(out)) got.push_back(out[0]);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.try_recv(out), 0u);
  // Per-producer FIFO on the arrival order, then no loss / no dup overall.
  std::vector<std::int64_t> last(kProducers, -1);
  for (std::uint64_t w : got) {
    const int p = static_cast<int>(w >> 32);
    const auto i = static_cast<std::int64_t>(w & 0xFFFFFFFFu);
    ASSERT_LT(last[p], i) << "producer " << p << " reordered";
    last[p] = i;
  }
  std::sort(got.begin(), got.end());
  EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
}

// Backpressure: with the consumer held back, blocking send() must park the
// producers on the full ring and deliver everything once draining starts,
// never dropping or duplicating a message.
TEST(MpscChannel, FullRingBackpressureBlockingSend) {
  MpscChannel ch(4);
  constexpr int kProducers = 3, kEach = 2000;
  std::atomic<bool> open{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, &open, p] {
      while (!open.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kEach; ++i) {
        const std::uint64_t w = (static_cast<std::uint64_t>(p) << 32) |
                                static_cast<std::uint32_t>(i);
        ch.send(&w, 1);  // blocks whenever the 4-slot ring is full
      }
    });
  }
  open.store(true, std::memory_order_release);
  // Let the producers wedge against the tiny ring before draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::size_t received = 0;
  std::uint64_t out[MpscChannel::kMaxWords];
  while (received < static_cast<std::size_t>(kProducers) * kEach) {
    if (ch.try_recv(out)) ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.try_recv(out), 0u);
}

// Multi-word frames from concurrent producers must arrive whole: a recv
// never observes words from two different sends in one frame.
TEST(MpscChannel, InterleavedMultiWordFrames) {
  MpscChannel ch(16);
  constexpr int kProducers = 4, kEach = 3000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kEach; ++i) {
        const std::uint64_t head = (static_cast<std::uint64_t>(p) << 32) |
                                   static_cast<std::uint32_t>(i);
        const std::uint64_t frame[3] = {head, head ^ 0xA5A5A5A5A5A5A5A5ull,
                                        head + 12345};
        ch.send(frame, 3);
      }
    });
  }
  std::vector<std::int64_t> last(kProducers, -1);
  std::size_t received = 0;
  std::uint64_t out[MpscChannel::kMaxWords];
  while (received < static_cast<std::size_t>(kProducers) * kEach) {
    const std::size_t n = ch.try_recv(out);
    if (n == 0) continue;
    ASSERT_EQ(n, 3u);
    ASSERT_EQ(out[1], out[0] ^ 0xA5A5A5A5A5A5A5A5ull) << "torn frame";
    ASSERT_EQ(out[2], out[0] + 12345) << "torn frame";
    const int p = static_cast<int>(out[0] >> 32);
    const auto i = static_cast<std::int64_t>(out[0] & 0xFFFFFFFFu);
    ASSERT_LT(last[p], i);
    last[p] = i;
    ++received;
  }
  for (auto& t : producers) t.join();
  for (std::int64_t l : last) EXPECT_EQ(l, kEach - 1);
}

// ---- universal constructions, native ----

enum class Kind { kCcSynch, kHybComb, kMpServer, kShmServer, kMcs, kTicket };

std::uint64_t run_native_counter(Kind kind, std::uint32_t nthreads,
                                 std::uint64_t ops_each) {
  const std::uint32_t total =
      nthreads + ((kind == Kind::kMpServer || kind == Kind::kShmServer) ? 1 : 0);
  NativeEnv env(total);
  ds::SeqCounter counter;

  sync::CcSynch<NativeCtx> cc(&counter, 16);
  sync::HybComb<NativeCtx> hyb(&counter, 16);
  sync::MpServer<NativeCtx> mp(0, &counter);
  sync::ShmServer<NativeCtx> shm(0, &counter);
  sync::LockUc<NativeCtx, sync::McsLock<NativeCtx>> mcs(&counter);
  sync::LockUc<NativeCtx, sync::TicketLock<NativeCtx>> ticket(&counter);

  std::vector<std::thread> threads;
  std::atomic<std::uint32_t> done{0};

  if (kind == Kind::kMpServer || kind == Kind::kShmServer) {
    threads.emplace_back([&] {
      NativeCtx ctx(env, 0, 1);
      if (kind == Kind::kMpServer) {
        mp.serve(ctx);
      } else {
        shm.serve(ctx);
      }
    });
  }
  const std::uint32_t base = (total > nthreads) ? 1 : 0;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    threads.emplace_back([&, i] {
      NativeCtx ctx(env, base + i, 100 + i);
      for (std::uint64_t k = 0; k < ops_each; ++k) {
        switch (kind) {
          case Kind::kCcSynch:
            cc.apply(ctx, ds::counter_inc<NativeCtx>, 0);
            break;
          case Kind::kHybComb:
            hyb.apply(ctx, ds::counter_inc<NativeCtx>, 0);
            break;
          case Kind::kMpServer:
            mp.apply(ctx, ds::counter_inc<NativeCtx>, 0);
            break;
          case Kind::kShmServer:
            shm.apply(ctx, ds::counter_inc<NativeCtx>, 0);
            break;
          case Kind::kMcs:
            mcs.apply(ctx, ds::counter_inc<NativeCtx>, 0);
            break;
          case Kind::kTicket:
            ticket.apply(ctx, ds::counter_inc<NativeCtx>, 0);
            break;
        }
      }
      if (done.fetch_add(1) + 1 == nthreads &&
          (kind == Kind::kMpServer || kind == Kind::kShmServer)) {
        NativeCtx ctx2(env, base + i, 999);
        // Clients are drained (they stop between ops); shut the server down
        // through this thread's own identity.
        if (kind == Kind::kMpServer) {
          mp.request_stop(ctx);
        } else {
          shm.request_stop(ctx);
        }
        (void)ctx2;
      }
    });
  }
  for (auto& t : threads) t.join();
  return counter.value.load();
}

class NativeUc
    : public ::testing::TestWithParam<std::tuple<Kind, std::uint32_t>> {};

TEST_P(NativeUc, CounterIsExact) {
  const auto [kind, nthreads] = GetParam();
  const std::uint64_t ops_each = 3000;
  EXPECT_EQ(run_native_counter(kind, nthreads, ops_each),
            static_cast<std::uint64_t>(nthreads) * ops_each);
}

std::string NativeUcName(
    const ::testing::TestParamInfo<std::tuple<Kind, std::uint32_t>>& info) {
  static const char* names[] = {"CcSynch", "HybComb", "MpServer",
                                "ShmServer", "Mcs", "Ticket"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
         "_t" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, NativeUc,
    ::testing::Combine(::testing::Values(Kind::kCcSynch, Kind::kHybComb,
                                         Kind::kMpServer, Kind::kShmServer,
                                         Kind::kMcs, Kind::kTicket),
                       ::testing::Values(1u, 2u, 4u)),
    NativeUcName);

TEST(NativeDs, LcrqMultiThreadNoLoss) {
  NativeEnv env(4);
  ds::Lcrq<NativeCtx> q(5, 4096);
  constexpr int kThreads = 4, kEach = 4000;
  std::vector<std::vector<std::uint32_t>> popped(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      NativeCtx ctx(env, i, 5 + i);
      for (int k = 0; k < kEach; ++k) {
        q.enqueue(ctx, static_cast<std::uint32_t>((i << 20) | k));
        const std::uint32_t v = q.dequeue(ctx);
        if (v != ds::kLcrqEmpty) popped[i].push_back(v);
      }
      if (done.fetch_add(1) + 1 == kThreads) {
        for (;;) {
          const std::uint32_t v = q.dequeue(ctx);
          if (v == ds::kLcrqEmpty) break;
          popped[i].push_back(v);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<std::uint32_t> all;
  for (auto& v : popped) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kEach);
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

TEST(NativeDs, TreiberMultiThreadNoLoss) {
  NativeEnv env(4);
  ds::TreiberStack<NativeCtx> s(8192);
  constexpr int kThreads = 4, kEach = 4000;
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      NativeCtx ctx(env, i, 5 + i);
      for (int k = 0; k < kEach; ++k) {
        s.push(ctx, static_cast<std::uint64_t>((i << 20) | k));
        const std::uint64_t v = s.pop(ctx);
        if (v != ds::kStackEmpty) popped[i].push_back(v);
      }
      if (done.fetch_add(1) + 1 == kThreads) {
        for (;;) {
          const std::uint64_t v = s.pop(ctx);
          if (v == ds::kStackEmpty) break;
          popped[i].push_back(v);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<std::uint64_t> all;
  for (auto& v : popped) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kEach);
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

TEST(NativeDs, UcQueueFifoUnderTwoThreads) {
  NativeEnv env(2);
  ds::SeqQueue q(1 << 15);
  sync::CcSynch<NativeCtx> cc(&q, 16);
  ds::UcQueue<NativeCtx, sync::CcSynch<NativeCtx>> queue(q, cc);
  constexpr std::uint64_t kN = 10000;
  std::thread producer([&] {
    NativeCtx ctx(env, 0, 3);
    for (std::uint64_t i = 0; i < kN; ++i) queue.enqueue(ctx, i);
  });
  std::thread consumer([&] {
    NativeCtx ctx(env, 1, 4);
    std::uint64_t expect = 0;
    while (expect < kN) {
      const std::uint64_t v = queue.dequeue(ctx);
      if (v == ds::kQEmpty) continue;
      ASSERT_EQ(v, expect);
      ++expect;
    }
  });
  producer.join();
  consumer.join();
}

}  // namespace
}  // namespace hmps

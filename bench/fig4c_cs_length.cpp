// Reproduces Fig. 4c: average CS execution cost vs CS length (an
// array-increment loop; one increment per iteration), 35 threads.
//
// Expected shape: MP-SERVER/HYBCOMB overheads over the "ideal" line (the CS
// body alone) stay constant; SHM-SERVER/CC-SYNCH overheads start ~30 cycles
// higher and shrink as the CS grows, because the coherence RMRs overlap
// with CS execution — the gap between best and worst drops to ~10% at 15
// iterations.
//
// --no-prefetch additionally reruns the sweep with software prefetching
// disabled (ablation A4 of DESIGN.md: the overlap mechanism).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/artifact.hpp"
#include "harness/report.hpp"
#include "harness/run_pool.hpp"
#include "harness/workload.hpp"

using namespace hmps;
using harness::Approach;

namespace {

void sweep(const harness::BenchArgs& args, harness::RunArtifacts& art,
           bool prefetch) {
  std::vector<std::uint64_t> lens =
      args.full ? std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 8, 10, 12,
                                             14, 15}
                : std::vector<std::uint64_t>{0, 2, 5, 10, 15};

  const Approach order[] = {Approach::kMpServer, Approach::kHybComb,
                            Approach::kShmServer, Approach::kCcSynch};
  harness::RunPool pool(art, args.jobs);
  std::vector<harness::RunCfg> cfgs;
  for (std::uint64_t len : lens) {
    harness::RunCfg cfg;
    cfg.app_threads = args.threads ? args.threads : 35;
    cfg.seed = args.seed;
    cfg.cs_iters = len;
    cfg.machine.allow_prefetch = prefetch;
    if (args.window) cfg.window = args.window;
    if (args.reps) cfg.reps = args.reps;
    cfgs.push_back(cfg);
    for (Approach a : order) {
      pool.submit(std::string(harness::approach_name(a)) + "/cs" +
                      std::to_string(len) + (prefetch ? "" : "/noprefetch"),
                  [cfg, a](const harness::RunObs& obs) {
                    harness::RunCfg c = cfg;
                    c.obs = obs;
                    const auto r = harness::run_counter(c, a);
                    std::fprintf(stderr, "[fig4c] %s done\n", obs.label);
                    return r;
                  });
    }
  }
  const auto& results = pool.drain();

  harness::Table table({"cs_iters", "mp-server", "HybComb", "shm-server",
                        "CC-Synch", "ideal"});
  std::size_t idx = 0;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    std::vector<std::string> row{std::to_string(lens[i])};
    for (std::size_t a = 0; a < 4; ++a) {
      // Average CS execution time = aggregate cycles per op at saturation.
      row.push_back(harness::fmt(results[idx++].cycles_per_op, 1));
    }
    row.push_back(harness::fmt(harness::ideal_cs_cycles(cfgs[i]), 1));
    table.add_row(row);
  }
  table.print(std::string("Fig. 4c: cycles per CS execution vs CS length") +
              (prefetch ? "" : " [no-prefetch ablation]"));
  if (!args.csv.empty()) {
    table.write_csv(prefetch ? args.csv : args.csv + ".noprefetch");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv);
  harness::RunArtifacts art(args, "fig4c_cs_length", argc, argv);
  bool ablation = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-prefetch") == 0) ablation = true;
  }
  sweep(args, art, /*prefetch=*/true);
  if (ablation || args.full) sweep(args, art, /*prefetch=*/false);
  art.finalize();
  return 0;
}

#!/usr/bin/env bash
# Measures the simulation engine's hot-path throughput and records it in
# BENCH_engine.json at the repo root.
#
# Usage: scripts/bench_engine.sh [--smoke]
#   --smoke  1% iteration counts and no fig3a timing (fast CI sanity check)
#
# The seed_baseline block holds the same four workloads measured with this
# exact benchmark source compiled against the pre-overhaul engine (commit
# dc9de22: std::function + std::priority_queue events, ucontext fibers,
# deque-based UDN queues, per-hop NoC routing), g++ -O2 -DNDEBUG, single-core
# x86-64 VM, 2026-08-05. Absolute rates are machine-specific; the speedup
# ratios are the durable result.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD_DIR:-build}"
SMOKE=0
for a in "$@"; do
  [ "$a" = "--smoke" ] && SMOKE=1
done

cmake -S . -B "$BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j"$(nproc)" \
  --target engine_micro fig3a_counter_throughput >/dev/null

TMP_JSON="$(mktemp)"
trap 'rm -f "$TMP_JSON"' EXIT
if [ "$SMOKE" = 1 ]; then
  "$BUILD"/bench/engine_micro --smoke --json "$TMP_JSON"
else
  "$BUILD"/bench/engine_micro --json "$TMP_JSON"
fi

# Seed-engine rates, in the order engine_micro emits its workloads.
SEED_RATES=(10280073 1819949 294410 528906)
SEED_NAMES=(event_churn fiber_churn udn_pingpong udn_flood)

mapfile -t RATES < <(grep -o '"rate": [0-9.]*' "$TMP_JSON" | awk '{print $2}')

SPEEDUPS=""
for i in "${!SEED_NAMES[@]}"; do
  r="${RATES[$i]:-0}"
  s=$(awk -v a="$r" -v b="${SEED_RATES[$i]}" 'BEGIN { printf "%.2f", a / b }')
  SPEEDUPS+="    \"${SEED_NAMES[$i]}\": $s"
  [ "$i" -lt $((${#SEED_NAMES[@]} - 1)) ] && SPEEDUPS+=$',\n'
done

FIG3A="null"
if [ "$SMOKE" = 0 ]; then
  T0=$(date +%s%N)
  "$BUILD"/bench/fig3a_counter_throughput --jobs 1 >/dev/null
  T1=$(date +%s%N)
  FIG3A=$(awk -v ns=$((T1 - T0)) 'BEGIN { printf "%.2f", ns / 1e9 }')
fi

# Steady-state heap growths of the pre-sized event queue (engine_micro's
# probe workload; the binary itself exits 1 when this is nonzero).
HEAP_GROWS=$(grep -o '"heap_grows": [0-9]*' "$TMP_JSON" | awk '{print $2}')
HEAP_GROWS="${HEAP_GROWS:-null}"

{
  echo '{'
  echo '  "generated_by": "scripts/bench_engine.sh",'
  echo "  \"smoke\": $([ "$SMOKE" = 1 ] && echo true || echo false),"
  echo "  \"host\": \"$(uname -srm)\","
  echo '  "engine_micro":'
  sed 's/^/  /' "$TMP_JSON" | sed '$ s/$/,/'
  echo '  "fig3a_default_wall_seconds": '"$FIG3A"','
  echo '  "steady_state_heap_grows": '"$HEAP_GROWS"','
  echo '  "seed_baseline": {'
  echo '    "commit": "dc9de22",'
  echo '    "flags": "g++ -std=c++20 -O2 -DNDEBUG",'
  echo '    "event_churn": 10280073,'
  echo '    "fiber_churn": 1819949,'
  echo '    "udn_pingpong": 294410,'
  echo '    "udn_flood": 528906,'
  echo '    "fig3a_default_wall_seconds": 56.19'
  echo '  },'
  echo '  "speedup_vs_seed": {'
  printf '%s\n' "$SPEEDUPS"
  echo '  }'
  echo '}'
} > BENCH_engine.json

echo "wrote BENCH_engine.json"

// Schedule exploration: PCT-style fuzzing of the synchronization layer with
// automatic failure shrinking (docs/TESTING.md).
//
// explore() generates scenarios — workload (construction × object ×
// machine) + perturbation schedule + optional fault plan — runs each one on
// the simulator via harness::record_history, and validates the recorded
// history with the linearizability checkers. The first violation is
// shrunk to a minimal deterministic repro (shrink()) suitable for
// hmps-repro-v1 serialization (repro.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/perturb.hpp"
#include "harness/record.hpp"

namespace hmps::check {

/// One fully described run: same Scenario => same history, bit for bit.
struct Scenario {
  harness::RecordCfg cfg;
  PerturbPlan perturb;
};

struct Violation {
  bool found = false;
  std::string kind;    ///< "counter" | "queue" | "stack" | "lin" | "hang"
  std::string detail;
};

/// Runs the scenario once and checks its history. Fast sound checks always
/// run; the complete Wing & Gong checker runs when the history is small
/// enough (<= 48 ops). A run that fails to complete within the horizon is
/// reported as a hang.
Violation run_scenario(const Scenario& s);

struct ExploreCfg {
  std::uint64_t seed = 1;
  double budget_seconds = 30.0;
  std::uint64_t max_schedules = 0;  ///< 0 = bounded by budget only
  /// Empty = all nine constructions / all five objects.
  std::vector<harness::Construction> constructions;
  std::vector<harness::Object> objects;
  bool fuzz_machines = false;  ///< random machines vs. the TILE-Gx preset
  /// Selftest hook: seed the test-only HybComb defect into every scenario.
  std::uint64_t hyb_bug_drop_every = 0;
  bool stop_on_violation = true;
  bool verbose = false;
  /// Scenario-execution workers (harness::TaskPool). Scenarios are drawn
  /// serially from the master RNG and dispatched in iteration-indexed
  /// batches; the reported failing scenario is always the lowest-iteration
  /// violation, so the shrunk repro is identical for every jobs value.
  /// schedules_run/ops_checked may differ (a batch runs to completion where
  /// the serial loop stops mid-stream). 1 = the serial loop.
  std::uint32_t jobs = 1;
};

struct ExploreResult {
  std::uint64_t schedules_run = 0;
  std::uint64_t ops_checked = 0;
  bool violation_found = false;
  Scenario failing;   ///< first failing scenario (valid iff violation_found)
  Violation violation;
  Scenario shrunk;    ///< minimized repro (valid iff violation_found)
  Violation shrunk_violation;
  std::uint64_t shrink_runs = 0;
};

/// Explores until the wall-clock budget or the schedule cap is exhausted,
/// or (by default) a violation is found and shrunk.
ExploreResult explore(const ExploreCfg& cfg);

/// Greedy shrink: repeatedly tries smaller candidates (fewer threads, fewer
/// ops, faults off, weaker perturbation), re-running each and keeping it
/// only if the violation persists. Returns the smallest still-failing
/// scenario; `runs` counts candidate executions.
Scenario shrink(const Scenario& failing, Violation* out_violation,
                std::uint64_t* runs);

}  // namespace hmps::check

# Empty dependencies file for fig4a_stall_breakdown.
# This may be replaced when dependencies are built.

// CC-SYNCH (Fatourou & Kallimanis, PPoPP'12): the most efficient known
// pure-shared-memory combining construction, the paper's main baseline
// (Section 3).
//
// Threads append their request node to a logical list with a SWAP on the
// tail and spin locally on their predecessor node's `wait` flag. The thread
// at the head becomes the combiner: it walks the list executing up to
// MAX_OPS requests, then hands the combiner role to the next waiting thread
// by clearing its `wait` flag without setting `completed`.
//
// While combining, each served node costs the combiner one RMR to read the
// request (dirty in the requester's cache) and one to publish the response
// — the same two coherence stalls as SHM-SERVER (Fig. 1), which is why both
// plateau together in Fig. 3a.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class CcSynch {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;

  CcSynch(void* obj, std::uint32_t max_ops = 200, bool fixed_combiner = false)
      : obj_(obj), max_ops_(max_ops), fixed_(fixed_combiner),
        pool_(new Node[kMaxThreads + 1]) {
    // Initial dummy tail: not waiting, not completed — the first thread to
    // enqueue behind it becomes the combiner immediately.
    Node* dummy = &pool_[kMaxThreads];
    dummy->wait.store(0, std::memory_order_relaxed);
    dummy->completed.store(0, std::memory_order_relaxed);
    dummy->next.store(0, std::memory_order_relaxed);
    tail_.store(rt::to_word(dummy), std::memory_order_relaxed);
    for (std::uint32_t t = 0; t < kMaxThreads; ++t) my_[t].node = &pool_[t];
  }

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "CcSynch::apply");
    SyncStats& st = stats_[tid].s;
    obs::Span<Ctx> acquire(ctx, "cc.acquire");
    Node* next_node = my_[tid].node;
    ctx.store(&next_node->next, std::uint64_t{0});
    ctx.store(&next_node->wait, std::uint64_t{1});
    ctx.store(&next_node->completed, std::uint64_t{0});

    explore_point(ctx, "cc.enqueue");
    Node* cur = rt::from_word<Node>(ctx.exchange(&tail_, rt::to_word(next_node)));
    ctx.store(&cur->fn, rt::to_word(fn));
    ctx.store(&cur->arg, arg);
    ctx.store(&cur->next, rt::to_word(next_node));
    my_[tid].node = cur;  // node recycling: take over the predecessor node

    while (ctx.load(&cur->wait)) ctx.cpu_relax();
    acquire.finish();
    ++st.ops;
    if (ctx.load(&cur->completed)) {
      return ctx.load(&cur->ret);  // a combiner executed it for us
    }

    // We are the combiner. Serve the list starting from our own request.
    obs::Span<Ctx> combine(ctx, "cc.combine");
    ++st.tenures;
    Node* tmp = cur;
    std::uint32_t counter = 0;
    for (;;) {
      Node* next = rt::from_word<Node>(ctx.load(&tmp->next));
      if (next == nullptr) {
        if (!fixed_) break;
        ctx.cpu_relax();  // fixed-combiner mode (Fig. 4a): wait for work
        continue;
      }
      if (!fixed_ && counter >= max_ops_) break;
      ++counter;
      ctx.prefetch(next);  // overlap the next node fetch with this CS
      obs::Span<Ctx> cs(ctx, "cc.cs");
      Fn f = rt::from_word<std::remove_pointer_t<Fn>>(ctx.load(&tmp->fn));
      const std::uint64_t a = ctx.load(&tmp->arg);
      ctx.store(&tmp->ret, f(ctx, obj_, a));
      ctx.store(&tmp->completed, std::uint64_t{1});
      ctx.store(&tmp->wait, std::uint64_t{0});
      tmp = next;
      ++st.served;
    }
    // Hand the combiner role to the next waiting thread (completed stays 0).
    explore_point(ctx, "cc.handoff");
    ctx.store(&tmp->wait, std::uint64_t{0});
    return ctx.load(&cur->ret);
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "CcSynch::stats");
    return stats_[t].s;
  }

 private:
  struct alignas(rt::kCacheLine) Node {
    Word fn{0};
    Word arg{0};
    Word ret{0};
    Word wait{0};
    Word completed{0};
    Word next{0};
  };
  static_assert(sizeof(Node) == rt::kCacheLine);

  struct alignas(rt::kCacheLine) PerThread {
    Node* node = nullptr;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  void* obj_;
  std::uint32_t max_ops_;
  bool fixed_;
  std::unique_ptr<Node[]> pool_;
  alignas(rt::kCacheLine) Word tail_{0};
  PerThread my_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::sync

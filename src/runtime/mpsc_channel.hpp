// Bounded multi-producer/single-consumer message channel: the "software
// UDN" used by NativeCtx. This is exactly the kind of message passing
// emulated over shared memory that the paper's Section 1/7 discusses (RCL,
// CPHASH): correct and portable, but paying coherence RMRs per message.
//
// Layout is a Vyukov-style bounded ring with per-slot sequence numbers;
// each slot carries one message of up to kMaxWords 64-bit words. The single
// consumer presents a word-stream interface (receive(k) words) to match the
// UDN semantics of the paper's system model.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/context.hpp"

namespace hmps::rt {

class MpscChannel {
 public:
  static constexpr std::size_t kMaxWords = 4;

  explicit MpscChannel(std::size_t slots = 256) : mask_(slots - 1),
                                                  slots_(slots) {
    assert(slots >= 2 && (slots & (slots - 1)) == 0 &&
           "slot count must be a power of two");
    for (std::size_t i = 0; i < slots; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscChannel(const MpscChannel&) = delete;
  MpscChannel& operator=(const MpscChannel&) = delete;

  /// Non-blocking send attempt; false when the ring is full (backpressure).
  bool try_send(const std::uint64_t* words, std::size_t n) {
    assert(n >= 1 && n <= kMaxWords);
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) -
                       static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          for (std::size_t i = 0; i < n; ++i) s.words[i] = words[i];
          s.count = static_cast<std::uint32_t>(n);
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Blocking send (spins on backpressure, like a backed-up hardware NoC).
  /// Periodically yields so a full ring drains even on one hardware thread.
  void send(const std::uint64_t* words, std::size_t n) {
    std::uint32_t spins = 0;
    while (!try_send(words, n)) {
      if (++spins % 64 == 0) {
        std::this_thread::yield();
      } else {
        cpu_pause();
      }
    }
  }

  /// Consumer only: pops one whole message into `out` (>= kMaxWords
  /// capacity). Returns its word count, or 0 if the channel is empty.
  std::size_t try_recv(std::uint64_t* out) {
    Slot& s = slots_[head_ & mask_];
    const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (seq != head_ + 1) return 0;
    const std::size_t n = s.count;
    for (std::size_t i = 0; i < n; ++i) out[i] = s.words[i];
    s.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return n;
  }

  /// Consumer only: true iff no complete message is resident.
  bool empty() const {
    const Slot& s = slots_[head_ & mask_];
    return s.seq.load(std::memory_order_acquire) != head_ + 1;
  }

  static void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> seq;
    std::uint64_t words[kMaxWords];
    std::uint32_t count = 0;
  };

  const std::uint64_t mask_;
  std::vector<Slot> slots_;
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLine) std::uint64_t head_ = 0;  // consumer-private
};

}  // namespace hmps::rt

// Focused tests of the internal mechanics of each construction: request
// routing, protocol sequencing, combiner rotation, option variants, and
// the data-structure wrapper classes.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "arch/params.hpp"
#include "ds/counter.hpp"
#include "ds/queue.hpp"
#include "ds/stack.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sync/ccsynch.hpp"
#include "sync/flat_combining.hpp"
#include "sync/hybcomb.hpp"
#include "sync/mp_server.hpp"
#include "sync/shm_server.hpp"

namespace hmps {
namespace {

using rt::SimCtx;
using rt::SimExecutor;

// CS body echoing the argument, for routing checks.
std::uint64_t echo_cs(SimCtx&, void*, std::uint64_t arg) { return arg; }

TEST(MpServerMechanics, ResponsesRouteToTheRightClient) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 1);
  ds::SeqCounter obj;
  sync::MpServer<SimCtx> mp(0, &obj);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  bool ok[8] = {};
  std::uint32_t done = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      bool mine = true;
      for (int k = 0; k < 50; ++k) {
        const std::uint64_t want = (ctx.tid() << 8) | k;
        if (mp.apply(ctx, echo_cs, want) != want) mine = false;
      }
      ok[i] = mine;
      if (++done == 8) mp.request_stop(ctx);
    });
  }
  ex.run_until(sim::kCycleMax);
  for (bool b : ok) EXPECT_TRUE(b);
}

TEST(MpServerMechanics, ServerStatsCountServedOps) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 2);
  ds::SeqCounter obj;
  sync::MpServer<SimCtx> mp(0, &obj);
  ex.add_thread([&](SimCtx& ctx) { mp.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    for (int k = 0; k < 33; ++k) mp.apply(ctx, ds::counter_inc<SimCtx>, 0);
    mp.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(mp.stats(0).served, 33u);
}

TEST(ShmServerMechanics, ChannelsAreIsolatedAcrossClients) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 3);
  ds::SeqCounter obj;
  sync::ShmServer<SimCtx> shm(0, &obj);
  ex.add_thread([&](SimCtx& ctx) { shm.serve(ctx); });
  bool ok[6] = {};
  std::uint32_t done = 0;
  for (std::uint32_t i = 0; i < 6; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      bool mine = true;
      for (int k = 0; k < 60; ++k) {
        const std::uint64_t want = (ctx.tid() << 10) | k;
        if (shm.apply(ctx, echo_cs, want) != want) mine = false;
      }
      ok[i] = mine;
      if (++done == 6) shm.request_stop(ctx);
    });
  }
  ex.run_until(sim::kCycleMax);
  for (bool b : ok) EXPECT_TRUE(b);
}

TEST(ShmServerMechanics, SurvivesManySequenceRounds) {
  // The per-channel sequence numbers must work far past small values.
  SimExecutor ex(arch::MachineParams::tilegx36(), 4);
  ds::SeqCounter obj;
  sync::ShmServer<SimCtx> shm(0, &obj);
  ex.add_thread([&](SimCtx& ctx) { shm.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {
    for (int k = 0; k < 3000; ++k) shm.apply(ctx, ds::counter_inc<SimCtx>, 0);
    shm.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(obj.value.load(), 3000u);
}

TEST(CcSynchMechanics, CombinerRoleRotatesAcrossThreads) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 5);
  ds::SeqCounter obj;
  sync::CcSynch<SimCtx> cc(&obj, 8);
  const std::uint32_t nthreads = 12;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 100; ++k) {
        cc.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ctx.compute(ctx.rand_below(30));
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  std::uint32_t threads_that_combined = 0;
  std::uint64_t max_round = 0, rounds = 0, served = 0;
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    if (cc.stats(t).tenures > 0) ++threads_that_combined;
    rounds += cc.stats(t).tenures;
    served += cc.stats(t).served;
  }
  (void)max_round;
  EXPECT_GT(threads_that_combined, nthreads / 2)
      << "combining must not be monopolized";
  // MAX_OPS bound: no round serves more than max_ops requests on average
  // by a wide margin (individual rounds are bounded by construction).
  EXPECT_LE(static_cast<double>(served) / static_cast<double>(rounds), 8.01);
}

TEST(HybCombMechanics, CombinerRoleRotates) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 6);
  ds::SeqCounter obj;
  sync::HybComb<SimCtx> hyb(&obj, 8);
  const std::uint32_t nthreads = 12;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 100; ++k) {
        hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
        ctx.compute(ctx.rand_below(30));
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  std::uint32_t combined = 0;
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    if (hyb.stats(t).tenures > 0) ++combined;
  }
  EXPECT_GT(combined, nthreads / 2);
}

TEST(HybCombMechanics, SwapRegistrationVariantIsCorrect) {
  sync::HybComb<SimCtx>::Options opts;
  opts.swap_registration = true;
  SimExecutor ex(arch::MachineParams::tilegx36(), 7);
  ds::SeqCounter obj;
  sync::HybComb<SimCtx> hyb(&obj, 8, false, opts);
  const std::uint32_t nthreads = 16;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 80; ++k) hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(obj.value.load(), nthreads * 80u);
}

TEST(HybCombMechanics, NoEagerDrainVariantIsCorrect) {
  sync::HybComb<SimCtx>::Options opts;
  opts.eager_drain = false;
  SimExecutor ex(arch::MachineParams::tilegx36(), 8);
  ds::SeqCounter obj;
  sync::HybComb<SimCtx> hyb(&obj, 8, false, opts);
  const std::uint32_t nthreads = 16;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 80; ++k) hyb.apply(ctx, ds::counter_inc<SimCtx>, 0);
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(obj.value.load(), nthreads * 80u);
}

TEST(HybCombMechanics, ReturnsOwnResultNotServedOnes) {
  // A combiner serves other requests between executing its own and
  // returning; its return value must be its own CS result.
  SimExecutor ex(arch::MachineParams::tilegx36(), 9);
  ds::SeqCounter obj;
  sync::HybComb<SimCtx> hyb(&obj, 16);
  bool ok = true;
  const std::uint32_t nthreads = 10;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      for (int k = 0; k < 60; ++k) {
        const std::uint64_t want = (static_cast<std::uint64_t>(i) << 20) | k;
        if (hyb.apply(ctx, echo_cs, want) != want) ok = false;
      }
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_TRUE(ok);
}

TEST(FlatCombiningMechanics, PassBoundRespected) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 10);
  ds::SeqCounter obj;
  sync::FlatCombining<SimCtx> fc(&obj, 64, /*max_passes=*/1);
  const std::uint32_t nthreads = 8;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ex.add_thread([&](SimCtx& ctx) {
      for (int k = 0; k < 60; ++k) fc.apply(ctx, ds::counter_inc<SimCtx>, 0);
    });
  }
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(obj.value.load(), nthreads * 60u);
}

// ---- wrapper classes ----

TEST(Wrappers, UcQueueRoundTrip) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 11);
  ds::SeqQueue q(256);
  sync::CcSynch<SimCtx> cc(&q, 8);
  ds::UcQueue<SimCtx, sync::CcSynch<SimCtx>> queue(q, cc);
  ex.add_thread([&](SimCtx& ctx) {
    EXPECT_EQ(queue.dequeue(ctx), ds::kQEmpty);
    for (std::uint64_t v = 0; v < 30; ++v) queue.enqueue(ctx, v);
    for (std::uint64_t v = 0; v < 30; ++v) EXPECT_EQ(queue.dequeue(ctx), v);
  });
  ex.run_until(sim::kCycleMax);
}

TEST(Wrappers, TwoLockQueueConcurrentEnqDeq) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 12);
  ds::SeqQueue q(4096);
  sync::MpServer<SimCtx> enq_srv(0, &q);
  sync::MpServer<SimCtx> deq_srv(1, &q);
  ds::TwoLockQueue<SimCtx, sync::MpServer<SimCtx>> queue(q, enq_srv, deq_srv);
  std::uint64_t drained = 0;
  ex.add_thread([&](SimCtx& ctx) { enq_srv.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) { deq_srv.serve(ctx); });
  ex.add_thread([&](SimCtx& ctx) {  // producer
    for (std::uint64_t v = 0; v < 500; ++v) queue.enqueue(ctx, v);
  });
  ex.add_thread([&](SimCtx& ctx) {  // consumer: strict FIFO expected
    std::uint64_t expect = 0;
    while (expect < 500) {
      const std::uint64_t v = queue.dequeue(ctx);
      if (v == ds::kQEmpty) {
        ctx.compute(20);
        continue;
      }
      EXPECT_EQ(v, expect);
      ++expect;
      ++drained;
    }
    enq_srv.request_stop(ctx);
    deq_srv.request_stop(ctx);
  });
  ex.run_until(sim::kCycleMax);
  EXPECT_EQ(drained, 500u);
}

TEST(Wrappers, UcStackRoundTrip) {
  SimExecutor ex(arch::MachineParams::tilegx36(), 13);
  ds::SeqStack s(256);
  sync::HybComb<SimCtx> hyb(&s, 8);
  ds::UcStack<SimCtx, sync::HybComb<SimCtx>> stack(s, hyb);
  ex.add_thread([&](SimCtx& ctx) {
    EXPECT_EQ(stack.pop(ctx), ds::kStackEmpty);
    for (std::uint64_t v = 0; v < 30; ++v) stack.push(ctx, v);
    for (std::uint64_t v = 30; v-- > 0;) EXPECT_EQ(stack.pop(ctx), v);
  });
  ex.run_until(sim::kCycleMax);
}

}  // namespace
}  // namespace hmps

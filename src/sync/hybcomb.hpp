// HYBCOMB (paper Section 4.2, Algorithm 1): the hybrid combining
// construction and the paper's central contribution.
//
// Hardware message passing carries requests/responses between clients and
// the current combiner (as in MP-SERVER), while coherent shared memory
// manages combiner identity: a CAS on `last_registered_combiner` builds a
// logical queue of would-be combiners (CSqueue), each spinning on its
// predecessor's `combining_done` flag.
//
// Line numbers in comments refer to Algorithm 1 in the paper. The
// implementation keeps the algorithm's subtle points faithfully:
//  * registration is a FAA on the last registered combiner's n_ops; a
//    result >= MAX_OPS means the combiner is closed (or not yet open) and
//    the caller competes to become the next combiner (lines 9-21);
//  * a combiner first drains its message queue opportunistically (lines
//    25-28, optional for correctness, good for combining potential), then
//    closes registration with a SWAP of n_ops to MAX_OPS and serves exactly
//    the remaining registered requests (lines 30-37);
//  * a departing combiner exchanges its node with the single spare node
//    (departed_combiner), so n_ops of the node it leaves behind stays at
//    MAX_OPS until the node is reused and re-opened at line 18 (lines
//    38-42 and the "additional comments" paragraph).
#pragma once

#include <cstdint>
#include <memory>

#include "obs/span.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

template <class Ctx>
class HybComb {
 public:
  using Fn = CsFn<Ctx>;

  static constexpr std::uint32_t kMaxThreads = 64;
  static constexpr std::uint64_t kNoThread = ~std::uint64_t{0};

  /// Design-space options discussed in Section 4.2 ("additional comments");
  /// the defaults are the paper's Algorithm 1.
  struct Options {
    /// Register as combiner with SWAP instead of CAS: registration always
    /// succeeds, building a CLH-style chain of combiners, but some of them
    /// end up combining only their own request (the paper's argument for
    /// CAS).
    bool swap_registration = false;
    /// Run the opportunistic drain loop (lines 25-28) before closing
    /// registration; not needed for correctness, good for combining
    /// potential.
    bool eager_drain = true;
    /// Combiner-stall detection (Section 6 robustness): a would-be combiner
    /// spinning on its predecessor's combining_done for more than this many
    /// cycles records a stall_timeout and backs off coarsely. Detection
    /// only — takeover is impossible because the stalled combiner's pending
    /// requests sit in its private hardware queue. 0 disables.
    Cycle stall_timeout = 0;
    /// Section 6 overflow guard: bound the requests in flight *per
    /// combiner* (credit before send, release after the response), keeping
    /// a combiner's hardware buffer from overflowing under pressure. The
    /// credit counter lives in the combiner's node: registrants of a
    /// not-yet-active successor combiner draw from a different pool, so
    /// they can never starve the active combiner's registrants into a
    /// cross-generation deadlock. 0 disables (the paper's unbounded
    /// behavior).
    std::uint64_t max_inflight = 0;
    /// TEST-ONLY seeded defect for the src/check schedule-exploration
    /// harness (docs/TESTING.md): the combiner drops the CS execution of
    /// every Nth message-served request — it consumes the request but
    /// replies with the previous retval without running fn, a lost update
    /// that only manifests under combining. 0 (the default) disables it;
    /// never set outside exploration selftests.
    std::uint64_t bug_drop_every = 0;
  };

  /// `max_ops` is MAX_OPS of Algorithm 1. `fixed_combiner` reproduces the
  /// Fig. 4a measurement variant (MAX_OPS = infinity, one combiner for the
  /// whole run: the first thread to combine never departs).
  HybComb(void* obj, std::uint64_t max_ops = 200, bool fixed_combiner = false,
          Options opts = Options{})
      : obj_(obj),
        // Fixed-combiner mode IS "MAX_OPS = infinity" (paper footnote 4):
        // registration must never close, or clients wedge behind a combiner
        // that never departs.
        max_ops_(fixed_combiner ? (std::uint64_t{1} << 62) : max_ops),
        fixed_(fixed_combiner), opts_(opts),
        pool_(new Node[kMaxThreads + 1]) {
    // Line 3: departed_combiner <- {bottom, MAX_OPS, true}
    Node* dep = &pool_[kMaxThreads];
    dep->thread_id.store(kNoThread, std::memory_order_relaxed);
    dep->n_ops.store(max_ops_, std::memory_order_relaxed);
    dep->combining_done.store(1, std::memory_order_relaxed);
    departed_.store(rt::to_word(dep), std::memory_order_relaxed);
    // Line 4: last_registered_combiner <- departed_combiner
    lrc_.store(rt::to_word(dep), std::memory_order_relaxed);
    // Line 5: my_node <- {id, MAX_OPS, false}
    for (std::uint32_t t = 0; t < kMaxThreads; ++t) {
      pool_[t].thread_id.store(t, std::memory_order_relaxed);
      pool_[t].n_ops.store(max_ops_, std::memory_order_relaxed);
      pool_[t].combining_done.store(0, std::memory_order_relaxed);
      my_[t].node = &pool_[t];
    }
  }

  std::uint64_t apply(Ctx& ctx, Fn fn, std::uint64_t arg) {
    const Tid tid = ctx.tid();
    check_tid(tid, kMaxThreads, "HybComb::apply");
    SyncStats& st = stats_[tid].s;
    Node* my_node = my_[tid].node;
    std::uint64_t ops_completed = 0;  // line 7
    Node* last_reg;

    for (;;) {  // line 8
      explore_point(ctx, "hyb.register");
      last_reg = rt::from_word<Node>(ctx.load(&lrc_));  // line 9
      // Line 11: try to register with the last registered combiner.
      if (ctx.faa(&last_reg->n_ops, 1) < max_ops_) {
        // Lines 12-14: success; send request, await response.
        obs::Span<Ctx> req(ctx, "hyb.request");
        const Tid comb =
            static_cast<Tid>(ctx.load(&last_reg->thread_id));
        if (opts_.max_inflight) acquire_credit(ctx, last_reg, st);
        explore_point(ctx, "hyb.pre_send");
        ctx.send(comb, {tid, rt::to_word(fn), arg});
        ++st.ops;
        const std::uint64_t ret = ctx.receive1();
        if (opts_.max_inflight) {
          // Release on the node we acquired on: +(-1). Acquire/release
          // always pair on the same node, so the counter never wraps even
          // when the node is recycled before a late release lands.
          ctx.faa(&last_reg->inflight, ~std::uint64_t{0});
        }
        return ret;
      }
      // Lines 16-21: failure; try to register as the next combiner.
      if (opts_.swap_registration) {
        // Ablation: SWAP always succeeds; combiners form a CLH-style chain
        // (every candidate becomes a combiner, possibly for its own request
        // only).
        last_reg = rt::from_word<Node>(
            ctx.exchange(&lrc_, rt::to_word(my_node)));
        ctx.store(&my_node->n_ops, std::uint64_t{0});
        spin_combining_done(ctx, last_reg, st);
        break;
      }
      ++st.cas_attempts;
      if (ctx.cas(&lrc_, rt::to_word(last_reg), rt::to_word(my_node))) {
        ctx.store(&my_node->n_ops, std::uint64_t{0});  // line 18
        spin_combining_done(ctx, last_reg, st);        // lines 19-20
        break;  // line 21
      }
      ++st.cas_failures;
    }

    // ---- combiner section: lines 23-43, in mutual exclusion ----
    obs::Span<Ctx> combine(ctx, "hyb.combine");
    ++st.tenures;
    const std::uint64_t retval = fn(ctx, obj_, arg);  // line 23
    ++st.ops;
    ++st.served;

    // Lines 25-28: drain the message queue while it is non-empty.
    if (opts_.eager_drain) {
      while (!ctx.queue_empty()) {
        serve_one(ctx, st);
        ++ops_completed;
      }
    }
    if (fixed_) {
      // Fig. 4a variant: equivalent to MAX_OPS = infinity; never depart.
      for (;;) {
        serve_one(ctx, st);
      }
    }

    // Line 30: close combining for new requests.
    explore_point(ctx, "hyb.close");
    std::uint64_t total_ops = ctx.exchange(&my_node->n_ops, max_ops_);
    if (total_ops > max_ops_) total_ops = max_ops_;  // lines 31-32

    // Lines 34-37: serve the remaining registered requests.
    while (ops_completed < total_ops) {
      serve_one(ctx, st);
      ++ops_completed;
    }

    // Lines 39-42: exchange our node with the spare, inform the next
    // combiner, and return. These run in mutual exclusion (footnote 3), so
    // plain read+write stands in for the paper's SWAP.
    explore_point(ctx, "hyb.depart");
    Node* spare = rt::from_word<Node>(ctx.load(&departed_));
    ctx.store(&departed_, rt::to_word(my_node));
    Node* old_node = my_node;
    my_node = spare;
    my_[tid].node = my_node;
    ctx.store(&my_node->combining_done, std::uint64_t{0});   // line 40
    ctx.store(&my_node->thread_id, std::uint64_t{tid});      // line 41
    ctx.store(&old_node->combining_done, std::uint64_t{1});  // line 42
    return retval;  // line 43
  }

  SyncStats& stats(Tid t) {
    check_tid(t, kMaxThreads, "HybComb::stats");
    return stats_[t].s;
  }

 private:
  // Line 2: Node{thread_id, n_ops, combining_done}. One cache line each;
  // n_ops is the FAA hot word.
  struct alignas(rt::kCacheLine) Node {
    Word thread_id{0};
    Word n_ops{0};
    Word combining_done{0};
    Word inflight{0};  ///< Section 6 per-combiner credits (max_inflight)
  };
  static_assert(sizeof(Node) == rt::kCacheLine);

  struct alignas(rt::kCacheLine) PerThread {
    Node* node = nullptr;
  };
  struct alignas(rt::kCacheLine) PaddedStats {
    SyncStats s;
  };

  /// Lines 19-20: wait for the predecessor combiner to depart, optionally
  /// detecting a stalled one (Options::stall_timeout).
  void spin_combining_done(Ctx& ctx, Node* pred, SyncStats& st) {
    if (opts_.stall_timeout == 0) {
      while (!ctx.load(&pred->combining_done)) ctx.cpu_relax();
      return;
    }
    Cycle t0 = ctx.now();
    while (!ctx.load(&pred->combining_done)) {
      if (ctx.now() - t0 >= opts_.stall_timeout) {
        ++st.stall_timeouts;
        // Coarse backoff: the predecessor is preempted/stalled, so burning
        // cycles polling its flag only adds contention on the line.
        ctx.compute(opts_.stall_timeout / 4 + 1);
        t0 = ctx.now();
      } else {
        ctx.cpu_relax();
      }
    }
  }

  /// Spin (through shared memory) until one of `node`'s in-flight credits
  /// is free. Liveness: the active combiner's registrants release credits
  /// as they are served, so the combiner is never starved of requests.
  void acquire_credit(Ctx& ctx, Node* node, SyncStats& st) {
    for (;;) {
      const std::uint64_t cur = ctx.load(&node->inflight);
      if (cur < opts_.max_inflight &&
          ctx.cas(&node->inflight, cur, cur + 1)) {
        return;
      }
      ++st.throttle_waits;
      ctx.cpu_relax();
    }
  }

  void serve_one(Ctx& ctx, SyncStats& st) {
    std::uint64_t m[3];  // {sender_id, fptr, fargs} — lines 26/35
    ctx.receive(m, 3);
    obs::Span<Ctx> cs(ctx, "hyb.cs");
    if (opts_.bug_drop_every != 0) [[unlikely]] {
      if (++bug_serves_ % opts_.bug_drop_every == 0) {
        // Seeded bug (Options::bug_drop_every): skip the CS, reply stale.
        ctx.send(static_cast<Tid>(m[0]), {bug_last_ret_});
        ++st.served;
        return;
      }
    }
    Fn f = rt::from_word<std::remove_pointer_t<Fn>>(m[1]);
    const std::uint64_t ret = f(ctx, obj_, m[2]);
    bug_last_ret_ = ret;
    ctx.send(static_cast<Tid>(m[0]), {ret});  // lines 27/36
    ++st.served;
  }

  void* obj_;
  std::uint64_t max_ops_;
  bool fixed_;
  Options opts_;
  std::unique_ptr<Node[]> pool_;
  alignas(rt::kCacheLine) Word lrc_{0};        ///< last_registered_combiner
  alignas(rt::kCacheLine) Word departed_{0};   ///< departed_combiner
  PerThread my_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
  // Seeded-bug state (Options::bug_drop_every); only touched inside the
  // combiner section, i.e. in mutual exclusion.
  std::uint64_t bug_serves_ = 0;
  std::uint64_t bug_last_ret_ = 0;
};

}  // namespace hmps::sync

file(REMOVE_RECURSE
  "CMakeFiles/abl_server_consolidation.dir/abl_server_consolidation.cpp.o"
  "CMakeFiles/abl_server_consolidation.dir/abl_server_consolidation.cpp.o.d"
  "abl_server_consolidation"
  "abl_server_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_server_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

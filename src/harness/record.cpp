#include "harness/record.hpp"

#include <algorithm>

#include "ds/counter.hpp"
#include "ds/elim_stack.hpp"
#include "ds/lcrq.hpp"
#include "ds/queue.hpp"
#include "ds/stack.hpp"
#include "runtime/sim_context.hpp"
#include "runtime/sim_executor.hpp"
#include "sim/perturb.hpp"
#include "sync/ccsynch.hpp"
#include "sync/dsm_synch.hpp"
#include "sync/flat_combining.hpp"
#include "sync/hsynch.hpp"
#include "sync/hybcomb.hpp"
#include "sync/locks.hpp"
#include "sync/mp_server.hpp"
#include "sync/mp_server_hub.hpp"
#include "sync/oyama.hpp"
#include "sync/sharded.hpp"
#include "sync/shm_server.hpp"
#include "sync/vlink_server.hpp"

namespace hmps::harness {

namespace {

using rt::SimCtx;
using rt::SimExecutor;

constexpr const char* kConstructionNames[kNumConstructions] = {
    "mp_server", "hybcomb", "shm_server", "ccsynch", "dsm_synch",
    "flat_combining", "hsynch", "oyama", "mcs_lock", "mp_server_hub",
    "sharded", "vlink"};

constexpr const char* kObjectNames[kNumObjects] = {
    "counter", "queue", "stack", "lcrq", "elim_stack"};

/// MCS lock as a degenerate universal construction: lock, run the CS
/// inline, unlock (the Section 3 baseline shape).
struct McsUc {
  sync::McsLock<SimCtx> lock;
  void* obj;
  std::uint64_t apply(SimCtx& ctx, sync::CsFn<SimCtx> fn, std::uint64_t arg) {
    lock.lock(ctx);
    const std::uint64_t r = fn(ctx, obj, arg);
    lock.unlock(ctx);
    return r;
  }
};

// ---- sharded fleet workload (docs/SHARDING.md) ----

/// Object-farm size for the sharded construction: dense ids [0, 8),
/// rendezvous-hashed over the shard fleet.
constexpr std::uint32_t kFarmObjects = 8;

/// The farm every shard CS body runs against. Per-object state starts on
/// its own cache line (the ds objects are alignas(kCacheLine)), so each
/// object is only ever touched by its home shard's serve fiber.
struct ShardFarm {
  ds::SeqCounter counters[kFarmObjects];
  ds::SeqQueue queues[kFarmObjects];
  ds::SeqStack stacks[kFarmObjects];
};

// Farm CS bodies: the argument packs (obj << 32 | arg32) per
// sync::ShardedServer::pack_obj_arg.
std::uint64_t farm_inc(SimCtx& ctx, void* o, std::uint64_t a) {
  auto* f = static_cast<ShardFarm*>(o);
  return ds::counter_inc<SimCtx>(ctx, &f->counters[(a >> 32) % kFarmObjects],
                                 0);
}
std::uint64_t farm_enq(SimCtx& ctx, void* o, std::uint64_t a) {
  auto* f = static_cast<ShardFarm*>(o);
  return ds::q_enqueue<SimCtx>(ctx, &f->queues[(a >> 32) % kFarmObjects],
                               a & 0xFFFFFFFFu);
}
std::uint64_t farm_deq(SimCtx& ctx, void* o, std::uint64_t a) {
  auto* f = static_cast<ShardFarm*>(o);
  return ds::q_dequeue<SimCtx>(ctx, &f->queues[(a >> 32) % kFarmObjects], 0);
}
std::uint64_t farm_push(SimCtx& ctx, void* o, std::uint64_t a) {
  auto* f = static_cast<ShardFarm*>(o);
  return ds::s_push<SimCtx>(ctx, &f->stacks[(a >> 32) % kFarmObjects],
                            a & 0xFFFFFFFFu);
}
std::uint64_t farm_pop(SimCtx& ctx, void* o, std::uint64_t a) {
  auto* f = static_cast<ShardFarm*>(o);
  return ds::s_pop<SimCtx>(ctx, &f->stacks[(a >> 32) % kFarmObjects], 0);
}

/// record_history for the sharded construction: `shards` serve fibers on
/// tids [0, shards), clients driving random farm objects — queue runs mix
/// in cross-shard queue_transfer ops, recorded as one deq + one enq record
/// sharing the transfer's invoke/response bracket (per-object checking in
/// src/check/explore.cpp relies on exactly that shape).
RecordResult record_sharded(const RecordCfg& cfg, sim::Perturber* perturber) {
  SimExecutor ex(cfg.params, cfg.seed);
  if (cfg.faults.enabled()) ex.machine().install_faults(cfg.faults);
  if (perturber != nullptr) ex.sched().set_perturber(perturber);

  const std::uint32_t shards = std::min<std::uint32_t>(
      std::max<std::uint32_t>(cfg.shards, 1),
      sync::ShardedServer<SimCtx>::kMaxShards);
  ShardFarm farm;
  sync::ShardedServer<SimCtx>::TransferHooks hooks{farm_deq, farm_enq};
  sync::ShardedServer<SimCtx> sh(shards, &farm, kFarmObjects, 0, hooks);

  RecordResult res;
  res.total_client_threads = cfg.threads;
  HistoryRecorder rec;

  for (std::uint32_t s = 0; s < shards; ++s) {
    ex.add_thread([&sh, s](SimCtx& ctx) { sh.serve(ctx, s); });
  }

  const std::uint32_t depth =
      cfg.async_depth >= 2 ? std::min<std::uint32_t>(cfg.async_depth, 16) : 0;

  // One drawn operation against the farm; returns up to two history
  // records (a moving transfer yields deq-on-src plus enq-on-dst).
  struct DrawnOp {
    bool transfer = false;
    std::uint32_t obj = 0;   ///< target (or transfer source)
    std::uint32_t dst = 0;   ///< transfer destination
    sync::CsFn<SimCtx> fn = nullptr;
    OpKind kind = OpKind::kInc;
    std::uint64_t arg = 0;
  };
  auto draw_op = [&](SimCtx& ctx, std::uint32_t i,
                     std::uint32_t k) -> DrawnOp {
    DrawnOp d;
    d.obj = static_cast<std::uint32_t>(ctx.rand_below(kFarmObjects));
    const bool produce = ctx.rand_below(1000) < cfg.produce_permille;
    const std::uint64_t val = ((static_cast<std::uint64_t>(i) & 0xFFFF) << 16) |
                              (k & 0xFFFF);
    switch (cfg.object) {
      case Object::kQueue:
        if (produce) {
          d.kind = OpKind::kEnq;
          d.fn = farm_enq;
          d.arg = val;
        } else if (ctx.rand_below(2) == 0 || d.obj + 1 >= kFarmObjects) {
          d.kind = OpKind::kDeq;
          d.fn = farm_deq;
        } else {
          // Transfers only move values to strictly higher-numbered
          // objects: a value's trajectory through the farm is acyclic, so
          // it enters each object's sub-history at most once — the queue
          // checker requires per-object unique enqueue values.
          d.transfer = true;
          d.kind = OpKind::kDeq;
          d.dst = d.obj + 1 +
                  static_cast<std::uint32_t>(
                      ctx.rand_below(kFarmObjects - d.obj - 1));
        }
        break;
      case Object::kStack:
        if (produce) {
          d.kind = OpKind::kPush;
          d.fn = farm_push;
          d.arg = val;
        } else {
          d.kind = OpKind::kPop;
          d.fn = farm_pop;
        }
        break;
      default:  // counter (clamp_cfg maps the direct structures away)
        d.kind = OpKind::kInc;
        d.fn = farm_inc;
        break;
    }
    return d;
  };
  // Completes the records of one drawn op from its result value.
  auto finish_op = [&](const DrawnOp& d, std::uint32_t i, Cycle invoke,
                       Cycle response, std::uint64_t ret) {
    OpRecord r;
    r.thread = i;
    r.obj = d.obj;
    r.kind = d.kind;
    r.arg = d.arg;
    r.invoke = invoke;
    r.response = response;
    if (d.transfer) {
      // deq half on the source object...
      r.ret = ret == sync::kTransferEmpty ? kNothing : ret;
      rec.record(r);
      if (ret == sync::kTransferEmpty) return;
      // ...and the delegated enq half on the destination.
      OpRecord e;
      e.thread = i;
      e.obj = d.dst;
      e.kind = OpKind::kEnq;
      e.arg = ret;
      e.ret = 0;
      e.invoke = invoke;
      e.response = response;
      rec.record(e);
      return;
    }
    switch (d.kind) {
      case OpKind::kEnq:
      case OpKind::kPush: r.ret = 0; break;
      case OpKind::kDeq:
        r.ret = ret == ds::kQEmpty ? kNothing : ret;
        break;
      case OpKind::kPop:
        r.ret = ret == ds::kStackEmpty ? kNothing : ret;
        break;
      default: r.ret = ret; break;
    }
    rec.record(r);
  };

  for (std::uint32_t i = 0; i < cfg.threads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      if (depth != 0) {
        // Async trains with reverse reaps, possibly spanning several
        // shards at once (the multi-shard ticket path under test).
        std::uint32_t k = 0;
        while (k < cfg.ops_each) {
          const std::uint32_t n = std::min(depth, cfg.ops_each - k);
          DrawnOp ops[16];
          sync::Ticket tickets[16];
          Cycle invokes[16];
          for (std::uint32_t j = 0; j < n; ++j, ++k) {
            ops[j] = draw_op(ctx, i, k);
            invokes[j] = ctx.now();
            tickets[j] = ops[j].transfer
                             ? sh.transfer_async(ctx, ops[j].obj, ops[j].dst)
                             : sh.apply_async(ctx, ops[j].fn, ops[j].obj,
                                              ops[j].arg);
          }
          for (std::uint32_t j = n; j-- > 0;) {
            const std::uint64_t ret = sh.wait(ctx, tickets[j]);
            finish_op(ops[j], i, invokes[j], ctx.now(), ret);
          }
          if (cfg.think_max > 0) {
            ctx.compute(ctx.rand_below(
                static_cast<std::uint32_t>(cfg.think_max) + 1));
          }
        }
      } else {
        for (std::uint32_t k = 0; k < cfg.ops_each; ++k) {
          const DrawnOp d = draw_op(ctx, i, k);
          const Cycle invoke = ctx.now();
          const std::uint64_t ret =
              d.transfer ? sh.queue_transfer(ctx, d.obj, d.dst)
                         : sh.apply(ctx, d.fn, d.obj, d.arg);
          finish_op(d, i, invoke, ctx.now(), ret);
          if (cfg.think_max > 0) {
            ctx.compute(ctx.rand_below(
                static_cast<std::uint32_t>(cfg.think_max) + 1));
          }
        }
      }
      ++res.finished_threads;
      if (res.finished_threads == cfg.threads) sh.request_stop(ctx);
    });
  }

  ex.run_until(cfg.horizon);
  if (perturber != nullptr) ex.sched().set_perturber(nullptr);

  res.completed = res.finished_threads == cfg.threads;
  res.end_time = ex.sched().now();
  res.history = rec.ops();
  return res;
}

}  // namespace

const char* to_string(Construction c) {
  return kConstructionNames[static_cast<std::uint8_t>(c)];
}

const char* to_string(Object o) {
  return kObjectNames[static_cast<std::uint8_t>(o)];
}

bool construction_from_string(std::string_view s, Construction* out) {
  for (std::uint32_t i = 0; i < kNumConstructions; ++i) {
    if (s == kConstructionNames[i]) {
      *out = static_cast<Construction>(i);
      return true;
    }
  }
  return false;
}

bool object_from_string(std::string_view s, Object* out) {
  for (std::uint32_t i = 0; i < kNumObjects; ++i) {
    if (s == kObjectNames[i]) {
      *out = static_cast<Object>(i);
      return true;
    }
  }
  return false;
}

bool uses_server(Construction c) {
  return c == Construction::kMpServer || c == Construction::kShmServer ||
         c == Construction::kMpServerHub || c == Construction::kSharded ||
         c == Construction::kVlink;
}

std::uint32_t server_threads(Construction c, std::uint32_t shards) {
  if (c == Construction::kSharded) return shards == 0 ? 1 : shards;
  return uses_server(c) ? 1 : 0;
}

bool supports_async(Construction c) {
  return c == Construction::kMpServer || c == Construction::kMpServerHub ||
         c == Construction::kShmServer || c == Construction::kHybComb ||
         c == Construction::kSharded || c == Construction::kVlink;
}

RecordResult record_history(const RecordCfg& cfg, sim::Perturber* perturber) {
  if (cfg.construction == Construction::kSharded) {
    return record_sharded(cfg, perturber);
  }
  SimExecutor ex(cfg.params, cfg.seed);
  if (cfg.faults.enabled()) ex.machine().install_faults(cfg.faults);
  if (perturber != nullptr) ex.sched().set_perturber(perturber);

  // The objects. Constructed up front regardless of which one runs (cheap,
  // and it keeps this function free of dynamic dispatch gymnastics).
  ds::SeqCounter counter;
  ds::SeqQueue queue(8192);
  ds::SeqStack stack(8192);
  ds::Lcrq<SimCtx> lcrq(5, 4096);
  ds::ElimStack<SimCtx> elim(256, 8, 64);

  void* obj = nullptr;
  switch (cfg.object) {
    case Object::kCounter: obj = &counter; break;
    case Object::kQueue: obj = &queue; break;
    case Object::kStack: obj = &stack; break;
    case Object::kLcrq:
    case Object::kElimStack: break;  // concurrent structures, no CS object
  }

  // The constructions (the server approaches use tid 0 as the server).
  sync::HybComb<SimCtx>::Options hopts;
  hopts.bug_drop_every = cfg.hyb_bug_drop_every;
  const std::uint32_t mo32 =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(cfg.max_ops, 1u << 30));
  sync::MpServer<SimCtx> mp(0, obj);
  sync::ShmServer<SimCtx> shm(0, obj, sync::ShmServer<SimCtx>::kMaxThreads,
                              cfg.async_depth);
  sync::HybComb<SimCtx> hyb(obj, cfg.max_ops, /*fixed_combiner=*/false, hopts);
  // The hub registers every CS body the driver can issue up front (its
  // Section 5.2 opcode interface requires registration before serve()).
  sync::MpServerHub<SimCtx> hub(0);
  const std::uint64_t op_inc = hub.add_op(ds::counter_inc<SimCtx>, obj);
  const std::uint64_t op_enq = hub.add_op(ds::q_enqueue<SimCtx>, obj);
  const std::uint64_t op_deq = hub.add_op(ds::q_dequeue<SimCtx>, obj);
  const std::uint64_t op_push = hub.add_op(ds::s_push<SimCtx>, obj);
  const std::uint64_t op_pop = hub.add_op(ds::s_pop<SimCtx>, obj);
  auto hub_opcode = [&](sync::CsFn<SimCtx> fn) -> std::uint64_t {
    if (fn == ds::counter_inc<SimCtx>) return op_inc;
    if (fn == ds::q_enqueue<SimCtx>) return op_enq;
    if (fn == ds::q_dequeue<SimCtx>) return op_deq;
    if (fn == ds::s_push<SimCtx>) return op_push;
    return op_pop;
  };
  sync::CcSynch<SimCtx> cc(obj, mo32);
  sync::DsmSynch<SimCtx> dsm(obj, mo32);
  sync::FlatCombining<SimCtx> fc(obj, sync::FlatCombining<SimCtx>::kMaxThreads,
                                 std::max<std::uint32_t>(1, mo32 / 2));
  sync::HSynch<SimCtx> hs(obj, mo32);
  sync::OyamaComb<SimCtx> oy(obj);
  McsUc mcs{{}, obj};
  sync::VlinkServer<SimCtx> vl(ex.machine().vlink(), /*server_core=*/0, obj);

  auto apply = [&](SimCtx& ctx, sync::CsFn<SimCtx> fn,
                   std::uint64_t arg) -> std::uint64_t {
    switch (cfg.construction) {
      case Construction::kMpServer: return mp.apply(ctx, fn, arg);
      case Construction::kHybComb: return hyb.apply(ctx, fn, arg);
      case Construction::kShmServer: return shm.apply(ctx, fn, arg);
      case Construction::kCcSynch: return cc.apply(ctx, fn, arg);
      case Construction::kDsmSynch: return dsm.apply(ctx, fn, arg);
      case Construction::kFlatCombining: return fc.apply(ctx, fn, arg);
      case Construction::kHSynch: return hs.apply(ctx, fn, arg);
      case Construction::kOyama: return oy.apply(ctx, fn, arg);
      case Construction::kMcsLock: return mcs.apply(ctx, fn, arg);
      case Construction::kMpServerHub:
        return hub.apply(ctx, hub_opcode(fn), arg);
      case Construction::kVlink: return vl.apply(ctx, fn, arg);
      case Construction::kSharded: break;  // handled by record_sharded()
    }
    return 0;
  };

  // Async ticket dispatch (constructions without the API complete inline,
  // so a depth-configured run over e.g. ccsynch degrades to synchronous).
  auto issue_async = [&](SimCtx& ctx, sync::CsFn<SimCtx> fn,
                         std::uint64_t arg) -> sync::Ticket {
    switch (cfg.construction) {
      case Construction::kMpServer: return mp.apply_async(ctx, fn, arg);
      case Construction::kHybComb: return hyb.apply_async(ctx, fn, arg);
      case Construction::kShmServer: return shm.apply_async(ctx, fn, arg);
      case Construction::kMpServerHub:
        return hub.apply_async(ctx, hub_opcode(fn), arg);
      case Construction::kVlink: return vl.apply_async(ctx, fn, arg);
      default: return sync::Ticket{0, apply(ctx, fn, arg), 0};
    }
  };
  auto reap = [&](SimCtx& ctx, sync::Ticket& t) -> std::uint64_t {
    switch (cfg.construction) {
      case Construction::kMpServer: return mp.wait(ctx, t);
      case Construction::kHybComb: return hyb.wait(ctx, t);
      case Construction::kShmServer: return shm.wait(ctx, t);
      case Construction::kMpServerHub: return hub.wait(ctx, t);
      case Construction::kVlink: return vl.wait(ctx, t);
      default: return t.value;
    }
  };

  const bool direct =
      cfg.object == Object::kLcrq || cfg.object == Object::kElimStack;
  const bool server = !direct && uses_server(cfg.construction);

  RecordResult res;
  res.total_client_threads = cfg.threads;
  HistoryRecorder rec;

  if (server) {
    ex.add_thread([&](SimCtx& ctx) {
      if (cfg.construction == Construction::kMpServer) {
        mp.serve(ctx);
      } else if (cfg.construction == Construction::kMpServerHub) {
        hub.serve(ctx);
      } else if (cfg.construction == Construction::kVlink) {
        vl.serve(ctx);
      } else {
        shm.serve(ctx);
      }
    });
  }

  // Async recording mode: issue `depth`-sized trains of tickets, then reap
  // them in REVERSE order (deliberately exercising the out-of-order staging
  // path). Invocation is recorded at issue, response at reap, so the
  // interval brackets the linearization point: the CS runs after the send
  // and its reply arrives before the reap returns.
  const std::uint32_t depth =
      (!direct && supports_async(cfg.construction) && cfg.async_depth >= 2)
          ? std::min<std::uint32_t>(cfg.async_depth, 16)
          : 0;
  auto run_async_client = [&](SimCtx& ctx, std::uint32_t i) {
    std::uint32_t k = 0;
    while (k < cfg.ops_each) {
      const std::uint32_t n = std::min(depth, cfg.ops_each - k);
      OpRecord recs[16];
      sync::Ticket tickets[16];
      for (std::uint32_t j = 0; j < n; ++j, ++k) {
        OpRecord& r = recs[j];
        r.thread = i;
        const bool produce = ctx.rand_below(1000) < cfg.produce_permille;
        sync::CsFn<SimCtx> fn = nullptr;
        std::uint64_t arg = 0;
        switch (cfg.object) {
          case Object::kCounter:
            r.kind = OpKind::kInc;
            fn = ds::counter_inc<SimCtx>;
            break;
          case Object::kQueue:
            if (produce) {
              r.kind = OpKind::kEnq;
              r.arg = (static_cast<std::uint64_t>(i) << 32) | k;
              arg = r.arg;
              fn = ds::q_enqueue<SimCtx>;
            } else {
              r.kind = OpKind::kDeq;
              fn = ds::q_dequeue<SimCtx>;
            }
            break;
          case Object::kStack:
            if (produce) {
              r.kind = OpKind::kPush;
              r.arg = (static_cast<std::uint64_t>(i) << 32) | k;
              arg = r.arg;
              fn = ds::s_push<SimCtx>;
            } else {
              r.kind = OpKind::kPop;
              fn = ds::s_pop<SimCtx>;
            }
            break;
          case Object::kLcrq:
          case Object::kElimStack:
            break;  // unreachable: direct objects never run async
        }
        r.invoke = ctx.now();
        tickets[j] = issue_async(ctx, fn, arg);
      }
      for (std::uint32_t j = n; j-- > 0;) {
        OpRecord& r = recs[j];
        r.ret = reap(ctx, tickets[j]);
        if (r.kind == OpKind::kEnq || r.kind == OpKind::kPush) r.ret = 0;
        if (r.kind == OpKind::kDeq && r.ret == ds::kQEmpty) r.ret = kNothing;
        if (r.kind == OpKind::kPop && r.ret == ds::kStackEmpty) {
          r.ret = kNothing;
        }
        r.response = ctx.now();
        rec.record(r);
      }
      if (cfg.think_max > 0) {
        ctx.compute(ctx.rand_below(
            static_cast<std::uint32_t>(cfg.think_max) + 1));
      }
    }
  };

  for (std::uint32_t i = 0; i < cfg.threads; ++i) {
    ex.add_thread([&, i](SimCtx& ctx) {
      if (depth != 0) {
        run_async_client(ctx, i);
        ++res.finished_threads;
        if (res.finished_threads == cfg.threads && server) {
          if (cfg.construction == Construction::kMpServer) {
            mp.request_stop(ctx);
          } else if (cfg.construction == Construction::kMpServerHub) {
            hub.request_stop(ctx);
          } else if (cfg.construction == Construction::kVlink) {
            vl.request_stop(ctx);
          } else {
            shm.request_stop(ctx);
          }
        }
        return;
      }
      for (std::uint32_t k = 0; k < cfg.ops_each; ++k) {
        OpRecord r;
        r.thread = i;
        r.invoke = ctx.now();
        const bool produce =
            ctx.rand_below(1000) < cfg.produce_permille;
        switch (cfg.object) {
          case Object::kCounter:
            r.kind = OpKind::kInc;
            r.ret = apply(ctx, ds::counter_inc<SimCtx>, 0);
            break;
          case Object::kQueue:
            if (produce) {
              r.kind = OpKind::kEnq;
              r.arg = (static_cast<std::uint64_t>(i) << 32) | k;
              r.ret = 0;
              apply(ctx, ds::q_enqueue<SimCtx>, r.arg);
            } else {
              r.kind = OpKind::kDeq;
              r.ret = apply(ctx, ds::q_dequeue<SimCtx>, 0);
              if (r.ret == ds::kQEmpty) r.ret = kNothing;
            }
            break;
          case Object::kStack:
            if (produce) {
              r.kind = OpKind::kPush;
              r.arg = (static_cast<std::uint64_t>(i) << 32) | k;
              r.ret = 0;
              apply(ctx, ds::s_push<SimCtx>, r.arg);
            } else {
              r.kind = OpKind::kPop;
              r.ret = apply(ctx, ds::s_pop<SimCtx>, 0);
              if (r.ret == ds::kStackEmpty) r.ret = kNothing;
            }
            break;
          case Object::kLcrq:
            if (produce) {
              r.kind = OpKind::kEnq;
              r.arg = ((static_cast<std::uint64_t>(i) & 0x7FFF) << 16) | k;
              r.ret = 0;
              lcrq.enqueue(ctx, static_cast<std::uint32_t>(r.arg));
            } else {
              r.kind = OpKind::kDeq;
              const std::uint32_t v = lcrq.dequeue(ctx);
              r.ret = v == ds::kLcrqEmpty ? kNothing : v;
            }
            break;
          case Object::kElimStack:
            if (produce) {
              r.kind = OpKind::kPush;
              r.arg = ((static_cast<std::uint64_t>(i) & 0x7FFF) << 16) | k;
              r.ret = 0;
              elim.push(ctx, static_cast<std::uint32_t>(r.arg));
            } else {
              r.kind = OpKind::kPop;
              r.ret = elim.pop(ctx);
              if (r.ret == ds::kStackEmpty) r.ret = kNothing;
            }
            break;
        }
        r.response = ctx.now();
        rec.record(r);
        if (cfg.think_max > 0) {
          ctx.compute(ctx.rand_below(
              static_cast<std::uint32_t>(cfg.think_max) + 1));
        }
      }
      ++res.finished_threads;
      if (res.finished_threads == cfg.threads && server) {
        if (cfg.construction == Construction::kMpServer) {
          mp.request_stop(ctx);
        } else if (cfg.construction == Construction::kMpServerHub) {
          hub.request_stop(ctx);
        } else if (cfg.construction == Construction::kVlink) {
          vl.request_stop(ctx);
        } else {
          shm.request_stop(ctx);
        }
      }
    });
  }

  ex.run_until(cfg.horizon);
  // Detach the perturber before teardown so no stale pointer survives the
  // scenario (the executor dies with this frame anyway; belt and braces).
  if (perturber != nullptr) ex.sched().set_perturber(nullptr);

  res.completed = res.finished_threads == cfg.threads;
  res.end_time = ex.sched().now();
  res.history = rec.ops();
  return res;
}

}  // namespace hmps::harness

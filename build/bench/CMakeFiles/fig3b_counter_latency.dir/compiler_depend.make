# Empty compiler generated dependencies file for fig3b_counter_latency.
# This may be replaced when dependencies are built.

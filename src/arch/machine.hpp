// The simulated hybrid manycore: topology + coherence + memory controllers
// + hardware message passing + per-core state, all driven by one scheduler.
#pragma once

#include <memory>
#include <vector>

#include "arch/coherence.hpp"
#include "arch/core.hpp"
#include "arch/params.hpp"
#include "arch/topology.hpp"
#include "arch/udn.hpp"
#include "arch/vlink.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace hmps::arch {

class Machine {
 public:
  explicit Machine(MachineParams params)
      : params_(std::move(params)),
        faults_(sched_),
        topo_(params_),
        coh_(params_, topo_),
        udn_(params_, topo_, sched_),
        vlink_(params_, topo_, sched_, udn_.noc()),
        cores_(topo_.cores()) {
    // The tracer pointer is one branch on the UDN send path; flow events
    // are only recorded while the tracer is enabled.
    udn_.attach_tracer(&tracer_);
    // Pre-size the event heap from the machine shape: each core keeps at
    // most a few engine events in flight (a pending resume, a UDN delivery,
    // a model timer), and same-cycle bursts are bounded by the core count.
    // A pre-sized queue runs its steady state with zero heap growth
    // (EngineCounters::heap_grows; asserted by bench/engine_micro.cpp).
    const std::size_t n = static_cast<std::size_t>(topo_.cores()) * 8 + 64;
    sched_.reserve_events(n, topo_.cores() + 8);
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineParams& params() const { return params_; }
  const MeshTopology& topo() const { return topo_; }
  CoherenceModel& coherence() { return coh_; }
  UdnModel& udn() { return udn_; }
  VlinkFabric& vlink() { return vlink_; }
  sim::Scheduler& sched() { return sched_; }
  sim::Tracer& tracer() { return tracer_; }
  sim::FaultInjector& faults() { return faults_; }
  const sim::FaultInjector& faults() const { return faults_; }

  /// Installs a fault plan and hooks the injector into the UDN/NoC models.
  /// Call before the simulation starts; a plan with nothing enabled leaves
  /// every model path byte-identical to a plain run.
  void install_faults(const sim::FaultPlan& plan) {
    udn_.attach_faults(&faults_);
    vlink_.attach_faults(&faults_);
    faults_.install(plan, cores());
  }

  CoreState& core(sim::Tid c) { return cores_[c]; }
  const CoreState& core(sim::Tid c) const { return cores_[c]; }
  std::uint32_t cores() const { return topo_.cores(); }

  /// Zeroes all per-window counters (core accounting + model counters)
  /// without touching functional state, so a measurement can start after
  /// warmup.
  void reset_window_counters() {
    for (auto& c : cores_) c.reset_window(sched_.now());
    coh_.reset_counters();
    udn_.reset_counters();
    vlink_.reset_counters();
  }

  /// Idle-fills every core's cycle account up to the current simulated
  /// time, so per-core buckets sum to elapsed cycles. Call before reading
  /// accounts at a window boundary.
  void settle_accounts() {
    const sim::Cycle t = sched_.now();
    for (auto& c : cores_) c.account.settle(t);
  }

  /// Closes every core's account at run teardown. Unlike settle_accounts()
  /// this takes the intended end-of-run time: Scheduler::run(horizon)
  /// returns early when the event queue drains (open-loop runs where every
  /// client is suspended awaiting arrivals), so sched().now() can sit
  /// before the horizon and the tail [now, horizon) would never be
  /// idle-filled — under-counting idle on cores that went quiet, and
  /// leaving a never-worked core's account empty instead of all-idle.
  void finalize_accounts(sim::Cycle run_end) {
    const sim::Cycle t = run_end > sched_.now() ? run_end : sched_.now();
    for (auto& c : cores_) c.account.finalize(t);
  }

 private:
  MachineParams params_;
  sim::Tracer tracer_;
  sim::Scheduler sched_;
  sim::FaultInjector faults_;
  MeshTopology topo_;
  CoherenceModel coh_;
  UdnModel udn_;
  VlinkFabric vlink_;
  std::vector<CoreState> cores_;
};

}  // namespace hmps::arch

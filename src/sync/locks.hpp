// Classic mutual-exclusion locks (paper Section 3 context): test-and-set,
// test-and-test-and-set, ticket, MCS and CLH queue locks. The queue locks
// spin locally and achieve O(1) RMRs per acquisition — yet still move the
// CS data to the acquiring core, which is exactly the locality cost the
// server/combiner approaches avoid. Used by the ablation benches.
#pragma once

#include <cstdint>
#include <memory>

#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::sync {

inline constexpr std::uint32_t kMaxLockThreads = 64;

/// Test-and-set spinlock (SWAP-based).
template <class Ctx>
class TasLock {
 public:
  void lock(Ctx& ctx) {
    while (ctx.exchange(&flag_, std::uint64_t{1}) != 0) ctx.cpu_relax();
  }
  void unlock(Ctx& ctx) { ctx.store(&flag_, std::uint64_t{0}); }

 private:
  alignas(rt::kCacheLine) Word flag_{0};
};

/// Test-and-test-and-set: spin on a read (cache-local) before the SWAP.
template <class Ctx>
class TtasLock {
 public:
  void lock(Ctx& ctx) {
    for (;;) {
      while (ctx.load(&flag_) != 0) ctx.cpu_relax();
      if (ctx.exchange(&flag_, std::uint64_t{1}) == 0) return;
    }
  }
  void unlock(Ctx& ctx) { ctx.store(&flag_, std::uint64_t{0}); }

 private:
  alignas(rt::kCacheLine) Word flag_{0};
};

/// Ticket lock: FIFO-fair, but all waiters spin on one serving word.
template <class Ctx>
class TicketLock {
 public:
  void lock(Ctx& ctx) {
    const std::uint64_t t = ctx.faa(&next_, 1);
    tickets_[ctx.tid()].v = t;
    while (ctx.load(&serving_) != t) ctx.cpu_relax();
  }
  void unlock(Ctx& ctx) {
    ctx.store(&serving_, tickets_[ctx.tid()].v + 1);
  }

 private:
  struct alignas(rt::kCacheLine) PerThread {
    std::uint64_t v = 0;
  };
  alignas(rt::kCacheLine) Word next_{0};
  alignas(rt::kCacheLine) Word serving_{0};
  PerThread tickets_[kMaxLockThreads];
};

/// MCS queue lock: local spinning on a per-thread queue node.
template <class Ctx>
class McsLock {
 public:
  void lock(Ctx& ctx) {
    QNode* my = &nodes_[ctx.tid()];
    ctx.store(&my->next, std::uint64_t{0});
    QNode* pred = rt::from_word<QNode>(ctx.exchange(&tail_, rt::to_word(my)));
    if (pred != nullptr) {
      ctx.store(&my->locked, std::uint64_t{1});
      ctx.store(&pred->next, rt::to_word(my));
      while (ctx.load(&my->locked)) ctx.cpu_relax();
    }
  }

  void unlock(Ctx& ctx) {
    QNode* my = &nodes_[ctx.tid()];
    if (ctx.load(&my->next) == 0) {
      if (ctx.cas(&tail_, rt::to_word(my), std::uint64_t{0})) return;
      while (ctx.load(&my->next) == 0) ctx.cpu_relax();
    }
    QNode* next = rt::from_word<QNode>(ctx.load(&my->next));
    ctx.store(&next->locked, std::uint64_t{0});
  }

 private:
  struct alignas(rt::kCacheLine) QNode {
    Word next{0};
    Word locked{0};
  };
  alignas(rt::kCacheLine) Word tail_{0};
  QNode nodes_[kMaxLockThreads];
};

/// CLH queue lock: local spinning on the predecessor's node.
template <class Ctx>
class ClhLock {
 public:
  ClhLock() {
    // One spare node; each thread starts owning its own node.
    for (std::uint32_t t = 0; t <= kMaxLockThreads; ++t) {
      pool_[t].locked.store(0, std::memory_order_relaxed);
    }
    tail_.store(rt::to_word(&pool_[kMaxLockThreads]),
                std::memory_order_relaxed);
    for (std::uint32_t t = 0; t < kMaxLockThreads; ++t) {
      mine_[t].node = &pool_[t];
    }
  }

  void lock(Ctx& ctx) {
    const Tid tid = ctx.tid();
    QNode* my = mine_[tid].node;
    ctx.store(&my->locked, std::uint64_t{1});
    QNode* pred = rt::from_word<QNode>(ctx.exchange(&tail_, rt::to_word(my)));
    mine_[tid].pred = pred;
    while (ctx.load(&pred->locked)) ctx.cpu_relax();
  }

  void unlock(Ctx& ctx) {
    const Tid tid = ctx.tid();
    ctx.store(&mine_[tid].node->locked, std::uint64_t{0});
    mine_[tid].node = mine_[tid].pred;  // recycle the predecessor's node
  }

 private:
  struct alignas(rt::kCacheLine) QNode {
    Word locked{0};
  };
  struct alignas(rt::kCacheLine) PerThread {
    QNode* node = nullptr;
    QNode* pred = nullptr;
  };
  alignas(rt::kCacheLine) Word tail_{0};
  QNode pool_[kMaxLockThreads + 1];
  PerThread mine_[kMaxLockThreads];
};

}  // namespace hmps::sync

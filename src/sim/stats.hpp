// Lightweight statistics containers used throughout the simulator and the
// benchmark harness: streaming summaries and fixed-bucket histograms.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace hmps::sim {

/// Self-counters of the discrete-event engine (see docs/ENGINE.md). The
/// event queue updates these on every schedule/pop; they are cheap enough to
/// keep on unconditionally and let tests assert the zero-allocation contract
/// instead of taking it on faith.
struct EngineCounters {
  std::uint64_t scheduled = 0;      ///< events ever pushed
  std::uint64_t executed = 0;       ///< events ever popped
  std::uint64_t spill_allocs = 0;   ///< callbacks too big for inline storage
  std::uint64_t heap_grows = 0;     ///< reallocations of the heap array
  std::uint64_t peak_depth = 0;     ///< max simultaneous pending events
  std::uint64_t fast_forwards = 0;  ///< waits satisfied without an event
};

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
class Summary {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Exact running sum (not reconstructed from the mean, which loses bits
  /// once n * mean exceeds the significand).
  double sum() const { return sum_; }

  void merge(const Summary& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double n1 = static_cast<double>(n_), n2 = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    mean_ = (n1 * mean_ + n2 * o.mean_) / (n1 + n2);
    m2_ += o.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Histogram over [0, bucket_width * nbuckets) with an overflow bucket;
/// supports approximate quantiles, good enough for latency reporting.
class Histogram {
 public:
  Histogram(std::uint64_t bucket_width, std::size_t nbuckets)
      : width_(bucket_width ? bucket_width : 1), buckets_(nbuckets + 1, 0) {}

  void add(std::uint64_t x) {
    std::size_t b = static_cast<std::size_t>(x / width_);
    if (b >= buckets_.size() - 1) b = buckets_.size() - 1;
    ++buckets_[b];
    ++total_;
    summary_.add(static_cast<double>(x));
  }

  std::uint64_t count() const { return total_; }
  const Summary& summary() const { return summary_; }

  /// Approximate quantile (bucket upper bound). q in [0,1].
  std::uint64_t quantile(double q) const {
    if (total_ == 0) return 0;
    const std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      seen += buckets_[b];
      if (seen > target) return (b + 1) * width_;
    }
    return buckets_.size() * width_;
  }

 private:
  std::uint64_t width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  Summary summary_;
};

/// Deterministic sample reservoir for tail quantiles (p99/p999): exact as
/// long as the sample count stays within capacity, and deterministic —
/// never randomized — beyond it, so two runs with the same seed produce
/// byte-identical quantiles (the property every artifact test in this repo
/// leans on; a classic randomized reservoir would need its own RNG stream
/// threaded everywhere).
///
/// Overflow policy: when full, the reservoir halves itself by keeping every
/// other sample (in arrival order) and from then on accepts every 2^k-th
/// arrival. This is systematic decimation: the kept subsequence is an
/// unbiased arrival-ordered thinning, which preserves quantiles of
/// stationary streams and keeps periodic structure visible. Capacity
/// defaults high enough that service benches stay exact.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity = 1 << 16)
      : cap_(capacity < 2 ? 2 : capacity) {}

  void add(std::uint64_t x) {
    summary_.add(static_cast<double>(x));
    ++seen_;
    if (stride_ > 1 && (seen_ - 1) % stride_ != 0) return;
    if (v_.size() == cap_) {
      // Halve: keep arrivals 0, 2stride, 4stride, ... (every other kept one).
      std::size_t w = 0;
      for (std::size_t i = 0; i < v_.size(); i += 2) v_[w++] = v_[i];
      v_.resize(w);
      stride_ *= 2;
      if ((seen_ - 1) % stride_ != 0) return;
    }
    v_.push_back(x);
  }

  std::uint64_t count() const { return seen_; }
  std::size_t kept() const { return v_.size(); }
  const Summary& summary() const { return summary_; }

  /// Exact quantile over the kept samples: sorted copy, linear
  /// interpolation between adjacent order statistics (the R type-7 /
  /// NumPy default definition). q in [0,1]; q=0.999 is the p999 the
  /// service harness reports.
  ///
  /// Interpolation, not nearest-rank rounding: rounding the rank q*(n-1)
  /// and rounding the decimated rank q*(n/2^k - 1) disagree whenever the
  /// fractional rank falls in [0.25, 0.5) — an off-by-one-sample error
  /// that appears the moment the reservoir first halves, i.e. at exactly
  /// 2^16 + 1 arrivals with the default capacity. Interpolated quantiles
  /// of a stride-decimated stream match the interpolated quantiles of the
  /// full offline sort (tests/test_service.cpp pins the boundary).
  std::uint64_t quantile(double q) const {
    if (v_.empty()) return 0;
    std::vector<std::uint64_t> s(v_);
    std::sort(s.begin(), s.end());
    double r = q * static_cast<double>(s.size() - 1);
    if (r < 0) r = 0;
    const std::size_t i = static_cast<std::size_t>(r);
    if (i >= s.size() - 1) return s.back();
    const double frac = r - static_cast<double>(i);
    const double lo = static_cast<double>(s[i]);
    const double hi = static_cast<double>(s[i + 1]);
    return static_cast<std::uint64_t>(lo + (hi - lo) * frac);
  }

  void merge(const Reservoir& o) {
    // Merge keeps it simple: append o's kept samples (callers merge
    // same-stride per-thread reservoirs well under capacity).
    summary_.merge(o.summary_);
    seen_ += o.seen_;
    v_.insert(v_.end(), o.v_.begin(), o.v_.end());
  }

 private:
  std::size_t cap_;
  std::uint64_t seen_ = 0;
  std::uint64_t stride_ = 1;
  std::vector<std::uint64_t> v_;
  Summary summary_;
};

}  // namespace hmps::sim

// Cooperative fibers (stackful coroutines).
//
// Each simulated hardware thread runs as one fiber; the discrete-event
// scheduler switches between fibers on a single host thread, which is what
// makes the whole simulation deterministic and data-race-free by
// construction.
//
// On x86-64 ELF targets the switch is a hand-rolled, ABI-minimal context
// swap (callee-saved registers only — no kernel entry); everywhere else it
// falls back to POSIX ucontext, whose swapcontext pays a signal-mask syscall
// pair per switch. Fiber stacks are recycled through a thread-local pool so
// steady-state fiber creation allocates nothing. See docs/ENGINE.md.
//
// Lifetime note: a simulation window may end while fibers are blocked
// (e.g. in a message receive). Such fibers are never resumed again and their
// stack frames are reclaimed WITHOUT unwinding — destructors of locals on a
// blocked fiber's stack do not run. Simulation code therefore keeps only
// trivially-destructible state (or state owned outside the fiber) on fiber
// stacks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#if !(defined(__x86_64__) && defined(__ELF__))
#define HMPS_FIBER_UCONTEXT 1
#include <ucontext.h>
#else
#define HMPS_FIBER_UCONTEXT 0
#endif

#if defined(__SANITIZE_ADDRESS__)
#define HMPS_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HMPS_FIBER_ASAN 1
#endif
#endif
#ifndef HMPS_FIBER_ASAN
#define HMPS_FIBER_ASAN 0
#endif

#if !HMPS_FIBER_UCONTEXT
extern "C" void hmps_fiber_entry();
#endif

namespace hmps::sim {

class Fiber {
 public:
  enum class State { kReady, kRunning, kBlocked, kFinished };

  /// `fn` is the fiber body; it runs when the fiber is first resumed.
  Fiber(std::function<void()> fn, std::size_t stack_bytes = kDefaultStack);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  /// Transfers control from the calling (host/scheduler) context into the
  /// fiber. Returns when the fiber yields or finishes.
  void resume();

  /// Transfers control from inside the fiber back to whoever resumed it.
  /// Must only be called on the currently running fiber.
  void yield();

  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }

  void set_state(State s) { state_ = s; }

  static constexpr std::size_t kDefaultStack = 256 * 1024;

  /// Stacks reused from the thread-local pool instead of freshly allocated
  /// (observability for the zero-allocation tests and BENCH_engine.json).
  static std::uint64_t stack_pool_hits();

 private:
#if !HMPS_FIBER_UCONTEXT
  friend void ::hmps_fiber_entry();
#endif

  static void trampoline();

  std::function<void()> fn_;
  char* stack_;  ///< owned; recycled through a thread-local stack pool
  std::size_t stack_bytes_;
#if HMPS_FIBER_UCONTEXT
  ucontext_t ctx_{};
  ucontext_t caller_{};
#else
  void* ctx_sp_ = nullptr;     ///< fiber's parked stack pointer
  void* caller_sp_ = nullptr;  ///< resumer's parked stack pointer
#if HMPS_FIBER_ASAN
  void* asan_fake_ = nullptr;
  const void* asan_caller_bottom_ = nullptr;
  std::size_t asan_caller_size_ = 0;
#endif
#endif
  State state_ = State::kReady;
  bool started_ = false;
};

}  // namespace hmps::sim

file(REMOVE_RECURSE
  "CMakeFiles/hmps_harness.dir/history.cpp.o"
  "CMakeFiles/hmps_harness.dir/history.cpp.o.d"
  "CMakeFiles/hmps_harness.dir/report.cpp.o"
  "CMakeFiles/hmps_harness.dir/report.cpp.o.d"
  "CMakeFiles/hmps_harness.dir/workload.cpp.o"
  "CMakeFiles/hmps_harness.dir/workload.cpp.o.d"
  "libhmps_harness.a"
  "libhmps_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmps_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence): two events scheduled for
// the same cycle fire in the order they were scheduled. This total order is
// what makes whole simulations bit-reproducible across runs.
//
// Engine hot path: every simulated cycle flows through schedule()/pop(), so
// events avoid the heap entirely in steady state. Callbacks live inline in
// pooled slots (EventFn below, 48 bytes of storage — every callback the
// simulator itself schedules fits) and NEVER move while pending; ordering is
// done on small POD nodes (time, seq, slot index) by a bucket timing wheel
// with an overflow heap (see EventQueue below), giving O(1) schedule and pop
// for the near-term deltas cycle-level models produce. Slots are recycled
// through a free list; once pool, buckets, and heap have grown to the
// high-water mark of a run, scheduling allocates nothing. EngineCounters
// (sim/stats.hpp) track the two escape hatches — oversized callbacks
// spilling to the heap and pool growth — so tests can assert the
// zero-allocation contract instead of assuming it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace hmps::sim {

/// Move-only callable with small-buffer storage, sized so every callback on
/// the simulator's critical path (fiber resumes, UDN deliveries, model
/// timers) stays inline. Larger callables still work; they spill to a heap
/// allocation, which the event queue counts.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  template <class F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= kInlineBytes &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  EventFn() = default;

  template <class F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>, int> = 0>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Constructs the callable directly in this object's storage (destroying
  /// any current one) — the hot path uses this to build callbacks in their
  /// pool slot with no temporary and no relocate call.
  template <class F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if (ops_ && ops_->destroy) ops_->destroy(buf_);
    if constexpr (fits_inline<F> && std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      // The common case: captures are pointers and integers. Null
      // relocate/destroy mark "move = memcpy, destroy = no-op", so the only
      // indirect call such an event ever pays is the invoke itself.
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kTrivialOps<D>;
    } else if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_) {
      if (ops_->relocate == nullptr) {
        __builtin_memcpy(buf_, o.buf_, kInlineBytes);
      } else {
        ops_->relocate(buf_, o.buf_);
      }
      o.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      if (ops_ && ops_->destroy) ops_->destroy(buf_);
      ops_ = o.ops_;
      if (ops_) {
        if (ops_->relocate == nullptr) {
          __builtin_memcpy(buf_, o.buf_, kInlineBytes);
        } else {
          ops_->relocate(buf_, o.buf_);
        }
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  ~EventFn() {
    if (ops_ && ops_->destroy) ops_->destroy(buf_);
  }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable at `dst` from `src` and destroys `src`.
    /// nullptr means "memcpy the whole buffer" (trivially-copyable inline).
    void (*relocate)(void* dst, void* src);
    /// nullptr means "no-op" (trivially-destructible inline).
    void (*destroy)(void*);
  };

  template <class D>
  static constexpr Ops kTrivialOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      nullptr,
      nullptr,
  };

  template <class D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <class D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**reinterpret_cast<D**>(p))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* p) { delete *reinterpret_cast<D**>(p); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Bucket timing wheel with an overflow heap.
///
/// Near-term events (delta < kWheel cycles, i.e. essentially everything a
/// cycle-level model schedules) go into the wheel bucket `time % kWheel` in
/// O(1). Because simulated time is monotonic and every wheel entry satisfied
/// `t - now < kWheel` when inserted, all live entries of one bucket share a
/// single time value — so a bucket stores that time once plus a plain FIFO
/// of 4-byte pool-slot indices, and its append order IS seq order. Far-future
/// events go to a small 4-ary min-heap and compete with the wheel head by
/// time at pop; on a tie the overflow entry wins, which is exactly the
/// (time, seq) order (see pop_until), so the global total order is preserved
/// bit-for-bit. An occupancy bitmap makes "find the next non-empty bucket" a
/// couple of word scans, and a cached cursor to that bucket makes draining
/// same-cycle runs of events skip the scan entirely.
class EventQueue {
 public:
  using Callback = EventFn;

  /// Queue entries are 32-bit: either a pool-slot index (callback events)
  /// or kResumeTag | fiber id (fiber resumes, which carry no callable at
  /// all — see schedule_resume). The tag bit is what lets the scheduler's
  /// dominant event class skip the callable pool on both ends.
  static constexpr std::uint32_t kResumeTag = 0x8000'0000u;
  /// pop_entry() result when the earliest event lies past the horizon.
  static constexpr std::uint32_t kNoEvent = ~std::uint32_t{0};

  static bool is_resume(std::uint32_t entry) {
    return (entry & kResumeTag) != 0;
  }
  static std::uint32_t resume_fiber(std::uint32_t entry) {
    return entry & ~kResumeTag;
  }

  /// Schedules `cb` to fire at absolute time `t`. A `t` earlier than the
  /// last popped event's time fires "now" (the scheduler never passes one).
  template <class F>
  void schedule(Cycle t, F&& cb) {
    if constexpr (!EventFn::fits_inline<F>) ++counters_.spill_allocs;
    if (t < floor_) t = floor_;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if (pool_.size() == pool_.capacity()) ++counters_.heap_grows;
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    pool_[slot].emplace(std::forward<F>(cb));
    place(t, slot);
  }

  /// Schedules a fiber resume at absolute time `t`. The entry IS the fiber
  /// id (tagged) — no callable is constructed, stored, moved, or invoked,
  /// which matters because resumes are the engine's dominant event class.
  /// Resume entries are only popped via pop_entry(); pop_until()/pop() must
  /// not be used on a queue that holds them.
  void schedule_resume(Cycle t, std::uint32_t fiber_id) {
    if (t < floor_) t = floor_;
    place(t, kResumeTag | fiber_id);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest pending event. Precondition: !empty().
  Cycle next_time() const {
    Cycle t = kCycleMax;
    if (wheel_count_ > 0) t = buckets_[locate_min_bucket()].time;
    if (!overflow_.empty() && overflow_.front().time < t) {
      t = overflow_.front().time;
    }
    return t;
  }

  /// If no pending event fires at or before `t`, advances the queue's time
  /// floor to `t` and returns true: the caller may move the clock straight
  /// to `t` without a schedule/pop round trip, because nothing could have
  /// executed in between — a resume scheduled at `t` would have been the
  /// very next pop. Returns false (queue untouched) when an event at or
  /// before `t` is pending. Raising the floor keeps every invariant: live
  /// wheel entries lie in (t, floor+kWheel) ⊂ [t, t+kWheel), so bucket
  /// sharing and the scan-from-floor both stay exact.
  bool fast_forward(Cycle t) {
    Cycle e = kCycleMax;
    if (wheel_count_ > 0) {
      if (cur_ == kNoBucket) cur_ = locate_min_bucket();
      e = buckets_[cur_].time;
    }
    if (!overflow_.empty() && overflow_.front().time < e) {
      e = overflow_.front().time;
    }
    if (e <= t) return false;
    floor_ = t;
    ++counters_.fast_forwards;
    return true;
  }

  /// Pops the earliest event if its time is <= `horizon`: writes that time
  /// to `*now` and returns its entry (callback slot or tagged fiber id —
  /// see is_resume/claim). Returns kNoEvent (leaving `*now` untouched and
  /// the queue unchanged) when the earliest event lies past the horizon.
  /// Precondition: !empty(). One bucket locate per call — this is the hot
  /// pop path; next_time()+pop would locate twice per event.
  std::uint32_t pop_entry(Cycle horizon, Cycle* now) {
    return pop_entry_impl<false>(horizon, now);
  }

  /// pop_entry, but only when the earliest event is a fiber resume; returns
  /// kNoEvent (queue unchanged) when it is a callback or past the horizon.
  /// This is what lets a blocking fiber chain straight into the next
  /// runnable fiber (Scheduler::park_and_dispatch) without consuming a
  /// callback event it could not execute from a fiber stack.
  std::uint32_t pop_resume(Cycle horizon, Cycle* now) {
    return pop_entry_impl<true>(horizon, now);
  }

  /// Moves out the callback of a popped callback entry (is_resume(entry)
  /// must be false) and recycles its pool slot.
  Callback claim(std::uint32_t entry) {
    Callback cb = std::move(pool_[entry]);
    free_slots_.push_back(entry);
    return cb;
  }

  /// pop_entry + claim for queues holding only callback events (standalone
  /// EventQueue users; the scheduler pops entries itself to dispatch
  /// resumes inline).
  Callback pop_until(Cycle horizon, Cycle* now) {
    const std::uint32_t e = pop_entry(horizon, now);
    return e == kNoEvent ? Callback{} : claim(e);
  }

  /// Pops and returns the earliest event's callback, advancing `now` out.
  /// Precondition: !empty().
  Callback pop(Cycle* now) { return pop_until(kCycleMax, now); }

  /// Drops all pending events in O(n + wheel size).
  void clear() {
    for (Bucket& b : buckets_) {
      b.slots.clear();
      b.head = 0;
    }
    occ_.fill(0);
    overflow_.clear();
    pool_.clear();
    free_slots_.clear();
    wheel_count_ = 0;
    size_ = 0;
    cur_ = kNoBucket;
  }

  /// Pre-sizes the callable pool for `n` concurrent events, and (when
  /// `per_bucket` > 0) every wheel bucket for `per_bucket` same-cycle
  /// events plus the overflow heap for `n` far-future timers — a fully
  /// pre-sized queue runs its steady state with zero heap growth
  /// (heap_grows stays 0 after reset_counters()).
  void reserve(std::size_t n, std::size_t per_bucket = 0) {
    pool_.reserve(n);
    free_slots_.reserve(n);
    if (per_bucket > 0) {
      for (Bucket& b : buckets_) b.slots.reserve(per_bucket);
      overflow_.reserve(n);
    }
  }

  const EngineCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 private:
  /// Wheel buckets per revolution. Covers every delta a cycle-level model
  /// produces (wire latencies, think times); longer timers take the
  /// overflow-heap path, which is merely O(log n), not wrong.
  static constexpr std::size_t kWheel = 1024;

  /// Overflow-heap entry. Wheel buckets need none of this: their time is
  /// stored once per bucket and their FIFO order is their seq order.
  struct Node {
    Cycle time;
    std::uint64_t seq;
    std::uint32_t slot;  ///< entry: pool index or kResumeTag | fiber id
  };

  /// FIFO of same-time events (pool-slot indices; the shared time is stored
  /// once). `head` fronts the vector so steady-state drain/refill cycles
  /// never shift or reallocate.
  struct Bucket {
    std::vector<std::uint32_t> slots;
    std::size_t head = 0;
    Cycle time = 0;  ///< time of every live entry; valid while non-empty
  };

  static constexpr std::size_t kNoBucket = ~std::size_t{0};

  /// Index of the occupied bucket with the earliest time: the next occupied
  /// bucket at or after floor_ in wheel order. Precondition:
  /// wheel_count_ > 0.
  std::size_t locate_min_bucket() const {
    const std::size_t start = floor_ & (kWheel - 1);
    std::size_t w = start / 64;
    std::uint64_t word = occ_[w] & (~0ull << (start % 64));
    for (;;) {
      if (word != 0) {
        return w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
      }
      w = (w + 1) % (kWheel / 64);
      word = occ_[w];
      // wheel_count_ > 0 guarantees termination within one revolution.
    }
  }

  template <bool kResumeOnly>
  std::uint32_t pop_entry_impl(Cycle horizon, Cycle* now) {
    std::size_t idx = kNoBucket;
    Cycle wheel_time = kCycleMax;
    if (wheel_count_ > 0) {
      idx = cur_ != kNoBucket ? cur_ : locate_min_bucket();
      wheel_time = buckets_[idx].time;
    }
    std::uint32_t entry;
    if (!overflow_.empty() && overflow_.front().time <= wheel_time) {
      // On a time tie the overflow entry fires first: it was inserted while
      // floor_ <= t - kWheel, and floor_ is monotonic, so every wheel entry
      // at the same time was inserted later and carries a larger seq.
      const Node o = overflow_.front();
      if (o.time > horizon) return kNoEvent;
      if constexpr (kResumeOnly) {
        if (!is_resume(o.slot)) {
          cur_ = idx;
          return kNoEvent;
        }
      }
      pop_overflow();
      cur_ = idx;
      floor_ = o.time;
      *now = o.time;
      entry = o.slot;
    } else {
      if (wheel_time > horizon) {
        cur_ = idx;
        return kNoEvent;
      }
      Bucket& b = buckets_[idx];
      entry = b.slots[b.head];
      if constexpr (kResumeOnly) {
        if (!is_resume(entry)) {
          cur_ = idx;
          return kNoEvent;
        }
      }
      if (++b.head == b.slots.size()) {
        b.slots.clear();
        b.head = 0;
        occ_[idx / 64] &= ~(1ull << (idx % 64));
        cur_ = kNoBucket;
      } else {
        cur_ = idx;
      }
      --wheel_count_;
      floor_ = wheel_time;
      *now = wheel_time;
    }
    --size_;
    ++counters_.executed;
    return entry;
  }

  /// Inserts `entry` (callback slot or tagged fiber id) at time `t` into
  /// the wheel or the overflow heap. Precondition: t >= floor_.
  void place(Cycle t, std::uint32_t entry) {
    if (t - floor_ < kWheel) {
      const std::size_t idx = t & (kWheel - 1);
      Bucket& b = buckets_[idx];
      if (b.slots.size() == b.slots.capacity()) ++counters_.heap_grows;
      b.slots.push_back(entry);
      b.time = t;
      occ_[idx / 64] |= 1ull << (idx % 64);
      ++wheel_count_;
      if (cur_ == kNoBucket) {
        if (wheel_count_ == 1) cur_ = idx;
      } else if (t < buckets_[cur_].time) {
        cur_ = idx;
      }
    } else {
      if (overflow_.size() == overflow_.capacity()) ++counters_.heap_grows;
      overflow_.push_back(Node{t, next_seq_++, entry});
      sift_up(overflow_.size() - 1);
    }
    ++size_;
    ++counters_.scheduled;
    if (size_ > counters_.peak_depth) counters_.peak_depth = size_;
  }

  // Strict ordering of the (time, seq) pair; seq values are unique, so this
  // is a total order.
  static bool earlier(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Overflow heap: 4-ary min-heap, children of i are 4i+1..4i+4. Only
  // far-future events (delta >= kWheel) ever live here.
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    const Node e = overflow_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(e, overflow_[parent])) break;
      overflow_[i] = overflow_[parent];
      i = parent;
    }
    overflow_[i] = e;
  }

  void pop_overflow() {
    const Node last = overflow_.back();
    overflow_.pop_back();
    if (overflow_.empty()) return;
    // Walk the root hole down to `last`'s final position.
    const std::size_t n = overflow_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + kArity < n ? first + kArity : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(overflow_[c], overflow_[best])) best = c;
      }
      if (!earlier(overflow_[best], last)) break;
      overflow_[i] = overflow_[best];
      i = best;
    }
    overflow_[i] = last;
  }

  std::array<Bucket, kWheel> buckets_;
  std::array<std::uint64_t, kWheel / 64> occ_{};  ///< bucket occupancy bits
  std::vector<Node> overflow_;             ///< heap of far-future events
  std::vector<EventFn> pool_;              ///< slot-indexed callable storage
  std::vector<std::uint32_t> free_slots_;  ///< recycled pool slots
  std::size_t wheel_count_ = 0;  ///< events resident in wheel buckets
  std::size_t size_ = 0;
  Cycle floor_ = 0;  ///< time of the last popped event
  /// Cached index of the earliest occupied bucket (kNoBucket = unknown).
  /// Maintained by pop_until/schedule so same-cycle event runs skip the
  /// bitmap scan.
  std::size_t cur_ = kNoBucket;
  std::uint64_t next_seq_ = 0;
  EngineCounters counters_;
};

}  // namespace hmps::sim

// NativeCtx: the ExecutionContext backend for real hardware threads.
//
// Shared-memory operations map onto std::atomic with acquire/release
// ordering (fence() is a full seq_cst fence); message passing maps onto one
// MpscChannel per thread — i.e. message passing emulated over coherent
// shared memory, the configuration the paper identifies as inherently
// paying coherence RMRs per message. Used for correctness tests under real
// concurrency and for the Section 5.5 native comparison.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/mpsc_channel.hpp"
#include "sim/rng.hpp"

namespace hmps::rt {

/// Shared environment for a set of native threads: one inbound channel per
/// thread id.
class NativeEnv {
 public:
  explicit NativeEnv(std::uint32_t nthreads, std::size_t chan_slots = 1024) {
    chans_.reserve(nthreads);
    for (std::uint32_t i = 0; i < nthreads; ++i) {
      chans_.push_back(std::make_unique<MpscChannel>(chan_slots));
    }
  }

  std::uint32_t nthreads() const {
    return static_cast<std::uint32_t>(chans_.size());
  }
  MpscChannel& chan(Tid t) { return *chans_[t]; }

 private:
  std::vector<std::unique_ptr<MpscChannel>> chans_;
};

class NativeCtx {
 public:
  NativeCtx(NativeEnv& env, Tid tid, std::uint64_t seed)
      : env_(env), tid_(tid), rng_(seed) {}

  Tid tid() const { return tid_; }
  std::uint32_t nthreads() const { return env_.nthreads(); }
  std::uint64_t rand_below(std::uint64_t bound) { return rng_.below(bound); }

  // ---- shared memory ----

  template <class T>
  T load(const std::atomic<T>* p) {
    return p->load(std::memory_order_acquire);
  }
  template <class T>
  void store(std::atomic<T>* p, T v) {
    p->store(v, std::memory_order_release);
  }
  std::uint64_t faa(std::atomic<std::uint64_t>* p, std::uint64_t d) {
    return p->fetch_add(d, std::memory_order_acq_rel);
  }
  template <class T>
  T exchange(std::atomic<T>* p, T v) {
    return p->exchange(v, std::memory_order_acq_rel);
  }
  template <class T>
  bool cas(std::atomic<T>* p, T expect, T desired) {
    return p->compare_exchange_strong(expect, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }
  void fence() { std::atomic_thread_fence(std::memory_order_seq_cst); }
  void prefetch(const void* p) { __builtin_prefetch(p); }

  // ---- message passing ----

  void send(Tid dst, const std::uint64_t* words, std::size_t n) {
    env_.chan(dst).send(words, n);
  }
  void send(Tid dst, std::initializer_list<std::uint64_t> words) {
    send(dst, words.begin(), words.size());
  }

  void receive(std::uint64_t* out, std::size_t n) {
    std::uint32_t spins = 0;
    while (staged_.size() < n) {
      std::uint64_t msg[MpscChannel::kMaxWords];
      const std::size_t got = env_.chan(tid_).try_recv(msg);
      if (got == 0) {
        backoff(&spins);
        continue;
      }
      spins = 0;
      for (std::size_t i = 0; i < got; ++i) staged_.push_back(msg[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = staged_.front();
      staged_.pop_front();
    }
  }

  std::uint64_t receive1() {
    std::uint64_t w;
    receive(&w, 1);
    return w;
  }

  /// Same as receive(); the SimCtx counterpart attributes the wait to a
  /// dedicated cycle-account bucket, natively there is nothing to account.
  void receive_async(std::uint64_t* out, std::size_t n) { receive(out, n); }

  bool queue_empty() { return staged_.empty() && env_.chan(tid_).empty(); }

  // ---- async reply staging (tagged-receive demux, docs/MODEL.md §9) ----
  // Replies popped while waiting for a different tag park here until their
  // ticket is reaped; complements the staged-word queue above, which keeps
  // whole frames in arrival order.

  void stage_reply(std::uint64_t tag, std::uint64_t val) {
    staged_replies_.emplace_back(tag, val);
  }

  bool take_staged_reply(std::uint64_t tag, std::uint64_t* val) {
    for (std::size_t i = 0; i < staged_replies_.size(); ++i) {
      if (staged_replies_[i].first == tag) {
        *val = staged_replies_[i].second;
        staged_replies_[i] = staged_replies_.back();
        staged_replies_.pop_back();
        return true;
      }
    }
    return false;
  }

  bool take_any_staged_reply(std::uint64_t* tag, std::uint64_t* val) {
    if (staged_replies_.empty()) return false;
    *tag = staged_replies_.back().first;
    *val = staged_replies_.back().second;
    staged_replies_.pop_back();
    return true;
  }

  // ---- execution ----

  void compute(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      asm volatile("" ::: "memory");  // empty-loop local work
    }
  }

  /// Spin hint. Mostly `pause`, but periodically yields to the OS so spin
  /// loops stay live on oversubscribed hosts (e.g. single-CPU CI boxes,
  /// where a pure pause-spin would burn a whole scheduling quantum per
  /// lock handoff).
  void cpu_relax() { backoff(&relax_spins_); }

  Cycle now() const {
#if defined(__x86_64__)
    // rdtscp waits for all preceding instructions to retire, and the
    // trailing lfence keeps later loads from hoisting above the read —
    // an unserialized rdtsc can float across the measured region and
    // skew native_micro / sec55_discussion latencies.
    std::uint32_t lo, hi, aux;
    asm volatile("rdtscp" : "=a"(lo), "=d"(hi), "=c"(aux));
    asm volatile("lfence" ::: "memory");
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
    return static_cast<Cycle>(std::chrono::steady_clock::now()
                                  .time_since_epoch()
                                  .count());
#endif
  }

 private:
  static void backoff(std::uint32_t* spins) {
    if (++*spins % 64 == 0) {
      std::this_thread::yield();
    } else {
      MpscChannel::cpu_pause();
    }
  }

  NativeEnv& env_;
  Tid tid_;
  sim::Xoshiro256 rng_;
  std::deque<std::uint64_t> staged_;  // words popped but not yet consumed
  std::vector<std::pair<std::uint64_t, std::uint64_t>> staged_replies_;
  std::uint32_t relax_spins_ = 0;
};

static_assert(ExecutionContext<NativeCtx>);

}  // namespace hmps::rt

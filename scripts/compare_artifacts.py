#!/usr/bin/env python3
"""Diff two hmps-metrics-v* run artifacts and print per-metric deltas.

Runs are matched by label (the stable row name each bench assigns), and
every numeric leaf under each run's "results" block — plus the service
sojourn percentiles when present — is compared:

    scripts/compare_artifacts.py old.json new.json
    scripts/compare_artifacts.py old.json new.json --fail-over 5

With --fail-over PCT the exit status is 1 when any compared metric moved
by more than PCT percent (relative to the old value; a metric moving away
from exactly 0 always trips the gate), which makes the script a cheap
perf-drift tripwire between PRs. Metrics whose old and new values are both
0 are skipped. v1 and v2 artifacts compare interchangeably — v2 only adds
blocks (machine.noc, telemetry) that this script does not gate on.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if not schema.startswith("hmps-metrics-v"):
        sys.exit(f"{path}: not an hmps-metrics artifact (schema={schema!r})")
    return doc


def numeric_leaves(obj, prefix=""):
    """Flattens nested dicts to {dotted.path: number}, skipping non-numeric
    leaves (labels, policy names) and booleans."""
    out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.update(numeric_leaves(v, f"{prefix}{k}." if prefix or k else k))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix.rstrip(".")] = float(obj)
    return out


def run_metrics(run):
    m = numeric_leaves(run.get("results", {}), "results.")
    soj = run.get("service", {}).get("sojourn")
    if soj:
        m.update(numeric_leaves(soj, "service.sojourn."))
    return m


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("old", help="baseline artifact (--json output)")
    ap.add_argument("new", help="candidate artifact to compare against it")
    ap.add_argument(
        "--fail-over",
        type=float,
        metavar="PCT",
        help="exit 1 if any metric's |delta| exceeds PCT percent of old",
    )
    ap.add_argument(
        "--prefix",
        default="",
        help="only compare metrics whose dotted path starts with this",
    )
    args = ap.parse_args()

    old_doc, new_doc = load(args.old), load(args.new)
    old_runs = {r.get("label", "?"): r for r in old_doc.get("runs", [])}
    new_runs = {r.get("label", "?"): r for r in new_doc.get("runs", [])}

    only_old = sorted(set(old_runs) - set(new_runs))
    only_new = sorted(set(new_runs) - set(old_runs))
    for lbl in only_old:
        print(f"~ run {lbl!r} only in {args.old}")
    for lbl in only_new:
        print(f"~ run {lbl!r} only in {args.new}")

    worst = 0.0
    worst_what = ""
    compared = 0
    for lbl in (l for l in old_runs if l in new_runs):
        om = run_metrics(old_runs[lbl])
        nm = run_metrics(new_runs[lbl])
        keys = [k for k in om if k in nm and k.startswith(args.prefix)]
        for k in keys:
            o, n = om[k], nm[k]
            if o == 0 and n == 0:
                continue
            compared += 1
            if o != 0:
                pct = (n - o) / abs(o) * 100.0
                pct_s = f"{pct:+8.2f}%"
            else:
                pct = float("inf")
                pct_s = "     new"
            if abs(pct) > abs(worst):
                worst, worst_what = pct, f"{lbl}:{k}"
            marker = " "
            if args.fail_over is not None and abs(pct) > args.fail_over:
                marker = "!"
            if n != o:
                print(f"{marker} {lbl:<24} {k:<28} {o:>14.4g} -> "
                      f"{n:>14.4g}  {pct_s}")

    if compared == 0:
        print("no comparable metrics (no matching run labels?)")
        return 1
    print(f"compared {compared} metrics over "
          f"{len(set(old_runs) & set(new_runs))} matched runs; "
          f"largest move {worst:+.2f}% ({worst_what or 'none'})")
    if args.fail_over is not None and abs(worst) > args.fail_over:
        print(f"FAIL: exceeds --fail-over {args.fail_over}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

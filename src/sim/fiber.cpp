#include "sim/fiber.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#if HMPS_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

namespace hmps::sim {
namespace {

// The fiber being started is published through this slot just before the
// first switch into it (the context-switch primitives cannot portably carry
// a pointer argument). The simulator is single-host-threaded, so a plain
// global is fine.
Fiber* g_starting = nullptr;
Fiber* g_current = nullptr;

// Fresh fiber stacks are a large source of kernel time: each 256 KiB `new`
// becomes an mmap that is faulted in page by page and unmapped when the
// fiber dies, and benchmark sweeps build thousands of short-lived
// schedulers. Recycling stacks through a small thread-local pool keeps the
// pages warm. Stack memory is uninitialized either way, so reuse cannot
// change simulation behavior.
constexpr std::size_t kMaxPooledStacks = 256;

struct StackPool {
  std::vector<std::pair<std::size_t, char*>> free_list;
  std::uint64_t hits = 0;

  char* get(std::size_t bytes) {
    for (std::size_t i = free_list.size(); i-- > 0;) {
      if (free_list[i].first == bytes) {
        char* s = free_list[i].second;
        free_list[i] = free_list.back();
        free_list.pop_back();
        ++hits;
        return s;
      }
    }
    return new char[bytes];
  }

  void put(std::size_t bytes, char* stack) {
    if (free_list.size() >= kMaxPooledStacks) {
      delete[] stack;
      return;
    }
    free_list.emplace_back(bytes, stack);
  }

  ~StackPool() {
    for (auto& [bytes, stack] : free_list) delete[] stack;
  }
};

StackPool& pool() {
  thread_local StackPool p;
  return p;
}

}  // namespace

std::uint64_t Fiber::stack_pool_hits() { return pool().hits; }

Fiber::~Fiber() { pool().put(stack_bytes_, stack_); }

#if HMPS_FIBER_UCONTEXT

// ---------------------------------------------------------------------------
// Portable fallback: POSIX ucontext. Correct everywhere but each switch pays
// a rt_sigprocmask syscall pair inside swapcontext.
// ---------------------------------------------------------------------------

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(pool().get(stack_bytes)),
      stack_bytes_(stack_bytes) {
  if (getcontext(&ctx_) != 0) {
    std::perror("getcontext");
    std::abort();
  }
  ctx_.uc_stack.ss_sp = stack_;
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = &caller_;  // falling off the end returns to the resumer
  makecontext(&ctx_, &Fiber::trampoline, 0);
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  self->fn_();
  self->state_ = State::kFinished;
  // uc_link takes control back to caller_.
}

void Fiber::resume() {
  assert(state_ != State::kFinished && "resuming a finished fiber");
  Fiber* prev = g_current;
  g_current = this;
  state_ = State::kRunning;
  if (!started_) {
    started_ = true;
    g_starting = this;
  }
  swapcontext(&caller_, &ctx_);
  g_current = prev;
  if (state_ == State::kRunning) state_ = State::kReady;
}

void Fiber::yield() {
  assert(g_current == this && "yield called off-fiber");
  swapcontext(&ctx_, &caller_);
}

#else  // !HMPS_FIBER_UCONTEXT

// ---------------------------------------------------------------------------
// x86-64 ELF fast path: a hand-rolled context switch saving exactly what the
// SysV ABI makes callee-saved (rbx, rbp, r12-r15, x87 control word, mxcsr).
// Unlike glibc's swapcontext this never enters the kernel — no signal-mask
// save/restore — which makes a fiber switch tens of cycles instead of a
// syscall pair. Simulated-thread switching is the single hottest edge in the
// engine, so this is where the events/sec of the whole simulator is decided.
// ---------------------------------------------------------------------------

// hmps_ctx_switch(save_sp, load_sp): pushes the callee-saved state on the
// current stack, parks the stack pointer in *save_sp, switches to load_sp
// and pops the same state off it. The 64-byte frame layout (low to high) is
// [fcw+mxcsr][r15][r14][r13][r12][rbx][rbp][return address].
asm(R"(
.text
.globl hmps_ctx_switch
.hidden hmps_ctx_switch
.type hmps_ctx_switch, @function
.align 16
hmps_ctx_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq $8, %rsp
  stmxcsr 4(%rsp)
  fnstcw (%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  fldcw (%rsp)
  ldmxcsr 4(%rsp)
  addq $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size hmps_ctx_switch, .-hmps_ctx_switch
)");

extern "C" void hmps_ctx_switch(void** save_sp, void* load_sp);

namespace {

#if HMPS_FIBER_ASAN
// AddressSanitizer must be told about every stack switch or its shadow
// memory bookkeeping (and fake-stack GC) misfires. Protocol: the side about
// to switch calls start_switch, the code that gains control calls finish.
void asan_start(void** fake, const void* bottom, std::size_t size) {
  __sanitizer_start_switch_fiber(fake, bottom, size);
}
void asan_finish(void* fake, const void** bottom, std::size_t* size) {
  __sanitizer_finish_switch_fiber(fake, bottom, size);
}
#endif

}  // namespace
}  // namespace hmps::sim

// No ASan instrumentation here: the compiler infers that trampoline() never
// returns and would plant an __asan_handle_no_return call in this function —
// running it on the raw fiber stack, before trampoline's
// __sanitizer_finish_switch_fiber handshake, corrupts ASan's stack
// bookkeeping.
extern "C"
#if HMPS_FIBER_ASAN
    __attribute__((no_sanitize_address))
#endif
    void
    hmps_fiber_entry() {
  hmps::sim::Fiber::trampoline();
  // trampoline() never returns: it switches back to the resumer for good.
  __builtin_unreachable();
}

namespace hmps::sim {

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(pool().get(stack_bytes)),
      stack_bytes_(stack_bytes) {
  // Build the initial 64-byte switch frame at the stack top such that when
  // hmps_ctx_switch pops it and `ret`s into hmps_fiber_entry, the stack
  // pointer is congruent to 8 mod 16 — exactly as if the entry had been
  // `call`ed, which is what the ABI (and compiled code) expects.
  char* top = stack_ + stack_bytes;
  top -= reinterpret_cast<std::uintptr_t>(top) % 16;
  std::uint64_t* frame = reinterpret_cast<std::uint64_t*>(top) - 9;  // 72 B
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  frame[0] = static_cast<std::uint64_t>(fcw) |
             (static_cast<std::uint64_t>(mxcsr) << 32);
  for (int i = 1; i <= 6; ++i) frame[i] = 0;  // r15 r14 r13 r12 rbx rbp
  frame[7] = reinterpret_cast<std::uint64_t>(&hmps_fiber_entry);
  ctx_sp_ = frame;
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
#if HMPS_FIBER_ASAN
  asan_finish(nullptr, &self->asan_caller_bottom_, &self->asan_caller_size_);
#endif
  self->fn_();
  self->state_ = State::kFinished;
#if HMPS_FIBER_ASAN
  // Passing nullptr releases this fiber's fake stack: it is dying.
  asan_start(nullptr, self->asan_caller_bottom_, self->asan_caller_size_);
#endif
  void* scratch;
  hmps_ctx_switch(&scratch, self->caller_sp_);
  __builtin_unreachable();
}

void Fiber::resume() {
  assert(state_ != State::kFinished && "resuming a finished fiber");
  Fiber* prev = g_current;
  g_current = this;
  state_ = State::kRunning;
  if (!started_) {
    started_ = true;
    g_starting = this;
  }
#if HMPS_FIBER_ASAN
  void* fake = nullptr;
  asan_start(&fake, stack_, stack_bytes_);
#endif
  hmps_ctx_switch(&caller_sp_, ctx_sp_);
#if HMPS_FIBER_ASAN
  asan_finish(fake, nullptr, nullptr);
#endif
  g_current = prev;
  if (state_ == State::kRunning) state_ = State::kReady;
}

void Fiber::yield() {
  assert(g_current == this && "yield called off-fiber");
#if HMPS_FIBER_ASAN
  asan_start(&asan_fake_, asan_caller_bottom_, asan_caller_size_);
#endif
  hmps_ctx_switch(&ctx_sp_, caller_sp_);
#if HMPS_FIBER_ASAN
  asan_finish(asan_fake_, &asan_caller_bottom_, &asan_caller_size_);
#endif
}

#endif  // HMPS_FIBER_UCONTEXT

}  // namespace hmps::sim

# Empty compiler generated dependencies file for test_sync_mechanics.
# This may be replaced when dependencies are built.

// Stacks for the paper's Section 5.4 / Fig. 5b experiments:
//
//  * SeqStack + CS bodies: a sequential linked-list stack made concurrent
//    by any universal construction (coarse lock);
//  * TreiberStack: the classic nonblocking stack, CAS on the top pointer
//    with an ABA tag. Under contention most CASes fail and retry, which is
//    why it trails every blocking implementation in Fig. 5b.
#pragma once

#include <cassert>
#include <cstdint>

#include "runtime/aligned.hpp"
#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::ds {

using rt::Word;

inline constexpr std::uint64_t kStackEmpty = ~std::uint64_t{0};

class SeqStack {
 public:
  struct Node {
    Word val{0};
    Word next{0};  // Node*
  };

  explicit SeqStack(std::size_t capacity = 8192)
      : cap_(capacity), arena_(capacity) {
    // All nodes start on the free list, threaded via next.
    for (std::size_t i = 0; i + 1 < capacity; ++i) {
      arena_[i].next.store(rt::to_word(&arena_[i + 1]),
                           std::memory_order_relaxed);
    }
    free_.store(rt::to_word(&arena_[0]), std::memory_order_relaxed);
  }

  std::size_t capacity() const { return cap_; }

  alignas(rt::kCacheLine) Word top_{0};
  alignas(rt::kCacheLine) Word free_{0};

 private:
  std::size_t cap_;
  rt::AlignedArray<Node> arena_;  // line packing independent of the heap
};

// Both the free list and the stack live under the same CS, so plain
// loads/stores suffice.
template <class Ctx>
std::uint64_t s_push(Ctx& ctx, void* obj, std::uint64_t v) {
  auto* s = static_cast<SeqStack*>(obj);
  auto* n = rt::from_word<SeqStack::Node>(ctx.load(&s->free_));
  assert(n != nullptr && "SeqStack arena exhausted; raise capacity");
  ctx.store(&s->free_, ctx.load(&n->next));
  ctx.store(&n->val, v);
  ctx.store(&n->next, ctx.load(&s->top_));
  ctx.store(&s->top_, rt::to_word(n));
  return 0;
}

template <class Ctx>
std::uint64_t s_pop(Ctx& ctx, void* obj, std::uint64_t /*unused*/) {
  auto* s = static_cast<SeqStack*>(obj);
  auto* n = rt::from_word<SeqStack::Node>(ctx.load(&s->top_));
  if (n == nullptr) return kStackEmpty;
  const std::uint64_t v = ctx.load(&n->val);
  ctx.store(&s->top_, ctx.load(&n->next));
  ctx.store(&n->next, ctx.load(&s->free_));
  ctx.store(&s->free_, rt::to_word(n));
  return v;
}

/// Coarse-lock stack over any universal construction.
template <class Ctx, class UC>
class UcStack {
 public:
  UcStack(SeqStack& s, UC& uc) : s_(&s), uc_(&uc) {}

  void push(Ctx& ctx, std::uint64_t v) {
    assert(v < kStackEmpty);
    uc_->apply(ctx, &s_push<Ctx>, v);
  }
  std::uint64_t pop(Ctx& ctx) { return uc_->apply(ctx, &s_pop<Ctx>, 0); }

 private:
  SeqStack* s_;
  UC* uc_;
};

/// Treiber's nonblocking stack (Treiber 1986). The top-of-stack word packs
/// {tag:32 | node index:32} so CAS retries cannot suffer ABA; nodes come
/// from a shared arena and are recycled through per-thread free lists
/// (allocation itself is uncontended).
template <class Ctx>
class TreiberStack {
 public:
  static constexpr std::uint32_t kMaxThreads = 64;
  static constexpr std::uint32_t kNullIdx = 0xFFFFFFFFu;

  /// `per_thread_nodes` nodes are pre-assigned to every thread's free list.
  explicit TreiberStack(std::uint32_t per_thread_nodes = 256)
      : per_thread_(per_thread_nodes),
        arena_(static_cast<std::size_t>(kMaxThreads) * per_thread_nodes) {
    top_.store(pack(0, kNullIdx), std::memory_order_relaxed);
    for (std::uint32_t t = 0; t < kMaxThreads; ++t) {
      const std::uint32_t base = t * per_thread_;
      for (std::uint32_t i = 0; i + 1 < per_thread_; ++i) {
        arena_[base + i].next.store(base + i + 1, std::memory_order_relaxed);
      }
      arena_[base + per_thread_ - 1].next.store(kNullIdx,
                                                std::memory_order_relaxed);
      free_[t].head = base;
    }
  }

  void push(Ctx& ctx, std::uint64_t v) {
    while (!push_once(ctx, v)) ctx.cpu_relax();
  }

  std::uint64_t pop(Ctx& ctx) {
    std::uint64_t v;
    while (!pop_once(ctx, &v)) ctx.cpu_relax();
    return v;
  }

  struct Stats {
    std::uint64_t cas_failures = 0;
  };
  Stats& stats(std::uint32_t t) { return stats_[t]; }

 protected:
  /// One CAS attempt; true on success (used by the elimination back-off
  /// stack to divert on contention).
  bool push_once(Ctx& ctx, std::uint64_t v) {
    const std::uint32_t ni = alloc(ctx);
    Node& n = arena_[ni];
    ctx.store(&n.val, v);
    const std::uint64_t old = ctx.load(&top_);
    ctx.store(&n.next, static_cast<std::uint64_t>(idx(old)));
    if (ctx.cas(&top_, old, pack(tag(old) + 1, ni))) return true;
    ++stats_[ctx.tid()].cas_failures;
    release(ctx, ni);
    return false;
  }

  /// One attempt. Returns true when the operation completed — with *out
  /// the popped value, or kStackEmpty if the stack was observed empty.
  /// Returns false when the CAS lost a race.
  bool pop_once(Ctx& ctx, std::uint64_t* out) {
    const std::uint64_t old = ctx.load(&top_);
    if (idx(old) == kNullIdx) {
      *out = kStackEmpty;
      return true;
    }
    Node& n = arena_[idx(old)];
    const std::uint64_t next = ctx.load(&n.next);
    if (ctx.cas(&top_, old,
                pack(tag(old) + 1, static_cast<std::uint32_t>(next)))) {
      *out = ctx.load(&n.val);
      release(ctx, idx(old));
      return true;
    }
    ++stats_[ctx.tid()].cas_failures;
    return false;
  }

 private:
  struct alignas(rt::kCacheLine) Node {
    Word val{0};
    Word next{0};  // node index (kNullIdx terminates)
  };
  struct alignas(rt::kCacheLine) FreeList {
    std::uint32_t head = kNullIdx;  // thread-private
  };
  struct alignas(rt::kCacheLine) PaddedStats : Stats {};

  static constexpr std::uint64_t pack(std::uint64_t tg, std::uint32_t i) {
    return (tg << 32) | i;
  }
  static constexpr std::uint32_t idx(std::uint64_t w) {
    return static_cast<std::uint32_t>(w);
  }
  static constexpr std::uint64_t tag(std::uint64_t w) { return w >> 32; }

  std::uint32_t alloc(Ctx& ctx) {
    FreeList& f = free_[ctx.tid()];
    assert(f.head != kNullIdx && "Treiber arena exhausted for this thread");
    const std::uint32_t ni = f.head;
    f.head = static_cast<std::uint32_t>(
        arena_[ni].next.load(std::memory_order_relaxed));
    return ni;
  }

  void release(Ctx& ctx, std::uint32_t ni) {
    FreeList& f = free_[ctx.tid()];
    arena_[ni].next.store(f.head, std::memory_order_relaxed);
    f.head = ni;
  }

  std::uint32_t per_thread_;
  rt::AlignedArray<Node> arena_;  // line packing independent of the heap
  alignas(rt::kCacheLine) Word top_{0};
  FreeList free_[kMaxThreads];
  PaddedStats stats_[kMaxThreads];
};

}  // namespace hmps::ds

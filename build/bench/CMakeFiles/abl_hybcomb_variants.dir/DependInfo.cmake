
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_hybcomb_variants.cpp" "bench/CMakeFiles/abl_hybcomb_variants.dir/abl_hybcomb_variants.cpp.o" "gcc" "bench/CMakeFiles/abl_hybcomb_variants.dir/abl_hybcomb_variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hmps_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hmps_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for abl_hybcomb_variants.
# This may be replaced when dependencies are built.

// Unit tests for the discrete-event engine: RNG, event queue, fibers,
// scheduler, statistics.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace hmps::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowBoundIsRespected) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(51), 51u);
}

TEST(Rng, BelowZeroReturnsZero) {
  Xoshiro256 r(7);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, BetweenInclusive) {
  Xoshiro256 r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RoughlyUniform) {
  Xoshiro256 r(123);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  Cycle t;
  while (!q.empty()) q.pop(&t)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(t, 30u);
}

TEST(EventQueue, FifoAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule(5, [&order, i] { order.push_back(i); });
  Cycle t;
  while (!q.empty()) q.pop(&t)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SizeAndClear) {
  EventQueue q;
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  f.resume();
  EXPECT_EQ(x, 42);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldAndResume) {
  int step = 0;
  Fiber* self = nullptr;
  Fiber f([&] {
    step = 1;
    self->yield();
    step = 2;
  });
  self = &f;
  f.resume();
  EXPECT_EQ(step, 1);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(step, 2);
  EXPECT_TRUE(f.finished());
}

TEST(Scheduler, AdvancesTime) {
  Scheduler s;
  Cycle seen = 0;
  s.spawn([&] {
    s.wait_for(100);
    seen = s.now();
  });
  s.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Scheduler, InterleavesFibersDeterministically) {
  Scheduler s;
  std::vector<int> order;
  s.spawn([&] {
    for (int i = 0; i < 3; ++i) {
      order.push_back(0);
      s.wait_for(10);
    }
  });
  s.spawn([&] {
    for (int i = 0; i < 3; ++i) {
      order.push_back(1);
      s.wait_for(10);
    }
  });
  s.run();
  // Fiber 0 starts at cycle 0, fiber 1 at cycle... both spawned at start=0;
  // ties resolve in spawn order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(Scheduler, SuspendWake) {
  Scheduler s;
  Cycle resumed_at = 0;
  Scheduler::FiberId sleeper = s.spawn([&] {
    s.suspend();
    resumed_at = s.now();
  });
  s.spawn([&] {
    s.wait_for(500);
    s.wake_now(sleeper);
  });
  s.run();
  EXPECT_EQ(resumed_at, 500u);
}

TEST(Scheduler, HorizonStopsRun) {
  Scheduler s;
  int count = 0;
  s.spawn([&] {
    for (;;) {
      ++count;
      s.wait_for(10);
    }
  });
  const Cycle end = s.run(95);
  EXPECT_EQ(end, 95u);
  EXPECT_EQ(count, 10);  // ticks at 0,10,...,90
  s.run(200);
  EXPECT_EQ(count, 21);  // resumes where it left off
}

TEST(Scheduler, StopFromFiber) {
  Scheduler s;
  s.spawn([&] {
    s.wait_for(10);
    s.stop();
  });
  s.spawn([&] {
    for (;;) s.wait_for(1);
  });
  const Cycle end = s.run();
  EXPECT_EQ(end, 10u);
}

TEST(Scheduler, ExternalCallbackAt) {
  Scheduler s;
  bool fired = false;
  s.at(7, [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), 7u);
}

TEST(Stats, SummaryBasics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Stats, SummaryMerge) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 100; ++i) {
    b.add(i * 2.0);
    all.add(i * 2.0);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.sum(), all.sum()) << "merged sum must be the exact running sum";
}

TEST(Stats, SummaryCarriesExactRunningSum) {
  // sum() used to be reconstructed as mean * n, which loses low-order bits
  // through Welford's divisions; it must instead equal the plain
  // left-to-right accumulation of what was added, bit for bit.
  Summary s;
  double expect = 0.0;
  double v = 0.1;
  for (int i = 0; i < 1000; ++i) {
    s.add(v);
    expect += v;
    v = v * 1.01 + 0.001;  // non-uniform values exercise the divisions
  }
  EXPECT_EQ(s.sum(), expect);
  // Mixed magnitudes: a huge value dwarfing the rest must not erase them
  // any more than plain accumulation would.
  Summary m;
  double expect2 = 0.0;
  for (double x : {1e15, 1.0, 2.0, 3.0, -1e15}) {
    m.add(x);
    expect2 += x;
  }
  EXPECT_EQ(m.sum(), expect2);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h(10, 100);
  for (int i = 0; i < 1000; ++i) h.add(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 500.0, 20.0);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 990.0, 20.0);
}

TEST(Stats, HistogramOverflowBucket) {
  Histogram h(1, 10);
  h.add(1000000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.quantile(1.0), 10u);
}

// ---- wait_until fast path vs externally scheduled arrivals ----
//
// The open-loop service harness schedules arrival callbacks with at() that
// land *inside* fibers' wait_until windows and wake suspended fibers. The
// fast path raises the event-queue floor when a wait finds no event due at
// or before its target; a pending arrival inside the window must block the
// raise, or the arrival would be delivered late (or land in a recycled
// wheel bucket). This pins the whole interleaving — a golden-trace
// fingerprint of every delivery and dispatch — to the reference mode with
// the fast path disabled (set_fast_forward_enabled), where every wait
// round-trips through the event queue.

struct TraceFp {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
};

std::uint64_t arrivals_inside_wait_windows_fp(bool fast_forward,
                                              std::uint64_t* fast_forwards) {
  constexpr int kSessions = 3;
  constexpr int kArrivals = 120;
  Scheduler s;
  s.set_fast_forward_enabled(fast_forward);
  TraceFp fp;
  Xoshiro256 gaps(2026);
  std::deque<Cycle> pend[kSessions];
  bool waiting[kSessions] = {};
  Scheduler::FiberId fid[kSessions] = {};
  std::function<void(Cycle, int)> arrive = [&](Cycle t, int k) {
    const int sess = k % kSessions;
    fp.mix(0xA0u + static_cast<std::uint64_t>(sess));
    fp.mix(t);
    pend[sess].push_back(t);
    if (waiting[sess]) {
      waiting[sess] = false;
      s.wake(fid[sess], t);
    }
    if (k + 1 < kArrivals) {
      const Cycle nt = t + 1 + gaps.below(40);
      s.at(nt, [&arrive, nt, k] { arrive(nt, k + 1); });
    }
  };
  for (int i = 0; i < kSessions; ++i) {
    fid[i] = s.spawn([&, i] {
      Xoshiro256 service(77 + i);
      int handled = 0;
      while (handled < kArrivals / kSessions) {
        if (pend[i].empty()) {
          waiting[i] = true;
          s.suspend();
          continue;
        }
        const Cycle t_arr = pend[i].front();
        pend[i].pop_front();
        fp.mix(static_cast<std::uint64_t>(i));
        fp.mix(s.now());
        fp.mix(s.now() - t_arr);
        // The wait window an arrival can land inside.
        s.wait_for(1 + service.below(25));
        ++handled;
      }
    });
  }
  s.at(5, [&arrive] { arrive(5, 0); });
  s.run();
  if (fast_forwards) *fast_forwards = s.engine_counters().fast_forwards;
  return fp.h;
}

TEST(Scheduler, ArrivalsInsideWaitWindowsMatchFastForwardOff) {
  std::uint64_t ffwd_on = 0, ffwd_off = 0;
  const std::uint64_t fast = arrivals_inside_wait_windows_fp(true, &ffwd_on);
  const std::uint64_t ref = arrivals_inside_wait_windows_fp(false, &ffwd_off);
  EXPECT_EQ(fast, ref);
  // The comparison only means something if the fast path actually engaged
  // in the default mode — and never in the reference mode.
  EXPECT_GT(ffwd_on, 0u);
  EXPECT_EQ(ffwd_off, 0u);
}

}  // namespace
}  // namespace hmps::sim

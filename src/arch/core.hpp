// Per-core execution accounting: busy/stall cycle attribution, the posted
// write buffer, and the non-binding prefetch slot.
//
// The split between busy and stalled cycles is what reproduces Fig. 4a of
// the paper; the write buffer and prefetch slot provide the RMR/CS overlap
// that produces Fig. 4c (overheads of the shared-memory approaches shrink
// as the critical section grows).
#pragma once

#include <cstdint>

#include "obs/cycle_account.hpp"
#include "sim/types.hpp"

namespace hmps::arch {

struct CoreState {
  // Cycle attribution. busy + stall + idle ~= elapsed window time for a
  // saturated core (idle = blocked in message receive with an empty queue).
  sim::Cycle busy = 0;
  sim::Cycle stall = 0;
  sim::Cycle idle = 0;

  // Exact per-cause attribution of the core's timeline (obs layer): after
  // Machine::settle_accounts() the buckets sum to the elapsed simulated
  // cycles. The coarse busy/stall/idle trio above is kept as the legacy
  // fast-glance view; SimCtx charges both.
  obs::CycleAccount account;

  // Single-entry posted-write buffer (weakly ordered stores). A store miss
  // retires in the background until `wb_ready`; the next store miss or a
  // fence drains it. Stores to the same line coalesce into the draining
  // entry (`wb_line`).
  sim::Cycle wb_ready = 0;
  std::uint64_t wb_line = ~std::uint64_t{0};

  // Non-binding prefetch slot: line being fetched and its arrival time.
  std::uint64_t prefetch_line = ~std::uint64_t{0};
  sim::Cycle prefetch_ready = 0;

  // Event counts (per measurement window).
  std::uint64_t mem_ops = 0;
  std::uint64_t atomics = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t rmr_loads = 0;   ///< loads that missed (RMR on this core)
  std::uint64_t rmr_stores = 0;  ///< stores that missed
  sim::Cycle load_stall = 0;     ///< stall cycles attributed to loads
  sim::Cycle wb_stall = 0;       ///< stalls waiting on the write buffer
  sim::Cycle atomic_stall = 0;   ///< stalls in atomic round trips

  // Fault injection (sim/fault.hpp): cycles this core sat in injected
  // preemption windows, and how many windows it hit. Zero unless a
  // FaultPlan with preemption is installed.
  sim::Cycle preempt_stall = 0;
  std::uint64_t preemptions = 0;

  /// Zeroes the window counters. The cycle account restarts at `now` (its
  /// watermark must track simulated time, not snap back to zero).
  void reset_window(sim::Cycle now) {
    *this = CoreState{};
    account.reset(now);
  }
};

}  // namespace hmps::arch

#include "arch/noc.hpp"

namespace hmps::arch {

NocModel::NocModel(const MachineParams& p, const MeshTopology& topo)
    : p_(p), topo_(topo), w_(p.mesh_w), h_(p.mesh_h),
      busy_(static_cast<std::size_t>(w_) * h_ * kDirs, 0) {}

void NocModel::build_route_table() {
  const std::size_t cores = topo_.cores();
  route_offs_.reserve(cores * cores + 1);
  route_offs_.push_back(0);
  for (std::size_t src = 0; src < cores; ++src) {
    for (std::size_t dst = 0; dst < cores; ++dst) {
      Coord cur = topo_.coord(static_cast<Tid>(src));
      const Coord end = topo_.coord(static_cast<Tid>(dst));
      // Dimension-ordered: X first, then Y (TILE-Gx UDN routing).
      while (cur.x != end.x) {
        const bool east = cur.x < end.x;
        route_links_.push_back(static_cast<std::uint32_t>(
            link_index(static_cast<std::uint32_t>(cur.x),
                       static_cast<std::uint32_t>(cur.y),
                       east ? kEast : kWest)));
        cur.x += east ? 1 : -1;
      }
      while (cur.y != end.y) {
        const bool south = cur.y < end.y;
        route_links_.push_back(static_cast<std::uint32_t>(
            link_index(static_cast<std::uint32_t>(cur.x),
                       static_cast<std::uint32_t>(cur.y),
                       south ? kSouth : kNorth)));
        cur.y += south ? 1 : -1;
      }
      route_offs_.push_back(static_cast<std::uint32_t>(route_links_.size()));
    }
  }
}

Cycle NocModel::route(Tid src, Tid dst, Cycle inject_time,
                      std::uint32_t words) {
  if (route_offs_.empty()) build_route_table();
  ++counters_.messages;
  Cycle t = inject_time + p_.router;
  const Cycle hold = p_.udn_per_word_wire * static_cast<Cycle>(words);

  const std::size_t pair = static_cast<std::size_t>(src) * topo_.cores() + dst;
  const std::uint32_t* link = route_links_.data() + route_offs_[pair];
  const std::uint32_t* end = route_links_.data() + route_offs_[pair + 1];
  const bool jitter = faults_ && faults_->active();
  for (; link != end; ++link) {
    Cycle& b = busy_[*link];
    const Cycle start = b > t ? b : t;
    counters_.link_wait += start - t;
    // The link carries the message's flits back to back.
    b = start + hold;
    t = start + p_.hop;
    if (jitter) t += faults_->hop_jitter();
    ++counters_.hops;
  }
  return t;
}

}  // namespace hmps::arch

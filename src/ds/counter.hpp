// Concurrent counter (paper Section 5.3 microbenchmark): a sequential
// 64-bit counter whose increment runs as a critical section under any
// universal construction, plus CS bodies for the Fig. 4c variable-length
// experiment.
#pragma once

#include <cstdint>

#include "runtime/context.hpp"
#include "sync/cs.hpp"

namespace hmps::ds {

using rt::Word;

struct SeqCounter {
  alignas(rt::kCacheLine) Word value{0};
};

/// CS body: fetch-and-increment. Returns the pre-increment value.
template <class Ctx>
std::uint64_t counter_inc(Ctx& ctx, void* obj, std::uint64_t /*arg*/) {
  auto* c = static_cast<SeqCounter*>(obj);
  const std::uint64_t v = ctx.load(&c->value);
  ctx.store(&c->value, v + 1);
  ctx.compute(1);  // the add itself
  return v;
}

/// CS body: read the counter.
template <class Ctx>
std::uint64_t counter_get(Ctx& ctx, void* obj, std::uint64_t /*arg*/) {
  return ctx.load(&static_cast<SeqCounter*>(obj)->value);
}

/// Fig. 4c object: an array whose elements are incremented in a loop, one
/// increment per iteration; `arg` is the iteration count (CS length).
struct ArrayObject {
  static constexpr std::size_t kLen = 64;
  Word cells[kLen];
};

template <class Ctx>
std::uint64_t array_inc_loop(Ctx& ctx, void* obj, std::uint64_t iters) {
  auto* a = static_cast<ArrayObject*>(obj);
  for (std::uint64_t i = 0; i < iters; ++i) {
    Word* cell = &a->cells[i % ArrayObject::kLen];
    ctx.store(cell, ctx.load(cell) + 1);
    ctx.compute(1);
  }
  return iters;
}

}  // namespace hmps::ds

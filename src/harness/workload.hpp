// Benchmark workload drivers reproducing the paper's methodology
// (Section 5.2): T application threads repeatedly operate on one concurrent
// object, with a random think time of up to 50 empty-loop iterations after
// every operation; threads are pinned thread i -> core i; server approaches
// dedicate thread 0 (and thread 1 for the two-lock queue's second server);
// MAX_OPS defaults to 200; results are averaged over `reps` measurement
// windows after a warmup.
//
// Throughput is reported in Mops/s at the TILE-Gx clock (1.2 GHz), i.e.
// ops/cycle * 1200, so numbers are directly comparable with the paper's
// figures.
#pragma once

#include <cstdint>
#include <string>

#include "arch/params.hpp"
#include "obs/cycle_account.hpp"
#include "sim/fault.hpp"
#include "sim/types.hpp"

namespace hmps::sim {
class Tracer;
}
namespace hmps::obs {
class MetricsRegistry;
}

namespace hmps::harness {

/// Universal-construction approaches (Fig. 3/4) plus classic-lock
/// ablations (Section 3 context).
enum class Approach {
  kMpServer,
  kHybComb,
  kShmServer,
  kCcSynch,
  kMcsLock,
  kClhLock,
  kTicketLock,
  kTasLock,
  kTtasLock,
  kVlinkServer,  ///< delegation over the Virtual-Link MPMC transport
};

const char* approach_name(Approach a);
bool approach_needs_server(Approach a);

/// Queue implementations of Fig. 5a (kVl1 = Virtual-Link transport).
enum class QueueImpl { kMp1, kHyb1, kShm1, kCc1, kMp2, kLcrq, kVl1 };
const char* queue_name(QueueImpl q);

/// Stack implementations of Fig. 5b (kVl = Virtual-Link transport).
enum class StackImpl { kMp, kHyb, kShm, kCc, kTreiber, kVl };
const char* stack_name(StackImpl s);

/// Observability sinks for one benchmark run (see harness/artifact.hpp for
/// the per-binary plumbing). All pointers are optional and not owned; with
/// everything null the run behaves exactly as before.
struct RunObs {
  sim::Tracer* trace = nullptr;  ///< merged destination for the run's trace
  obs::MetricsRegistry* metrics = nullptr;  ///< artifact to add a run entry to
  const char* label = "";        ///< run label (row name in the artifact)
  std::uint32_t pid = 0;         ///< Chrome-trace pid for this run's events
  std::size_t trace_max_events = 200'000;  ///< per-run tracer cap
};

struct RunCfg {
  arch::MachineParams machine = arch::MachineParams::tilegx36();
  std::uint32_t app_threads = 1;    ///< application threads (servers extra)
  sim::Cycle warmup = 60'000;
  sim::Cycle window = 200'000;
  std::uint32_t reps = 3;
  std::uint64_t seed = 1;
  std::uint64_t max_ops = 200;        ///< MAX_OPS for the combiners
  std::uint32_t think_iters_max = 50; ///< Section 5.2 local work
  sim::Cycle think_iter_cost = 2;     ///< cycles per empty-loop iteration
  std::uint64_t cs_iters = 0;         ///< >0: Fig. 4c array-increment CS
  bool fixed_combiner = false;        ///< Fig. 4a variant (MAX_OPS = inf)
  sim::FaultPlan faults{};            ///< deterministic fault injection
                                      ///< (all off by default)
  std::uint64_t max_inflight = 0;     ///< Section 6 overflow guard for
                                      ///< MP-SERVER/HYBCOMB (0 = off)
  sim::Cycle stall_timeout = 0;       ///< HYBCOMB combiner-stall knob
  std::uint32_t async_batch = 0;      ///< >= 2: clients issue trains of this
                                      ///< many apply_async() requests via
                                      ///< sync::AsyncBatcher (MP-SERVER,
                                      ///< HYBCOMB, SHM-SERVER counter runs
                                      ///< and the MP1 queue). 0/1 = classic
                                      ///< synchronous apply().
  sim::Cycle telemetry_window = 0;    ///< >0: obs::Telemetry sampling cadence
                                      ///< in cycles; the artifact run gains a
                                      ///< `telemetry` block (0 = off, no
                                      ///< events scheduled)
  RunObs obs{};                       ///< observability sinks (all off)
};

struct RunResult {
  double mops = 0;            ///< throughput, Mops/s @ 1.2 GHz
  double mops_std = 0;        ///< across reps
  double lat_mean = 0;        ///< mean request latency, cycles
  double lat_p50 = 0;         ///< median request latency, cycles
  double lat_p99 = 0;         ///< 99th-percentile request latency, cycles
  double serv_total_per_op = 0;  ///< (busy+stall)/op at the servicing core
  double serv_stall_per_op = 0;  ///< stall/op at the servicing core
  double combining_rate = 0;  ///< requests per combining round (Fig. 4b)
  double cas_per_op = 0;      ///< CAS executions per apply (Section 5.3)
  double fairness = 0;        ///< max/min per-thread ops (Section 5.3)
  double msgs_per_op = 0;
  double ctrl_wait_per_op = 0;   ///< memory-controller queueing per op
  double cycles_per_op = 0;   ///< window*threads... == 1200/mops per thread
  std::uint64_t total_ops = 0;
  // Section 6 robustness counters (nonzero only with the guards/faults on):
  std::uint64_t throttle_waits = 0;  ///< spins for an in-flight credit
  std::uint64_t stall_timeouts = 0;  ///< combiner-stall timeouts observed
  std::uint64_t preemptions = 0;     ///< injected preemption windows hit
  // Exact cycle attribution of the servicing core (core 0) over the
  // measurement windows: buckets sum to reps * window by construction
  // (fig4a reads its stall breakdown straight from this).
  obs::CycleAccount serv_account{};
  double serv_ops = 0;  ///< ops the servicing core's account is divided by
  // Open-loop service metrics, filled only by run_service()
  // (harness/service.hpp; zero elsewhere). Sojourn = completion - arrival;
  // lat_p50/p99 above hold the sojourn percentiles for service runs.
  double offered_mops = 0;       ///< offered load realized by the arrival
                                 ///< process over the measurement window
  double lat_p999 = 0;           ///< 99.9th-percentile sojourn, cycles
  double lat_max = 0;            ///< worst sojourn observed, cycles
  double queue_delay_mean = 0;   ///< arrival -> dispatch, cycles
  double service_mean = 0;       ///< dispatch -> completion, cycles
  std::uint64_t arrivals = 0;    ///< admitted arrivals in the window
  std::uint64_t shed_ops = 0;    ///< arrivals dropped by admission control
};

/// Concurrent counter under the given approach (Figs. 3a-c, 4a-b; with
/// cfg.cs_iters > 0 the Fig. 4c array CS).
RunResult run_counter(const RunCfg& cfg, Approach a);

/// Cycles to execute the Fig. 4c CS body alone (the "ideal" line).
double ideal_cs_cycles(const RunCfg& cfg);

/// Queue benchmark under balanced load (Fig. 5a).
RunResult run_queue(const RunCfg& cfg, QueueImpl q);

/// Stack benchmark under balanced load (Fig. 5b).
RunResult run_stack(const RunCfg& cfg, StackImpl s);

}  // namespace hmps::harness
